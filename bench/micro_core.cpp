// Micro-benchmarks for the substrates: event queue, network send/deliver,
// quorum construction, and a whole protocol step. These bound the
// simulator's own cost so experiment runtimes are attributable to protocol
// behaviour, not harness overhead.
//
// The headline section compares the slab-allocated event store against the
// seed implementation (std::priority_queue + std::unordered_map of
// std::function), kept here verbatim as `BaselineSimulator`, on a
// protocol-shaped churn load (timer chains + cancelled timeouts with
// network-sized captures). Results land in BENCH_micro_core.json via
// --json so the events/sec trajectory is tracked from this commit onward.
// The google-benchmark suite still runs afterwards (skipped under --quick).
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <queue>
#include <unordered_map>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "harness/experiment.h"
#include "quorum/factory.h"
#include "runner.h"

namespace {

using namespace dqme;

// --- the seed event store, frozen for before/after comparison ---------

class BaselineSimulator {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  Time now() const { return now_; }

  EventId schedule_at(Time when, Callback fn) {
    EventId id = next_id_++;
    heap_.push(Entry{when, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }
  EventId schedule_after(Time delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  bool cancel(EventId id) { return callbacks_.erase(id) > 0; }

  bool step() {
    while (!heap_.empty() && !callbacks_.contains(heap_.top().id))
      heap_.pop();
    if (heap_.empty()) return false;
    Entry e = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(e.id);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = e.when;
    ++executed_;
    fn();
    return true;
  }
  uint64_t run() {
    uint64_t n = 0;
    while (step()) ++n;
    return n;
  }
  uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Time when;
    EventId id;
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };
  Time now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
};

// Protocol-shaped churn: every fired event re-arms itself (a timer chain,
// like workload think-time and delivery events) carrying a network-sized
// capture, and arms a timeout that is then cancelled before firing (like
// retransmit / failure-detection timers) — the cancel-heavy pattern the
// tombstone compaction exists for. The chain closure captures 40 bytes,
// the size class of a real delivery closure: inline in the slab store,
// one heap allocation per event in the seed's std::function store.
struct ChurnPayload {  // ~ what a delivery closure carries
  void* net;
  uint64_t flight;
  uint64_t seq;
  uint64_t salt;
};

template <typename Sim>
struct Churner {
  Sim& sim;
  uint64_t target;
  uint64_t fired = 0;
  typename Sim::EventId timeout{};
  bool has_timeout = false;

  void arm() {
    ChurnPayload p{&sim, fired, fired * 7919, ~fired};
    sim.schedule_after(1 + (fired % 97), [this, p] {
      benchmark::DoNotOptimize(p);
      ++fired;
      if (has_timeout) sim.cancel(timeout);
      if (fired < target) {
        timeout = sim.schedule_after(10'000, [] {});
        has_timeout = true;
        arm();
      }
    });
  }
};

template <typename Sim>
uint64_t churn(Sim& sim, uint64_t target_events) {
  Churner<Sim> c{sim, target_events};
  c.arm();
  sim.run();
  return c.fired;
}

template <typename Sim>
double measure_events_per_sec(uint64_t events, int repeats) {
  double best = 0;
  for (int i = 0; i < repeats; ++i) {
    Sim sim;
    const auto start = std::chrono::steady_clock::now();
    const uint64_t fired = churn(sim, events);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    DQME_CHECK(fired == events);
    const double eps = static_cast<double>(sim.events_executed()) / secs;
    if (eps > best) best = eps;
  }
  return best;
}

// Profiling view of the slab store under the same churn load, harvested
// from the simulator's unconditional counters (sim::Simulator profiling
// accessors) — the numbers BENCH_micro_core.json tracks alongside raw
// events/sec: how deep the heap got, how much of the slab was ever
// committed, and how hard the tombstone-compaction machinery worked.
struct SlabProfile {
  uint64_t scheduled = 0;
  uint64_t cancelled = 0;
  uint64_t compactions = 0;
  size_t peak_heap = 0;
  size_t slab_capacity = 0;
  double tombstone_ratio = 0;
};

SlabProfile profile_slab_churn(uint64_t events) {
  sim::Simulator sim;
  churn(sim, events);
  SlabProfile p;
  p.scheduled = sim.scheduled_total();
  p.cancelled = sim.cancelled_total();
  p.compactions = sim.compactions();
  p.peak_heap = sim.peak_heap();
  p.slab_capacity = sim.slab_capacity();
  p.tombstone_ratio = sim.tombstone_ratio();
  return p;
}

// --- google-benchmark suite (the per-substrate breakdown) -------------

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    uint64_t sum = 0;
    for (int i = 0; i < events; ++i)
      sim.schedule_at((i * 7919) % 100000, [&sum] { ++sum; });
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

void BM_SimulatorChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    benchmark::DoNotOptimize(churn(sim, 100000));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorChurn);

void BM_BaselineSimulatorChurn(benchmark::State& state) {
  for (auto _ : state) {
    BaselineSimulator sim;
    benchmark::DoNotOptimize(churn(sim, 100000));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BaselineSimulatorChurn);

void BM_NetworkSendDeliver(benchmark::State& state) {
  struct Sink final : net::NetSite {
    uint64_t n = 0;
    void on_message(const net::Message&, LockId) override { ++n; }
  };
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(10), 1);
    Sink sink;
    net.attach(0, &sink);
    net.attach(1, &sink);
    for (SeqNum i = 0; i < 1000; ++i)
      net.send(0, 1, net::make_request(ReqId{i + 1, 0}));
    sim.run();
    benchmark::DoNotOptimize(sink.n);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_QuorumConstruction(benchmark::State& state, const char* kind,
                           int n) {
  for (auto _ : state) {
    auto qs = quorum::make_quorum_system(kind, n);
    double k = 0;
    for (SiteId i = 0; i < qs->num_sites(); ++i)
      k += static_cast<double>(qs->quorum_for(i).size());
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK_CAPTURE(BM_QuorumConstruction, grid_2500, "grid", 2500);
BENCHMARK_CAPTURE(BM_QuorumConstruction, fpp_307, "fpp", 307);
BENCHMARK_CAPTURE(BM_QuorumConstruction, tree_1023, "tree", 1023);
BENCHMARK_CAPTURE(BM_QuorumConstruction, hqc_729, "hqc", 729);

void BM_TreeQuorumUnderFailures(benchmark::State& state) {
  auto qs = quorum::make_quorum_system("tree", 1023);
  Rng rng(3);
  std::vector<bool> alive(1023);
  for (size_t i = 0; i < alive.size(); ++i) alive[i] = rng.bernoulli(0.9);
  for (auto _ : state) {
    auto q = qs->quorum_for_alive(static_cast<SiteId>(rng.uniform_int(0, 1022)),
                                  alive);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_TreeQuorumUnderFailures);

// One complete saturated simulation second — the unit of all E-benches.
void BM_EndToEndSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.algo = mutex::Algo::kCaoSinghal;
    cfg.n = 25;
    cfg.warmup = 0;
    cfg.measure = 1'000'000;  // 1000 x T
    auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.summary.completed);
  }
}
BENCHMARK(BM_EndToEndSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto opts = dqme::bench::parse_bench_flags(argc, argv, "micro_core");

  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t events = opts.quick ? 200'000 : 1'000'000;
  const int repeats = opts.quick ? 2 : 3;
  const double slab =
      measure_events_per_sec<dqme::sim::Simulator>(events, repeats);
  const double baseline =
      measure_events_per_sec<BaselineSimulator>(events, repeats);
  const double speedup = slab / baseline;

  // End-to-end: one saturated simulated second per algorithm, fixed N and
  // seed. cao_singhal is the headline row (e2e_events_per_sec, the number
  // the perf gate tracks); maekawa and suzuki_kasami pin the competitors so
  // a hot-path regression that only hits one protocol family still shows.
  struct E2eRow {
    const char* name;
    dqme::mutex::Algo algo;
    double eps = 0;
    dqme::harness::ExperimentResult result;
  };
  E2eRow e2e_rows[] = {
      {"cao_singhal", dqme::mutex::Algo::kCaoSinghal, 0, {}},
      {"maekawa", dqme::mutex::Algo::kMaekawa, 0, {}},
      {"suzuki_kasami", dqme::mutex::Algo::kSuzukiKasami, 0, {}},
  };
  dqme::harness::ExperimentConfig cfg;
  cfg.n = 25;
  cfg.warmup = 0;
  cfg.measure = opts.quick ? 250'000 : 1'000'000;
  // Best-of-2 even in quick mode: these rows are gated by check_perf.py and
  // a single cold quick run is noisy enough to brush the gate floor.
  const int e2e_repeats = opts.quick ? 2 : 3;
  for (E2eRow& row : e2e_rows) {
    cfg.algo = row.algo;
    for (int i = 0; i < e2e_repeats; ++i) {
      auto res = dqme::harness::run_experiment(cfg);
      const double eps =
          static_cast<double>(res.sim_events) / (res.wall_ms / 1000.0);
      if (eps > row.eps) {
        row.eps = eps;
        row.result = std::move(res);
      }
    }
  }
  const auto& r = e2e_rows[0].result;  // cao_singhal, the headline
  const double e2e_eps = e2e_rows[0].eps;
  cfg.algo = dqme::mutex::Algo::kCaoSinghal;

  // Lock-table hot path: the x3 service shape (256 locks, open-loop uniform
  // arrivals, piggybacking on) as its own events/s row, so regressions in
  // the per-lock state and flight-coalescing code paths show up even when
  // the single-lock headline is unaffected. check_perf.py gates it like the
  // headline row.
  dqme::harness::ExperimentConfig lock_cfg = cfg;
  lock_cfg.options.num_locks = 256;
  lock_cfg.workload.mode = dqme::harness::Workload::Config::Mode::kOpen;
  lock_cfg.workload.cs_duration = 100;
  lock_cfg.workload.arrival_rate = 0.6 * 40.0 / (2100.0 * 25);
  lock_cfg.lock_piggyback_window = 1000;
  double locks256_eps = 0;
  // Two repeats even in quick mode: this row's shorter window makes a
  // single cold run noisy enough to brush the perf-gate floor.
  const int lock_repeats = e2e_repeats < 2 ? 2 : e2e_repeats;
  for (int i = 0; i < lock_repeats; ++i) {
    auto res = dqme::harness::run_experiment(lock_cfg);
    const double eps =
        static_cast<double>(res.sim_events) / (res.wall_ms / 1000.0);
    if (eps > locks256_eps) locks256_eps = eps;
  }

  // Slab profiling counters under the churn load, plus the network's pool
  // recycling rate from the e2e run's registry: acquired >> pool size means
  // flight slots are being reused, not grown.
  const SlabProfile prof = profile_slab_churn(events);
  const double flights_acquired =
      static_cast<double>(*r.registry.find_counter("net.flights.acquired"));
  const double flight_pool = *r.registry.find_gauge("net.flights.pool");
  const double flight_recycle_rate =
      flights_acquired > 0 ? 1.0 - flight_pool / flights_acquired : 0;

  dqme::bench::maybe_write_trace(opts, cfg);

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  std::cout << "micro_core — slab event store vs seed implementation ("
            << events << "-event churn, best of " << repeats << ")\n"
            << "  slab:     " << dqme::harness::Table::num(slab / 1e6, 2)
            << "M events/s\n"
            << "  baseline: " << dqme::harness::Table::num(baseline / 1e6, 2)
            << "M events/s\n"
            << "  speedup:  " << dqme::harness::Table::num(speedup, 2)
            << "x\n"
            << "  end-to-end experiment (best of " << e2e_repeats << "):\n";
  for (const E2eRow& row : e2e_rows)
    std::cout << "    " << row.name << ": "
              << dqme::harness::Table::num(row.eps / 1e6, 2)
              << "M events/s\n";
  std::cout << "    cao_singhal/256 locks: "
            << dqme::harness::Table::num(locks256_eps / 1e6, 2)
            << "M events/s\n";
  std::cout << "  slab profile (churn): peak_heap=" << prof.peak_heap
            << " slab_capacity=" << prof.slab_capacity
            << " compactions=" << prof.compactions << " tombstone_ratio="
            << dqme::harness::Table::num(prof.tombstone_ratio, 3)
            << "\n  flight recycle rate (e2e): "
            << dqme::harness::Table::num(flight_recycle_rate, 4) << "\n";

  dqme::bench::write_bench_json(
      opts, speedup > 1.0, wall_ms, slab,
      {{"events_per_sec_slab", slab, 0},
       {"events_per_sec_baseline", baseline, 0},
       {"slab_speedup", speedup, 0},
       {"e2e_events_per_sec", e2e_eps, 0},
       {"e2e_events_per_sec_cao_singhal", e2e_rows[0].eps, 0},
       {"e2e_events_per_sec_maekawa", e2e_rows[1].eps, 0},
       {"e2e_events_per_sec_suzuki_kasami", e2e_rows[2].eps, 0},
       {"e2e_events_per_sec_locks256", locks256_eps, 0},
       {"slab_scheduled", static_cast<double>(prof.scheduled), 0},
       {"slab_cancelled", static_cast<double>(prof.cancelled), 0},
       {"slab_peak_heap", static_cast<double>(prof.peak_heap), 0},
       {"slab_capacity", static_cast<double>(prof.slab_capacity), 0},
       {"slab_compactions", static_cast<double>(prof.compactions), 0},
       {"slab_tombstone_ratio", prof.tombstone_ratio, 0},
       {"flight_recycle_rate", flight_recycle_rate, 0}},
      &r.registry);

  if (opts.quick) return 0;  // CI smoke: skip the full microbench suite
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
