// Micro-benchmarks (google-benchmark) for the substrates: event queue,
// network send/deliver, quorum construction, and a whole protocol step.
// These bound the simulator's own cost so experiment runtimes are
// attributable to protocol behaviour, not harness overhead.
#include <benchmark/benchmark.h>

#include "core/cao_singhal.h"
#include "harness/experiment.h"
#include "quorum/factory.h"

namespace {

using namespace dqme;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    uint64_t sum = 0;
    for (int i = 0; i < events; ++i)
      sim.schedule_at((i * 7919) % 100000, [&sum] { ++sum; });
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

void BM_NetworkSendDeliver(benchmark::State& state) {
  struct Sink final : net::NetSite {
    uint64_t n = 0;
    void on_message(const net::Message&) override { ++n; }
  };
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(10), 1);
    Sink sink;
    net.attach(0, &sink);
    net.attach(1, &sink);
    for (SeqNum i = 0; i < 1000; ++i)
      net.send(0, 1, net::make_request(ReqId{i + 1, 0}));
    sim.run();
    benchmark::DoNotOptimize(sink.n);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_QuorumConstruction(benchmark::State& state, const char* kind,
                           int n) {
  for (auto _ : state) {
    auto qs = quorum::make_quorum_system(kind, n);
    double k = 0;
    for (SiteId i = 0; i < qs->num_sites(); ++i)
      k += static_cast<double>(qs->quorum_for(i).size());
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK_CAPTURE(BM_QuorumConstruction, grid_2500, "grid", 2500);
BENCHMARK_CAPTURE(BM_QuorumConstruction, fpp_307, "fpp", 307);
BENCHMARK_CAPTURE(BM_QuorumConstruction, tree_1023, "tree", 1023);
BENCHMARK_CAPTURE(BM_QuorumConstruction, hqc_729, "hqc", 729);

void BM_TreeQuorumUnderFailures(benchmark::State& state) {
  auto qs = quorum::make_quorum_system("tree", 1023);
  Rng rng(3);
  std::vector<bool> alive(1023);
  for (size_t i = 0; i < alive.size(); ++i) alive[i] = rng.bernoulli(0.9);
  for (auto _ : state) {
    auto q = qs->quorum_for_alive(static_cast<SiteId>(rng.uniform_int(0, 1022)),
                                  alive);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_TreeQuorumUnderFailures);

// One complete saturated simulation second — the unit of all E-benches.
void BM_EndToEndSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    harness::ExperimentConfig cfg;
    cfg.algo = mutex::Algo::kCaoSinghal;
    cfg.n = 25;
    cfg.warmup = 0;
    cfg.measure = 1'000'000;  // 1000 x T
    auto r = harness::run_experiment(cfg);
    benchmark::DoNotOptimize(r.summary.completed);
  }
}
BENCHMARK(BM_EndToEndSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
