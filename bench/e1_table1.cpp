// E1 — reproduces the paper's Table 1: message complexity and
// synchronization delay of the proposed algorithm against Lamport,
// Ricart-Agrawala, Maekawa, Suzuki-Kasami and Raymond.
//
// Analytic columns restate the paper; measured columns come from the
// simulator at N = 25 (K = 9 with grid quorums), T = 1000 ticks:
// light load = rare Poisson arrivals, heavy load = closed-loop saturation.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::Table;

  const int n = 25;
  struct Row {
    mutex::Algo algo;
    const char* analytic_msgs;
    const char* analytic_delay;
  };
  const Row rows[] = {
      {mutex::Algo::kLamport, "3(N-1)", "T"},
      {mutex::Algo::kRicartAgrawala, "2(N-1)", "T"},
      {mutex::Algo::kRoucairolCarvalho, "0..2(N-1), avg N-1", "T"},
      {mutex::Algo::kMaekawa, "3(K-1)..5(K-1)", "2T"},
      {mutex::Algo::kSuzukiKasami, "N", "T"},
      {mutex::Algo::kRaymond, "O(log N)", "O(log N) T"},
      {mutex::Algo::kCaoSinghal, "3(K-1)..6(K-1)", "T"},
  };

  std::cout << "E1 / Table 1 — message complexity & synchronization delay"
            << " (N=" << n << ", K=9, T=1000 ticks)\n\n";
  Table t({"algorithm", "paper: msgs", "meas. light", "meas. heavy",
           "paper: delay", "meas. delay/T"});

  bool ok = true;
  for (const Row& row : rows) {
    auto light = harness::run_experiment(open_load(row.algo, n, 0.05));
    auto hv = harness::run_experiment(heavy(row.algo, n));
    ok = ok && light.summary.violations == 0 && hv.summary.violations == 0 &&
         light.drained_clean && hv.drained_clean;
    t.add_row({std::string(mutex::to_string(row.algo)), row.analytic_msgs,
               Table::num(light.summary.wire_msgs_per_cs, 1),
               Table::num(hv.summary.wire_msgs_per_cs, 1), row.analytic_delay,
               Table::num(hv.sync_delay_in_t, 2)});
  }
  t.print(std::cout);
  std::cout << "\nShape checks: proposed has the lowest heavy-load delay of "
               "the permission-based algorithms while keeping O(K) "
               "messages; Maekawa pays ~2x the delay at the same message "
               "budget.\n"
            << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
