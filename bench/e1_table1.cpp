// E1 — reproduces the paper's Table 1: message complexity and
// synchronization delay of the proposed algorithm against Lamport,
// Ricart-Agrawala, Maekawa, Suzuki-Kasami and Raymond.
//
// Analytic columns restate the paper; measured columns come from the
// simulator at N = 25 (K = 9 with grid quorums), T = 1000 ticks:
// light load = rare Poisson arrivals, heavy load = closed-loop saturation.
//
// Ported to the unified bench::Runner: all (algorithm × regime × seed)
// runs execute as one parallel sweep (--jobs=N), each metric aggregated
// over --seeds=K replications.
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e1_table1");
  bench::reject_extra_args(argc, argv, "e1_table1");
  const int n = 25;
  struct AlgoRow {
    mutex::Algo algo;
    const char* analytic_msgs;
    const char* analytic_delay;
    int light = 0, hv = 0;  // runner row indices
  };
  AlgoRow rows[] = {
      {mutex::Algo::kLamport, "3(N-1)", "T"},
      {mutex::Algo::kRicartAgrawala, "2(N-1)", "T"},
      {mutex::Algo::kRoucairolCarvalho, "0..2(N-1), avg N-1", "T"},
      {mutex::Algo::kMaekawa, "3(K-1)..5(K-1)", "2T"},
      {mutex::Algo::kSuzukiKasami, "N", "T"},
      {mutex::Algo::kRaymond, "O(log N)", "O(log N) T"},
      {mutex::Algo::kCaoSinghal, "3(K-1)..6(K-1)", "T"},
  };

  const bench::MetricDef kMsgs{
      "msgs/cs", [](const ExperimentResult& r) {
        return r.summary.wire_msgs_per_cs;
      }};
  const bench::MetricDef kDelay{
      "delay/T", [](const ExperimentResult& r) { return r.sync_delay_in_t; }};

  bench::Runner run("e1_table1", opts);
  for (AlgoRow& row : rows) {
    const std::string name{mutex::to_string(row.algo)};
    row.light = run.add(name + "/light", open_load(row.algo, n, 0.05),
                        {kMsgs});
    row.hv = run.add(name + "/heavy", heavy(row.algo, n), {kMsgs, kDelay});
  }
  run.execute();

  std::cout << "E1 / Table 1 — message complexity & synchronization delay"
            << " (N=" << n << ", K=9, T=1000 ticks)\n\n";
  Table t({"algorithm", "paper: msgs", "meas. light", "meas. heavy",
           "paper: delay", "meas. delay/T"});
  for (const AlgoRow& row : rows) {
    t.add_row({std::string(mutex::to_string(row.algo)), row.analytic_msgs,
               Table::num(run.stat(row.light, "msgs/cs").mean, 1),
               Table::num(run.stat(row.hv, "msgs/cs").mean, 1),
               row.analytic_delay,
               Table::num(run.stat(row.hv, "delay/T").mean, 2)});
  }
  t.print(std::cout);
  std::cout << "\nShape checks: proposed has the lowest heavy-load delay of "
               "the permission-based algorithms while keeping O(K) "
               "messages; Maekawa pays ~2x the delay at the same message "
               "budget.\n";
  return run.finish(std::cout);
}
