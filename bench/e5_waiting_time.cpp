// E5 — §5.2: "the waiting time of requests is nearly reduced to half
// because the CS executions proceed with twice the rate." Open-loop λ
// sweep across the load range, proposed vs Maekawa.
//
// Ported to the unified bench::Runner: the whole (load × algorithm) grid is
// one parallel sweep, with the waiting-time distribution (p50/p95/p99 from
// the registry histogram) reported alongside the means.
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::kT;
  using bench::open_load;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e5_waiting_time");
  bench::reject_extra_args(argc, argv, "e5_waiting_time");

  const bench::MetricDef kWaitT{"waiting_mean_t",
                                [](const ExperimentResult& r) {
                                  return r.summary.waiting_mean / kT;
                                }};
  const bench::MetricDef kP50{"waiting_p50_t",
                              [](const ExperimentResult& r) {
                                return r.summary.waiting_p50 / kT;
                              }};
  const bench::MetricDef kP95{"waiting_p95_t",
                              [](const ExperimentResult& r) {
                                return r.summary.waiting_p95 / kT;
                              }};
  const bench::MetricDef kP99{"waiting_p99_t",
                              [](const ExperimentResult& r) {
                                return r.summary.waiting_p99 / kT;
                              }};
  const std::vector<bench::MetricDef> kMetrics{kWaitT, kP50, kP95, kP99};

  bench::Runner run("e5_waiting_time", opts);
  const double loads[] = {0.1, 0.3, 0.5, 0.7, 0.85};
  int prop[5], maek[5];
  for (int i = 0; i < 5; ++i) {
    prop[i] = run.add(
        "proposed/" + Table::num(loads[i], 2),
        open_load(mutex::Algo::kCaoSinghal, 25, loads[i], "grid", 3),
        kMetrics);
    maek[i] =
        run.add("maekawa/" + Table::num(loads[i], 2),
                open_load(mutex::Algo::kMaekawa, 25, loads[i], "grid", 3),
                kMetrics);
  }
  run.execute();

  std::cout << "E5 — mean waiting time (request -> CS entry) in units of T "
               "(N=25, grid, E=T/10)\n\n";
  Table t({"load", "proposed wait/T", "maekawa wait/T", "reduction",
           "proposed p95/T", "maekawa p95/T", "proposed p99/T"});
  for (int i = 0; i < 5; ++i) {
    const double pw = run.stat(prop[i], "waiting_mean_t").mean;
    const double mw = run.stat(maek[i], "waiting_mean_t").mean;
    t.add_row({Table::num(loads[i], 2), Table::num(pw, 2), Table::num(mw, 2),
               Table::num(1.0 - pw / mw, 2),
               Table::num(run.stat(prop[i], "waiting_p95_t").mean, 2),
               Table::num(run.stat(maek[i], "waiting_p95_t").mean, 2),
               Table::num(run.stat(prop[i], "waiting_p99_t").mean, 2)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: at light load both wait ~2T (round trip); "
               "as load rises Maekawa's queues grow roughly twice as fast, "
               "so the reduction column climbs toward ~0.5 near "
               "saturation.\n";
  return run.finish(std::cout);
}
