// E5 — §5.2: "the waiting time of requests is nearly reduced to half
// because the CS executions proceed with twice the rate." Open-loop λ
// sweep across the load range, proposed vs Maekawa.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "e5_waiting_time");
  using namespace dqme;
  using bench::kT;
  using bench::open_load;
  using harness::Table;

  suite_guard.trace(open_load(mutex::Algo::kCaoSinghal, 25, 0.5, "grid", 3));

  std::cout << "E5 — mean waiting time (request -> CS entry) in units of T "
               "(N=25, grid, E=T/10)\n\n";
  Table t({"load", "proposed wait/T", "maekawa wait/T", "reduction",
           "proposed p95/T", "maekawa p95/T"});
  bool ok = true;
  for (double load : {0.1, 0.3, 0.5, 0.7, 0.85}) {
    auto p = harness::run_experiment(
        open_load(mutex::Algo::kCaoSinghal, 25, load, "grid", 3));
    auto m = harness::run_experiment(
        open_load(mutex::Algo::kMaekawa, 25, load, "grid", 3));
    ok = ok && p.summary.violations == 0 && m.summary.violations == 0 &&
         p.drained_clean && m.drained_clean;
    t.add_row(
        {Table::num(load, 2),
         Table::num(p.summary.waiting_mean / kT, 2),
         Table::num(m.summary.waiting_mean / kT, 2),
         Table::num(1.0 - p.summary.waiting_mean / m.summary.waiting_mean,
                    2),
         Table::num(p.summary.waiting_p95 / kT, 2),
         Table::num(m.summary.waiting_p95 / kT, 2)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: at light load both wait ~2T (round trip); "
               "as load rises Maekawa's queues grow roughly twice as fast, "
               "so the reduction column climbs toward ~0.5 near "
               "saturation.\n"
            << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return suite_guard.finish(ok);
}
