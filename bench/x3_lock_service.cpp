// X3 (extension) — the sharded lock service at scale: one Cao–Singhal
// proxy fabric of N sites arbitrating a whole table of independent locks
// (LockId-keyed protocol API), under open-loop Zipf-skewed demand.
//
// What the grid shows:
//   * lock-count sweep {1, 16, 256, 4096}: aggregate throughput grows with
//     the table (offered demand tracks the hottest lock's headroom) while
//     per-request latency percentiles stay flat — locks are independent
//     critical sections sharing one message fabric;
//   * Zipf skew {0, 0.9}: a hot-key distribution concentrates contention
//     on a few locks and caps how much demand the same table can absorb;
//   * piggybacking ablation at 4096 locks: staged messages for different
//     locks to the same destination share one wire flight
//     (ExperimentConfig::lock_piggyback_window); the suite *requires* a
//     >1.5x messages-per-flight reduction over the no-piggyback ablation —
//     the wire-cost argument for sharding one fabric instead of running
//     4096 separate instances;
//   * quorum construction at scale: exact finite-projective-plane quorums
//     (K ~ sqrt(N), N=21) against grid quorums (K ~ 2*sqrt(N)) on the same
//     4096-lock service — the paper's Table 1 quorum-size economics pay
//     off once multiplied by a full lock table's traffic.
#include <cmath>
#include <iostream>
#include <string>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::kT;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "x3_lock_service");
  bench::reject_extra_args(argc, argv, "x3_lock_service");

  const bench::MetricDef kThroughputT{
      "throughput_per_t",
      [](const ExperimentResult& r) {
        return r.summary.throughput * static_cast<double>(kT);
      }};
  const bench::MetricDef kP50{"waiting_p50_t",
                              [](const ExperimentResult& r) {
                                return r.summary.waiting_p50 /
                                       static_cast<double>(kT);
                              }};
  const bench::MetricDef kP95{"waiting_p95_t",
                              [](const ExperimentResult& r) {
                                return r.summary.waiting_p95 /
                                       static_cast<double>(kT);
                              }};
  const bench::MetricDef kP99{"waiting_p99_t",
                              [](const ExperimentResult& r) {
                                return r.summary.waiting_p99 /
                                       static_cast<double>(kT);
                              }};
  const bench::MetricDef kP999{"waiting_p999_t",
                               [](const ExperimentResult& r) {
                                 return r.summary.waiting_p999 /
                                        static_cast<double>(kT);
                               }};
  const bench::MetricDef kWire{
      "wire_msgs_per_cs",
      [](const ExperimentResult& r) { return r.summary.wire_msgs_per_cs; }};
  // Control messages per wire flight: 1.0 = no coalescing; piggybacking
  // pushes it up by letting staged messages ride open flights.
  const bench::MetricDef kMpf{
      "msgs_per_flight", [](const ExperimentResult& r) {
        return r.summary.wire_msgs_per_cs > 0
                   ? r.summary.ctrl_msgs_per_cs / r.summary.wire_msgs_per_cs
                   : 1.0;
      }};

  // Offered load tracks the hottest lock's headroom: the Zipf weight of
  // lock 0 is 1/H where H = sum_k (k+1)^-skew, so aggregate demand
  // 0.6 * C1 * H keeps the hot lock at ~60% of a single lock's
  // conservative capacity C1 = 1/(2T+E) for every (locks, skew) cell.
  // H is capped so the uniform large-table cells stay simulable; the cap
  // is the "million clients behind N proxies" operating point — demand far
  // beyond any single lock's capacity, spread across the table.
  const auto service = [&](int n, LockId locks, double skew,
                           const std::string& quorum, Time piggy_window) {
    harness::ExperimentConfig cfg;
    cfg.algo = mutex::Algo::kCaoSinghal;
    cfg.n = n;
    cfg.quorum = quorum;
    cfg.mean_delay = kT;
    cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
    cfg.workload.cs_duration = 100;  // E = T/10
    cfg.workload.zipf_skew = skew;
    cfg.options.num_locks = locks;
    double hot_headroom = 0;
    for (LockId k = 0; k < locks; ++k)
      hot_headroom += std::pow(static_cast<double>(k + 1), -skew);
    if (hot_headroom > 40.0) hot_headroom = 40.0;
    const double c1 = 1.0 / static_cast<double>(2 * kT + 100);
    cfg.workload.arrival_rate = 0.6 * c1 * hot_headroom / n;
    cfg.warmup = bench::scale_time(200'000);
    cfg.measure = bench::scale_time(2'000'000);
    cfg.lock_piggyback_window = piggy_window;
    // Hot-set tracking: exact per-lock at <= 64 locks, SpaceSaving top-64
    // heavy-hitter sketch at 4096 — the "is this a convoy or uniform load"
    // question the aggregate metrics can't answer.
    cfg.lock_stats_k = 64;
    return cfg;
  };

  bench::Runner run("x3_lock_service", opts);
  const LockId kLockCounts[] = {1, 16, 256, 4096};
  const double kSkews[] = {0.0, 0.9};
  int cell[4][2];
  for (int li = 0; li < 4; ++li)
    for (int si = 0; si < 2; ++si) {
      const std::string label = "locks" + std::to_string(kLockCounts[li]) +
                                "/zipf" + (si == 0 ? "0" : "0.9");
      cell[li][si] = run.add(
          label, service(25, kLockCounts[li], kSkews[si], "grid", kT),
          {kThroughputT, kP50, kP95, kP99, kP999, kWire, kMpf});
    }
  const int no_piggy =
      run.add("locks4096/zipf0/no-piggyback",
              service(25, 4096, 0.0, "grid", -1), {kWire, kMpf});
  const int q_fpp = run.add("quorum-fpp/N21/locks4096",
                            service(21, 4096, 0.0, "fpp", kT),
                            {kThroughputT, kP95, kWire, kMpf});
  const int q_grid = run.add("quorum-grid/N21/locks4096",
                             service(21, 4096, 0.0, "grid", kT),
                             {kThroughputT, kP95, kWire, kMpf});
  // Attribution row: the causal delay-budget engine on a multi-lock,
  // piggybacked, Zipf-skewed cell — the per-lock budget table lands under
  // "critpath" in --json, splitting the hot lock's wait from the cold tail.
  harness::ExperimentConfig crit_cfg = service(25, 16, 0.9, "grid", kT);
  crit_cfg.critpath = true;
  const int crit_row =
      run.add("locks16/zipf0.9/critpath", crit_cfg, {kThroughputT, kP95});
  run.execute();

  std::cout << "X3 — sharded lock service (cao-singhal, N=25, grid quorums, "
               "T=1000, E=T/10,\n     open-loop arrivals pinned at 60% of "
               "the hottest lock's capacity, piggyback window T)\n\n";
  Table t({"locks", "zipf", "thru/T", "wait p50/T", "p95/T", "p99/T",
           "p999/T", "wire msgs/cs", "msgs/flight"});
  for (int li = 0; li < 4; ++li)
    for (int si = 0; si < 2; ++si) {
      const int r = cell[li][si];
      t.add_row({Table::integer(static_cast<uint64_t>(kLockCounts[li])),
                 si == 0 ? "0" : "0.9",
                 Table::num(run.stat(r, "throughput_per_t").mean, 2),
                 Table::num(run.stat(r, "waiting_p50_t").mean, 2),
                 Table::num(run.stat(r, "waiting_p95_t").mean, 2),
                 Table::num(run.stat(r, "waiting_p99_t").mean, 2),
                 Table::num(run.stat(r, "waiting_p999_t").mean, 2),
                 Table::num(run.stat(r, "wire_msgs_per_cs").mean, 1),
                 Table::num(run.stat(r, "msgs_per_flight").mean, 2)});
    }
  t.print(std::cout);

  // Hot-set tables: the per-lock dimension the aggregate grid averages
  // away. Uniform 4096 locks should show a flat top (counts within noise of
  // each other, heavy evictions); zipf 0.9 should put lock 0 far ahead.
  for (int si = 0; si < 2; ++si) {
    obs::LockStats merged;
    for (const auto& r : run.runs(cell[3][si])) merged.merge(r.lock_stats);
    std::cout << "\nHot locks (4096 locks, zipf " << (si == 0 ? "0" : "0.9")
              << "; " << (merged.exact() ? "exact" : "SpaceSaving top-K")
              << ", tracked " << merged.tracked() << "/" << merged.capacity()
              << ", evictions " << merged.evictions() << "):\n";
    Table h({"lock", "count<=", "count>=", "mean wait/T"});
    for (const auto& ent : merged.top(5)) {
      h.add_row({Table::integer(static_cast<uint64_t>(ent.lock)),
                 Table::integer(ent.count),
                 Table::integer(ent.count - ent.overcount),
                 Table::num(ent.count > 0
                                ? ent.wait_sum /
                                      static_cast<double>(ent.count) / kT
                                : 0,
                            2)});
    }
    h.print(std::cout);
    // The skewed cell must identify the pinned hot lock even through the
    // top-K sketch — that's the tracker's whole job at 4096 locks.
    if (si == 1 && merged.tracked() > 0)
      run.require(merged.top(1).front().lock == 0);
  }

  const double mpf_on = run.stat(cell[3][0], "msgs_per_flight").mean;
  const double mpf_off = run.stat(no_piggy, "msgs_per_flight").mean;
  std::cout << "\nPiggybacking ablation (4096 locks, uniform): "
            << Table::num(mpf_on, 2) << " msgs/flight with piggybacking vs "
            << Table::num(mpf_off, 2) << " without — "
            << Table::num(mpf_on / mpf_off, 2) << "x fewer wire flights "
            << "for the same control traffic (gate: >1.5x).\n";
  run.require(mpf_on > 1.5 * mpf_off);

  std::cout << "\nQuorum construction at scale (N=21, 4096 locks, "
               "uniform):\n";
  Table q({"quorum", "K", "thru/T", "wait p95/T", "wire msgs/cs",
           "msgs/flight"});
  for (const auto& [row, name] :
       {std::pair<int, const char*>{q_fpp, "fpp"}, {q_grid, "grid"}}) {
    q.add_row({name, Table::num(run.first(row).mean_quorum_size, 0),
               Table::num(run.stat(row, "throughput_per_t").mean, 2),
               Table::num(run.stat(row, "waiting_p95_t").mean, 2),
               Table::num(run.stat(row, "wire_msgs_per_cs").mean, 1),
               Table::num(run.stat(row, "msgs_per_flight").mean, 2)});
  }
  q.print(std::cout);

  {
    const obs::CritStats& cp = run.first(crit_row).critpath;
    const double w = static_cast<double>(cp.waiting_ticks());
    std::cout << "\nCritical-path budget (16 locks, zipf 0.9, piggyback T): "
              << cp.paths() << " paths, " << cp.contended() << " contended";
    if (w > 0) {
      auto pct = [&](obs::CritBucket b) {
        return Table::num(100.0 * static_cast<double>(cp.ticks(b)) / w, 1);
      };
      std::cout << "; wire " << pct(obs::CritBucket::kWire) << "% queue "
                << pct(obs::CritBucket::kQueue) << "% holder "
                << pct(obs::CritBucket::kHolder) << "% proxy "
                << pct(obs::CritBucket::kProxy) << "% other "
                << pct(obs::CritBucket::kOther) << "%";
    }
    std::cout << "\n";
    // Conservation must survive multi-lock piggybacked traffic too.
    run.require(cp.residual_ticks() == 0);
  }

  std::cout << "\nExpected shape: latency percentiles stay in the same band "
               "across three orders of magnitude of lock count while "
               "absorbed throughput grows; zipf 0.9 rows carry less "
               "aggregate demand at the same hot-lock utilization; fpp's "
               "sqrt(N) quorums cut wire messages per CS vs grid at equal "
               "service quality.\n";
  return run.finish(std::cout);
}
