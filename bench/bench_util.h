// Shared configuration builders for the reproduction benches (E1..E9).
// Conventions: T = 1000 ticks, closed loop = the paper's "heavy load",
// open loop Poisson arrivals = "light load" (§5).
#pragma once

#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/table.h"

namespace dqme::bench {

inline constexpr Time kT = 1000;  // the paper's mean message delay

inline harness::ExperimentConfig heavy(mutex::Algo algo, int n,
                                       const std::string& quorum = "grid",
                                       uint64_t seed = 1) {
  harness::ExperimentConfig cfg;
  cfg.algo = algo;
  cfg.n = n;
  cfg.quorum = quorum;
  cfg.mean_delay = kT;
  cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
  cfg.workload.cs_duration = 100;  // E = T/10
  cfg.warmup = 200'000;
  cfg.measure = 2'000'000;
  cfg.seed = seed;
  return cfg;
}

// `relative_load` = offered aggregate demand as a fraction of the SLOWEST
// baseline's saturation throughput, 1/(2T+E) (Maekawa's cycle). Using the
// slower denominator keeps every algorithm in a stable queueing regime
// across a 0..1 sweep, so cross-algorithm waiting/delay comparisons are
// apples-to-apples. 0.05 = the paper's light load.
inline harness::ExperimentConfig open_load(mutex::Algo algo, int n,
                                           double relative_load,
                                           const std::string& quorum = "grid",
                                           uint64_t seed = 1) {
  harness::ExperimentConfig cfg = heavy(algo, n, quorum, seed);
  cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
  const double capacity =
      1.0 / static_cast<double>(2 * kT + cfg.workload.cs_duration);
  cfg.workload.arrival_rate = relative_load * capacity / n;
  cfg.measure = 4'000'000;
  return cfg;
}

// Prints the standard integrity line every bench ends with: the run is
// only meaningful if Theorems 1-3 held.
inline void print_integrity(const harness::ExperimentResult& r) {
  std::cout << "  [integrity] violations=" << r.summary.violations
            << " drained_clean=" << (r.drained_clean ? "yes" : "NO")
            << " completed=" << r.summary.completed << "\n";
}

}  // namespace dqme::bench
