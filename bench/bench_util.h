// Shared configuration builders and CLI plumbing for the reproduction
// benches (E1..E9, X1..X2, micro_core).
// Conventions: T = 1000 ticks, closed loop = the paper's "heavy load",
// open loop Poisson arrivals = "light load" (§5).
//
// Every bench accepts the same flags (parse_bench_flags):
//   --jobs=N    worker threads for sweep-based suites (0 = all cores)
//   --seeds=K   replications per row (overrides each suite's default)
//   --quick     shrink warmup/measure windows ~8x (CI smoke)
//   --check     attach the online invariant checker to every run; any
//               violation fails the suite (exit 1 + "ok": false in JSON)
//   --json[=PATH]  write machine-readable results (default BENCH_<suite>.json)
//   --trace-out=FILE  also record one short run of the suite's first/
//                 representative config and write a Chrome trace-event JSON
//                 (load in chrome://tracing or ui.perfetto.dev)
#pragma once

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"
#include "obs/chrome_trace.h"
#include "obs/critpath.h"
#include "obs/lock_stats.h"

namespace dqme::bench {

inline constexpr Time kT = 1000;  // the paper's mean message delay

// --quick divides every simulated-time window by this; parse_bench_flags
// sets it so the heavy()/open_load() builders honor the flag everywhere.
inline Time g_time_divisor = 1;

inline Time scale_time(Time t) {
  Time s = t / g_time_divisor;
  return s < 1 ? 1 : s;
}

struct BenchOptions {
  int jobs = 1;           // sweep worker threads; 0 = hardware concurrency
  int seeds = 0;          // 0 = each suite's per-row default
  int threads = 0;        // rt suites only: restrict grid to this site count
  bool quick = false;
  bool check = false;     // run every row under the invariant checker
  bool json = false;
  std::string json_path;  // resolved to BENCH_<suite>.json when empty
  std::string trace_out;  // Chrome trace output path; empty = no trace
  std::string suite;
};

inline void bench_usage(const char* suite) {
  std::cerr << "usage: " << suite
            << " [--jobs=N] [--seeds=K] [--quick] [--check] [--json[=PATH]]"
               " [--trace-out=FILE] [--threads=K (rt suites only)]\n";
}

// Parses the shared bench flags; exits(2) on an unknown flag. Flags it
// consumes are removed from argv (argc updated), so suites with their own
// argument handling (micro_core's google-benchmark flags) can parse the
// remainder. `accepts_threads` is opted into by real-threads suites
// (rt_core); simulator suites reject --threads loudly — the discrete-event
// engine is single-logical-threaded per run, so the flag would silently
// mean nothing there.
inline BenchOptions parse_bench_flags(int& argc, char** argv,
                                      const std::string& suite,
                                      bool accepts_threads = false) {
  BenchOptions o;
  o.suite = suite;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      if (!accepts_threads) {
        std::cerr << suite
                  << ": --threads is only meaningful for real-threads (rt) "
                     "suites; this suite runs on the discrete-event "
                     "simulator (use --jobs=N for sweep parallelism)\n";
        std::exit(2);
      }
      o.threads = std::atoi(arg.c_str() + 10);
      if (o.threads < 2) {
        std::cerr << suite << ": --threads wants an integer >= 2\n";
        std::exit(2);
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      o.jobs = std::atoi(arg.c_str() + 7);
      if (o.jobs < 0) {
        bench_usage(suite.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--seeds=", 0) == 0) {
      o.seeds = std::atoi(arg.c_str() + 8);
      if (o.seeds < 1) {
        bench_usage(suite.c_str());
        std::exit(2);
      }
    } else if (arg == "--quick") {
      o.quick = true;
    } else if (arg == "--check") {
      o.check = true;
    } else if (arg == "--json") {
      o.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      o.json = true;
      o.json_path = arg.substr(7);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      o.trace_out = arg.substr(12);
      if (o.trace_out.empty()) {
        bench_usage(suite.c_str());
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      bench_usage(suite.c_str());
      std::exit(0);
    } else {
      argv[keep++] = argv[i];  // not ours — leave for the suite
    }
  }
  argc = keep;
  if (o.json && o.json_path.empty()) o.json_path = "BENCH_" + suite + ".json";
  if (o.quick) g_time_divisor = 8;
  return o;
}

// For suites with no argument handling of their own: a leftover argument is
// a typo'd flag, and silently running with defaults would masquerade as the
// requested run. micro_core skips this (google-benchmark flags pass through).
inline void reject_extra_args(int argc, char** argv, const std::string& suite) {
  if (argc <= 1) return;
  std::cerr << suite << ": unknown argument '" << argv[1] << "'\n";
  bench_usage(suite.c_str());
  std::exit(2);
}

inline harness::ExperimentConfig heavy(mutex::Algo algo, int n,
                                       const std::string& quorum = "grid",
                                       uint64_t seed = 1) {
  harness::ExperimentConfig cfg;
  cfg.algo = algo;
  cfg.n = n;
  cfg.quorum = quorum;
  cfg.mean_delay = kT;
  cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
  cfg.workload.cs_duration = 100;  // E = T/10
  cfg.warmup = scale_time(200'000);
  cfg.measure = scale_time(2'000'000);
  cfg.seed = seed;
  return cfg;
}

// `relative_load` = offered aggregate demand as a fraction of the SLOWEST
// baseline's saturation throughput, 1/(2T+E) (Maekawa's cycle). Using the
// slower denominator keeps every algorithm in a stable queueing regime
// across a 0..1 sweep, so cross-algorithm waiting/delay comparisons are
// apples-to-apples. 0.05 = the paper's light load.
inline harness::ExperimentConfig open_load(mutex::Algo algo, int n,
                                           double relative_load,
                                           const std::string& quorum = "grid",
                                           uint64_t seed = 1) {
  harness::ExperimentConfig cfg = heavy(algo, n, quorum, seed);
  cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
  const double capacity =
      1.0 / static_cast<double>(2 * kT + cfg.workload.cs_duration);
  cfg.workload.arrival_rate = relative_load * capacity / n;
  cfg.measure = scale_time(4'000'000);
  return cfg;
}

// --trace-out support: records ONE short single run of `cfg` with the
// observability capture attached and writes it as Chrome trace-event JSON.
// Deliberately a separate re-execution — the statistical sweep stays
// recorder-free, so --trace-out never perturbs the numbers a bench reports.
// The windows are capped (traces are for reading, not statistics) to keep
// the JSON loadable in the viewer.
inline void maybe_write_trace(const BenchOptions& opts,
                              harness::ExperimentConfig cfg) {
  if (opts.trace_out.empty()) return;
  if (cfg.warmup > 20'000) cfg.warmup = 20'000;
  if (cfg.measure > 100'000) cfg.measure = 100'000;
  obs::RunCapture cap;
  cfg.capture = &cap;
  harness::run_experiment(cfg);

  obs::ChromeTraceData data;
  data.n_sites = cap.n_sites;
  data.label = cap.label;
  data.messages = std::move(cap.messages);
  data.span_events = std::move(cap.span_events);
  std::ofstream f(opts.trace_out);
  if (!f) {
    std::cerr << "cannot write " << opts.trace_out << "\n";
    return;
  }
  obs::write_chrome_trace(f, data);
  std::cout << "  [trace] wrote " << opts.trace_out << " ("
            << data.messages.size() << " messages, "
            << data.span_events.size() << " span events"
            << (cap.messages_dropped + cap.span_events_dropped > 0
                    ? ", truncated"
                    : "")
            << ")\n";
}

// Prints the standard integrity line every bench ends with: the run is
// only meaningful if Theorems 1-3 held.
inline void print_integrity(const harness::ExperimentResult& r) {
  std::cout << "  [integrity] violations=" << r.summary.violations
            << " drained_clean=" << (r.drained_clean ? "yes" : "NO")
            << " completed=" << r.summary.completed << "\n";
}

// --- machine-readable results (BENCH_*.json) --------------------------

struct JsonMetric {
  std::string metric;
  double mean = 0;
  double sd = 0;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Provenance block: which machine, when, and at which commit the numbers
// were produced. scripts/check_perf.py prints it for both sides of a
// comparison, so a committed baseline that predates the code it gates is
// visible instead of silently trusted. The commit comes from DQME_COMMIT
// (set by CI / the regeneration recipe); "unknown" means a local ad-hoc run.
inline void write_provenance(std::ostream& f) {
  char host[256] = "unknown";
  if (gethostname(host, sizeof host - 1) != 0)
    std::strcpy(host, "unknown");  // NOLINT(runtime/printf)
  host[sizeof host - 1] = '\0';
  char date[32] = "unknown";
  const std::time_t t = std::time(nullptr);
  std::tm tmv{};
  if (gmtime_r(&t, &tmv) != nullptr)
    std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%SZ", &tmv);
  const char* commit = std::getenv("DQME_COMMIT");
  f << "\"provenance\": {\"host\": \"" << json_escape(host)
    << "\", \"date\": \"" << date << "\", \"commit\": \""
    << json_escape(commit != nullptr ? commit : "unknown") << "\"}";
}

// One flat, self-describing file per suite so the perf trajectory can be
// tracked across commits: suite + per-metric (mean, sd) + engine totals.
// `registry` (optional) embeds the merged obs::Registry of the sweep under
// a "registry" key — counters/gauges/histograms in deterministic order.
// `timeline` (optional) embeds the merged obs::Timeline under a "timeline"
// key — per-window series + markers, same determinism contract.
// `lock_stats` (optional) embeds the merged obs::LockStats hot-set tracker
// under a "lock_stats" key.
// `critpath` (optional) embeds the merged obs::CritStats delay budget
// under a "critpath" key — integer counters merged in result-index order,
// so the bytes are identical for any --jobs value.
inline void write_bench_json(const BenchOptions& opts, bool ok,
                             double wall_ms, double events_per_sec,
                             const std::vector<JsonMetric>& metrics,
                             const obs::Registry* registry = nullptr,
                             const obs::Timeline* timeline = nullptr,
                             const obs::LockStats* lock_stats = nullptr,
                             const obs::CritStats* critpath = nullptr) {
  if (!opts.json) return;
  std::ofstream f(opts.json_path);
  if (!f) {
    std::cerr << "cannot write " << opts.json_path << "\n";
    return;
  }
  f << "{\n"
    << "  \"suite\": \"" << json_escape(opts.suite) << "\",\n"
    << "  \"ok\": " << (ok ? "true" : "false") << ",\n"
    << "  \"jobs\": " << opts.jobs << ",\n"
    << "  \"seeds\": " << opts.seeds << ",\n"
    << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n"
    << "  \"wall_ms\": " << json_num(wall_ms) << ",\n"
    << "  \"events_per_sec\": " << json_num(events_per_sec) << ",\n"
    << "  ";
  write_provenance(f);
  f << ",\n"
    << "  \"metrics\": [";
  for (size_t i = 0; i < metrics.size(); ++i) {
    f << (i ? "," : "") << "\n    {\"suite\": \"" << json_escape(opts.suite)
      << "\", \"metric\": \"" << json_escape(metrics[i].metric)
      << "\", \"mean\": " << json_num(metrics[i].mean)
      << ", \"sd\": " << json_num(metrics[i].sd) << "}";
  }
  f << "\n  ]";
  if (registry != nullptr && !registry->empty()) {
    f << ",\n  \"registry\": ";
    registry->write_json(f);
  }
  if (timeline != nullptr && timeline->enabled() && !timeline->empty()) {
    f << ",\n  \"timeline\": ";
    timeline->write_json(f);
  }
  if (lock_stats != nullptr && lock_stats->enabled()) {
    f << ",\n  \"lock_stats\": ";
    lock_stats->write_json(f);
  }
  if (critpath != nullptr && critpath->enabled()) {
    f << ",\n  \"critpath\": ";
    critpath->write_json(f);
  }
  f << "\n}\n";
  std::cout << "  [json] wrote " << opts.json_path << "\n";
}

// Minimal flags + JSON plumbing for suites not yet ported to bench::Runner
// (follow-up: port them row-by-row like e1/e3/e7). --quick takes effect
// through the heavy()/open_load() builders; --jobs/--seeds are accepted
// for CLI uniformity but only sweep-based suites use them; --json records
// suite, ok, wall_ms (no per-metric rows until the port).
class SuiteGuard {
 public:
  SuiteGuard(int& argc, char** argv, const std::string& suite)
      : opts_(parse_bench_flags(argc, argv, suite)),
        start_(std::chrono::steady_clock::now()) {
    reject_extra_args(argc, argv, suite);
  }

  const BenchOptions& options() const { return opts_; }

  // Honors --trace-out for unported suites: call once with the suite's
  // representative config (no-op unless the flag was given).
  void trace(const harness::ExperimentConfig& cfg) const {
    maybe_write_trace(opts_, cfg);
  }

  // Call as the last statement of main: emits JSON, returns the exit code.
  int finish(bool ok) const {
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    write_bench_json(opts_, ok, wall_ms, 0, {});
    return ok ? 0 : 1;
  }

 private:
  BenchOptions opts_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dqme::bench
