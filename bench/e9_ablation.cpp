// E9 — ablations of the paper's two design choices:
//  (a) the transfer/proxy path (§3's contribution): disabling it reverts
//      the handoff to release->arbiter->reply, i.e. Maekawa's 2T;
//  (b) piggybacking (§5: "a control message piggybacked with another
//      message is counted as one message"): disabling it inflates the wire
//      count while leaving control-message counts unchanged.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "e9_ablation");
  using namespace dqme;
  using bench::heavy;
  using harness::ExperimentConfig;
  using harness::Table;

  suite_guard.trace(heavy(mutex::Algo::kCaoSinghal, 25));

  std::cout << "E9 — ablations (N=25, grid, saturated, T=1000, E=T/10)\n\n";
  bool ok = true;

  std::cout << "(a) proxy transfer path:\n";
  Table a({"variant", "delay/T", "throughput CS/T", "msgs/CS",
           "replies forwarded"});
  for (bool proxy : {true, false}) {
    ExperimentConfig cfg = heavy(
        proxy ? mutex::Algo::kCaoSinghal : mutex::Algo::kCaoSinghalNoProxy,
        25);
    auto r = harness::run_experiment(cfg);
    ok = ok && r.summary.violations == 0 && r.drained_clean;
    a.add_row({proxy ? "proposed (proxy on)" : "proxy off (Maekawa-style)",
               Table::num(r.sync_delay_in_t, 2),
               Table::num(r.summary.throughput * bench::kT, 3),
               Table::num(r.summary.wire_msgs_per_cs, 1),
               Table::integer(r.protocol_stats.replies_forwarded)});
  }
  a.print(std::cout);

  std::cout << "\n(b) piggybacking:\n";
  Table b({"variant", "wire msgs/CS", "ctrl msgs/CS", "delay/T"});
  for (bool piggyback : {true, false}) {
    ExperimentConfig cfg = heavy(mutex::Algo::kCaoSinghal, 25);
    cfg.options.piggyback = piggyback;
    auto r = harness::run_experiment(cfg);
    ok = ok && r.summary.violations == 0 && r.drained_clean;
    b.add_row({piggyback ? "piggyback on (paper)" : "piggyback off",
               Table::num(r.summary.wire_msgs_per_cs, 1),
               Table::num(r.summary.ctrl_msgs_per_cs, 1),
               Table::num(r.sync_delay_in_t, 2)});
  }
  b.print(std::cout);

  std::cout << "\nExpected shape: (a) proxy off doubles the delay and "
               "roughly halves throughput at the same message budget — the "
               "entire contribution of the paper in one row pair; (b) "
               "piggyback off keeps control messages equal but pays more "
               "wire messages.\n"
            << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return suite_guard.finish(ok);
}
