// E9 — ablations of the paper's two design choices:
//  (a) the transfer/proxy path (§3's contribution): disabling it reverts
//      the handoff to release->arbiter->reply, i.e. Maekawa's 2T;
//  (b) piggybacking (§5: "a control message piggybacked with another
//      message is counted as one message"): disabling it inflates the wire
//      count while leaving control-message counts unchanged.
//
// Ported to the unified bench::Runner: all four variants run as one
// parallel sweep.
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::heavy;
  using harness::ExperimentConfig;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e9_ablation");
  bench::reject_extra_args(argc, argv, "e9_ablation");

  const bench::MetricDef kDelayT{
      "delay_t",
      [](const ExperimentResult& r) { return r.sync_delay_in_t; }};
  const bench::MetricDef kThroughput{
      "throughput_per_t", [](const ExperimentResult& r) {
        return r.summary.throughput * bench::kT;
      }};
  const bench::MetricDef kWire{
      "wire_msgs_per_cs",
      [](const ExperimentResult& r) { return r.summary.wire_msgs_per_cs; }};
  const bench::MetricDef kCtrl{
      "ctrl_msgs_per_cs",
      [](const ExperimentResult& r) { return r.summary.ctrl_msgs_per_cs; }};
  const std::vector<bench::MetricDef> kMetrics{kDelayT, kThroughput, kWire,
                                               kCtrl};

  bench::Runner run("e9_ablation", opts);
  const int proxy_on = run.add(
      "proxy_on", heavy(mutex::Algo::kCaoSinghal, 25), kMetrics);
  const int proxy_off = run.add(
      "proxy_off", heavy(mutex::Algo::kCaoSinghalNoProxy, 25), kMetrics);
  ExperimentConfig no_piggy = heavy(mutex::Algo::kCaoSinghal, 25);
  no_piggy.options.piggyback = false;
  const int piggy_off = run.add("piggyback_off", no_piggy, kMetrics);
  run.execute();

  std::cout << "E9 — ablations (N=25, grid, saturated, T=1000, E=T/10)\n\n";

  std::cout << "(a) proxy transfer path:\n";
  Table a({"variant", "delay/T", "throughput CS/T", "msgs/CS",
           "replies forwarded"});
  for (int row : {proxy_on, proxy_off}) {
    const auto& r = run.first(row);
    a.add_row({row == proxy_on ? "proposed (proxy on)"
                               : "proxy off (Maekawa-style)",
               Table::num(run.stat(row, "delay_t").mean, 2),
               Table::num(run.stat(row, "throughput_per_t").mean, 3),
               Table::num(run.stat(row, "wire_msgs_per_cs").mean, 1),
               Table::integer(r.protocol_stats.replies_forwarded)});
  }
  a.print(std::cout);

  std::cout << "\n(b) piggybacking:\n";
  Table b({"variant", "wire msgs/CS", "ctrl msgs/CS", "delay/T"});
  for (int row : {proxy_on, piggy_off}) {
    b.add_row({row == proxy_on ? "piggyback on (paper)" : "piggyback off",
               Table::num(run.stat(row, "wire_msgs_per_cs").mean, 1),
               Table::num(run.stat(row, "ctrl_msgs_per_cs").mean, 1),
               Table::num(run.stat(row, "delay_t").mean, 2)});
  }
  b.print(std::cout);

  std::cout << "\nExpected shape: (a) proxy off doubles the delay and "
               "roughly halves throughput at the same message budget — the "
               "entire contribution of the paper in one row pair; (b) "
               "piggyback off keeps control messages equal but pays more "
               "wire messages.\n";
  return run.finish(std::cout);
}
