// E2 — §5.1/§5.2: messages per CS execution, from light load (3(K-1)) to
// saturation (5(K-1)..6(K-1)), with the per-type breakdown, across N.
//
// Ported to the unified bench::Runner: the whole (N × load) grid is one
// parallel sweep, and the light-load row doubles as the K probe (the mean
// quorum size is load-independent), so no extra probe runs are needed.
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e2_message_complexity");
  bench::reject_extra_args(argc, argv, "e2_message_complexity");

  const bench::MetricDef kWire{
      "wire_msgs_per_cs",
      [](const ExperimentResult& r) { return r.summary.wire_msgs_per_cs; }};
  const bench::MetricDef kCtrl{
      "ctrl_msgs_per_cs",
      [](const ExperimentResult& r) { return r.summary.ctrl_msgs_per_cs; }};
  const bench::MetricDef kCompleted{
      "completed", [](const ExperimentResult& r) {
        return static_cast<double>(r.summary.completed);
      }};

  bench::Runner run("e2_message_complexity", opts);
  const int ns[] = {9, 25, 49};
  const double loads[] = {0.02, 0.2, 0.5, 0.8};
  // Built with += rather than operator+ chains: GCC 12's -Wrestrict trips a
  // false positive on `"lit" + std::string&&` under heavy inlining.
  auto label = [](int n, const std::string& suffix) {
    std::string s = "N";
    s += std::to_string(n);
    s += "/";
    s += suffix;
    return s;
  };
  int row[3][4], sat[3];
  for (int i = 0; i < 3; ++i) {
    for (int l = 0; l < 4; ++l)
      row[i][l] = run.add(label(ns[i], Table::num(loads[l], 2)),
                          open_load(mutex::Algo::kCaoSinghal, ns[i], loads[l]),
                          {kWire, kCtrl, kCompleted});
    sat[i] = run.add(label(ns[i], "saturated"),
                     heavy(mutex::Algo::kCaoSinghal, ns[i]),
                     {kWire, kCtrl, kCompleted});
  }
  run.execute();

  std::cout << "E2 — messages per CS vs load (proposed algorithm, grid "
               "quorums, T=1000)\n\n";
  for (int i = 0; i < 3; ++i) {
    const double k1 = run.first(row[i][0]).mean_quorum_size - 1;
    std::cout << "N=" << ns[i]
              << "  K=" << run.first(row[i][0]).mean_quorum_size
              << "  paper bands: light 3(K-1)=" << 3 * k1
              << ", heavy 5(K-1)=" << 5 * k1 << " .. 6(K-1)=" << 6 * k1
              << "\n";
    Table t({"load", "msgs/CS (wire)", "ctrl msgs/CS", "of band 3(K-1)",
             "completed"});
    auto add = [&](const std::string& label, int r) {
      const double wire = run.stat(r, "wire_msgs_per_cs").mean;
      t.add_row({label, Table::num(wire, 2),
                 Table::num(run.stat(r, "ctrl_msgs_per_cs").mean, 2),
                 Table::num(wire / (3 * k1), 2) + "x",
                 Table::integer(static_cast<uint64_t>(
                     run.stat(r, "completed").mean))});
    };
    for (int l = 0; l < 4; ++l) add(Table::num(loads[l], 2), row[i][l]);
    add("saturated", sat[i]);
    t.print(std::cout);

    // Per-type breakdown at saturation — the §5.2 accounting.
    const auto& s = run.first(sat[i]);
    Table bt({"type", "per CS", "paper (heavy)"});
    auto per = [&](net::MsgType ty) {
      return Table::num(s.summary.per_type_per_cs[static_cast<size_t>(ty)],
                        2);
    };
    bt.add_row({"request", per(net::MsgType::kRequest), "K-1"});
    bt.add_row({"reply", per(net::MsgType::kReply), "K-1"});
    bt.add_row({"release", per(net::MsgType::kRelease), "K-1"});
    bt.add_row({"transfer", per(net::MsgType::kTransfer),
                "K-1 (mostly piggybacked)"});
    bt.add_row({"inquire", per(net::MsgType::kInquire), "piggybacked"});
    bt.add_row({"fail", per(net::MsgType::kFail), "<= K-1"});
    bt.add_row({"yield", per(net::MsgType::kYield), "<= K-1"});
    bt.print(std::cout);
    std::cout << "\n";
  }
  return run.finish(std::cout);
}
