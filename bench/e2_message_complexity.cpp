// E2 — §5.1/§5.2: messages per CS execution, from light load (3(K-1)) to
// saturation (5(K-1)..6(K-1)), with the per-type breakdown, across N.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "e2_message_complexity");
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::Table;

  std::cout << "E2 — messages per CS vs load (proposed algorithm, grid "
               "quorums, T=1000)\n\n";

  bool ok = true;
  for (int n : {9, 25, 49}) {
    auto probe = harness::run_experiment(open_load(
        mutex::Algo::kCaoSinghal, n, 0.02));
    const double k1 = probe.mean_quorum_size - 1;
    std::cout << "N=" << n << "  K=" << probe.mean_quorum_size
              << "  paper bands: light 3(K-1)=" << 3 * k1
              << ", heavy 5(K-1)=" << 5 * k1 << " .. 6(K-1)=" << 6 * k1
              << "\n";
    Table t({"load", "msgs/CS (wire)", "ctrl msgs/CS", "of band 3(K-1)",
             "completed"});
    for (double load : {0.02, 0.2, 0.5, 0.8}) {
      auto r = harness::run_experiment(
          open_load(mutex::Algo::kCaoSinghal, n, load));
      ok = ok && r.summary.violations == 0 && r.drained_clean;
      t.add_row({Table::num(load, 2),
                 Table::num(r.summary.wire_msgs_per_cs, 2),
                 Table::num(r.summary.ctrl_msgs_per_cs, 2),
                 Table::num(r.summary.wire_msgs_per_cs / (3 * k1), 2) + "x",
                 Table::integer(r.summary.completed)});
    }
    auto sat = harness::run_experiment(heavy(mutex::Algo::kCaoSinghal, n));
    ok = ok && sat.summary.violations == 0 && sat.drained_clean;
    t.add_row({"saturated", Table::num(sat.summary.wire_msgs_per_cs, 2),
               Table::num(sat.summary.ctrl_msgs_per_cs, 2),
               Table::num(sat.summary.wire_msgs_per_cs / (3 * k1), 2) + "x",
               Table::integer(sat.summary.completed)});
    t.print(std::cout);

    // Per-type breakdown at saturation — the §5.2 accounting.
    Table bt({"type", "per CS", "paper (heavy)"});
    auto per = [&](net::MsgType ty) {
      return Table::num(
          sat.summary.per_type_per_cs[static_cast<size_t>(ty)], 2);
    };
    bt.add_row({"request", per(net::MsgType::kRequest), "K-1"});
    bt.add_row({"reply", per(net::MsgType::kReply), "K-1"});
    bt.add_row({"release", per(net::MsgType::kRelease), "K-1"});
    bt.add_row({"transfer", per(net::MsgType::kTransfer),
                "K-1 (mostly piggybacked)"});
    bt.add_row({"inquire", per(net::MsgType::kInquire), "piggybacked"});
    bt.add_row({"fail", per(net::MsgType::kFail), "<= K-1"});
    bt.add_row({"yield", per(net::MsgType::kYield), "<= K-1"});
    bt.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return suite_guard.finish(ok);
}
