// E6 — §5.3/§6: quorum size K per construction as N grows. The paper's
// claims: grid/FPP ~ sqrt(N); tree log N best case; HQC N^0.63 (the OCR
// prints N^0.43 — DESIGN.md D5; we report measured sizes and the fitted
// exponent); grid-set ~ (m+1)/2 * grid(G); RST ~ (G+1)/2 * grid(m);
// majority (N+1)/2.
//
// Ported to the unified bench::Runner via add_custom: each series (and the
// tree-degradation sweep) is one combinatorics job on the worker pool, and
// its per-N sizes land in the run's registry for the tables and the suite
// JSON.
#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "quorum/factory.h"
#include "quorum/tree.h"
#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e6_quorum_size");
  bench::reject_extra_args(argc, argv, "e6_quorum_size");

  struct Series {
    const char* kind;
    std::vector<int> ns;
    const char* paper;
  };
  const std::vector<Series> series = {
      {"grid", {9, 25, 49, 100, 400, 2500, 10000}, "~2*sqrt(N)-1"},
      {"fpp", {7, 13, 31, 57, 133, 307}, "q+1 ~ sqrt(N)"},
      {"tree", {7, 15, 31, 63, 127, 255, 1023}, "log2(N+1) best case"},
      {"hqc", {9, 27, 81, 243, 729, 6561}, "N^0.63 (OCR: N^0.43)"},
      {"majority", {9, 25, 101, 1001}, "floor(N/2)+1"},
      {"gridset", {16, 36, 100, 400, 2500}, "(m/2+1)*grid(G)"},
      {"rst", {16, 36, 100, 400, 2500}, "(G/2+1)*grid(m)"},
  };
  const std::vector<int> dead_counts = {0, 5, 15, 30, 50, 63};

  auto gauge_of = [](const char* name) {
    return [name](const ExperimentResult& r) {
      const double* g = r.registry.find_gauge(name);
      return g != nullptr ? *g : 0;
    };
  };

  bench::Runner run("e6_quorum_size", opts);
  std::vector<int> srow;
  for (const Series& s : series) {
    srow.push_back(run.add_custom(
        s.kind,
        [s](uint64_t) {
          ExperimentResult res;
          res.drained_clean = true;  // combinatorics: nothing to drain
          double sum_log_k = 0, sum_log_n = 0, sum_log_kn = 0,
                 sum_log_n2 = 0;
          for (int n : s.ns) {
            auto qs = quorum::make_quorum_system(s.kind, n);
            const double k = qs->mean_quorum_size();
            const std::string nn = std::to_string(n);
            res.registry.gauge("K.mean.N" + nn) = k;
            res.registry.gauge("K.max.N" + nn) =
                static_cast<double>(qs->max_quorum_size());
            // Least-squares fit of log K = a log N + b.
            const double ln = std::log(static_cast<double>(n));
            const double lk = std::log(k);
            sum_log_n += ln;
            sum_log_k += lk;
            sum_log_kn += ln * lk;
            sum_log_n2 += ln * ln;
          }
          const double cnt = static_cast<double>(s.ns.size());
          res.registry.gauge("exponent") =
              (cnt * sum_log_kn - sum_log_n * sum_log_k) /
              (cnt * sum_log_n2 - sum_log_n * sum_log_n);
          return res;
        },
        {{"exponent", gauge_of("exponent")}}));
  }

  // §6: the tree quorum's graceful degradation — log N paths when all is
  // well, growing toward majority-sized substituted sets as sites fail
  // (the paper quotes the degraded worst case; we measure the whole curve).
  const int tree_row = run.add_custom(
      "tree_degradation",
      [dead_counts](uint64_t seed) {
        ExperimentResult res;
        res.drained_clean = true;
        quorum::TreeQuorum tree(127);
        Rng rng(40 + seed);  // seed 1 reproduces the historical Rng(41) run
        for (int dead : dead_counts) {
          int avail = 0, maxk = 0;
          double sumk = 0;
          const int trials = 2000;
          for (int trial = 0; trial < trials; ++trial) {
            std::vector<bool> alive(127, true);
            for (int v : rng.sample_without_replacement(127, dead))
              alive[static_cast<size_t>(v)] = false;
            auto q = tree.quorum_for_alive(
                static_cast<SiteId>(rng.uniform_int(0, 126)), alive);
            if (!q) continue;
            ++avail;
            sumk += static_cast<double>(q->size());
            maxk = std::max(maxk, static_cast<int>(q->size()));
          }
          const std::string d = std::to_string(dead);
          res.registry.gauge("avail_pct.D" + d) = 100.0 * avail / 2000;
          res.registry.gauge("K.mean.D" + d) = avail ? sumk / avail : 0;
          res.registry.gauge("K.max.D" + d) = maxk;
        }
        return res;
      },
      {{"avail_pct.D63", gauge_of("avail_pct.D63")},
       {"K.mean.D63", gauge_of("K.mean.D63")}});
  run.execute();

  std::cout << "E6 — quorum sizes by construction\n\n";
  for (size_t i = 0; i < series.size(); ++i) {
    const Series& s = series[i];
    const auto& reg = run.first(srow[i]).registry;
    const double exponent = *reg.find_gauge("exponent");
    std::cout << s.kind << "  (paper: " << s.paper << "; fitted K ~ N^"
              << Table::num(exponent, 2) << ")\n";
    Table t({"N", "mean K", "max K", "K/sqrt(N)", "K/log2(N)"});
    for (int n : s.ns) {
      const std::string nn = std::to_string(n);
      const double k = *reg.find_gauge("K.mean.N" + nn);
      t.add_row({Table::integer(static_cast<uint64_t>(n)), Table::num(k, 2),
                 Table::integer(static_cast<uint64_t>(
                     *reg.find_gauge("K.max.N" + nn))),
                 Table::num(k / std::sqrt(static_cast<double>(n)), 2),
                 Table::num(k / std::log2(static_cast<double>(n)), 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: grid/FPP exponent ~0.5, tree ~log "
               "(exponent -> 0), HQC ~0.63, majority ~1.0, grid-set/RST "
               "between 0.5 and 1.\n\n";

  std::cout << "Tree quorum size under failures (N=127, best case "
            << "log2(128)=7; mean/max over 2000 random failure sets)\n";
  {
    const auto& reg = run.first(tree_row).registry;
    Table t({"failed sites", "available", "mean K", "max K"});
    for (int dead : dead_counts) {
      const std::string d = std::to_string(dead);
      const double avail = *reg.find_gauge("avail_pct.D" + d);
      t.add_row({Table::integer(static_cast<uint64_t>(dead)),
                 Table::num(avail, 1) + "%",
                 avail > 0 ? Table::num(*reg.find_gauge("K.mean.D" + d), 2)
                           : "-",
                 avail > 0 ? Table::integer(static_cast<uint64_t>(
                                 *reg.find_gauge("K.max.D" + d)))
                           : "-"});
    }
    t.print(std::cout);
  }
  return run.finish(std::cout);
}
