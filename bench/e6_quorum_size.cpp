// E6 — §5.3/§6: quorum size K per construction as N grows. The paper's
// claims: grid/FPP ~ sqrt(N); tree log N best case; HQC N^0.63 (the OCR
// prints N^0.43 — DESIGN.md D5; we report measured sizes and the fitted
// exponent); grid-set ~ (m+1)/2 * grid(G); RST ~ (G+1)/2 * grid(m);
// majority (N+1)/2.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "quorum/factory.h"
#include "quorum/tree.h"

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "e6_quorum_size");
  using namespace dqme;
  using harness::Table;

  std::cout << "E6 — quorum sizes by construction\n\n";

  struct Series {
    const char* kind;
    std::vector<int> ns;
    const char* paper;
  };
  const Series series[] = {
      {"grid", {9, 25, 49, 100, 400, 2500, 10000}, "~2*sqrt(N)-1"},
      {"fpp", {7, 13, 31, 57, 133, 307}, "q+1 ~ sqrt(N)"},
      {"tree", {7, 15, 31, 63, 127, 255, 1023}, "log2(N+1) best case"},
      {"hqc", {9, 27, 81, 243, 729, 6561}, "N^0.63 (OCR: N^0.43)"},
      {"majority", {9, 25, 101, 1001}, "floor(N/2)+1"},
      {"gridset", {16, 36, 100, 400, 2500}, "(m/2+1)*grid(G)"},
      {"rst", {16, 36, 100, 400, 2500}, "(G/2+1)*grid(m)"},
  };

  for (const Series& s : series) {
    Table t({"N", "mean K", "max K", "K/sqrt(N)", "K/log2(N)"});
    double sum_log_k = 0, sum_log_n = 0, sum_log_kn = 0, sum_log_n2 = 0;
    int cnt = 0;
    for (int n : s.ns) {
      auto qs = quorum::make_quorum_system(s.kind, n);
      const double k = qs->mean_quorum_size();
      t.add_row({Table::integer(static_cast<uint64_t>(n)), Table::num(k, 2),
                 Table::integer(static_cast<uint64_t>(qs->max_quorum_size())),
                 Table::num(k / std::sqrt(static_cast<double>(n)), 2),
                 Table::num(k / std::log2(static_cast<double>(n)), 2)});
      // Least-squares fit of log K = a log N + b.
      const double ln = std::log(static_cast<double>(n));
      const double lk = std::log(k);
      sum_log_n += ln;
      sum_log_k += lk;
      sum_log_kn += ln * lk;
      sum_log_n2 += ln * ln;
      ++cnt;
    }
    const double exponent =
        (cnt * sum_log_kn - sum_log_n * sum_log_k) /
        (cnt * sum_log_n2 - sum_log_n * sum_log_n);
    std::cout << s.kind << "  (paper: " << s.paper
              << "; fitted K ~ N^" << Table::num(exponent, 2) << ")\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: grid/FPP exponent ~0.5, tree ~log "
               "(exponent -> 0), HQC ~0.63, majority ~1.0, grid-set/RST "
               "between 0.5 and 1.\n\n";

  // §6: the tree quorum's graceful degradation — log N paths when all is
  // well, growing toward majority-sized substituted sets as sites fail
  // (the paper quotes the degraded worst case; we measure the whole curve).
  std::cout << "Tree quorum size under failures (N=127, best case "
            << "log2(128)=7; mean/max over 2000 random failure sets)\n";
  {
    quorum::TreeQuorum tree(127);
    Rng rng(41);
    Table t({"failed sites", "available", "mean K", "max K"});
    for (int dead : {0, 5, 15, 30, 50, 63}) {
      int avail = 0, maxk = 0;
      double sumk = 0;
      const int trials = 2000;
      for (int trial = 0; trial < trials; ++trial) {
        std::vector<bool> alive(127, true);
        for (int v : rng.sample_without_replacement(127, dead))
          alive[static_cast<size_t>(v)] = false;
        auto q = tree.quorum_for_alive(
            static_cast<SiteId>(rng.uniform_int(0, 126)), alive);
        if (!q) continue;
        ++avail;
        sumk += static_cast<double>(q->size());
        maxk = std::max(maxk, static_cast<int>(q->size()));
      }
      t.add_row({Table::integer(static_cast<uint64_t>(dead)),
                 Table::num(100.0 * avail / trials, 1) + "%",
                 avail ? Table::num(sumk / avail, 2) : "-",
                 avail ? Table::integer(static_cast<uint64_t>(maxk)) : "-"});
    }
    t.print(std::cout);
  }
  return suite_guard.finish(true);
}
