// E8 — §5.2's case analysis: how often each arbiter-side case fires under
// load, and that the observed message cost per CS stays within the paper's
// 6(K-1) ceiling.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "e8_case_analysis");
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::Table;

  suite_guard.trace(heavy(mutex::Algo::kCaoSinghal, 25));

  std::cout << "E8 — arbiter case frequencies (proposed algorithm, N=25, "
               "grid, K=9)\n\n";
  bool ok = true;
  Table t({"load", "free grant", "c1 q0,r<L", "c2 q0,L<r", "c3 r>head",
           "c4 r<h<L", "c5 r<L<h", "c6 L<r<h", "msgs/CS", "6(K-1)"});
  auto add = [&](const std::string& name, const harness::ExperimentResult& r) {
    const auto& c = r.case_stats;
    const double total = static_cast<double>(c.total());
    auto pct = [&](uint64_t v) {
      return Table::num(100.0 * static_cast<double>(v) / total, 1) + "%";
    };
    ok = ok && r.summary.violations == 0 && r.drained_clean;
    const double ceiling = 6.0 * (r.mean_quorum_size - 1);
    ok = ok && r.summary.wire_msgs_per_cs <= ceiling + 1;
    t.add_row({name, pct(c.grant_free), pct(c.c1_empty_higher),
               pct(c.c2_empty_lower), pct(c.c3_fail_newcomer),
               pct(c.c4_displace_head), pct(c.c5_beats_lock),
               pct(c.c6_between), Table::num(r.summary.wire_msgs_per_cs, 1),
               Table::num(ceiling, 0)});
  };
  for (double load : {0.05, 0.3, 0.6, 0.9}) {
    add(Table::num(load, 2), harness::run_experiment(open_load(
                                 mutex::Algo::kCaoSinghal, 25, load)));
  }
  add("saturated",
      harness::run_experiment(heavy(mutex::Algo::kCaoSinghal, 25)));
  t.print(std::cout);

  std::cout << "\nProxy path utilisation at saturation:\n";
  auto sat = harness::run_experiment(heavy(mutex::Algo::kCaoSinghal, 25));
  ok = ok && sat.summary.violations == 0 && sat.drained_clean;
  Table u({"metric", "count"});
  u.add_row({"replies forwarded by proxies",
             Table::integer(sat.protocol_stats.replies_forwarded)});
  u.add_row({"replies sent by arbiters",
             Table::integer(sat.protocol_stats.replies_direct)});
  u.add_row({"transfers accepted",
             Table::integer(sat.protocol_stats.transfers_accepted)});
  u.add_row({"transfers discarded as outdated",
             Table::integer(sat.protocol_stats.transfers_ignored)});
  u.add_row({"yields", Table::integer(sat.protocol_stats.yields_sent)});
  u.add_row({"inquires deferred (early/hopeful)",
             Table::integer(sat.protocol_stats.inquires_deferred)});
  u.print(std::cout);

  std::cout << "\nExpected shape: at light load free grants dominate; at "
               "saturation the contended cases (c2/c3/c6) dominate and "
               "msgs/CS stays below the 6(K-1) ceiling; most handoffs ride "
               "the proxy path.\n"
            << "[integrity] all runs safe, drained, under ceiling: "
            << (ok ? "yes" : "NO") << "\n";
  return suite_guard.finish(ok);
}
