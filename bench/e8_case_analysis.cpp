// E8 — §5.2's case analysis: how often each arbiter-side case fires under
// load, and that the observed message cost per CS stays within the paper's
// 6(K-1) ceiling.
//
// Ported to the unified bench::Runner: the load sweep runs as one parallel
// sweep, the saturated row doubles as the proxy-utilisation probe, and the
// ceiling check folds into the runner's exit code via require().
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e8_case_analysis");
  bench::reject_extra_args(argc, argv, "e8_case_analysis");

  const bench::MetricDef kWire{
      "wire_msgs_per_cs",
      [](const ExperimentResult& r) { return r.summary.wire_msgs_per_cs; }};

  bench::Runner run("e8_case_analysis", opts);
  const double loads[] = {0.05, 0.3, 0.6, 0.9};
  int rows[4];
  for (int i = 0; i < 4; ++i)
    rows[i] = run.add("load/" + Table::num(loads[i], 2),
                      open_load(mutex::Algo::kCaoSinghal, 25, loads[i]),
                      {kWire});
  const int sat = run.add("saturated", heavy(mutex::Algo::kCaoSinghal, 25),
                          {kWire});
  run.execute();

  std::cout << "E8 — arbiter case frequencies (proposed algorithm, N=25, "
               "grid, K=9)\n\n";
  Table t({"load", "free grant", "c1 q0,r<L", "c2 q0,L<r", "c3 r>head",
           "c4 r<h<L", "c5 r<L<h", "c6 L<r<h", "msgs/CS", "6(K-1)"});
  auto add = [&](const std::string& name, int row) {
    const ExperimentResult& r = run.first(row);
    const auto& c = r.case_stats;
    const double total = static_cast<double>(c.total());
    auto pct = [&](uint64_t v) {
      return Table::num(100.0 * static_cast<double>(v) / total, 1) + "%";
    };
    const double ceiling = 6.0 * (r.mean_quorum_size - 1);
    run.require(run.stat(row, "wire_msgs_per_cs").mean <= ceiling + 1);
    t.add_row({name, pct(c.grant_free), pct(c.c1_empty_higher),
               pct(c.c2_empty_lower), pct(c.c3_fail_newcomer),
               pct(c.c4_displace_head), pct(c.c5_beats_lock),
               pct(c.c6_between),
               Table::num(run.stat(row, "wire_msgs_per_cs").mean, 1),
               Table::num(ceiling, 0)});
  };
  for (int i = 0; i < 4; ++i) add(Table::num(loads[i], 2), rows[i]);
  add("saturated", sat);
  t.print(std::cout);

  std::cout << "\nProxy path utilisation at saturation:\n";
  const auto& satr = run.first(sat);
  Table u({"metric", "count"});
  u.add_row({"replies forwarded by proxies",
             Table::integer(satr.protocol_stats.replies_forwarded)});
  u.add_row({"replies sent by arbiters",
             Table::integer(satr.protocol_stats.replies_direct)});
  u.add_row({"transfers accepted",
             Table::integer(satr.protocol_stats.transfers_accepted)});
  u.add_row({"transfers discarded as outdated",
             Table::integer(satr.protocol_stats.transfers_ignored)});
  u.add_row({"yields", Table::integer(satr.protocol_stats.yields_sent)});
  u.add_row({"inquires deferred (early/hopeful)",
             Table::integer(satr.protocol_stats.inquires_deferred)});
  u.print(std::cout);

  std::cout << "\nExpected shape: at light load free grants dominate; at "
               "saturation the contended cases (c2/c3/c6) dominate and "
               "msgs/CS stays below the 6(K-1) ceiling; most handoffs ride "
               "the proxy path.\n";
  return run.finish(std::cout);
}
