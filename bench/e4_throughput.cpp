// E4 — §5.2: "at heavy loads, the rate of CS execution (i.e., throughput)
// is doubled" relative to Maekawa. Swept over CS durations: the advantage
// is largest when E << T (delay-dominated) and shrinks as E dominates.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "e4_throughput");
  using namespace dqme;
  using bench::heavy;
  using bench::kT;
  using harness::Table;

  std::cout << "E4 — saturated throughput, proposed vs Maekawa (N=25, "
               "grid)\n\n";
  Table t({"E (CS ticks)", "proposed CS/T", "maekawa CS/T", "speedup",
           "ideal 1/(E+T) vs 1/(E+2T)"});
  bool ok = true;
  for (Time e : {10, 100, 500, 1000, 3000}) {
    auto pc = heavy(mutex::Algo::kCaoSinghal, 25);
    auto mc = heavy(mutex::Algo::kMaekawa, 25);
    pc.workload.cs_duration = mc.workload.cs_duration = e;
    auto p = harness::run_experiment(pc);
    auto m = harness::run_experiment(mc);
    ok = ok && p.summary.violations == 0 && m.summary.violations == 0 &&
         p.drained_clean && m.drained_clean;
    const double ideal = static_cast<double>(e + 2 * kT) /
                         static_cast<double>(e + kT);
    t.add_row({Table::integer(static_cast<uint64_t>(e)),
               Table::num(p.summary.throughput * kT, 3),
               Table::num(m.summary.throughput * kT, 3),
               Table::num(p.summary.throughput / m.summary.throughput, 2) +
                   "x",
               Table::num(ideal, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: speedup ~2x when E << T (the cycle is one "
               "delay instead of two), decaying toward 1x as E dominates "
               "the cycle — matching the ideal-ratio column.\n"
            << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return suite_guard.finish(ok);
}
