// E4 — §5.2: "at heavy loads, the rate of CS execution (i.e., throughput)
// is doubled" relative to Maekawa. Swept over CS durations: the advantage
// is largest when E << T (delay-dominated) and shrinks as E dominates.
//
// Ported to the unified bench::Runner: the (E × algorithm) grid is one
// parallel sweep, so --jobs parallelizes what used to be ten serial runs.
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::heavy;
  using bench::kT;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e4_throughput");
  bench::reject_extra_args(argc, argv, "e4_throughput");

  const bench::MetricDef kCsPerT{
      "cs_per_T", [](const ExperimentResult& r) {
        return r.summary.throughput * static_cast<double>(kT);
      }};

  bench::Runner run("e4_throughput", opts);
  const Time es[] = {10, 100, 500, 1000, 3000};
  int prop[5], mae[5];
  for (int i = 0; i < 5; ++i) {
    auto pc = heavy(mutex::Algo::kCaoSinghal, 25);
    auto mc = heavy(mutex::Algo::kMaekawa, 25);
    pc.workload.cs_duration = mc.workload.cs_duration = es[i];
    prop[i] = run.add("proposed/E" + std::to_string(es[i]), pc, {kCsPerT});
    mae[i] = run.add("maekawa/E" + std::to_string(es[i]), mc, {kCsPerT});
  }
  run.execute();

  std::cout << "E4 — saturated throughput, proposed vs Maekawa (N=25, "
               "grid)\n\n";
  Table t({"E (CS ticks)", "proposed CS/T", "maekawa CS/T", "speedup",
           "ideal 1/(E+T) vs 1/(E+2T)"});
  for (int i = 0; i < 5; ++i) {
    const double p = run.stat(prop[i], "cs_per_T").mean;
    const double m = run.stat(mae[i], "cs_per_T").mean;
    const double ideal = static_cast<double>(es[i] + 2 * kT) /
                         static_cast<double>(es[i] + kT);
    t.add_row({Table::integer(static_cast<uint64_t>(es[i])),
               Table::num(p, 3), Table::num(m, 3),
               Table::num(p / m, 2) + "x", Table::num(ideal, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: speedup ~2x when E << T (the cycle is one "
               "delay instead of two), decaying toward 1x as E dominates "
               "the cycle — matching the ideal-ratio column.\n";
  return run.finish(std::cout);
}
