// E3 — §5.2's headline: synchronization delay T for the proposed algorithm
// vs 2T for Maekawa, as load rises toward saturation, under constant and
// jittered delay models.
//
// Ported to the unified bench::Runner: the whole (load × algorithm × seed)
// grid is one parallel sweep. This suite is the acceptance benchmark for
// the parallel engine — `e3_sync_delay --seeds=8 --jobs=8` must produce
// byte-identical aggregates to --jobs=1, only faster.
#include <cmath>
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::ExperimentConfig;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e3_sync_delay");
  bench::reject_extra_args(argc, argv, "e3_sync_delay");

  const bench::MetricDef kDelay{
      "delay/T", [](const ExperimentResult& r) { return r.sync_delay_in_t; }};
  const bench::MetricDef kGaps{
      "contended_gaps", [](const ExperimentResult& r) {
        return static_cast<double>(r.summary.contended_gaps);
      }};

  bench::Runner run("e3_sync_delay", opts);
  const double loads[] = {0.3, 0.6, 0.9};
  int prop[3], mae[3];
  for (int i = 0; i < 3; ++i) {
    prop[i] = run.add("proposed/" + Table::num(loads[i], 1),
                      open_load(mutex::Algo::kCaoSinghal, 25, loads[i]),
                      {kDelay, kGaps});
    mae[i] = run.add("maekawa/" + Table::num(loads[i], 1),
                     open_load(mutex::Algo::kMaekawa, 25, loads[i]),
                     {kDelay});
  }
  // Constant-delay saturation is seed-invariant (the sd would read 0.00);
  // replicate under uniform jitter where runs genuinely differ.
  ExperimentConfig pj = heavy(mutex::Algo::kCaoSinghal, 25);
  ExperimentConfig mj = heavy(mutex::Algo::kMaekawa, 25);
  pj.delay_kind = mj.delay_kind = ExperimentConfig::DelayKind::kUniform;
  const int pjr = run.add("proposed/saturated-jitter", pj, {kDelay}, 5);
  const int mjr = run.add("maekawa/saturated-jitter", mj, {kDelay}, 5);
  // Attribution rows: the saturated head-to-head with the causal
  // critical-path engine attached, so the --json carries the delay budget
  // ("critpath") behind the headline numbers. E = 2T (not the sweep's
  // T/10) keeps every contended handoff proxy-eligible — the §3 transfer
  // always beats the exit — so the extracted tails sit on the pure Table 1
  // forms (1 wire hop = 1·T proposed, 2 hops = 2·T Maekawa).
  ExperimentConfig pc = heavy(mutex::Algo::kCaoSinghal, 25);
  ExperimentConfig mc = heavy(mutex::Algo::kMaekawa, 25);
  pc.workload.cs_duration = mc.workload.cs_duration = 2 * bench::kT;
  pc.critpath = mc.critpath = true;
  const int pcr = run.add("proposed/satur-E2T+crit", pc, {kDelay});
  const int mcr = run.add("maekawa/satur-E2T+crit", mc, {kDelay});
  run.execute();

  std::cout << "E3 — synchronization delay in units of T (N=25, grid, "
               "E=T/10)\n\n";
  Table t({"load", "proposed delay/T", "maekawa delay/T", "ratio",
           "contended gaps"});
  for (int i = 0; i < 3; ++i) {
    const double p = run.stat(prop[i], "delay/T").mean;
    const double m = run.stat(mae[i], "delay/T").mean;
    t.add_row({Table::num(loads[i], 1), Table::num(p, 2), Table::num(m, 2),
               Table::num(m / p, 2),
               Table::integer(static_cast<uint64_t>(
                   run.stat(prop[i], "contended_gaps").mean))});
  }
  const auto pr = run.stat(pjr, "delay/T");
  const auto mr = run.stat(mjr, "delay/T");
  t.add_row({"saturated, jitter (" + std::to_string(run.runs(pjr).size()) +
                 " seeds)",
             Table::num(pr.mean, 2) + " +/- " + Table::num(pr.sd, 2),
             Table::num(mr.mean, 2) + " +/- " + Table::num(mr.sd, 2),
             Table::num(mr.mean / pr.mean, 2), "-"});
  t.print(std::cout);

  std::cout << "\nWith jittered (uniform) delays:\n";
  Table jt({"algorithm", "delay/T (saturated)"});
  jt.add_row({std::string(mutex::to_string(mutex::Algo::kCaoSinghal)),
              Table::num(run.first(pjr).sync_delay_in_t, 2)});
  jt.add_row({std::string(mutex::to_string(mutex::Algo::kMaekawa)),
              Table::num(run.first(mjr).sync_delay_in_t, 2)});
  jt.print(std::cout);

  std::cout << "\nCritical-path delay budget (saturated, constant T):\n";
  Table ct({"algorithm", "paths", "contended", "wire", "queue", "holder",
            "proxy", "tail/T"});
  for (const int row : {pcr, mcr}) {
    const ExperimentResult& r = run.first(row);
    const obs::CritStats& cp = r.critpath;
    const double w = static_cast<double>(cp.waiting_ticks());
    auto share = [&](obs::CritBucket b) {
      return w > 0 ? Table::num(100.0 * static_cast<double>(cp.ticks(b)) / w,
                                1) + "%"
                   : std::string("-");
    };
    ct.add_row({std::string(mutex::to_string(row == pcr
                                                 ? mutex::Algo::kCaoSinghal
                                                 : mutex::Algo::kMaekawa)),
                Table::integer(cp.paths()), Table::integer(cp.contended()),
                share(obs::CritBucket::kWire), share(obs::CritBucket::kQueue),
                share(obs::CritBucket::kHolder),
                share(obs::CritBucket::kProxy),
                Table::num(cp.mean_tail_in_t(), 2)});
    // Conservation is exact by construction — a nonzero residual means the
    // extractor mis-tiled some request's [issued, entered] interval.
    run.require(cp.residual_ticks() == 0);
    // The attribution tail must reconcile with the independently measured
    // synchronization delay (PR-3 divergence tolerance), once there are
    // enough contended handoffs for the means to be comparable.
    if (r.summary.contended_gaps > 100 && cp.contended() > 100) {
      run.require(std::abs(cp.mean_tail_in_t() - r.sync_delay_in_t) <=
                  0.05 * r.sync_delay_in_t);
      // ... and with the analytic Table 1 form refined by the observed
      // proxy mix (the gauge run_experiment emits for every critpath row).
      const double* div =
          r.registry.find_gauge("critpath.divergence_tail_vs_model");
      run.require(div != nullptr && *div <= 0.05);
    }
  }
  ct.print(std::cout);

  std::cout << "\nExpected shape: proposed ~1.0-1.3 T at saturation, "
               "Maekawa ~2 T; the minimum possible is T (§5.2).\n";
  return run.finish(std::cout);
}
