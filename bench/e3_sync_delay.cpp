// E3 — §5.2's headline: synchronization delay T for the proposed algorithm
// vs 2T for Maekawa, as load rises toward saturation, under constant and
// jittered delay models.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace dqme;
  using bench::heavy;
  using bench::open_load;
  using harness::ExperimentConfig;
  using harness::Table;

  std::cout << "E3 — synchronization delay in units of T (N=25, grid, "
               "E=T/10)\n\n";
  bool ok = true;

  Table t({"load", "proposed delay/T", "maekawa delay/T", "ratio",
           "contended gaps"});
  for (double load : {0.3, 0.6, 0.9}) {
    auto p = harness::run_experiment(
        open_load(mutex::Algo::kCaoSinghal, 25, load));
    auto m = harness::run_experiment(open_load(mutex::Algo::kMaekawa, 25,
                                               load));
    ok = ok && p.summary.violations == 0 && m.summary.violations == 0 &&
         p.drained_clean && m.drained_clean;
    t.add_row({Table::num(load, 1), Table::num(p.sync_delay_in_t, 2),
               Table::num(m.sync_delay_in_t, 2),
               Table::num(m.sync_delay_in_t / p.sync_delay_in_t, 2),
               Table::integer(p.summary.contended_gaps)});
  }
  // Saturated rows with error bars over 5 seeds (replicate() re-checks
  // safety and liveness on every run).
  auto delay_metric = [](const harness::ExperimentResult& r) {
    return r.sync_delay_in_t;
  };
  // Constant-delay saturation is seed-invariant (the sd would read 0.00);
  // replicate under uniform jitter where runs genuinely differ.
  ExperimentConfig pj = heavy(mutex::Algo::kCaoSinghal, 25);
  ExperimentConfig mj = heavy(mutex::Algo::kMaekawa, 25);
  pj.delay_kind = mj.delay_kind = ExperimentConfig::DelayKind::kUniform;
  auto pr = harness::replicate(pj, 5, delay_metric);
  auto mr = harness::replicate(mj, 5, delay_metric);
  t.add_row({"saturated, jitter (5 seeds)",
             Table::num(pr.mean, 2) + " +/- " + Table::num(pr.sd, 2),
             Table::num(mr.mean, 2) + " +/- " + Table::num(mr.sd, 2),
             Table::num(mr.mean / pr.mean, 2), "-"});
  t.print(std::cout);

  std::cout << "\nWith jittered (uniform) delays:\n";
  Table jt({"algorithm", "delay/T (saturated)"});
  for (mutex::Algo algo :
       {mutex::Algo::kCaoSinghal, mutex::Algo::kMaekawa}) {
    ExperimentConfig cfg = heavy(algo, 25);
    cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
    auto r = harness::run_experiment(cfg);
    ok = ok && r.summary.violations == 0 && r.drained_clean;
    jt.add_row({std::string(mutex::to_string(algo)),
                Table::num(r.sync_delay_in_t, 2)});
  }
  jt.print(std::cout);

  std::cout << "\nExpected shape: proposed ~1.0-1.3 T at saturation, "
               "Maekawa ~2 T; the minimum possible is T (§5.2).\n"
            << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
