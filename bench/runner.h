// Unified bench runner: declarative rows (label + config + metric lambdas)
// executed as ONE parallel sweep over (rows × seeds) through
// harness::SweepRunner, honoring the shared --jobs/--seeds/--quick/--json
// flags from bench_util.h. The integrity line (print_integrity's job in the
// hand-rolled era) and the BENCH_<suite>.json emission are folded into
// finish().
//
// Usage shape:
//   auto opts = bench::parse_bench_flags(argc, argv, "e3_sync_delay");
//   bench::Runner run("e3_sync_delay", opts);
//   int r = run.add("proposed/0.3", open_load(...), {{"delay/T", fn}});
//   run.execute();                       // the only simulation pass
//   ... run.stat(r, "delay/T").mean ...  // format any tables you like
//   return run.finish(std::cout);
#pragma once

#include <chrono>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "harness/sweep.h"

namespace dqme::bench {

struct MetricDef {
  std::string name;
  std::function<double(const harness::ExperimentResult&)> fn;
};

class Runner {
 public:
  Runner(std::string suite, BenchOptions opts)
      : suite_(std::move(suite)), opts_(std::move(opts)) {}

  // Declares one row. `default_seeds` is the replication count when the
  // user did not pass --seeds. Returns the row index.
  int add(std::string label, harness::ExperimentConfig cfg,
          std::vector<MetricDef> metrics, int default_seeds = 1) {
    if (opts_.check) cfg.check_invariants = true;
    Row row;
    row.label = std::move(label);
    row.cfg = std::move(cfg);
    row.metrics = std::move(metrics);
    row.seeds = opts_.seeds > 0 ? opts_.seeds : default_seeds;
    rows_.push_back(std::move(row));
    return static_cast<int>(rows_.size()) - 1;
  }

  // Declares a row whose runs are not a plain run_experiment(cfg): `fn` is
  // called once per seed on the worker pool and returns a result it filled
  // itself (quorum combinatorics, replica-layer rounds). The integrity fold
  // applies to whatever fn reports — set drained_clean/violations honestly.
  int add_custom(std::string label,
                 std::function<harness::ExperimentResult(uint64_t)> fn,
                 std::vector<MetricDef> metrics, int default_seeds = 1) {
    Row row;
    row.label = std::move(label);
    row.custom = std::move(fn);
    row.metrics = std::move(metrics);
    row.seeds = opts_.seeds > 0 ? opts_.seeds : default_seeds;
    rows_.push_back(std::move(row));
    return static_cast<int>(rows_.size()) - 1;
  }

  // Folds a suite-specific pass/fail condition (a paper-bound check a row's
  // metrics can't express) into the exit code and the JSON "ok" field.
  void require(bool condition) { ok_ = ok_ && condition; }

  // Runs every declared (row, seed) job on the worker pool. Results are
  // deterministic in content and order for any --jobs value: each job is a
  // pure function of (config/custom fn, seed) and lands in its own slot.
  void execute() {
    std::vector<std::function<harness::ExperimentResult()>> jobs;
    for (const Row& row : rows_) {
      for (int s = 0; s < row.seeds; ++s) {
        const uint64_t seed = row.cfg.seed + static_cast<uint64_t>(s);
        if (row.custom) {
          jobs.push_back([fn = &row.custom, seed] { return (*fn)(seed); });
        } else {
          harness::ExperimentConfig cfg = row.cfg;
          cfg.seed = seed;
          jobs.push_back(
              [cfg = std::move(cfg)] { return harness::run_experiment(cfg); });
        }
      }
    }
    harness::SweepOptions sopts;
    sopts.jobs = opts_.jobs;
    sopts.check_integrity = false;  // benches report, they don't throw
    const auto start = std::chrono::steady_clock::now();
    auto results = harness::SweepRunner(sopts).run_jobs(jobs);
    wall_ms_ = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    size_t at = 0;
    for (Row& row : rows_) {
      row.runs.assign(results.begin() + static_cast<ptrdiff_t>(at),
                      results.begin() + static_cast<ptrdiff_t>(at + row.seeds));
      at += static_cast<size_t>(row.seeds);
      for (const auto& r : row.runs) {
        sim_events_ += r.sim_events;
        ok_ = ok_ && r.summary.violations == 0 && r.drained_clean &&
              r.invariant_violations == 0;
        if (first_report_.empty() && !r.invariant_reports.empty())
          first_report_ = r.invariant_reports.front();
      }
    }
    executed_ = true;
    // --trace-out: one extra short recorded run of the first plain row's
    // config, after the sweep so the numbers above are recorder-free.
    for (const Row& row : rows_)
      if (!row.custom) {
        maybe_write_trace(opts_, row.cfg);
        break;
      }
  }

  // Aggregated metric (mean/sd over the row's seeds).
  harness::Replicated stat(int row, const std::string& metric) const {
    const Row& r = at(row);
    for (const MetricDef& m : r.metrics)
      if (m.name == metric) return harness::aggregate(r.runs, m.fn);
    DQME_CHECK_MSG(false, "no metric '" << metric << "' on row '" << r.label
                                        << "'");
    return {};
  }

  // The row's first (lowest-seed) run, for counters and protocol stats the
  // declared metrics don't cover.
  const harness::ExperimentResult& first(int row) const {
    return at(row).runs.front();
  }
  const std::vector<harness::ExperimentResult>& runs(int row) const {
    return at(row).runs;
  }

  int jobs() const { return opts_.jobs; }
  bool ok() const { return ok_; }
  double wall_ms() const { return wall_ms_; }
  double events_per_sec() const {
    return wall_ms_ > 0 ? static_cast<double>(sim_events_) /
                              (wall_ms_ / 1000.0)
                        : 0;
  }

  // Integrity line + JSON emission; returns the process exit code.
  int finish(std::ostream& os) const {
    DQME_CHECK(executed_);
    os << "\n[integrity] all runs safe and drained: " << (ok_ ? "yes" : "NO")
       << "  (" << total_runs() << " runs, jobs=" << opts_.jobs
       << (opts_.check ? ", invariants checked" : "") << ", "
       << Table::num(wall_ms_, 0) << " ms, "
       << Table::num(events_per_sec() / 1e6, 2) << "M events/s)\n";
    if (!first_report_.empty())
      os << "[integrity] first violation: " << first_report_ << "\n";
    std::vector<JsonMetric> jm;
    for (size_t i = 0; i < rows_.size(); ++i)
      for (const MetricDef& m : rows_[i].metrics) {
        auto rep = stat(static_cast<int>(i), m.name);
        jm.push_back({rows_[i].label + "/" + m.name, rep.mean, rep.sd});
      }
    // Fold every run's registry into the suite JSON (row order, then seed
    // order — deterministic for any --jobs). Timelines fold the same way;
    // suites that enable one do so on a single row (or same-spec rows), so
    // the merged series stays interpretable.
    obs::Registry merged;
    obs::Timeline merged_tl;
    obs::LockStats merged_ls;
    obs::CritStats merged_cp;
    for (const Row& row : rows_) {
      merged.merge(harness::merge_registries(row.runs));
      for (const auto& r : row.runs) {
        merged_tl.merge(r.timeline);
        merged_ls.merge(r.lock_stats);
        merged_cp.merge(r.critpath);
      }
    }
    write_bench_json(opts_, ok_, wall_ms_, events_per_sec(), jm, &merged,
                     &merged_tl, &merged_ls, &merged_cp);
    return ok_ ? 0 : 1;
  }

 private:
  struct Row {
    std::string label;
    harness::ExperimentConfig cfg;
    std::function<harness::ExperimentResult(uint64_t)> custom;  // add_custom
    std::vector<MetricDef> metrics;
    int seeds = 1;
    std::vector<harness::ExperimentResult> runs;
  };

  const Row& at(int i) const {
    DQME_CHECK(executed_);
    DQME_CHECK(0 <= i && i < static_cast<int>(rows_.size()));
    return rows_[static_cast<size_t>(i)];
  }

  size_t total_runs() const {
    size_t n = 0;
    for (const Row& r : rows_) n += static_cast<size_t>(r.seeds);
    return n;
  }

  std::string suite_;
  BenchOptions opts_;
  std::vector<Row> rows_;
  bool executed_ = false;
  bool ok_ = true;
  std::string first_report_;
  double wall_ms_ = 0;
  uint64_t sim_events_ = 0;
  using Table = harness::Table;
};

}  // namespace dqme::bench
