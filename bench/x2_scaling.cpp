// X2 (extension) — the O(sqrt N) vs O(N) scaling behind Table 1, measured:
// messages per CS and synchronization delay as N grows, proposed (on exact
// projective-plane quorums where available, grid otherwise) against the
// O(N) permission baselines and Maekawa.
//
// Ported to the unified bench::Runner: the whole (N × algorithm) grid is
// one parallel sweep — the biggest wall-clock win of the port, since the
// N=133 rows dominate and now overlap with everything else.
#include <iostream>

#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using bench::heavy;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "x2_scaling");
  bench::reject_extra_args(argc, argv, "x2_scaling");

  const bench::MetricDef kWire{
      "wire_msgs_per_cs",
      [](const ExperimentResult& r) { return r.summary.wire_msgs_per_cs; }};
  const bench::MetricDef kDelayT{
      "delay_t",
      [](const ExperimentResult& r) { return r.sync_delay_in_t; }};

  bench::Runner run("x2_scaling", opts);
  struct Grid {
    int n;
    const char* quorum;
  };
  const Grid grids[] = {{13, "fpp"}, {25, "grid"}, {57, "fpp"},
                        {91, "fpp"}, {133, "fpp"}};
  int prop[5], maek[5], ra[5];
  for (int i = 0; i < 5; ++i) {
    const Grid& g = grids[i];
    auto shrink = [&](harness::ExperimentConfig cfg) {
      cfg.measure = bench::scale_time(g.n > 60 ? 600'000 : 1'200'000);
      return cfg;
    };
    const std::string n_label = std::to_string(g.n);
    prop[i] = run.add("proposed/N" + n_label,
                      shrink(heavy(mutex::Algo::kCaoSinghal, g.n, g.quorum)),
                      {kWire, kDelayT});
    maek[i] = run.add("maekawa/N" + n_label,
                      shrink(heavy(mutex::Algo::kMaekawa, g.n, g.quorum)),
                      {kWire, kDelayT});
    ra[i] = run.add("ra/N" + n_label,
                    shrink(heavy(mutex::Algo::kRicartAgrawala, g.n)),
                    {kWire, kDelayT});
  }
  run.execute();

  std::cout << "X2 — scaling with N (saturated closed loop, T=1000, "
               "E=T/10)\n\n";
  Table t({"N", "quorum", "K", "proposed msgs", "maekawa msgs", "RA msgs",
           "proposed delay/T", "maekawa delay/T"});
  for (int i = 0; i < 5; ++i) {
    t.add_row({Table::integer(static_cast<uint64_t>(grids[i].n)),
               grids[i].quorum,
               Table::num(run.first(prop[i]).mean_quorum_size, 0),
               Table::num(run.stat(prop[i], "wire_msgs_per_cs").mean, 1),
               Table::num(run.stat(maek[i], "wire_msgs_per_cs").mean, 1),
               Table::num(run.stat(ra[i], "wire_msgs_per_cs").mean, 1),
               Table::num(run.stat(prop[i], "delay_t").mean, 2),
               Table::num(run.stat(maek[i], "delay_t").mean, 2)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: Ricart-Agrawala's column grows linearly "
               "(2(N-1)); the quorum algorithms grow like sqrt(N); the "
               "proposed delay stays in the 1.1-1.4T band at every N while "
               "Maekawa stays at 2T.\n";
  return run.finish(std::cout);
}
