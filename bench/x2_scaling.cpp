// X2 (extension) — the O(sqrt N) vs O(N) scaling behind Table 1, measured:
// messages per CS and synchronization delay as N grows, proposed (on exact
// projective-plane quorums where available, grid otherwise) against the
// O(N) permission baselines and Maekawa.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "x2_scaling");
  using namespace dqme;
  using bench::heavy;
  using harness::Table;

  suite_guard.trace(heavy(mutex::Algo::kCaoSinghal, 25));

  std::cout << "X2 — scaling with N (saturated closed loop, T=1000, "
               "E=T/10)\n\n";
  bool ok = true;

  Table t({"N", "quorum", "K", "proposed msgs", "maekawa msgs", "RA msgs",
           "proposed delay/T", "maekawa delay/T"});
  struct Row {
    int n;
    const char* quorum;
  };
  for (const Row row : {Row{13, "fpp"}, Row{25, "grid"}, Row{57, "fpp"},
                        Row{91, "fpp"}, Row{133, "fpp"}}) {
    auto shrink = [&](harness::ExperimentConfig cfg) {
      cfg.measure = row.n > 60 ? 600'000 : 1'200'000;
      return cfg;
    };
    auto p = harness::run_experiment(
        shrink(heavy(mutex::Algo::kCaoSinghal, row.n, row.quorum)));
    auto m = harness::run_experiment(
        shrink(heavy(mutex::Algo::kMaekawa, row.n, row.quorum)));
    auto ra = harness::run_experiment(
        shrink(heavy(mutex::Algo::kRicartAgrawala, row.n)));
    ok = ok && p.summary.violations == 0 && m.summary.violations == 0 &&
         ra.summary.violations == 0 && p.drained_clean && m.drained_clean &&
         ra.drained_clean;
    t.add_row({Table::integer(static_cast<uint64_t>(row.n)), row.quorum,
               Table::num(p.mean_quorum_size, 0),
               Table::num(p.summary.wire_msgs_per_cs, 1),
               Table::num(m.summary.wire_msgs_per_cs, 1),
               Table::num(ra.summary.wire_msgs_per_cs, 1),
               Table::num(p.sync_delay_in_t, 2),
               Table::num(m.sync_delay_in_t, 2)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: Ricart-Agrawala's column grows linearly "
               "(2(N-1)); the quorum algorithms grow like sqrt(N); the "
               "proposed delay stays in the 1.1-1.4T band at every N while "
               "Maekawa stays at 2T.\n"
            << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return suite_guard.finish(ok);
}
