// X1 (extension, §7) — replica control built on the delay-optimal mutex:
// operation latency and correctness of the replicated store across quorum
// constructions, plus behaviour across a crash. Not a paper table: §7 only
// *claims* the idea extends to replicated data management; this bench
// demonstrates it quantitatively.
//
// Ported to the unified bench::Runner via add_custom: each configuration
// drives its own ReplicaNode stack on the worker pool (the replica layer's
// request/response API doesn't fit run_experiment's workload driver), with
// the exact-count check folded into the runner's exit code.
#include <iostream>

#include "net/network.h"
#include "core/failure_detector.h"
#include "quorum/factory.h"
#include "replica/replicated_store.h"
#include "runner.h"

namespace {

using namespace dqme;

harness::ExperimentResult run_replica(const std::string& quorum_kind, int n,
                                      bool crash_one, uint64_t seed) {
  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::UniformDelay>(500, 1500),
                   16 + seed);  // seed 1 reproduces the historical run
  auto quorums = quorum::make_quorum_system(quorum_kind, n);
  core::FailureDetector detector(net, 2500, 500, 2 + seed);
  core::CaoSinghalSite::Options opt;
  opt.fault_tolerant = true;
  std::vector<std::unique_ptr<replica::ReplicaNode>> nodes;
  for (SiteId i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<replica::ReplicaNode>(i, net, *quorums, opt));
    net.attach(i, nodes.back().get());
    detector.attach(i, nodes.back().get());
  }

  double write_lat = 0, read_lat = 0;
  uint64_t reads = 0;
  int64_t acknowledged = 0;
  const int rounds = 5;
  for (int round = 0; round < rounds; ++round) {
    for (SiteId i = 0; i < n; ++i) {
      const Time start = sim.now();
      nodes[static_cast<size_t>(i)]->update(
          0, [](int64_t v) { return v + 1; },
          [&, start](int64_t version) {
            if (version > 0) {
              ++acknowledged;
              write_lat += static_cast<double>(sim.now() - start);
            }
          });
    }
  }
  SiteId victim = static_cast<SiteId>(n / 2);
  if (crash_one) sim.schedule_at(4000, [&] { detector.crash(victim); });
  sim.run();

  // Reads from every live node.
  int64_t observed = -1;
  bool consistent = true;
  for (SiteId i = 0; i < n; ++i) {
    if (crash_one && i == victim) continue;
    const Time start = sim.now();
    nodes[static_cast<size_t>(i)]->read(0, [&, start](replica::Versioned v) {
      read_lat += static_cast<double>(sim.now() - start);
      ++reads;
      if (observed < 0) observed = v.value;
      consistent = consistent && v.value == observed;
    });
    sim.run();
  }

  harness::ExperimentResult res;
  res.drained_clean = true;  // sim.run() ran the store to quiescence
  res.sim_events = sim.events_executed();
  res.registry.gauge("writes") = static_cast<double>(acknowledged);
  res.registry.gauge("write_lat") =
      acknowledged ? write_lat / static_cast<double>(acknowledged) : 0;
  res.registry.gauge("read_lat") =
      reads ? read_lat / static_cast<double>(reads) : 0;
  res.registry.gauge("exact") =
      (consistent && observed == acknowledged) ? 1 : 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = dqme::bench::parse_bench_flags(argc, argv, "x1_replica_control");
  dqme::bench::reject_extra_args(argc, argv, "x1_replica_control");

  auto gauge_of = [](const char* name) {
    return [name](const ExperimentResult& r) {
      const double* g = r.registry.find_gauge(name);
      return g != nullptr ? *g : 0;
    };
  };
  const std::vector<dqme::bench::MetricDef> kMetrics{
      {"writes", gauge_of("writes")},
      {"write_lat", gauge_of("write_lat")},
      {"read_lat", gauge_of("read_lat")},
      {"exact", gauge_of("exact")}};

  struct Cfg {
    const char* kind;
    int n;
    bool crash;
  };
  const std::vector<Cfg> cfgs = {{"grid", 16, false}, {"tree", 15, false},
                                 {"majority", 15, false}, {"tree", 15, true},
                                 {"rst:4", 16, true}};

  dqme::bench::Runner run("x1_replica_control", opts);
  std::vector<int> rows;
  for (const Cfg& c : cfgs) {
    std::string label = c.kind;
    label += c.crash ? "/crash" : "/clean";
    rows.push_back(run.add_custom(
        label,
        [c](uint64_t seed) { return run_replica(c.kind, c.n, c.crash, seed); },
        kMetrics));
  }
  run.execute();

  std::cout << "X1 — §7 replica control on the delay-optimal mutex "
               "(atomic counter, T~1000, jittered)\n\n";
  Table t({"quorum", "N", "crash", "writes", "write lat/T (queued)",
           "read lat/T", "exact count"});
  for (size_t i = 0; i < cfgs.size(); ++i) {
    const bool exact = run.stat(rows[i], "exact").mean == 1.0;
    run.require(exact);
    t.add_row({cfgs[i].kind, Table::integer(static_cast<uint64_t>(cfgs[i].n)),
               cfgs[i].crash ? "yes" : "no",
               Table::integer(static_cast<uint64_t>(
                   run.stat(rows[i], "writes").mean)),
               Table::num(run.stat(rows[i], "write_lat").mean / 1000.0, 2),
               Table::num(run.stat(rows[i], "read_lat").mean / 1000.0, 2),
               exact ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: every run counts exactly (no lost "
               "updates); reads cost ~2T (one quorum round trip). Write "
               "latency is dominated by queueing: all N*5 increments are "
               "posted at once and serialize through the global CS, so the "
               "mean wait is ~half the batch times the CS cycle. Crashes "
               "change none of that.\n";
  return run.finish(std::cout);
}
