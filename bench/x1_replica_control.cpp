// X1 (extension, §7) — replica control built on the delay-optimal mutex:
// operation latency and correctness of the replicated store across quorum
// constructions, plus behaviour across a crash. Not a paper table: §7 only
// *claims* the idea extends to replicated data management; this bench
// demonstrates it quantitatively.
#include <iostream>

#include "bench_util.h"
#include "core/failure_detector.h"
#include "quorum/factory.h"
#include "replica/replicated_store.h"

namespace {

using namespace dqme;

struct RunStats {
  double mean_write_latency = 0;  // ticks
  double mean_read_latency = 0;
  uint64_t writes = 0;
  uint64_t reads = 0;
  bool exact = false;  // counter total equals acknowledged increments
};

RunStats run(const std::string& quorum_kind, int n, bool crash_one) {
  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::UniformDelay>(500, 1500),
                   17);
  auto quorums = quorum::make_quorum_system(quorum_kind, n);
  core::FailureDetector detector(net, 2500, 500, 3);
  core::CaoSinghalSite::Options opt;
  opt.fault_tolerant = true;
  std::vector<std::unique_ptr<replica::ReplicaNode>> nodes;
  for (SiteId i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<replica::ReplicaNode>(i, net, *quorums, opt));
    net.attach(i, nodes.back().get());
    detector.attach(i, nodes.back().get());
  }

  RunStats st;
  double write_lat = 0, read_lat = 0;
  int64_t acknowledged = 0;
  const int rounds = 5;
  for (int round = 0; round < rounds; ++round) {
    for (SiteId i = 0; i < n; ++i) {
      const Time start = sim.now();
      nodes[static_cast<size_t>(i)]->update(
          0, [](int64_t v) { return v + 1; },
          [&, start](int64_t version) {
            if (version > 0) {
              ++acknowledged;
              write_lat += static_cast<double>(sim.now() - start);
            }
          });
    }
  }
  SiteId victim = static_cast<SiteId>(n / 2);
  if (crash_one) sim.schedule_at(4000, [&] { detector.crash(victim); });
  sim.run();

  // Reads from every live node.
  int64_t observed = -1;
  bool consistent = true;
  for (SiteId i = 0; i < n; ++i) {
    if (crash_one && i == victim) continue;
    const Time start = sim.now();
    nodes[static_cast<size_t>(i)]->read(0, [&, start](replica::Versioned v) {
      read_lat += static_cast<double>(sim.now() - start);
      ++st.reads;
      if (observed < 0) observed = v.value;
      consistent = consistent && v.value == observed;
    });
    sim.run();
  }
  st.writes = static_cast<uint64_t>(acknowledged);
  st.mean_write_latency = acknowledged ? write_lat / acknowledged : 0;
  st.mean_read_latency = st.reads ? read_lat / st.reads : 0;
  st.exact = consistent && observed == acknowledged;
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  dqme::bench::SuiteGuard suite_guard(argc, argv, "x1_replica_control");
  using harness::Table;
  std::cout << "X1 — §7 replica control on the delay-optimal mutex "
               "(atomic counter, T~1000, jittered)\n\n";
  Table t({"quorum", "N", "crash", "writes", "write lat/T (queued)", "read lat/T",
           "exact count"});
  bool ok = true;
  struct Cfg {
    const char* kind;
    int n;
    bool crash;
  };
  for (const Cfg& c : {Cfg{"grid", 16, false}, Cfg{"tree", 15, false},
                       Cfg{"majority", 15, false}, Cfg{"tree", 15, true},
                       Cfg{"rst:4", 16, true}}) {
    RunStats s = run(c.kind, c.n, c.crash);
    ok = ok && s.exact;
    t.add_row({c.kind, Table::integer(static_cast<uint64_t>(c.n)),
               c.crash ? "yes" : "no", Table::integer(s.writes),
               Table::num(s.mean_write_latency / 1000.0, 2),
               Table::num(s.mean_read_latency / 1000.0, 2),
               s.exact ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: every run counts exactly (no lost "
               "updates); reads cost ~2T (one quorum round trip). Write "
               "latency is dominated by queueing: all N*5 increments are "
               "posted at once and serialize through the global CS, so the "
               "mean wait is ~half the batch times the CS cycle. Crashes "
               "change none of that.\n"
            << "[integrity] all counts exact: " << (ok ? "yes" : "NO")
            << "\n";
  return suite_guard.finish(ok);
}
