// E7 — §6: fault tolerance. Two parts:
//  (a) availability of each quorum construction as the per-site failure
//      probability p rises (exact for N <= 20, Monte-Carlo otherwise);
//  (b) end-to-end: the FT-enabled algorithm keeps executing CSs across
//      site crashes (tree quorums + the §6 recovery protocol), with
//      mutual exclusion intact.
//
// Part (b) is ported to the unified bench::Runner — scenarios run as one
// parallel sweep; part (a) is pure combinatorics and stays inline.
#include <algorithm>
#include <iostream>
#include <string>

#include "quorum/availability.h"
#include "quorum/factory.h"
#include "runner.h"

int main(int argc, char** argv) {
  using namespace dqme;
  using harness::ExperimentResult;
  using harness::Table;

  auto opts = bench::parse_bench_flags(argc, argv, "e7_fault_tolerance");
  bench::reject_extra_args(argc, argv, "e7_fault_tolerance");

  std::cout << "E7a — availability vs per-site failure probability p\n"
            << "(N=15/16; exact where 2^N is feasible, else Monte-Carlo "
               "100k samples)\n\n";
  Table t({"p", "grid(16)", "tree(15)", "majority(15)", "hqc(27)",
           "gridset(16)", "rst(16)", "singleton(15)"});
  Rng rng(7);
  const struct {
    const char* kind;
    int n;
  } systems[] = {{"grid", 16},     {"tree", 15}, {"majority", 15},
                 {"hqc", 27},      {"gridset:4", 16},
                 {"rst:4", 16},    {"singleton", 15}};
  const int mc_samples = opts.quick ? 20000 : 100000;
  for (double p : {0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    std::vector<std::string> row{Table::num(p, 2)};
    for (const auto& s : systems) {
      auto qs = quorum::make_quorum_system(s.kind, s.n);
      const double up = 1.0 - p;
      const double a = s.n <= 20 ? quorum::exact_availability(*qs, up)
                                 : quorum::mc_availability(*qs, up,
                                                           mc_samples, rng);
      row.push_back(Table::num(a, 4));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: majority highest at every p; tree beats "
               "grid (graceful path substitution); singleton worst "
               "(1-p).\n\n";

  std::cout << "E7b — end-to-end crash runs (proposed algorithm, fault-"
               "tolerant mode, tree quorums N=15, closed loop)\n\n";
  struct Scenario {
    const char* name;
    std::vector<harness::ExperimentConfig::Crash> crashes;
    int row = 0;
  };
  Scenario scenarios[] = {
      {"no crashes", {}},
      {"leaf crash (t=0.3M)", {{bench::scale_time(300'000), 9}}},
      {"internal node crash", {{bench::scale_time(300'000), 1}}},
      {"root crash (in every quorum)", {{bench::scale_time(300'000), 0}}},
      {"three staggered crashes",
       {{bench::scale_time(300'000), 9},
        {bench::scale_time(600'000), 1},
        {bench::scale_time(900'000), 5}}},
  };
  const std::vector<bench::MetricDef> counters = {
      {"completed",
       [](const ExperimentResult& r) {
         return static_cast<double>(r.summary.completed);
       }},
      {"recoveries",
       [](const ExperimentResult& r) {
         return static_cast<double>(r.protocol_stats.recoveries);
       }},
      {"aborted",
       [](const ExperimentResult& r) {
         return static_cast<double>(r.demands_aborted);
       }},
  };
  bench::Runner run("e7_fault_tolerance", opts);
  for (Scenario& s : scenarios) {
    harness::ExperimentConfig cfg =
        bench::heavy(mutex::Algo::kCaoSinghal, 15, "tree", 11);
    cfg.options.fault_tolerant = true;
    cfg.measure = bench::scale_time(1'500'000);
    cfg.crashes = s.crashes;
    s.row = run.add(s.name, cfg, counters);
  }

  // E7c — the §6 recovery trajectory, time-resolved: one root-crash run
  // with the windowed timeline enabled, so throughput and waiting-time
  // percentiles are visible per window ACROSS the crash instead of
  // averaged away. This row feeds the "timeline" key of the suite JSON
  // (markers included), which CI's validate_timeline.py asserts on.
  int trajectory;
  {
    harness::ExperimentConfig cfg =
        bench::heavy(mutex::Algo::kCaoSinghal, 15, "tree", 11);
    cfg.options.fault_tolerant = true;
    cfg.measure = bench::scale_time(1'500'000);
    cfg.crashes = {{bench::scale_time(300'000), 0}};
    cfg.timeline_window = bench::scale_time(50'000);
    trajectory = run.add("recovery trajectory (root crash)", cfg, counters);
  }

  run.execute();

  Table e({"scenario", "completed", "recoveries", "aborted", "violations",
           "drained"});
  for (const Scenario& s : scenarios) {
    const auto& r = run.first(s.row);
    e.add_row({s.name, Table::num(run.stat(s.row, "completed").mean, 0),
               Table::num(run.stat(s.row, "recoveries").mean, 0),
               Table::num(run.stat(s.row, "aborted").mean, 0),
               Table::integer(r.summary.violations),
               r.drained_clean ? "yes" : "NO"});
  }
  e.print(std::cout);
  std::cout << "\nExpected shape: progress (completed > 0) in every "
               "scenario, recoveries > 0 whenever a quorum member died, "
               "zero violations throughout.\n";

  // E7c render: per-window throughput as ASCII bars, crash/recovery markers
  // flagged on their windows. The dip-and-climb across the crash IS the §6
  // claim, now visible.
  {
    const obs::Timeline& tl = run.first(trajectory).timeline;
    std::cout << "\nE7c — recovery trajectory (root crash, window="
              << tl.window() << " ticks)\n\n";
    const auto* completed = tl.find_counter("cs.completed");
    const std::vector<uint64_t> empty;
    const std::vector<uint64_t>* series =
        completed != nullptr ? &completed->windows() : &empty;
    uint64_t peak = 1;
    for (uint64_t v : *series) peak = std::max(peak, v);
    for (size_t w = 0; w < series->size(); ++w) {
      const Time w_start = tl.origin() + static_cast<Time>(w) * tl.window();
      const Time w_end = w_start + tl.window();
      std::string tags;
      for (const auto& m : tl.markers())
        if (w_start <= m.at && m.at < w_end) tags += "  <-- " + m.label;
      const auto bar = static_cast<size_t>(
          (*series)[w] * 50 / peak);
      std::cout << "  w" << (w < 10 ? " " : "") << w << " |"
                << std::string(bar, '#') << std::string(50 - bar, ' ') << "| "
                << (*series)[w] << tags << "\n";
    }
    bool has_crash = false, has_recovery = false;
    for (const auto& m : tl.markers()) {
      has_crash = has_crash || m.label.rfind("crash", 0) == 0;
      has_recovery = has_recovery || m.label.rfind("recovery", 0) == 0;
    }
    std::cout << "\n  markers: crash=" << (has_crash ? "yes" : "NO")
              << " recovery=" << (has_recovery ? "yes" : "NO") << "\n";
    run.require(has_crash && has_recovery);
  }
  return run.finish(std::cout);
}
