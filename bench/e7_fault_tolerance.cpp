// E7 — §6: fault tolerance. Two parts:
//  (a) availability of each quorum construction as the per-site failure
//      probability p rises (exact for N <= 20, Monte-Carlo otherwise);
//  (b) end-to-end: the FT-enabled algorithm keeps executing CSs across
//      site crashes (tree quorums + the §6 recovery protocol), with
//      mutual exclusion intact.
#include <iostream>

#include "bench_util.h"
#include "quorum/availability.h"
#include "quorum/factory.h"

int main() {
  using namespace dqme;
  using harness::Table;

  std::cout << "E7a — availability vs per-site failure probability p\n"
            << "(N=15/16; exact where 2^N is feasible, else Monte-Carlo "
               "100k samples)\n\n";
  Table t({"p", "grid(16)", "tree(15)", "majority(15)", "hqc(27)",
           "gridset(16)", "rst(16)", "singleton(15)"});
  Rng rng(7);
  const struct {
    const char* kind;
    int n;
  } systems[] = {{"grid", 16},     {"tree", 15}, {"majority", 15},
                 {"hqc", 27},      {"gridset:4", 16},
                 {"rst:4", 16},    {"singleton", 15}};
  for (double p : {0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    std::vector<std::string> row{Table::num(p, 2)};
    for (const auto& s : systems) {
      auto qs = quorum::make_quorum_system(s.kind, s.n);
      const double up = 1.0 - p;
      const double a = s.n <= 20 ? quorum::exact_availability(*qs, up)
                                 : quorum::mc_availability(*qs, up, 100000,
                                                           rng);
      row.push_back(Table::num(a, 4));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: majority highest at every p; tree beats "
               "grid (graceful path substitution); singleton worst "
               "(1-p).\n\n";

  std::cout << "E7b — end-to-end crash runs (proposed algorithm, fault-"
               "tolerant mode, tree quorums N=15, closed loop)\n\n";
  Table e({"scenario", "completed", "recoveries", "aborted", "violations",
           "drained"});
  bool ok = true;
  struct Scenario {
    const char* name;
    std::vector<harness::ExperimentConfig::Crash> crashes;
  };
  const Scenario scenarios[] = {
      {"no crashes", {}},
      {"leaf crash (t=0.3M)", {{300'000, 9}}},
      {"internal node crash", {{300'000, 1}}},
      {"root crash (in every quorum)", {{300'000, 0}}},
      {"three staggered crashes", {{300'000, 9}, {600'000, 1}, {900'000, 5}}},
  };
  for (const Scenario& s : scenarios) {
    harness::ExperimentConfig cfg =
        bench::heavy(mutex::Algo::kCaoSinghal, 15, "tree", 11);
    cfg.options.fault_tolerant = true;
    cfg.measure = 1'500'000;
    cfg.crashes = s.crashes;
    auto r = harness::run_experiment(cfg);
    ok = ok && r.summary.violations == 0 && r.drained_clean;
    e.add_row({s.name, Table::integer(r.summary.completed),
               Table::integer(r.protocol_stats.recoveries),
               Table::integer(r.demands_aborted),
               Table::integer(r.summary.violations),
               r.drained_clean ? "yes" : "NO"});
  }
  e.print(std::cout);
  std::cout << "\nExpected shape: progress (completed > 0) in every "
               "scenario, recoveries > 0 whenever a quorum member died, "
               "zero violations throughout.\n"
            << "[integrity] all runs safe and drained: " << (ok ? "yes" : "NO")
            << "\n";
  return ok ? 0 : 1;
}
