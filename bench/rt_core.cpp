// rt_core — real-threads backend throughput (DESIGN.md §9).
//
// Unlike the E-benches (simulated ticks, virtual time), every number here
// is wall-clock: real contended CS handoffs/sec and wire messages/sec with
// one OS thread per site pumping lock-free SPSC rings. The grid covers
// {2,4,8,16} threads x {cao_singhal, maekawa, suzuki_kasami} x {1,256}
// locks; locks=1 is the paper's heavy load (one request in service per
// site), locks=256 is the x3 sharded-service shape where each site keeps a
// pipeline of independent grants in flight — the row that shows whether
// the backend scales past the protocol's single-lock serialization.
//
// Flags: the shared set (bench_util.h) plus --threads=K (rt suites only)
// to restrict the grid to one site count. --check attaches the per-lock
// atomic SafetyProbe and replays the merged observability feed through the
// PR-3 invariant checker after quiesce.
//
// check_perf.py gates these rows with a wider tolerance than the sim rows
// (wall-clock on a shared host is noisy) and additionally requires
// rt_scaling_cao_singhal_8t_over_2t_locks256 >= 2.0: eight pump threads
// must at least double the two-thread row even when the host oversubscribes
// them onto fewer cores — that is the batching argument of DESIGN.md §9.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/table.h"
#include "mutex/factory.h"
#include "rt/driver.h"

namespace {

using namespace dqme;

struct Row {
  const char* name;  // metric-safe algorithm name
  mutex::Algo algo;
  int threads;
  LockId locks;
  rt::FreeRunResult res;
};

}  // namespace

int main(int argc, char** argv) {
  auto opts = bench::parse_bench_flags(argc, argv, "rt_core",
                                       /*accepts_threads=*/true);
  bench::reject_extra_args(argc, argv, "rt_core");
  const auto wall_start = std::chrono::steady_clock::now();

  const struct {
    const char* name;
    mutex::Algo algo;
  } kAlgos[] = {
      {"cao_singhal", mutex::Algo::kCaoSinghal},
      {"maekawa", mutex::Algo::kMaekawa},
      {"suzuki_kasami", mutex::Algo::kSuzukiKasami},
  };
  const int kThreads[] = {2, 4, 8, 16};
  const LockId kLocks[] = {1, 256};

  std::vector<Row> rows;
  for (const auto& a : kAlgos) {
    // --quick keeps the gated trajectory rows: cao_singhal at 2 and 8
    // threads, both lock shapes (the scaling ratio needs exactly those).
    if (opts.quick && a.algo != mutex::Algo::kCaoSinghal) continue;
    for (int t : kThreads) {
      if (opts.threads != 0 && t != opts.threads) continue;
      if (opts.quick && t != 2 && t != 8) continue;
      for (LockId locks : kLocks) rows.push_back({a.name, a.algo, t, locks, {}});
    }
  }
  if (rows.empty()) {
    std::cerr << "rt_core: --threads=" << opts.threads
              << " is not in the grid {2,4,8,16}\n";
    return 2;
  }

  std::cout << "rt_core — real-threads backend, one pump thread per site"
            << (opts.check ? " (+safety probe & invariant replay)" : "")
            << "\n";
  bool ok = true;
  for (Row& row : rows) {
    rt::FreeRunConfig cfg;
    cfg.algo = row.algo;
    cfg.n = row.threads;
    cfg.quorum = "majority";  // valid for every n in the grid
    cfg.num_locks = row.locks;
    cfg.check = opts.check;
    // The paper's T as an emulated wire latency. With it, contended
    // throughput measures how many protocol pipelines the backend keeps in
    // flight concurrently — the quantity that scales with pump threads —
    // instead of raw single-host CPU, which does not.
    cfg.wire_delay_us = 100;
    // Enough entries to amortize thread startup; the soft wall-clock stop
    // bounds each row, and throughput is entries/wall either way. locks=1
    // rows are latency-bound (one grant chain per lock, ~T per hop), so
    // they get a smaller target than the pipelined locks=256 rows.
    cfg.target_entries = row.locks > 1
                             ? static_cast<uint64_t>(opts.quick ? 8'000 : 80'000)
                             : static_cast<uint64_t>(opts.quick ? 500 : 5'000);
    cfg.max_seconds = opts.quick ? 5.0 : 15.0;
    row.res = rt::run_free(cfg);
    if (!row.res.ok) {
      ok = false;
      std::cerr << "  FAIL " << row.name << " " << row.threads << "t locks="
                << row.locks << ": " << row.res.error;
      for (const auto& r : row.res.reports) std::cerr << "\n    " << r;
      std::cerr << "\n";
      continue;
    }
    std::cout << "  " << row.name << " " << row.threads << "t locks="
              << row.locks << ": "
              << harness::Table::num(row.res.handoffs_per_sec / 1e3, 1)
              << "k handoffs/s, "
              << harness::Table::num(row.res.wire_msgs_per_sec / 1e3, 1)
              << "k wire msgs/s (" << row.res.cs_entries << " entries in "
              << harness::Table::num(row.res.wall_seconds, 2) << "s)\n";
  }

  std::vector<bench::JsonMetric> metrics;
  const auto find = [&rows](const char* name, int t, LockId locks) -> Row* {
    for (Row& r : rows)
      if (std::string(r.name) == name && r.threads == t && r.locks == locks)
        return &r;
    return nullptr;
  };
  for (const Row& row : rows) {
    if (!row.res.ok) continue;
    const std::string key = std::string(row.name) + "_" +
                            std::to_string(row.threads) + "t_locks" +
                            std::to_string(row.locks);
    metrics.push_back({"rt_handoffs_per_sec_" + key, row.res.handoffs_per_sec, 0});
    metrics.push_back({"rt_wire_msgs_per_sec_" + key, row.res.wire_msgs_per_sec, 0});
  }
  Row* cao2 = find("cao_singhal", 2, 256);
  Row* cao8 = find("cao_singhal", 8, 256);
  if (cao2 != nullptr && cao8 != nullptr && cao2->res.ok && cao8->res.ok &&
      cao2->res.handoffs_per_sec > 0) {
    const double scaling =
        cao8->res.handoffs_per_sec / cao2->res.handoffs_per_sec;
    metrics.push_back({"rt_scaling_cao_singhal_8t_over_2t_locks256", scaling, 0});
    std::cout << "  scaling cao_singhal 8t/2t (locks=256): "
              << harness::Table::num(scaling, 2) << "x\n";
  }

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  double total_handoffs = 0;
  for (const Row& row : rows) total_handoffs += row.res.handoffs_per_sec;
  bench::write_bench_json(opts, ok, wall_ms, total_handoffs, metrics);
  return ok ? 0 : 1;
}
