// Quickstart: run the delay-optimal algorithm on a 5x5 grid of sites under
// heavy contention and print the paper's headline metrics.
//
//   $ ./example_quickstart
//
// Everything happens inside the bundled discrete-event simulator: build a
// network, make one CaoSinghalSite per site, drive them with a workload,
// read the metrics.
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace dqme;

  harness::ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;   // the paper's algorithm
  cfg.n = 25;                            // 25 sites
  cfg.quorum = "grid";                   // Maekawa-style sqrt(N) quorums
  cfg.mean_delay = 1000;                 // T = 1000 ticks (say, 1 ms)
  cfg.workload.mode = harness::Workload::Config::Mode::kClosed;  // saturation
  cfg.workload.cs_duration = 100;        // E = T/10
  cfg.seed = 42;

  const harness::ExperimentResult r = harness::run_experiment(cfg);

  std::cout << "Delay-optimal quorum mutual exclusion (Cao-Singhal, ICDCS'98)\n"
            << "N=" << cfg.n << "  quorum=" << cfg.quorum
            << "  K=" << r.mean_quorum_size << "  T=" << cfg.mean_delay
            << " ticks\n\n";

  harness::Table t({"metric", "value", "paper says"});
  t.add_row({"CS executions (measured window)",
             harness::Table::integer(r.summary.completed), "-"});
  t.add_row({"mutual exclusion violations",
             harness::Table::integer(r.summary.violations), "0 (Theorem 1)"});
  t.add_row({"all requests completed", r.drained_clean ? "yes" : "NO",
             "yes (Theorems 2-3)"});
  t.add_row({"wire messages per CS",
             harness::Table::num(r.summary.wire_msgs_per_cs),
             "5(K-1)..6(K-1) heavy load"});
  t.add_row({"sync delay / T", harness::Table::num(r.sync_delay_in_t),
             "~1 (vs 2 for Maekawa)"});
  t.add_row({"throughput (CS per T)",
             harness::Table::num(r.summary.throughput * cfg.mean_delay, 3),
             "~2x Maekawa"});
  t.print(std::cout);
  return r.summary.violations == 0 && r.drained_clean ? 0 : 1;
}
