// Side-by-side comparison of every algorithm in the library on one
// workload — a quick-look version of the E1/E3/E4 benches. Useful as a
// template for picking an algorithm for your own parameters.
//
// Usage: example_algorithm_comparison [N] (default 25)
#include <cstdlib>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace dqme;
  const int n = argc > 1 ? std::atoi(argv[1]) : 25;
  if (n < 2) {
    std::cerr << "N must be >= 2\n";
    return 2;
  }

  std::cout << "Algorithm comparison at N=" << n
            << " (closed loop, T=1000 ticks, E=100)\n\n";

  harness::Table t({"algorithm", "K", "msgs/CS", "delay/T", "CS per T",
                    "mean wait/T", "safe+live"});
  bool ok = true;
  for (mutex::Algo algo : mutex::all_algos()) {
    harness::ExperimentConfig cfg;
    cfg.algo = algo;
    cfg.n = n;
    cfg.quorum = "grid";
    cfg.mean_delay = 1000;
    cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
    cfg.workload.cs_duration = 100;
    cfg.warmup = 200'000;
    cfg.measure = 1'000'000;
    cfg.seed = 5;
    const harness::ExperimentResult r = harness::run_experiment(cfg);
    const bool good = r.summary.violations == 0 && r.drained_clean;
    ok = ok && good;
    t.add_row({std::string(mutex::to_string(algo)),
               harness::Table::num(r.mean_quorum_size, 0),
               harness::Table::num(r.summary.wire_msgs_per_cs, 1),
               harness::Table::num(r.sync_delay_in_t, 2),
               harness::Table::num(r.summary.throughput * 1000, 3),
               harness::Table::num(r.summary.waiting_mean / 1000, 1),
               good ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nReading the table: cao-singhal keeps Maekawa's O(sqrt N) "
               "message budget but matches the delay (and hence throughput "
               "class) of the O(N)-message algorithms — the paper's "
               "trade-off, dissolved.\n";
  return ok ? 0 : 1;
}
