// Replicated key-value store (§7 extension): atomic counters over quorum
// replica control with the delay-optimal mutex serializing writers.
//
// 15 bank branches (sites) concurrently post deposits to shared accounts
// while one branch crashes mid-day. Quorum intersection keeps reads
// consistent; the CS-serialized read-modify-write keeps balances exact; the
// §6 recovery layer keeps everything moving after the crash.
#include <iostream>

#include "net/network.h"
#include "core/failure_detector.h"
#include "harness/table.h"
#include "quorum/factory.h"
#include "replica/replicated_store.h"

int main() {
  using namespace dqme;
  const int n = 15;
  const int64_t kAccounts = 4;
  const int deposits_per_branch = 6;

  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::UniformDelay>(500, 1500),
                   99);
  auto quorums = quorum::make_quorum_system("tree", n);
  core::FailureDetector detector(net, 2500, 800, 7);

  core::CaoSinghalSite::Options opt;
  opt.fault_tolerant = true;
  std::vector<std::unique_ptr<replica::ReplicaNode>> branches;
  for (SiteId i = 0; i < n; ++i) {
    branches.push_back(
        std::make_unique<replica::ReplicaNode>(i, net, *quorums, opt));
    net.attach(i, branches.back().get());
    detector.attach(i, branches.back().get());
  }

  // Every branch posts `deposits_per_branch` deposits of 100, spread over
  // the accounts, as atomic read-modify-writes.
  int completed = 0;
  int failed = 0;
  for (SiteId b = 0; b < n; ++b) {
    for (int d = 0; d < deposits_per_branch; ++d) {
      const int64_t account = (b + d) % kAccounts;
      branches[static_cast<size_t>(b)]->update(
          account, [](int64_t balance) { return balance + 100; },
          [&](int64_t version) { version > 0 ? ++completed : ++failed; });
    }
  }
  // Branch 6 crashes while the day's traffic is in flight.
  sim.schedule_at(5000, [&] { detector.crash(6); });
  sim.run();

  // Audit from a different branch: balances must sum to the deposits that
  // were acknowledged (the crashed branch's unacknowledged ones excluded).
  int64_t total = 0;
  int audited = 0;
  for (int64_t account = 0; account < kAccounts; ++account) {
    branches[11]->read(account, [&](replica::Versioned v) {
      total += v.value;
      ++audited;
    });
  }
  sim.run();

  std::cout << "Replicated bank over quorum replica control (§7)\n"
            << "N=" << n << " branches on tree quorums, branch 6 crashes "
            << "mid-run\n\n";
  harness::Table t({"check", "result"});
  const int total_posted = n * deposits_per_branch;
  t.add_row({"deposits posted / acknowledged",
             std::to_string(total_posted) + " / " + std::to_string(completed)});
  t.add_row({"failed (no quorum)", std::to_string(failed)});
  t.add_row({"unacknowledged (died with branch 6)",
             std::to_string(total_posted - completed - failed)});
  t.add_row({"accounts audited", std::to_string(audited)});
  t.add_row({"audited total", std::to_string(total)});
  t.add_row({"expected total (100 x acknowledged)",
             std::to_string(100 * completed)});
  const bool exact = total == 100 * completed &&
                     audited == static_cast<int>(kAccounts);
  t.add_row({"no lost or duplicated deposits", exact ? "yes" : "NO"});
  t.print(std::cout);
  std::cout << "\nWhy it works: deposits are read-modify-writes inside the "
               "paper's critical section (total write order), committed to "
               "a quorum; the audit reads a quorum, which intersects every "
               "write quorum even across the crash (§2/§6).\n";
  return exact ? 0 : 1;
}
