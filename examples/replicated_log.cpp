// Replicated-data example — the application class the paper's introduction
// motivates ("replicated data, atomic commitment, ...").
//
// N sites each hold a replica of an append-only log. A site may only
// append while it holds the distributed mutual exclusion lock; inside the
// CS it appends locally and broadcasts the entry, and the paper's safety
// property (one site in the CS at a time) is what makes every replica see
// the same totally-ordered log.
//
// The example drives random appends through CaoSinghalSite and then checks
// that all replicas converged to identical logs with no lost or duplicated
// entries — a mutual exclusion violation would show up as a divergence.
#include <iostream>
#include <map>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "harness/table.h"
#include "quorum/factory.h"

namespace {

using namespace dqme;

struct LogEntry {
  SiteId writer;
  int value;
  bool operator==(const LogEntry&) const = default;
};

// One replica node: the protocol site plus the application state.
class ReplicaNode final : public net::NetSite {
 public:
  ReplicaNode(SiteId id, net::Network& net,
              const quorum::QuorumSystem& quorums, int appends_to_do)
      : id_(id), net_(net), mutex_(id, net, quorums),
        appends_left_(appends_to_do) {
    mutex_.on_enter = [this](SiteId, LockId) { in_cs(); };
  }

  void start() {
    if (appends_left_ > 0) mutex_.request_cs(kLock0);
  }

  // Application messages and protocol messages share the wire; entries are
  // broadcast with the (otherwise protocol-only) kToken type tagged by seq.
  void on_message(const net::Message& m, LockId lock) override {
    if (m.type == net::MsgType::kToken) {
      log_.push_back(LogEntry{m.src, static_cast<int>(m.seq)});
      return;
    }
    mutex_.on_message(m, lock);
  }

  const std::vector<LogEntry>& log() const { return log_; }
  bool done() const { return appends_left_ == 0; }

 private:
  void in_cs() {
    // Critically-sectioned append: local write + broadcast to replicas.
    const int value = static_cast<int>(1000 * (id_ + 1) + appends_left_);
    log_.push_back(LogEntry{id_, value});
    net::Message entry;
    entry.type = net::MsgType::kToken;
    entry.seq = static_cast<SeqNum>(value);
    for (SiteId j = 0; j < net_.size(); ++j)
      if (j != id_) net_.send(id_, j, entry);
    // Hold the CS long enough for the broadcast to outrace any later
    // writer's broadcast on FIFO channels: one max delay.
    net_.simulator().schedule_after(1100, [this] {
      mutex_.release_cs(kLock0);
      if (--appends_left_ > 0) mutex_.request_cs(kLock0);
    });
  }

  SiteId id_;
  net::Network& net_;
  core::CaoSinghalSite mutex_;
  int appends_left_;
  std::vector<LogEntry> log_;
};

}  // namespace

int main() {
  using namespace dqme;
  const int n = 9;
  const int appends_per_site = 5;

  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::UniformDelay>(500, 1000),
                   2024);
  auto quorums = quorum::make_quorum_system("grid", n);

  std::vector<std::unique_ptr<ReplicaNode>> nodes;
  for (SiteId i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<ReplicaNode>(i, net, *quorums, appends_per_site));
    net.attach(i, nodes.back().get());
  }
  for (auto& node : nodes) node->start();
  sim.run();

  // Verify convergence: every replica's log must be identical.
  bool all_done = true;
  for (auto& node : nodes) all_done = all_done && node->done();
  const auto& reference = nodes[0]->log();
  bool converged = reference.size() ==
                   static_cast<size_t>(n * appends_per_site);
  for (auto& node : nodes)
    converged = converged && node->log() == reference;

  std::map<SiteId, int> per_writer;
  for (const LogEntry& e : reference) ++per_writer[e.writer];

  std::cout << "Replicated log over delay-optimal quorum mutual exclusion\n"
            << "N=" << n << " replicas, " << appends_per_site
            << " appends each, jittered delays\n\n";
  harness::Table t({"check", "result"});
  t.add_row({"all appends completed", all_done ? "yes" : "NO"});
  t.add_row({"log length", std::to_string(reference.size())});
  t.add_row({"all replicas identical", converged ? "yes" : "NO"});
  t.add_row({"writers balanced",
             per_writer.size() == static_cast<size_t>(n) ? "yes" : "NO"});
  t.print(std::cout);
  std::cout << "\nFirst entries: ";
  for (size_t i = 0; i < 6 && i < reference.size(); ++i)
    std::cout << "(" << reference[i].writer << "," << reference[i].value
              << ") ";
  std::cout << "...\n";
  return all_done && converged ? 0 : 1;
}
