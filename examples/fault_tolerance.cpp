// Fault-tolerance example (§6): a 15-site system on Agrawal-El Abbadi tree
// quorums keeps granting the critical section while sites crash one after
// another — including the tree root, which sits in every quorum.
//
// Prints a timeline of crashes, recoveries, and progress, and ends with
// the safety/liveness verdict.
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace dqme;

  harness::ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 15;
  cfg.quorum = "tree";  // log N quorums, path substitution under failures
  cfg.options.fault_tolerant = true;
  cfg.mean_delay = 1000;
  cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
  cfg.workload.cs_duration = 200;
  cfg.warmup = 100'000;
  cfg.measure = 2'000'000;
  cfg.detection_latency = 3000;  // 3T to detect a crash
  cfg.detection_jitter = 1000;   // sites learn at different times
  cfg.seed = 7;

  // Crash schedule: a leaf, then an internal node, then the root itself.
  cfg.crashes.push_back({400'000, 12});
  cfg.crashes.push_back({900'000, 2});
  cfg.crashes.push_back({1'400'000, 0});

  std::cout << "Fault tolerance demo — delay-optimal mutual exclusion on "
               "tree quorums (N=15)\n\n"
            << "Crash schedule: site 12 (leaf) at t=0.4M, site 2 (internal) "
               "at t=0.9M,\n                site 0 (root — member of EVERY "
               "quorum) at t=1.4M\n"
            << "Failure detection: 3T latency, 1T jitter (sites act on "
               "inconsistent views)\n\n";

  const harness::ExperimentResult r = harness::run_experiment(cfg);

  harness::Table t({"metric", "value"});
  t.add_row({"CS executions completed",
             harness::Table::integer(r.summary.completed)});
  t.add_row({"quorum reconstructions (§6 recoveries)",
             harness::Table::integer(r.protocol_stats.recoveries)});
  t.add_row({"demands written off at crashed sites",
             harness::Table::integer(r.demands_aborted)});
  t.add_row({"mutual exclusion violations",
             harness::Table::integer(r.summary.violations)});
  t.add_row({"all surviving demands completed",
             r.drained_clean ? "yes" : "NO"});
  t.add_row({"stale messages discarded (expected during recovery)",
             harness::Table::integer(r.stale_drops)});
  t.print(std::cout);

  std::cout << "\nWhat happened: when a quorum member dies, requesters "
               "release every claim their in-flight request held, rebuild "
               "a quorum from live sites via the tree substitution rule "
               "(dead node -> paths through both children), and re-request; "
               "arbiters scrub the dead site's entries from their queues "
               "and hand the permission onward (§6 cases 1-3).\n";
  return r.summary.violations == 0 && r.drained_clean ? 0 : 1;
}
