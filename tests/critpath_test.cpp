// Critical-path attribution tests (src/obs/critpath).
//
// The engine's contract has three legs, each pinned here:
//   * conservation — every extracted path's segments tile the request's
//     [issued, entered] interval EXACTLY (sums equal the span's measured
//     waiting time to the tick), across all eight algorithms, randomized
//     delays, multi-lock tables, and piggybacking on/off;
//   * the golden §3 decomposition — on the Table-1 ping-pong schedule the
//     contended Cao–Singhal path ends in exactly one proxy hop of 1·T
//     (the proxy-forwarded reply) while Maekawa's ends in two wire hops
//     of 2·T (release -> arbiter -> grant), with the budgets to match;
//   * determinism — CritStats merged over replicated seeds produce
//     byte-identical JSON for any --jobs split, and attribution stays
//     conservative through §6 crash-and-recovery runs.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "mutex/factory.h"
#include "net/network.h"
#include "obs/capture.h"
#include "obs/critpath.h"
#include "quorum/factory.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace dqme {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using mutex::Algo;
using obs::CritBucket;
using obs::CritPath;
using obs::CritStats;

constexpr Time kT = 1000;

// Per-path structural checks: segments are consecutive half-open
// intervals tiling [issued, entered] — conservation to the tick.
void expect_tiled(const CritPath& p, const std::string& ctx) {
  if (p.waiting() == 0) {
    // Instant entry (e.g. Roucairol–Carvalho re-entering on cached
    // permissions): nothing to tile, nothing to attribute.
    EXPECT_TRUE(p.segments.empty()) << ctx;
    return;
  }
  ASSERT_FALSE(p.segments.empty()) << ctx;
  EXPECT_EQ(p.segments.front().begin, p.issued) << ctx;
  EXPECT_EQ(p.segments.back().end, p.entered) << ctx;
  Time sum = 0;
  for (size_t i = 0; i < p.segments.size(); ++i) {
    EXPECT_LT(p.segments[i].begin, p.segments[i].end) << ctx << " seg " << i;
    if (i > 0) {
      EXPECT_EQ(p.segments[i - 1].end, p.segments[i].begin)
          << ctx << " seg " << i;
    }
    sum += p.segments[i].duration();
  }
  EXPECT_EQ(sum, p.waiting()) << ctx;
}

// ------------------------------------------------------- conservation

// All eight algorithms, jittered delays, 2-lock table, piggybacking on
// and off: every completed request's path must tile exactly, and the
// aggregated residual must be zero.
TEST(CritPathConservation, ExactForEveryAlgorithmAndPiggybackSetting) {
  for (Algo algo : mutex::all_algos()) {
    for (Time piggy : {Time{-1}, kT}) {
      ExperimentConfig cfg =
          testing::heavy_cfg(algo, 9, /*seed=*/7 + static_cast<int>(piggy));
      cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
      cfg.options.num_locks = 2;
      cfg.workload.num_locks = 2;
      cfg.lock_piggyback_window = piggy;
      cfg.warmup = 20'000;
      cfg.measure = 150'000;
      cfg.critpath = true;
      obs::RunCapture cap;
      cfg.capture = &cap;
      const std::string ctx = std::string(mutex::to_string(algo)) +
                              " piggy=" + std::to_string(piggy);
      const ExperimentResult r = testing::run_checked(cfg);
      EXPECT_GT(r.critpath.paths(), 0u) << ctx;
      EXPECT_EQ(r.critpath.residual_ticks(), 0u) << ctx;
      const auto paths = obs::extract_critical_paths(cap.span_events);
      ASSERT_FALSE(paths.empty()) << ctx;
      for (const CritPath& p : paths)
        expect_tiled(p, ctx + " span " + obs::format_span(p.span));
    }
  }
}

// ------------------------------------------------- golden §3 decomposition

// The span_test ping-pong rig as an end-to-end fixture: ONLY sites 2 and
// 7 of a 3x3 grid alternate the CS under constant delay T, CS duration 2T
// (every handoff proxy-eligible — the §3 transfer always beats the exit).
// Two drivers, not nine: with more contenders the entry can legitimately
// complete on a direct grant from an uncontended arbiter instead of the
// proxy reply, and the tail is no longer the pure Table-1 form.
std::vector<CritPath> pingpong_paths(Algo algo) {
  constexpr Time kE = 2 * kT;
  sim::Simulator sim;
  net::Network net(sim, 9, std::make_unique<net::ConstantDelay>(kT), 1);
  obs::SpanRecorder spans(net);
  auto quorums = quorum::make_quorum_system("grid", 9);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  for (SiteId i = 0; i < 9; ++i) {
    sites.push_back(
        mutex::make_site(algo, i, net, quorums.get(), mutex::AlgoOptions{}));
    net.attach(i, sites.back().get());
    spans.attach(*sites.back());
  }
  auto drive = [&](SiteId id, auto remaining) {
    auto* s = sites[static_cast<size_t>(id)].get();
    s->on_enter = [&sim, s, remaining](SiteId, LockId) {
      sim.schedule_after(kE, [s, remaining] {
        s->release_cs(kLock0);
        if (--*remaining > 0) s->request_cs(kLock0);
      });
    };
    s->request_cs(kLock0);
  };
  drive(2, std::make_shared<int>(6));
  drive(7, std::make_shared<int>(6));
  sim.run();
  return obs::extract_critical_paths(spans.events());
}

TEST(CritPathGolden, CaoSinghalContendedTailIsOneProxyHopOfOneT) {
  const auto paths = pingpong_paths(Algo::kCaoSinghal);
  size_t contended = 0;
  for (const CritPath& p : paths) {
    expect_tiled(p, "cao span " + obs::format_span(p.span));
    if (!p.contended) continue;
    ++contended;
    EXPECT_EQ(p.tail_hops, 1) << obs::format_span(p.span);
    EXPECT_EQ(p.tail_delay, kT) << obs::format_span(p.span);
    // The tail hop is the §3 proxy-forwarded reply itself.
    EXPECT_EQ(p.segments.back().bucket, CritBucket::kProxy)
        << obs::format_span(p.span);
    EXPECT_EQ(p.segments.back().duration(), kT) << obs::format_span(p.span);
  }
  EXPECT_GT(contended, 4u);
}

TEST(CritPathGolden, MaekawaContendedTailIsTwoWireHopsOfTwoT) {
  const auto paths = pingpong_paths(Algo::kMaekawa);
  size_t contended = 0;
  for (const CritPath& p : paths) {
    expect_tiled(p, "maekawa span " + obs::format_span(p.span));
    if (!p.contended) continue;
    ++contended;
    EXPECT_EQ(p.tail_hops, 2) << obs::format_span(p.span);
    EXPECT_EQ(p.tail_delay, 2 * kT) << obs::format_span(p.span);
    EXPECT_EQ(p.in_bucket(CritBucket::kProxy), 0) << obs::format_span(p.span);
  }
  EXPECT_GT(contended, 4u);
}

// The aggregate view of the same gate: CritStats over the Cao run puts
// every contended path in the 1-hop bin with a 1.0 T mean tail.
TEST(CritPathGolden, CritStatsAggregatesTheTableOneTail) {
  CritStats cs(kT);
  for (const CritPath& p : pingpong_paths(Algo::kCaoSinghal)) cs.record(p);
  EXPECT_GT(cs.contended(), 0u);
  EXPECT_EQ(cs.residual_ticks(), 0u);
  EXPECT_EQ(cs.tail_hops()[1], cs.contended());
  EXPECT_DOUBLE_EQ(cs.mean_tail_in_t(), 1.0);
  EXPECT_EQ(cs.ticks(CritBucket::kProxy), cs.contended() * kT);
}

// ---------------------------------------------------- crash mid-transfer

// §6 recovery with the engine attached: crash a site mid-run (killing
// in-flight transfers) under fault-tolerant Cao–Singhal. Requests that
// still complete must attribute exactly — recovery detours land in real
// buckets or kOther, never in silently-dropped ticks.
TEST(CritPathFaults, ConservationSurvivesCrashMidTransfer) {
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, 9, /*seed=*/5);
  cfg.options.fault_tolerant = true;
  cfg.warmup = 50'000;
  cfg.measure = 400'000;
  cfg.crashes.push_back({cfg.warmup + 100'000, /*victim=*/1});
  cfg.critpath = true;
  obs::RunCapture cap;
  cfg.capture = &cap;
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_GT(r.protocol_stats.recoveries, 0u);
  EXPECT_GT(r.critpath.paths(), 0u);
  EXPECT_EQ(r.critpath.residual_ticks(), 0u);
  for (const CritPath& p : obs::extract_critical_paths(cap.span_events))
    expect_tiled(p, "crash run span " + obs::format_span(p.span));
}

// -------------------------------------------------------- determinism

// The merged delay budget must be byte-identical whether the replicated
// seeds ran on one worker or several — the bench "critpath" JSON key's
// --jobs invariance, pinned at the unit level.
TEST(CritPathDeterminism, MergedJsonIsIdenticalAcrossJobsSplits) {
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, 9, /*seed=*/3);
  cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
  cfg.warmup = 20'000;
  cfg.measure = 150'000;
  cfg.critpath = true;
  auto merged_json = [&](int jobs) {
    CritStats merged;
    for (const ExperimentResult& r : harness::replicate(cfg, 3, jobs))
      merged.merge(r.critpath);
    std::ostringstream os;
    merged.write_json(os);
    return os.str();
  };
  const std::string seq = merged_json(1);
  EXPECT_GT(seq.size(), 2u);  // not the disabled "{}"
  EXPECT_EQ(seq, merged_json(3));
}

}  // namespace
}  // namespace dqme
