// Regression tests for the slab-allocated event store: tombstone
// compaction keeps cancel-heavy workloads at bounded memory, slot reuse
// invalidates stale EventIds, and callbacks of every size class work.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "sim/simulator.h"

namespace dqme::sim {
namespace {

// The seed implementation kept every cancelled entry in its heap until the
// simulation drained past it: a timeout-style workload (schedule far out,
// cancel almost always) grew the heap without bound. The slab store
// compacts when tombstones dominate, so one million schedule/cancel pairs
// with a small live set must stay at a small heap and slab.
TEST(SimulatorSlab, MillionCancelsBoundedMemory) {
  Simulator sim;
  constexpr int kEvents = 1'000'000;
  Simulator::EventId window[4] = {};
  size_t max_heap = 0, max_slab = 0;
  for (int i = 0; i < kEvents; ++i) {
    auto& slot = window[i % 4];
    if (slot != 0) {
      EXPECT_TRUE(sim.cancel(slot));
    }
    slot = sim.schedule_at(1'000'000 + i, [] {});
    max_heap = std::max(max_heap, sim.heap_size());
    max_slab = std::max(max_slab, sim.slab_capacity());
  }
  // At most 4 events are ever live; tombstones must not accumulate.
  EXPECT_LE(sim.pending(), 4u);
  EXPECT_LE(max_heap, 2 * 64 + 8u);  // 2x the compaction floor + live set
  EXPECT_LE(max_slab, 8u);           // slots are reclaimed on cancel
  EXPECT_GT(sim.compactions(), 0u);
}

TEST(SimulatorSlab, CancellingAllOfABurstEmptiesTheHeap) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  ids.reserve(100'000);
  for (int i = 0; i < 100'000; ++i)
    ids.push_back(sim.schedule_at(10 + i, [] {}));
  EXPECT_EQ(sim.heap_size(), 100'000u);
  for (auto id : ids) EXPECT_TRUE(sim.cancel(id));
  // Compaction fires once tombstones dominate; nothing live remains.
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_LT(sim.heap_size(), 64u);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorSlab, SlotReuseInvalidatesStaleIds) {
  Simulator sim;
  bool b_ran = false;
  auto a = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(a));
  // b reuses a's slot; a's id must stay dead.
  auto b = sim.schedule_at(20, [&] { b_ran = true; });
  EXPECT_FALSE(sim.cancel(a));
  sim.run();
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(sim.cancel(b));  // already fired
}

TEST(SimulatorSlab, StaleIdAfterFiringAndReuse) {
  Simulator sim;
  auto a = sim.schedule_at(1, [] {});
  sim.run();
  auto b = sim.schedule_at(2, [] {});  // reuses a's slot
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_TRUE(sim.cancel(b));
}

TEST(SimulatorSlab, InlineAndHeapCallbacksBothFire) {
  Simulator sim;
  // Network-sized capture (40 bytes): must fit Callback's inline storage.
  struct Small {
    uint64_t a, b, c;
    void* d;
  } small{1, 2, 3, nullptr};
  static_assert(sizeof(Small) <= Callback::kInlineSize);
  uint64_t got_small = 0;
  sim.schedule_at(1, [&got_small, small] { got_small = small.a + small.c; });

  // Oversized capture: falls back to one heap allocation but still works.
  std::array<char, 128> big;
  big.fill(7);
  static_assert(sizeof(big) > Callback::kInlineSize);
  int got_big = 0;
  sim.schedule_at(2, [&got_big, big] { got_big = big[127]; });

  sim.run();
  EXPECT_EQ(got_small, 4u);
  EXPECT_EQ(got_big, 7);
}

TEST(SimulatorSlab, CallbackMoveSemantics) {
  int runs = 0;
  Callback a = [&runs] { ++runs; };
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(runs, 1);
  b = nullptr;
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(SimulatorSlab, OrderingSurvivesCompaction) {
  // Interleave cancels with live events and check execution order is still
  // (time, scheduling order) afterwards.
  Simulator sim;
  std::vector<int> order;
  std::vector<Simulator::EventId> doomed;
  for (int i = 0; i < 1000; ++i) {
    const Time t = (i * 37) % 100 + 10;
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
    doomed.push_back(sim.schedule_at(t, [] { ADD_FAILURE(); }));
  }
  for (auto id : doomed) EXPECT_TRUE(sim.cancel(id));
  sim.run();
  ASSERT_EQ(order.size(), 1000u);
  Time last = -1;
  int last_i = -1;
  for (int i : order) {
    const Time t = (i * 37) % 100 + 10;
    EXPECT_GE(t, last);
    if (t == last) {
      EXPECT_GT(i, last_i);
    }
    last = t;
    last_i = i;
  }
}

TEST(SimulatorSlab, ExecutedAndPendingAccountingAcrossChurn) {
  Simulator sim;
  uint64_t fired = 0;
  uint64_t cancelled = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<Simulator::EventId> ids;
    for (int i = 0; i < 200; ++i)
      ids.push_back(
          sim.schedule_after(1 + (i % 17), [&fired] { ++fired; }));
    for (size_t i = 0; i < ids.size(); i += 2)
      cancelled += sim.cancel(ids[i]) ? 1 : 0;
    sim.run();
    EXPECT_TRUE(sim.idle());
  }
  EXPECT_EQ(fired, 50u * 200u - cancelled);
  EXPECT_EQ(sim.events_executed(), fired);
}

}  // namespace
}  // namespace dqme::sim
