// Equivalence tests for the flat protocol-state containers
// (mutex/flat_state.h): VoteMap must behave exactly like the
// std::map<SiteId,bool> it replaced (including across §6 quorum
// re-formation, where the member set changes mid-request), and ReqQueue
// must behave exactly like std::set<ReqId> — same priority order, same
// head identity, same scrub semantics.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "mutex/flat_state.h"

namespace dqme::mutex {
namespace {

// ------------------------------------------------------------------ VoteMap

// Reference model: the protocols' old representation.
using VoteModel = std::map<SiteId, bool>;

void expect_equivalent(const VoteMap& flat, const VoteModel& model) {
  ASSERT_EQ(flat.size(), model.size());
  for (const auto& [site, has] : model) {
    const int pos = flat.find(site);
    ASSERT_GE(pos, 0) << "member " << site << " missing from VoteMap";
    EXPECT_EQ(flat.member(static_cast<size_t>(pos)), site);
    EXPECT_EQ(flat.test(static_cast<size_t>(pos)), has);
  }
  bool model_all = true;
  for (const auto& [site, has] : model) model_all = model_all && has;
  EXPECT_EQ(flat.all(), model_all);
}

TEST(VoteMap, MatchesMapSemantics) {
  VoteMap flat;
  const std::vector<SiteId> quorum = {2, 5, 7, 11};
  flat.assign(quorum);
  VoteModel model;
  for (SiteId j : quorum) model[j] = false;
  expect_equivalent(flat, model);
  EXPECT_FALSE(flat.all());

  // Grant two, revoke one (the yield path), grant the rest.
  flat.grant(static_cast<size_t>(flat.find(5)));
  model[5] = true;
  flat.grant(static_cast<size_t>(flat.find(11)));
  model[11] = true;
  expect_equivalent(flat, model);

  flat.revoke(static_cast<size_t>(flat.find(5)));
  model[5] = false;
  expect_equivalent(flat, model);
  EXPECT_FALSE(flat.all());

  for (SiteId j : quorum) {
    flat.grant(static_cast<size_t>(flat.find(j)));
    model[j] = true;
  }
  expect_equivalent(flat, model);
  EXPECT_TRUE(flat.all());

  EXPECT_EQ(flat.find(3), -1);  // non-member
}

TEST(VoteMap, GrantAndRevokeAreIdempotent) {
  VoteMap flat;
  flat.assign({1, 2});
  const auto p = static_cast<size_t>(flat.find(1));
  flat.grant(p);
  flat.grant(p);  // double grant must not double-count
  flat.revoke(p);
  EXPECT_FALSE(flat.all());
  flat.revoke(p);  // double revoke must not underflow
  flat.grant(p);
  flat.grant(static_cast<size_t>(flat.find(2)));
  EXPECT_TRUE(flat.all());
}

// The §6 path: after a crash the requester re-forms its quorum and
// restarts the request — assign() with the new member set must resize and
// remap positions, with no vote state leaking from the old quorum.
TEST(VoteMap, ReassignRemapsAfterQuorumReFormation) {
  VoteMap flat;
  flat.assign({0, 3, 4, 8});
  for (SiteId j : {0, 3, 4}) flat.grant(static_cast<size_t>(flat.find(j)));
  EXPECT_FALSE(flat.all());

  // Site 4 crashed; the re-formed quorum drops it, keeps 0 and 8, and
  // adds 6 — different size, different positions.
  const std::vector<SiteId> reformed = {0, 6, 8};
  flat.assign(reformed);
  VoteModel model;
  for (SiteId j : reformed) model[j] = false;
  expect_equivalent(flat, model);  // no stale grants survive
  EXPECT_EQ(flat.find(4), -1);
  EXPECT_EQ(flat.find(3), -1);

  for (SiteId j : reformed) flat.grant(static_cast<size_t>(flat.find(j)));
  EXPECT_TRUE(flat.all());
}

TEST(VoteMap, RandomizedEquivalenceAgainstMap) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    // Random quorum of 3-9 distinct sites out of 0..19.
    std::vector<SiteId> pool(20);
    for (SiteId i = 0; i < 20; ++i) pool[static_cast<size_t>(i)] = i;
    rng.shuffle(pool);
    pool.resize(static_cast<size_t>(rng.uniform_int(3, 9)));

    VoteMap flat;
    flat.assign(pool);
    VoteModel model;
    for (SiteId j : pool) model[j] = false;

    for (int op = 0; op < 40; ++op) {
      const SiteId j =
          pool[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(pool.size()) - 1))];
      const auto pos = static_cast<size_t>(flat.find(j));
      if (rng.bernoulli(0.6)) {
        flat.grant(pos);
        model[j] = true;
      } else {
        flat.revoke(pos);
        model[j] = false;
      }
      expect_equivalent(flat, model);
    }
  }
}

// ------------------------------------------------------------------ ReqQueue

using QueueModel = std::set<ReqId>;

void expect_equivalent(const ReqQueue& flat, const QueueModel& model) {
  ASSERT_EQ(flat.size(), model.size());
  // Iteration order — the priority order the arbiters act on — must match
  // the set's exactly.
  auto fit = flat.begin();
  for (const ReqId& r : model) {
    EXPECT_EQ(*fit, r);
    ++fit;
  }
  if (!model.empty()) {
    EXPECT_EQ(flat.front(), *model.begin());
  }
}

TEST(ReqQueue, PriorityOrderMatchesSet) {
  ReqQueue flat;
  QueueModel model;
  // Lamport order: seq first, site breaks ties — lower is higher priority.
  const std::vector<ReqId> reqs = {
      {5, 2}, {3, 7}, {5, 1}, {9, 0}, {3, 8}, {1, 4},
  };
  for (const ReqId& r : reqs) {
    flat.insert(r);
    model.insert(r);
    expect_equivalent(flat, model);
  }
  EXPECT_EQ(flat.front(), (ReqId{1, 4}));  // smallest timestamp wins

  // Duplicate insert is a no-op, like std::set.
  flat.insert({5, 2});
  model.insert({5, 2});
  expect_equivalent(flat, model);
}

TEST(ReqQueue, FindEraseAndHeadIdentity) {
  ReqQueue flat;
  for (const ReqId& r : {ReqId{2, 0}, ReqId{4, 1}, ReqId{6, 2}}) flat.insert(r);

  // was_head test used by handle_release's §6 scrub path.
  auto it = flat.find({2, 0});
  ASSERT_NE(it, flat.end());
  EXPECT_EQ(it, flat.begin());
  flat.erase(it);
  EXPECT_EQ(flat.front(), (ReqId{4, 1}));

  it = flat.find({6, 2});
  ASSERT_NE(it, flat.end());
  EXPECT_NE(it, flat.begin());
  flat.erase(it);
  EXPECT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat.find({9, 9}), flat.end());

  flat.pop_front();
  EXPECT_TRUE(flat.empty());
}

TEST(ReqQueue, EraseIfMatchesSetSemantics) {
  // The supersede-by-site scrub in handle_request / handle_failure_notice.
  ReqQueue flat;
  QueueModel model;
  for (const ReqId& r :
       {ReqId{1, 3}, ReqId{2, 5}, ReqId{3, 3}, ReqId{4, 8}, ReqId{5, 3}}) {
    flat.insert(r);
    model.insert(r);
  }
  const auto by_site_3 = [](const ReqId& q) { return q.site == 3; };
  const size_t removed = flat.erase_if(by_site_3);
  std::erase_if(model, by_site_3);
  EXPECT_EQ(removed, 3u);
  expect_equivalent(flat, model);
}

TEST(ReqQueue, RandomizedEquivalenceAgainstSet) {
  Rng rng(99);
  ReqQueue flat;
  QueueModel model;
  for (int op = 0; op < 2000; ++op) {
    const ReqId r{static_cast<SeqNum>(rng.uniform_int(1, 12)),
                  static_cast<SiteId>(rng.uniform_int(0, 9))};
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    if (kind == 0 || model.empty()) {
      flat.insert(r);
      model.insert(r);
    } else if (kind == 1) {
      auto fit = flat.find(r);
      auto mit = model.find(r);
      ASSERT_EQ(fit != flat.end(), mit != model.end());
      if (fit != flat.end()) {
        EXPECT_EQ(fit == flat.begin(), mit == model.begin());
        flat.erase(fit);
        model.erase(mit);
      }
    } else if (kind == 2) {
      flat.pop_front();
      model.erase(model.begin());
    } else {
      const SiteId s = r.site;
      const auto pred = [s](const ReqId& q) { return q.site == s; };
      EXPECT_EQ(flat.erase_if(pred), std::erase_if(model, pred));
    }
    expect_equivalent(flat, model);
  }
}

}  // namespace
}  // namespace dqme::mutex
