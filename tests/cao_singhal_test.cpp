// Behavioural tests for the paper's algorithm: §5's message-count bands,
// the delay-T claim, quorum independence (§1/§3.1: "does not depend on any
// particular quorum construction"), and randomized safety/liveness sweeps.
#include <gtest/gtest.h>

#include "net/network.h"
#include "quorum/factory.h"
#include "test_util.h"

namespace dqme {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using mutex::Algo;
using testing::heavy_cfg;
using testing::light_cfg;
using testing::run_checked;

// §5.1: an uncontended CS costs exactly (K-1) request + (K-1) reply +
// (K-1) release = 3(K-1) wire messages.
TEST(CaoSinghal, UncontendedCsCostsExactly3KMinus1) {
  ExperimentConfig cfg = light_cfg(Algo::kCaoSinghal, 25, 31);
  // Make contention essentially impossible: one demand per site per 1000T.
  cfg.workload.arrival_rate = 1.0 / (1000.0 * 1000.0);
  cfg.measure = 20'000'000;
  ExperimentResult r = run_checked(cfg);
  ASSERT_GT(r.summary.completed, 10u);
  EXPECT_NEAR(r.summary.wire_msgs_per_cs, 3.0 * (r.mean_quorum_size - 1),
              0.8);
}

// §5.2: heavy load costs 5(K-1) or 6(K-1); with piggybacking (inquire
// rides with transfer, reply with transfer) wire messages stay in the
// 3(K-1)..6(K-1) band.
TEST(CaoSinghal, HeavyLoadCostsWithin3To6KMinus1) {
  ExperimentResult r = run_checked(heavy_cfg(Algo::kCaoSinghal, 25, 32));
  const double k1 = r.mean_quorum_size - 1;
  EXPECT_GE(r.summary.wire_msgs_per_cs, 3.0 * k1 - 1);
  EXPECT_LE(r.summary.wire_msgs_per_cs, 6.0 * k1 + 1);
}

// The headline claim: synchronization delay ~T under heavy load because
// the exiting site forwards replies directly.
TEST(CaoSinghal, SynchronizationDelayApproachesT) {
  ExperimentResult r = run_checked(heavy_cfg(Algo::kCaoSinghal, 25, 33));
  EXPECT_LT(r.sync_delay_in_t, 1.35);
  EXPECT_GE(r.sync_delay_in_t, 0.95);  // T is a hard lower bound (§5.2)
}

// The proxy machinery must actually carry the load at saturation.
TEST(CaoSinghal, RepliesAreForwardedByProxiesUnderContention) {
  ExperimentResult r = run_checked(heavy_cfg(Algo::kCaoSinghal, 25, 34));
  EXPECT_GT(r.protocol_stats.transfers_accepted, 0u);
  EXPECT_GT(r.protocol_stats.replies_forwarded, 0u);
  // At saturation most handoffs should go through the fast path.
  EXPECT_GT(r.protocol_stats.replies_forwarded,
            r.protocol_stats.replies_direct / 4);
}

// Arbiter case accounting (E8 machinery): every request an arbiter sees is
// classified into exactly one §5.2 case.
TEST(CaoSinghal, EveryArbiterRequestFallsIntoOneCase) {
  ExperimentResult r = run_checked(heavy_cfg(Algo::kCaoSinghal, 25, 35));
  EXPECT_GT(r.case_stats.total(), 0u);
  // Under saturation the contended cases dominate and fails must occur.
  EXPECT_GT(r.case_stats.c3_fail_newcomer + r.case_stats.c2_empty_lower +
                r.case_stats.c6_between,
            0u);
}

// Starvation freedom in practice: no request waits pathologically long
// compared to the round-robin ideal (N * (E + T) per turn).
TEST(CaoSinghal, WaitingTimesAreBounded) {
  ExperimentConfig cfg = heavy_cfg(Algo::kCaoSinghal, 25, 36);
  cfg.measure = 1'000'000;
  ExperimentResult r = run_checked(cfg);
  const double turn = 25.0 * (static_cast<double>(cfg.workload.cs_duration) +
                              static_cast<double>(cfg.mean_delay));
  EXPECT_LT(r.summary.waiting_max, 4.0 * turn);
}

// Exponential CS times and jittered delays must not break anything.
TEST(CaoSinghal, RobustToStochasticDurationsAndDelays) {
  ExperimentConfig cfg = heavy_cfg(Algo::kCaoSinghal, 25, 37);
  cfg.workload.exponential_cs = true;
  cfg.delay_kind = ExperimentConfig::DelayKind::kExponential;
  ExperimentResult r = run_checked(cfg);
  EXPECT_GT(r.summary.completed, 0u);
}

TEST(CaoSinghal, UniformDelayJitterStillDelayOptimalShape) {
  ExperimentConfig cs = heavy_cfg(Algo::kCaoSinghal, 25, 38);
  cs.delay_kind = ExperimentConfig::DelayKind::kUniform;
  ExperimentConfig mk = heavy_cfg(Algo::kMaekawa, 25, 38);
  mk.delay_kind = ExperimentConfig::DelayKind::kUniform;
  ExperimentResult a = run_checked(cs);
  ExperimentResult b = run_checked(mk);
  EXPECT_LT(a.summary.sync_delay_contended,
            0.8 * b.summary.sync_delay_contended);
}

// ---- Quorum independence (§1): sweep constructions under both loads ----

struct QuorumParam {
  const char* kind;
  int n;
};

std::string quorum_param_name(
    const ::testing::TestParamInfo<QuorumParam>& info) {
  std::string s = info.param.kind;
  for (char& c : s)
    if (c == ':') c = '_';
  return s + "_n" + std::to_string(info.param.n);
}

class CaoSinghalOnQuorums : public ::testing::TestWithParam<QuorumParam> {};

TEST_P(CaoSinghalOnQuorums, SafeAndLiveHeavy) {
  auto p = GetParam();
  ExperimentResult r =
      run_checked(heavy_cfg(Algo::kCaoSinghal, p.n, 40, p.kind));
  EXPECT_GT(r.summary.completed, 0u);
}

TEST_P(CaoSinghalOnQuorums, SafeAndLiveLight) {
  auto p = GetParam();
  ExperimentResult r =
      run_checked(light_cfg(Algo::kCaoSinghal, p.n, 41, p.kind));
  EXPECT_GT(r.summary.completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Quorums, CaoSinghalOnQuorums,
    ::testing::Values(QuorumParam{"grid", 25}, QuorumParam{"grid", 23},
                      QuorumParam{"fpp", 13}, QuorumParam{"fpp", 31},
                      QuorumParam{"tree", 15}, QuorumParam{"majority", 11},
                      QuorumParam{"hqc", 9}, QuorumParam{"hqc", 27},
                      QuorumParam{"gridset:4", 16}, QuorumParam{"rst:4", 16},
                      QuorumParam{"singleton", 8}, QuorumParam{"all", 6}),
    quorum_param_name);

// ---- Randomized seed sweep: the empirical Theorems 1-3 ----

class CaoSinghalSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CaoSinghalSeedSweep, HeavyLoadSafetyAndLiveness) {
  ExperimentConfig cfg = heavy_cfg(Algo::kCaoSinghal, 16, GetParam());
  cfg.workload.exponential_cs = (GetParam() % 2) == 0;
  cfg.delay_kind = (GetParam() % 3) == 0
                       ? ExperimentConfig::DelayKind::kExponential
                       : ExperimentConfig::DelayKind::kConstant;
  run_checked(cfg);
}

TEST_P(CaoSinghalSeedSweep, ModerateLoadSafetyAndLiveness) {
  ExperimentConfig cfg = light_cfg(Algo::kCaoSinghal, 16, GetParam());
  // ~45% utilization: aggregate demand 16/(40T) vs capacity ~1/(T+E).
  // (Above saturation the open-loop backlog grows without bound and the
  // run can never drain — that is queueing theory, not a protocol flaw.)
  cfg.workload.arrival_rate = 1.0 / (40.0 * 1000.0);
  cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
  run_checked(cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaoSinghalSeedSweep,
                         ::testing::Range<uint64_t>(100, 120));

// ---- K scaling: messages grow as sqrt(N), not N ----

TEST(CaoSinghal, MessageCountScalesWithRootN) {
  ExperimentResult small = run_checked(heavy_cfg(Algo::kCaoSinghal, 9, 42));
  ExperimentResult big = run_checked(heavy_cfg(Algo::kCaoSinghal, 49, 42));
  // N grew ~5.4x; K-1 grew (13-1)/(5-1) ~ 3x; messages should track K.
  const double growth =
      big.summary.wire_msgs_per_cs / small.summary.wire_msgs_per_cs;
  EXPECT_LT(growth, 4.0);
  EXPECT_GT(growth, 1.8);
}

// §5.1: "The response time in light load is 2T + E" — request round trip
// plus the CS itself, with no queueing.
TEST(CaoSinghal, LightLoadResponseTimeIs2TPlusE) {
  ExperimentConfig cfg = light_cfg(Algo::kCaoSinghal, 25, 43);
  cfg.workload.arrival_rate = 1.0 / (1000.0 * 1000.0);  // negligible load
  cfg.measure = 20'000'000;
  ExperimentResult r = run_checked(cfg);
  const double expect = 2.0 * static_cast<double>(cfg.mean_delay) +
                        static_cast<double>(cfg.workload.cs_duration);
  EXPECT_NEAR(r.summary.response_mean, expect, 0.05 * expect);
}

// Theorem 3 made quantitative: under symmetric closed-loop demand, service
// is near-perfectly even (Jain index ~ 1).
TEST(CaoSinghal, ServiceIsFairUnderSymmetricDemand) {
  ExperimentConfig cfg = heavy_cfg(Algo::kCaoSinghal, 25, 44);
  cfg.measure = 2'000'000;
  ExperimentResult r = run_checked(cfg);
  EXPECT_GT(r.summary.fairness_jain, 0.97);
}

// Hotspot workload: one site generating 10x demand must not starve the
// others, and vice versa.
TEST(CaoSinghal, HotspotSiteDoesNotStarveOthers) {
  ExperimentConfig cfg = light_cfg(Algo::kCaoSinghal, 16, 45);
  cfg.workload.arrival_rate = 1.0 / (60.0 * 1000.0);
  cfg.workload.site_weights.assign(16, 1.0);
  cfg.workload.site_weights[0] = 10.0;
  cfg.measure = 4'000'000;
  ExperimentResult r = run_checked(cfg);
  EXPECT_GT(r.summary.completed, 0u);
}

// Sites with zero demand are pure arbiters; the protocol must be fine with
// requesters never being quorum peers of each other via those sites.
TEST(CaoSinghal, PureArbiterSitesNeverRequesting) {
  ExperimentConfig cfg = light_cfg(Algo::kCaoSinghal, 9, 46);
  cfg.workload.arrival_rate = 1.0 / (20.0 * 1000.0);
  cfg.workload.site_weights = {1, 0, 1, 0, 1, 0, 1, 0, 1};
  cfg.measure = 2'000'000;
  ExperimentResult r = run_checked(cfg);
  EXPECT_GT(r.summary.completed, 0u);
}

// Exact light-load cost law per construction: 3 messages per quorum member
// other than self (self-permissions are local, §5's (K-1) convention).
// Constructions whose quorums may not contain the requester (fpp, tree)
// pay for every member.
TEST(CaoSinghal, LightLoadCostLawAcrossConstructions) {
  struct Case {
    const char* kind;
    int n;
  };
  for (const Case c : {Case{"grid", 25}, Case{"fpp", 13}, Case{"tree", 15},
                       Case{"majority", 9}, Case{"hqc", 9}}) {
    // One site, one request, zero contention: count exactly.
    sim::Simulator sim;
    net::Network net(sim, c.n, std::make_unique<net::ConstantDelay>(1000), 1);
    auto quorums = quorum::make_quorum_system(c.kind, c.n);
    std::vector<std::unique_ptr<core::CaoSinghalSite>> sites;
    for (SiteId i = 0; i < c.n; ++i) {
      sites.push_back(
          std::make_unique<core::CaoSinghalSite>(i, net, *quorums));
      net.attach(i, sites.back().get());
    }
    const SiteId requester = static_cast<SiteId>(c.n / 2);
    sites[static_cast<size_t>(requester)]->request_cs(kLock0);
    sim.run();
    ASSERT_TRUE(sites[static_cast<size_t>(requester)]->in_cs()) << c.kind;
    sites[static_cast<size_t>(requester)]->release_cs(kLock0);
    sim.run();
    const auto q = quorums->quorum_for(requester);
    const size_t remote =
        q.size() - (std::binary_search(q.begin(), q.end(), requester) ? 1 : 0);
    EXPECT_EQ(net.stats().wire_messages, 3 * remote) << c.kind;
  }
}

}  // namespace
}  // namespace dqme
