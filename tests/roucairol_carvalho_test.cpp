// Carvalho-Roucairol dynamic authorizations: 0..2(N-1) messages per CS,
// the pairwise-token invariant, and the §1 survey numbers (avg ~N-1 light,
// 2(N-1) heavy, delay T).
#include <gtest/gtest.h>

#include "net/network.h"
#include "mutex/roucairol_carvalho.h"
#include "test_util.h"

namespace dqme {
namespace {

struct RcRig {
  explicit RcRig(int n, Time delay = 1000)
      : net(sim, n, std::make_unique<net::ConstantDelay>(delay), 3) {
    for (SiteId i = 0; i < n; ++i) {
      sites.push_back(
          std::make_unique<mutex::RoucairolCarvalhoSite>(i, net));
      net.attach(i, sites.back().get());
      sites.back()->on_enter = [this](SiteId id, LockId) {
        entries.push_back(id);
      };
    }
  }
  mutex::RoucairolCarvalhoSite& site(SiteId i) {
    return *sites[static_cast<size_t>(i)];
  }
  // One full CS for `who`, returning the wire messages it cost.
  uint64_t one_cs(SiteId who) {
    const uint64_t before = net.stats().wire_messages;
    site(who).request_cs(kLock0);
    sim.run();
    EXPECT_TRUE(site(who).in_cs());
    site(who).release_cs(kLock0);
    sim.run();
    return net.stats().wire_messages - before;
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<mutex::RoucairolCarvalhoSite>> sites;
  std::vector<SiteId> entries;
};

TEST(RoucairolCarvalho, SiteZeroStartsFullyAuthorized) {
  RcRig rig(6);
  // Initialization gives the smaller id each pairwise token.
  EXPECT_EQ(rig.one_cs(0), 0u);  // zero messages!
}

TEST(RoucairolCarvalho, RepeatRequestsBySameSiteAreFree) {
  RcRig rig(6);
  EXPECT_EQ(rig.one_cs(3), 2u * 3u);  // first time: collect from 0,1,2
  EXPECT_EQ(rig.one_cs(3), 0u);       // retained authorizations
  EXPECT_EQ(rig.one_cs(3), 0u);
}

TEST(RoucairolCarvalho, WorstCaseIs2NMinus1) {
  RcRig rig(6);
  EXPECT_EQ(rig.one_cs(5), 2u * 5u);  // site 5 starts with nothing
}

TEST(RoucairolCarvalho, AlternatingRequestersPayPerHandover) {
  RcRig rig(4);
  rig.one_cs(0);  // free: initialization gave 0 every token
  // 1 holds {2,3} from initialization and only needs 0's token back.
  EXPECT_EQ(rig.one_cs(1), 2u * 1u);
  // 0 lost exactly one token (to 1); ping-pong costs 2 messages per swap.
  EXPECT_EQ(rig.one_cs(0), 2u * 1u);
  EXPECT_EQ(rig.one_cs(1), 2u * 1u);
  // A third party that used nothing yet: needs 0's and 1's tokens only.
  EXPECT_EQ(rig.one_cs(2), 2u * 2u);
}

TEST(RoucairolCarvalho, PairwiseTokenInvariantHoldsAtQuiescence) {
  RcRig rig(5);
  for (SiteId who : {4, 2, 0, 3, 2, 1}) rig.one_cs(who);
  for (SiteId a = 0; a < 5; ++a)
    for (SiteId b = a + 1; b < 5; ++b)
      EXPECT_NE(rig.site(a).holds_authorization(b),
                rig.site(b).holds_authorization(a))
          << "pair (" << a << "," << b << ")";
}

TEST(RoucairolCarvalho, ConcurrentConflictResolvedByPriority) {
  RcRig rig(3);
  rig.one_cs(2);  // move some tokens to site 2
  rig.site(1).request_cs(kLock0);
  rig.site(2).request_cs(kLock0);  // same tick: (1,1) beats (1,2)... both seq 2+
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);  // the first from one_cs(2), plus one
  const SiteId first = rig.entries.back();
  rig.site(first).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 3u);
  EXPECT_NE(rig.entries[2], first);
  rig.site(rig.entries[2]).release_cs(kLock0);
  rig.sim.run();
}

TEST(RoucairolCarvalho, MatchesSurveyNumbersUnderLoad) {
  // Heavy load: ~2(N-1) per CS (every CS hands every token over).
  auto heavy = testing::run_checked(
      testing::heavy_cfg(mutex::Algo::kRoucairolCarvalho, 9, 61));
  EXPECT_NEAR(heavy.summary.wire_msgs_per_cs, 2.0 * 8, 1.5);
  EXPECT_NEAR(heavy.sync_delay_in_t, 1.0, 0.15);  // delay T

  // Light load with uniform random requesters: strictly cheaper than
  // Ricart-Agrawala's fixed 2(N-1) — the intro's "N-1 on average" regime.
  auto light = testing::run_checked(
      testing::light_cfg(mutex::Algo::kRoucairolCarvalho, 9, 61));
  EXPECT_LT(light.summary.wire_msgs_per_cs, 2.0 * 8 - 0.5);
  EXPECT_GT(light.summary.wire_msgs_per_cs, 0.0);
}

TEST(RoucairolCarvalho, SafeAndLiveAcrossSeeds) {
  for (uint64_t seed : {71ull, 72ull, 73ull, 74ull}) {
    auto cfg = testing::heavy_cfg(mutex::Algo::kRoucairolCarvalho, 7, seed);
    cfg.delay_kind = harness::ExperimentConfig::DelayKind::kUniform;
    cfg.workload.exponential_cs = true;
    testing::run_checked(cfg);
  }
}

}  // namespace
}  // namespace dqme
