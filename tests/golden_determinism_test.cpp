// Cross-refactor determinism goldens.
//
// sweep_test proves results are byte-identical across --jobs; this suite
// pins them across *refactors*: a fixed-seed run's full registry JSON
// (protocol counters, engine counters, histograms) must match the
// checked-in snapshot byte for byte. Any change to message construction,
// send ordering, container iteration order, or RNG consumption shows up
// here before it can silently shift every paper-reproduction number.
//
// Regenerate intentionally with:
//   DQME_REGEN_GOLDEN=1 ./build/tests/golden_determinism_test
// and eyeball the diff — a golden change is a behavior change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/experiment.h"

namespace dqme::harness {
namespace {

ExperimentConfig golden_config(mutex::Algo algo) {
  ExperimentConfig cfg;
  cfg.algo = algo;
  cfg.n = 9;
  cfg.quorum = "grid";
  cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
  cfg.mean_delay = 1000;
  cfg.workload.mode = Workload::Config::Mode::kClosed;
  cfg.workload.cs_duration = 100;
  cfg.warmup = 20'000;
  cfg.measure = 200'000;
  cfg.seed = 7;
  return cfg;
}

std::string registry_json(const ExperimentConfig& cfg) {
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_TRUE(r.drained_clean);
  std::ostringstream os;
  r.registry.write_json(os);
  os << "\n";
  return os.str();
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path =
      std::string(DQME_SOURCE_DIR) + "/tests/golden/registry_" + name +
      ".json";
  if (std::getenv("DQME_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with DQME_REGEN_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(actual, want.str())
      << "fixed-seed registry JSON drifted from " << path
      << "; a refactor changed protocol behavior (or you intended this — "
         "then regenerate with DQME_REGEN_GOLDEN=1 and justify the diff)";
}

TEST(GoldenDeterminism, CaoSinghal) {
  check_golden("cao_singhal", registry_json(golden_config(
                                  mutex::Algo::kCaoSinghal)));
}

TEST(GoldenDeterminism, Maekawa) {
  check_golden("maekawa",
               registry_json(golden_config(mutex::Algo::kMaekawa)));
}

TEST(GoldenDeterminism, SuzukiKasami) {
  check_golden("suzuki_kasami",
               registry_json(golden_config(mutex::Algo::kSuzukiKasami)));
}

// The §6 path: a mid-run crash forces quorum re-formation, exercising the
// recovery scrubbing in the arbiter queues and the requesters' vote state
// — exactly the code the flat-container refactor must not perturb.
TEST(GoldenDeterminism, CaoSinghalFaultTolerant) {
  ExperimentConfig cfg = golden_config(mutex::Algo::kCaoSinghal);
  cfg.quorum = "majority";
  cfg.options.fault_tolerant = true;
  cfg.crashes.push_back({60'000, 4});
  check_golden("cao_singhal_ft", registry_json(cfg));
}

}  // namespace
}  // namespace dqme::harness
