// Randomized stress sweeps: many seeds x randomized delay models x loads,
// asserting the empirical Theorems 1-3 on every run, plus invariance
// properties (piggybacking must not change protocol decisions under
// constant delays) and a larger-N scalability check.
#include <gtest/gtest.h>

#include "test_util.h"

namespace dqme {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using mutex::Algo;

// Short, aggressive runs: small N (max quorum overlap), tiny CS, jittered
// delays — the regime where yield/transfer races are densest.
class StressSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressSeeds, TinyClusterMaxContention) {
  const uint64_t seed = GetParam();
  ExperimentConfig cfg;
  cfg.algo = Algo::kCaoSinghal;
  cfg.n = static_cast<int>(3 + seed % 5);  // 3..7 sites
  cfg.quorum = "grid";
  cfg.mean_delay = 200;
  cfg.delay_kind = (seed % 2) ? ExperimentConfig::DelayKind::kUniform
                              : ExperimentConfig::DelayKind::kExponential;
  cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
  cfg.workload.cs_duration = static_cast<Time>(1 + seed % 40);
  cfg.workload.exponential_cs = (seed % 3) == 0;
  cfg.warmup = 20'000;
  cfg.measure = 150'000;
  cfg.seed = seed;
  testing::run_checked(cfg);
}

TEST_P(StressSeeds, MajorityQuorumMaxOverlap) {
  const uint64_t seed = GetParam();
  // Majority quorums: every pair overlaps in >= 1 site; K-1 yields fly.
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal,
                                            5 + static_cast<int>(seed % 4),
                                            seed, "majority");
  cfg.mean_delay = 300;
  cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
  cfg.workload.cs_duration = 10;
  cfg.warmup = 20'000;
  cfg.measure = 200'000;
  testing::run_checked(cfg);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, StressSeeds,
                         ::testing::Range<uint64_t>(500, 560));

// With constant delays, splitting a bundle into singletons delivers the
// same messages at the same instants in the same order — so the protocol's
// observable behaviour must be identical. Catches accidental dependence on
// bundle boundaries.
TEST(StressInvariance, PiggybackDoesNotChangeOutcomesUnderConstantDelay) {
  auto run = [](bool piggyback) {
    ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, 16, 77);
    cfg.options.piggyback = piggyback;
    return harness::run_experiment(cfg);
  };
  const ExperimentResult a = run(true);
  const ExperimentResult b = run(false);
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_EQ(a.summary.sync_delay_contended, b.summary.sync_delay_contended);
  EXPECT_EQ(a.summary.ctrl_msgs_per_cs, b.summary.ctrl_msgs_per_cs);
  EXPECT_GT(b.summary.wire_msgs_per_cs, a.summary.wire_msgs_per_cs);
}

// A bigger cluster on exact sqrt(N) quorums (projective plane of order 13).
TEST(StressScale, FppN183HeavyLoad) {
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, 183, 9,
                                            "fpp");
  cfg.measure = 300'000;
  ExperimentResult r = testing::run_checked(cfg);
  EXPECT_GT(r.summary.completed, 50u);
  EXPECT_DOUBLE_EQ(r.mean_quorum_size, 14.0);  // q+1, q=13
  // O(K): ~14 arbiters' worth of traffic, nowhere near O(N)=183.
  EXPECT_LT(r.summary.wire_msgs_per_cs, 6.0 * 13 + 1);
}

TEST(StressScale, Grid100MixedLoad) {
  ExperimentConfig cfg = testing::light_cfg(Algo::kCaoSinghal, 100, 10);
  cfg.workload.arrival_rate = 1.0 / (300.0 * 1000.0);
  cfg.measure = 2'000'000;
  ExperimentResult r = testing::run_checked(cfg);
  EXPECT_GT(r.summary.completed, 100u);
}

// Sub-saturation open-loop churn with local queueing: demands arrive while
// their site is still busy, exercising the back-to-back re-request path.
TEST(StressPattern, BusySitesWithLocalQueues) {
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, 9, 31);
  cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
  // Aggregate 9/20000 = ~50% of the 1/(T+E) capacity: heavy but stable.
  cfg.workload.arrival_rate = 1.0 / 20'000.0;
  cfg.measure = 1'000'000;
  testing::run_checked(cfg);
}

// Think-time sweep: between saturation and light load.
class ThinkTimeSweep : public ::testing::TestWithParam<Time> {};

TEST_P(ThinkTimeSweep, SafeAndLiveAcrossLoadSpectrum) {
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, 25, 13);
  cfg.workload.think_time = GetParam();
  cfg.measure = 600'000;
  ExperimentResult r = testing::run_checked(cfg);
  EXPECT_GT(r.summary.completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(ThinkTimes, ThinkTimeSweep,
                         ::testing::Values(0, 100, 1000, 10'000, 100'000));

// Every baseline must also hold up under jittered delays across seeds —
// the integration sweep uses constant delays; this one does not.
struct JitterParam {
  Algo algo;
  uint64_t seed;
};

std::string jitter_name(const ::testing::TestParamInfo<JitterParam>& info) {
  std::string s(mutex::to_string(info.param.algo));
  for (char& c : s)
    if (c == '-') c = '_';
  return s + "_s" + std::to_string(info.param.seed);
}

class BaselineJitterSweep : public ::testing::TestWithParam<JitterParam> {};

TEST_P(BaselineJitterSweep, SafeAndLiveUnderJitter) {
  const JitterParam p = GetParam();
  ExperimentConfig cfg = testing::heavy_cfg(p.algo, 9, p.seed);
  cfg.delay_kind = (p.seed % 2) ? ExperimentConfig::DelayKind::kUniform
                                : ExperimentConfig::DelayKind::kExponential;
  cfg.workload.exponential_cs = true;
  cfg.measure = 400'000;
  testing::run_checked(cfg);
}

std::vector<JitterParam> jitter_params() {
  std::vector<JitterParam> out;
  for (Algo a : mutex::all_algos())
    for (uint64_t seed : {700ull, 701ull, 702ull, 703ull})
      out.push_back({a, seed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Baselines, BaselineJitterSweep,
                         ::testing::ValuesIn(jitter_params()), jitter_name);

// Soak: a long saturated run (20,000 T of simulated time, ~15k CS
// executions). Catches slow drift — queue growth, counter leaks, fairness
// erosion — that short windows cannot.
TEST(StressSoak, LongSaturatedRunStaysHealthy) {
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, 25, 99);
  cfg.measure = 20'000'000;
  ExperimentResult r = testing::run_checked(cfg);
  EXPECT_GT(r.summary.completed, 10'000u);
  EXPECT_GT(r.summary.fairness_jain, 0.99);
  EXPECT_LT(r.sync_delay_in_t, 1.35);
  // Message cost stays flat: no per-CS state accumulates.
  EXPECT_LT(r.summary.wire_msgs_per_cs, 6.0 * (r.mean_quorum_size - 1) + 1);
}

}  // namespace
}  // namespace dqme
