// rt-vs-sim equivalence: the simulator is the oracle for the real-threads
// backend (DESIGN.md §9). Each case runs a seeded workload on the
// discrete-event simulator, records the global step trace and per-site
// decision logs, replays the trace on rt::Runtime (one real thread per
// site, messages through the actual SPSC rings), and requires the two
// decision-log sets to be byte-identical: same deliveries in the same
// per-site order, same span edges — i.e. the concurrent transport carried
// the exact same protocol execution.
//
// Covers all three benched algorithm families (quorum-RA hybrid, pure
// quorum, token broadcast) plus the §6 crash/recovery path of
// fault-tolerant Cao-Singhal, and a free-run smoke under the merged
// invariant-checker feed (the mode rt_core measures).
#include <gtest/gtest.h>

#include "rt/driver.h"
#include "rt/oracle.h"

namespace dqme::rt {
namespace {

void expect_equivalent(const EquivConfig& cfg) {
  OracleResult oracle = run_sim_oracle(cfg);
  ASSERT_TRUE(oracle.ok) << oracle.error;
  ASSERT_GT(oracle.cs_entries, 0u);
  ASSERT_FALSE(oracle.steps.empty());
  const SiteLogs rt_logs = run_rt_replay(cfg, oracle.steps);
  const std::string diff = diff_decision_logs(oracle.logs, rt_logs);
  EXPECT_TRUE(diff.empty()) << diff;
}

TEST(RtEquivalence, CaoSinghalGrid9) {
  EquivConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 9;
  cfg.quorum = "grid";
  cfg.requests_per_site = 10;
  cfg.seed = 7;
  expect_equivalent(cfg);
}

TEST(RtEquivalence, CaoSinghalMultiLock) {
  EquivConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 9;
  cfg.quorum = "grid";
  cfg.num_locks = 4;
  cfg.requests_per_site = 8;
  cfg.seed = 11;
  expect_equivalent(cfg);
}

TEST(RtEquivalence, MaekawaGrid9) {
  EquivConfig cfg;
  cfg.algo = mutex::Algo::kMaekawa;
  cfg.n = 9;
  cfg.quorum = "grid";
  cfg.requests_per_site = 10;
  cfg.seed = 21;
  expect_equivalent(cfg);
}

TEST(RtEquivalence, SuzukiKasami5) {
  EquivConfig cfg;
  cfg.algo = mutex::Algo::kSuzukiKasami;
  cfg.n = 5;
  cfg.requests_per_site = 12;
  cfg.seed = 33;
  expect_equivalent(cfg);
}

// Several seeds across algorithms: the jittered delay model reorders
// cross-channel arrivals differently each seed, so every seed is a fresh
// interleaving the replay must carry faithfully.
TEST(RtEquivalence, SeedSweep) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    EquivConfig cfg;
    cfg.algo = seed % 2 == 0 ? mutex::Algo::kCaoSinghal : mutex::Algo::kMaekawa;
    cfg.n = 9;
    cfg.quorum = "grid";
    cfg.requests_per_site = 6;
    cfg.seed = seed;
    expect_equivalent(cfg);
  }
}

// §6 crash/recovery: fault-tolerant Cao-Singhal on the tree coterie (which
// can re-form quorums around a dead node). The victim fails mid-run; every
// live site receives a jittered failure notice, triggering the recovery
// protocol — all of it recorded in the step trace and replayed on real
// threads, including the delivery drops at the dead site.
TEST(RtEquivalence, CaoSinghalFaultTolerantCrash) {
  EquivConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 15;
  cfg.quorum = "tree";
  cfg.fault_tolerant = true;
  cfg.requests_per_site = 8;
  cfg.seed = 5;
  cfg.crash_victim = 3;
  cfg.crash_at = 20'000;
  expect_equivalent(cfg);
}

// Free-run smoke: the contended closed-loop mode rt_core measures, with
// the real-time SafetyProbe and the merged invariant-checker replay. No
// oracle here (free-run interleavings are the hardware's own); safety is
// what the checker asserts.
TEST(RtFreeRun, CheckedSmoke) {
  FreeRunConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 4;
  cfg.quorum = "majority";
  cfg.num_locks = 8;
  cfg.target_entries = 500;
  cfg.max_seconds = 20.0;
  cfg.check = true;
  FreeRunResult res = run_free(cfg);
  ASSERT_TRUE(res.ok) << res.error
                      << (res.reports.empty() ? "" : "\n" + res.reports[0]);
  EXPECT_GE(res.cs_entries, 500u);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_EQ(res.probe_violations, 0u);
  EXPECT_EQ(res.stats.delivered_messages > 0, true);
}

TEST(RtFreeRun, TokenAlgoSmoke) {
  FreeRunConfig cfg;
  cfg.algo = mutex::Algo::kSuzukiKasami;
  cfg.n = 4;
  cfg.num_locks = 8;
  cfg.target_entries = 500;
  cfg.max_seconds = 20.0;
  cfg.check = true;
  FreeRunResult res = run_free(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.violations, 0u);
  EXPECT_EQ(res.probe_violations, 0u);
}

}  // namespace
}  // namespace dqme::rt
