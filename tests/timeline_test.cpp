// Tests for the windowed telemetry layer (obs/timeline.h) and the
// per-lock hot-set tracker (obs/lock_stats.h): window indexing, the
// Registry-style deterministic merge contract, JSON shape, and the
// SpaceSaving exact->sketch transition with its count bounds.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/lock_stats.h"
#include "obs/timeline.h"

namespace dqme::obs {
namespace {

std::string json_of(const Timeline& tl) {
  std::ostringstream os;
  tl.write_json(os);
  return os.str();
}

std::string json_of(const LockStats& ls) {
  std::ostringstream os;
  ls.write_json(os);
  return os.str();
}

TEST(Timeline, DisabledByDefault) {
  Timeline tl;
  EXPECT_FALSE(tl.enabled());
  EXPECT_TRUE(tl.empty());
  EXPECT_THROW(tl.counter("x"), CheckError);
  EXPECT_THROW(tl.gauge("x"), CheckError);
  EXPECT_THROW(tl.sketch("x", 1, 8), CheckError);
  EXPECT_THROW(tl.mark("x", 0), CheckError);
  EXPECT_THROW(Timeline(0, 0), CheckError);
  EXPECT_THROW(Timeline(0, -5), CheckError);
}

TEST(Timeline, CounterWindowIndexing) {
  Timeline tl(1000, 100);
  Timeline::Counter& c = tl.counter("cs.completed");
  c.record(1000);       // at == origin: window 0 (half-open lower edge)
  c.record(1099);       // window 0
  c.record(1100);       // window 1
  c.record(1350, 5);    // window 3, weighted
  c.record(500);        // pre-origin clamps to window 0
  ASSERT_EQ(c.windows().size(), 4u);
  EXPECT_EQ(c.windows()[0], 3u);
  EXPECT_EQ(c.windows()[1], 1u);
  EXPECT_EQ(c.windows()[2], 0u);
  EXPECT_EQ(c.windows()[3], 5u);
  EXPECT_EQ(tl.num_windows(), 4u);
  // find-or-create returns the same series; find_* sees it without creating.
  EXPECT_EQ(&tl.counter("cs.completed"), &c);
  EXPECT_EQ(tl.find_counter("cs.completed"), &c);
  EXPECT_EQ(tl.find_counter("absent"), nullptr);
}

TEST(Timeline, GaugeLastWriteWinsWithinRun) {
  Timeline tl(0, 10);
  Timeline::Gauge& g = tl.gauge("mpf");
  g.record(5, 1.5);
  g.record(9, 2.5);  // same window: overwrites
  g.record(25, 0.5);
  ASSERT_EQ(g.windows().size(), 3u);
  EXPECT_DOUBLE_EQ(g.windows()[0], 2.5);
  EXPECT_DOUBLE_EQ(g.windows()[1], 0.0);  // untouched window stays 0
  EXPECT_DOUBLE_EQ(g.windows()[2], 0.5);
}

TEST(Timeline, SketchPerWindowPercentilesAndSpecCheck) {
  Timeline tl(0, 100);
  Timeline::Sketch& s = tl.sketch("waiting", 1, 16);
  for (int i = 0; i < 100; ++i) s.record(50, 10.0);
  s.record(150, 1000.0);
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.windows()[0].count(), 100u);
  EXPECT_EQ(s.windows()[1].count(), 1u);
  EXPECT_LT(s.windows()[0].p99(), s.windows()[1].p50());
  // Same spec resolves to the same series; another spec is a config error.
  EXPECT_EQ(&tl.sketch("waiting", 1, 16), &s);
  EXPECT_THROW(tl.sketch("waiting", 2, 16), CheckError);
  EXPECT_THROW(tl.sketch("waiting", 1, 8), CheckError);
}

TEST(Timeline, MergeFoldsSeriesAndAdoptsIntoDisabled) {
  Timeline a(0, 100);
  a.counter("c").record(50, 2);
  a.gauge("g").record(50, 1.0);
  a.sketch("s", 1, 8).record(150, 4.0);
  a.mark("crash site=0", 120);

  Timeline b(0, 100);
  b.counter("c").record(250, 3);
  b.gauge("g").record(70, 7.0);
  b.sketch("s", 1, 8).record(160, 9.0);
  b.mark("crash site=0", 120);  // duplicate marker: unioned once
  b.mark("recovery", 260);

  Timeline m;  // disabled: first merge adopts the spec
  m.merge(a);
  m.merge(b);
  EXPECT_TRUE(m.enabled());
  ASSERT_EQ(m.find_counter("c")->windows().size(), 3u);
  EXPECT_EQ(m.find_counter("c")->windows()[0], 2u);
  EXPECT_EQ(m.find_counter("c")->windows()[2], 3u);
  EXPECT_DOUBLE_EQ(m.find_gauge("g")->windows()[0], 7.0);  // window-max
  EXPECT_EQ(m.find_sketch("s")->windows()[1].count(), 2u);
  ASSERT_EQ(m.markers().size(), 2u);
  EXPECT_EQ(m.markers()[0].label, "crash site=0");
  EXPECT_EQ(m.markers()[1].label, "recovery");

  // Merge is order-independent in content: the serialized JSON of b⊕a
  // equals a⊕b (the determinism the --jobs sweep fold relies on).
  Timeline m2;
  m2.merge(b);
  m2.merge(a);
  EXPECT_EQ(json_of(m), json_of(m2));

  // Mismatched specs refuse to fold.
  Timeline other(0, 50);
  other.counter("c").record(10);
  EXPECT_THROW(m.merge(other), CheckError);
  // Merging a disabled timeline is a no-op.
  const std::string before = json_of(m);
  m.merge(Timeline());
  EXPECT_EQ(json_of(m), before);
}

TEST(Timeline, WriteJsonShapePadsEverySeries) {
  Timeline tl(0, 100);
  tl.counter("c").record(10);
  tl.sketch("s", 1, 8).record(250, 2.0);  // 3 windows; counter has 1
  tl.gauge("g").record(50, 1.25);
  tl.mark("note", 40);
  const std::string js = json_of(tl);
  EXPECT_NE(js.find("\"origin\": 0, \"window\": 100, \"windows\": 3"),
            std::string::npos);
  // The counter array is padded to the common window count.
  EXPECT_NE(js.find("\"c\": [1, 0, 0]"), std::string::npos);
  EXPECT_NE(js.find("\"g\": [1.25, 0, 0]"), std::string::npos);
  EXPECT_NE(js.find("\"p999\""), std::string::npos);
  EXPECT_NE(js.find("{\"at\": 40, \"label\": \"note\"}"), std::string::npos);
}

// ------------------------------------------------------------- LockStats

TEST(LockStats, ExactWhileUnderCapacity) {
  LockStats ls(4);
  EXPECT_TRUE(ls.enabled());
  ls.record(2, 10.0);
  ls.record(0, 5.0);
  ls.record(2, 20.0);
  EXPECT_TRUE(ls.exact());
  EXPECT_EQ(ls.total(), 3u);
  EXPECT_EQ(ls.tracked(), 2u);
  const auto top = ls.top(0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].lock, 2);
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[0].overcount, 0u);
  EXPECT_DOUBLE_EQ(top[0].wait_sum, 30.0);
  EXPECT_EQ(top[1].lock, 0);
}

TEST(LockStats, DisabledRecordsNothing) {
  LockStats ls;  // capacity 0
  EXPECT_FALSE(ls.enabled());
  ls.record(1, 1.0);
  EXPECT_EQ(ls.total(), 0u);
  EXPECT_EQ(ls.tracked(), 0u);
}

TEST(LockStats, SpaceSavingEvictionKeepsHeavyHitterBounds) {
  LockStats ls(2);
  // Lock 7 is genuinely hot; locks 1..4 are one-off noise that churns the
  // second slot.
  for (int i = 0; i < 10; ++i) ls.record(7, 1.0);
  ls.record(1, 1.0);
  ls.record(2, 1.0);
  ls.record(3, 1.0);
  ls.record(4, 1.0);
  EXPECT_FALSE(ls.exact());
  EXPECT_GT(ls.evictions(), 0u);
  EXPECT_EQ(ls.total(), 14u);
  const auto top = ls.top(1);
  ASSERT_EQ(top.size(), 1u);
  // The heavy hitter survives with an exact count (never evicted).
  EXPECT_EQ(top[0].lock, 7);
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[0].overcount, 0u);
  // Every tracked entry keeps count - overcount <= true count <= count.
  for (const auto& e : ls.top(0)) EXPECT_LE(e.overcount, e.count);
}

TEST(LockStats, MergeAdoptsSumsAndReEvicts) {
  LockStats a(4);
  a.record(0, 1.0);
  a.record(0, 1.0);
  a.record(1, 1.0);
  LockStats b(4);
  b.record(0, 2.0);
  b.record(2, 1.0);
  b.record(3, 1.0);
  b.record(4, 1.0);

  LockStats m;  // disabled: adopts
  m.merge(a);
  m.merge(b);
  EXPECT_EQ(m.total(), 7u);
  EXPECT_EQ(m.capacity(), 4u);
  // Union has 5 locks > capacity 4: the merge must re-evict and say so.
  EXPECT_EQ(m.tracked(), 4u);
  EXPECT_GT(m.evictions(), 0u);
  const auto top = m.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].lock, 0);
  EXPECT_EQ(top[0].count, 3u);
  EXPECT_DOUBLE_EQ(top[0].wait_sum, 4.0);

  // Deterministic content for either fold order.
  LockStats m2;
  m2.merge(b);
  m2.merge(a);
  EXPECT_EQ(json_of(m), json_of(m2));
}

TEST(LockStats, WriteJsonShape) {
  LockStats ls(8);
  ls.record(3, 12.0);
  const std::string js = json_of(ls);
  EXPECT_NE(js.find("\"capacity\": 8"), std::string::npos);
  EXPECT_NE(js.find("\"total\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"lock\": 3"), std::string::npos);
  EXPECT_NE(js.find("\"wait_sum\": 12"), std::string::npos);
}

}  // namespace
}  // namespace dqme::obs
