// Property tests on the coterie invariants (paper §2), parameterized over
// construction x N, plus the fault-tolerance safety property of §6: any two
// quorums a construction can hand out — under any two failure views — must
// intersect, or two sites with different views could both assemble
// non-overlapping permission sets.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "quorum/coterie.h"
#include "quorum/factory.h"

namespace dqme::quorum {
namespace {

struct QSParam {
  const char* kind;
  int n;
  // Minimality (paper §2: useful, not necessary) holds for these
  // constructions except where a partial grid row yields nested crosses.
  bool minimal = true;
};

std::string qs_name(const ::testing::TestParamInfo<QSParam>& info) {
  std::string s = info.param.kind;
  for (char& c : s)
    if (c == ':') c = '_';
  return s + "_n" + std::to_string(info.param.n);
}

class QuorumSystemProperty : public ::testing::TestWithParam<QSParam> {
 protected:
  std::unique_ptr<QuorumSystem> qs_ =
      make_quorum_system(GetParam().kind, GetParam().n);
};

TEST_P(QuorumSystemProperty, BaseCoterieSatisfiesIntersection) {
  auto r = validate_coterie(qs_->base_coterie(), qs_->num_sites());
  EXPECT_TRUE(r.ok()) << r.detail;
}

TEST_P(QuorumSystemProperty, BaseCoterieSatisfiesMinimality) {
  if (!GetParam().minimal)
    GTEST_SKIP() << "partial grid rows nest; minimality is optional (§2)";
  auto r = validate_coterie(qs_->base_coterie(), qs_->num_sites());
  EXPECT_TRUE(r.minimality) << r.detail;
}

TEST_P(QuorumSystemProperty, QuorumsAreWellFormed) {
  for (SiteId i = 0; i < qs_->num_sites(); ++i)
    EXPECT_TRUE(is_valid_quorum(qs_->quorum_for(i), qs_->num_sites()))
        << "site " << i;
}

TEST_P(QuorumSystemProperty, AdaptiveQuorumsUseOnlyLiveSites) {
  Rng rng(1000 + static_cast<uint64_t>(qs_->num_sites()));
  const int n = qs_->num_sites();
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> alive(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s)
      alive[static_cast<size_t>(s)] = rng.bernoulli(0.8);
    for (SiteId i = 0; i < n; i += std::max(1, n / 5)) {
      auto q = qs_->quorum_for_alive(i, alive);
      if (!q) continue;
      EXPECT_TRUE(is_valid_quorum(*q, n));
      for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
    }
  }
}

TEST_P(QuorumSystemProperty, AvailableIffSomeQuorumFormable) {
  Rng rng(2000 + static_cast<uint64_t>(qs_->num_sites()));
  const int n = qs_->num_sites();
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<bool> alive(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s)
      alive[static_cast<size_t>(s)] = rng.bernoulli(0.7);
    bool any = false;
    for (SiteId i = 0; i < n && !any; ++i)
      any = qs_->quorum_for_alive(i, alive).has_value();
    EXPECT_EQ(qs_->available(alive), any) << "trial " << trial;
  }
}

// The §6 safety property: quorums formed under *different* failure views
// still intersect pairwise. Sampled over random views including the
// all-alive one.
TEST_P(QuorumSystemProperty, CrossViewIntersection) {
  Rng rng(3000 + static_cast<uint64_t>(qs_->num_sites()));
  const int n = qs_->num_sites();
  std::vector<Quorum> formed;
  for (SiteId i = 0; i < n; ++i) formed.push_back(qs_->quorum_for(i));
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> alive(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s)
      alive[static_cast<size_t>(s)] = rng.bernoulli(0.75);
    for (SiteId i = 0; i < n; i += std::max(1, n / 4))
      if (auto q = qs_->quorum_for_alive(i, alive)) formed.push_back(*q);
  }
  for (size_t a = 0; a < formed.size(); ++a)
    for (size_t b = a + 1; b < formed.size(); ++b)
      ASSERT_TRUE(intersects(formed[a], formed[b]))
          << "quorum " << a << " vs " << b;
}

// Availability is monotone in the set of live sites: reviving a site never
// destroys an existing quorum opportunity.
TEST_P(QuorumSystemProperty, AvailabilityIsMonotone) {
  Rng rng(4000 + static_cast<uint64_t>(qs_->num_sites()));
  const int n = qs_->num_sites();
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> alive(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s)
      alive[static_cast<size_t>(s)] = rng.bernoulli(0.6);
    if (!qs_->available(alive)) continue;
    // Revive one dead site; must stay available.
    auto more = alive;
    for (int s = 0; s < n; ++s)
      if (!more[static_cast<size_t>(s)]) {
        more[static_cast<size_t>(s)] = true;
        break;
      }
    EXPECT_TRUE(qs_->available(more));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Constructions, QuorumSystemProperty,
    ::testing::Values(QSParam{"grid", 9}, QSParam{"grid", 25},
                      QSParam{"grid", 23, false}, QSParam{"grid", 49},
                      QSParam{"fpp", 7}, QSParam{"fpp", 13},
                      QSParam{"fpp", 31}, QSParam{"tree", 7},
                      QSParam{"tree", 15}, QSParam{"tree", 31},
                      QSParam{"majority", 9}, QSParam{"majority", 14},
                      QSParam{"hqc", 9}, QSParam{"hqc", 27},
                      QSParam{"gridset:4", 16}, QSParam{"gridset:5", 25, false},
                      QSParam{"rst:4", 16}, QSParam{"rst:5", 25, false},
                      QSParam{"singleton", 9}, QSParam{"all", 9}),
    qs_name);

}  // namespace
}  // namespace dqme::quorum
