// Tests for the schedule-space model checker (src/verify + dqme_explore's
// engine): exhaustive coverage of small configs, the sleep-set reduction's
// soundness and effectiveness, seeded-mutation detection with replayable
// counterexamples, crash-point branching, and frontier suspend/resume.
#include <gtest/gtest.h>

#include <sstream>

#include "net/network.h"
#include "net/trace.h"
#include "verify/explorer.h"

namespace dqme::verify {
namespace {

WorldConfig small_config(mutex::Algo algo = mutex::Algo::kCaoSinghal) {
  WorldConfig cfg;
  cfg.algo = algo;
  cfg.n = 3;
  cfg.quorum = "grid";
  cfg.cs_per_site = 1;
  return cfg;
}

ExploreResult explore(const WorldConfig& world, uint64_t max_schedules = 0,
                      bool por = true) {
  ExplorerConfig cfg;
  cfg.world = world;
  cfg.max_schedules = max_schedules;
  cfg.por = por;
  return Explorer(cfg).run();
}

TEST(Explorer, CaoSinghalSmallSpaceIsCleanAndComplete) {
  const ExploreResult r = explore(small_config());
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_TRUE(r.violations.empty());
  // Measured: 2,850 reduced schedules. The floor guards against the space
  // silently collapsing (a broken scheduler hook explores almost nothing).
  EXPECT_GE(r.schedules, 1000u);
  EXPECT_GT(r.sleep_skips, 0u);
}

TEST(Explorer, MaekawaSmallSpaceIsCleanAndComplete) {
  const ExploreResult r = explore(small_config(mutex::Algo::kMaekawa));
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_GE(r.schedules, 100u);  // measured: 524
}

TEST(Explorer, SleepSetReductionPrunesAtLeastFiveFold) {
  const ExploreResult reduced = explore(small_config());
  ASSERT_TRUE(reduced.complete);
  // Give the naive DFS five times the reduced schedule count as budget; it
  // must still be unfinished (measured: the naive space is >700x larger).
  const ExploreResult naive =
      explore(small_config(), reduced.schedules * 5, /*por=*/false);
  EXPECT_TRUE(naive.budget_exhausted);
  EXPECT_FALSE(naive.complete);
  EXPECT_TRUE(naive.violations.empty());  // reduction must not *add* bugs
}

TEST(Explorer, DeterministicAcrossRuns) {
  const ExploreResult a = explore(small_config(mutex::Algo::kMaekawa));
  const ExploreResult b = explore(small_config(mutex::Algo::kMaekawa));
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.replays, b.replays);
  EXPECT_EQ(a.sleep_skips, b.sleep_skips);
}

// The explorer's demand is lock 0 only, so sizing the lock table larger
// must not change the schedule space: same reduced schedules, same nodes,
// still clean. (Guards the lock-table refactor against perturbing the
// single-lock protocol decisions the model checker certifies.)
TEST(Explorer, MultiLockTableLeavesLock0ScheduleSpaceUnchanged) {
  const ExploreResult base = explore(small_config());
  ASSERT_TRUE(base.complete);
  WorldConfig cfg = small_config();
  cfg.num_locks = 4;
  const ExploreResult multi = explore(cfg);
  EXPECT_TRUE(multi.complete);
  EXPECT_TRUE(multi.violations.empty());
  EXPECT_EQ(multi.schedules, base.schedules);
  EXPECT_EQ(multi.nodes, base.nodes);
  EXPECT_EQ(multi.sleep_skips, base.sleep_skips);
}

TEST(Explorer, CrashBranchingIsCleanAndComplete) {
  WorldConfig cfg = small_config();
  cfg.fault_tolerant = true;
  cfg.crash_sites = {2};
  cfg.max_crashes = 1;
  const ExploreResult r = explore(cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front().reports.front();
  // Crash branching multiplies the space (measured: 76,020 vs 2,850).
  EXPECT_GT(r.schedules, explore(small_config()).schedules);
}

// Each seeded mutation breaks a different invariant; the explorer must find
// it, and the minimized counterexample must replay to the same violation
// category from nothing but the schedule file.
struct MutationCase {
  Mutation mutation;
  const char* category;  // first report's prefix up to ':'
};

class MutationTest : public ::testing::TestWithParam<MutationCase> {};

TEST_P(MutationTest, FoundMinimizedAndReplayable) {
  WorldConfig cfg = small_config();
  cfg.mutation = GetParam().mutation;
  ExplorerConfig ec;
  ec.world = cfg;
  ec.max_schedules = 200'000;
  const ExploreResult r = Explorer(ec).run();
  ASSERT_FALSE(r.violations.empty())
      << to_string(GetParam().mutation) << " never detected";
  const Violation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());
  EXPECT_EQ(violation_category(v.reports), GetParam().category);

  // Round-trip through the schedule-file format, then replay cold.
  std::ostringstream file;
  write_schedule(file, cfg, v.schedule, v.reports);
  std::istringstream in(file.str());
  WorldConfig cfg2;
  std::vector<Action> actions;
  std::string error;
  ASSERT_TRUE(read_schedule(in, cfg2, actions, &error)) << error;
  EXPECT_EQ(cfg2.mutation, cfg.mutation);
  ASSERT_EQ(actions.size(), v.schedule.size());
  const auto world = replay_schedule(cfg2, actions);
  ASSERT_GT(world->violations(), 0u);
  EXPECT_EQ(violation_category(world->reports()), GetParam().category);
}

INSTANTIATE_TEST_SUITE_P(
    AllMutations, MutationTest,
    ::testing::Values(MutationCase{Mutation::kDoubleGrant, "permission"},
                      MutationCase{Mutation::kLostTransfer, "conservation"},
                      MutationCase{Mutation::kFifoInversion, "fifo"}),
    [](const ::testing::TestParamInfo<MutationCase>& info) {
      std::string name(to_string(info.param.mutation));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// On a crash-free space the source relation coincides with the sleep
// relation (only kCrash's dependencies were refined), so the two modes
// must walk the identical reduced tree.
TEST(Explorer, SourceDporEqualsSleepOnCrashFreeSpace) {
  ExplorerConfig sleep_cfg;
  sleep_cfg.world = small_config();
  sleep_cfg.dpor = Dpor::kSleep;
  const ExploreResult sleep_r = Explorer(sleep_cfg).run();
  ExplorerConfig source_cfg;
  source_cfg.world = small_config();
  source_cfg.dpor = Dpor::kSource;
  const ExploreResult source_r = Explorer(source_cfg).run();
  ASSERT_TRUE(sleep_r.complete);
  ASSERT_TRUE(source_r.complete);
  EXPECT_EQ(source_r.schedules, sleep_r.schedules);
  EXPECT_EQ(source_r.nodes, sleep_r.nodes);
  EXPECT_EQ(source_r.sleep_skips, sleep_r.sleep_skips);
}

// With a crash in the action alphabet, refining crash dependence to the
// victim's locality must prune strictly — the crash point slides across
// unrelated deliveries instead of forking the space at every depth —
// while still covering the reduced space completely and cleanly.
// (Measured: 38,009 vs 76,020 schedules on the N=3 one-crash grid.)
TEST(Explorer, SourceDporStrictlyReducesCrashSpace) {
  WorldConfig world = small_config();
  world.fault_tolerant = true;
  world.crash_sites = {2};
  world.max_crashes = 1;
  ExplorerConfig sleep_cfg;
  sleep_cfg.world = world;
  sleep_cfg.dpor = Dpor::kSleep;
  const ExploreResult sleep_r = Explorer(sleep_cfg).run();
  ExplorerConfig source_cfg;
  source_cfg.world = world;
  source_cfg.dpor = Dpor::kSource;
  const ExploreResult source_r = Explorer(source_cfg).run();
  ASSERT_TRUE(sleep_r.complete);
  ASSERT_TRUE(source_r.complete);
  EXPECT_TRUE(sleep_r.violations.empty());
  EXPECT_TRUE(source_r.violations.empty());
  EXPECT_LT(source_r.schedules, sleep_r.schedules);
  EXPECT_LT(source_r.nodes, sleep_r.nodes);
}

// Naimi–Thiaré-style deadlock seeding: with every inquire dropped, the §4
// deadlock-avoidance handshake never runs and the crossed-grant circular
// wait (each arbiter locked by a different requester, no quorum ever
// completing) becomes reachable. Source-set DPOR must find that request
// ordering within budget, every live site must be reported stalled at
// quiescence, and the counterexample must survive the schedule-file
// round trip (the same artifact dqme_sim --replay-schedule consumes).
TEST(Explorer, DeadlockOrderingFoundUnderSourceDporAndReplays) {
  WorldConfig cfg = small_config();
  cfg.mutation = Mutation::kDeadlockOrdering;
  ExplorerConfig ec;
  ec.world = cfg;
  ec.dpor = Dpor::kSource;
  ec.max_schedules = 200'000;
  const ExploreResult r = Explorer(ec).run();
  ASSERT_FALSE(r.violations.empty()) << "deadlock ordering never found";
  const Violation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());
  int stalled = 0;
  for (const std::string& rep : v.reports)
    if (rep.find("stalled request at quiescence") != std::string::npos)
      ++stalled;
  EXPECT_EQ(stalled, cfg.n) << "not a full circular wait";

  std::ostringstream file;
  write_schedule(file, cfg, v.schedule, v.reports);
  std::istringstream in(file.str());
  WorldConfig cfg2;
  std::vector<Action> actions;
  std::string error;
  ASSERT_TRUE(read_schedule(in, cfg2, actions, &error)) << error;
  EXPECT_EQ(cfg2.mutation, Mutation::kDeadlockOrdering);
  const auto world = replay_schedule(cfg2, actions);
  ASSERT_GT(world->violations(), 0u);
  EXPECT_EQ(violation_category(world->reports()),
            violation_category(v.reports));
}

TEST(Explorer, FrontierResumeCoversTheExactSameSpace) {
  const ExploreResult oneshot = explore(small_config());
  ASSERT_TRUE(oneshot.complete);

  // Run the same exploration in budgeted legs, suspending to a frontier
  // after every 400 schedules and resuming from it in a fresh Explorer.
  ExplorerConfig leg;
  leg.world = small_config();
  leg.max_schedules = 400;
  auto explorer = std::make_unique<Explorer>(leg);
  ExploreResult r = explorer->run();
  int legs = 1;
  while (r.budget_exhausted) {
    ASSERT_LT(legs, 100) << "resume is not making progress";
    std::ostringstream frontier;
    explorer->save_frontier(frontier);
    ExplorerConfig next = leg;
    next.max_schedules = r.schedules + 400;  // per-leg budget is cumulative
    explorer = std::make_unique<Explorer>(next);
    std::istringstream in(frontier.str());
    std::string error;
    ASSERT_TRUE(explorer->load_frontier(in, &error)) << error;
    r = explorer->run();
    ++legs;
  }
  EXPECT_GT(legs, 2);  // the budget actually split the search
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.schedules, oneshot.schedules);
  EXPECT_EQ(r.nodes, oneshot.nodes);
  EXPECT_EQ(r.sleep_skips, oneshot.sleep_skips);
}

TEST(Explorer, ReplayToleratesInapplicableActions) {
  // Minimization deletes actions mid-schedule, so replays routinely apply
  // actions whose precondition vanished; they must no-op, not crash.
  std::vector<Action> actions = {
      Action{ActionKind::kExit, 0, kNoSite},       // nobody is in the CS
      Action{ActionKind::kDeliver, 2, 1},          // channel may be empty
      Action{ActionKind::kNotice, 0, 1},           // no such notice pending
      Action{ActionKind::kDeliver, kNoSite, 99},   // out of range
  };
  const auto world = replay_schedule(small_config(), actions);
  EXPECT_EQ(world->violations(), 0u);
}

// Regression for the TraceRecorder/payload-pool interaction: a recorded
// Message must not retain its payload handle, because the pool slot is
// recycled the moment the delivery handler returns — and under the
// explorer's out-of-order delivery the recycled slot backs an arbitrary
// later flight, not the "next" one like in clock-driven runs.
struct KvReader final : net::NetSite {
  explicit KvReader(net::Network& net) : net_(net) {}
  void on_message(const net::Message& m, LockId) override {
    if (m.payload != net::kNoPayload) last = net_.read_kv(m);
  }
  net::Network& net_;
  net::KvFields last;
};

TEST(TraceRecorderControlled, SeversPayloadsAndPoolStaysBounded) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(1), 1);
  KvReader reader(net);
  for (SiteId i = 0; i < 3; ++i) net.attach(i, &reader);
  net::TraceRecorder trace(net);
  net.set_controlled(true);

  const auto send_kv = [&](SiteId src, SiteId dst, int64_t value) {
    net::Message m = net::make_request(ReqId{1, src});
    net.attach_kv(m) = net::KvFields{7, value, 1};
    net.send(src, dst, m);
  };
  for (int round = 0; round < 3; ++round) {
    send_kv(0, 1, 10 + round);
    send_kv(2, 1, 20 + round);
    send_kv(1, 0, 30 + round);
    // Deliver in an order no delay model would produce: newest channel
    // first, so pool slots recycle out of send order.
    ASSERT_TRUE(net.deliver_next(1, 0));
    EXPECT_EQ(reader.last.value, 30 + round);
    ASSERT_TRUE(net.deliver_next(2, 1));
    EXPECT_EQ(reader.last.value, 20 + round);
    ASSERT_TRUE(net.deliver_next(0, 1));
    EXPECT_EQ(reader.last.value, 10 + round);
  }
  EXPECT_EQ(net.parked_flights(), 0u);
  EXPECT_EQ(net.stats().in_flight(), 0u);
  // Slots recycle: nine payloads shipped, but never more than three live.
  EXPECT_LE(net.payload_pool_size(), 3u);
  ASSERT_EQ(trace.events().size(), 9u);
  for (const net::TraceEvent& e : trace.events())
    EXPECT_EQ(e.msg.payload, net::kNoPayload);
}

}  // namespace
}  // namespace dqme::verify
