// Systematic schedule exploration (bounded model-checking flavour).
//
// Message *ordering* is the only nondeterminism in the system model, and
// ordering is driven entirely by per-message delays. This test enumerates
// every assignment of {short, medium, long} delays to the first k messages
// of a contended scenario (3^k schedules; the tail uses a seeded random
// mix), and asserts mutual exclusion + completion on every schedule. This
// probes exactly the races the paper's prose worries about: inquire before
// reply, transfer after exit, yields crossing re-grants.
#include <gtest/gtest.h>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "quorum/factory.h"

namespace dqme {
namespace {

// Delay model whose first decisions are dictated by a base-3 choice string.
class OracleDelay final : public net::DelayModel {
 public:
  OracleDelay(uint32_t decisions, int prefix_len, uint64_t seed)
      : decisions_(decisions), prefix_len_(prefix_len), rng_(seed) {}

  Time sample(Rng&, SiteId, SiteId) override {
    int choice;
    if (next_ < prefix_len_) {
      uint32_t d = decisions_;
      for (int i = 0; i < next_; ++i) d /= 3;
      choice = static_cast<int>(d % 3);
      ++next_;
    } else {
      choice = static_cast<int>(rng_.uniform_int(0, 2));
    }
    static constexpr Time kChoices[3] = {700, 1000, 1900};
    return kChoices[choice];
  }
  Time mean() const override { return 1000; }

 private:
  uint32_t decisions_;
  int prefix_len_;
  int next_ = 0;
  Rng rng_;
};

struct RunResult {
  uint64_t completed = 0;
  uint64_t violations = 0;
  bool finished = false;
};

RunResult run_schedule(uint32_t decisions, int prefix_len, int n,
                       uint64_t cs_per_site, uint64_t seed) {
  sim::Simulator sim;
  net::Network net(sim, n,
                   std::make_unique<OracleDelay>(decisions, prefix_len, seed),
                   seed);
  auto quorums = quorum::make_quorum_system("grid", n);
  std::vector<std::unique_ptr<core::CaoSinghalSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  for (SiteId i = 0; i < n; ++i) {
    sites.push_back(std::make_unique<core::CaoSinghalSite>(i, net, *quorums));
    net.attach(i, sites.back().get());
    raw.push_back(sites.back().get());
  }
  harness::Metrics metrics(net);
  harness::Workload::Config wc;
  wc.mode = harness::Workload::Config::Mode::kClosed;
  wc.cs_duration = 150;
  wc.max_cs_per_site = cs_per_site;
  wc.seed = seed;
  harness::Workload wl(sim, raw, wc, &metrics);
  wl.start();
  // Generous bound: a hung schedule stops making events long before this.
  sim.run_until(2'000'000);
  RunResult r;
  r.completed = wl.demands_completed();
  r.violations = metrics.violations();
  r.finished = wl.demands_outstanding() == 0 && sim.idle();
  return r;
}

TEST(ScheduleExploration, AllPrefixSchedulesSafeAndLive) {
  const int kPrefix = 8;  // 3^8 = 6561 systematically explored schedules
  uint32_t total = 1;
  for (int i = 0; i < kPrefix; ++i) total *= 3;
  for (uint32_t d = 0; d < total; ++d) {
    RunResult r = run_schedule(d, kPrefix, /*n=*/4, /*cs_per_site=*/2,
                               /*seed=*/d + 1);
    ASSERT_EQ(r.violations, 0u) << "schedule " << d;
    ASSERT_TRUE(r.finished) << "schedule " << d << " hung with "
                            << r.completed << "/8 completions";
    ASSERT_EQ(r.completed, 8u) << "schedule " << d;
  }
}

TEST(ScheduleExploration, WiderClusterRandomTails) {
  // Fewer systematic prefixes, bigger cluster, several random tails each.
  const int kPrefix = 4;  // 81 schedules
  for (uint32_t d = 0; d < 81; ++d) {
    for (uint64_t seed : {1ull, 2ull}) {
      RunResult r = run_schedule(d, kPrefix, /*n=*/9, /*cs_per_site=*/2,
                                 seed * 1000 + d);
      ASSERT_EQ(r.violations, 0u) << "schedule " << d << " seed " << seed;
      ASSERT_TRUE(r.finished) << "schedule " << d << " seed " << seed;
      ASSERT_EQ(r.completed, 18u);
    }
  }
}

// The same exploration through the Maekawa baseline: the corrected fail
// rule (DESIGN.md D7) must hold there too.
TEST(ScheduleExploration, MaekawaBaselineSurvivesExploration) {
  const int kPrefix = 5;  // 243 schedules
  for (uint32_t d = 0; d < 243; ++d) {
    sim::Simulator sim;
    net::Network net(sim, 4, std::make_unique<OracleDelay>(d, kPrefix, d + 9),
                     d + 9);
    auto quorums = quorum::make_quorum_system("grid", 4);
    std::vector<std::unique_ptr<mutex::MutexSite>> sites;
    std::vector<mutex::MutexSite*> raw;
    for (SiteId i = 0; i < 4; ++i) {
      sites.push_back(mutex::make_site(mutex::Algo::kMaekawa, i, net,
                                       quorums.get()));
      net.attach(i, sites.back().get());
      raw.push_back(sites.back().get());
    }
    harness::Metrics metrics(net);
    harness::Workload::Config wc;
    wc.mode = harness::Workload::Config::Mode::kClosed;
    wc.cs_duration = 150;
    wc.max_cs_per_site = 2;
    wc.seed = d + 9;
    harness::Workload wl(sim, raw, wc, &metrics);
    wl.start();
    sim.run_until(2'000'000);
    ASSERT_EQ(metrics.violations(), 0u) << "schedule " << d;
    ASSERT_EQ(wl.demands_outstanding(), 0u) << "schedule " << d;
  }
}

}  // namespace
}  // namespace dqme
