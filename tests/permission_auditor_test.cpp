// The permission auditor: validates the per-arbiter single-holder
// invariant on live runs of the quorum protocols, and proves it actually
// detects violations when fed a corrupted trace.
#include <gtest/gtest.h>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "harness/metrics.h"
#include "harness/permission_auditor.h"
#include "harness/workload.h"
#include "mutex/factory.h"
#include "quorum/factory.h"

namespace dqme::harness {
namespace {

struct AuditedRun {
  uint64_t violations = 0;
  uint64_t grants = 0;
  std::vector<std::string> reports;
  uint64_t completed = 0;
};

AuditedRun run_audited(mutex::Algo algo, int n, const std::string& quorum,
                       uint64_t seed, bool jitter) {
  sim::Simulator sim;
  std::unique_ptr<net::DelayModel> delay;
  if (jitter)
    delay = std::make_unique<net::UniformDelay>(500, 1500);
  else
    delay = std::make_unique<net::ConstantDelay>(1000);
  net::Network net(sim, n, std::move(delay), seed);
  PermissionAuditor auditor(net);
  auto quorums = quorum::make_quorum_system(quorum, n);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  for (SiteId i = 0; i < n; ++i) {
    sites.push_back(mutex::make_site(algo, i, net, quorums.get()));
    net.attach(i, sites.back().get());
    raw.push_back(sites.back().get());
  }
  Metrics metrics(net);
  Workload::Config wc;
  wc.mode = Workload::Config::Mode::kClosed;
  wc.cs_duration = 120;
  wc.max_cs_per_site = 25;
  wc.seed = seed;
  Workload wl(sim, raw, wc, &metrics);
  wl.start();
  sim.run();
  AuditedRun out;
  out.violations = auditor.violations();
  out.grants = auditor.grants_audited();
  out.reports = auditor.reports();
  out.completed = wl.demands_completed();
  return out;
}

TEST(PermissionAuditor, CaoSinghalCleanOnConstantDelays) {
  AuditedRun r = run_audited(mutex::Algo::kCaoSinghal, 16, "grid", 3, false);
  EXPECT_EQ(r.completed, 16u * 25u);
  EXPECT_GT(r.grants, 1000u);
  EXPECT_EQ(r.violations, 0u) << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(PermissionAuditor, CaoSinghalCleanUnderJitterManySeeds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    AuditedRun r =
        run_audited(mutex::Algo::kCaoSinghal, 9, "grid", seed, true);
    ASSERT_EQ(r.violations, 0u)
        << "seed " << seed << ": "
        << (r.reports.empty() ? "" : r.reports[0]);
  }
}

TEST(PermissionAuditor, CaoSinghalCleanOnFppAndMajority) {
  for (const char* kind : {"fpp", "majority"}) {
    const int n = std::string(kind) == "fpp" ? 13 : 9;
    AuditedRun r = run_audited(mutex::Algo::kCaoSinghal, n, kind, 7, true);
    EXPECT_EQ(r.violations, 0u) << kind;
    EXPECT_GT(r.grants, 100u) << kind;
  }
}

TEST(PermissionAuditor, MaekawaBaselineClean) {
  AuditedRun r = run_audited(mutex::Algo::kMaekawa, 16, "grid", 5, true);
  EXPECT_EQ(r.violations, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
  EXPECT_GT(r.grants, 1000u);
}

// Detection power: feed the auditor a hand-corrupted delivery sequence —
// a double grant of one arbiter's permission — and it must flag it.
TEST(PermissionAuditor, DetectsDoubleDirectGrant) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(10), 1);
  PermissionAuditor auditor(net);
  struct Sink final : net::NetSite {
    void on_message(const net::Message&, LockId) override {}
  } sink;
  for (SiteId i = 0; i < 3; ++i) net.attach(i, &sink);
  net.send(0, 1, net::make_reply(0, ReqId{1, 1}));  // arbiter 0 grants to 1
  net.send(0, 2, net::make_reply(0, ReqId{1, 2}));  // ...and also to 2!
  sim.run();
  EXPECT_EQ(auditor.violations(), 1u);
  ASSERT_FALSE(auditor.reports().empty());
  EXPECT_NE(auditor.reports()[0].find("direct grant while permission held"),
            std::string::npos);
}

// An arbiter serves every lock independently: concurrent grants of the SAME
// arbiter's permission under different LockIds are legal, and a true double
// grant within a non-zero lock is reported with the lock named.
TEST(PermissionAuditor, ArbiterStateIsKeyedPerLock) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(10), 1);
  PermissionAuditor auditor(net);
  struct Sink final : net::NetSite {
    void on_message(const net::Message&, LockId) override {}
  } sink;
  for (SiteId i = 0; i < 3; ++i) net.attach(i, &sink);
  net.send(0, 1, net::make_reply(0, ReqId{1, 1}));             // lock 0
  net.send(0, 2, net::make_reply(0, ReqId{1, 2}), LockId{4});  // lock 4
  sim.run();
  EXPECT_EQ(auditor.violations(), 0u)
      << (auditor.reports().empty() ? "" : auditor.reports()[0]);
  net.send(0, 1, net::make_reply(0, ReqId{2, 1}), LockId{4});  // double!
  sim.run();
  EXPECT_EQ(auditor.violations(), 1u);
  ASSERT_FALSE(auditor.reports().empty());
  EXPECT_NE(auditor.reports()[0].find("[lock 4]"), std::string::npos);
}

TEST(PermissionAuditor, DetectsForwardFromNonHolder) {
  sim::Simulator sim;
  net::Network net(sim, 4, std::make_unique<net::ConstantDelay>(10), 1);
  PermissionAuditor auditor(net);
  struct Sink final : net::NetSite {
    void on_message(const net::Message&, LockId) override {}
  } sink;
  for (SiteId i = 0; i < 4; ++i) net.attach(i, &sink);
  net.send(0, 1, net::make_reply(0, ReqId{1, 1}));  // arbiter 0 -> site 1
  sim.run();
  // Site 2 (who never held it) "forwards" arbiter 0's permission to 3.
  net.send(2, 3, net::make_reply(0, ReqId{2, 3}));
  sim.run();
  EXPECT_EQ(auditor.violations(), 1u);
  EXPECT_NE(auditor.reports()[0].find("forwarded grant from non-holder"),
            std::string::npos);
}

TEST(PermissionAuditor, AcceptsLegalHandoffEitherMessageOrder) {
  // forwarded-reply-then-release and release-then-forwarded-reply are both
  // legal; neither may be flagged.
  for (bool release_first : {false, true}) {
    sim::Simulator sim;
    net::Network net(sim, 4, std::make_unique<net::ConstantDelay>(10), 1);
    PermissionAuditor auditor(net);
    struct Sink final : net::NetSite {
      void on_message(const net::Message&, LockId) override {}
    } sink;
    for (SiteId i = 0; i < 4; ++i) net.attach(i, &sink);
    net.send(0, 1, net::make_reply(0, ReqId{1, 1}));  // grant to site 1
    sim.run();
    const ReqId next{2, 2};
    if (release_first) {
      net.send(1, 0, net::make_release(ReqId{1, 1}, next));
      sim.run();
      net.send(1, 2, net::make_reply(0, next));
    } else {
      net.send(1, 2, net::make_reply(0, next));
      sim.run();
      net.send(1, 0, net::make_release(ReqId{1, 1}, next));
    }
    sim.run();
    EXPECT_EQ(auditor.violations(), 0u)
        << "release_first=" << release_first << ": "
        << (auditor.reports().empty() ? "" : auditor.reports()[0]);
  }
}

}  // namespace
}  // namespace dqme::harness
