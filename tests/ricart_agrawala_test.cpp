// Ricart-Agrawala: exact 2(N-1) message count, deferred-reply semantics,
// priority order.
#include <gtest/gtest.h>

#include "net/network.h"
#include "mutex/ricart_agrawala.h"
#include "test_util.h"

namespace dqme {
namespace {

struct RaRig {
  explicit RaRig(int n, Time delay = 1000)
      : net(sim, n, std::make_unique<net::ConstantDelay>(delay), 3) {
    for (SiteId i = 0; i < n; ++i) {
      sites.push_back(std::make_unique<mutex::RicartAgrawalaSite>(i, net));
      net.attach(i, sites.back().get());
      sites.back()->on_enter = [this](SiteId id, LockId) {
        entries.push_back(id);
      };
    }
  }
  mutex::RicartAgrawalaSite& site(SiteId i) {
    return *sites[static_cast<size_t>(i)];
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<mutex::RicartAgrawalaSite>> sites;
  std::vector<SiteId> entries;
};

TEST(RicartAgrawala, UncontendedCsCostsExactly2NMinus1) {
  RaRig rig(6);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  // (N-1) request + (N-1) reply; release costs nothing when nobody waits.
  EXPECT_EQ(rig.net.stats().wire_messages, 2u * 5u);
}

TEST(RicartAgrawala, DeferredRepliesArriveAtRelease) {
  RaRig rig(2);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  rig.site(1).request_cs(kLock0);  // site 0 is in the CS: reply is deferred
  rig.sim.run();
  EXPECT_EQ(rig.entries.size(), 1u);
  const auto replies_before = rig.net.stats().count(net::MsgType::kReply);
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 1);
  EXPECT_EQ(rig.net.stats().count(net::MsgType::kReply), replies_before + 1);
  // Still 2(N-1) per CS: no separate release messages ever.
  EXPECT_EQ(rig.net.stats().count(net::MsgType::kRelease), 0u);
}

TEST(RicartAgrawala, ConcurrentContendersGrantLowerTimestampFirst) {
  RaRig rig(3);
  rig.site(2).request_cs(kLock0);
  rig.site(1).request_cs(kLock0);  // same tick: (1,1) beats (1,2)
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  EXPECT_EQ(rig.entries[0], 1);
  rig.site(1).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 2);
}

TEST(RicartAgrawala, NonRequestingSiteGrantsImmediately) {
  RaRig rig(2);
  rig.site(0).request_cs(kLock0);
  rig.sim.run_until(2000);  // request(T) + reply(T)
  EXPECT_EQ(rig.entries.size(), 1u);
}

TEST(RicartAgrawala, TwoCsExecutionsCost4NMinus1Total) {
  RaRig rig(4);
  for (int round = 0; round < 2; ++round) {
    rig.site(3).request_cs(kLock0);
    rig.sim.run();
    rig.site(3).release_cs(kLock0);
    rig.sim.run();
  }
  EXPECT_EQ(rig.net.stats().wire_messages, 2u * 2u * 3u);
}

TEST(RicartAgrawala, HeavyLoadStillAverages2NMinus1) {
  auto cfg = testing::heavy_cfg(mutex::Algo::kRicartAgrawala, 9, 4);
  auto r = testing::run_checked(cfg);
  // Deferred replies fold the release into the reply: the count stays
  // 2(N-1) regardless of load (§1).
  EXPECT_NEAR(r.summary.wire_msgs_per_cs, 2.0 * 8, 0.5);
}

TEST(RicartAgrawala, SynchronizationDelayIsT) {
  auto r = testing::run_checked(
      testing::heavy_cfg(mutex::Algo::kRicartAgrawala, 5, 22));
  EXPECT_NEAR(r.sync_delay_in_t, 1.0, 0.15);
}

}  // namespace
}  // namespace dqme
