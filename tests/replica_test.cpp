// Tests for the §7 replica-control extension: regular-register semantics
// from intersecting quorums + the delay-optimal mutex serializing writers,
// including crash recovery with adaptive quorums.
#include <gtest/gtest.h>

#include "net/network.h"
#include "core/failure_detector.h"
#include "quorum/factory.h"
#include "replica/replicated_store.h"

namespace dqme::replica {
namespace {

struct StoreRig {
  explicit StoreRig(int n, const std::string& quorum = "grid",
                    bool fault_tolerant = false, Time delay = 1000,
                    uint64_t seed = 5)
      : net(sim, n,
            std::make_unique<net::UniformDelay>(delay / 2, delay + delay / 2),
            seed),
        quorums(quorum::make_quorum_system(quorum, n)),
        detector(net, 2000, 500, seed + 1) {
    core::CaoSinghalSite::Options opt;
    opt.fault_tolerant = fault_tolerant;
    for (SiteId i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<ReplicaNode>(i, net, *quorums, opt));
      net.attach(i, nodes.back().get());
      detector.attach(i, nodes.back().get());
    }
  }
  ReplicaNode& node(SiteId i) { return *nodes[static_cast<size_t>(i)]; }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<quorum::QuorumSystem> quorums;
  core::FailureDetector detector;
  std::vector<std::unique_ptr<ReplicaNode>> nodes;
};

TEST(Replica, WriteThenReadFromAnySite) {
  StoreRig rig(9);
  int64_t committed = -1;
  rig.node(0).write(42, 1001, [&](int64_t v) { committed = v; });
  rig.sim.run();
  EXPECT_EQ(committed, 1);
  // Every site's quorum intersects the write quorum: all reads see it.
  int reads = 0;
  for (SiteId i = 0; i < 9; ++i)
    rig.node(i).read(42, [&](Versioned v) {
      EXPECT_EQ(v.value, 1001);
      EXPECT_EQ(v.version, 1);
      ++reads;
    });
  rig.sim.run();
  EXPECT_EQ(reads, 9);
}

TEST(Replica, UnwrittenKeyReadsVersionZero) {
  StoreRig rig(9);
  bool done = false;
  rig.node(3).read(7, [&](Versioned v) {
    EXPECT_EQ(v.version, 0);
    done = true;
  });
  rig.sim.run();
  EXPECT_TRUE(done);
}

TEST(Replica, VersionsGrowMonotonicallyAcrossWriters) {
  StoreRig rig(9);
  std::vector<int64_t> versions;
  for (int round = 0; round < 4; ++round)
    for (SiteId w : {1, 5, 8})
      rig.node(w).write(0, 100 * w + round,
                        [&](int64_t v) { versions.push_back(v); });
  rig.sim.run();
  ASSERT_EQ(versions.size(), 12u);
  std::sort(versions.begin(), versions.end());
  for (int64_t i = 0; i < 12; ++i)
    EXPECT_EQ(versions[static_cast<size_t>(i)], i + 1)
        << "versions must be exactly 1..12: the CS serializes writers";
}

TEST(Replica, ConcurrentWritersConvergeToSingleHistory) {
  StoreRig rig(9);
  // All 9 sites write the same key concurrently.
  int completed = 0;
  for (SiteId i = 0; i < 9; ++i)
    rig.node(i).write(5, 1000 + i, [&](int64_t) { ++completed; });
  rig.sim.run();
  EXPECT_EQ(completed, 9);
  // A quorum read from anywhere returns the version-9 value.
  Versioned final{};
  rig.node(2).read(5, [&](Versioned v) { final = v; });
  rig.sim.run();
  EXPECT_EQ(final.version, 9);
  EXPECT_GE(final.value, 1000);
  EXPECT_LE(final.value, 1008);
}

TEST(Replica, IndependentKeysDoNotInterfere) {
  StoreRig rig(9);
  for (SiteId i = 0; i < 9; ++i)
    rig.node(i).write(i, 7000 + i, [](int64_t) {});
  rig.sim.run();
  int reads = 0;
  for (SiteId i = 0; i < 9; ++i)
    rig.node((i + 4) % 9).read(i, [&, i](Versioned v) {
      EXPECT_EQ(v.value, 7000 + i);
      EXPECT_EQ(v.version, 1);
      ++reads;
    });
  rig.sim.run();
  EXPECT_EQ(reads, 9);
}

TEST(Replica, OpsQueueLocallyAndRunInOrder) {
  StoreRig rig(9);
  std::vector<int64_t> observed;
  rig.node(0).write(1, 10, [](int64_t) {});
  rig.node(0).read(1, [&](Versioned v) { observed.push_back(v.value); });
  rig.node(0).write(1, 20, [](int64_t) {});
  rig.node(0).read(1, [&](Versioned v) { observed.push_back(v.value); });
  rig.sim.run();
  EXPECT_EQ(observed, (std::vector<int64_t>{10, 20}));
}

TEST(Replica, WorksOnFppAndTreeQuorums) {
  for (const char* kind : {"fpp", "tree"}) {
    const int n = std::string(kind) == "fpp" ? 13 : 15;
    StoreRig rig(n, kind);
    int completed = 0;
    for (SiteId i = 0; i < n; i += 3)
      rig.node(i).write(9, i, [&](int64_t) { ++completed; });
    rig.sim.run();
    EXPECT_EQ(completed, (n + 2) / 3) << kind;
    Versioned v{};
    rig.node(1).read(9, [&](Versioned got) { v = got; });
    rig.sim.run();
    EXPECT_EQ(v.version, (n + 2) / 3) << kind;
  }
}

// ---- crash tolerance (tree quorums + FT mutex) ----

TEST(Replica, SurvivesReplicaCrashDuringWrites) {
  StoreRig rig(15, "tree", /*fault_tolerant=*/true);
  int completed = 0;
  for (int round = 0; round < 6; ++round)
    for (SiteId w : {3, 8, 14})
      rig.node(w).write(1, 100 * round + w, [&](int64_t v) {
        EXPECT_GT(v, 0);
        ++completed;
      });
  // Crash an internal tree node mid-run.
  rig.sim.schedule_at(4000, [&] { rig.detector.crash(1); });
  rig.sim.run();
  EXPECT_EQ(completed, 18);
  Versioned v{};
  rig.node(5).read(1, [&](Versioned got) { v = got; });
  rig.sim.run();
  EXPECT_EQ(v.version, 18);
}

TEST(Replica, RestartsOpWhoseQuorumMemberDied) {
  StoreRig rig(15, "tree", /*fault_tolerant=*/true);
  // Long-ish op in flight when the root dies.
  int64_t version = 0;
  rig.node(9).write(2, 999, [&](int64_t v) { version = v; });
  rig.sim.schedule_at(1500, [&] { rig.detector.crash(0); });  // root
  rig.sim.run();
  EXPECT_EQ(version, 1);
  uint64_t restarts = 0;
  for (auto& n : rig.nodes) restarts += n->stats().op_restarts;
  // The write (or a concurrent phase) had the root in its quorum.
  EXPECT_GE(restarts + rig.node(9).stats().stale_replies, 0u);  // smoke
  Versioned v{};
  rig.node(4).read(2, [&](Versioned got) { v = got; });
  rig.sim.run();
  EXPECT_EQ(v.value, 999);
}

TEST(Replica, FailsCleanlyWhenNoQuorumSurvives) {
  StoreRig rig(5, "majority", /*fault_tolerant=*/true);
  // Kill 3 of 5: no majority left.
  rig.detector.crash(0);
  rig.detector.crash(1);
  rig.detector.crash(2);
  rig.sim.run();
  int64_t version = 123;
  Versioned read_result{1, 1};
  rig.node(4).write(1, 5, [&](int64_t v) { version = v; });
  rig.node(4).read(1, [&](Versioned v) { read_result = v; });
  rig.sim.run();
  EXPECT_EQ(version, -1);          // write failed, reported
  EXPECT_EQ(read_result.version, -1);  // read failed, reported
}

// Reads that do not race writes return the latest committed value even
// under jittered delays — the regular-register guarantee.
TEST(Replica, QuiescentReadsAlwaysSeeLatestCommit) {
  StoreRig rig(9, "grid", false, 1000, 11);
  for (int round = 1; round <= 5; ++round) {
    int64_t committed = 0;
    rig.node(static_cast<SiteId>(round % 9))
        .write(3, round * 11, [&](int64_t v) { committed = v; });
    rig.sim.run();  // quiesce: write fully committed
    ASSERT_EQ(committed, round);
    for (SiteId r : {0, 4, 8}) {
      Versioned v{};
      rig.node(r).read(3, [&](Versioned got) { v = got; });
      rig.sim.run();
      EXPECT_EQ(v.version, round);
      EXPECT_EQ(v.value, round * 11);
    }
  }
}

// Atomic read-modify-write: concurrent increments from every site must all
// land — the classic lost-update test.
TEST(Replica, ConcurrentAtomicIncrementsLoseNothing) {
  StoreRig rig(9);
  const int rounds = 4;
  int done = 0;
  for (int round = 0; round < rounds; ++round)
    for (SiteId i = 0; i < 9; ++i)
      rig.node(i).update(0, [](int64_t v) { return v + 1; },
                         [&](int64_t version) {
                           EXPECT_GT(version, 0);
                           ++done;
                         });
  rig.sim.run();
  EXPECT_EQ(done, 9 * rounds);
  Versioned v{};
  rig.node(7).read(0, [&](Versioned got) { v = got; });
  rig.sim.run();
  EXPECT_EQ(v.value, 9 * rounds);
  EXPECT_EQ(v.version, 9 * rounds);
}

TEST(Replica, UpdatesSurviveCrashMidFlight) {
  StoreRig rig(15, "tree", /*fault_tolerant=*/true);
  int done = 0;
  for (int round = 0; round < 3; ++round)
    for (SiteId i = 1; i < 15; i += 2)
      rig.node(i).update(4, [](int64_t v) { return v + 10; },
                         [&](int64_t) { ++done; });
  rig.sim.schedule_at(3000, [&] { rig.detector.crash(2); });
  rig.sim.run();
  EXPECT_EQ(done, 21);
  Versioned v{};
  rig.node(10).read(4, [&](Versioned got) { v = got; });
  rig.sim.run();
  EXPECT_EQ(v.value, 210);
}

// Local replicas converge lazily: a site outside the write quorum may
// store a stale copy, but quorum reads never see it.
TEST(Replica, LocalCopiesMayLagButQuorumReadsDoNot) {
  StoreRig rig(9);
  rig.node(0).write(6, 555, [](int64_t) {});
  rig.sim.run();
  int fresh_local = 0;
  for (SiteId i = 0; i < 9; ++i)
    if (auto v = rig.node(i).local_get(6); v && v->version == 1)
      ++fresh_local;
  // The write quorum holds it; the rest may not.
  EXPECT_GE(fresh_local, 5);  // grid quorum of 9 has 5 members
  EXPECT_LE(fresh_local, 9);
  Versioned v{};
  rig.node(8).read(6, [&](Versioned got) { v = got; });
  rig.sim.run();
  EXPECT_EQ(v.value, 555);  // regardless of node 8's local copy
}

TEST(Replica, StatsAccountOps) {
  StoreRig rig(9);
  rig.node(2).write(1, 7, [](int64_t) {});
  rig.node(2).read(1, [](Versioned) {});
  rig.node(2).update(1, [](int64_t x) { return x * 2; }, [](int64_t) {});
  rig.sim.run();
  EXPECT_EQ(rig.node(2).stats().writes_completed, 2u);
  EXPECT_EQ(rig.node(2).stats().reads_completed, 1u);
  Versioned v{};
  rig.node(5).read(1, [&](Versioned got) { v = got; });
  rig.sim.run();
  EXPECT_EQ(v.value, 14);
  EXPECT_EQ(v.version, 2);
}

// Seed sweep: the lost-update property across random interleavings.
class ReplicaSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicaSeedSweep, CountersAreExactUnderJitter) {
  StoreRig rig(9, "grid", false, 1000, GetParam());
  int done = 0;
  for (int round = 0; round < 3; ++round)
    for (SiteId i = 0; i < 9; ++i)
      rig.node(i).update(0, [](int64_t v) { return v + 1; },
                         [&](int64_t) { ++done; });
  rig.sim.run();
  ASSERT_EQ(done, 27);
  Versioned v{};
  rig.node(GetParam() % 9).read(0, [&](Versioned got) { v = got; });
  rig.sim.run();
  EXPECT_EQ(v.value, 27);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaSeedSweep,
                         ::testing::Range<uint64_t>(900, 912));

// Regular-register semantics: a read racing a write returns either the old
// or the new committed value — never a torn or fabricated one.
TEST(Replica, RacingReadsReturnOldOrNewValueOnly) {
  StoreRig rig(9, "grid", false, 1000, 21);
  int64_t committed = 0;
  rig.node(0).write(2, 100, [&](int64_t v) { committed = v; });
  rig.sim.run();
  ASSERT_EQ(committed, 1);
  // Kick off the overwrite and immediately read from several sites while
  // the write's phases are in flight.
  rig.node(1).write(2, 200, [](int64_t) {});
  int checked = 0;
  for (SiteId reader : {3, 5, 7}) {
    rig.node(reader).read(2, [&](Versioned v) {
      EXPECT_TRUE(v.value == 100 || v.value == 200) << "torn read: "
                                                    << v.value;
      EXPECT_TRUE(v.version == 1 || v.version == 2);
      ++checked;
    });
  }
  rig.sim.run();
  EXPECT_EQ(checked, 3);
}

}  // namespace
}  // namespace dqme::replica
