// Tests for the obs metrics registry: counter/gauge/histogram semantics,
// deterministic merge (the SweepRunner contract), and JSON shape.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.h"
#include "obs/registry.h"

namespace dqme::obs {
namespace {

TEST(Histogram, RecordsIntoFixedBuckets) {
  Histogram h(0, 10, 5);  // [0,10) [10,20) ... [40,50)
  h.record(-1);           // underflow
  h.record(0);
  h.record(9.99);
  h.record(10);
  h.record(49.9);
  h.record(50);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[4], 1u);
  EXPECT_DOUBLE_EQ(h.sum(), -1 + 0 + 9.99 + 10 + 49.9 + 50);
}

TEST(Histogram, PercentileUsesBucketMidpoints) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 90; ++i) h.record(5);   // bucket 0
  for (int i = 0; i < 10; ++i) h.record(95);  // bucket 9
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 95);
}

TEST(Histogram, QuantileAccessorsMatchPercentile) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 90; ++i) h.record(5);
  for (int i = 0; i < 10; ++i) h.record(95);
  EXPECT_DOUBLE_EQ(h.p50(), h.percentile(0.50));
  EXPECT_DOUBLE_EQ(h.p95(), h.percentile(0.95));
  EXPECT_DOUBLE_EQ(h.p99(), h.percentile(0.99));
  EXPECT_DOUBLE_EQ(h.p50(), 5);
  EXPECT_DOUBLE_EQ(h.p99(), 95);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a(0, 10, 3), b(0, 10, 3);
  a.record(5);
  b.record(5);
  b.record(25);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.buckets()[0], 2u);
  EXPECT_EQ(a.buckets()[2], 1u);
}

TEST(Histogram, MergeIntoDefaultAdoptsSpec) {
  Histogram a;  // default-constructed, never declared
  Histogram b(0, 10, 3);
  b.record(15);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.buckets().size(), 3u);
}

TEST(Histogram, MergeRejectsMismatchedSpecs) {
  Histogram a(0, 10, 3), b(0, 5, 3);
  a.record(1);
  b.record(1);
  EXPECT_THROW(a.merge(b), CheckError);
}

TEST(LogHistogram, RecordsIntoDoublingBuckets) {
  Histogram h = Histogram::log2(10, 4);  // [10,20) [20,40) [40,80) [80,160)
  h.record(9.99);  // underflow
  h.record(10);    // exact lower boundary -> bucket 0
  h.record(19.9);
  h.record(20);  // exact boundary -> bucket 1, not 0
  h.record(79.9);
  h.record(159.9);
  h.record(160);  // overflow
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_TRUE(h.is_log());
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 10);
  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 20);
  EXPECT_DOUBLE_EQ(h.bucket_lower(3), 80);
  EXPECT_DOUBLE_EQ(h.bucket_upper(3), 160);
}

TEST(LogHistogram, CoversManyDecadesWithFewBuckets) {
  // The motivating bug: waiting times span T/10 .. thousands of T, and a
  // 100-bucket linear histogram dumped >99% of samples into overflow.
  Histogram h = Histogram::log2(100, 36);
  h.record(150);        // ~one message delay
  h.record(500'000);    // heavy contention
  h.record(2'000'000);  // saturation tail
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(LogHistogram, PercentileUsesBucketMidpoints) {
  Histogram h = Histogram::log2(10, 4);
  for (int i = 0; i < 90; ++i) h.record(15);  // bucket 0: [10,20)
  for (int i = 0; i < 10; ++i) h.record(90);  // bucket 3: [80,160)
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 15);    // midpoint of [10,20)
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 120);  // midpoint of [80,160)
}

TEST(LogHistogram, PercentileResolvesOutOfRangeMassToEdges) {
  Histogram h = Histogram::log2(10, 2);  // [10,20) [20,40)
  for (int i = 0; i < 50; ++i) h.record(1);    // all underflow
  for (int i = 0; i < 50; ++i) h.record(100);  // all overflow
  EXPECT_DOUBLE_EQ(h.percentile(0.01), 10);  // underflow -> lo
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 40);  // overflow -> top edge
}

TEST(LogHistogram, MergeRejectsLinearCounterpart) {
  // Same lo/width/bucket-count, different bucketing mode: still a spec
  // mismatch.
  Histogram log_h = Histogram::log2(10, 4);
  Histogram lin_h(10, 10, 4);
  log_h.record(15);
  lin_h.record(15);
  EXPECT_THROW(log_h.merge(lin_h), CheckError);
  Histogram a = Histogram::log2(10, 4), b = Histogram::log2(10, 4);
  a.record(15);
  b.record(35);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
}

TEST(Registry, CounterAndGaugeReferencesAreStable) {
  Registry reg;
  uint64_t& c = reg.counter("cs.completed");
  ++c;
  // Creating many more entries must not invalidate the reference.
  for (int i = 0; i < 100; ++i)
    reg.counter("filler." + std::to_string(i)) = 1;
  ++c;
  EXPECT_EQ(*reg.find_counter("cs.completed"), 2u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(Registry, HistogramRedeclarationWithSameSpecIsIdempotent) {
  Registry reg;
  Histogram& h1 = reg.histogram("waiting", 0, 100, 10);
  Histogram& h2 = reg.histogram("waiting", 0, 100, 10);
  EXPECT_EQ(&h1, &h2);
  EXPECT_THROW(reg.histogram("waiting", 0, 50, 10), CheckError);
}

TEST(Registry, LogHistogramAccessorAndKindMismatch) {
  Registry reg;
  Histogram& h1 = reg.log_histogram("waiting", 100, 36);
  Histogram& h2 = reg.log_histogram("waiting", 100, 36);
  EXPECT_EQ(&h1, &h2);
  EXPECT_TRUE(h1.is_log());
  // Re-declaring the same name with the other bucketing mode is a spec
  // mismatch in both directions.
  EXPECT_THROW(reg.histogram("waiting", 100, 100, 36), CheckError);
  reg.histogram("linear", 0, 10, 4);
  EXPECT_THROW(reg.log_histogram("linear", 10, 4), CheckError);
}

TEST(Registry, WriteJsonEmitsHistogramKind) {
  Registry reg;
  reg.histogram("lin", 0, 10, 2).record(5);
  reg.log_histogram("log", 10, 2).record(15);
  std::ostringstream os;
  reg.write_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"lin\": {\"kind\": \"linear\""), std::string::npos);
  EXPECT_NE(s.find("\"log\": {\"kind\": \"log2\""), std::string::npos);
}

TEST(Registry, MergeSumsCountersMaxesGauges) {
  Registry a, b;
  a.counter("msgs") = 10;
  b.counter("msgs") = 7;
  b.counter("only_b") = 3;
  a.gauge("peak") = 5;
  b.gauge("peak") = 9;
  a.histogram("w", 0, 1, 4).record(2.5);
  b.histogram("w", 0, 1, 4).record(2.5);
  a.merge(b);
  EXPECT_EQ(*a.find_counter("msgs"), 17u);
  EXPECT_EQ(*a.find_counter("only_b"), 3u);
  EXPECT_DOUBLE_EQ(*a.find_gauge("peak"), 9);
  EXPECT_EQ(a.find_histogram("w")->buckets()[2], 2u);
}

TEST(Registry, MergeIsOrderInsensitiveForTheSweepContract) {
  // merge_registries folds in index order; the result of merging the same
  // multiset of registries must not depend on that order.
  Registry a, b, ab, ba;
  a.counter("x") = 1;
  a.gauge("g") = 3;
  b.counter("x") = 2;
  b.gauge("g") = 7;
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  std::ostringstream sab, sba;
  ab.write_json(sab);
  ba.write_json(sba);
  EXPECT_EQ(sab.str(), sba.str());
}

TEST(Registry, WriteJsonEmitsSortedDeterministicObject) {
  Registry reg;
  reg.counter("b.count") = 2;
  reg.counter("a.count") = 1;
  reg.gauge("depth") = 4.5;
  reg.histogram("w", 0, 10, 2).record(5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string s = os.str();
  // Sorted keys: "a.count" must precede "b.count".
  EXPECT_LT(s.find("\"a.count\""), s.find("\"b.count\""));
  EXPECT_NE(s.find("\"gauges\": {\"depth\": 4.5}"), std::string::npos);
  EXPECT_NE(s.find("\"buckets\": [1, 0]"), std::string::npos);
  // Quantiles ride along so bench --json consumers need no bucket math.
  EXPECT_NE(s.find("\"p50\": "), std::string::npos);
  EXPECT_NE(s.find("\"p95\": "), std::string::npos);
  EXPECT_NE(s.find("\"p99\": "), std::string::npos);
}

TEST(Registry, ExperimentRunsFillAndMergeRegistries) {
  harness::ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 9;
  cfg.warmup = 5'000;
  cfg.measure = 60'000;
  auto results = harness::replicate(cfg, 2);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_GT(*r.registry.find_counter("sim.events"), 0u);
    EXPECT_GT(*r.registry.find_counter("net.wire_msgs"), 0u);
    EXPECT_GT(*r.registry.find_gauge("sim.peak_heap"), 0);
    ASSERT_NE(r.registry.find_histogram("waiting"), nullptr);
    EXPECT_EQ(r.registry.find_histogram("waiting")->count(),
              *r.registry.find_counter("cs.completed"));
  }
  const Registry merged = harness::merge_registries(results);
  EXPECT_EQ(*merged.find_counter("sim.events"),
            *results[0].registry.find_counter("sim.events") +
                *results[1].registry.find_counter("sim.events"));
  EXPECT_GE(*merged.find_gauge("sim.peak_heap"),
            *results[0].registry.find_gauge("sim.peak_heap"));
}

TEST(Registry, MergedViewIsIdenticalForAnyWorkerCount) {
  harness::ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kMaekawa;
  cfg.n = 9;
  cfg.warmup = 5'000;
  cfg.measure = 40'000;
  const Registry r1 = harness::merge_registries(harness::replicate(cfg, 4, 1));
  const Registry r4 = harness::merge_registries(harness::replicate(cfg, 4, 4));
  std::ostringstream s1, s4;
  r1.write_json(s1);
  r4.write_json(s4);
  EXPECT_EQ(s1.str(), s4.str());
}

TEST(Sweep, SharedCaptureAcrossConfigsIsRejected) {
  harness::ExperimentConfig cfg;
  cfg.n = 9;
  cfg.warmup = 1'000;
  cfg.measure = 10'000;
  RunCapture cap;
  cfg.capture = &cap;
  auto grid = harness::expand_seeds(cfg, 2);
  EXPECT_THROW(harness::SweepRunner().run(grid), CheckError);
  // A single config with a capture is the supported recording path.
  grid.resize(1);
  EXPECT_NO_THROW(harness::SweepRunner().run(grid));
  EXPECT_GT(cap.messages.size(), 0u);
}

}  // namespace
}  // namespace dqme::obs
