// Message-level protocol tests for CaoSinghalSite: each exercises one rule
// of §3.2's A/B/C steps or one documented deviation (DESIGN.md D1-D6),
// driving sites directly through the simulated network and, for
// adversarial cases, with hand-crafted messages.
#include <gtest/gtest.h>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "net/trace.h"
#include "quorum/factory.h"

namespace dqme {
namespace {

using core::CaoSinghalSite;
using net::Message;
using net::MsgType;

struct Rig {
  explicit Rig(int n, const std::string& quorum = "grid", Time delay = 1000,
               CaoSinghalSite::Options options = CaoSinghalSite::Options())
      : net(sim, n, std::make_unique<net::ConstantDelay>(delay), 3),
        quorums(quorum::make_quorum_system(quorum, n)) {
    for (SiteId i = 0; i < n; ++i) {
      sites.push_back(
          std::make_unique<CaoSinghalSite>(i, net, *quorums, options));
      net.attach(i, sites.back().get());
      sites.back()->on_enter = [this, i](SiteId, LockId) {
        entries.push_back({i, sim.now()});
      };
    }
  }
  CaoSinghalSite& site(SiteId i) { return *sites[static_cast<size_t>(i)]; }
  void release(SiteId i) {
    site(i).release_cs(kLock0);
    exits.push_back({i, sim.now()});
  }

  struct Event {
    SiteId site;
    Time at;
  };
  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<quorum::QuorumSystem> quorums;
  std::vector<std::unique_ptr<CaoSinghalSite>> sites;
  std::vector<Event> entries;
  std::vector<Event> exits;
};

// A.2 first branch + B: an unlocked arbiter grants immediately; the
// requester enters after one round trip.
TEST(CaoSinghalProtocol, UncontendedEntryTakesOneRoundTrip) {
  Rig rig(9);
  rig.site(4).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  EXPECT_EQ(rig.entries[0].site, 4);
  EXPECT_EQ(rig.entries[0].at, 2000);  // request T + reply T
}

// THE paper mechanism: with a waiter queued, the exiting site's forwarded
// reply reaches the next entrant after exactly ONE message delay — not two.
TEST(CaoSinghalProtocol, HandoffIsExactlyOneMessageDelay) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.site(1).request_cs(kLock0);  // overlaps 0's quorum
  rig.sim.run();             // 1 is now fully parked, waiting only on 0
  EXPECT_EQ(rig.entries.size(), 1u);
  rig.release(0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1].site, 1);
  // Exit -> forwarded reply (T). Maekawa would need release + reply (2T).
  EXPECT_EQ(rig.entries[1].at - rig.exits[0].at, 1000);
}

// ... and the arbiter learns about the forwarding from release(i, j): its
// lock must move to the forwarded site without it sending its own reply.
TEST(CaoSinghalProtocol, ReleaseWithForwardSkipsArbiterReply) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  const auto direct_before = rig.net.stats().count(MsgType::kReply);
  rig.release(0);
  rig.sim.run();
  // Replies on the wire grew only by the forwards site 0 sent (to site 1),
  // bundled per destination: exactly one reply-carrying wire hop, from the
  // proxy, none from the arbiters themselves.
  EXPECT_EQ(rig.site(1).protocol_stats().transfers_ignored, 0u);
  EXPECT_GT(rig.net.stats().count(MsgType::kReply), direct_before);
  EXPECT_GT(rig.site(0).protocol_stats().replies_forwarded, 0u);
}

// C.1: several transfers from the same arbiter — only the newest is
// honoured ("deletes the following entries ... from the same sender").
TEST(CaoSinghalProtocol, OnlyLatestTransferPerArbiterIsHonoured) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  // Two waiters behind site 0 at its own arbiter; 2 first (same clock
  // tick => priority by id; 1 beats 2 on arrival).
  rig.site(2).request_cs(kLock0);
  rig.sim.run_until(rig.sim.now() + 2500);
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  // Site 0's tran_stack now holds superseded entries for shared arbiters.
  const auto accepted = rig.site(0).protocol_stats().transfers_accepted;
  EXPECT_GT(accepted, 1u);
  rig.release(0);
  rig.sim.run();
  // Exactly one of the two waiters got the forwarded grant first and the
  // other entered later through the arbiter path; no double grants, no
  // stuck requests.
  ASSERT_EQ(rig.entries.size(), 2u);
  rig.release(rig.entries[1].site);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 3u);
  rig.release(rig.entries[2].site);
  rig.sim.run();
  // All three sites ran exactly once.
  std::vector<SiteId> order;
  for (const auto& e : rig.entries) order.push_back(e.site);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<SiteId>{0, 1, 2}));
}

// A.3 + A.4: a holder that has failed elsewhere yields to a higher
// priority challenger; the arbiter re-grants to the challenger.
TEST(CaoSinghalProtocol, FailedHolderYieldsToHigherPriority) {
  Rig rig(9);
  // Site 8 starts first (lower priority id, same seq as 0 later): let 8
  // collect some grants, then 0 (higher priority) contends.
  rig.site(8).request_cs(kLock0);
  rig.sim.run_until(1100);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  // Both must eventually get in, in *some* order (yield or release path).
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.release(rig.entries[0].site);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_NE(rig.entries[0].site, rig.entries[1].site);
  const auto& stats8 = rig.site(8).protocol_stats();
  const auto& stats0 = rig.site(0).protocol_stats();
  EXPECT_GT(stats8.yields_sent + stats0.yields_sent +
                rig.site(8).stale_drops() + rig.site(0).stale_drops(),
            0u);
}

// D2: an inquire reaching a site already inside the CS must NOT trigger a
// yield (that would let someone else in concurrently).
TEST(CaoSinghalProtocol, NoYieldFromInsideTheCS) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  ASSERT_TRUE(rig.site(0).in_cs());
  // Craft an inquire from one of 0's arbiters about its current request.
  const SiteId arbiter = rig.site(0).req_set()[1];
  Message inq = net::make_inquire(arbiter, ReqId{1, 0});
  inq.src = arbiter;
  inq.dst = 0;
  const auto yields_before = rig.site(0).protocol_stats().yields_sent;
  rig.site(0).on_message(inq, kLock0);
  EXPECT_TRUE(rig.site(0).in_cs());
  EXPECT_EQ(rig.site(0).protocol_stats().yields_sent, yields_before);
  EXPECT_GT(rig.site(0).stale_drops(), 0u);
}

// D1: control messages about finished or foreign requests are dropped.
TEST(CaoSinghalProtocol, StaleMessagesAreDropped) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  rig.release(0);
  rig.sim.run();
  const SiteId arbiter = rig.site(0).req_set()[1];
  const auto entries_before = rig.entries.size();

  Message stale_reply = net::make_reply(arbiter, ReqId{1, 0});
  stale_reply.src = arbiter;
  stale_reply.dst = 0;
  rig.site(0).on_message(stale_reply, kLock0);

  Message stale_fail = net::make_fail(arbiter, ReqId{1, 0});
  stale_fail.src = arbiter;
  stale_fail.dst = 0;
  rig.site(0).on_message(stale_fail, kLock0);

  Message stale_transfer = net::make_transfer(ReqId{5, 3}, arbiter, ReqId{1, 0});
  stale_transfer.src = arbiter;
  stale_transfer.dst = 0;
  rig.site(0).on_message(stale_transfer, kLock0);

  rig.sim.run();
  EXPECT_EQ(rig.entries.size(), entries_before);
  EXPECT_TRUE(rig.site(0).idle());
  EXPECT_GE(rig.site(0).stale_drops() +
                rig.site(0).protocol_stats().transfers_ignored,
            3u);
}

// A.5: a transfer for a permission we do not (or no longer) hold is
// discarded; the arbiter recovers via the release(i, max) path.
TEST(CaoSinghalProtocol, TransferWithoutPermissionIsIgnored) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  // Site 0 holds its grants; craft a transfer naming an arbiter whose
  // reply it *does* hold but with a mismatched holder request id.
  const SiteId arbiter = rig.site(0).req_set()[1];
  Message bogus = net::make_transfer(ReqId{9, 5}, arbiter, ReqId{99, 0});
  bogus.src = arbiter;
  bogus.dst = 0;
  const auto before = rig.site(0).protocol_stats().transfers_accepted;
  rig.site(0).on_message(bogus, kLock0);
  EXPECT_EQ(rig.site(0).protocol_stats().transfers_accepted, before);
}

// A.3/A.6: an inquire arriving before its reply (possible because replies
// can travel via a proxy) is deferred in inq_queue and resolved when the
// reply lands — here with failed=1, so it must yield then.
TEST(CaoSinghalProtocol, EarlyInquireIsDeferredUntilReply) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run_until(500);  // requests still in flight, no replies yet
  ASSERT_TRUE(rig.site(0).requesting());
  const SiteId arbiter = rig.site(0).req_set()[1];

  // Early inquire: no reply from `arbiter` yet => deferred.
  Message inq = net::make_inquire(arbiter, ReqId{1, 0});
  inq.src = arbiter;
  inq.dst = 0;
  rig.site(0).on_message(inq, kLock0);
  EXPECT_EQ(rig.site(0).protocol_stats().inquires_deferred, 1u);
  EXPECT_EQ(rig.site(0).protocol_stats().yields_sent, 0u);

  // Mark the request failed, then let the replies arrive: the deferred
  // inquire must now resolve into a yield for that arbiter.
  Message fail = net::make_fail(rig.site(0).req_set()[2], ReqId{1, 0});
  fail.src = rig.site(0).req_set()[2];
  fail.dst = 0;
  rig.site(0).on_message(fail, kLock0);
  EXPECT_TRUE(rig.site(0).failed_flag());
  rig.sim.run();
  EXPECT_EQ(rig.site(0).protocol_stats().yields_sent, 1u);
}

// E9 machinery: with the proxy disabled the handoff goes back through the
// arbiter — exactly Maekawa's two message delays.
TEST(CaoSinghalProtocol, NoProxyHandoffTakesTwoMessageDelays) {
  CaoSinghalSite::Options opt;
  opt.proxy_transfer = false;
  Rig rig(9, "grid", 1000, opt);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.release(0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1].at - rig.exits[0].at, 2000);  // release + reply
  EXPECT_EQ(rig.site(0).protocol_stats().replies_forwarded, 0u);
}

// Piggybacking off (E9): same control messages, more wire messages.
TEST(CaoSinghalProtocol, PiggybackingReducesWireMessages) {
  auto run_with = [&](bool piggyback) {
    CaoSinghalSite::Options opt;
    opt.piggyback = piggyback;
    Rig rig(9, "grid", 1000, opt);
    rig.site(0).request_cs(kLock0);
    rig.sim.run();
    rig.site(1).request_cs(kLock0);
    rig.site(2).request_cs(kLock0);
    rig.sim.run();
    rig.release(0);
    rig.sim.run();
    while (rig.entries.size() < 3) {
      rig.release(rig.entries.back().site);
      rig.sim.run();
    }
    return rig.net.stats();
  };
  const auto with = run_with(true);
  const auto without = run_with(false);
  EXPECT_EQ(with.control_messages, without.control_messages);
  EXPECT_LT(with.wire_messages, without.wire_messages);
}

// Determinism at the message level: identical rigs produce identical
// traces (the foundation for reproducible experiments).
TEST(CaoSinghalProtocol, IdenticalRigsProduceIdenticalTraces) {
  auto trace = [] {
    Rig rig(9);
    std::vector<std::string> events;
    rig.net.on_deliver = [&](const Message& m, LockId) {
      std::ostringstream os;
      os << rig.sim.now() << ' ' << m;
      events.push_back(os.str());
    };
    rig.site(3).request_cs(kLock0);
    rig.site(5).request_cs(kLock0);
    rig.sim.run();
    rig.release(rig.entries[0].site);
    rig.sim.run();
    return events;
  };
  EXPECT_EQ(trace(), trace());
}

// Misuse guards.
TEST(CaoSinghalProtocol, RejectsProtocolMisuse) {
  Rig rig(9);
  EXPECT_THROW(rig.site(0).release_cs(kLock0), CheckError);
  rig.site(0).request_cs(kLock0);
  EXPECT_THROW(rig.site(0).request_cs(kLock0), CheckError);
}

// Three-way saturation on one shared arbiter cell: everyone gets exactly
// one turn per round, no one starves across many rounds.
TEST(CaoSinghalProtocol, RoundRobinFairnessUnderSymmetricContention) {
  Rig rig(4);  // 2x2 grid: heavy quorum overlap
  std::vector<int> turns(4, 0);
  for (SiteId i = 0; i < 4; ++i) rig.site(i).request_cs(kLock0);
  rig.sim.run();
  for (int round = 0; round < 40; ++round) {
    ASSERT_FALSE(rig.entries.empty());
    const SiteId who = rig.entries.back().site;
    ++turns[static_cast<size_t>(who)];
    rig.release(who);
    // Re-request immediately: closed loop by hand.
    rig.site(who).request_cs(kLock0);
    rig.sim.run();
  }
  for (int t : turns) EXPECT_GE(t, 5) << "a site is being starved";
}

// The fallback path: if the arbiter's transfer reaches the holder only
// after the holder exited, it is discarded (A.5) and the handoff routes
// through release(i, max) -> arbiter reply: exactly 2T. The protocol is
// delay-optimal when waiters park early (§5.2's heavy-load assumption),
// and degrades to Maekawa's 2T — never worse — when they do not.
TEST(CaoSinghalProtocol, LateTransferFallsBackToTwoT) {
  Rig rig(9);
  rig.site(0).request_cs(kLock0);            // t=0; enters at t=2000
  rig.sim.run_until(1500);
  rig.site(1).request_cs(kLock0);            // t=1500; reaches arbiters t=2500
  rig.sim.run_until(2500);
  ASSERT_TRUE(rig.site(0).in_cs());
  // Arbiters send transfer at 2500 -> arrives at site 0 at 3500. Exit at
  // 3000 beats it: the transfer must be dropped as outdated.
  rig.sim.run_until(3000);
  rig.release(0);                      // exit t=3000
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1].site, 1);
  // release(0, max) reaches arbiters at 4000; their direct reply lands at
  // 5000: exactly two message delays after the exit.
  EXPECT_EQ(rig.entries[1].at - rig.exits[0].at, 2000);
  EXPECT_GT(rig.site(0).stale_drops() +
                rig.site(0).protocol_stats().transfers_ignored,
            0u);
}

// Golden trace: the complete protocol cycle on three sites, pinned message
// by message. Constant delays + no stochastic inputs make this exactly
// reproducible; any change to the protocol's decisions shows up here as a
// diff (by design — update deliberately, with DESIGN.md in hand).
//
// The scenario walks through: self-grants, case-2 fail+transfer, case-1
// inquire+transfer, fail -> deferred-inquire -> yield, A.4 re-grant with
// piggybacked transfer, entry, exit with two forwarded replies bundled to
// the next entrant, parameterized releases, and the second entry exactly
// one delay after the first exit.
TEST(CaoSinghalProtocol, GoldenTraceThreeSites) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(1000), 1);
  net::TraceRecorder trace(net);
  auto quorums = quorum::make_quorum_system("grid", 3);
  std::vector<std::unique_ptr<CaoSinghalSite>> sites;
  for (SiteId i = 0; i < 3; ++i) {
    sites.push_back(std::make_unique<CaoSinghalSite>(i, net, *quorums));
    net.attach(i, sites.back().get());
  }
  sites[2]->request_cs(kLock0);
  sim.run_until(500);
  sites[0]->request_cs(kLock0);
  sim.run();
  ASSERT_TRUE(sites[0]->in_cs());  // higher priority wins via yield
  sites[0]->release_cs(kLock0);
  sim.run();
  ASSERT_TRUE(sites[2]->in_cs());  // forwarded handoff
  sites[2]->release_cs(kLock0);
  sim.run();

  const std::vector<std::string> expected = {
      "0 request[2->2 req=(1,2)]",
      "0 reply[2->2 req=(1,2) arb=2]",
      "500 request[0->0 req=(1,0)]",
      "500 reply[0->0 req=(1,0) arb=0]",
      "1000 request[2->0 req=(1,2)]",
      "1000 transfer[0->0 req=(1,0) arb=0 tgt=(1,2)]",
      "1500 request[0->1 req=(1,0)]",
      "1500 request[0->2 req=(1,0)]",
      "1500 inquire[2->2 req=(1,2) arb=2]",
      "1500 transfer[2->2 req=(1,2) arb=2 tgt=(1,0)]",
      "2000 fail[0->2 req=(1,2) arb=0]",
      "2000 yield[2->2 req=(1,2) arb=2]",
      "2500 reply[1->0 req=(1,0) arb=1]",
      "3000 reply[2->0 req=(1,0) arb=2]",
      "3000 transfer[2->0 req=(1,0) arb=2 tgt=(1,2)]",
      "3000 release[0->0 req=(1,0) tgt=(1,2)]",
      "4000 release[0->1 req=(1,0)]",
      "4000 reply[0->2 req=(1,2) arb=0]",
      "4000 reply[0->2 req=(1,2) arb=2]",
      "4000 release[0->2 req=(1,0) tgt=(1,2)]",
      "4000 release[2->2 req=(1,2)]",
      "5000 release[2->0 req=(1,2)]",
  };
  ASSERT_EQ(trace.events().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    std::ostringstream os;
    os << trace.events()[i].at << ' ' << trace.events()[i].msg;
    EXPECT_EQ(os.str(), expected[i]) << "trace line " << i;
  }
}

// Wire-level yield semantics: the arbiter's re-grant after a yield is one
// bundle carrying reply + transfer (A.4's piggybacking).
TEST(CaoSinghalProtocol, YieldRegrantPiggybacksTransfer) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(1000), 1);
  net::TraceRecorder trace(net);
  auto quorums = quorum::make_quorum_system("grid", 3);
  std::vector<std::unique_ptr<CaoSinghalSite>> sites;
  for (SiteId i = 0; i < 3; ++i) {
    sites.push_back(std::make_unique<CaoSinghalSite>(i, net, *quorums));
    net.attach(i, sites.back().get());
  }
  sites[2]->request_cs(kLock0);
  sim.run_until(500);
  sites[0]->request_cs(kLock0);
  sim.run();
  // The re-grant from arbiter 2 to site 0 after site 2's yield: reply and
  // transfer delivered at the same instant (one wire bundle).
  auto regrant = trace.filter([](const net::TraceEvent& e) {
    return e.at == 3000 && e.msg.src == 2 && e.msg.dst == 0;
  });
  ASSERT_EQ(regrant.size(), 2u);
  EXPECT_EQ(regrant[0].msg.type, MsgType::kReply);
  EXPECT_EQ(regrant[1].msg.type, MsgType::kTransfer);
  EXPECT_EQ(regrant[1].msg.target, (ReqId{1, 2}));  // the yielder, queued
}

}  // namespace
}  // namespace dqme
