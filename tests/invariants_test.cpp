// The online InvariantChecker: clean protocol runs stay quiet (including
// across crashes and under the parallel sweep), scripted violations are
// detected, and the Table 1 analytic model agrees with measurement.
#include <gtest/gtest.h>

#include "net/network.h"
#include "harness/sweep.h"
#include "obs/invariants.h"
#include "obs/model.h"
#include "obs/span.h"
#include "test_util.h"

namespace dqme {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using mutex::Algo;

ExperimentConfig checked(ExperimentConfig cfg) {
  cfg.check_invariants = true;
  return cfg;
}

// ----------------------------------------------------- clean runs stay quiet

TEST(InvariantChecker, CleanOnCaoSinghalUnderSaturation) {
  const ExperimentResult r = testing::run_checked(
      checked(testing::heavy_cfg(Algo::kCaoSinghal, 25, 7)));
  EXPECT_EQ(r.invariant_violations, 0u)
      << (r.invariant_reports.empty() ? "" : r.invariant_reports.front());
  EXPECT_GT(r.invariant_checks, 1000u);
}

TEST(InvariantChecker, CleanOnMaekawa) {
  const ExperimentResult r = testing::run_checked(
      checked(testing::heavy_cfg(Algo::kMaekawa, 25, 7)));
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.invariant_checks, 1000u);
}

TEST(InvariantChecker, CleanOnBroadcastBaseline) {
  // Non-quorum algorithms get FIFO/conservation/liveness checks only; the
  // arbiter rules would false-positive on broadcast grants and must be off.
  const ExperimentResult r = testing::run_checked(
      checked(testing::heavy_cfg(Algo::kRicartAgrawala, 9, 7)));
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
}

TEST(InvariantChecker, CleanAcrossCrashRecovery) {
  ExperimentConfig cfg = checked(
      testing::heavy_cfg(Algo::kCaoSinghal, 15, 5, "tree"));
  cfg.options.fault_tolerant = true;
  cfg.measure = 1'000'000;
  cfg.crashes = {{300'000, 1}, {600'000, 9}};
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_EQ(r.invariant_violations, 0u)
      << (r.invariant_reports.empty() ? "" : r.invariant_reports.front());
}

TEST(InvariantChecker, DeterministicAcrossRepeatRuns) {
  const ExperimentConfig cfg =
      checked(testing::heavy_cfg(Algo::kCaoSinghal, 25, 11));
  const ExperimentResult a = harness::run_experiment(cfg);
  const ExperimentResult b = harness::run_experiment(cfg);
  EXPECT_EQ(a.invariant_checks, b.invariant_checks);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
}

TEST(InvariantChecker, SweepGatesOnViolationsAcrossWorkers) {
  // The parallel sweep runs checked configs on worker threads; a clean
  // matrix must come back clean through that path too.
  std::vector<ExperimentConfig> cfgs;
  for (uint64_t s = 1; s <= 4; ++s) {
    ExperimentConfig cfg = checked(testing::heavy_cfg(
        s % 2 ? Algo::kCaoSinghal : Algo::kMaekawa, 25, s));
    cfg.measure = 200'000;
    cfgs.push_back(cfg);
  }
  harness::SweepRunner sweep(harness::SweepOptions{.jobs = 2});
  const auto results = sweep.run(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  for (const ExperimentResult& r : results)
    EXPECT_EQ(r.invariant_violations, 0u);
}

// ------------------------------------------------------- scripted negatives

struct Script {
  sim::Simulator sim;
  net::Network net{sim, 4, std::make_unique<net::UniformDelay>(500, 1500), 1};
  obs::InvariantChecker checker;

  explicit Script(obs::InvariantOptions opts = {}) : checker(net, opts) {}

  net::Message wire(net::Message m, SiteId src, SiteId dst, Time sent_at) {
    m.src = src;
    m.dst = dst;
    m.sent_at = sent_at;
    m.span = span_of(m.req);
    return m;
  }
};

const ReqId kR1{10, 1};
const ReqId kR2{20, 2};

TEST(InvariantChecker, FlagsDoubleEntry) {
  Script s;
  s.checker.on_span_issue(1, kLock0,span_of(kR1), 0);
  s.checker.on_span_issue(2, kLock0,span_of(kR2), 0);
  s.checker.on_span_enter(1, kLock0,span_of(kR1), 10);
  s.checker.on_span_enter(2, kLock0,span_of(kR2), 11);
  EXPECT_EQ(s.checker.violations(), 1u);
  EXPECT_NE(s.checker.reports().front().find("safety"), std::string::npos);
}

// Different locks are independent critical sections: simultaneous entry on
// lock 0 and lock 3 is legal, and a genuine double entry on lock 3 is
// reported with the lock named in the violation text.
TEST(InvariantChecker, LocksAreIndependentCriticalSections) {
  Script s;
  s.checker.on_span_issue(1, kLock0, span_of(kR1), 0);
  s.checker.on_span_issue(2, LockId{3}, span_of(kR2), 0);
  s.checker.on_span_enter(1, kLock0, span_of(kR1), 10);
  s.checker.on_span_enter(2, LockId{3}, span_of(kR2), 11);
  EXPECT_EQ(s.checker.violations(), 0u);
  // Now a real collision inside lock 3.
  s.checker.on_span_issue(1, LockId{3}, span_of(kR1), 12);
  s.checker.on_span_enter(1, LockId{3}, span_of(kR1), 13);
  EXPECT_EQ(s.checker.violations(), 1u);
  EXPECT_NE(s.checker.reports().front().find("safety"), std::string::npos);
  EXPECT_NE(s.checker.reports().front().find("[lock 3]"), std::string::npos);
}

TEST(InvariantChecker, PermissionLedgerIsKeyedPerLock) {
  Script s;
  s.checker.on_span_issue(1, kLock0, span_of(kR1), 0);
  s.checker.on_span_issue(2, LockId{5}, span_of(kR2), 0);
  // Arbiter 0 grants site 1 on lock 0 and site 2 on lock 5 concurrently:
  // two locks, two independent permissions, no violation.
  s.checker.observe(s.wire(net::make_reply(0, kR1), 0, 1, 5), kLock0, 10);
  s.checker.observe(s.wire(net::make_reply(0, kR2), 0, 2, 6), LockId{5}, 11);
  EXPECT_EQ(s.checker.violations(), 0u)
      << s.checker.reports().front();
}

TEST(InvariantChecker, FlagsDoubleGrant) {
  Script s;
  s.checker.on_span_issue(1, kLock0,span_of(kR1), 0);
  s.checker.on_span_issue(2, kLock0,span_of(kR2), 0);
  s.checker.observe(s.wire(net::make_reply(0, kR1), 0, 1, 5), 10);
  EXPECT_EQ(s.checker.violations(), 0u);
  s.checker.observe(s.wire(net::make_reply(0, kR2), 0, 2, 6), 11);
  EXPECT_EQ(s.checker.violations(), 1u);
  EXPECT_NE(s.checker.reports().front().find("permission"),
            std::string::npos);
}

TEST(InvariantChecker, FlagsForwardWithoutHolding) {
  Script s;
  s.checker.on_span_issue(2, kLock0,span_of(kR2), 0);
  // Site 3 proxies arbiter 0's reply without ever holding its permission.
  s.checker.observe(s.wire(net::make_reply(0, kR2), 3, 2, 5), 10);
  EXPECT_EQ(s.checker.violations(), 1u);
  EXPECT_NE(s.checker.reports().front().find("forwarded"),
            std::string::npos);
}

TEST(InvariantChecker, FlagsLostTransferAtFinish) {
  Script s;
  s.checker.on_span_issue(1, kLock0,span_of(kR1), 0);
  s.checker.on_span_issue(2, kLock0,span_of(kR2), 0);
  s.checker.observe(s.wire(net::make_reply(0, kR1), 0, 1, 5), 10);
  s.checker.on_span_enter(1, kLock0,span_of(kR1), 12);
  s.checker.observe(s.wire(net::make_transfer(kR2, 0, kR1), 0, 1, 14), 18);
  s.checker.on_span_exit(1, kLock0,span_of(kR1), 25);  // never forwards or releases
  EXPECT_EQ(s.checker.violations(), 0u);
  s.checker.finish(60);
  EXPECT_EQ(s.checker.violations(), 1u);
  EXPECT_NE(s.checker.reports().front().find("never discharged"),
            std::string::npos);
}

TEST(InvariantChecker, TransferDischargedByProxyReplyIsClean) {
  Script s;
  s.checker.on_span_issue(1, kLock0,span_of(kR1), 0);
  s.checker.observe(s.wire(net::make_reply(0, kR1), 0, 1, 5), 10);
  s.checker.on_span_enter(1, kLock0,span_of(kR1), 12);
  s.checker.on_span_issue(2, kLock0,span_of(kR2), 15);
  s.checker.observe(s.wire(net::make_transfer(kR2, 0, kR1), 0, 1, 16), 20);
  s.checker.on_span_exit(1, kLock0,span_of(kR1), 25);
  s.checker.observe(s.wire(net::make_release(kR1, kR2), 1, 0, 25), 28);
  s.checker.observe(s.wire(net::make_reply(0, kR2), 1, 2, 25), 30);
  s.checker.on_span_enter(2, kLock0,span_of(kR2), 31);
  s.checker.on_span_exit(2, kLock0,span_of(kR2), 40);
  s.checker.observe(s.wire(net::make_release(kR2, ReqId{}), 2, 0, 40), 45);
  s.checker.finish(50);
  EXPECT_EQ(s.checker.violations(), 0u)
      << s.checker.reports().front();
  EXPECT_GT(s.checker.checks(), 0u);
}

TEST(InvariantChecker, FlagsFifoInversion) {
  Script s;
  s.checker.observe(s.wire(net::make_request(kR1), 1, 0, 100), 110);
  s.checker.observe(s.wire(net::make_request(kR1), 1, 0, 50), 115);
  EXPECT_EQ(s.checker.violations(), 1u);
  EXPECT_NE(s.checker.reports().front().find("fifo"), std::string::npos);
}

TEST(InvariantChecker, FlagsStalledRequestAtFinish) {
  obs::InvariantOptions opts;
  opts.liveness_bound = 1000;
  Script s(opts);
  s.checker.on_span_issue(1, kLock0,span_of(kR1), 0);
  s.checker.finish(5000);
  EXPECT_EQ(s.checker.violations(), 1u);
  EXPECT_NE(s.checker.reports().front().find("liveness"), std::string::npos);
}

TEST(InvariantChecker, CrashedOwnersStallIsWrittenOff) {
  obs::InvariantOptions opts;
  opts.liveness_bound = 1000;
  Script s(opts);
  s.checker.on_span_issue(1, kLock0,span_of(kR1), 0);
  s.checker.on_crash(1);
  s.checker.finish(5000);
  EXPECT_EQ(s.checker.violations(), 0u);
}

// Regression for the crash-bench false positive: a grant delivered after
// its requester abandoned the attempt (§6 recovery reissued on a new span)
// is stale-dropped by the site and must not corrupt the holder ledger.
TEST(InvariantChecker, StaleGrantAfterRecoveryIsNotAViolation) {
  Script s;
  const ReqId r1b{30, 1};  // site 1's reissued request
  s.checker.on_span_issue(1, kLock0,span_of(kR1), 0);
  s.checker.on_span_issue(2, kLock0,span_of(kR2), 0);
  // Site 1 recovers before the arbiter's grant (still in flight) arrives.
  s.checker.on_span_issue(1, kLock0,span_of(r1b), 8);
  // Its recovery release reaches arbiter 0, which grants site 2 instead.
  s.checker.observe(s.wire(net::make_release(kR1, ReqId{}), 1, 0, 8), 12);
  // The stale grant for the abandoned attempt lands now: site 1 drops it.
  s.checker.observe(s.wire(net::make_reply(0, kR1), 0, 1, 5), 14);
  // The arbiter's fresh grant to site 2 must read as legal.
  s.checker.observe(s.wire(net::make_reply(0, kR2), 0, 2, 12), 16);
  EXPECT_EQ(s.checker.violations(), 0u)
      << s.checker.reports().front();
}

// ------------------------------------------------------------ model gauges

TEST(Model, Table1FormsForProposedAndBaselines) {
  const obs::ModelPrediction cs = obs::predict(Algo::kCaoSinghal, 25, 9);
  ASSERT_TRUE(cs.has_msgs);
  EXPECT_DOUBLE_EQ(cs.msgs_lo, 3 * 8.0);
  EXPECT_DOUBLE_EQ(cs.msgs_hi, 6 * 8.0);
  ASSERT_TRUE(cs.has_delay);
  EXPECT_DOUBLE_EQ(cs.sync_delay_t, 1.0);

  const obs::ModelPrediction ra = obs::predict(Algo::kRicartAgrawala, 25, 0);
  EXPECT_DOUBLE_EQ(ra.msgs_lo, 2 * 24.0);
  EXPECT_DOUBLE_EQ(ra.sync_delay_t, 1.0);

  EXPECT_FALSE(obs::predict(Algo::kRaymond, 25, 0).has_delay);
}

TEST(Model, MixedDelayAndDivergenceHelpers) {
  EXPECT_DOUBLE_EQ(obs::mixed_sync_delay(3, 1, 1.0), (3 + 2.0) / 4);
  EXPECT_DOUBLE_EQ(obs::mixed_sync_delay(0, 0, 1.5), 1.5);
  EXPECT_NEAR(obs::divergence_point(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(obs::divergence_band(5, 4, 6), 0.0);
  EXPECT_DOUBLE_EQ(obs::divergence_band(8, 4, 6), 2.0 / 6);
}

TEST(Model, RunEmitsDivergenceGaugesWithinTolerance) {
  // Constant delay, saturated: the regime where Table 1 is exact. This is
  // the same gate `dqme_check --preset smoke` applies in CI.
  ExperimentConfig cfg = checked(testing::heavy_cfg(Algo::kCaoSinghal, 25, 3));
  cfg.delay_kind = ExperimentConfig::DelayKind::kConstant;
  const ExperimentResult r = harness::run_experiment(cfg);
  const double* div = r.registry.find_gauge("model_divergence_sync_delay");
  ASSERT_NE(div, nullptr);
  EXPECT_LT(*div, 0.05);
  const double* msgs = r.registry.find_gauge("model_divergence_msgs");
  ASSERT_NE(msgs, nullptr);
  EXPECT_LT(*msgs, 0.05);
}

}  // namespace
}  // namespace dqme
