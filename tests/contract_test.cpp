// Contract (negative) tests: the library's precondition checks must fire
// loudly on misuse instead of corrupting protocol state. Every DQME_CHECK
// on a public boundary gets exercised here.
#include <gtest/gtest.h>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "core/failure_detector.h"
#include "harness/experiment.h"
#include "net/trace.h"
#include "quorum/factory.h"

namespace dqme {
namespace {

struct NullSite final : net::NetSite {
  void on_message(const net::Message&, LockId) override {}
};

TEST(Contracts, NetworkRejectsOutOfRangeEndpoints) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(10), 1);
  EXPECT_THROW(net.send(0, 3, net::make_request(ReqId{1, 0})), CheckError);
  EXPECT_THROW(net.send(-1, 1, net::make_request(ReqId{1, 0})), CheckError);
  NullSite s;
  EXPECT_THROW(net.attach(5, &s), CheckError);
  EXPECT_THROW(net.crash(9), CheckError);
}

TEST(Contracts, NetworkRejectsEmptyBundle) {
  sim::Simulator sim;
  net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(10), 1);
  EXPECT_THROW(net.send_bundle(0, 1, {}), CheckError);
}

TEST(Contracts, DeliveryWithoutReceiverIsAnError) {
  sim::Simulator sim;
  net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(10), 1);
  net.send(0, 1, net::make_request(ReqId{1, 0}));  // nothing attached at 1
  EXPECT_THROW(sim.run(), CheckError);
}

TEST(Contracts, DelayModelsRejectDegenerateRanges) {
  EXPECT_THROW(net::ConstantDelay d(0), CheckError);
  EXPECT_THROW(net::UniformDelay d(10, 5), CheckError);
  EXPECT_THROW(net::ShiftedExponentialDelay d(10, 5, 100), CheckError);
  EXPECT_THROW(net::ClusteredDelay d({0, 1}, 100, 50), CheckError);
  EXPECT_THROW(net::ClusteredDelay d({}, 10, 100), CheckError);
}

TEST(Contracts, QuorumConstructorsRejectBadSizes) {
  EXPECT_THROW(quorum::make_quorum_system("grid", 0), CheckError);
  EXPECT_THROW(quorum::make_quorum_system("fpp", 12), CheckError);
  EXPECT_THROW(quorum::make_quorum_system("tree", 10), CheckError);
  EXPECT_THROW(quorum::make_quorum_system("hqc", 10), CheckError);
  EXPECT_THROW(quorum::make_quorum_system("gridset:5", 12), CheckError);
}

TEST(Contracts, QuorumQueriesRejectOutOfRangeSites) {
  auto qs = quorum::make_quorum_system("grid", 9);
  EXPECT_THROW(qs->quorum_for(9), CheckError);
  EXPECT_THROW(qs->quorum_for(-1), CheckError);
  std::vector<bool> wrong_size(5, true);
  EXPECT_THROW(qs->quorum_for_alive(0, wrong_size), CheckError);
}

TEST(Contracts, SiteConstructionRequiresMatchingSizes) {
  sim::Simulator sim;
  net::Network net(sim, 9, std::make_unique<net::ConstantDelay>(10), 1);
  auto small = quorum::make_quorum_system("grid", 4);  // wrong N
  EXPECT_THROW(core::CaoSinghalSite s(0, net, *small), CheckError);
}

TEST(Contracts, QuorumAlgosRequireAQuorumSystem) {
  sim::Simulator sim;
  net::Network net(sim, 4, std::make_unique<net::ConstantDelay>(10), 1);
  EXPECT_THROW(
      mutex::make_site(mutex::Algo::kCaoSinghal, 0, net, nullptr),
      CheckError);
  EXPECT_THROW(mutex::make_site(mutex::Algo::kMaekawa, 0, net, nullptr),
               CheckError);
}

TEST(Contracts, FactoryRejectsNonPositiveLockCounts) {
  sim::Simulator sim;
  net::Network net(sim, 9, std::make_unique<net::ConstantDelay>(10), 1);
  auto qs = quorum::make_quorum_system("grid", 9);
  mutex::AlgoOptions opts;
  opts.num_locks = 0;
  EXPECT_THROW(
      mutex::make_site(mutex::Algo::kCaoSinghal, 0, net, qs.get(), opts),
      CheckError);
  opts.num_locks = -3;
  EXPECT_THROW(
      mutex::make_site(mutex::Algo::kLamport, 0, net, nullptr, opts),
      CheckError);
}

TEST(Contracts, KeyedApiRejectsOutOfRangeLockIds) {
  sim::Simulator sim;
  net::Network net(sim, 9, std::make_unique<net::ConstantDelay>(10), 1);
  auto qs = quorum::make_quorum_system("grid", 9);
  mutex::AlgoOptions opts;
  opts.num_locks = 4;
  auto site = mutex::make_site(mutex::Algo::kCaoSinghal, 0, net, qs.get(),
                               opts);
  net.attach(0, site.get());
  EXPECT_THROW(site->request_cs(LockId{4}), CheckError);
  EXPECT_THROW(site->request_cs(kNoLock), CheckError);
  EXPECT_THROW(site->release_cs(LockId{7}), CheckError);
  site->request_cs(LockId{3});  // in range: fine
}

TEST(Contracts, UnknownAlgorithmNameIsRejected) {
  EXPECT_THROW(mutex::algo_from_string("paxos"), CheckError);
}

TEST(Contracts, TraceRecorderRejectsZeroCapacity) {
  sim::Simulator sim;
  net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(10), 1);
  EXPECT_THROW(net::TraceRecorder t(net, 0), CheckError);
}

TEST(Contracts, FailureDetectorValidatesVictims) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(10), 1);
  core::FailureDetector fd(net, 100, 0, 1);
  EXPECT_THROW(fd.crash(7), CheckError);
}

TEST(Contracts, ReplicateRequiresAtLeastOneRun) {
  harness::ExperimentConfig cfg;
  cfg.n = 4;
  cfg.warmup = 1000;
  cfg.measure = 1000;
  EXPECT_THROW(
      harness::replicate(cfg, 0, [](const harness::ExperimentResult&) {
        return 0.0;
      }),
      CheckError);
}

TEST(Contracts, ExperimentRejectsOutOfRangeCrashVictim) {
  harness::ExperimentConfig cfg;
  cfg.n = 4;
  cfg.crashes.push_back({100, 9});
  EXPECT_THROW(harness::run_experiment(cfg), CheckError);
}

}  // namespace
}  // namespace dqme
