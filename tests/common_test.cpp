// Unit tests for common/: request identities, priority order, RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/timestamp.h"

namespace dqme {
namespace {

TEST(ReqId, DefaultIsInvalidSentinel) {
  ReqId r;
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r, kNoRequest);
}

TEST(ReqId, SmallerSequenceNumberWins) {
  ReqId a{1, 5}, b{2, 0};
  EXPECT_LT(a, b);  // priority rule 1 (§3.1)
}

TEST(ReqId, TiesBrokenBySmallerSiteNumber) {
  ReqId a{7, 2}, b{7, 3};
  EXPECT_LT(a, b);  // priority rule 2 (§3.1)
}

TEST(ReqId, SentinelComparesBelowEveryRealRequest) {
  // "(max,max)" must have lower priority than any request (paper §3.1).
  ReqId real{std::numeric_limits<SeqNum>::max() - 1, 1'000'000};
  EXPECT_LT(real, kNoRequest);
}

TEST(ReqId, EqualityIsFieldwise) {
  EXPECT_EQ((ReqId{3, 4}), (ReqId{3, 4}));
  EXPECT_NE((ReqId{3, 4}), (ReqId{3, 5}));
  EXPECT_NE((ReqId{3, 4}), (ReqId{4, 4}));
}

TEST(ReqId, OrderingIsTotalOnSample) {
  std::vector<ReqId> sample;
  for (SeqNum s = 1; s <= 5; ++s)
    for (SiteId i = 0; i < 5; ++i) sample.push_back({s, i});
  std::set<ReqId> ordered(sample.begin(), sample.end());
  EXPECT_EQ(ordered.size(), sample.size());
  EXPECT_EQ(*ordered.begin(), (ReqId{1, 0}));  // highest priority overall
}

TEST(Check, ThrowsWithDiagnosticMessage) {
  try {
    DQME_CHECK_MSG(1 == 2, "math broke at " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke at 42"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkIsDeterministicAcrossReplays) {
  Rng parent(9);
  Rng child = parent.fork();
  Rng parent2(9);
  Rng child2 = parent2.fork();
  (void)parent.next_u64();  // consuming the parent must not affect child
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(8, 7), CheckError);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / kDraws, 250.0, 10.0);
}

TEST(Rng, ExponentialTimeIsAtLeastOneTick) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential_time(2), 1);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(s.size(), 7u);
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(Rng, SampleWholePopulationIsPermutation) {
  Rng rng(23);
  auto s = rng.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace dqme
