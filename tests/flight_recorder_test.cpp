// Tests for the black-box flight recorder (obs/flight_recorder.h): the
// bounded ring wraps and keeps the newest history, the checker wiring
// auto-dumps on the first violation with the violating event at the dump's
// tail, and the Network attach mode records deliveries with payload
// handles severed.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "net/network.h"
#include "net/message.h"
#include "obs/flight_recorder.h"
#include "obs/invariants.h"
#include "obs/span.h"

namespace dqme::obs {
namespace {

net::Message scripted(net::MsgType type, ReqId req, SiteId src, SiteId dst,
                      Time sent_at) {
  net::Message m;
  m.type = type;
  m.req = req;
  m.src = src;
  m.dst = dst;
  m.sent_at = sent_at;
  m.span = span_of(req);
  return m;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// The dump's last trace-event line (the otherData footer has no "ph").
std::string last_event_line(const std::string& text) {
  std::istringstream in(text);
  std::string line, last;
  while (std::getline(in, line))
    if (line.find("\"ph\":") != std::string::npos) last = line;
  return last;
}

TEST(FlightRecorder, RingWrapsKeepingNewestOldestFirst) {
  FlightRecorder fr(4);
  EXPECT_EQ(fr.capacity(), 4u);
  for (Time t = 0; t < 7; ++t)
    fr.record_message(
        scripted(net::MsgType::kRequest,
                 ReqId{static_cast<SeqNum>(t + 1), 1}, 1, 0, t),
        kLock0, t);
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.recorded(), 7u);
  const auto events = fr.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest three fell off the ring; survivors come back oldest-first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].at, static_cast<Time>(i + 3));
    EXPECT_EQ(events[i].kind, FlightRecorder::Kind::kDeliver);
  }
  EXPECT_THROW(FlightRecorder(0), CheckError);
}

TEST(FlightRecorder, RecordMessageSeversPayloadHandle) {
  // Payload handles die at delivery (the Network recycles the pooled slot),
  // so a retained ring copy must not carry one.
  FlightRecorder fr(4);
  net::Message m = scripted(net::MsgType::kToken, ReqId{1, 0}, 0, 1, 5);
  m.payload = 42;
  fr.record_message(m, kLock0, 9);
  const auto events = fr.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].msg.payload, net::kNoPayload);
  EXPECT_EQ(events[0].site, 1);  // delivery is filed on the receiver's lane
}

TEST(FlightRecorder, DumpToBadPathFailsSoftly) {
  FlightRecorder fr(4);
  fr.record_crash(0, 1);
  EXPECT_FALSE(fr.dump_to("/nonexistent-dir/flightrec.json"));
  // Auto-dump to an unopenable path must not throw either.
  fr.set_dump_path("/nonexistent-dir/flightrec.json");
  EXPECT_NO_THROW(fr.record_violation("synthetic", 2));
  EXPECT_TRUE(fr.dumped());
}

// Checker-fed black box against a seeded negative (the dqme_check
// --selftest double-entry script): the first violation auto-dumps, and the
// dump's tail IS the violating event, preceded by the span edges that led
// there — the acceptance shape for every selftest negative.
TEST(FlightRecorder, CheckerViolationAutoDumpsWithViolationAtTail) {
  const std::string path =
      testing::TempDir() + "flightrec_violation_test.json";
  std::remove(path.c_str());

  sim::Simulator sim;
  net::Network net(sim, 4, std::make_unique<net::ConstantDelay>(100), 1);
  obs::InvariantChecker ck(net, {});
  FlightRecorder fr(8);
  fr.set_dump_path(path);
  fr.set_label("flight_recorder_test");
  ck.set_flight_recorder(&fr);

  const ReqId r1{10, 1}, r2{20, 2};
  ck.on_span_issue(1, kLock0, span_of(r1), 0);
  ck.on_span_issue(2, kLock0, span_of(r2), 0);
  ck.on_span_enter(1, kLock0, span_of(r1), 10);
  EXPECT_FALSE(fr.dumped());
  ck.on_span_enter(2, kLock0, span_of(r2), 11);  // overlap -> violation
  EXPECT_TRUE(fr.dumped());
  EXPECT_GE(ck.violations(), 1u);

  const std::string dump = read_file(path);
  ASSERT_FALSE(dump.empty());
  const std::string tail = last_event_line(dump);
  EXPECT_NE(tail.find("\"violation\""), std::string::npos) << tail;
  EXPECT_NE(tail.find("entered the CS"), std::string::npos) << tail;
  // The ring history before the tail holds the span edges that caused it.
  EXPECT_NE(dump.find("\"enter\""), std::string::npos);
  EXPECT_NE(dump.find("thread_name"), std::string::npos);

  // First violation only: later violations do not rewrite the black box.
  ck.on_span_enter(3, kLock0, span_of(ReqId{30, 3}), 12);
  EXPECT_EQ(read_file(path), dump);
  std::remove(path.c_str());
}

TEST(FlightRecorder, AttachRecordsDeliveriesAndCrashes) {
  struct Sink final : net::NetSite {
    void on_message(const net::Message&, LockId) override {}
  };
  sim::Simulator sim;
  net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(10), 1);
  Sink a, b;
  net.attach(0, &a);
  net.attach(1, &b);
  FlightRecorder fr(8);
  fr.attach(net);
  net.send(0, 1, net::make_request(ReqId{1, 0}), LockId{5});
  sim.run();
  net.crash(1);
  const auto events = fr.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightRecorder::Kind::kDeliver);
  EXPECT_EQ(events[0].at, 10);
  EXPECT_EQ(events[0].lock, 5);
  EXPECT_EQ(events[1].kind, FlightRecorder::Kind::kCrash);
  EXPECT_EQ(events[1].site, 1);
}

}  // namespace
}  // namespace dqme::obs
