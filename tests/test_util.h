// Shared helpers for protocol tests: run a full experiment and assert the
// three theorems (mutual exclusion, deadlock freedom, starvation freedom)
// plus return the metrics for further assertions.
#pragma once

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace dqme::testing {

// Asserts safety + liveness on the result and returns it for metric checks.
inline harness::ExperimentResult run_checked(
    const harness::ExperimentConfig& cfg) {
  harness::ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u)
      << "mutual exclusion violated: algo="
      << mutex::to_string(cfg.algo) << " n=" << cfg.n << " seed=" << cfg.seed;
  EXPECT_TRUE(r.drained_clean)
      << "requests left outstanding (deadlock/starvation): algo="
      << mutex::to_string(cfg.algo) << " n=" << cfg.n << " seed=" << cfg.seed
      << " issued=" << r.demands_issued << " completed="
      << r.demands_completed << " aborted=" << r.demands_aborted;
  return r;
}

// A compact heavy-load (closed loop) configuration for protocol sweeps.
inline harness::ExperimentConfig heavy_cfg(mutex::Algo algo, int n,
                                           uint64_t seed,
                                           const std::string& quorum = "grid") {
  harness::ExperimentConfig cfg;
  cfg.algo = algo;
  cfg.n = n;
  cfg.quorum = quorum;
  cfg.mean_delay = 1000;
  cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
  cfg.workload.cs_duration = 100;
  cfg.warmup = 100'000;
  cfg.measure = 500'000;
  cfg.seed = seed;
  return cfg;
}

// A light-load (open loop) configuration: contention is rare.
inline harness::ExperimentConfig light_cfg(mutex::Algo algo, int n,
                                           uint64_t seed,
                                           const std::string& quorum = "grid") {
  harness::ExperimentConfig cfg = heavy_cfg(algo, n, seed, quorum);
  cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
  // ~1 demand per site per 100T: back-to-back conflicts are rare.
  cfg.workload.arrival_rate = 1.0 / (100.0 * 1000.0);
  cfg.measure = 2'000'000;
  return cfg;
}

}  // namespace dqme::testing
