// Causal span tests — the observable version of the paper's Table 1.
//
// Two sites on a 3x3 grid (2 and 7, overlapping at arbiters {1, 8}) ping-
// pong the critical section under constant delay T. From the recorded span
// edges alone we assert the paper's headline: the proposed algorithm hands
// the CS off in exactly 1·T — via a proxy-forwarded reply from the exiting
// holder — while Maekawa's release→arbiter→reply relay takes exactly 2·T,
// under the same request schedule.
#include <gtest/gtest.h>

#include <memory>

#include "mutex/factory.h"
#include "net/network.h"
#include "obs/span.h"
#include "quorum/factory.h"
#include "sim/simulator.h"

namespace dqme::obs {
namespace {

constexpr Time kT = 1000;  // constant message delay
// CS duration. Held LONGER than one delay on purpose: the paper's 1·T
// handoff needs the exiting holder to already know who is next, i.e. the
// arbiter's transfer must arrive before the exit. In this closed loop the
// transfer lands E + 2T after the previous entry while the exit happens at
// E + T + E, so E >= T makes every contended handoff proxy-eligible (with
// E < T the direction whose transfer is still in flight degrades to the
// 2·T arbiter relay — observable, but not the invariant under test).
constexpr Time kE = 2 * kT;

struct Rig {
  explicit Rig(mutex::Algo algo, int n = 9)
      : net(sim, n, std::make_unique<net::ConstantDelay>(kT), 1),
        spans(net),
        quorums(quorum::make_quorum_system("grid", n)) {
    for (SiteId i = 0; i < n; ++i) {
      sites.push_back(
          mutex::make_site(algo, i, net, quorums.get(), mutex::AlgoOptions{}));
      net.attach(i, sites.back().get());
      spans.attach(*sites.back());
    }
  }

  // Closed loop: hold for kE, release, immediately re-request, `rounds`
  // times. Both drivers start at t=0, so the two schedules are identical
  // across algorithms (same sites, same instants, same CS durations).
  void drive(SiteId id, int rounds) {
    auto* s = sites[static_cast<size_t>(id)].get();
    auto remaining = std::make_shared<int>(rounds);
    s->on_enter = [this, s, remaining](SiteId, LockId) {
      sim.schedule_after(kE, [this, s, remaining] {
        s->release_cs(kLock0);
        if (--*remaining > 0) s->request_cs(kLock0);
      });
    };
    s->request_cs(kLock0);
  }

  sim::Simulator sim;
  net::Network net;
  SpanRecorder spans;
  std::unique_ptr<quorum::QuorumSystem> quorums;
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
};

std::vector<Handoff> run_pingpong(mutex::Algo algo, int rounds = 6) {
  Rig rig(algo);
  rig.drive(2, rounds);
  rig.drive(7, rounds);
  rig.sim.run();
  // Both sites finished every round: 2 * rounds entries.
  size_t enters = 0;
  for (const SpanEvent& e : rig.spans.events())
    if (e.edge == SpanEdge::kEnter) ++enters;
  EXPECT_EQ(enters, static_cast<size_t>(2 * rounds));
  return rig.spans.contended_handoffs();
}

TEST(SpanHandoff, CaoSinghalContendedHandoffIsExactlyOneT) {
  const auto handoffs = run_pingpong(mutex::Algo::kCaoSinghal);
  ASSERT_GE(handoffs.size(), 8u);
  for (const Handoff& h : handoffs) {
    EXPECT_EQ(h.enter_at - h.exit_at, kT)
        << "handoff " << h.from << "->" << h.to << " at " << h.exit_at;
    EXPECT_TRUE(h.proxied) << "handoff at " << h.exit_at
                           << " was not proxy-forwarded";
    EXPECT_NE(h.from, h.to);
  }
}

TEST(SpanHandoff, MaekawaContendedHandoffIsExactlyTwoT) {
  const auto handoffs = run_pingpong(mutex::Algo::kMaekawa);
  ASSERT_GE(handoffs.size(), 8u);
  for (const Handoff& h : handoffs) {
    EXPECT_EQ(h.enter_at - h.exit_at, 2 * kT)
        << "handoff " << h.from << "->" << h.to << " at " << h.exit_at;
    EXPECT_FALSE(h.proxied);
  }
}

TEST(SpanHandoff, SameScheduleDelayRatioIsTwo) {
  const auto cao = run_pingpong(mutex::Algo::kCaoSinghal);
  const auto mae = run_pingpong(mutex::Algo::kMaekawa);
  ASSERT_FALSE(cao.empty());
  ASSERT_FALSE(mae.empty());
  auto mean_gap = [](const std::vector<Handoff>& hs) {
    double sum = 0;
    for (const Handoff& h : hs)
      sum += static_cast<double>(h.enter_at - h.exit_at);
    return sum / static_cast<double>(hs.size());
  };
  EXPECT_DOUBLE_EQ(mean_gap(mae) / mean_gap(cao), 2.0);
}

// The causal decomposition behind the numbers. Proposed: the entering
// span's grant is a kProxyGrant that LEFT THE EXITING HOLDER at the exit
// instant and arrived one delay later — no arbiter on the critical path.
TEST(SpanEdges, ProxyGrantLeavesTheExitingHolderAtExitTime) {
  Rig rig(mutex::Algo::kCaoSinghal);
  rig.drive(2, 4);
  rig.drive(7, 4);
  rig.sim.run();
  const auto handoffs = rig.spans.contended_handoffs();
  ASSERT_FALSE(handoffs.empty());
  for (const Handoff& h : handoffs) {
    bool found = false;
    for (const SpanEvent& e : rig.spans.span(h.span)) {
      if (e.edge == SpanEdge::kProxyGrant && e.from == h.from &&
          e.sent_at == h.exit_at && e.at == h.exit_at + kT) {
        found = true;
        EXPECT_NE(e.arbiter, e.from);  // forwarded on the arbiter's behalf
      }
    }
    EXPECT_TRUE(found) << "no proxy grant from site " << h.from
                       << " sent at exit " << h.exit_at;
  }
}

// Maekawa: the same handoff decomposes into release (exiter -> arbiter,
// one T) followed by grant (arbiter -> enterer, another T) — the serial
// two-hop relay the paper's §5.2 comparison charges 2T for.
TEST(SpanEdges, MaekawaHandoffIsReleaseThenGrantThroughTheArbiter) {
  Rig rig(mutex::Algo::kMaekawa);
  rig.drive(2, 4);
  rig.drive(7, 4);
  rig.sim.run();
  const auto handoffs = rig.spans.contended_handoffs();
  ASSERT_FALSE(handoffs.empty());
  for (const Handoff& h : handoffs) {
    // Hop 2: a grant from an arbiter, sent one T after exit, arriving at
    // the enterer at exactly the entry instant.
    SiteId arbiter = kNoSite;
    for (const SpanEvent& e : rig.spans.span(h.span))
      if (e.edge == SpanEdge::kGrant && e.sent_at == h.exit_at + kT &&
          e.at == h.enter_at)
        arbiter = e.from;
    ASSERT_NE(arbiter, kNoSite)
        << "no arbiter grant completing the entry at " << h.enter_at;
    // Hop 1: the exiter's release reaching that same arbiter at exit + T.
    bool release_found = false;
    for (const SpanEvent& e : rig.spans.events())
      if (e.edge == SpanEdge::kRelease && e.from == h.from &&
          e.to == arbiter && e.sent_at == h.exit_at &&
          e.at == h.exit_at + kT)
        release_found = true;
    EXPECT_TRUE(release_found)
        << "no release from " << h.from << " to arbiter " << arbiter
        << " sent at exit " << h.exit_at;
  }
}

TEST(SpanEdges, SpanThreadsFromIssueToExitInCausalOrder) {
  Rig rig(mutex::Algo::kCaoSinghal);
  rig.drive(2, 2);
  rig.drive(7, 2);
  rig.sim.run();
  const auto handoffs = rig.spans.contended_handoffs();
  ASSERT_FALSE(handoffs.empty());
  const auto story = rig.spans.span(handoffs.front().span);
  ASSERT_GE(story.size(), 4u);
  EXPECT_EQ(story.front().edge, SpanEdge::kIssue);
  // Wire edges in the story carry the one-delay flight time. Self-sends
  // (a site is a member of its own quorum) are delivered locally at the
  // send instant and carry none.
  bool saw_request = false;
  for (const SpanEvent& e : story)
    if (e.edge == SpanEdge::kRequest && e.from != e.to) {
      saw_request = true;
      EXPECT_EQ(e.at - e.sent_at, kT);
    }
  EXPECT_TRUE(saw_request);
  // enter precedes exit, and both belong to the same site.
  Time enter_at = -1, exit_at = -1;
  for (const SpanEvent& e : story) {
    if (e.edge == SpanEdge::kEnter) enter_at = e.at;
    if (e.edge == SpanEdge::kExit) exit_at = e.at;
  }
  ASSERT_GE(enter_at, 0);
  ASSERT_GE(exit_at, 0);
  EXPECT_EQ(exit_at - enter_at, kE);
}

TEST(SpanIds, FormatAndParseRoundTrip) {
  const ReqId r{1234567, 42};
  const SpanId s = span_of(r);
  EXPECT_EQ(span_site(s), 42);
  EXPECT_EQ(span_seq(s), 1234567u);
  EXPECT_EQ(format_span(s), "42:1234567");
  EXPECT_EQ(parse_span("42:1234567"), s);
  EXPECT_EQ(parse_span(std::to_string(s)), s);
  EXPECT_EQ(parse_span("garbage"), kNoSpan);
  EXPECT_EQ(parse_span(":"), kNoSpan);
  EXPECT_EQ(parse_span(""), kNoSpan);
  EXPECT_EQ(span_of(ReqId{}), kNoSpan);
  EXPECT_EQ(format_span(kNoSpan), "-");
}

TEST(SpanIds, DistinctRequestsGetDistinctSpans) {
  // Site field is offset by one so site 0's spans are never kNoSpan, and
  // seq strictly increases per site — spans are unique per attempt.
  EXPECT_NE(span_of(ReqId{1, 0}), kNoSpan);
  EXPECT_NE(span_of(ReqId{1, 0}), span_of(ReqId{2, 0}));
  EXPECT_NE(span_of(ReqId{1, 0}), span_of(ReqId{1, 1}));
}

}  // namespace
}  // namespace dqme::obs
