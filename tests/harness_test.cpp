// Unit tests for the measurement layer itself: Metrics arithmetic, the
// workload drivers' accounting, and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "net/network.h"
#include "harness/experiment.h"
#include "harness/metrics.h"
#include "quorum/factory.h"
#include "harness/table.h"

namespace dqme::harness {
namespace {

struct NullSite final : public net::NetSite {
  void on_message(const net::Message&, LockId) override {}
};

struct MetricsRig {
  MetricsRig()
      : net(sim, 2, std::make_unique<net::ConstantDelay>(10), 1),
        metrics(net) {
    net.attach(0, &sink);
    net.attach(1, &sink);
  }
  sim::Simulator sim;
  net::Network net;
  NullSite sink;
  Metrics metrics;
};

TEST(Metrics, CountsCompletionsAndWaitingTimes) {
  MetricsRig rig;
  rig.metrics.reset(0);
  // Site 0: demanded 0, requested 10, entered 100, exited 150.
  rig.metrics.on_enter(0, kLock0,100, 0, 10);
  rig.metrics.on_exit(0, kLock0,150);
  // Site 1: demanded 50, requested 50, entered 200, exited 230.
  rig.metrics.on_enter(1, kLock0,200, 50, 50);
  rig.metrics.on_exit(1, kLock0,230);
  Summary s = rig.metrics.summarize(1000);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.violations, 0u);
  EXPECT_DOUBLE_EQ(s.waiting_mean, (90 + 150) / 2.0);
  EXPECT_DOUBLE_EQ(s.waiting_max, 150.0);
  EXPECT_DOUBLE_EQ(s.queueing_mean, (100 + 150) / 2.0);
  EXPECT_DOUBLE_EQ(s.response_mean, (150 + 180) / 2.0);
  EXPECT_DOUBLE_EQ(s.throughput, 2.0 / 1000.0);
}

TEST(Metrics, SynchronizationGapMeasuredBetweenConsecutiveCs) {
  MetricsRig rig;
  rig.metrics.reset(0);
  rig.metrics.on_enter(0, kLock0,100, 0, 0);
  rig.metrics.on_exit(0, kLock0,150);
  rig.metrics.on_enter(1, kLock0,180, 120, 120);  // requested < previous exit
  rig.metrics.on_exit(1, kLock0,200);
  rig.metrics.on_enter(0, kLock0,500, 400, 400);  // requested after exit: idle gap
  rig.metrics.on_exit(0, kLock0,510);
  Summary s = rig.metrics.summarize(1000);
  EXPECT_DOUBLE_EQ(s.sync_delay_mean, (30 + 300) / 2.0);
  EXPECT_EQ(s.contended_gaps, 1u);
  EXPECT_DOUBLE_EQ(s.sync_delay_contended, 30.0);
}

TEST(Metrics, OverlappingCsCountsViolations) {
  MetricsRig rig;
  rig.metrics.reset(0);
  rig.metrics.on_enter(0, kLock0,100, 0, 0);
  rig.metrics.on_enter(1, kLock0,110, 0, 0);  // overlap!
  Summary s = rig.metrics.summarize(200);
  EXPECT_EQ(s.violations, 1u);
  EXPECT_EQ(rig.metrics.currently_inside(), 2);
}

TEST(Metrics, DifferentLocksMayOverlapWithoutViolation) {
  MetricsRig rig;
  Metrics m(rig.net, /*num_locks=*/3);
  m.reset(0);
  // Three sites inside three different locks at once: legal.
  m.on_enter(0, LockId{0}, 100, 0, 0);
  m.on_enter(1, LockId{1}, 110, 0, 0);
  m.on_enter(0, LockId{2}, 115, 0, 0);
  EXPECT_EQ(m.currently_inside(), 3);
  m.on_exit(0, LockId{0}, 150);
  m.on_exit(1, LockId{1}, 160);
  m.on_exit(0, LockId{2}, 170);
  // ...but a second entrant into an occupied lock is still flagged.
  m.on_enter(0, LockId{1}, 200, 0, 0);
  m.on_enter(1, LockId{1}, 210, 0, 0);
  Summary s = m.summarize(300);
  EXPECT_EQ(s.violations, 1u);
  EXPECT_EQ(s.completed, 3u);
}

TEST(Metrics, SynchronizationGapsAreMeasuredWithinOneLock) {
  MetricsRig rig;
  Metrics m(rig.net, /*num_locks=*/2);
  m.reset(0);
  m.on_enter(0, LockId{0}, 100, 0, 0);
  m.on_exit(0, LockId{0}, 150);
  // Lock 1's first entry must not pair with lock 0's exit...
  m.on_enter(1, LockId{1}, 180, 120, 120);
  m.on_exit(1, LockId{1}, 200);
  // ...while lock 0's next contended entry pairs with its own exit.
  m.on_enter(1, LockId{0}, 250, 140, 140);
  m.on_exit(1, LockId{0}, 260);
  Summary s = m.summarize(1000);
  EXPECT_EQ(s.contended_gaps, 1u);
  EXPECT_DOUBLE_EQ(s.sync_delay_contended, 100.0);  // 250 - 150
}

TEST(Metrics, ViolationsSurviveWindowReset) {
  MetricsRig rig;
  rig.metrics.on_enter(0, kLock0,10, 0, 0);
  rig.metrics.on_enter(1, kLock0,20, 0, 0);
  rig.metrics.reset(100);
  EXPECT_EQ(rig.metrics.summarize(200).violations, 1u);
}

TEST(Metrics, WarmupEntriesAreExcludedFromWindow) {
  MetricsRig rig;
  rig.metrics.on_enter(0, kLock0,50, 0, 0);  // before reset
  rig.metrics.reset(100);
  rig.metrics.on_exit(0, kLock0,150);  // exits inside window but entered before
  Summary s = rig.metrics.summarize(200);
  EXPECT_EQ(s.completed, 0u);
}

TEST(Metrics, CrashDiscardsOpenInterval) {
  MetricsRig rig;
  rig.metrics.reset(0);
  rig.metrics.on_enter(0, kLock0,100, 0, 0);
  rig.metrics.on_crash(0);
  // Next entry is not a violation and no gap is measured off the crash.
  rig.metrics.on_enter(1, kLock0,200, 0, 0);
  rig.metrics.on_exit(1, kLock0,210);
  Summary s = rig.metrics.summarize(300);
  EXPECT_EQ(s.violations, 0u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(Metrics, ExitWithoutEnterIsAnError) {
  MetricsRig rig;
  EXPECT_THROW(rig.metrics.on_exit(0, kLock0,10), CheckError);
}

TEST(Metrics, PerTypeMessageAveragesComeFromWindowDeltas) {
  MetricsRig rig;
  rig.net.send(0, 1, net::make_request(ReqId{1, 0}));
  rig.sim.run();
  rig.metrics.reset(rig.sim.now());  // pre-window traffic excluded
  rig.net.send(0, 1, net::make_request(ReqId{2, 0}));
  rig.net.send(1, 0, net::make_reply(1, ReqId{2, 0}));
  rig.sim.run();
  rig.metrics.on_enter(0, kLock0,rig.sim.now(), 0, 0);
  rig.metrics.on_exit(0, kLock0,rig.sim.now());
  Summary s = rig.metrics.summarize(rig.sim.now());
  EXPECT_DOUBLE_EQ(s.wire_msgs_per_cs, 2.0);
  EXPECT_DOUBLE_EQ(
      s.per_type_per_cs[static_cast<size_t>(net::MsgType::kRequest)], 1.0);
  EXPECT_DOUBLE_EQ(
      s.per_type_per_cs[static_cast<size_t>(net::MsgType::kReply)], 1.0);
}

// ----------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  Table t({"algo", "delay"});
  t.add_row({"maekawa", "2T"});
  t.add_row({"proposed", "T"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| algo     | delay |"), std::string::npos);
  EXPECT_NE(out.find("| proposed | T     |"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(42), "42");
}

// -------------------------------------------------------------- workload

TEST(Workload, ClosedLoopHonoursMaxCsPerSite) {
  sim::Simulator sim;
  net::Network net(sim, 4, std::make_unique<net::ConstantDelay>(100), 2);
  auto qs = quorum::make_quorum_system("grid", 4);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  for (SiteId i = 0; i < 4; ++i) {
    sites.push_back(mutex::make_site(mutex::Algo::kCaoSinghal, i, net,
                                     qs.get()));
    net.attach(i, sites.back().get());
    raw.push_back(sites.back().get());
  }
  Workload::Config wc;
  wc.mode = Workload::Config::Mode::kClosed;
  wc.cs_duration = 10;
  wc.max_cs_per_site = 3;
  Metrics metrics(net);
  Workload wl(sim, raw, wc, &metrics);
  wl.start();
  sim.run();
  EXPECT_EQ(wl.demands_completed(), 12u);
  EXPECT_EQ(wl.demands_outstanding(), 0u);
}

TEST(Workload, OpenLoopArrivalRateIsRespected) {
  sim::Simulator sim;
  net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(10), 2);
  auto qs = quorum::make_quorum_system("grid", 2);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  for (SiteId i = 0; i < 2; ++i) {
    sites.push_back(mutex::make_site(mutex::Algo::kCaoSinghal, i, net,
                                     qs.get()));
    net.attach(i, sites.back().get());
    raw.push_back(sites.back().get());
  }
  Workload::Config wc;
  wc.mode = Workload::Config::Mode::kOpen;
  wc.arrival_rate = 1.0 / 1000.0;  // mean inter-arrival 1000 ticks/site
  wc.cs_duration = 5;
  Metrics metrics(net);
  Workload wl2(sim, raw, wc, &metrics);
  wl2.start();
  sim.run_until(1'000'000);
  // ~2000 expected demands (2 sites x 1000); allow generous slack.
  EXPECT_GT(wl2.demands_issued(), 1600u);
  EXPECT_LT(wl2.demands_issued(), 2400u);
  wl2.drain();
  sim.run();
  EXPECT_EQ(wl2.demands_outstanding(), 0u);
}

// ------------------------------------------------------------ experiment

TEST(Experiment, ReportsQuorumSizeAndCleanDrain) {
  ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 9;
  cfg.warmup = 50'000;
  cfg.measure = 200'000;
  ExperimentResult r = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(r.mean_quorum_size, 5.0);
  EXPECT_TRUE(r.drained_clean);
  EXPECT_EQ(r.demands_issued, r.demands_completed);
}

TEST(Experiment, NonQuorumAlgosReportK1) {
  ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kLamport;
  cfg.n = 4;
  cfg.warmup = 50'000;
  cfg.measure = 100'000;
  ExperimentResult r = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(r.mean_quorum_size, 1.0);
}

TEST(Metrics, JainFairnessIndex) {
  MetricsRig rig;  // 2 sites
  rig.metrics.reset(0);
  // Perfectly even: 2 completions each.
  for (int k = 0; k < 4; ++k) {
    const SiteId who = static_cast<SiteId>(k % 2);  // 0,1,0,1
    const Time t = 10 + 20 * k;
    rig.metrics.on_enter(who, kLock0, t, 0, 0);
    rig.metrics.on_exit(who, kLock0, t + 5);
  }
  EXPECT_DOUBLE_EQ(rig.metrics.summarize(100).fairness_jain, 1.0);
  // Completely one-sided.
  rig.metrics.reset(100);
  rig.metrics.on_enter(0, kLock0,110, 100, 100);
  rig.metrics.on_exit(0, kLock0,120);
  EXPECT_DOUBLE_EQ(rig.metrics.summarize(200).fairness_jain, 0.5);
}

TEST(Workload, SiteWeightsShapeDemand) {
  sim::Simulator sim;
  net::Network net(sim, 4, std::make_unique<net::ConstantDelay>(50), 2);
  auto qs = quorum::make_quorum_system("grid", 4);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  for (SiteId i = 0; i < 4; ++i) {
    sites.push_back(mutex::make_site(mutex::Algo::kCaoSinghal, i, net,
                                     qs.get()));
    net.attach(i, sites.back().get());
    raw.push_back(sites.back().get());
  }
  Workload::Config wc;
  wc.mode = Workload::Config::Mode::kOpen;
  wc.arrival_rate = 1.0 / 5000.0;
  wc.site_weights = {4.0, 1.0, 1.0, 0.0};
  wc.cs_duration = 10;
  Metrics metrics(net);
  Workload wl(sim, raw, wc, &metrics);
  wl.start();
  sim.run_until(3'000'000);
  wl.drain();
  sim.run();
  // Site 3 never demands; site 0 completes ~4x what 1 and 2 do.
  EXPECT_EQ(wl.demands_outstanding(), 0u);
  EXPECT_EQ(sites[3]->cs_entries(), 0u);
  EXPECT_GT(sites[0]->cs_entries(), 2 * sites[1]->cs_entries());
  EXPECT_GT(sites[1]->cs_entries(), 0u);
}

TEST(Metrics, WaitingPercentiles) {
  MetricsRig rig;
  rig.metrics.reset(0);
  // 100 completions with waits 1..100 (alternating sites).
  Time now = 0;
  for (int w = 1; w <= 100; ++w) {
    now += 1000;
    rig.metrics.on_enter(static_cast<SiteId>(w % 2), kLock0, now, now - w,
                         now - w);
    rig.metrics.on_exit(static_cast<SiteId>(w % 2), kLock0, now + 1);
  }
  Summary s = rig.metrics.summarize(now + 10);
  EXPECT_NEAR(s.waiting_p50, 50.0, 1.5);
  EXPECT_NEAR(s.waiting_p95, 95.0, 1.5);
  EXPECT_NEAR(s.waiting_p99, 99.0, 1.5);
  EXPECT_DOUBLE_EQ(s.waiting_max, 100.0);
}

TEST(Experiment, ClusteredDelayEndToEnd) {
  ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 16;
  cfg.delay_kind = ExperimentConfig::DelayKind::kClustered;
  cfg.clusters = 4;
  cfg.warmup = 100'000;
  cfg.measure = 500'000;
  ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_TRUE(r.drained_clean);
  EXPECT_GT(r.summary.completed, 0u);
}

TEST(Experiment, AuditedRunReportsGrants) {
  ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 9;
  cfg.audit_permissions = true;
  cfg.warmup = 50'000;
  cfg.measure = 300'000;
  ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.permission_violations, 0u);
  EXPECT_GT(r.permission_grants_audited, 100u);
}

TEST(Experiment, AuditWithCrashesIsRejected) {
  ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 9;
  cfg.audit_permissions = true;
  cfg.crashes.push_back({1000, 2});
  EXPECT_THROW(run_experiment(cfg), CheckError);
}

TEST(Experiment, ReplicateAggregatesAcrossSeeds) {
  ExperimentConfig cfg;
  cfg.algo = mutex::Algo::kCaoSinghal;
  cfg.n = 9;
  cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
  cfg.warmup = 50'000;
  cfg.measure = 200'000;
  auto rep = replicate(cfg, 4, [](const ExperimentResult& r) {
    return static_cast<double>(r.summary.completed);
  });
  EXPECT_GT(rep.mean, 0.0);
  EXPECT_GE(rep.sd, 0.0);     // jittered runs differ...
  EXPECT_LT(rep.sd, rep.mean);  // ...but not wildly
}

}  // namespace
}  // namespace dqme::harness
