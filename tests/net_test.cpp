// Unit tests for the simulated network: FIFO channels, delay models,
// piggyback accounting (paper §5's cost model), crash semantics.
#include <gtest/gtest.h>

#include "net/network.h"

namespace dqme::net {
namespace {

// Collects everything delivered to one site.
class Sink final : public NetSite {
 public:
  void on_message(const Message& m, LockId lock) override {
    received.push_back(m);
    locks.push_back(lock);
  }
  std::vector<Message> received;
  std::vector<LockId> locks;
};

struct Rig {
  explicit Rig(int n, Time delay = 100, uint64_t seed = 1)
      : net(sim, n, std::make_unique<ConstantDelay>(delay), seed),
        sinks(static_cast<size_t>(n)) {
    for (SiteId i = 0; i < n; ++i) net.attach(i, &sinks[static_cast<size_t>(i)]);
  }
  sim::Simulator sim;
  Network net;
  std::vector<Sink> sinks;
};

TEST(Network, DeliversWithConfiguredDelay) {
  Rig rig(2, 100);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run();
  ASSERT_EQ(rig.sinks[1].received.size(), 1u);
  EXPECT_EQ(rig.sim.now(), 100);
  EXPECT_EQ(rig.sinks[1].received[0].src, 0);
  EXPECT_EQ(rig.sinks[1].received[0].dst, 1);
}

TEST(Network, PerChannelFifoUnderRandomDelays) {
  // With heavy jitter, later sends must still arrive after earlier ones.
  sim::Simulator sim;
  Network net(sim, 2, std::make_unique<UniformDelay>(1, 500), 99);
  Sink sink;
  net.attach(0, &sink);
  net.attach(1, &sink);
  for (SeqNum s = 1; s <= 200; ++s) {
    net.send(0, 1, make_request(ReqId{s, 0}));
    sim.run_until(sim.now() + 3);
  }
  sim.run();
  ASSERT_EQ(sink.received.size(), 200u);
  for (size_t i = 0; i < sink.received.size(); ++i)
    EXPECT_EQ(sink.received[i].req.seq, i + 1) << "FIFO violated at " << i;
}

TEST(Network, IndependentChannelsDoNotBlockEachOther) {
  Rig rig(3, 100);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.net.send(2, 1, make_request(ReqId{2, 2}));
  rig.sim.run();
  EXPECT_EQ(rig.sinks[1].received.size(), 2u);
}

TEST(Network, BundleCountsAsOneWireMessage) {
  Rig rig(2);
  std::vector<Message> bundle;
  bundle.push_back(make_inquire(0, ReqId{1, 1}));
  bundle.push_back(make_transfer(ReqId{2, 0}, 0, ReqId{1, 1}));
  rig.net.send_bundle(0, 1, std::move(bundle));
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().wire_messages, 1u);        // paper's count
  EXPECT_EQ(rig.net.stats().control_messages, 2u);     // actual messages
  EXPECT_EQ(rig.net.stats().count(MsgType::kInquire), 1u);
  EXPECT_EQ(rig.net.stats().count(MsgType::kTransfer), 1u);
  ASSERT_EQ(rig.sinks[1].received.size(), 2u);
  // Delivered back-to-back in bundle order at the same instant.
  EXPECT_EQ(rig.sinks[1].received[0].type, MsgType::kInquire);
  EXPECT_EQ(rig.sinks[1].received[1].type, MsgType::kTransfer);
}

TEST(Network, SelfSendIsImmediateAndUncounted) {
  Rig rig(2, 500);
  rig.net.send(0, 0, make_request(ReqId{1, 0}));
  rig.sim.run();
  EXPECT_EQ(rig.sim.now(), 0);  // zero-delay local delivery
  EXPECT_EQ(rig.sinks[0].received.size(), 1u);
  EXPECT_EQ(rig.net.stats().wire_messages, 0u);
  EXPECT_EQ(rig.net.stats().local_deliveries, 1u);
}

TEST(Network, SelfSendIsNotInlineReentrant) {
  // The handler must not run inside send() — protocols assume handlers are
  // never re-entered from their own sends.
  Rig rig(1);
  bool delivered_inline = true;
  rig.net.send(0, 0, make_request(ReqId{1, 0}));
  delivered_inline = !rig.sinks[0].received.empty();
  EXPECT_FALSE(delivered_inline);
  rig.sim.run();
  EXPECT_EQ(rig.sinks[0].received.size(), 1u);
}

TEST(Network, CrashedDestinationDropsMessages) {
  Rig rig(2);
  rig.net.crash(1);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run();
  EXPECT_TRUE(rig.sinks[1].received.empty());
  EXPECT_EQ(rig.net.stats().dropped_at_crashed, 1u);
}

TEST(Network, CrashedSourceIsSilent) {
  Rig rig(2);
  rig.net.crash(0);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run();
  EXPECT_TRUE(rig.sinks[1].received.empty());
}

TEST(Network, InFlightMessagesToCrashedSiteAreDropped) {
  Rig rig(2, 100);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run_until(50);
  rig.net.crash(1);  // crash while the message is in flight
  rig.sim.run();
  EXPECT_TRUE(rig.sinks[1].received.empty());
}

TEST(Network, AliveCountTracksCrashes) {
  Rig rig(5);
  EXPECT_EQ(rig.net.alive_count(), 5);
  rig.net.crash(2);
  rig.net.crash(4);
  EXPECT_EQ(rig.net.alive_count(), 3);
  EXPECT_FALSE(rig.net.alive(2));
  EXPECT_TRUE(rig.net.alive(0));
}

TEST(Network, OnDeliverHookSeesEveryControlMessage) {
  Rig rig(2);
  int hooked = 0;
  rig.net.on_deliver = [&](const Message&, LockId) { ++hooked; };
  std::vector<Message> bundle;
  bundle.push_back(make_reply(0, ReqId{1, 1}));
  bundle.push_back(make_transfer(ReqId{2, 0}, 0, ReqId{1, 1}));
  rig.net.send_bundle(0, 1, std::move(bundle));
  rig.net.send(1, 0, make_request(ReqId{3, 1}));
  rig.sim.run();
  EXPECT_EQ(hooked, 3);
}

TEST(Network, SendTagsDeliveryWithLockId) {
  Rig rig(2);
  rig.net.send(0, 1, make_request(ReqId{1, 0}), LockId{7});
  rig.net.send(0, 1, make_request(ReqId{2, 0}));  // defaults to lock 0
  rig.sim.run();
  ASSERT_EQ(rig.sinks[1].locks.size(), 2u);
  EXPECT_EQ(rig.sinks[1].locks[0], 7);
  EXPECT_EQ(rig.sinks[1].locks[1], kLock0);
}

TEST(Network, LockPiggybackCoalescesSameChannelWithinWindow) {
  Rig rig(2, 100);
  rig.net.set_lock_piggyback(50);
  rig.net.send(0, 1, make_request(ReqId{1, 0}), LockId{0});
  rig.sim.run_until(10);  // still inside the window, flight not yet landed
  rig.net.send(0, 1, make_request(ReqId{2, 0}), LockId{3});
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().wire_messages, 1u);
  EXPECT_EQ(rig.net.stats().control_messages, 2u);
  EXPECT_EQ(rig.net.stats().piggybacked_messages, 1u);
  ASSERT_EQ(rig.sinks[1].received.size(), 2u);
  // Both ride the first flight: delivered together at its instant, each
  // keeping its own lock tag.
  EXPECT_EQ(rig.sim.now(), 100);
  EXPECT_EQ(rig.sinks[1].locks[0], 0);
  EXPECT_EQ(rig.sinks[1].locks[1], 3);
  EXPECT_EQ(rig.sinks[1].received[1].req.seq, 2u);
}

TEST(Network, LockPiggybackStampsTrueStagingInstant) {
  // Span accounting audit: a message that joins an older open flight must
  // carry the tick it was STAGED at, not the flight's origin — otherwise
  // every latency derived from sent_at (span waiting, FIFO monotonicity)
  // silently credits piggybacked messages with time they never spent.
  Rig rig(2, 100);
  rig.net.set_lock_piggyback(50);
  rig.net.send(0, 1, make_request(ReqId{1, 0}), LockId{0});
  rig.sim.run_until(10);
  rig.net.send(0, 1, make_request(ReqId{2, 0}), LockId{3});  // joins flight
  rig.sim.run();
  ASSERT_EQ(rig.sinks[1].received.size(), 2u);
  EXPECT_EQ(rig.sinks[1].received[0].sent_at, 0);
  EXPECT_EQ(rig.sinks[1].received[1].sent_at, 10);
  // Both still land at the shared flight's instant.
  EXPECT_EQ(rig.sim.now(), 100);
}

TEST(Network, LockPiggybackWindowExpires) {
  Rig rig(2, 100);
  rig.net.set_lock_piggyback(20);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run_until(30);  // past the window, flight still in the air
  rig.net.send(0, 1, make_request(ReqId{2, 0}), LockId{1});
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().wire_messages, 2u);
  EXPECT_EQ(rig.net.stats().piggybacked_messages, 0u);
  ASSERT_EQ(rig.sinks[1].received.size(), 2u);
}

TEST(Network, LockPiggybackOffByDefault) {
  Rig rig(2, 100);
  EXPECT_LT(rig.net.lock_piggyback(), 0);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.net.send(0, 1, make_request(ReqId{2, 0}), LockId{1});
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().wire_messages, 2u);
  EXPECT_EQ(rig.net.stats().piggybacked_messages, 0u);
}

TEST(Network, LockPiggybackZeroWindowCoalescesSameInstantOnly) {
  // W=0: only messages staged at the exact same tick share a flight — the
  // timing-preserving mode the lock-table equivalence test relies on.
  Rig rig(2, 100);
  rig.net.set_lock_piggyback(0);
  rig.net.send(0, 1, make_request(ReqId{1, 0}), LockId{0});
  rig.net.send(0, 1, make_request(ReqId{2, 0}), LockId{1});
  rig.sim.run_until(1);
  rig.net.send(0, 1, make_request(ReqId{3, 0}), LockId{2});
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().wire_messages, 2u);
  EXPECT_EQ(rig.net.stats().piggybacked_messages, 1u);
  ASSERT_EQ(rig.sinks[1].received.size(), 3u);
  EXPECT_EQ(rig.sinks[1].locks[0], 0);
  EXPECT_EQ(rig.sinks[1].locks[1], 1);
  EXPECT_EQ(rig.sinks[1].locks[2], 2);
}

TEST(Network, LockPiggybackPreservesFifoAcrossFlights) {
  // A message appended to an older open flight must not overtake anything,
  // and later separate flights must not overtake the appended message.
  Rig rig(2, 100);
  rig.net.set_lock_piggyback(80);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run_until(40);
  rig.net.send(0, 1, make_request(ReqId{2, 0}), LockId{1});  // appended
  rig.sim.run_until(90);
  rig.net.send(0, 1, make_request(ReqId{3, 0}), LockId{2});  // own flight
  rig.sim.run();
  ASSERT_EQ(rig.sinks[1].received.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(rig.sinks[1].received[i].req.seq, i + 1);
  EXPECT_EQ(rig.net.stats().wire_messages, 2u);
}

TEST(DelayModels, ConstantAlwaysReturnsT) {
  Rng rng(1);
  ConstantDelay d(250);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng, 0, 1), 250);
  EXPECT_EQ(d.mean(), 250);
}

TEST(DelayModels, UniformStaysInBounds) {
  Rng rng(2);
  UniformDelay d(100, 300);
  for (int i = 0; i < 1000; ++i) {
    Time v = d.sample(rng, 0, 1);
    ASSERT_GE(v, 100);
    ASSERT_LE(v, 300);
  }
  EXPECT_EQ(d.mean(), 200);
}

TEST(DelayModels, ShiftedExponentialRespectsMinAndCap) {
  Rng rng(3);
  ShiftedExponentialDelay d(50, 200, 1000);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    Time v = d.sample(rng, 0, 1);
    ASSERT_GE(v, 50);
    ASSERT_LE(v, 1000);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 5000.0, 200.0, 20.0);  // cap truncation bias is small
}

TEST(DelayModels, ClusteredSeparatesLanAndWan) {
  Rng rng(5);
  // Sites 0-2 in cluster 0, sites 3-5 in cluster 1.
  ClusteredDelay d({0, 0, 0, 1, 1, 1}, 100, 1000);
  for (int i = 0; i < 500; ++i) {
    Time lan = d.sample(rng, 0, 2);
    Time wan = d.sample(rng, 0, 4);
    ASSERT_GE(lan, 75);
    ASSERT_LE(lan, 125);
    ASSERT_GE(wan, 750);
    ASSERT_LE(wan, 1250);
  }
}

TEST(DelayModels, ClusteredDrivesProtocolSafely) {
  // End-to-end smoke over heterogeneous delays: the protocol only assumes
  // FIFO + bounded, not identically distributed.
  sim::Simulator sim;
  Network net(sim, 4,
              std::make_unique<ClusteredDelay>(
                  std::vector<int>{0, 0, 1, 1}, 100, 1200),
              3);
  Sink sink;
  for (SiteId i = 0; i < 4; ++i) net.attach(i, &sink);
  for (SeqNum s = 1; s <= 50; ++s) {
    net.send(0, 1, make_request(ReqId{s, 0}));
    net.send(0, 3, make_request(ReqId{s, 0}));
  }
  sim.run();
  EXPECT_EQ(sink.received.size(), 100u);
  // FIFO held on both the fast and the slow channel.
  SeqNum last_fast = 0, last_slow = 0;
  for (const Message& m : sink.received) {
    SeqNum& last = m.dst == 1 ? last_fast : last_slow;
    EXPECT_GT(m.req.seq, last);
    last = m.req.seq;
  }
}

TEST(MessageFormatting, HumanReadable) {
  Message m = make_transfer(ReqId{2, 3}, 7, ReqId{1, 4});
  m.src = 7;
  m.dst = 4;
  std::ostringstream os;
  os << m;
  EXPECT_EQ(os.str(), "transfer[7->4 req=(1,4) arb=7 tgt=(2,3)]");
}

}  // namespace
}  // namespace dqme::net
