// Lamport's algorithm: exact message count (3(N-1)), queue-order entry,
// priority semantics.
#include <gtest/gtest.h>

#include "net/network.h"
#include "mutex/lamport.h"
#include "test_util.h"

namespace dqme {
namespace {

struct LamportRig {
  explicit LamportRig(int n, Time delay = 1000)
      : net(sim, n, std::make_unique<net::ConstantDelay>(delay), 3) {
    for (SiteId i = 0; i < n; ++i) {
      sites.push_back(std::make_unique<mutex::LamportSite>(i, net));
      net.attach(i, sites.back().get());
      sites.back()->on_enter = [this](SiteId id, LockId) {
        entries.push_back(id);
      };
    }
  }
  mutex::LamportSite& site(SiteId i) { return *sites[static_cast<size_t>(i)]; }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<mutex::LamportSite>> sites;
  std::vector<SiteId> entries;
};

TEST(Lamport, SingleSiteEntersImmediately) {
  LamportRig rig(1);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  EXPECT_EQ(rig.entries, (std::vector<SiteId>{0}));
  EXPECT_EQ(rig.net.stats().wire_messages, 0u);
}

TEST(Lamport, UncontendedCsCostsExactly3NMinus1) {
  LamportRig rig(5);
  rig.site(2).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.site(2).release_cs(kLock0);
  rig.sim.run();
  // (N-1) request + (N-1) reply + (N-1) release.
  EXPECT_EQ(rig.net.stats().wire_messages, 3u * 4u);
  EXPECT_EQ(rig.net.stats().count(net::MsgType::kRequest), 4u);
  EXPECT_EQ(rig.net.stats().count(net::MsgType::kReply), 4u);
  EXPECT_EQ(rig.net.stats().count(net::MsgType::kRelease), 4u);
}

TEST(Lamport, EntryRequiresAllReplies) {
  LamportRig rig(3);
  rig.site(0).request_cs(kLock0);
  EXPECT_TRUE(rig.entries.empty());
  rig.sim.run_until(1999);
  EXPECT_TRUE(rig.entries.empty());  // replies land at t=2000
  rig.sim.run();
  EXPECT_EQ(rig.entries.size(), 1u);
}

TEST(Lamport, ConcurrentRequestsServedInTimestampOrder) {
  LamportRig rig(4);
  // Same tick, so equal sequence numbers: site id breaks the tie.
  rig.site(3).request_cs(kLock0);
  rig.site(1).request_cs(kLock0);
  rig.site(2).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  EXPECT_EQ(rig.entries[0], 1);  // (1,1) < (1,2) < (1,3)
  rig.site(1).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 2);
  rig.site(2).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 3u);
  EXPECT_EQ(rig.entries[2], 3);
}

TEST(Lamport, LaterRequestHasLowerPriority) {
  LamportRig rig(2);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();  // site 0 in CS
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  EXPECT_EQ(rig.entries.size(), 1u);  // site 1 must wait
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 1);
}

TEST(Lamport, SiteCanReenterAfterRelease) {
  LamportRig rig(3);
  for (int round = 0; round < 3; ++round) {
    rig.site(0).request_cs(kLock0);
    rig.sim.run();
    rig.site(0).release_cs(kLock0);
    rig.sim.run();
  }
  EXPECT_EQ(rig.entries.size(), 3u);
  EXPECT_EQ(rig.site(0).cs_entries(), 3u);
}

TEST(Lamport, RejectsProtocolMisuse) {
  LamportRig rig(2);
  EXPECT_THROW(rig.site(0).release_cs(kLock0), CheckError);  // not in CS
  rig.site(0).request_cs(kLock0);
  EXPECT_THROW(rig.site(0).request_cs(kLock0), CheckError);  // double request
}

// The synchronization delay between consecutive CS users is one message
// latency: the release travels directly to the waiting sites.
TEST(Lamport, SynchronizationDelayIsT) {
  harness::ExperimentConfig cfg =
      testing::heavy_cfg(mutex::Algo::kLamport, 5, 21);
  auto r = testing::run_checked(cfg);
  EXPECT_NEAR(r.sync_delay_in_t, 1.0, 0.15);
}

}  // namespace
}  // namespace dqme
