// Tests for the parallel experiment engine (harness/sweep.h): results must
// be byte-identical for any worker count (each run is a pure function of
// its config and seed), errors must propagate deterministically, and the
// worker pool must be clean under thread sanitizer (the stress tests here
// are the -fsanitize=thread CI job's main target).
#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.h"
#include "mutex/factory.h"
#include "obs/lock_stats.h"
#include "obs/timeline.h"

namespace dqme::harness {
namespace {

ExperimentConfig small_config(mutex::Algo algo, uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.algo = algo;
  cfg.n = 9;
  cfg.quorum = "grid";
  cfg.delay_kind = ExperimentConfig::DelayKind::kUniform;
  cfg.warmup = 20'000;
  cfg.measure = 100'000;
  cfg.seed = seed;
  return cfg;
}

// Serializes every simulation-derived field with exact (hexfloat) double
// representation, so equality below means bit-identical results. Engine
// wall-clock (wall_ms) is deliberately excluded: it is host timing, not
// simulation output.
std::string fingerprint(const ExperimentResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  const Summary& s = r.summary;
  os << s.window << '|' << s.completed << '|' << s.violations << '|'
     << s.wire_msgs_per_cs << '|' << s.ctrl_msgs_per_cs << '|';
  for (double v : s.per_type_per_cs) os << v << ',';
  os << '|' << s.sync_delay_mean << '|' << s.sync_delay_contended << '|'
     << s.contended_gaps << '|' << s.waiting_mean << '|' << s.waiting_max
     << '|' << s.waiting_p50 << '|' << s.waiting_p95 << '|' << s.waiting_p99
     << '|' << s.queueing_mean << '|' << s.response_mean << '|'
     << s.throughput << '|' << s.fairness_jain << '|';
  os << r.mean_quorum_size << '|' << r.drained_clean << '|'
     << r.demands_issued << '|' << r.demands_completed << '|'
     << r.demands_aborted << '|' << r.stale_drops << '|';
  os << r.case_stats.grant_free << ',' << r.case_stats.c1_empty_higher << ','
     << r.case_stats.c2_empty_lower << ',' << r.case_stats.c3_fail_newcomer
     << ',' << r.case_stats.c4_displace_head << ','
     << r.case_stats.c5_beats_lock << ',' << r.case_stats.c6_between << '|';
  os << r.protocol_stats.yields_sent << ','
     << r.protocol_stats.inquires_deferred << ','
     << r.protocol_stats.transfers_accepted << ','
     << r.protocol_stats.transfers_ignored << ','
     << r.protocol_stats.replies_forwarded << ','
     << r.protocol_stats.replies_direct << ','
     << r.protocol_stats.recoveries << '|';
  os << r.sync_delay_in_t << '|' << r.permission_violations << '|'
     << r.permission_grants_audited << '|' << r.sim_events;
  return os.str();
}

std::string fingerprint(const std::vector<ExperimentResult>& rs) {
  std::string out;
  for (const auto& r : rs) {
    out += fingerprint(r);
    out += '\n';
  }
  return out;
}

// The per-run isolation invariant: a sweep's aggregated output is
// byte-identical no matter how many workers executed it, for every
// algorithm in the repo.
TEST(Sweep, ByteIdenticalAcrossJobCountsAllAlgorithms) {
  std::vector<ExperimentConfig> grid;
  for (mutex::Algo algo : mutex::all_algos())
    for (uint64_t seed = 1; seed <= 3; ++seed)
      grid.push_back(small_config(algo, seed));

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  const auto a = SweepRunner(serial).run(grid);
  const auto b = SweepRunner(parallel).run(grid);
  ASSERT_EQ(a.size(), grid.size());
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

// The time-resolved telemetry honors the same contract as the scalar
// summary: per-run timelines/lock-stats AND their merged folds (result-
// index order, the Runner's fold) are byte-identical for any worker count.
TEST(Sweep, TimelineAndLockStatsByteIdenticalAcrossJobCounts) {
  std::vector<ExperimentConfig> grid;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ExperimentConfig cfg = small_config(mutex::Algo::kCaoSinghal, seed);
    cfg.timeline_window = 10'000;
    cfg.options.num_locks = 4;
    cfg.lock_stats_k = 2;  // < num_locks: forces the SpaceSaving path too
    grid.push_back(cfg);
  }
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  const auto a = SweepRunner(serial).run(grid);
  const auto b = SweepRunner(parallel).run(grid);
  ASSERT_EQ(a.size(), grid.size());
  const auto telemetry_fp = [](const std::vector<ExperimentResult>& rs) {
    std::ostringstream os;
    obs::Timeline folded_tl;
    obs::LockStats folded_ls;
    for (const auto& r : rs) {
      r.timeline.write_json(os);
      os << '\n';
      r.lock_stats.write_json(os);
      os << '\n';
      folded_tl.merge(r.timeline);
      folded_ls.merge(r.lock_stats);
    }
    folded_tl.write_json(os);
    folded_ls.write_json(os);
    return os.str();
  };
  EXPECT_EQ(telemetry_fp(a), telemetry_fp(b));
  // And the series actually carry data — a trivially-empty timeline would
  // make the equality above vacuous.
  EXPECT_TRUE(a.front().timeline.enabled());
  EXPECT_GT(a.front().timeline.num_windows(), 1u);
  EXPECT_GT(a.front().lock_stats.total(), 0u);
}

TEST(Sweep, ReplicateParallelMatchesSerial) {
  const ExperimentConfig cfg = small_config(mutex::Algo::kCaoSinghal);
  const auto serial = replicate(cfg, 8, /*jobs=*/1);
  const auto parallel = replicate(cfg, 8, /*jobs=*/8);
  EXPECT_EQ(fingerprint(serial), fingerprint(parallel));
  // Seeds are assigned in order regardless of which worker ran them.
  for (size_t r = 0; r < serial.size(); ++r)
    EXPECT_EQ(serial[r].demands_issued, parallel[r].demands_issued);
}

TEST(Sweep, DeprecatedShimMatchesAggregateOverFullResults) {
  const ExperimentConfig cfg = small_config(mutex::Algo::kMaekawa);
  auto metric = [](const ExperimentResult& r) {
    return static_cast<double>(r.summary.completed);
  };
  const Replicated shim = replicate(cfg, 4, metric);
  const Replicated direct = aggregate(replicate(cfg, 4), metric);
  EXPECT_EQ(shim.mean, direct.mean);
  EXPECT_EQ(shim.sd, direct.sd);
}

TEST(Sweep, ExpandSeedsCountsUpFromBase) {
  ExperimentConfig cfg = small_config(mutex::Algo::kLamport, 41);
  const auto grid = expand_seeds(cfg, 3);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid[0].seed, 41u);
  EXPECT_EQ(grid[1].seed, 42u);
  EXPECT_EQ(grid[2].seed, 43u);
  EXPECT_THROW(expand_seeds(cfg, 0), CheckError);
}

TEST(Sweep, EmptyGridIsEmptyResult) {
  SweepOptions opts;
  opts.jobs = 4;
  EXPECT_TRUE(SweepRunner(opts).run({}).empty());
}

TEST(Sweep, AggregateRejectsEmptyAndComputesSd) {
  auto metric = [](const ExperimentResult& r) {
    return static_cast<double>(r.demands_issued);
  };
  EXPECT_THROW(aggregate({}, metric), CheckError);
  std::vector<ExperimentResult> rs(2);
  rs[0].demands_issued = 10;
  rs[1].demands_issued = 14;
  const Replicated rep = aggregate(rs, metric);
  EXPECT_DOUBLE_EQ(rep.mean, 12.0);
  EXPECT_NEAR(rep.sd, 2.8284271247461903, 1e-12);
}

// A bad config must surface as the same exception for any worker count,
// and must not poison the rest of the sweep's results.
TEST(Sweep, ErrorsPropagateFromWorkers) {
  std::vector<ExperimentConfig> grid(4, small_config(mutex::Algo::kLamport));
  grid[2].crashes.push_back({100, 99});  // victim out of range -> throws
  for (int jobs : {1, 4}) {
    SweepOptions opts;
    opts.jobs = jobs;
    EXPECT_THROW(SweepRunner(opts).run(grid), CheckError);
  }
}

TEST(Sweep, IntegrityCheckCanBeDisabled) {
  // With checking off the same failing config merely returns its result.
  std::vector<ExperimentConfig> grid(1, small_config(mutex::Algo::kLamport));
  grid[0].measure = 1;  // window too small to drain? still fine — just run
  SweepOptions opts;
  opts.check_integrity = false;
  EXPECT_NO_THROW(SweepRunner(opts).run(grid));
}

// Thread-sanitizer targets: many small jobs claimed through the atomic
// cursor by a full worker pool, repeated so claim/join edges interleave.
TEST(SweepStress, WorkerPoolManySmallJobs) {
  std::vector<ExperimentConfig> grid;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    ExperimentConfig cfg = small_config(
        seed % 2 ? mutex::Algo::kCaoSinghal : mutex::Algo::kRicartAgrawala,
        seed);
    cfg.warmup = 5'000;
    cfg.measure = 20'000;
    grid.push_back(cfg);
  }
  SweepOptions opts;
  opts.jobs = 8;
  std::string first;
  for (int round = 0; round < 3; ++round) {
    const auto results = SweepRunner(opts).run(grid);
    const std::string fp = fingerprint(results);
    if (round == 0)
      first = fp;
    else
      EXPECT_EQ(fp, first);
  }
}

TEST(SweepStress, OversubscribedPoolClampsToJobCount) {
  std::vector<ExperimentConfig> grid(3, small_config(mutex::Algo::kRaymond));
  SweepOptions opts;
  opts.jobs = 64;  // more workers than jobs: pool must clamp, not wedge
  const auto results = SweepRunner(opts).run(grid);
  EXPECT_EQ(results.size(), 3u);
}

}  // namespace
}  // namespace dqme::harness
