// Tests for the work-stealing parallel explorer (src/verify/parallel):
// worker-count determinism of the merged counters, byte-identical
// minimized counterexamples, and frontier portability across worker
// counts (v2 multi-task format plus the sequential v1 format).
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "verify/explorer.h"
#include "verify/parallel.h"

namespace dqme::verify {
namespace {

WorldConfig small_config(mutex::Algo algo = mutex::Algo::kCaoSinghal) {
  WorldConfig cfg;
  cfg.algo = algo;
  cfg.n = 3;
  cfg.quorum = "grid";
  cfg.cs_per_site = 1;
  return cfg;
}

WorldConfig crash_config() {
  WorldConfig cfg = small_config();
  cfg.fault_tolerant = true;
  cfg.crash_sites = {2};
  cfg.max_crashes = 1;
  return cfg;
}

ParallelResult explore_parallel(const WorldConfig& world, int workers,
                                Dpor dpor = Dpor::kSource,
                                uint64_t max_schedules = 0) {
  ParallelConfig cfg;
  cfg.base.world = world;
  cfg.base.dpor = dpor;
  cfg.base.max_schedules = max_schedules;
  cfg.workers = workers;
  return ParallelExplorer(cfg).run();
}

// The structural counters — schedules, nodes, truncated, sleep_skips —
// are sums over a task partition of the DFS tree, so they must not move
// with the worker count. (replays/replay_steps are execution cost and
// legitimately vary with how the tree was cut.)
void expect_same_structure(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.sleep_skips, b.sleep_skips);
}

TEST(ParallelExplorer, MatchesSequentialOnCleanSpace) {
  ExplorerConfig seq_cfg;
  seq_cfg.world = small_config();
  seq_cfg.dpor = Dpor::kSource;
  const ExploreResult seq = Explorer(seq_cfg).run();
  ASSERT_TRUE(seq.complete);

  for (int workers : {1, 4, 8}) {
    const ParallelResult par = explore_parallel(small_config(), workers);
    EXPECT_TRUE(par.merged.complete) << "workers=" << workers;
    EXPECT_TRUE(par.merged.violations.empty());
    expect_same_structure(seq, par.merged);
  }
}

TEST(ParallelExplorer, CountersIdenticalAcrossWorkerCountsWithCrash) {
  const ParallelResult one = explore_parallel(crash_config(), 1);
  ASSERT_TRUE(one.merged.complete);
  ASSERT_TRUE(one.merged.violations.empty());
  for (int workers : {4, 8}) {
    const ParallelResult par = explore_parallel(crash_config(), workers);
    EXPECT_TRUE(par.merged.complete) << "workers=" << workers;
    expect_same_structure(one.merged, par.merged);
  }
  // The crash grid is where work stealing actually engages: the subtree
  // sizes are skewed enough that idle workers must ask for donations.
  const ParallelResult eight = explore_parallel(crash_config(), 8);
  expect_same_structure(one.merged, eight.merged);
}

TEST(ParallelExplorer, MinimizedCounterexampleIdenticalAcrossWorkers) {
  WorldConfig cfg = small_config();
  cfg.mutation = Mutation::kDoubleGrant;

  ExplorerConfig seq_cfg;
  seq_cfg.world = cfg;
  seq_cfg.dpor = Dpor::kSource;
  seq_cfg.max_schedules = 200'000;
  const ExploreResult seq = Explorer(seq_cfg).run();
  ASSERT_FALSE(seq.violations.empty());

  for (int workers : {1, 4, 8}) {
    const ParallelResult par =
        explore_parallel(cfg, workers, Dpor::kSource, 200'000);
    ASSERT_FALSE(par.merged.violations.empty()) << "workers=" << workers;
    const Violation& sv = seq.violations.front();
    const Violation& pv = par.merged.violations.front();
    // Byte-identical: same DFS-first violation, same minimized schedule,
    // same reports — no matter how many threads raced to it.
    EXPECT_EQ(pv.path, sv.path) << "workers=" << workers;
    EXPECT_EQ(encode_actions(pv.schedule), encode_actions(sv.schedule));
    EXPECT_EQ(pv.reports, sv.reports);
  }
}

TEST(ParallelExplorer, ViolationCountersDeterministicAcrossWorkers) {
  WorldConfig cfg = small_config();
  cfg.mutation = Mutation::kLostTransfer;
  const ParallelResult one =
      explore_parallel(cfg, 1, Dpor::kSource, 200'000);
  ASSERT_FALSE(one.merged.violations.empty());
  for (int workers : {4, 8}) {
    const ParallelResult par =
        explore_parallel(cfg, workers, Dpor::kSource, 200'000);
    ASSERT_FALSE(par.merged.violations.empty());
    expect_same_structure(one.merged, par.merged);
    EXPECT_EQ(par.merged.violations.front().path,
              one.merged.violations.front().path);
  }
}

// A frontier saved by an 8-worker run resumes at 1 worker (and the other
// way around), and the two legs cover exactly the full space: cumulative
// schedule/node totals equal the unbudgeted run's — the task partition is
// a node-for-node split of the tree, nothing dropped, nothing double-
// counted.
void roundtrip_frontier(int save_workers, int resume_workers) {
  const ParallelResult full = explore_parallel(crash_config(), 2);
  ASSERT_TRUE(full.merged.complete);

  ParallelConfig budgeted;
  budgeted.base.world = crash_config();
  budgeted.base.dpor = Dpor::kSource;
  budgeted.base.max_schedules = 2'000;
  budgeted.workers = save_workers;
  ParallelExplorer first(budgeted);
  const ParallelResult leg1 = first.run();
  ASSERT_TRUE(leg1.merged.budget_exhausted);
  ASSERT_FALSE(leg1.merged.complete);
  std::ostringstream frontier;
  first.save_frontier(frontier);

  ParallelConfig rest;
  rest.base.world = crash_config();
  rest.base.dpor = Dpor::kSource;
  rest.workers = resume_workers;
  ParallelExplorer second(rest);
  std::istringstream in(frontier.str());
  std::string error;
  ASSERT_TRUE(second.load_frontier(in, &error)) << error;
  const ParallelResult leg2 = second.run();
  EXPECT_TRUE(leg2.merged.complete);
  EXPECT_TRUE(leg2.merged.violations.empty());
  // The v2 header carries the cumulative counters, so the resumed run
  // reports full-space totals.
  EXPECT_EQ(leg2.merged.schedules, full.merged.schedules);
  EXPECT_EQ(leg2.merged.nodes, full.merged.nodes);
  EXPECT_EQ(leg2.merged.sleep_skips, full.merged.sleep_skips);
}

TEST(ParallelExplorer, FrontierSavedAtEightResumesAtOne) {
  roundtrip_frontier(/*save_workers=*/8, /*resume_workers=*/1);
}

TEST(ParallelExplorer, FrontierSavedAtOneResumesAtEight) {
  roundtrip_frontier(/*save_workers=*/1, /*resume_workers=*/8);
}

TEST(ParallelExplorer, SequentialV1FrontierLoadsAndResumes) {
  // A frontier written by the sequential Explorer (v1 single-stack format)
  // must load into the parallel driver — the stack converts to one task
  // per open frame — and finish to the same totals.
  ExplorerConfig seq_cfg;
  seq_cfg.world = crash_config();
  seq_cfg.dpor = Dpor::kSource;
  const ExploreResult full = Explorer(seq_cfg).run();
  ASSERT_TRUE(full.complete);

  ExplorerConfig budgeted = seq_cfg;
  budgeted.max_schedules = 2'000;
  Explorer first(budgeted);
  const ExploreResult leg1 = first.run();
  ASSERT_TRUE(leg1.budget_exhausted);
  std::ostringstream frontier;
  first.save_frontier(frontier);

  ParallelConfig rest;
  rest.base.world = crash_config();
  rest.workers = 4;
  ParallelExplorer second(rest);
  std::istringstream in(frontier.str());
  std::string error;
  ASSERT_TRUE(second.load_frontier(in, &error)) << error;
  // The frontier dictates the DPOR mode it was saved under.
  EXPECT_EQ(second.config().base.dpor, Dpor::kSource);
  const ParallelResult leg2 = second.run();
  EXPECT_TRUE(leg2.merged.complete);
  EXPECT_EQ(leg2.merged.schedules, full.schedules);
  EXPECT_EQ(leg2.merged.nodes, full.nodes);
  EXPECT_EQ(leg2.merged.sleep_skips, full.sleep_skips);
}

TEST(ParallelExplorer, DonationKeepsWorkersBusyOnSkewedTree) {
  // More workers than initial tasks at a tiny split depth: progress beyond
  // the split requires donation (the stolen subtrees are re-seeded), and
  // the totals must still match the sequential run.
  ParallelConfig cfg;
  cfg.base.world = crash_config();
  cfg.base.dpor = Dpor::kSource;
  cfg.workers = 8;
  cfg.split_depth = 1;  // a handful of root tasks for 8 workers
  const ParallelResult par = ParallelExplorer(cfg).run();
  ASSERT_TRUE(par.merged.complete);

  ExplorerConfig seq_cfg;
  seq_cfg.world = crash_config();
  seq_cfg.dpor = Dpor::kSource;
  const ExploreResult seq = Explorer(seq_cfg).run();
  expect_same_structure(seq, par.merged);
  EXPECT_GT(par.tasks_donated, 0u);
}

TEST(ParallelExplorer, EightWorkersOutrunOneOnRealCores) {
  // Wall-clock speedup needs actual cores; single-core machines (and
  // oversubscribed CI shards) can't show it, so this gates on hardware.
  // The determinism half of the claim — identical counters regardless of
  // worker count — is asserted unconditionally by the tests above.
  if (std::thread::hardware_concurrency() < 4)
    GTEST_SKIP() << "needs >= 4 hardware threads to measure speedup";

  auto timed = [](int workers) {
    const auto t0 = std::chrono::steady_clock::now();
    const ParallelResult r = explore_parallel(crash_config(), workers);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    EXPECT_TRUE(r.merged.complete);
    return std::pair<ParallelResult, double>{r, ms};
  };
  const auto [one, one_ms] = timed(1);
  const auto [eight, eight_ms] = timed(8);
  expect_same_structure(one.merged, eight.merged);
  // Conservative bar (the CI acceptance target is 3x on the larger N=4
  // space; the N=3 grid is small enough that startup costs bite).
  EXPECT_GT(one_ms / eight_ms, 1.5)
      << "1 worker " << one_ms << " ms vs 8 workers " << eight_ms << " ms";
}

}  // namespace
}  // namespace dqme::verify
