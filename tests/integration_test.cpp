// Cross-algorithm integration sweeps: every protocol must satisfy the three
// theorems under light and heavy load, across sizes and seeds, and the
// relative performance claims of §5 must hold between algorithms.
#include <gtest/gtest.h>

#include "test_util.h"

namespace dqme {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using mutex::Algo;
using testing::heavy_cfg;
using testing::light_cfg;
using testing::run_checked;

struct SweepParam {
  Algo algo;
  int n;
  uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string algo(mutex::to_string(info.param.algo));
  for (char& c : algo)
    if (c == '-') c = '_';
  return algo + "_n" + std::to_string(info.param.n) + "_s" +
         std::to_string(info.param.seed);
}

class AllAlgosSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AllAlgosSweep, SafeAndLiveUnderHeavyLoad) {
  const SweepParam p = GetParam();
  ExperimentResult r = run_checked(heavy_cfg(p.algo, p.n, p.seed));
  EXPECT_GT(r.summary.completed, 0u);
}

TEST_P(AllAlgosSweep, SafeAndLiveUnderLightLoad) {
  const SweepParam p = GetParam();
  ExperimentResult r = run_checked(light_cfg(p.algo, p.n, p.seed));
  EXPECT_GT(r.summary.completed, 0u);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (Algo a : mutex::all_algos())
    for (int n : {4, 9, 25})
      for (uint64_t seed : {1ull, 2ull, 3ull}) out.push_back({a, n, seed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllAlgosSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

// §5.2: the proposed algorithm's synchronization delay is ~T where
// Maekawa's is ~2T, with everything else equal.
TEST(CrossAlgorithm, ProposedHalvesSyncDelayVsMaekawa) {
  ExperimentResult proposed =
      run_checked(heavy_cfg(Algo::kCaoSinghal, 25, 11));
  ExperimentResult maekawa = run_checked(heavy_cfg(Algo::kMaekawa, 25, 11));
  EXPECT_LT(proposed.sync_delay_in_t, 1.4);
  EXPECT_GT(maekawa.sync_delay_in_t, 1.6);
  EXPECT_LT(proposed.sync_delay_in_t, 0.75 * maekawa.sync_delay_in_t);
}

// §5.2: "the rate of CS execution (i.e., throughput) is doubled".
TEST(CrossAlgorithm, ProposedRoughlyDoublesThroughputVsMaekawa) {
  ExperimentConfig pc = heavy_cfg(Algo::kCaoSinghal, 25, 12);
  ExperimentConfig mc = heavy_cfg(Algo::kMaekawa, 25, 12);
  pc.workload.cs_duration = mc.workload.cs_duration = 10;  // E << T
  ExperimentResult proposed = run_checked(pc);
  ExperimentResult maekawa = run_checked(mc);
  const double ratio =
      proposed.summary.throughput / maekawa.summary.throughput;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
}

// §5.3 Table 1: message complexity ranking at light load —
// Lamport 3(N-1) > Ricart-Agrawala 2(N-1) > quorum-based 3(K-1).
TEST(CrossAlgorithm, LightLoadMessageComplexityRanking) {
  const int n = 25;
  ExperimentResult lam = run_checked(light_cfg(Algo::kLamport, n, 5));
  ExperimentResult ra = run_checked(light_cfg(Algo::kRicartAgrawala, n, 5));
  ExperimentResult cs = run_checked(light_cfg(Algo::kCaoSinghal, n, 5));
  EXPECT_NEAR(lam.summary.wire_msgs_per_cs, 3.0 * (n - 1), 0.5);
  EXPECT_NEAR(ra.summary.wire_msgs_per_cs, 2.0 * (n - 1), 0.5);
  // K = 9 for a 5x5 grid: 3(K-1) = 24 when contention is rare.
  EXPECT_LT(cs.summary.wire_msgs_per_cs, 30.0);
  EXPECT_LT(cs.summary.wire_msgs_per_cs, ra.summary.wire_msgs_per_cs);
}

// Determinism: identical configuration => identical results.
TEST(CrossAlgorithm, RunsAreDeterministic) {
  ExperimentResult a = run_checked(heavy_cfg(Algo::kCaoSinghal, 9, 77));
  ExperimentResult b = run_checked(heavy_cfg(Algo::kCaoSinghal, 9, 77));
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_EQ(a.summary.wire_msgs_per_cs, b.summary.wire_msgs_per_cs);
  EXPECT_EQ(a.summary.sync_delay_contended, b.summary.sync_delay_contended);
}

}  // namespace
}  // namespace dqme
