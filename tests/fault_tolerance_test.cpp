// §6 fault tolerance: failure detection, arbiter state scrubbing, quorum
// reconstruction, and end-to-end progress across crashes — with the
// mutual-exclusion invariant checked throughout.
#include <gtest/gtest.h>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "core/failure_detector.h"
#include "quorum/factory.h"
#include "test_util.h"

namespace dqme {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using mutex::Algo;
using testing::run_checked;

ExperimentConfig ft_cfg(const std::string& quorum, int n, uint64_t seed) {
  ExperimentConfig cfg = testing::heavy_cfg(Algo::kCaoSinghal, n, seed,
                                            quorum);
  cfg.options.fault_tolerant = true;
  cfg.measure = 1'000'000;
  return cfg;
}

// ------------------------------------------------------ failure detector

struct NoticeSink final : public net::NetSite {
  void on_message(const net::Message& m, LockId) override {
    ASSERT_EQ(m.type, net::MsgType::kFailureNotice);
    notices.push_back(m.arbiter);
  }
  std::vector<SiteId> notices;
};

TEST(FailureDetector, NotifiesEveryLiveSiteWithinLatencyPlusJitter) {
  sim::Simulator sim;
  net::Network net(sim, 5, std::make_unique<net::ConstantDelay>(100), 1);
  core::FailureDetector fd(net, 2000, 500, 9);
  std::vector<NoticeSink> sinks(5);
  for (SiteId i = 0; i < 5; ++i) {
    net.attach(i, &sinks[static_cast<size_t>(i)]);
    fd.attach(i, &sinks[static_cast<size_t>(i)]);
  }
  fd.crash(3);
  EXPECT_FALSE(net.alive(3));
  sim.run_until(1999);
  for (SiteId i = 0; i < 5; ++i) EXPECT_TRUE(sinks[static_cast<size_t>(i)].notices.empty());
  sim.run_until(2500);
  for (SiteId i = 0; i < 5; ++i) {
    if (i == 3) {
      EXPECT_TRUE(sinks[3].notices.empty());  // the dead don't hear
    } else {
      ASSERT_EQ(sinks[static_cast<size_t>(i)].notices.size(), 1u) << i;
      EXPECT_EQ(sinks[static_cast<size_t>(i)].notices[0], 3);
    }
  }
}

TEST(FailureDetector, CrashedSitesGetNoLaterNotices) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(100), 1);
  core::FailureDetector fd(net, 100, 0, 9);
  std::vector<NoticeSink> sinks(3);
  for (SiteId i = 0; i < 3; ++i) fd.attach(i, &sinks[static_cast<size_t>(i)]);
  fd.crash(0);
  sim.run_until(50);
  fd.crash(1);  // crashes before 0's notice reaches it
  sim.run();
  EXPECT_TRUE(sinks[1].notices.empty());
  ASSERT_EQ(sinks[2].notices.size(), 2u);
}

TEST(FailureDetector, RejectsDoubleCrash) {
  sim::Simulator sim;
  net::Network net(sim, 2, std::make_unique<net::ConstantDelay>(100), 1);
  core::FailureDetector fd(net, 100, 0, 9);
  fd.crash(0);
  EXPECT_THROW(fd.crash(0), CheckError);
}

// ------------------------------------------------- end-to-end crash runs

// Tree quorums (§6: needs the recovery scheme): crash a mid-tree site
// while everyone hammers the CS. Progress must continue and every
// non-crashed demand must complete.
TEST(FaultTolerance, TreeQuorumSurvivesInternalNodeCrash) {
  ExperimentConfig cfg = ft_cfg("tree", 15, 50);
  cfg.crashes.push_back({cfg.warmup + 100'000, /*victim=*/1});
  ExperimentResult r = run_checked(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_GT(r.protocol_stats.recoveries, 0u);
  EXPECT_GT(r.summary.completed, 0u);
}

// Crash the root — it sits in EVERY tree quorum, so every in-flight
// request must reconstruct (§6's worst case for the tree construction).
TEST(FaultTolerance, TreeQuorumSurvivesRootCrash) {
  ExperimentConfig cfg = ft_cfg("tree", 15, 51);
  cfg.crashes.push_back({cfg.warmup + 100'000, /*victim=*/0});
  ExperimentResult r = run_checked(cfg);
  EXPECT_GT(r.protocol_stats.recoveries, 0u);
  EXPECT_GT(r.summary.completed, 0u);
}

// Majority quorums mask failures without reconfiguration (§6: "the former
// can tolerate the failure without any recovery scheme") — but our layer
// still reconstructs in-flight requests that used the dead site.
TEST(FaultTolerance, MajorityQuorumSurvivesMinorityCrashes) {
  ExperimentConfig cfg = ft_cfg("majority", 9, 52);
  cfg.crashes.push_back({cfg.warmup + 50'000, 2});
  cfg.crashes.push_back({cfg.warmup + 250'000, 5});
  cfg.crashes.push_back({cfg.warmup + 450'000, 7});
  ExperimentResult r = run_checked(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_GT(r.summary.completed, 0u);
}

// Crashing a majority leaves the survivors without any quorum: they must
// stall (abort their demands), not hang or violate safety.
TEST(FaultTolerance, SurvivorsStallWhenNoQuorumExists) {
  ExperimentConfig cfg = ft_cfg("majority", 5, 53);
  for (SiteId v = 0; v < 3; ++v)
    cfg.crashes.push_back({cfg.warmup + 100'000 + 5'000 * v, v});
  ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_TRUE(r.drained_clean);  // aborted demands are written off cleanly
  EXPECT_GT(r.demands_aborted, 0u);
}

// The victim crashes while *inside* the CS: its arbiters' locks must be
// scrubbed by the failure notices and the system must move on.
TEST(FaultTolerance, CrashInsideCriticalSectionReleasesTheSystem) {
  ExperimentConfig cfg = ft_cfg("rst:4", 16, 54);
  // Long CS so the crash instant almost surely hits someone mid-CS.
  cfg.workload.cs_duration = 5000;
  cfg.crashes.push_back({cfg.warmup + 123'456, 3});
  ExperimentResult r = run_checked(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_GT(r.summary.completed, 0u);
}

// Grid-set masks one failure with no reconfiguration at all.
TEST(FaultTolerance, GridSetMasksSingleCrash) {
  ExperimentConfig cfg = ft_cfg("gridset:4", 16, 55);
  cfg.crashes.push_back({cfg.warmup + 200'000, 9});
  ExperimentResult r = run_checked(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_GT(r.summary.completed, 0u);
}

// WITHOUT the fault-tolerance layer a crash wedges the in-flight requests
// that depended on the dead arbiter — demonstrating what §6 adds.
TEST(FaultTolerance, NonFaultTolerantModeWedgesOnCrash) {
  ExperimentConfig cfg = ft_cfg("tree", 15, 56);
  cfg.options.fault_tolerant = false;
  cfg.crashes.push_back({cfg.warmup + 100'000, 0});  // root: in every quorum
  ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u);  // safety holds regardless
  EXPECT_FALSE(r.drained_clean);        // liveness does not
}

// Randomized crash sweeps: safety + clean accounting across seeds, victims
// and quorum systems.
struct CrashSweepParam {
  const char* quorum;
  int n;
  SiteId victim;
  uint64_t seed;
};

std::string crash_name(const ::testing::TestParamInfo<CrashSweepParam>& i) {
  std::string s = i.param.quorum;
  for (char& c : s)
    if (c == ':') c = '_';
  return s + "_n" + std::to_string(i.param.n) + "_v" +
         std::to_string(i.param.victim) + "_s" + std::to_string(i.param.seed);
}

class CrashSweep : public ::testing::TestWithParam<CrashSweepParam> {};

TEST_P(CrashSweep, SafeAndAccountedAfterCrash) {
  const auto p = GetParam();
  ExperimentConfig cfg = ft_cfg(p.quorum, p.n, p.seed);
  cfg.crashes.push_back(
      {cfg.warmup + 50'000 + 1000 * static_cast<Time>(p.seed), p.victim});
  ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_TRUE(r.drained_clean)
      << "outstanding demands after crash of " << p.victim;
  EXPECT_GT(r.summary.completed, 0u);
}

std::vector<CrashSweepParam> crash_params() {
  std::vector<CrashSweepParam> out;
  for (uint64_t seed : {60ull, 61ull, 62ull}) {
    for (SiteId v : {0, 3, 7}) out.push_back({"tree", 15, v, seed});
    for (SiteId v : {1, 8}) out.push_back({"majority", 9, v, seed});
    for (SiteId v : {0, 10}) out.push_back({"rst:4", 16, v, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Crashes, CrashSweep,
                         ::testing::ValuesIn(crash_params()), crash_name);

// Two overlapping crashes with in-flight recovery from the first.
TEST(FaultTolerance, BackToBackCrashesDuringRecovery) {
  ExperimentConfig cfg = ft_cfg("tree", 15, 57);
  cfg.crashes.push_back({cfg.warmup + 100'000, 1});
  cfg.crashes.push_back({cfg.warmup + 101'000, 2});  // during detection of 1
  ExperimentResult r = run_checked(cfg);
  EXPECT_EQ(r.summary.violations, 0u);
  EXPECT_GT(r.summary.completed, 0u);
}

// The invariant checker must stay quiet across crashes: under saturation
// every site has transfers in flight, so crashing busy arbiters mid-run
// exercises the checker's ledger write-off paths (crashed holders, stale
// grants after §6 recovery, recovery releases racing fresh grants). A
// false positive here would poison every fault-tolerance CI gate.
TEST(FaultTolerance, CheckerStaysQuietWhenArbiterCrashesMidTransfer) {
  for (uint64_t seed : {3u, 19u, 42u}) {
    ExperimentConfig cfg = ft_cfg("tree", 15, seed);
    cfg.check_invariants = true;
    // Root and an internal node: arbiters for most of the tree's quorums,
    // so at crash time each is mid-tenure with accepted transfers queued.
    cfg.crashes.push_back({cfg.warmup + 150'000, 0});
    cfg.crashes.push_back({cfg.warmup + 450'000, 1});
    ExperimentResult r = harness::run_experiment(cfg);
    EXPECT_EQ(r.summary.violations, 0u) << "seed " << seed;
    EXPECT_EQ(r.invariant_violations, 0u)
        << "seed " << seed << ": "
        << (r.invariant_reports.empty() ? "" : r.invariant_reports.front());
    EXPECT_GT(r.invariant_checks, 1000u);
    EXPECT_GT(r.summary.completed, 0u);
  }
}

// ---- §6 arbiter scrub cases at message level ----
// Craft a deterministic state at one arbiter, deliver a failure notice,
// and check each printed case of the recovery protocol.

struct ScrubRig {
  ScrubRig()
      : net(sim, 9, std::make_unique<net::ConstantDelay>(1000), 4),
        quorums(quorum::make_quorum_system("grid", 9)) {
    core::CaoSinghalSite::Options opt;
    opt.fault_tolerant = true;
    for (SiteId i = 0; i < 9; ++i) {
      sites.push_back(
          std::make_unique<core::CaoSinghalSite>(i, net, *quorums, opt));
      net.attach(i, sites.back().get());
      sites.back()->on_enter = [this](SiteId id, LockId) {
        entries.push_back(id);
      };
    }
  }
  core::CaoSinghalSite& site(SiteId i) {
    return *sites[static_cast<size_t>(i)];
  }
  void notice(SiteId to, SiteId failed) {
    net.crash(failed);
    site(to).on_message(net::make_failure_notice(failed), kLock0);
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<quorum::QuorumSystem> quorums;
  std::vector<std::unique_ptr<core::CaoSinghalSite>> sites;
  std::vector<SiteId> entries;
};

// Case 3 of §6: the failed site held the arbiter's permission — the
// arbiter must hand it onward to the queue head.
TEST(FaultToleranceProtocol, ArbiterUnlocksWhenHolderDies) {
  ScrubRig rig;
  // Site 0 enters CS (holds arbiter 1 among others); site 1 queues behind.
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);  // blocked behind site 0
  // Site 0 "dies" inside the CS: every live site learns.
  rig.net.crash(0);
  for (SiteId s = 1; s < 9; ++s)
    rig.site(s).on_message(net::make_failure_notice(0), kLock0);
  rig.sim.run();
  // The arbiters scrubbed the dead holder and granted site 1.
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 1);
}

// Case 1 of §6: the failed site's request was queued — it must be removed
// so the permission never routes to it.
TEST(FaultToleranceProtocol, QueuedRequestOfDeadSiteIsScrubbed) {
  ScrubRig rig;
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  rig.site(1).request_cs(kLock0);  // queues behind 0 at the shared arbiters
  rig.sim.run();
  // Site 1 dies while queued; notices reach everyone.
  rig.net.crash(1);
  for (SiteId s = 0; s < 9; ++s)
    if (s != 1) rig.site(s).on_message(net::make_failure_notice(1), kLock0);
  rig.sim.run();
  // Site 0 can exit and the system stays consistent; a later requester is
  // served directly, not the dead site.
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  rig.site(2).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 2);
}

// Requester-side recovery: a waiting site whose quorum member dies
// re-forms its quorum and still gets in.
TEST(FaultToleranceProtocol, WaitingRequesterReformsQuorum) {
  ScrubRig rig;
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  ASSERT_TRUE(rig.site(0).in_cs());
  rig.site(4).request_cs(kLock0);  // waits (shared arbiters with 0)
  rig.sim.run();
  // One of 4's quorum members dies while 4 waits.
  const SiteId victim = rig.site(4).req_set()[0] != 4
                            ? rig.site(4).req_set()[0]
                            : rig.site(4).req_set()[1];
  ASSERT_NE(victim, 0);  // keep the CS holder alive for this scenario
  rig.net.crash(victim);
  for (SiteId s = 0; s < 9; ++s)
    if (s != victim) rig.site(s).on_message(net::make_failure_notice(victim), kLock0);
  rig.sim.run();
  EXPECT_GT(rig.site(4).protocol_stats().recoveries, 0u);
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 4);
}

// A stalled site must refuse further requests loudly.
TEST(FaultToleranceProtocol, StalledSiteRejectsNewRequests) {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(100), 2);
  auto quorums = quorum::make_quorum_system("majority", 3);
  core::CaoSinghalSite::Options opt;
  opt.fault_tolerant = true;
  core::CaoSinghalSite site(2, net, *quorums, opt);
  net.attach(2, &site);
  bool aborted = false;
  site.on_abort = [&](SiteId, LockId) { aborted = true; };
  // Kill a majority before the site ever requests.
  net.crash(0);
  net.crash(1);
  site.on_message(net::make_failure_notice(0), kLock0);
  site.on_message(net::make_failure_notice(1), kLock0);
  site.request_cs(kLock0);
  sim.run();
  EXPECT_TRUE(aborted);
  EXPECT_TRUE(site.stalled());
  EXPECT_THROW(site.request_cs(kLock0), CheckError);
}

}  // namespace
}  // namespace dqme
