// Token-based baselines: Suzuki-Kasami (broadcast, N messages, delay T) and
// Raymond's tree (O(log N) messages, O(log N) delay) — the "long delay"
// class the paper contrasts itself with (§1, Table 1).
#include <gtest/gtest.h>

#include "net/network.h"
#include "mutex/raymond.h"
#include "mutex/suzuki_kasami.h"
#include "test_util.h"

namespace dqme {
namespace {

template <typename SiteT>
struct TokenRig {
  explicit TokenRig(int n, Time delay = 1000)
      : net(sim, n, std::make_unique<net::ConstantDelay>(delay), 3) {
    for (SiteId i = 0; i < n; ++i) {
      sites.push_back(std::make_unique<SiteT>(i, net));
      net.attach(i, sites.back().get());
      sites.back()->on_enter = [this](SiteId id, LockId) {
        entries.push_back(id);
      };
    }
  }
  SiteT& site(SiteId i) { return *sites[static_cast<size_t>(i)]; }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<SiteT>> sites;
  std::vector<SiteId> entries;
};

// ------------------------------------------------------------ Suzuki-Kasami

TEST(SuzukiKasami, HolderEntersWithZeroMessages) {
  TokenRig<mutex::SuzukiKasamiSite> rig(5);
  rig.site(0).request_cs(kLock0);  // site 0 starts with the token
  rig.sim.run();
  EXPECT_EQ(rig.entries, (std::vector<SiteId>{0}));
  EXPECT_EQ(rig.net.stats().wire_messages, 0u);
}

TEST(SuzukiKasami, NonHolderCostsExactlyNMessages) {
  TokenRig<mutex::SuzukiKasamiSite> rig(5);
  rig.site(3).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.site(3).release_cs(kLock0);
  rig.sim.run();
  // (N-1) broadcast + 1 token transfer.
  EXPECT_EQ(rig.net.stats().wire_messages, 5u);
}

TEST(SuzukiKasami, TokenMovesWithTheHolder) {
  TokenRig<mutex::SuzukiKasamiSite> rig(3);
  EXPECT_TRUE(rig.site(0).holds_token());
  rig.site(2).request_cs(kLock0);
  rig.sim.run();
  EXPECT_FALSE(rig.site(0).holds_token());
  EXPECT_TRUE(rig.site(2).holds_token());
}

TEST(SuzukiKasami, QueueServesAllWaiters) {
  TokenRig<mutex::SuzukiKasamiSite> rig(4);
  rig.site(1).request_cs(kLock0);
  rig.site(2).request_cs(kLock0);
  rig.site(3).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  for (int done = 1; done <= 3; ++done) {
    rig.site(rig.entries.back()).release_cs(kLock0);
    rig.sim.run();
  }
  // Everyone eventually entered exactly once.
  std::vector<SiteId> sorted = rig.entries;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<SiteId>{1, 2, 3}));
}

TEST(SuzukiKasami, StaleRequestNumbersAreIgnored) {
  TokenRig<mutex::SuzukiKasamiSite> rig(3);
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  rig.site(1).release_cs(kLock0);
  rig.sim.run();
  const auto tokens_before = rig.net.stats().count(net::MsgType::kToken);
  // Replay site 1's old broadcast at site... the token holder is site 1
  // itself now; deliver a crafted stale request to it.
  net::Message stale;
  stale.type = net::MsgType::kTokenReq;
  stale.src = 2;
  stale.dst = 1;
  stale.seq = 0;  // long since served
  rig.site(1).on_message(stale, kLock0);
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().count(net::MsgType::kToken), tokens_before);
}

TEST(SuzukiKasami, SynchronizationDelayIsT) {
  auto r = testing::run_checked(
      testing::heavy_cfg(mutex::Algo::kSuzukiKasami, 9, 23));
  EXPECT_NEAR(r.sync_delay_in_t, 1.0, 0.15);
}

// ----------------------------------------------------------------- Raymond

TEST(Raymond, RootEntersWithZeroMessages) {
  TokenRig<mutex::RaymondSite> rig(7);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  EXPECT_EQ(rig.entries, (std::vector<SiteId>{0}));
  EXPECT_EQ(rig.net.stats().wire_messages, 0u);
}

TEST(Raymond, RequestClimbsTreeAndTokenDescends) {
  TokenRig<mutex::RaymondSite> rig(7, 1000);
  // Site 6 is two hops from the root: parent(6)=2, parent(2)=0.
  rig.site(6).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  EXPECT_EQ(rig.entries[0], 6);
  // 2 request hops up + 2 token hops down.
  EXPECT_EQ(rig.net.stats().wire_messages, 4u);
  EXPECT_EQ(rig.sim.now(), 4000);
  EXPECT_TRUE(rig.site(6).holds_token());
  EXPECT_FALSE(rig.site(0).holds_token());
}

TEST(Raymond, TokenStaysPutForRepeatLocalUse) {
  TokenRig<mutex::RaymondSite> rig(7);
  rig.site(5).request_cs(kLock0);
  rig.sim.run();
  rig.site(5).release_cs(kLock0);
  rig.sim.run();
  const auto msgs = rig.net.stats().wire_messages;
  rig.site(5).request_cs(kLock0);  // token already here
  rig.sim.run();
  EXPECT_EQ(rig.net.stats().wire_messages, msgs);
  EXPECT_EQ(rig.entries.size(), 2u);
}

TEST(Raymond, SiblingHandoffGoesThroughCommonAncestor) {
  TokenRig<mutex::RaymondSite> rig(3);
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  rig.site(2).request_cs(kLock0);
  rig.sim.run();
  EXPECT_EQ(rig.entries.size(), 1u);
  rig.site(1).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 2);
}

TEST(Raymond, ManyWaitersAllServed) {
  TokenRig<mutex::RaymondSite> rig(15);
  for (SiteId i = 1; i < 15; ++i) rig.site(i).request_cs(kLock0);
  rig.sim.run();
  while (!rig.entries.empty() && rig.entries.size() < 14) {
    rig.site(rig.entries.back()).release_cs(kLock0);
    rig.sim.run();
  }
  std::vector<SiteId> sorted = rig.entries;
  std::sort(sorted.begin(), sorted.end());
  for (SiteId i = 1; i < 15; ++i)
    EXPECT_EQ(sorted[static_cast<size_t>(i - 1)], i);
}

// Raymond's delay grows with the tree height — the paper's argument for
// why O(log N) message algorithms pay in delay.
TEST(Raymond, SynchronizationDelayExceedsTAtScale) {
  auto r = testing::run_checked(testing::heavy_cfg(mutex::Algo::kRaymond,
                                                   15, 24));
  EXPECT_GT(r.sync_delay_in_t, 1.05);
}

TEST(Raymond, AverageMessagesPerCsIsLogarithmic) {
  auto r = testing::run_checked(testing::heavy_cfg(mutex::Algo::kRaymond,
                                                   31, 25));
  // ~2*height at light load, less under heavy load (requests coalesce).
  EXPECT_LT(r.summary.wire_msgs_per_cs, 12.0);
}

// §1: "token-based algorithms suffer from token loss problem" — the
// paper's stated reason to prefer permission-based schemes. Demonstrate:
// crash the token holder and the rest of the system is wedged forever.
TEST(TokenLoss, CrashedHolderWedgesSuzukiKasami) {
  TokenRig<mutex::SuzukiKasamiSite> rig(4);
  rig.site(2).request_cs(kLock0);
  rig.sim.run();
  ASSERT_TRUE(rig.site(2).holds_token());
  rig.net.crash(2);  // dies inside the CS, token and all
  rig.site(0).request_cs(kLock0);
  rig.site(1).request_cs(kLock0);
  rig.sim.run_until(rig.sim.now() + 1'000'000);
  EXPECT_EQ(rig.entries.size(), 1u);  // nobody else ever gets in
}

TEST(TokenLoss, CrashedHolderWedgesRaymond) {
  TokenRig<mutex::RaymondSite> rig(7);
  rig.site(5).request_cs(kLock0);
  rig.sim.run();
  ASSERT_TRUE(rig.site(5).holds_token());
  rig.net.crash(5);
  rig.site(3).request_cs(kLock0);
  rig.sim.run_until(rig.sim.now() + 1'000'000);
  EXPECT_EQ(rig.entries.size(), 1u);
}

// By contrast the quorum algorithm with the §6 layer survives the same
// fault (shown end-to-end in fault_tolerance_test; this is the A/B).

}  // namespace
}  // namespace dqme
