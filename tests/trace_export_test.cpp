// Chrome trace exporter tests: the emitted JSON must be syntactically
// valid, every CS "B" must have its matching "E" on the same lane, the
// paper's proxy-forwarded reply must appear as a distinct flow arrow, and
// the whole export must be byte-stable (golden file — regenerate with
// DQME_REGEN_GOLDEN=1 after an intentional format change).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "mutex/factory.h"
#include "net/trace.h"
#include "obs/chrome_trace.h"
#include "obs/span.h"
#include "quorum/factory.h"
#include "sim/simulator.h"

namespace dqme::obs {
namespace {

// --- a minimal JSON syntax checker (no external deps) -----------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// Pulls `"key": value` out of a single-line event record (the writer emits
// one event per line, so line-local extraction is exact).
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t from = at + needle.size();
  size_t to = from;
  if (line[from] == '"') {
    to = line.find('"', from + 1);
    return line.substr(from + 1, to - from - 1);
  }
  while (to < line.size() && line[to] != ',' && line[to] != '}') ++to;
  return line.substr(from, to - from);
}

// The tiniest contended Cao–Singhal scenario: 3 sites, overlapping grid
// quorums, two sites ping-ponging the CS so the exiting holder forwards
// replies (the proxy arrow the viewer — and this test — looks for).
std::string render_tiny_trace() {
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(1000), 1);
  net::TraceRecorder messages(net);
  SpanRecorder spans(net);
  auto quorums = quorum::make_quorum_system("grid", 3);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  for (SiteId i = 0; i < 3; ++i) {
    sites.push_back(mutex::make_site(mutex::Algo::kCaoSinghal, i, net,
                                     quorums.get(), mutex::AlgoOptions{}));
    net.attach(i, sites.back().get());
    spans.attach(*sites.back());
  }
  for (SiteId id : {SiteId{0}, SiteId{2}}) {
    auto* s = sites[static_cast<size_t>(id)].get();
    auto remaining = std::make_shared<int>(3);
    s->on_enter = [&sim, s, remaining](SiteId, LockId) {
      sim.schedule_after(100, [s, remaining] {
        s->release_cs(kLock0);
        if (--*remaining > 0) s->request_cs(kLock0);
      });
    };
    s->request_cs(kLock0);
  }
  sim.run();

  ChromeTraceData data;
  data.n_sites = 3;
  data.label = "trace_export_test cao-singhal N=3";
  data.messages = messages.events();
  data.span_events = spans.events();
  std::ostringstream os;
  write_chrome_trace(os, data);
  return os.str();
}

std::vector<std::string> event_lines(const std::string& json) {
  std::vector<std::string> out;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line))
    if (line.find("\"ph\": ") != std::string::npos) out.push_back(line);
  return out;
}

TEST(ChromeTrace, EmitsSyntacticallyValidJson) {
  const std::string json = render_tiny_trace();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ChromeTrace, EveryLaneIsNamedAndEveryBeginHasItsEnd) {
  const std::string json = render_tiny_trace();
  const auto lines = event_lines(json);
  ASSERT_FALSE(lines.empty());
  int lanes = 0;
  // Per-lane stack depth of B/E slice events; 'E' must never underflow and
  // every lane must end balanced (the exporter drops unclosed opens).
  std::map<std::string, int> depth;
  for (const std::string& l : lines) {
    const std::string ph = field(l, "ph");
    if (ph == "M" && field(l, "name") == "thread_name") ++lanes;
    if (ph == "B") ++depth[field(l, "tid")];
    if (ph == "E") {
      --depth[field(l, "tid")];
      EXPECT_GE(depth[field(l, "tid")], 0) << "E without B: " << l;
    }
  }
  EXPECT_EQ(lanes, 3);
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unclosed B on lane "
                                                     << tid;
}

TEST(ChromeTrace, ProxyReplyAppearsAsADistinctFlowArrow) {
  const std::string json = render_tiny_trace();
  const auto lines = event_lines(json);
  int proxy_start = 0, proxy_finish = 0, proxy_slices = 0;
  for (const std::string& l : lines) {
    if (field(l, "cat") != "proxy") continue;
    EXPECT_EQ(field(l, "name"), "reply (proxy)");
    const std::string ph = field(l, "ph");
    if (ph == "s") ++proxy_start;
    if (ph == "f") ++proxy_finish;
    if (ph == "X") ++proxy_slices;
  }
  // The ping-pong produces at least one proxied handoff; each renders as
  // two slices plus a paired s/f arrow.
  EXPECT_GT(proxy_start, 0);
  EXPECT_EQ(proxy_start, proxy_finish);
  EXPECT_EQ(proxy_slices, 2 * proxy_start);
}

TEST(ChromeTrace, AcquireSpansPairUpByPhase) {
  const std::string json = render_tiny_trace();
  int b = 0, e = 0;
  for (const std::string& l : event_lines(json)) {
    const std::string ph = field(l, "ph");
    if (ph == "b") ++b;
    if (ph == "e") ++e;
  }
  EXPECT_GT(b, 0);
  EXPECT_EQ(b, e);
}

TEST(ChromeTrace, SpanFilterKeepsOnlyThatSpansEvents) {
  // Re-render with only_span set to the first handoff's span: every
  // span-tagged event left must carry it.
  sim::Simulator sim;
  net::Network net(sim, 3, std::make_unique<net::ConstantDelay>(1000), 1);
  net::TraceRecorder messages(net);
  SpanRecorder spans(net);
  auto quorums = quorum::make_quorum_system("grid", 3);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  for (SiteId i = 0; i < 3; ++i) {
    sites.push_back(mutex::make_site(mutex::Algo::kCaoSinghal, i, net,
                                     quorums.get(), mutex::AlgoOptions{}));
    net.attach(i, sites.back().get());
    spans.attach(*sites.back());
  }
  sites[0]->on_enter = [&](SiteId, LockId) {
    sim.schedule_after(100, [&] { sites[0]->release_cs(kLock0); });
  };
  sites[0]->request_cs(kLock0);
  sim.run();
  ASSERT_FALSE(spans.events().empty());
  const SpanId target = spans.events().front().span;
  ASSERT_NE(target, kNoSpan);

  ChromeTraceData data;
  data.n_sites = 3;
  data.messages = messages.events();
  data.span_events = spans.events();
  data.only_span = target;
  std::ostringstream os;
  write_chrome_trace(os, data);
  const std::string expect_arg = "\"span\": \"" + format_span(target) + "\"";
  for (const std::string& l : event_lines(os.str())) {
    if (field(l, "ph") == "M") continue;  // lane metadata is unfiltered
    if (l.find("\"args\"") == std::string::npos) continue;
    EXPECT_NE(l.find(expect_arg), std::string::npos) << l;
  }
}

TEST(ChromeTrace, MatchesGoldenFile) {
  const std::string json = render_tiny_trace();
  const std::string path =
      std::string(DQME_SOURCE_DIR) + "/tests/golden/trace_3site.json";
  if (std::getenv("DQME_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << json;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with DQME_REGEN_GOLDEN=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "trace export drifted from the golden file; if intentional, "
         "regenerate with DQME_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace dqme::obs
