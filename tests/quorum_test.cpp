// Unit tests for coterie primitives and each quorum construction's
// structural properties (sizes, shapes, §5.3's K values).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "quorum/availability.h"
#include "quorum/factory.h"
#include "quorum/fpp.h"
#include "quorum/galois.h"
#include "quorum/grid.h"
#include "quorum/gridset.h"
#include "quorum/hqc.h"
#include "quorum/majority.h"
#include "quorum/rst.h"
#include "quorum/tree.h"
#include "quorum/trivial.h"

namespace dqme::quorum {
namespace {

TEST(Coterie, IntersectsDetectsSharedSites) {
  EXPECT_TRUE(intersects({1, 3, 5}, {2, 3, 4}));
  EXPECT_FALSE(intersects({1, 3, 5}, {2, 4, 6}));
  EXPECT_FALSE(intersects({}, {1}));
}

TEST(Coterie, SubsetDetection) {
  EXPECT_TRUE(is_subset({2, 4}, {1, 2, 3, 4}));
  EXPECT_FALSE(is_subset({2, 5}, {1, 2, 3, 4}));
  EXPECT_TRUE(is_subset({}, {1}));
}

TEST(Coterie, NormalizeSortsAndDedups) {
  Quorum q{5, 1, 3, 1, 5};
  normalize(q);
  EXPECT_EQ(q, (Quorum{1, 3, 5}));
}

TEST(Coterie, ValidateAcceptsPaperExample) {
  // C = {{a,b},{b,c}} under U = {a,b,c} (paper §2).
  auto r = validate_coterie({{0, 1}, {1, 2}}, 3);
  EXPECT_TRUE(r.strictly_ok());
}

TEST(Coterie, ValidateRejectsDisjointQuorums) {
  auto r = validate_coterie({{0, 1}, {2, 3}}, 4);
  EXPECT_FALSE(r.intersection);
  EXPECT_NE(r.detail.find("disjoint"), std::string::npos);
}

TEST(Coterie, ValidateRejectsNestedQuorums) {
  auto r = validate_coterie({{0, 1}, {0, 1, 2}}, 3);
  EXPECT_TRUE(r.intersection);
  EXPECT_FALSE(r.minimality);
}

TEST(Coterie, ValidateRejectsMalformedQuorum) {
  auto r = validate_coterie({{1, 0}}, 2);  // unsorted
  EXPECT_FALSE(r.well_formed);
}

TEST(Coterie, DedupRemovesDuplicates) {
  Coterie c = dedup({{2, 1}, {1, 2}, {3}});
  EXPECT_EQ(c.size(), 2u);
}

// ---------------------------------------------------------------- grid

TEST(Grid, PerfectSquareQuorumSizeIs2RootNMinus1) {
  GridQuorum g(25);
  for (SiteId i = 0; i < 25; ++i)
    EXPECT_EQ(g.quorum_for(i).size(), 9u);  // 2*5 - 1
}

TEST(Grid, HandlesNonSquareN) {
  for (int n : {2, 3, 5, 7, 10, 12, 23, 26, 40}) {
    GridQuorum g(n);
    auto r = validate_coterie(g.base_coterie(), n);
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.detail;
    for (SiteId i = 0; i < n; ++i) {
      auto q = g.quorum_for(i);
      EXPECT_TRUE(is_valid_quorum(q, n)) << "n=" << n << " i=" << i;
      EXPECT_LE(q.size(), static_cast<size_t>(2 * g.side() - 1));
    }
  }
}

TEST(Grid, QuorumContainsSelf) {
  GridQuorum g(25);
  for (SiteId i = 0; i < 25; ++i) {
    auto q = g.quorum_for(i);
    EXPECT_TRUE(std::binary_search(q.begin(), q.end(), i));
  }
}

TEST(Grid, SurvivesSingleFailureViaAlternateCross) {
  GridQuorum g(25);
  std::vector<bool> alive(25, true);
  alive[12] = false;  // centre of the grid
  for (SiteId i = 0; i < 25; ++i) {
    auto q = g.quorum_for_alive(i, alive);
    ASSERT_TRUE(q.has_value()) << i;
    for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
  }
}

TEST(Grid, FullRowFailureKillsAvailability) {
  GridQuorum g(25);
  std::vector<bool> alive(25, true);
  for (int c = 0; c < 5; ++c) alive[static_cast<size_t>(2 * 5 + c)] = false;
  // No full column survives, hence no cross.
  EXPECT_FALSE(g.available(alive));
}

// ----------------------------------------------------------------- fpp

TEST(Fpp, RecognizesProjectivePlaneSizes) {
  EXPECT_EQ(fpp_order_for(7), 2);
  EXPECT_EQ(fpp_order_for(13), 3);
  EXPECT_EQ(fpp_order_for(21), 4);    // prime power via GF(4)
  EXPECT_EQ(fpp_order_for(31), 5);
  EXPECT_EQ(fpp_order_for(57), 7);
  EXPECT_EQ(fpp_order_for(73), 8);    // GF(8)
  EXPECT_EQ(fpp_order_for(91), 9);    // GF(9)
  EXPECT_EQ(fpp_order_for(133), 11);
  EXPECT_EQ(fpp_order_for(273), 16);  // GF(16)
  EXPECT_EQ(fpp_order_for(25), -1);   // not of the form q^2+q+1
}

TEST(Fpp, RejectsUnsupportedN) {
  EXPECT_THROW(FppQuorum q(25), CheckError);
}

TEST(Fpp, QuorumSizeIsQPlus1) {
  for (int n : {7, 13, 21, 31, 57, 73, 91, 273}) {
    FppQuorum f(n);
    for (SiteId i = 0; i < n; ++i)
      EXPECT_EQ(f.quorum_for(i).size(),
                static_cast<size_t>(f.order() + 1));
  }
}

TEST(Fpp, AnyTwoLinesMeetInExactlyOnePoint) {
  for (int n : {7, 13, 21, 31, 73, 91}) {
    FppQuorum f(n);
    for (SiteId a = 0; a < n; ++a) {
      const auto qa = f.quorum_for(a);
      for (SiteId b = a + 1; b < n; ++b) {
        const auto qb = f.quorum_for(b);
        Quorum inter;
        std::set_intersection(qa.begin(), qa.end(), qb.begin(), qb.end(),
                              std::back_inserter(inter));
        EXPECT_EQ(inter.size(), 1u) << "n=" << n << " lines " << a << "," << b;
      }
    }
  }
}

TEST(Fpp, EverySiteAppearsInExactlyQPlus1Quorums) {
  // Self-duality: each point lies on q+1 lines — load is perfectly even.
  FppQuorum f(13);
  std::vector<int> appearances(13, 0);
  for (SiteId i = 0; i < 13; ++i)
    for (SiteId s : f.quorum_for(i)) ++appearances[static_cast<size_t>(s)];
  for (int a : appearances) EXPECT_EQ(a, f.order() + 1);
}


// ------------------------------------------------------------- galois

TEST(Galois, SupportedOrders) {
  for (int q : {2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 31})
    EXPECT_TRUE(is_supported_field_order(q)) << q;
  for (int q : {1, 6, 10, 12, 32, 49})
    EXPECT_FALSE(is_supported_field_order(q)) << q;
}

TEST(Galois, FieldAxiomsHoldForEveryOrder) {
  for (int q : {2, 3, 4, 5, 7, 8, 9, 16, 25, 27}) {
    GaloisField f(q);
    for (int a = 0; a < q; ++a) {
      EXPECT_EQ(f.add(a, 0), a);
      EXPECT_EQ(f.mul(a, 1), a);
      EXPECT_EQ(f.mul(a, 0), 0);
      EXPECT_EQ(f.add(a, f.neg(a)), 0);
      if (a != 0) {
        EXPECT_EQ(f.mul(a, f.inv(a)), 1) << "GF(" << q << ") " << a;
      }
      for (int b = 0; b < q; ++b) {
        EXPECT_EQ(f.add(a, b), f.add(b, a));
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
        // No zero divisors.
        if (a != 0 && b != 0) {
          EXPECT_NE(f.mul(a, b), 0);
        }
        for (int c = 0; c < q && q <= 9; ++c) {
          EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
          EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
          EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        }
      }
    }
  }
}

// ---------------------------------------------------------------- tree

TEST(Tree, RequiresPowerOfTwoMinusOne) {
  EXPECT_THROW(TreeQuorum t(6), CheckError);
  EXPECT_NO_THROW(TreeQuorum t(7));
  EXPECT_NO_THROW(TreeQuorum t(15));
}

TEST(Tree, AllUpQuorumIsRootToLeafPath) {
  TreeQuorum t(15);
  for (SiteId i = 0; i < 15; ++i) {
    auto q = t.quorum_for(i);
    EXPECT_EQ(q.size(), 4u);  // depth of a 15-node complete tree
    EXPECT_EQ(q[0], 0);       // includes the root
  }
}

TEST(Tree, BestCaseSizeIsLogN) {
  for (int n : {7, 15, 31, 63, 127}) {
    TreeQuorum t(n);
    EXPECT_EQ(t.quorum_for(0).size(),
              static_cast<size_t>(t.depth()));
  }
}

TEST(Tree, DeadRootIsSubstitutedByBothChildren) {
  TreeQuorum t(7);
  std::vector<bool> alive(7, true);
  alive[0] = false;
  auto q = t.quorum_for_alive(3, alive);
  ASSERT_TRUE(q.has_value());
  // Both child paths required: 2 paths of 2 nodes each.
  EXPECT_EQ(q->size(), 4u);
  for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
}

TEST(Tree, DeadLeafForcesSiblingPath) {
  TreeQuorum t(7);
  std::vector<bool> alive(7, true);
  alive[3] = false;  // leftmost leaf
  auto q = t.quorum_for_alive(0, alive);
  ASSERT_TRUE(q.has_value());
  for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
}

TEST(Tree, AllLeavesDeadMeansUnavailable) {
  TreeQuorum t(7);
  std::vector<bool> alive(7, true);
  for (SiteId leaf : {3, 4, 5, 6}) alive[static_cast<size_t>(leaf)] = false;
  EXPECT_FALSE(t.available(alive));
  EXPECT_FALSE(t.quorum_for_alive(0, alive).has_value());
}

TEST(Tree, SteeringSpreadsLoadAcrossLeaves) {
  TreeQuorum t(31);
  std::set<Quorum> distinct;
  for (SiteId i = 0; i < 31; ++i) distinct.insert(t.quorum_for(i));
  EXPECT_GT(distinct.size(), 8u);  // many distinct root-leaf paths in use
}

// ------------------------------------------------------------- majority

TEST(Majority, SizeIsFloorHalfPlusOne) {
  EXPECT_EQ(MajorityQuorum(9).majority_size(), 5);
  EXPECT_EQ(MajorityQuorum(10).majority_size(), 6);
  for (SiteId i = 0; i < 9; ++i)
    EXPECT_EQ(MajorityQuorum(9).quorum_for(i).size(), 5u);
}

TEST(Majority, AvailableIffMajorityAlive) {
  MajorityQuorum m(9);
  std::vector<bool> alive(9, true);
  for (int dead = 0; dead <= 4; ++dead) {
    EXPECT_TRUE(m.available(alive)) << dead;
    alive[static_cast<size_t>(dead)] = false;
  }
  EXPECT_FALSE(m.available(alive));  // 5 dead of 9
}

TEST(Majority, AdaptiveQuorumUsesOnlyLiveSites) {
  MajorityQuorum m(9);
  std::vector<bool> alive(9, true);
  alive[1] = alive[2] = false;
  for (SiteId i = 0; i < 9; ++i) {
    auto q = m.quorum_for_alive(i, alive);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->size(), 5u);
    for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
  }
}

// ------------------------------------------------------------------ hqc

TEST(Hqc, RequiresPowerOfThree) {
  EXPECT_THROW(HqcQuorum h(10), CheckError);
  EXPECT_NO_THROW(HqcQuorum h(27));
}

TEST(Hqc, QuorumSizeIsTwoToTheLevels) {
  for (int d = 1; d <= 4; ++d) {
    int n = 1;
    for (int i = 0; i < d; ++i) n *= 3;
    HqcQuorum h(n);
    for (SiteId i = 0; i < n; i += std::max(1, n / 10))
      EXPECT_EQ(h.quorum_for(i).size(), static_cast<size_t>(1 << d))
          << "n=" << n;
  }
}

TEST(Hqc, SurvivesOneThirdFailuresPerLevel) {
  HqcQuorum h(9);
  std::vector<bool> alive(9, true);
  alive[0] = false;  // one leaf in first group
  alive[3] = false;  // one leaf in second group
  EXPECT_TRUE(h.available(alive));
  auto q = h.quorum_for_alive(0, alive);
  ASSERT_TRUE(q.has_value());
  for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
}

TEST(Hqc, TwoWholeGroupsDownMeansUnavailable) {
  HqcQuorum h(9);
  std::vector<bool> alive(9, true);
  for (SiteId s : {0, 1, 2, 3, 4, 5}) alive[static_cast<size_t>(s)] = false;
  EXPECT_FALSE(h.available(alive));
}

// ------------------------------------------------------- gridset / rst

TEST(GridSet, RequiresDivisibleGroups) {
  EXPECT_THROW(GridSetQuorum g(10, 4), CheckError);
  EXPECT_NO_THROW(GridSetQuorum g(12, 4));
}

TEST(GridSet, QuorumSpansMajorityOfGroups) {
  GridSetQuorum g(16, 4);  // 4 groups of 4, majority = 3 groups
  EXPECT_EQ(g.groups(), 4);
  auto q = g.quorum_for(0);
  // 3 groups x grid-cross(4)=3 members, minus overlaps within groups.
  EXPECT_GE(q.size(), 9u);
  EXPECT_TRUE(is_valid_quorum(q, 16));
}

TEST(GridSet, MasksSingleSiteFailureWithoutReconfiguration) {
  GridSetQuorum g(16, 4);
  std::vector<bool> alive(16, true);
  alive[5] = false;
  EXPECT_TRUE(g.available(alive));
  auto q = g.quorum_for_alive(1, alive);
  ASSERT_TRUE(q.has_value());
  for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
}

TEST(Rst, RequiresDivisibleGroups) {
  EXPECT_THROW(RstQuorum r(10, 4), CheckError);
  EXPECT_NO_THROW(RstQuorum r(12, 4));
}

TEST(Rst, QuorumIsMajoritiesAcrossGridOfGroups) {
  RstQuorum r(16, 4);  // 4 groups in a 2x2 grid; cross = 3 groups
  auto q = r.quorum_for(0);
  // 3 groups x majority(4)=3 members.
  EXPECT_EQ(q.size(), 9u);
  EXPECT_TRUE(is_valid_quorum(q, 16));
}

TEST(Rst, MasksMinorityFailuresInsideGroups) {
  RstQuorum r(16, 4);
  std::vector<bool> alive(16, true);
  alive[0] = alive[5] = alive[10] = alive[15] = false;  // 1 per group
  EXPECT_TRUE(r.available(alive));
  auto q = r.quorum_for_alive(3, alive);
  ASSERT_TRUE(q.has_value());
  for (SiteId s : *q) EXPECT_TRUE(alive[static_cast<size_t>(s)]);
}

// -------------------------------------------------------------- trivial

TEST(Trivial, SingletonIsCentralCoordinator) {
  SingletonQuorum s(5);
  for (SiteId i = 0; i < 5; ++i) EXPECT_EQ(s.quorum_for(i), (Quorum{0}));
  std::vector<bool> alive(5, true);
  alive[0] = false;
  EXPECT_FALSE(s.available(alive));
}

TEST(Trivial, AllRequiresUnanimity) {
  AllQuorum a(4);
  EXPECT_EQ(a.quorum_for(2).size(), 4u);
  std::vector<bool> alive(4, true);
  EXPECT_TRUE(a.available(alive));
  alive[3] = false;
  EXPECT_FALSE(a.available(alive));
}

// -------------------------------------------------------------- factory

TEST(Factory, BuildsEveryKnownKind) {
  EXPECT_EQ(make_quorum_system("grid", 25)->name(), "grid(5x5)");
  EXPECT_EQ(make_quorum_system("fpp", 13)->name(), "fpp(q=3)");
  EXPECT_EQ(make_quorum_system("tree", 15)->name(), "tree(depth=4)");
  EXPECT_EQ(make_quorum_system("majority", 10)->name(), "majority");
  EXPECT_EQ(make_quorum_system("hqc", 27)->name(), "hqc(3^3)");
  EXPECT_EQ(make_quorum_system("gridset:4", 16)->name(), "gridset(G=4)");
  EXPECT_EQ(make_quorum_system("rst:4", 16)->name(), "rst(G=4)");
  EXPECT_EQ(make_quorum_system("singleton", 3)->name(), "singleton");
  EXPECT_EQ(make_quorum_system("all", 3)->name(), "all");
}

TEST(Factory, DefaultGroupSizeDividesN) {
  auto g = make_quorum_system("gridset", 24);
  EXPECT_NE(g, nullptr);
}

TEST(Factory, RejectsUnknownKind) {
  EXPECT_THROW(make_quorum_system("wishful", 9), CheckError);
}

TEST(Factory, MeanQuorumSizeMatchesK) {
  auto g = make_quorum_system("grid", 25);
  EXPECT_DOUBLE_EQ(g->mean_quorum_size(), 9.0);
  EXPECT_EQ(g->max_quorum_size(), 9);
}

// --------------------------------------------------------- availability

TEST(Availability, ExactMatchesClosedFormForMajority) {
  // Majority of 5 with up-prob q: sum_{k>=3} C(5,k) q^k (1-q)^(5-k).
  MajorityQuorum m(5);
  const double q = 0.9;
  const double expect = 10 * std::pow(q, 3) * std::pow(1 - q, 2) +
                        5 * std::pow(q, 4) * (1 - q) + std::pow(q, 5);
  EXPECT_NEAR(exact_availability(m, q), expect, 1e-12);
}

TEST(Availability, ExactBoundaries) {
  GridQuorum g(9);
  EXPECT_NEAR(exact_availability(g, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(exact_availability(g, 0.0), 0.0, 1e-12);
}

TEST(Availability, MonteCarloAgreesWithExact) {
  Rng rng(31);
  for (const char* kind : {"grid", "majority", "tree"}) {
    auto qs = make_quorum_system(kind, 7);
    for (double up : {0.5, 0.8, 0.95}) {
      const double exact = exact_availability(*qs, up);
      const double mc = mc_availability(*qs, up, 20000, rng);
      EXPECT_NEAR(mc, exact, 0.015) << kind << " up=" << up;
    }
  }
}

TEST(Availability, TreeBeatsGridUnderModerateFailures) {
  // §6: the tree construction degrades gracefully; the plain grid needs a
  // full cross alive.
  auto tree = make_quorum_system("tree", 15);
  auto grid = make_quorum_system("grid", 16);
  const double up = 0.8;
  EXPECT_GT(exact_availability(*tree, up), exact_availability(*grid, up));
}

TEST(Availability, MajorityIsMostAvailable) {
  const double up = 0.75;
  auto maj = make_quorum_system("majority", 15);
  for (const char* kind : {"grid", "tree", "singleton"}) {
    auto qs = make_quorum_system(kind, 15);
    EXPECT_GE(exact_availability(*maj, up) + 1e-9,
              exact_availability(*qs, up))
        << kind;
  }
}

TEST(Availability, ExactGuardsAgainstLargeN) {
  GridQuorum g(36);
  EXPECT_THROW(exact_availability(g, 0.9), CheckError);
}

// Exhaustive single-failure sweeps: §6's "tolerate the failure without any
// recovery scheme" constructions must stay available for EVERY single
// crash, and the tree must re-form for every single crash too.
TEST(Exhaustive, EverySingleFailureIsMasked) {
  for (const char* kind : {"tree", "majority", "gridset:4", "rst:4",
                           "grid", "hqc"}) {
    auto qs = make_quorum_system(
        kind, std::string(kind) == "tree"        ? 15
              : std::string(kind) == "hqc"       ? 27
              : std::string(kind) == "majority"  ? 15
                                                 : 16);
    const int n = qs->num_sites();
    for (SiteId dead = 0; dead < n; ++dead) {
      std::vector<bool> alive(static_cast<size_t>(n), true);
      alive[static_cast<size_t>(dead)] = false;
      EXPECT_TRUE(qs->available(alive)) << kind << " dead=" << dead;
      for (SiteId i = 0; i < n; ++i) {
        if (i == dead) continue;
        auto q = qs->quorum_for_alive(i, alive);
        ASSERT_TRUE(q.has_value()) << kind << " dead=" << dead << " i=" << i;
      }
    }
  }
}

// Exhaustive double failures on the tree: availability answer must agree
// with quorum formability from every live site (consistency of the two
// interfaces under all 105 patterns).
TEST(Exhaustive, TreeDoubleFailureConsistency) {
  TreeQuorum t(15);
  for (SiteId a = 0; a < 15; ++a) {
    for (SiteId b = a + 1; b < 15; ++b) {
      std::vector<bool> alive(15, true);
      alive[static_cast<size_t>(a)] = false;
      alive[static_cast<size_t>(b)] = false;
      bool formable = false;
      for (SiteId i = 0; i < 15 && !formable; ++i)
        formable = i != a && i != b && t.quorum_for_alive(i, alive).has_value();
      EXPECT_EQ(t.available(alive), formable) << a << "," << b;
    }
  }
}

// Analytic cross-check: the tree-with-substitution availability obeys
//   S_1 = q (a leaf), S_h = q(2S - S^2) + (1-q)S^2 with S = S_{h-1},
// because a live node needs one child path and a dead one needs both.
// exact_availability must match the recursion to machine precision.
TEST(Availability, TreeMatchesAnalyticRecursion) {
  for (int n : {7, 15}) {
    TreeQuorum t(n);
    for (double q : {0.6, 0.8, 0.95}) {
      double s = q;
      for (int level = 1; level < t.depth(); ++level)
        s = q * (2 * s - s * s) + (1 - q) * s * s;
      EXPECT_NEAR(exact_availability(t, q), s, 1e-12)
          << "n=" << n << " q=" << q;
    }
  }
}

// Singleton and all have closed forms too.
TEST(Availability, TrivialClosedForms) {
  SingletonQuorum s(6);
  AllQuorum a(6);
  for (double q : {0.5, 0.9}) {
    EXPECT_NEAR(exact_availability(s, q), q, 1e-12);
    EXPECT_NEAR(exact_availability(a, q), std::pow(q, 6), 1e-12);
  }
}

}  // namespace
}  // namespace dqme::quorum
