// Maekawa's algorithm (the baseline the paper improves on): 3(K-1) light /
// ~5(K-1) heavy messages, 2T synchronization delay, inquire/fail/yield
// deadlock resolution.
#include <gtest/gtest.h>

#include "net/network.h"
#include "mutex/maekawa.h"
#include "quorum/factory.h"
#include "test_util.h"

namespace dqme {
namespace {

struct MaekawaRig {
  explicit MaekawaRig(int n, Time delay = 1000)
      : net(sim, n, std::make_unique<net::ConstantDelay>(delay), 3),
        quorums(quorum::make_quorum_system("grid", n)) {
    for (SiteId i = 0; i < n; ++i) {
      sites.push_back(std::make_unique<mutex::MaekawaSite>(i, net, *quorums));
      net.attach(i, sites.back().get());
      sites.back()->on_enter = [this](SiteId id, LockId) {
        entries.push_back(id);
      };
    }
  }
  mutex::MaekawaSite& site(SiteId i) { return *sites[static_cast<size_t>(i)]; }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<quorum::QuorumSystem> quorums;
  std::vector<std::unique_ptr<mutex::MaekawaSite>> sites;
  std::vector<SiteId> entries;
};

TEST(Maekawa, UncontendedCsCostsExactly3KMinus1) {
  MaekawaRig rig(9);  // K = 5, self handled locally
  rig.site(4).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.site(4).release_cs(kLock0);
  rig.sim.run();
  const size_t k_minus_1 = rig.quorums->quorum_for(4).size() - 1;
  EXPECT_EQ(rig.net.stats().wire_messages, 3u * k_minus_1);
}

TEST(Maekawa, ArbiterLocksForExactlyOneRequestAtATime) {
  MaekawaRig rig(9);
  rig.site(0).request_cs(kLock0);  // quorum {0,1,2,3,6}
  rig.sim.run();
  rig.site(1).request_cs(kLock0);  // overlaps at sites 0,1
  rig.sim.run();
  EXPECT_EQ(rig.entries.size(), 1u);  // site 1 blocked on shared arbiters
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 1);
}

// The defining cost of Maekawa: after a release the arbiter must relay the
// grant, so the gap between consecutive CS users is 2 message delays.
TEST(Maekawa, SynchronizationDelayIsTwoT) {
  auto r = testing::run_checked(testing::heavy_cfg(mutex::Algo::kMaekawa,
                                                   25, 17));
  EXPECT_NEAR(r.sync_delay_in_t, 2.0, 0.35);
}

TEST(Maekawa, HeavyLoadCostsBetween3And5KMinus1) {
  auto r = testing::run_checked(testing::heavy_cfg(mutex::Algo::kMaekawa,
                                                   25, 18));
  const double k1 = r.mean_quorum_size - 1;
  EXPECT_GE(r.summary.wire_msgs_per_cs, 3.0 * k1 - 1);
  EXPECT_LE(r.summary.wire_msgs_per_cs, 5.0 * k1 + 1);
}

// Deadlock resolution: force the inquire/yield path deterministically.
// Site A (lower priority) grabs a shared arbiter first; site B (higher
// priority, smaller id at the same tick) must preempt it via yield.
TEST(Maekawa, HigherPriorityRequestPreemptsViaInquireYield) {
  MaekawaRig rig(9);
  // Let site 8 acquire only *some* of its arbiters... simplest reliable
  // construction: 8 requests first in real time but at the same Lamport
  // tick as 0, so 0's request has priority; 0's request reaches the shared
  // arbiters after they already granted 8.
  rig.site(8).request_cs(kLock0);
  rig.sim.run_until(1100);  // 8's grants are being collected
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  // 0 has seq 1 like 8 but smaller site id => higher priority. Whether the
  // yield path or the release path resolves it, both must eventually run.
  ASSERT_GE(rig.entries.size(), 1u);
  if (rig.entries[0] == 8) {
    rig.site(8).release_cs(kLock0);
    rig.sim.run();
    ASSERT_EQ(rig.entries.size(), 2u);
    EXPECT_EQ(rig.entries[1], 0);
    rig.site(0).release_cs(kLock0);
  } else {
    rig.site(0).release_cs(kLock0);
    rig.sim.run();
    ASSERT_EQ(rig.entries.size(), 2u);
    EXPECT_EQ(rig.entries[1], 8);
    rig.site(8).release_cs(kLock0);
  }
  rig.sim.run();
  EXPECT_EQ(rig.entries.size(), 2u);
}

TEST(Maekawa, InquireYieldMessagesAppearUnderContention) {
  auto r = testing::run_checked(testing::heavy_cfg(mutex::Algo::kMaekawa,
                                                   25, 19));
  // Under saturation the deadlock-avoidance machinery must be exercised.
  EXPECT_GT(r.summary.per_type_per_cs[static_cast<size_t>(
                net::MsgType::kFail)],
            0.0);
}

TEST(Maekawa, WorksOnFppQuorums) {
  auto cfg = testing::heavy_cfg(mutex::Algo::kMaekawa, 13, 20, "fpp");
  auto r = testing::run_checked(cfg);
  EXPECT_GT(r.summary.completed, 0u);
  EXPECT_DOUBLE_EQ(r.mean_quorum_size, 4.0);  // q+1 for q=3
}

TEST(Maekawa, WorksOnTreeQuorums) {
  auto r = testing::run_checked(
      testing::heavy_cfg(mutex::Algo::kMaekawa, 15, 20, "tree"));
  EXPECT_GT(r.summary.completed, 0u);
}

// Deterministic handoff timing: with a waiter parked, the gap from exit to
// next entry is exactly release (T) + reply (T) = 2T — the cost the
// proposed algorithm removes.
TEST(Maekawa, HandoffIsExactlyTwoMessageDelays) {
  MaekawaRig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);
  rig.site(1).request_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 1u);  // parked behind site 0
  const Time exit_at = rig.sim.now();
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  ASSERT_EQ(rig.entries.size(), 2u);
  EXPECT_EQ(rig.entries[1], 1);
  EXPECT_EQ(rig.sim.now() - exit_at, 2000);
}

// Stale messages after release are ignored (the paper's rule, which this
// implementation enforces with request ids).
TEST(Maekawa, StaleInquireAfterReleaseIsIgnored) {
  MaekawaRig rig(9);
  rig.site(0).request_cs(kLock0);
  rig.sim.run();
  rig.site(0).release_cs(kLock0);
  rig.sim.run();
  const SiteId arbiter = rig.site(0).req_set()[1];
  net::Message stale = net::make_inquire(arbiter, ReqId{1, 0});
  stale.src = arbiter;
  stale.dst = 0;
  rig.site(0).on_message(stale, kLock0);
  rig.sim.run();
  EXPECT_TRUE(rig.site(0).idle());
  EXPECT_GT(rig.site(0).stale_drops(), 0u);
}

}  // namespace
}  // namespace dqme
