// Tests for the message trace recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "net/network.h"
#include "net/trace.h"

namespace dqme::net {
namespace {

struct Sink final : NetSite {
  void on_message(const Message&, LockId) override {}
};

struct TraceRig {
  TraceRig() : net(sim, 2, std::make_unique<ConstantDelay>(100), 1) {
    net.attach(0, &sink);
    net.attach(1, &sink);
  }
  sim::Simulator sim;
  net::Network net;
  Sink sink;
};

TEST(TraceRecorder, CapturesEveryControlMessageWithTimestamp) {
  TraceRig rig;
  TraceRecorder trace(rig.net);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.net.send(1, 0, make_reply(1, ReqId{1, 0}));
  rig.sim.run();
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].at, 100);
  EXPECT_EQ(trace.events()[0].msg.type, MsgType::kRequest);
  EXPECT_EQ(trace.events()[1].msg.type, MsgType::kReply);
  EXPECT_EQ(trace.count(MsgType::kRequest), 1u);
}

TEST(TraceRecorder, ChainsAnExistingHook) {
  TraceRig rig;
  int prior_hook_calls = 0;
  rig.net.on_deliver = [&](const Message&, LockId) { ++prior_hook_calls; };
  TraceRecorder trace(rig.net);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run();
  EXPECT_EQ(prior_hook_calls, 1);
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(TraceRecorder, BoundedCapacityDropsOldest) {
  TraceRig rig;
  TraceRecorder trace(rig.net, /*capacity=*/3);
  for (SeqNum s = 1; s <= 5; ++s)
    rig.net.send(0, 1, make_request(ReqId{s, 0}));
  rig.sim.run();
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(trace.events().front().msg.req.seq, 3u);  // oldest kept
}

TEST(TraceRecorder, ClearResetsEventsAndDropCount) {
  TraceRig rig;
  TraceRecorder trace(rig.net, /*capacity=*/3);
  for (SeqNum s = 1; s <= 5; ++s)
    rig.net.send(0, 1, make_request(ReqId{s, 0}));
  rig.sim.run();
  ASSERT_EQ(trace.dropped(), 2u);

  // A cleared recorder starts a fresh window: stale drop counts must not
  // leak into it (regression: clear() used to reset events_ only).
  trace.clear();
  EXPECT_EQ(trace.events().size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);

  rig.net.send(0, 1, make_request(ReqId{6, 0}));
  rig.sim.run();
  EXPECT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorder, DeliveryCarriesSpanAndSendTime) {
  TraceRig rig;
  TraceRecorder trace(rig.net);
  rig.net.send(0, 1, make_request(ReqId{7, 0}));
  rig.sim.run();
  ASSERT_EQ(trace.events().size(), 1u);
  const Message& m = trace.events()[0].msg;
  EXPECT_EQ(m.span, span_of(ReqId{7, 0}));
  EXPECT_EQ(m.sent_at, 0);
  EXPECT_EQ(trace.events()[0].at, 100);
}

TEST(TraceRecorder, FilterSelectsMatchingEvents) {
  TraceRig rig;
  TraceRecorder trace(rig.net);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.net.send(0, 1, make_fail(0, ReqId{1, 0}));
  rig.net.send(0, 1, make_request(ReqId{2, 0}));
  rig.sim.run();
  auto requests = trace.filter([](const TraceEvent& e) {
    return e.msg.type == MsgType::kRequest;
  });
  EXPECT_EQ(requests.size(), 2u);
}

TEST(TraceRecorder, PrintProducesOneLinePerEvent) {
  TraceRig rig;
  TraceRecorder trace(rig.net);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));
  rig.sim.run();
  std::ostringstream os;
  trace.print(os);
  EXPECT_NE(os.str().find("request[0->1"), std::string::npos);
}

TEST(TraceRecorder, RecordsLockTagAndPrintsItForNonZeroLocks) {
  TraceRig rig;
  TraceRecorder trace(rig.net);
  rig.net.send(0, 1, make_request(ReqId{1, 0}));              // lock 0
  rig.net.send(0, 1, make_request(ReqId{2, 0}), LockId{7});   // lock 7
  rig.sim.run();
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].lock, kLock0);
  EXPECT_EQ(trace.events()[1].lock, LockId{7});
  std::ostringstream os;
  trace.print(os);
  // Lock 0 lines keep the historical single-lock format; only the lock-7
  // line grows a tag.
  EXPECT_EQ(os.str().find("[lock 0]"), std::string::npos);
  EXPECT_NE(os.str().find("[lock 7]"), std::string::npos);
}

}  // namespace
}  // namespace dqme::net
