// Lock-table equivalence tests: the sharded lock service's defining
// property is that locks are *independent* — an M-lock run must make, per
// lock, exactly the protocol decisions M separate single-lock runs make
// under the same scripted demand. Verified here for every algorithm by
// comparing full CS entry orders (site, instant) per lock between one
// M-lock simulation and M single-lock simulations, with and without
// same-instant piggyback coalescing (window 0), plus the per-lock quorum
// selector.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/network.h"
#include "common/rng.h"
#include "mutex/factory.h"
#include "quorum/factory.h"
#include "sim/simulator.h"

namespace dqme {
namespace {

// Scripted demand for one (site, lock) slot: an absolute first-request
// instant, then per completed CS a (hold, idle-gap) pair before the next
// request. Scripts are a pure function of (lock, seed), so the same lock's
// script drives both the M-lock run and its single-lock twin.
struct SlotScript {
  Time first = 0;
  std::vector<std::pair<Time, Time>> rounds;  // (hold, gap after release)
};

// First-request instants are deliberately identical across locks (a site
// fires all its locks' opening requests in the same tick) so the window-0
// piggyback path is guaranteed to coalesce something; everything after the
// first entry diverges per lock via the lock-salted Rng.
std::vector<SlotScript> scripts_for_lock(LockId lock, int n, uint64_t seed) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(lock + 1)));
  std::vector<SlotScript> out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    SlotScript& s = out[static_cast<size_t>(i)];
    s.first = 100 + 400 * i;
    for (int r = 0; r < 3; ++r)
      s.rounds.emplace_back(rng.uniform_int(50, 300),
                            rng.uniform_int(0, 4000));
  }
  return out;
}

struct Entry {
  SiteId site;
  Time at;
  bool operator==(const Entry&) const = default;
};

struct RunOutcome {
  std::vector<std::vector<Entry>> entries;  // [lock] -> CS entry order
  uint64_t piggybacked = 0;
};

// Runs `scripts.size()` locks over n sites of `algo` and records each
// lock's CS entry sequence. `quorum_names` has one quorum construction per
// lock; when they are all the same a single shared system is used (the
// common path), otherwise the per-lock selector is exercised.
RunOutcome run_locks(mutex::Algo algo, int n,
                     const std::vector<std::vector<SlotScript>>& scripts,
                     const std::vector<std::string>& quorum_names,
                     Time piggyback_window) {
  const LockId num_locks = static_cast<LockId>(scripts.size());
  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::ConstantDelay>(1000), 1);
  if (piggyback_window >= 0) net.set_lock_piggyback(piggyback_window);

  std::vector<std::unique_ptr<quorum::QuorumSystem>> systems;
  for (const std::string& name : quorum_names)
    systems.push_back(quorum::make_quorum_system(name, n));
  mutex::AlgoOptions opts;
  opts.num_locks = num_locks;
  if (num_locks > 1)
    opts.quorum_for_lock = [&systems](LockId lock) {
      return systems[static_cast<size_t>(lock)].get();
    };

  RunOutcome out;
  out.entries.resize(scripts.size());
  // round_[lock][site]: how many CSs this slot has completed.
  std::vector<std::vector<size_t>> round(
      scripts.size(), std::vector<size_t>(static_cast<size_t>(n), 0));

  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  for (SiteId i = 0; i < n; ++i) {
    sites.push_back(
        mutex::make_site(algo, i, net, systems.front().get(), opts));
    net.attach(i, sites.back().get());
  }
  for (SiteId i = 0; i < n; ++i) {
    mutex::MutexSite* s = sites[static_cast<size_t>(i)].get();
    s->on_enter = [&, s](SiteId id, LockId lock) {
      out.entries[static_cast<size_t>(lock)].push_back({id, sim.now()});
      const SlotScript& sc =
          scripts[static_cast<size_t>(lock)][static_cast<size_t>(id)];
      size_t& r = round[static_cast<size_t>(lock)][static_cast<size_t>(id)];
      const auto [hold, gap] = sc.rounds[r];
      const bool more = ++r < sc.rounds.size();
      sim.schedule_after(hold, [&, s, lock, gap, more] {
        s->release_cs(lock);
        if (more)
          sim.schedule_after(gap, [s, lock] { s->request_cs(lock); });
      });
    };
  }
  for (LockId lock = 0; lock < num_locks; ++lock)
    for (SiteId i = 0; i < n; ++i)
      sim.schedule_at(
          scripts[static_cast<size_t>(lock)][static_cast<size_t>(i)].first,
          [&sites, i, lock] {
            sites[static_cast<size_t>(i)]->request_cs(lock);
          });
  sim.run();

  // Every scripted demand must have completed (liveness per lock).
  for (LockId lock = 0; lock < num_locks; ++lock) {
    size_t want = 0;
    for (const SlotScript& sc : scripts[static_cast<size_t>(lock)])
      want += sc.rounds.size();
    EXPECT_EQ(out.entries[static_cast<size_t>(lock)].size(), want)
        << "lock " << lock << " did not drain";
  }
  out.piggybacked = net.stats().piggybacked_messages;
  return out;
}

constexpr uint64_t kSeed = 42;
constexpr int kLocks = 3;

class LockTableEquivalence : public ::testing::TestWithParam<mutex::Algo> {};

// One M-lock run == M single-lock runs, lock by lock, entry by entry —
// both with piggybacking off and with the timing-preserving window-0
// coalescing (which must change the wire accounting but not one protocol
// decision).
TEST_P(LockTableEquivalence, MLockRunMatchesMSingleLockRuns) {
  const mutex::Algo algo = GetParam();
  const int n = 9;
  std::vector<std::vector<SlotScript>> scripts;
  for (LockId k = 0; k < kLocks; ++k)
    scripts.push_back(scripts_for_lock(k, n, kSeed));

  std::vector<std::vector<Entry>> single;
  for (LockId k = 0; k < kLocks; ++k) {
    RunOutcome one = run_locks(algo, n, {scripts[static_cast<size_t>(k)]},
                               {"grid"}, -1);
    EXPECT_EQ(one.piggybacked, 0u);
    single.push_back(std::move(one.entries.front()));
  }

  const RunOutcome multi =
      run_locks(algo, n, scripts, {"grid", "grid", "grid"}, -1);
  EXPECT_EQ(multi.piggybacked, 0u);
  for (LockId k = 0; k < kLocks; ++k)
    EXPECT_EQ(multi.entries[static_cast<size_t>(k)],
              single[static_cast<size_t>(k)])
        << "lock " << k << " diverged from its single-lock twin";

  const RunOutcome coalesced =
      run_locks(algo, n, scripts, {"grid", "grid", "grid"}, 0);
  EXPECT_GT(coalesced.piggybacked, 0u)
      << "window-0 piggybacking never coalesced a flight";
  for (LockId k = 0; k < kLocks; ++k)
    EXPECT_EQ(coalesced.entries[static_cast<size_t>(k)],
              single[static_cast<size_t>(k)])
        << "piggybacking perturbed lock " << k;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, LockTableEquivalence,
    ::testing::Values(mutex::Algo::kLamport, mutex::Algo::kRicartAgrawala,
                      mutex::Algo::kRoucairolCarvalho, mutex::Algo::kMaekawa,
                      mutex::Algo::kRaymond, mutex::Algo::kSuzukiKasami,
                      mutex::Algo::kCaoSinghal),
    [](const ::testing::TestParamInfo<mutex::Algo>& info) {
      std::string name(mutex::to_string(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// The per-lock quorum selector: a 13-site table whose lock 0 uses grid
// quorums and lock 1 exact projective-plane quorums must behave, per lock,
// exactly like a single-lock run on that construction alone.
TEST(LockTableEquivalence, PerLockQuorumSelectorMatchesSingleLockRuns) {
  const int n = 13;
  for (mutex::Algo algo :
       {mutex::Algo::kCaoSinghal, mutex::Algo::kMaekawa}) {
    std::vector<std::vector<SlotScript>> scripts;
    for (LockId k = 0; k < 2; ++k)
      scripts.push_back(scripts_for_lock(k, n, kSeed));
    const RunOutcome multi =
        run_locks(algo, n, scripts, {"grid", "fpp"}, -1);
    const RunOutcome on_grid = run_locks(algo, n, {scripts[0]}, {"grid"}, -1);
    const RunOutcome on_fpp = run_locks(algo, n, {scripts[1]}, {"fpp"}, -1);
    EXPECT_EQ(multi.entries[0], on_grid.entries[0]);
    EXPECT_EQ(multi.entries[1], on_fpp.entries[0]);
  }
}

}  // namespace
}  // namespace dqme
