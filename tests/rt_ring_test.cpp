// rt::SpscRing unit tests: wrap-around, full/empty boundary behaviour, and
// cross-thread FIFO. The cross-thread cases are the ones the TSan CI job
// exists for — they exercise the release/acquire publish-consume pairs the
// ring's correctness argument rests on (src/rt/spsc_ring.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "rt/spsc_ring.h"

namespace dqme::rt {
namespace {

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, PushPopSingle) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.try_push(42));
  EXPECT_FALSE(ring.empty());
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullBoundaryRejectsThenAcceptsAfterPop) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i)) << i;
  // Exactly capacity elements fit; the next push must fail, not overwrite.
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  // One slot freed: one push succeeds again, a second fails again.
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
  // Drain fully, FIFO preserved across the boundary churn.
  for (int want = 1; want <= 4; ++want) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapAroundManyTimesKeepsFifo) {
  SpscRing<uint64_t> ring(8);
  // Push/pop far past the capacity so the free-running cursors wrap the
  // index mask many times; order must survive every wrap.
  uint64_t next_pop = 0;
  for (uint64_t next_push = 0; next_push < 10'000;) {
    // Uneven batches: fill to capacity, then drain partially.
    while (ring.try_push(next_push)) ++next_push;
    uint64_t out = 0;
    for (int k = 0; k < 5 && ring.try_pop(out); ++k) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  uint64_t out = 0;
  while (ring.try_pop(out)) {
    ASSERT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_TRUE(ring.empty());
}

// The concurrency contract itself: one producer thread, one consumer
// thread, no locks. Every value must arrive exactly once, in order —
// and under TSan, the slot write/read must be properly published by the
// cursor release/acquire pair (a missing fence is a reported race here).
TEST(SpscRing, CrossThreadFifoUnderContention) {
  constexpr uint64_t kCount = 200'000;
  SpscRing<uint64_t> ring(64);  // small: force constant full/empty churn
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.try_push(i))
        ++i;
      else
        std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Same race surface, but with a multi-word element type so torn
// publication (consumer reading a half-written slot) would be visible as a
// mismatched pair, not just a wrong integer.
TEST(SpscRing, CrossThreadMultiWordElements) {
  struct Pair {
    uint64_t a = 0;
    uint64_t b = 0;
  };
  constexpr uint64_t kCount = 100'000;
  SpscRing<Pair> ring(32);
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.try_push(Pair{i, ~i}))
        ++i;
      else
        std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    Pair out;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out.a, expected);
      ASSERT_EQ(out.b, ~expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace dqme::rt
