// Unit tests for the discrete-event simulator: ordering, determinism,
// cancellation, run_until semantics.
#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/simulator.h"

namespace dqme::sim {
namespace {

TEST(Simulator, StartsAtTimeZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockVisibleInsideCallback) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(42, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time fired = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(25, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 125);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), CheckError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelledEventsDoNotCountAsPending) {
  Simulator sim;
  auto a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  auto id = sim.schedule_at(1, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilAdvancesClockToBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(50, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(30), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 30);  // clock parked at the boundary
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(50);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilExecutesEventsAtBoundary) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(30, [&] { ran = true; });
  sim.run_until(30);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  sim.clear_stop();
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleChains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Time last = -1;
  bool monotonic = true;
  for (int i = 0; i < 5000; ++i) {
    Time t = (i * 7919) % 1000;
    sim.schedule_at(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotonic);
}

TEST(Simulator, CancellationStressKeepsAccounting) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 2000; ++i)
    ids.push_back(sim.schedule_at((i * 37) % 500, [&] { ++fired; }));
  // Cancel every third event.
  int cancelled = 0;
  for (size_t i = 0; i < ids.size(); i += 3)
    cancelled += sim.cancel(ids[i]) ? 1 : 0;
  EXPECT_EQ(sim.pending(), 2000u - static_cast<size_t>(cancelled));
  sim.run();
  EXPECT_EQ(fired, 2000 - cancelled);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CancelFromInsideAnEarlierEvent) {
  Simulator sim;
  bool second_ran = false;
  auto second = sim.schedule_at(20, [&] { second_ran = true; });
  sim.schedule_at(10, [&] { EXPECT_TRUE(sim.cancel(second)); });
  sim.run();
  EXPECT_FALSE(second_ran);
}

}  // namespace
}  // namespace dqme::sim
