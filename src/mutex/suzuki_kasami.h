// Suzuki-Kasami broadcast token algorithm (paper §1's token-based class).
//
// A requester broadcasts its request number; the token carries, per site,
// the number of its last served request plus a FIFO queue of waiting sites.
// 0 messages when the requester already holds the token, otherwise N: N-1
// request broadcasts plus one token transfer. Synchronization delay T.
#pragma once

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class SuzukiKasamiSite final : public MutexSite {
 public:
  // Site 0 starts with the token.
  SuzukiKasamiSite(SiteId id, net::Network& net);

  void on_message(const net::Message& m) override;

  bool holds_token() const { return has_token_; }

 private:
  void do_request() override;
  void do_release() override;
  void pass_token_if_due();
  void send_token(SiteId to);

  std::vector<SeqNum> rn_;  // highest request number seen per site
  // Token state, held by value: a transfer moves it into a network side-
  // payload slot and the receiver moves it back out (take_token), so the
  // ln/queue allocations travel with the token instead of being refcounted.
  net::TokenPayload token_;
  bool has_token_ = false;
};

}  // namespace dqme::mutex
