// Suzuki-Kasami broadcast token algorithm (paper §1's token-based class).
//
// A requester broadcasts its request number; the token carries, per site,
// the number of its last served request plus a FIFO queue of waiting sites.
// 0 messages when the requester already holds the token, otherwise N: N-1
// request broadcasts plus one token transfer. Synchronization delay T.
// Each lock in the table has its own token (site 0 starts with all of
// them) and its own request-number table.
#pragma once

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class SuzukiKasamiSite final : public MutexSite {
 public:
  // Site 0 starts with every lock's token.
  SuzukiKasamiSite(SiteId id, net::Executor& net, LockId num_locks = 1);

  void on_message(const net::Message& m, LockId lock) override;

  bool holds_token(LockId lock = kLock0) const {
    return lk_[static_cast<size_t>(lock)].has_token;
  }

 private:
  // Per-lock protocol state, indexed by dense LockId.
  struct Lk {
    std::vector<SeqNum> rn;  // highest request number seen per site
    // Token state, held by value: a transfer moves it into a network side-
    // payload slot and the receiver moves it back out (take_token), so the
    // ln/queue allocations travel with the token instead of being
    // refcounted.
    net::TokenPayload token;
    bool has_token = false;
  };

  void do_request(LockId lock) override;
  void do_release(LockId lock) override;
  void pass_token_if_due(LockId lock);
  void send_token(LockId lock, SiteId to);

  std::vector<Lk> lk_;
};

}  // namespace dqme::mutex
