// Construction of protocol sites by algorithm name, used by the harness,
// benches, and examples.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mutex/mutex_site.h"
#include "quorum/quorum_system.h"

namespace dqme::mutex {

enum class Algo {
  kLamport,
  kRicartAgrawala,
  kRoucairolCarvalho,
  kMaekawa,
  kRaymond,
  kSuzukiKasami,
  kCaoSinghal,         // the paper's algorithm (src/core)
  kCaoSinghalNoProxy,  // E9 ablation: transfer/proxy path disabled -> 2T
};

// Per-site protocol options (E9 ablations and the sharded lock table).
struct AlgoOptions {
  bool piggyback = true;       // piggyback inquire+transfer / reply+transfer
  bool fault_tolerant = false; // enable the §6 recovery layer (Cao-Singhal)
  Time failure_probe_interval = 0;  // reserved
  // Lock-table size. Dense-id contract: every site arbitrates exactly
  // num_locks independent lock objects addressed by LockId 0..num_locks-1
  // (no gaps — LockIds index per-lock state tables directly). make_site
  // rejects num_locks < 1.
  LockId num_locks = 1;
  // Per-lock quorum construction for the quorum algorithms: returns the
  // quorum system arbitrating a given lock (must outlive the sites), or
  // nullptr to fall back to make_site's `quorums` argument. Unset = all
  // locks share `quorums`. Ignored by the non-quorum baselines.
  std::function<const quorum::QuorumSystem*(LockId)> quorum_for_lock;
};

std::string_view to_string(Algo a);
Algo algo_from_string(const std::string& name);
std::vector<Algo> all_algos();
bool algo_uses_quorum(Algo a);

// Creates one protocol endpoint. `quorums` may be null for the non-quorum
// baselines and must outlive the site otherwise.
std::unique_ptr<MutexSite> make_site(Algo algo, SiteId id, net::Executor& net,
                                     const quorum::QuorumSystem* quorums,
                                     const AlgoOptions& options = {});

}  // namespace dqme::mutex
