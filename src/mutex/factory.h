// Construction of protocol sites by algorithm name, used by the harness,
// benches, and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mutex/mutex_site.h"
#include "quorum/quorum_system.h"

namespace dqme::mutex {

enum class Algo {
  kLamport,
  kRicartAgrawala,
  kRoucairolCarvalho,
  kMaekawa,
  kRaymond,
  kSuzukiKasami,
  kCaoSinghal,         // the paper's algorithm (src/core)
  kCaoSinghalNoProxy,  // E9 ablation: transfer/proxy path disabled -> 2T
};

// Per-site protocol options (E9 ablations).
struct AlgoOptions {
  bool piggyback = true;       // piggyback inquire+transfer / reply+transfer
  bool fault_tolerant = false; // enable the §6 recovery layer (Cao-Singhal)
  Time failure_probe_interval = 0;  // reserved
};

std::string_view to_string(Algo a);
Algo algo_from_string(const std::string& name);
std::vector<Algo> all_algos();
bool algo_uses_quorum(Algo a);

// Creates one protocol endpoint. `quorums` may be null for the non-quorum
// baselines and must outlive the site otherwise.
std::unique_ptr<MutexSite> make_site(Algo algo, SiteId id, net::Network& net,
                                     const quorum::QuorumSystem* quorums,
                                     const AlgoOptions& options = {});

}  // namespace dqme::mutex
