#include "mutex/ricart_agrawala.h"

namespace dqme::mutex {

using net::Message;
using net::MsgType;

RicartAgrawalaSite::RicartAgrawalaSite(SiteId id, net::Network& net)
    : MutexSite(id, net) {}

void RicartAgrawalaSite::do_request() {
  my_req_ = ReqId{tick(), id()};
  open_span(span_of(my_req_));
  pending_replies_ = net().size() - 1;
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id()) net().send(id(), j, net::make_request(my_req_));
  if (pending_replies_ == 0) enter_cs();  // N == 1
}

void RicartAgrawalaSite::do_release() {
  my_req_ = ReqId{};
  for (SiteId j : deferred_) net().send(id(), j, net::make_reply(id(), ReqId{}));
  deferred_.clear();
}

void RicartAgrawalaSite::on_message(const Message& m) {
  observe(m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: {
      // Grant unless we are in the CS, or we are requesting with higher
      // priority than the incoming request.
      const bool we_win =
          in_cs() || (requesting() && my_req_ < m.req);
      if (we_win)
        deferred_.push_back(m.src);
      else
        net().send(id(), m.src, net::make_reply(id(), m.req));
      break;
    }
    case MsgType::kReply: {
      if (!requesting()) {
        note_stale_drop();
        break;
      }
      // A reply can be a direct answer (req == my_req_) or a deferred one
      // sent at the replier's exit (req invalid). Both are grants: a site
      // only ever has one outstanding request, so no staleness is possible.
      if (--pending_replies_ == 0) enter_cs();
      break;
    }
    default:
      DQME_CHECK_MSG(false, "ricart-agrawala: unexpected " << m);
  }
}

}  // namespace dqme::mutex
