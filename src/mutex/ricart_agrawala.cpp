#include "mutex/ricart_agrawala.h"

namespace dqme::mutex {

using net::Message;
using net::MsgType;

RicartAgrawalaSite::RicartAgrawalaSite(SiteId id, net::Executor& net,
                                       LockId num_locks)
    : MutexSite(id, net, num_locks), lk_(static_cast<size_t>(num_locks)) {}

void RicartAgrawalaSite::do_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.my_req = ReqId{tick(lock), id()};
  open_span(lock, span_of(L.my_req));
  L.pending_replies = net().size() - 1;
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id()) net().send(id(), j, net::make_request(L.my_req), lock);
  if (L.pending_replies == 0) enter_cs(lock);  // N == 1
}

void RicartAgrawalaSite::do_release(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.my_req = ReqId{};
  for (SiteId j : L.deferred)
    net().send(id(), j, net::make_reply(id(), ReqId{}), lock);
  L.deferred.clear();
}

void RicartAgrawalaSite::on_message(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  observe(lock, m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: {
      // Grant unless we are in the CS, or we are requesting with higher
      // priority than the incoming request.
      const bool we_win =
          in_cs(lock) || (requesting(lock) && L.my_req < m.req);
      if (we_win)
        L.deferred.push_back(m.src);
      else
        net().send(id(), m.src, net::make_reply(id(), m.req), lock);
      break;
    }
    case MsgType::kReply: {
      if (!requesting(lock)) {
        note_stale_drop();
        break;
      }
      // A reply can be a direct answer (req == my_req) or a deferred one
      // sent at the replier's exit (req invalid). Both are grants: a site
      // only ever has one outstanding request per lock, so no staleness is
      // possible.
      if (--L.pending_replies == 0) enter_cs(lock);
      break;
    }
    default:
      DQME_CHECK_MSG(false, "ricart-agrawala: unexpected " << m);
  }
}

}  // namespace dqme::mutex
