#include "mutex/suzuki_kasami.h"

#include <algorithm>

namespace dqme::mutex {

using net::Message;
using net::MsgType;

SuzukiKasamiSite::SuzukiKasamiSite(SiteId id, net::Network& net)
    : MutexSite(id, net), rn_(static_cast<size_t>(net.size()), 0) {
  if (id == 0) {
    token_.ln.assign(static_cast<size_t>(net.size()), 0);
    has_token_ = true;
  }
}

void SuzukiKasamiSite::do_request() {
  SeqNum sn = ++rn_[static_cast<size_t>(id())];
  if (has_token_) {
    enter_cs();
    return;
  }
  Message req;
  req.type = MsgType::kTokenReq;
  req.req = ReqId{sn, id()};
  req.seq = sn;
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id()) net().send(id(), j, req);
}

void SuzukiKasamiSite::do_release() {
  DQME_CHECK(has_token_);
  token_.ln[static_cast<size_t>(id())] = rn_[static_cast<size_t>(id())];
  // Append every site with an outstanding (unserved) request.
  for (SiteId j = 0; j < net().size(); ++j) {
    if (j == id()) continue;
    if (rn_[static_cast<size_t>(j)] == token_.ln[static_cast<size_t>(j)] + 1 &&
        std::find(token_.queue.begin(), token_.queue.end(), j) ==
            token_.queue.end())
      token_.queue.push_back(j);
  }
  pass_token_if_due();
}

void SuzukiKasamiSite::pass_token_if_due() {
  if (!has_token_ || in_cs() || token_.queue.empty()) return;
  SiteId next = token_.queue.front();
  token_.queue.pop_front();
  send_token(next);
}

void SuzukiKasamiSite::send_token(SiteId to) {
  Message tok;
  tok.type = MsgType::kToken;
  net().attach_token(tok) = std::move(token_);
  has_token_ = false;
  net().send(id(), to, tok);
}

void SuzukiKasamiSite::on_message(const Message& m) {
  switch (m.type) {
    case MsgType::kTokenReq: {
      auto j = static_cast<size_t>(m.src);
      rn_[j] = std::max(rn_[j], m.seq);
      // An idle token holder serves the request immediately.
      if (has_token_ && idle() && rn_[j] == token_.ln[j] + 1)
        send_token(m.src);
      break;
    }
    case MsgType::kToken: {
      DQME_CHECK(!has_token_);
      token_ = net().take_token(m);
      has_token_ = true;
      DQME_CHECK_MSG(requesting(),
                     "suzuki-kasami: token sent to a non-requesting site");
      enter_cs();
      break;
    }
    default:
      DQME_CHECK_MSG(false, "suzuki-kasami: unexpected " << m);
  }
}

}  // namespace dqme::mutex
