#include "mutex/suzuki_kasami.h"

#include <algorithm>

namespace dqme::mutex {

using net::Message;
using net::MsgType;

SuzukiKasamiSite::SuzukiKasamiSite(SiteId id, net::Executor& net,
                                   LockId num_locks)
    : MutexSite(id, net, num_locks), lk_(static_cast<size_t>(num_locks)) {
  for (Lk& L : lk_) {
    L.rn.assign(static_cast<size_t>(net.size()), 0);
    if (id == 0) {
      L.token.ln.assign(static_cast<size_t>(net.size()), 0);
      L.has_token = true;
    }
  }
}

void SuzukiKasamiSite::do_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  SeqNum sn = ++L.rn[static_cast<size_t>(id())];
  open_span(lock, span_of(ReqId{sn, id()}));
  if (L.has_token) {
    enter_cs(lock);
    return;
  }
  Message req;
  req.type = MsgType::kTokenReq;
  req.req = ReqId{sn, id()};
  req.seq = sn;
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id()) net().send(id(), j, req, lock);
}

void SuzukiKasamiSite::do_release(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  DQME_CHECK(L.has_token);
  L.token.ln[static_cast<size_t>(id())] = L.rn[static_cast<size_t>(id())];
  // Append every site with an outstanding (unserved) request.
  for (SiteId j = 0; j < net().size(); ++j) {
    if (j == id()) continue;
    if (L.rn[static_cast<size_t>(j)] ==
            L.token.ln[static_cast<size_t>(j)] + 1 &&
        std::find(L.token.queue.begin(), L.token.queue.end(), j) ==
            L.token.queue.end())
      L.token.queue.push_back(j);
  }
  pass_token_if_due(lock);
}

void SuzukiKasamiSite::pass_token_if_due(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!L.has_token || in_cs(lock) || L.token.queue.empty()) return;
  SiteId next = L.token.queue.front();
  L.token.queue.pop_front();
  send_token(lock, next);
}

void SuzukiKasamiSite::send_token(LockId lock, SiteId to) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  Message tok;
  tok.type = MsgType::kToken;
  net().attach_token(tok) = std::move(L.token);
  L.has_token = false;
  net().send(id(), to, tok, lock);
}

void SuzukiKasamiSite::on_message(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  switch (m.type) {
    case MsgType::kTokenReq: {
      auto j = static_cast<size_t>(m.src);
      L.rn[j] = std::max(L.rn[j], m.seq);
      // An idle token holder serves the request immediately.
      if (L.has_token && idle(lock) && L.rn[j] == L.token.ln[j] + 1)
        send_token(lock, m.src);
      break;
    }
    case MsgType::kToken: {
      DQME_CHECK(!L.has_token);
      L.token = net().take_token(m);
      L.has_token = true;
      DQME_CHECK_MSG(requesting(lock),
                     "suzuki-kasami: token sent to a non-requesting site");
      enter_cs(lock);
      break;
    }
    default:
      DQME_CHECK_MSG(false, "suzuki-kasami: unexpected " << m);
  }
}

}  // namespace dqme::mutex
