#include "mutex/maekawa.h"

#include <algorithm>

namespace dqme::mutex {

using net::Message;
using net::MsgType;

MaekawaSite::MaekawaSite(SiteId id, net::Network& net,
                         const quorum::QuorumSystem& quorums)
    : MutexSite(id, net), req_set_(quorums.quorum_for(id)) {
  DQME_CHECK(!req_set_.empty());
}

void MaekawaSite::do_request() {
  my_req_ = ReqId{tick(), id()};
  open_span(span_of(my_req_));
  failed_ = false;
  pending_inquires_.clear();
  voted_.assign(req_set_);
  for (SiteId j : req_set_) net().send(id(), j, net::make_request(my_req_));
}

void MaekawaSite::do_release() {
  const ReqId done = my_req_;
  my_req_ = ReqId{};
  pending_inquires_.clear();
  for (SiteId j : req_set_) net().send(id(), j, net::make_release(done, ReqId{}));
}

void MaekawaSite::on_message(const Message& m) {
  observe(m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: handle_request(m); break;
    case MsgType::kReply:   handle_reply(m);   break;
    case MsgType::kFail:    handle_fail(m);    break;
    case MsgType::kInquire: handle_inquire(m); break;
    case MsgType::kYield:   handle_yield(m);   break;
    case MsgType::kRelease: handle_release(m); break;
    case MsgType::kFailureNotice: break;  // baseline is not fault-tolerant
    default:
      DQME_CHECK_MSG(false, "maekawa: unexpected " << m);
  }
}

// ---------------------------------------------------------------- requester

void MaekawaSite::handle_reply(const Message& m) {
  if (!requesting() || m.req != my_req_) {
    note_stale_drop();
    return;
  }
  const int pos = voted_.find(m.src);
  DQME_CHECK_MSG(pos >= 0, "reply from non-arbiter " << m.src);
  voted_.grant(static_cast<size_t>(pos));
  // Maekawa replies always relay through the arbiter: release -> reply,
  // the 2T synchronization delay the proposed algorithm's proxy removes.
  set_entry_hops(2);
  try_enter();
}

void MaekawaSite::handle_fail(const Message& m) {
  if (!requesting() || m.req != my_req_) {
    note_stale_drop();
    return;
  }
  failed_ = true;
  // Any inquire we sat on can now be answered: we know we are blocked.
  auto pending = std::move(pending_inquires_);
  pending_inquires_.clear();
  for (SiteId arbiter : pending) answer_inquire(arbiter);
}

void MaekawaSite::handle_inquire(const Message& m) {
  if (!requesting() || m.req != my_req_) {
    note_stale_drop();  // e.g. we already exited; release supersedes it
    return;
  }
  answer_inquire(m.src);
}

void MaekawaSite::answer_inquire(SiteId arbiter) {
  DQME_CHECK(requesting());
  const int pos = voted_.find(arbiter);
  DQME_CHECK_MSG(pos >= 0, "inquire from non-arbiter " << arbiter);
  if (!voted_.test(static_cast<size_t>(pos))) {
    // Channels are FIFO and replies come only from the arbiter itself in
    // Maekawa, so an inquire can't precede its reply — but it CAN arrive
    // after we yielded this very lock; nothing to yield then.
    note_stale_drop();
    return;
  }
  if (failed_) {
    voted_.revoke(static_cast<size_t>(pos));
    net().send(id(), arbiter, net::make_yield(arbiter, my_req_));
  } else {
    // Still hopeful: defer. If we enter the CS the release answers it; if a
    // fail arrives the handler above yields.
    pending_inquires_.push_back(arbiter);
  }
}

void MaekawaSite::try_enter() {
  if (!requesting()) return;
  if (!voted_.all()) return;
  pending_inquires_.clear();  // answered implicitly by release at exit
  enter_cs();
}

// ----------------------------------------------------------------- arbiter

void MaekawaSite::grant(const ReqId& r) {
  lock_ = r;
  inquire_outstanding_ = false;
  net().send(id(), r.site, net::make_reply(id(), r));
}

void MaekawaSite::grant_next_from_queue() {
  if (req_queue_.empty()) {
    lock_ = ReqId{};
    inquire_outstanding_ = false;
    return;
  }
  ReqId head = req_queue_.front();
  req_queue_.pop_front();
  grant(head);
}

void MaekawaSite::handle_request(const Message& m) {
  const ReqId r = m.req;
  if (!lock_.valid()) {
    DQME_CHECK(req_queue_.empty());
    grant(r);
    return;
  }
  // Exactly one *favourite* per tenure: a request that outranks the lock
  // holder and every waiter, with an inquire outstanding for it. Everyone
  // else is told it failed — including a favourite the moment it is
  // displaced (without that fail the displaced site can defer another
  // arbiter's inquire forever and deadlock; this is the classic correction
  // to Maekawa's original algorithm).
  const bool have_head = !req_queue_.empty();
  const ReqId head = have_head ? req_queue_.front() : ReqId{};
  if (r < lock_ && (!have_head || r < head)) {
    if (have_head && head < lock_)
      net().send(id(), head.site, net::make_fail(id(), head));
    if (!inquire_outstanding_) {
      inquire_outstanding_ = true;
      net().send(id(), lock_.site, net::make_inquire(id(), lock_));
    }
  } else {
    net().send(id(), r.site, net::make_fail(id(), r));
  }
  req_queue_.insert(r);
}

void MaekawaSite::handle_yield(const Message& m) {
  if (!lock_.valid() || lock_ != m.req) {
    note_stale_drop();
    return;
  }
  req_queue_.insert(lock_);  // the yielder still wants the CS
  grant_next_from_queue();
}

void MaekawaSite::handle_release(const Message& m) {
  if (!lock_.valid() || lock_ != m.req) {
    note_stale_drop();
    return;
  }
  grant_next_from_queue();
}

}  // namespace dqme::mutex
