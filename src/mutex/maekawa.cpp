#include "mutex/maekawa.h"

#include <algorithm>
#include <utility>

namespace dqme::mutex {

using net::Message;
using net::MsgType;

MaekawaSite::MaekawaSite(
    SiteId id, net::Executor& net, const quorum::QuorumSystem& quorums,
    LockId num_locks,
    std::function<const quorum::QuorumSystem*(LockId)> quorum_for_lock)
    : MutexSite(id, net, num_locks), lk_(static_cast<size_t>(num_locks)) {
  for (LockId l = 0; l < num_locks; ++l) {
    const quorum::QuorumSystem* qs =
        quorum_for_lock ? quorum_for_lock(l) : nullptr;
    if (qs == nullptr) qs = &quorums;
    Lk& L = lk_[static_cast<size_t>(l)];
    L.req_set = qs->quorum_for(id);
    DQME_CHECK(!L.req_set.empty());
  }
}

void MaekawaSite::do_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.my_req = ReqId{tick(lock), id()};
  open_span(lock, span_of(L.my_req));
  L.failed = false;
  L.pending_inquires.clear();
  L.voted.assign(L.req_set);
  for (SiteId j : L.req_set)
    net().send(id(), j, net::make_request(L.my_req), lock);
}

void MaekawaSite::do_release(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  const ReqId done = L.my_req;
  L.my_req = ReqId{};
  L.pending_inquires.clear();
  for (SiteId j : L.req_set)
    net().send(id(), j, net::make_release(done, ReqId{}), lock);
}

void MaekawaSite::on_message(const Message& m, LockId lock) {
  observe(lock, m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: handle_request(m, lock); break;
    case MsgType::kReply:   handle_reply(m, lock);   break;
    case MsgType::kFail:    handle_fail(m, lock);    break;
    case MsgType::kInquire: handle_inquire(m, lock); break;
    case MsgType::kYield:   handle_yield(m, lock);   break;
    case MsgType::kRelease: handle_release(m, lock); break;
    case MsgType::kFailureNotice: break;  // baseline is not fault-tolerant
    default:
      DQME_CHECK_MSG(false, "maekawa: unexpected " << m);
  }
}

// ---------------------------------------------------------------- requester

void MaekawaSite::handle_reply(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock) || m.req != L.my_req) {
    note_stale_drop();
    return;
  }
  const int pos = L.voted.find(m.src);
  DQME_CHECK_MSG(pos >= 0, "reply from non-arbiter " << m.src);
  L.voted.grant(static_cast<size_t>(pos));
  // Maekawa replies always relay through the arbiter: release -> reply,
  // the 2T synchronization delay the proposed algorithm's proxy removes.
  set_entry_hops(lock, 2);
  try_enter(lock);
}

void MaekawaSite::handle_fail(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock) || m.req != L.my_req) {
    note_stale_drop();
    return;
  }
  L.failed = true;
  // Any inquire we sat on can now be answered: we know we are blocked.
  auto pending = std::move(L.pending_inquires);
  L.pending_inquires.clear();
  for (SiteId arbiter : pending) answer_inquire(lock, arbiter);
}

void MaekawaSite::handle_inquire(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock) || m.req != L.my_req) {
    note_stale_drop();  // e.g. we already exited; release supersedes it
    return;
  }
  answer_inquire(lock, m.src);
}

void MaekawaSite::answer_inquire(LockId lock, SiteId arbiter) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  DQME_CHECK(requesting(lock));
  const int pos = L.voted.find(arbiter);
  DQME_CHECK_MSG(pos >= 0, "inquire from non-arbiter " << arbiter);
  if (!L.voted.test(static_cast<size_t>(pos))) {
    // Channels are FIFO and replies come only from the arbiter itself in
    // Maekawa, so an inquire can't precede its reply — but it CAN arrive
    // after we yielded this very lock; nothing to yield then.
    note_stale_drop();
    return;
  }
  if (L.failed) {
    L.voted.revoke(static_cast<size_t>(pos));
    net().send(id(), arbiter, net::make_yield(arbiter, L.my_req), lock);
  } else {
    // Still hopeful: defer. If we enter the CS the release answers it; if a
    // fail arrives the handler above yields.
    L.pending_inquires.push_back(arbiter);
  }
}

void MaekawaSite::try_enter(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock)) return;
  if (!L.voted.all()) return;
  L.pending_inquires.clear();  // answered implicitly by release at exit
  enter_cs(lock);
}

// ----------------------------------------------------------------- arbiter

void MaekawaSite::grant(LockId lock, const ReqId& r) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.lock = r;
  L.inquire_outstanding = false;
  net().send(id(), r.site, net::make_reply(id(), r), lock);
}

void MaekawaSite::grant_next_from_queue(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (L.req_queue.empty()) {
    L.lock = ReqId{};
    L.inquire_outstanding = false;
    return;
  }
  ReqId head = L.req_queue.front();
  L.req_queue.pop_front();
  grant(lock, head);
}

void MaekawaSite::handle_request(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  const ReqId r = m.req;
  if (!L.lock.valid()) {
    DQME_CHECK(L.req_queue.empty());
    grant(lock, r);
    return;
  }
  // Exactly one *favourite* per tenure: a request that outranks the lock
  // holder and every waiter, with an inquire outstanding for it. Everyone
  // else is told it failed — including a favourite the moment it is
  // displaced (without that fail the displaced site can defer another
  // arbiter's inquire forever and deadlock; this is the classic correction
  // to Maekawa's original algorithm).
  const bool have_head = !L.req_queue.empty();
  const ReqId head = have_head ? L.req_queue.front() : ReqId{};
  if (r < L.lock && (!have_head || r < head)) {
    if (have_head && head < L.lock)
      net().send(id(), head.site, net::make_fail(id(), head), lock);
    if (!L.inquire_outstanding) {
      L.inquire_outstanding = true;
      net().send(id(), L.lock.site, net::make_inquire(id(), L.lock), lock);
    }
  } else {
    net().send(id(), r.site, net::make_fail(id(), r), lock);
  }
  L.req_queue.insert(r);
}

void MaekawaSite::handle_yield(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!L.lock.valid() || L.lock != m.req) {
    note_stale_drop();
    return;
  }
  L.req_queue.insert(L.lock);  // the yielder still wants the CS
  grant_next_from_queue(lock);
}

void MaekawaSite::handle_release(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!L.lock.valid() || L.lock != m.req) {
    note_stale_drop();
    return;
  }
  grant_next_from_queue(lock);
}

}  // namespace dqme::mutex
