#include "mutex/raymond.h"

#include <algorithm>

namespace dqme::mutex {

using net::Message;
using net::MsgType;

RaymondSite::RaymondSite(SiteId id, net::Executor& net, LockId num_locks)
    : MutexSite(id, net, num_locks),
      parent_(id == 0 ? kNoSite : (id - 1) / 2),
      lk_(static_cast<size_t>(num_locks)) {
  for (Lk& L : lk_) L.holder = id == 0 ? id : parent_;
}

void RaymondSite::do_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  open_span(lock, span_of(ReqId{++L.seq, id()}));
  L.request_q.push_back(id());
  assign_privilege(lock);
  make_request(lock);
}

void RaymondSite::do_release(LockId lock) {
  assign_privilege(lock);
  make_request(lock);
}

// Passes the privilege to the head of the queue if we hold an idle token.
void RaymondSite::assign_privilege(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (L.holder != id() || in_cs(lock) || L.request_q.empty()) return;
  SiteId next = L.request_q.front();
  L.request_q.pop_front();
  L.asked = false;
  if (next == id()) {
    enter_cs(lock);
    return;
  }
  L.holder = next;
  Message token;
  token.type = MsgType::kToken;
  net().send(id(), next, token, lock);
}

// Asks the current holder direction for the token if we still need it.
void RaymondSite::make_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (L.holder == id() || L.request_q.empty() || L.asked) return;
  L.asked = true;
  Message req;
  req.type = MsgType::kTokenReq;
  net().send(id(), L.holder, req, lock);
}

void RaymondSite::on_message(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  switch (m.type) {
    case MsgType::kTokenReq: {
      // A neighbour wants the token through us; remember it once.
      if (std::find(L.request_q.begin(), L.request_q.end(), m.src) ==
          L.request_q.end())
        L.request_q.push_back(m.src);
      assign_privilege(lock);
      make_request(lock);
      break;
    }
    case MsgType::kToken: {
      L.holder = id();
      assign_privilege(lock);
      make_request(lock);
      break;
    }
    default:
      DQME_CHECK_MSG(false, "raymond: unexpected " << m);
  }
}

}  // namespace dqme::mutex
