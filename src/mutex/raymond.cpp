#include "mutex/raymond.h"

#include <algorithm>

namespace dqme::mutex {

using net::Message;
using net::MsgType;

RaymondSite::RaymondSite(SiteId id, net::Network& net)
    : MutexSite(id, net),
      parent_(id == 0 ? kNoSite : (id - 1) / 2),
      holder_(id == 0 ? id : parent_) {}

void RaymondSite::do_request() {
  request_q_.push_back(id());
  assign_privilege();
  make_request();
}

void RaymondSite::do_release() {
  assign_privilege();
  make_request();
}

// Passes the privilege to the head of the queue if we hold an idle token.
void RaymondSite::assign_privilege() {
  if (holder_ != id() || in_cs() || request_q_.empty()) return;
  SiteId next = request_q_.front();
  request_q_.pop_front();
  asked_ = false;
  if (next == id()) {
    enter_cs();
    return;
  }
  holder_ = next;
  Message token;
  token.type = MsgType::kToken;
  net().send(id(), next, token);
}

// Asks the current holder direction for the token if we still need it.
void RaymondSite::make_request() {
  if (holder_ == id() || request_q_.empty() || asked_) return;
  asked_ = true;
  Message req;
  req.type = MsgType::kTokenReq;
  net().send(id(), holder_, req);
}

void RaymondSite::on_message(const Message& m) {
  switch (m.type) {
    case MsgType::kTokenReq: {
      // A neighbour wants the token through us; remember it once.
      if (std::find(request_q_.begin(), request_q_.end(), m.src) ==
          request_q_.end())
        request_q_.push_back(m.src);
      assign_privilege();
      make_request();
      break;
    }
    case MsgType::kToken: {
      holder_ = id();
      assign_privilege();
      make_request();
      break;
    }
    default:
      DQME_CHECK_MSG(false, "raymond: unexpected " << m);
  }
}

}  // namespace dqme::mutex
