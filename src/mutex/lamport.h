// Lamport's timestamp-ordered mutual exclusion [6] (paper §1).
//
// Every site keeps a replica of the global request queue. To enter, a site
// broadcasts request, waits for a reply from everyone (proof their clock
// passed its timestamp), and enters when its request heads its local queue.
// Exactly 3(N-1) messages per CS; synchronization delay T. Each lock in
// the table runs an independent copy of the protocol (its own queue,
// replies, and Lamport clock).
#pragma once

#include <set>

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class LamportSite final : public MutexSite {
 public:
  LamportSite(SiteId id, net::Executor& net, LockId num_locks = 1);

  void on_message(const net::Message& m, LockId lock) override;

 private:
  // Per-lock protocol state, indexed by dense LockId.
  struct Lk {
    ReqId my_req;
    std::set<ReqId> queue;       // replicated request queue (priority order)
    std::vector<bool> replied;   // reply received from each other site
    int replies_needed = 0;
  };

  void do_request(LockId lock) override;
  void do_release(LockId lock) override;
  void try_enter(LockId lock);

  std::vector<Lk> lk_;
};

}  // namespace dqme::mutex
