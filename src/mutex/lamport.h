// Lamport's timestamp-ordered mutual exclusion [6] (paper §1).
//
// Every site keeps a replica of the global request queue. To enter, a site
// broadcasts request, waits for a reply from everyone (proof their clock
// passed its timestamp), and enters when its request heads its local queue.
// Exactly 3(N-1) messages per CS; synchronization delay T.
#pragma once

#include <set>

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class LamportSite final : public MutexSite {
 public:
  LamportSite(SiteId id, net::Network& net);

  void on_message(const net::Message& m) override;

 private:
  void do_request() override;
  void do_release() override;
  void try_enter();

  ReqId my_req_;
  std::set<ReqId> queue_;        // replicated request queue (priority order)
  std::vector<bool> replied_;    // reply received from each other site
  int replies_needed_ = 0;
};

}  // namespace dqme::mutex
