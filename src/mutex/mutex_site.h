// Base class for all mutual exclusion protocol sites.
//
// A MutexSite is one protocol endpoint of the sharded lock service: it
// arbitrates `num_locks` independent lock objects (dense LockIds
// 0..num_locks-1) over one shared network endpoint, owning per lock the
// requester-side state of its own CS requests and (for permission-based
// protocols) the arbiter-side state for requests it votes on. All
// driver-visible state lives in a lock table indexed by LockId; the
// common single-lock configuration is just num_locks == 1 driving kLock0.
// The harness drives the public API:
//
//     site.request_cs(lock);             // precondition: idle(lock)
//     ... on_enter(id, lock) fires ...   // site is now in lock's CS
//     site.release_cs(lock);             // precondition: in_cs(lock)
//
// request_cs/release_cs/on_message must only be called from the site's
// thread of control (simulator events under net::Network; the site's own
// pump thread under rt::Runtime) — protocols are single-threaded per site.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "net/executor.h"

namespace dqme::mutex {

// Observability hook (implemented by obs::SpanRecorder): protocols report
// the span-boundary instants of each CS request attempt, keyed by the lock
// it targets (span ids are derived from (site, seq) and can collide across
// locks — (lock, site, span) is the unique key). The null default costs
// one predicted branch per boundary — requests, not messages — so detached
// runs keep the slab hot path intact.
class SpanObserver {
 public:
  virtual ~SpanObserver() = default;
  virtual void on_span_issue(SiteId site, LockId lock, SpanId span,
                             Time at) = 0;
  virtual void on_span_enter(SiteId site, LockId lock, SpanId span,
                             Time at) = 0;
  virtual void on_span_exit(SiteId site, LockId lock, SpanId span,
                            Time at) = 0;
  virtual void on_span_abort(SiteId site, LockId lock, SpanId span,
                             Time at) = 0;
};

class MutexSite : public net::NetSite {
 public:
  enum class State { kIdle, kRequesting, kInCS };

  // `num_locks` sizes the lock table; LockIds are dense 0..num_locks-1 and
  // every keyed call validates its LockId against that range.
  MutexSite(SiteId id, net::Executor& net, LockId num_locks = 1)
      : id_(id), net_(net) {
    DQME_CHECK(0 <= id && id < net.size());
    DQME_CHECK_MSG(num_locks >= 1,
                   "num_locks must be >= 1 (dense LockIds 0..M-1)");
    locks_.resize(static_cast<size_t>(num_locks));
  }

  SiteId id() const { return id_; }
  LockId num_locks() const { return static_cast<LockId>(locks_.size()); }

  State state(LockId lock) const { return lk(lock).state; }
  bool idle(LockId lock) const { return lk(lock).state == State::kIdle; }
  bool requesting(LockId lock) const {
    return lk(lock).state == State::kRequesting;
  }
  bool in_cs(LockId lock) const { return lk(lock).state == State::kInCS; }
  // Lock-0 conveniences for the dominant single-lock configuration.
  State state() const { return state(kLock0); }
  bool idle() const { return idle(kLock0); }
  bool requesting() const { return requesting(kLock0); }
  bool in_cs() const { return in_cs(kLock0); }

  // Begins acquiring `lock`'s CS. May fire on_enter synchronously (e.g. a
  // token holder with no contention).
  void request_cs(LockId lock) {
    DQME_CHECK_MSG(idle(lock), "site " << id_ << " already has a request");
    lk(lock).state = State::kRequesting;
    do_request(lock);
  }

  // Leaves `lock`'s CS and hands permissions onward per the protocol.
  void release_cs(LockId lock) {
    DQME_CHECK_MSG(in_cs(lock), "site " << id_ << " is not in the CS");
    LockState& L = lk(lock);
    L.state = State::kIdle;
    if (span_observer_)
      span_observer_->on_span_exit(id_, lock, L.active_span, now());
    do_release(lock);
    L.active_span = kNoSpan;
  }

  // Attach-time observability (src/obs): record the causal span edges of
  // every request this site issues. Re-attaching replaces the observer; a
  // new observer that wants to coexist (obs::InvariantChecker) reads the
  // current one first and forwards to it.
  void attach_span_observer(SpanObserver* obs) { span_observer_ = obs; }
  SpanObserver* span_observer() const { return span_observer_; }
  // Span of the in-flight request attempt on `lock`; kNoSpan when idle (or
  // for protocols that do not thread spans yet).
  SpanId active_span(LockId lock) const { return lk(lock).active_span; }
  SpanId active_span() const { return active_span(kLock0); }

  // How many wire hops the grant completing `lock`'s latest CS entry
  // travelled: 1 = proxy-forwarded reply (the §3 handoff), 2 = arbiter
  // relay, 0 = protocol does not classify entries. Feeds the analytic-
  // model gate (obs::mixed_sync_delay).
  int last_entry_hops(LockId lock) const { return lk(lock).last_entry_hops; }
  int last_entry_hops() const { return last_entry_hops(kLock0); }

  // Invoked at the instant the site enters a lock's CS.
  std::function<void(SiteId, LockId)> on_enter;

  // Invoked if the site abandons its current request on a lock because no
  // quorum can be formed (§6: the site "becomes inaccessible"). Only the
  // fault-tolerant configuration ever fires this.
  std::function<void(SiteId, LockId)> on_abort;

  uint64_t cs_entries(LockId lock) const { return lk(lock).cs_entries; }
  // Total CS entries across every lock of the table.
  uint64_t cs_entries() const {
    uint64_t total = 0;
    for (const LockState& L : locks_) total += L.cs_entries;
    return total;
  }
  // Messages dropped as stale/outdated (DESIGN.md D1). Diagnosable, not an
  // error: the protocol prescribes ignoring them — e.g. a transfer or
  // inquire that crosses the holder's release on the wire.
  uint64_t stale_drops() const { return stale_drops_; }
  uint64_t stale_drops(net::MsgType t) const {
    return stale_by_type_[static_cast<size_t>(t)];
  }

 protected:
  net::Executor& net() { return net_; }

  // Subclasses call this when all of `lock`'s permissions are assembled.
  void enter_cs(LockId lock) {
    DQME_CHECK_MSG(requesting(lock),
                   "site " << id_ << " entering CS while not requesting");
    LockState& L = lk(lock);
    L.state = State::kInCS;
    ++L.cs_entries;
    if (span_observer_)
      span_observer_->on_span_enter(id_, lock, L.active_span, now());
    if (on_enter) on_enter(id_, lock);
  }

  // Subclasses call this the moment a request attempt's identity is fixed
  // (my_req assigned) — typically `open_span(lock, span_of(my_req))`. A §6
  // recovery that restarts on a fresh quorum opens a fresh span.
  void open_span(LockId lock, SpanId span) {
    lk(lock).active_span = span;
    if (span_observer_) span_observer_->on_span_issue(id_, lock, span, now());
  }

  // Subclasses set this just before the enter_cs() a grant produces.
  void set_entry_hops(LockId lock, int hops) {
    lk(lock).last_entry_hops = hops;
  }

  void note_stale_drop() { ++stale_drops_; }
  void note_stale_drop(net::MsgType t) {
    ++stale_drops_;
    ++stale_by_type_[static_cast<size_t>(t)];
  }

  // Abandons `lock`'s in-flight request (fault-tolerance layer only).
  void abort_request(LockId lock) {
    DQME_CHECK(requesting(lock));
    LockState& L = lk(lock);
    L.state = State::kIdle;
    if (span_observer_)
      span_observer_->on_span_abort(id_, lock, L.active_span, now());
    L.active_span = kNoSpan;
    if (on_abort) on_abort(id_, lock);
  }

  // Per-lock Lamport clock shared by timestamped protocols. Clocks are
  // independent across locks so an M-lock run makes exactly the per-lock
  // timestamp decisions M single-lock runs would (lock_table_test).
  SeqNum tick(LockId lock) { return ++lk(lock).clock; }
  void observe(LockId lock, SeqNum seen) {
    // kMaxSeq is the "(max,max)" sentinel carried by messages that do not
    // pertain to a real request (e.g. deferred replies) — never a clock.
    if (seen != kMaxSeq && seen > lk(lock).clock) lk(lock).clock = seen;
  }
  SeqNum clock(LockId lock) const { return lk(lock).clock; }

  virtual void do_request(LockId lock) = 0;
  virtual void do_release(LockId lock) = 0;

 private:
  // Driver-visible per-lock state; protocol subclasses keep their own
  // parallel lock tables (VoteMap/ReqQueue et al.) indexed the same way.
  struct LockState {
    State state = State::kIdle;
    uint64_t cs_entries = 0;
    SeqNum clock = 0;
    SpanId active_span = kNoSpan;
    int last_entry_hops = 0;
  };

  Time now() const { return net_.now(); }
  LockState& lk(LockId lock) {
    DQME_CHECK_MSG(0 <= lock && lock < num_locks(),
                   "LockId " << lock << " outside dense range 0.."
                             << (num_locks() - 1));
    return locks_[static_cast<size_t>(lock)];
  }
  const LockState& lk(LockId lock) const {
    DQME_CHECK_MSG(0 <= lock && lock < num_locks(),
                   "LockId " << lock << " outside dense range 0.."
                             << (num_locks() - 1));
    return locks_[static_cast<size_t>(lock)];
  }

  SiteId id_;
  net::Executor& net_;
  std::vector<LockState> locks_;
  uint64_t stale_drops_ = 0;
  std::array<uint64_t, net::kNumMsgTypes> stale_by_type_{};
  SpanObserver* span_observer_ = nullptr;
};

}  // namespace dqme::mutex
