// Base class for all mutual exclusion protocol sites.
//
// A MutexSite is one protocol endpoint: it owns the requester-side state of
// its own CS requests and (for permission-based protocols) the arbiter-side
// state for requests it votes on. The harness drives the public API:
//
//     site.request_cs();            // precondition: idle
//     ... on_enter(id) fires ...    // site is now in the CS
//     site.release_cs();            // precondition: in CS
//
// request_cs/release_cs/on_message must only be called from simulator
// events; protocols are single-threaded within the simulation.
#pragma once

#include <array>
#include <functional>

#include "common/check.h"
#include "common/timestamp.h"
#include "common/types.h"
#include "net/network.h"

namespace dqme::mutex {

// Observability hook (implemented by obs::SpanRecorder): protocols report
// the span-boundary instants of each CS request attempt. The null default
// costs one predicted branch per boundary — requests, not messages — so
// detached runs keep the slab hot path intact.
class SpanObserver {
 public:
  virtual ~SpanObserver() = default;
  virtual void on_span_issue(SiteId site, SpanId span, Time at) = 0;
  virtual void on_span_enter(SiteId site, SpanId span, Time at) = 0;
  virtual void on_span_exit(SiteId site, SpanId span, Time at) = 0;
  virtual void on_span_abort(SiteId site, SpanId span, Time at) = 0;
};

class MutexSite : public net::NetSite {
 public:
  enum class State { kIdle, kRequesting, kInCS };

  MutexSite(SiteId id, net::Network& net) : id_(id), net_(net) {
    DQME_CHECK(0 <= id && id < net.size());
  }

  SiteId id() const { return id_; }
  State state() const { return state_; }
  bool idle() const { return state_ == State::kIdle; }
  bool requesting() const { return state_ == State::kRequesting; }
  bool in_cs() const { return state_ == State::kInCS; }

  // Begins acquiring the CS. May fire on_enter synchronously (e.g. a token
  // holder with no contention).
  void request_cs() {
    DQME_CHECK_MSG(idle(), "site " << id_ << " already has a request");
    state_ = State::kRequesting;
    do_request();
  }

  // Leaves the CS and hands permissions onward per the protocol.
  void release_cs() {
    DQME_CHECK_MSG(in_cs(), "site " << id_ << " is not in the CS");
    state_ = State::kIdle;
    if (span_observer_) span_observer_->on_span_exit(id_, active_span_, now());
    do_release();
    active_span_ = kNoSpan;
  }

  // Attach-time observability (src/obs): record the causal span edges of
  // every request this site issues. Re-attaching replaces the observer; a
  // new observer that wants to coexist (obs::InvariantChecker) reads the
  // current one first and forwards to it.
  void attach_span_observer(SpanObserver* obs) { span_observer_ = obs; }
  SpanObserver* span_observer() const { return span_observer_; }
  // Span of the in-flight request attempt; kNoSpan when idle (or for
  // protocols that do not thread spans yet).
  SpanId active_span() const { return active_span_; }

  // How many wire hops the grant completing the latest CS entry travelled:
  // 1 = proxy-forwarded reply (the §3 handoff), 2 = arbiter relay, 0 =
  // protocol does not classify entries. Feeds the analytic-model gate
  // (obs::mixed_sync_delay).
  int last_entry_hops() const { return last_entry_hops_; }

  // Invoked at the instant the site enters the CS.
  std::function<void(SiteId)> on_enter;

  // Invoked if the site abandons its current request because no quorum can
  // be formed (§6: the site "becomes inaccessible"). Only the fault-
  // tolerant configuration ever fires this.
  std::function<void(SiteId)> on_abort;

  uint64_t cs_entries() const { return cs_entries_; }
  // Messages dropped as stale/outdated (DESIGN.md D1). Diagnosable, not an
  // error: the protocol prescribes ignoring them — e.g. a transfer or
  // inquire that crosses the holder's release on the wire.
  uint64_t stale_drops() const { return stale_drops_; }
  uint64_t stale_drops(net::MsgType t) const {
    return stale_by_type_[static_cast<size_t>(t)];
  }

 protected:
  net::Network& net() { return net_; }
  sim::Simulator& sim() { return net_.simulator(); }

  // Subclasses call this when all permissions are assembled.
  void enter_cs() {
    DQME_CHECK_MSG(requesting(),
                   "site " << id_ << " entering CS while not requesting");
    state_ = State::kInCS;
    ++cs_entries_;
    if (span_observer_) span_observer_->on_span_enter(id_, active_span_, now());
    if (on_enter) on_enter(id_);
  }

  // Subclasses call this the moment a request attempt's identity is fixed
  // (my_req assigned) — typically `open_span(span_of(my_req_))`. A §6
  // recovery that restarts on a fresh quorum opens a fresh span.
  void open_span(SpanId span) {
    active_span_ = span;
    if (span_observer_) span_observer_->on_span_issue(id_, span, now());
  }

  // Subclasses set this just before the enter_cs() a grant produces.
  void set_entry_hops(int hops) { last_entry_hops_ = hops; }

  void note_stale_drop() { ++stale_drops_; }
  void note_stale_drop(net::MsgType t) {
    ++stale_drops_;
    ++stale_by_type_[static_cast<size_t>(t)];
  }

  // Abandons the in-flight request (fault-tolerance layer only).
  void abort_request() {
    DQME_CHECK(requesting());
    state_ = State::kIdle;
    if (span_observer_) span_observer_->on_span_abort(id_, active_span_, now());
    active_span_ = kNoSpan;
    if (on_abort) on_abort(id_);
  }

  // Lamport clock shared by timestamped protocols.
  SeqNum tick() { return ++clock_; }
  void observe(SeqNum seen) {
    // kMaxSeq is the "(max,max)" sentinel carried by messages that do not
    // pertain to a real request (e.g. deferred replies) — never a clock.
    if (seen != kMaxSeq && seen > clock_) clock_ = seen;
  }
  SeqNum clock() const { return clock_; }

  virtual void do_request() = 0;
  virtual void do_release() = 0;

 private:
  Time now() const { return net_.simulator().now(); }

  SiteId id_;
  net::Network& net_;
  State state_ = State::kIdle;
  uint64_t cs_entries_ = 0;
  uint64_t stale_drops_ = 0;
  std::array<uint64_t, net::kNumMsgTypes> stale_by_type_{};
  SeqNum clock_ = 0;
  SpanObserver* span_observer_ = nullptr;
  SpanId active_span_ = kNoSpan;
  int last_entry_hops_ = 0;
};

}  // namespace dqme::mutex
