// Carvalho-Roucairol dynamic-authorization mutual exclusion — the
// "dynamic algorithm" of the paper's §1 survey: between 0 and 2(N-1)
// messages per CS (averaging ~N-1 at light load), synchronization delay T.
//
// Ricart-Agrawala with memory: each pair of sites shares one
// *authorization token*; a site that received your reply keeps your
// standing permission until YOU next request. A site enters the CS when it
// holds the token of every peer, so repeated requests by the same site
// cost zero messages, and the worst case (a request having to collect and
// defend every token) costs a request + reply per peer.
#pragma once

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class RoucairolCarvalhoSite final : public MutexSite {
 public:
  RoucairolCarvalhoSite(SiteId id, net::Network& net);

  void on_message(const net::Message& m) override;

  // Whether this site currently holds peer `j`'s authorization.
  bool holds_authorization(SiteId j) const {
    return has_auth_[static_cast<size_t>(j)];
  }

 private:
  void do_request() override;
  void do_release() override;
  void pass_token(SiteId to);

  ReqId my_req_;
  std::vector<bool> has_auth_;  // pairwise token: exactly one side holds it
  std::vector<bool> deferred_;  // owed a reply at exit
  int missing_ = 0;             // tokens still needed for the current request
};

}  // namespace dqme::mutex
