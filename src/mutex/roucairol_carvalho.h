// Carvalho-Roucairol dynamic-authorization mutual exclusion — the
// "dynamic algorithm" of the paper's §1 survey: between 0 and 2(N-1)
// messages per CS (averaging ~N-1 at light load), synchronization delay T.
//
// Ricart-Agrawala with memory: each pair of sites shares one
// *authorization token*; a site that received your reply keeps your
// standing permission until YOU next request. A site enters the CS when it
// holds the token of every peer, so repeated requests by the same site
// cost zero messages, and the worst case (a request having to collect and
// defend every token) costs a request + reply per peer. Each lock in the
// table has its own independent set of pairwise tokens.
#pragma once

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class RoucairolCarvalhoSite final : public MutexSite {
 public:
  RoucairolCarvalhoSite(SiteId id, net::Executor& net, LockId num_locks = 1);

  void on_message(const net::Message& m, LockId lock) override;

  // Whether this site currently holds peer `j`'s authorization for `lock`.
  bool holds_authorization(SiteId j, LockId lock = kLock0) const {
    return lk_[static_cast<size_t>(lock)].has_auth[static_cast<size_t>(j)];
  }

 private:
  // Per-lock protocol state, indexed by dense LockId.
  struct Lk {
    ReqId my_req;
    std::vector<bool> has_auth;  // pairwise token: exactly one side holds it
    std::vector<bool> deferred;  // owed a reply at exit
    int missing = 0;             // tokens still needed for current request
  };

  void do_request(LockId lock) override;
  void do_release(LockId lock) override;
  void pass_token(LockId lock, SiteId to);

  std::vector<Lk> lk_;
};

}  // namespace dqme::mutex
