#include "mutex/roucairol_carvalho.h"

namespace dqme::mutex {

using net::Message;
using net::MsgType;

RoucairolCarvalhoSite::RoucairolCarvalhoSite(SiteId id, net::Network& net)
    : MutexSite(id, net),
      has_auth_(static_cast<size_t>(net.size()), false),
      deferred_(static_cast<size_t>(net.size()), false) {
  // Per pair exactly one side starts with the token: the smaller id.
  for (SiteId j = 0; j < net.size(); ++j)
    has_auth_[static_cast<size_t>(j)] = id < j;
}

void RoucairolCarvalhoSite::do_request() {
  my_req_ = ReqId{tick(), id()};
  open_span(span_of(my_req_));
  missing_ = 0;
  for (SiteId j = 0; j < net().size(); ++j) {
    if (j == id() || has_auth_[static_cast<size_t>(j)]) continue;
    ++missing_;
    net().send(id(), j, net::make_request(my_req_));
  }
  if (missing_ == 0) enter_cs();  // standing authorizations suffice: free!
}

void RoucairolCarvalhoSite::pass_token(SiteId to) {
  DQME_CHECK(has_auth_[static_cast<size_t>(to)]);
  has_auth_[static_cast<size_t>(to)] = false;
  net().send(id(), to, net::make_reply(id(), ReqId{}));
}

void RoucairolCarvalhoSite::do_release() {
  my_req_ = ReqId{};
  for (SiteId j = 0; j < net().size(); ++j) {
    if (!deferred_[static_cast<size_t>(j)]) continue;
    deferred_[static_cast<size_t>(j)] = false;
    pass_token(j);
  }
  // Tokens of non-requesters are RETAINED — the whole point: a repeat
  // request by this site will not need them again.
}

void RoucairolCarvalhoSite::on_message(const Message& m) {
  observe(m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: {
      if (!has_auth_[static_cast<size_t>(m.src)]) {
        // Our reply (the token) is already in flight to them: this request
        // was sent before it arrived and is satisfied by it.
        note_stale_drop();
        break;
      }
      const bool we_win =
          in_cs() || (requesting() && my_req_ < m.req);
      if (we_win) {
        deferred_[static_cast<size_t>(m.src)] = true;
        break;
      }
      pass_token(m.src);
      if (requesting()) {
        // We still need the token back: re-request (the CR rule that keeps
        // both progress and the pairwise-token invariant).
        ++missing_;
        net().send(id(), m.src, net::make_request(my_req_));
      }
      break;
    }
    case MsgType::kReply: {
      // The peer passed us the pairwise token.
      if (has_auth_[static_cast<size_t>(m.src)]) {
        note_stale_drop();  // duplicate pass would break the invariant
        break;
      }
      has_auth_[static_cast<size_t>(m.src)] = true;
      if (requesting() && --missing_ == 0) enter_cs();
      break;
    }
    default:
      DQME_CHECK_MSG(false, "roucairol-carvalho: unexpected " << m);
  }
}

}  // namespace dqme::mutex
