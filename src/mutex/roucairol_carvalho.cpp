#include "mutex/roucairol_carvalho.h"

namespace dqme::mutex {

using net::Message;
using net::MsgType;

RoucairolCarvalhoSite::RoucairolCarvalhoSite(SiteId id, net::Executor& net,
                                             LockId num_locks)
    : MutexSite(id, net, num_locks), lk_(static_cast<size_t>(num_locks)) {
  for (Lk& L : lk_) {
    L.has_auth.assign(static_cast<size_t>(net.size()), false);
    L.deferred.assign(static_cast<size_t>(net.size()), false);
    // Per pair exactly one side starts with the token: the smaller id.
    for (SiteId j = 0; j < net.size(); ++j)
      L.has_auth[static_cast<size_t>(j)] = id < j;
  }
}

void RoucairolCarvalhoSite::do_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.my_req = ReqId{tick(lock), id()};
  open_span(lock, span_of(L.my_req));
  L.missing = 0;
  for (SiteId j = 0; j < net().size(); ++j) {
    if (j == id() || L.has_auth[static_cast<size_t>(j)]) continue;
    ++L.missing;
    net().send(id(), j, net::make_request(L.my_req), lock);
  }
  if (L.missing == 0) enter_cs(lock);  // standing authorizations suffice!
}

void RoucairolCarvalhoSite::pass_token(LockId lock, SiteId to) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  DQME_CHECK(L.has_auth[static_cast<size_t>(to)]);
  L.has_auth[static_cast<size_t>(to)] = false;
  net().send(id(), to, net::make_reply(id(), ReqId{}), lock);
}

void RoucairolCarvalhoSite::do_release(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.my_req = ReqId{};
  for (SiteId j = 0; j < net().size(); ++j) {
    if (!L.deferred[static_cast<size_t>(j)]) continue;
    L.deferred[static_cast<size_t>(j)] = false;
    pass_token(lock, j);
  }
  // Tokens of non-requesters are RETAINED — the whole point: a repeat
  // request by this site will not need them again.
}

void RoucairolCarvalhoSite::on_message(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  observe(lock, m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: {
      if (!L.has_auth[static_cast<size_t>(m.src)]) {
        // Our reply (the token) is already in flight to them: this request
        // was sent before it arrived and is satisfied by it.
        note_stale_drop();
        break;
      }
      const bool we_win =
          in_cs(lock) || (requesting(lock) && L.my_req < m.req);
      if (we_win) {
        L.deferred[static_cast<size_t>(m.src)] = true;
        break;
      }
      pass_token(lock, m.src);
      if (requesting(lock)) {
        // We still need the token back: re-request (the CR rule that keeps
        // both progress and the pairwise-token invariant).
        ++L.missing;
        net().send(id(), m.src, net::make_request(L.my_req), lock);
      }
      break;
    }
    case MsgType::kReply: {
      // The peer passed us the pairwise token.
      if (L.has_auth[static_cast<size_t>(m.src)]) {
        note_stale_drop();  // duplicate pass would break the invariant
        break;
      }
      L.has_auth[static_cast<size_t>(m.src)] = true;
      if (requesting(lock) && --L.missing == 0) enter_cs(lock);
      break;
    }
    default:
      DQME_CHECK_MSG(false, "roucairol-carvalho: unexpected " << m);
  }
}

}  // namespace dqme::mutex
