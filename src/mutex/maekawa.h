// Maekawa's quorum-based mutual exclusion [8] (paper §1) — the head-to-head
// baseline. Each site locks only its quorum; deadlocks among crossing
// quorums are resolved with inquire/fail/yield. 3(K-1) messages per CS at
// light load, up to 5(K-1) at heavy load, and synchronization delay 2T: an
// exiting site must release its arbiters, which then reply to the next
// requester — two serial message hops. Each lock in the table runs an
// independent copy of the protocol, optionally over a per-lock quorum
// construction (quorum_for_lock).
#pragma once

#include "mutex/flat_state.h"
#include "mutex/mutex_site.h"
#include "quorum/quorum_system.h"

namespace dqme::mutex {

class MaekawaSite final : public MutexSite {
 public:
  // `quorum_for_lock`, when set, names the quorum system arbitrating each
  // lock (must outlive the site); locks it returns nullptr for — and all
  // locks when it is unset — use `quorums`.
  MaekawaSite(SiteId id, net::Executor& net,
              const quorum::QuorumSystem& quorums, LockId num_locks = 1,
              std::function<const quorum::QuorumSystem*(LockId)>
                  quorum_for_lock = {});

  void on_message(const net::Message& m, LockId lock) override;

  const std::vector<SiteId>& req_set(LockId lock = kLock0) const {
    return lk_[static_cast<size_t>(lock)].req_set;
  }

 private:
  // Per-lock protocol state, indexed by dense LockId.
  struct Lk {
    // --- Requester state (current request) ---
    ReqId my_req;
    std::vector<SiteId> req_set;
    VoteMap voted;  // has each arbiter's lock, dense over req_set
    bool failed = false;
    std::vector<SiteId> pending_inquires;  // deferred until fail/entry known

    // --- Arbiter state ---
    ReqId lock;           // request currently holding this arbiter
    ReqQueue req_queue;   // waiting requests, priority-ordered
    bool inquire_outstanding = false;
  };

  void do_request(LockId lock) override;
  void do_release(LockId lock) override;

  // Requester side.
  void handle_reply(const net::Message& m, LockId lock);
  void handle_fail(const net::Message& m, LockId lock);
  void handle_inquire(const net::Message& m, LockId lock);
  void answer_inquire(LockId lock, SiteId arbiter);
  void try_enter(LockId lock);

  // Arbiter side.
  void handle_request(const net::Message& m, LockId lock);
  void handle_yield(const net::Message& m, LockId lock);
  void handle_release(const net::Message& m, LockId lock);
  void grant(LockId lock, const ReqId& r);
  void grant_next_from_queue(LockId lock);

  std::vector<Lk> lk_;
};

}  // namespace dqme::mutex
