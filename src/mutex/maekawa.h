// Maekawa's quorum-based mutual exclusion [8] (paper §1) — the head-to-head
// baseline. Each site locks only its quorum; deadlocks among crossing
// quorums are resolved with inquire/fail/yield. 3(K-1) messages per CS at
// light load, up to 5(K-1) at heavy load, and synchronization delay 2T: an
// exiting site must release its arbiters, which then reply to the next
// requester — two serial message hops.
#pragma once

#include "mutex/flat_state.h"
#include "mutex/mutex_site.h"
#include "quorum/quorum_system.h"

namespace dqme::mutex {

class MaekawaSite final : public MutexSite {
 public:
  MaekawaSite(SiteId id, net::Network& net,
              const quorum::QuorumSystem& quorums);

  void on_message(const net::Message& m) override;

  const std::vector<SiteId>& req_set() const { return req_set_; }

 private:
  void do_request() override;
  void do_release() override;

  // Requester side.
  void handle_reply(const net::Message& m);
  void handle_fail(const net::Message& m);
  void handle_inquire(const net::Message& m);
  void answer_inquire(SiteId arbiter);
  void try_enter();

  // Arbiter side.
  void handle_request(const net::Message& m);
  void handle_yield(const net::Message& m);
  void handle_release(const net::Message& m);
  void grant(const ReqId& r);
  void grant_next_from_queue();

  // --- Requester state (current request) ---
  ReqId my_req_;
  std::vector<SiteId> req_set_;
  VoteMap voted_;  // has each arbiter's lock, dense over req_set_
  bool failed_ = false;
  std::vector<SiteId> pending_inquires_;  // deferred until fail/entry known

  // --- Arbiter state ---
  ReqId lock_;          // request currently holding this arbiter
  ReqQueue req_queue_;  // waiting requests, priority-ordered
  bool inquire_outstanding_ = false;
};

}  // namespace dqme::mutex
