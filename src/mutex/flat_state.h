// Flat per-request protocol state for the quorum algorithms.
//
// A requester tracks K ~ sqrt(N) arbiters and an arbiter queues a handful
// of waiting requests; at those sizes node-based containers
// (std::map<SiteId,bool>, std::set<ReqId>) are pure overhead — one heap
// allocation per key, pointer-chasing on every lookup, and a full tree
// teardown per request. VoteMap and ReqQueue keep the exact semantics the
// protocols relied on (membership checks, priority order, head identity)
// in contiguous storage whose capacity survives across requests, so the
// steady-state hot path performs no allocation. Equivalence with the
// node-based originals is asserted in tests/flat_state_test.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/timestamp.h"
#include "common/types.h"

namespace dqme::mutex {

// replied[] of paper §3.1: which members of the current request's quorum
// have granted their permission. Members are stored in quorum order (dense
// position aligned with req_set_); lookups scan K contiguous ids, which
// beats a map walk at any realistic quorum size.
class VoteMap {
 public:
  // Starts a request: track `members`, none granted. Capacity is retained
  // across requests; §6 recovery re-assigns with the re-formed quorum and
  // the positions remap automatically.
  void assign(const std::vector<SiteId>& members) {
    members_.assign(members.begin(), members.end());
    granted_.assign(members_.size(), 0);
    count_ = 0;
  }

  void clear() {
    members_.clear();
    granted_.clear();
    count_ = 0;
  }

  bool empty() const { return members_.empty(); }
  size_t size() const { return members_.size(); }

  // Dense position of `arbiter`, or -1 when it is not a quorum member.
  int find(SiteId arbiter) const {
    for (size_t i = 0; i < members_.size(); ++i)
      if (members_[i] == arbiter) return static_cast<int>(i);
    return -1;
  }

  SiteId member(size_t pos) const { return members_[pos]; }
  bool test(size_t pos) const { return granted_[pos] != 0; }

  void grant(size_t pos) {
    if (granted_[pos] == 0) {
      granted_[pos] = 1;
      ++count_;
    }
  }

  void revoke(size_t pos) {
    if (granted_[pos] != 0) {
      granted_[pos] = 0;
      --count_;
    }
  }

  // True when every member has granted (trivially true when empty, like
  // iterating an empty map).
  bool all() const { return count_ == members_.size(); }

 private:
  std::vector<SiteId> members_;
  std::vector<uint8_t> granted_;
  size_t count_ = 0;
};

// req_queue of paper §3.1: waiting requests in priority order (smallest
// ReqId = highest priority, Lamport order). A sorted vector iterates in
// exactly the order std::set<ReqId> did, so head identity, was-head checks,
// and scrub scans are drop-in; inserts memmove a few 16-byte elements
// instead of rebalancing a tree.
class ReqQueue {
 public:
  using const_iterator = const ReqId*;

  const_iterator begin() const { return v_.data(); }
  const_iterator end() const { return v_.data() + v_.size(); }
  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }

  // Highest-priority waiter. Callers check empty() first, as with
  // *set::begin().
  const ReqId& front() const {
    DQME_CHECK(!v_.empty());
    return v_.front();
  }

  // Set semantics: inserting a present element is a no-op.
  void insert(const ReqId& r) {
    auto it = std::lower_bound(v_.begin(), v_.end(), r);
    if (it != v_.end() && *it == r) return;
    v_.insert(it, r);
  }

  const_iterator find(const ReqId& r) const {
    auto it = std::lower_bound(v_.begin(), v_.end(), r);
    if (it != v_.end() && *it == r) return v_.data() + (it - v_.begin());
    return end();
  }

  void erase(const_iterator it) {
    DQME_CHECK(begin() <= it && it < end());
    v_.erase(v_.begin() + (it - begin()));
  }

  void pop_front() {
    DQME_CHECK(!v_.empty());
    v_.erase(v_.begin());
  }

  template <typename Pred>
  size_t erase_if(Pred pred) {
    return std::erase_if(v_, pred);
  }

 private:
  std::vector<ReqId> v_;  // sorted ascending == priority order
};

}  // namespace dqme::mutex
