// Ricart-Agrawala mutual exclusion [13] (paper §1): Lamport's algorithm
// with release merged into deferred replies — 2(N-1) messages per CS,
// synchronization delay T.
#pragma once

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class RicartAgrawalaSite final : public MutexSite {
 public:
  RicartAgrawalaSite(SiteId id, net::Network& net);

  void on_message(const net::Message& m) override;

 private:
  void do_request() override;
  void do_release() override;

  ReqId my_req_;
  int pending_replies_ = 0;
  std::vector<SiteId> deferred_;  // requesters we owe a reply at exit
};

}  // namespace dqme::mutex
