// Ricart-Agrawala mutual exclusion [13] (paper §1): Lamport's algorithm
// with release merged into deferred replies — 2(N-1) messages per CS,
// synchronization delay T. Each lock in the table runs an independent copy
// of the protocol.
#pragma once

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class RicartAgrawalaSite final : public MutexSite {
 public:
  RicartAgrawalaSite(SiteId id, net::Executor& net, LockId num_locks = 1);

  void on_message(const net::Message& m, LockId lock) override;

 private:
  // Per-lock protocol state, indexed by dense LockId.
  struct Lk {
    ReqId my_req;
    int pending_replies = 0;
    std::vector<SiteId> deferred;  // requesters we owe a reply at exit
  };

  void do_request(LockId lock) override;
  void do_release(LockId lock) override;

  std::vector<Lk> lk_;
};

}  // namespace dqme::mutex
