#include "mutex/lamport.h"

namespace dqme::mutex {

using net::Message;
using net::MsgType;

LamportSite::LamportSite(SiteId id, net::Network& net)
    : MutexSite(id, net),
      replied_(static_cast<size_t>(net.size()), false) {}

void LamportSite::do_request() {
  my_req_ = ReqId{tick(), id()};
  open_span(span_of(my_req_));
  queue_.insert(my_req_);
  std::fill(replied_.begin(), replied_.end(), false);
  replies_needed_ = net().size() - 1;
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id()) net().send(id(), j, net::make_request(my_req_));
  try_enter();  // N == 1 degenerates to local mutual exclusion
}

void LamportSite::do_release() {
  queue_.erase(my_req_);
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id()) net().send(id(), j, net::make_release(my_req_, ReqId{}));
  my_req_ = ReqId{};
}

void LamportSite::on_message(const Message& m) {
  observe(m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: {
      queue_.insert(m.req);
      Message reply = net::make_reply(id(), m.req);
      reply.seq = tick();  // carries a clock value above the request's
      net().send(id(), m.src, reply);
      break;
    }
    case MsgType::kReply: {
      if (!requesting() || m.req != my_req_) {
        note_stale_drop();
        break;
      }
      observe(m.seq);
      if (!replied_[static_cast<size_t>(m.src)]) {
        replied_[static_cast<size_t>(m.src)] = true;
        --replies_needed_;
      }
      try_enter();
      break;
    }
    case MsgType::kRelease: {
      queue_.erase(m.req);
      try_enter();
      break;
    }
    default:
      DQME_CHECK_MSG(false, "lamport: unexpected " << m);
  }
}

void LamportSite::try_enter() {
  if (!requesting() || replies_needed_ > 0) return;
  if (!queue_.empty() && *queue_.begin() == my_req_) enter_cs();
}

}  // namespace dqme::mutex
