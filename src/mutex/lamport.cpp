#include "mutex/lamport.h"

namespace dqme::mutex {

using net::Message;
using net::MsgType;

LamportSite::LamportSite(SiteId id, net::Executor& net, LockId num_locks)
    : MutexSite(id, net, num_locks), lk_(static_cast<size_t>(num_locks)) {
  for (Lk& L : lk_) L.replied.assign(static_cast<size_t>(net.size()), false);
}

void LamportSite::do_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.my_req = ReqId{tick(lock), id()};
  open_span(lock, span_of(L.my_req));
  L.queue.insert(L.my_req);
  std::fill(L.replied.begin(), L.replied.end(), false);
  L.replies_needed = net().size() - 1;
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id()) net().send(id(), j, net::make_request(L.my_req), lock);
  try_enter(lock);  // N == 1 degenerates to local mutual exclusion
}

void LamportSite::do_release(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.queue.erase(L.my_req);
  for (SiteId j = 0; j < net().size(); ++j)
    if (j != id())
      net().send(id(), j, net::make_release(L.my_req, ReqId{}), lock);
  L.my_req = ReqId{};
}

void LamportSite::on_message(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  observe(lock, m.req.seq);
  switch (m.type) {
    case MsgType::kRequest: {
      L.queue.insert(m.req);
      Message reply = net::make_reply(id(), m.req);
      reply.seq = tick(lock);  // carries a clock value above the request's
      net().send(id(), m.src, reply, lock);
      break;
    }
    case MsgType::kReply: {
      if (!requesting(lock) || m.req != L.my_req) {
        note_stale_drop();
        break;
      }
      observe(lock, m.seq);
      if (!L.replied[static_cast<size_t>(m.src)]) {
        L.replied[static_cast<size_t>(m.src)] = true;
        --L.replies_needed;
      }
      try_enter(lock);
      break;
    }
    case MsgType::kRelease: {
      L.queue.erase(m.req);
      try_enter(lock);
      break;
    }
    default:
      DQME_CHECK_MSG(false, "lamport: unexpected " << m);
  }
}

void LamportSite::try_enter(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock) || L.replies_needed > 0) return;
  if (!L.queue.empty() && *L.queue.begin() == L.my_req) enter_cs(lock);
}

}  // namespace dqme::mutex
