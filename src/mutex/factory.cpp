#include "mutex/factory.h"

#include "core/cao_singhal.h"
#include "mutex/lamport.h"
#include "mutex/maekawa.h"
#include "mutex/raymond.h"
#include "mutex/ricart_agrawala.h"
#include "mutex/roucairol_carvalho.h"
#include "mutex/suzuki_kasami.h"

namespace dqme::mutex {

std::string_view to_string(Algo a) {
  switch (a) {
    case Algo::kLamport:           return "lamport";
    case Algo::kRicartAgrawala:    return "ricart-agrawala";
    case Algo::kRoucairolCarvalho: return "roucairol-carvalho";
    case Algo::kMaekawa:           return "maekawa";
    case Algo::kRaymond:           return "raymond";
    case Algo::kSuzukiKasami:      return "suzuki-kasami";
    case Algo::kCaoSinghal:        return "cao-singhal";
    case Algo::kCaoSinghalNoProxy: return "cao-singhal-noproxy";
  }
  return "unknown";
}

Algo algo_from_string(const std::string& name) {
  for (Algo a : all_algos())
    if (to_string(a) == name) return a;
  DQME_CHECK_MSG(false, "unknown algorithm: " << name);
  return Algo::kCaoSinghal;  // unreachable
}

std::vector<Algo> all_algos() {
  return {Algo::kLamport,           Algo::kRicartAgrawala,
          Algo::kRoucairolCarvalho, Algo::kMaekawa,
          Algo::kRaymond,           Algo::kSuzukiKasami,
          Algo::kCaoSinghal,        Algo::kCaoSinghalNoProxy};
}

bool algo_uses_quorum(Algo a) {
  return a == Algo::kMaekawa || a == Algo::kCaoSinghal ||
         a == Algo::kCaoSinghalNoProxy;
}

std::unique_ptr<MutexSite> make_site(Algo algo, SiteId id, net::Executor& net,
                                     const quorum::QuorumSystem* quorums,
                                     const AlgoOptions& options) {
  if (algo_uses_quorum(algo))
    DQME_CHECK_MSG(quorums != nullptr,
                   to_string(algo) << " needs a quorum system");
  DQME_CHECK_MSG(options.num_locks >= 1,
                 "num_locks must be >= 1 (dense LockIds 0..M-1), got "
                     << options.num_locks);
  const LockId locks = options.num_locks;
  switch (algo) {
    case Algo::kLamport:
      return std::make_unique<LamportSite>(id, net, locks);
    case Algo::kRicartAgrawala:
      return std::make_unique<RicartAgrawalaSite>(id, net, locks);
    case Algo::kRoucairolCarvalho:
      return std::make_unique<RoucairolCarvalhoSite>(id, net, locks);
    case Algo::kMaekawa:
      return std::make_unique<MaekawaSite>(id, net, *quorums, locks,
                                           options.quorum_for_lock);
    case Algo::kRaymond:
      return std::make_unique<RaymondSite>(id, net, locks);
    case Algo::kSuzukiKasami:
      return std::make_unique<SuzukiKasamiSite>(id, net, locks);
    case Algo::kCaoSinghal:
    case Algo::kCaoSinghalNoProxy: {
      core::CaoSinghalSite::Options o;
      o.proxy_transfer = algo == Algo::kCaoSinghal;
      o.piggyback = options.piggyback;
      o.fault_tolerant = options.fault_tolerant;
      o.num_locks = locks;
      o.quorum_for_lock = options.quorum_for_lock;
      return std::make_unique<core::CaoSinghalSite>(id, net, *quorums, o);
    }
  }
  DQME_CHECK(false);
  return nullptr;  // unreachable
}

}  // namespace dqme::mutex
