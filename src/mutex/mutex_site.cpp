// MutexSite is header-only; this TU anchors its vtable.
#include "mutex/mutex_site.h"

namespace dqme::mutex {}
