// Raymond's tree-based token algorithm [12] (paper §1, Table 1).
//
// Sites form a static (logical) tree; the token lives at one site and every
// other site's `holder_` points toward it. Requests travel up the holder
// chain (O(log N) messages on a balanced tree) and the token flows back.
// Average message cost O(log N) but the delay is also O(log N) hops — the
// "long delay" class of algorithms the paper contrasts itself against.
#pragma once

#include <deque>

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class RaymondSite final : public MutexSite {
 public:
  // The tree is a complete binary tree over site ids (parent(i) = (i-1)/2);
  // site 0 starts with the token.
  RaymondSite(SiteId id, net::Network& net);

  void on_message(const net::Message& m) override;

  bool holds_token() const { return holder_ == id(); }

 private:
  void do_request() override;
  void do_release() override;

  // Raymond's two core procedures.
  void assign_privilege();
  void make_request();

  SiteId parent_;
  SiteId holder_;               // neighbour in the token's direction, or self
  bool asked_ = false;          // sent a request toward holder already
  std::deque<SiteId> request_q_;  // neighbours (or self) waiting for token
};

}  // namespace dqme::mutex
