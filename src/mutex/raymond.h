// Raymond's tree-based token algorithm [12] (paper §1, Table 1).
//
// Sites form a static (logical) tree; the token lives at one site and every
// other site's `holder` points toward it. Requests travel up the holder
// chain (O(log N) messages on a balanced tree) and the token flows back.
// Average message cost O(log N) but the delay is also O(log N) hops — the
// "long delay" class of algorithms the paper contrasts itself against.
// Each lock in the table has its own token flowing over the shared tree.
#pragma once

#include <deque>

#include "mutex/mutex_site.h"

namespace dqme::mutex {

class RaymondSite final : public MutexSite {
 public:
  // The tree is a complete binary tree over site ids (parent(i) = (i-1)/2);
  // site 0 starts with every lock's token.
  RaymondSite(SiteId id, net::Executor& net, LockId num_locks = 1);

  void on_message(const net::Message& m, LockId lock) override;

  bool holds_token(LockId lock = kLock0) const {
    return lk_[static_cast<size_t>(lock)].holder == id();
  }

 private:
  // Per-lock protocol state, indexed by dense LockId.
  struct Lk {
    SiteId holder = kNoSite;  // neighbour in the token's direction, or self
    bool asked = false;       // sent a request toward holder already
    SeqNum seq = 0;           // local request counter (span ids only)
    std::deque<SiteId> request_q;  // neighbours (or self) waiting for token
  };

  void do_request(LockId lock) override;
  void do_release(LockId lock) override;

  // Raymond's two core procedures.
  void assign_privilege(LockId lock);
  void make_request(LockId lock);

  SiteId parent_;  // tree edge, shared by every lock
  std::vector<Lk> lk_;
};

}  // namespace dqme::mutex
