#include "verify/schedule.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dqme::verify {

std::string to_string(const Action& a) {
  std::ostringstream os;
  switch (a.kind) {
    case ActionKind::kDeliver: os << "d " << a.a << ' ' << a.b; break;
    case ActionKind::kExit:    os << "x " << a.a; break;
    case ActionKind::kNotice:  os << "n " << a.a << ' ' << a.b; break;
    case ActionKind::kCrash:   os << "c " << a.a; break;
  }
  return os.str();
}

SiteId touched_site(const Action& a) {
  switch (a.kind) {
    case ActionKind::kDeliver: return a.b;  // runs the destination's handler
    case ActionKind::kExit:    return a.a;
    case ActionKind::kNotice:  return a.b;  // runs the receiver's handler
    case ActionKind::kCrash:   return kNoSite;  // dependent with everything
  }
  return kNoSite;
}

bool independent(const Action& x, const Action& y) {
  const SiteId sx = touched_site(x);
  const SiteId sy = touched_site(y);
  return sx != kNoSite && sy != kNoSite && sx != sy;
}

namespace {

// Does `a` read or write site v's locality — v's protocol state, a channel
// into or out of v, or a failure notice naming v? This is the conflict
// footprint a crash of v has: crash(v) flips v's liveness, sweeps the
// parked flights of every (v,*) and (*,v) channel, retires v's pending
// notices, and spawns new notices about v.
bool touches_victim(const Action& a, SiteId v) {
  switch (a.kind) {
    case ActionKind::kDeliver: return a.a == v || a.b == v;
    case ActionKind::kExit:    return a.a == v;
    case ActionKind::kNotice:  return a.a == v || a.b == v;
    case ActionKind::kCrash:   return true;  // crashes share the budget
  }
  return true;
}

}  // namespace

bool independent(const Action& x, const Action& y, Dpor mode) {
  if (mode == Dpor::kSleep) return independent(x, y);
  // kSource: crashes conflict exactly with their victim's locality; every
  // other pair keeps the same-handler-site relation.
  if (x.kind == ActionKind::kCrash) return !touches_victim(y, x.a);
  if (y.kind == ActionKind::kCrash) return !touches_victim(x, y.a);
  return independent(x, y);
}

std::string_view to_string(Dpor d) {
  return d == Dpor::kSource ? "source" : "sleep";
}

Dpor dpor_from_string(const std::string& name) {
  if (name == "sleep") return Dpor::kSleep;
  if (name == "source") return Dpor::kSource;
  DQME_CHECK_MSG(false, "unknown dpor mode '" << name << "' (sleep|source)");
  return Dpor::kSleep;
}

std::string_view to_string(Mutation m) {
  switch (m) {
    case Mutation::kNone:          return "none";
    case Mutation::kDoubleGrant:   return "double-grant";
    case Mutation::kLostTransfer:  return "lost-transfer";
    case Mutation::kFifoInversion: return "fifo-inversion";
    case Mutation::kDeadlockOrdering: return "deadlock-ordering";
  }
  return "none";
}

Mutation mutation_from_string(const std::string& name) {
  if (name.empty() || name == "none") return Mutation::kNone;
  if (name == "double-grant") return Mutation::kDoubleGrant;
  if (name == "lost-transfer") return Mutation::kLostTransfer;
  if (name == "fifo-inversion") return Mutation::kFifoInversion;
  if (name == "deadlock-ordering") return Mutation::kDeadlockOrdering;
  DQME_CHECK_MSG(false, "unknown mutation '" << name << "'");
  return Mutation::kNone;
}

std::string encode_actions(const std::vector<Action>& actions) {
  std::string out;
  for (const Action& a : actions) {
    if (!out.empty()) out += ';';
    out += to_string(a);
  }
  return out;
}

bool decode_actions(const std::string& text, std::vector<Action>& out) {
  out.clear();
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ';')) {
    if (item.empty()) continue;
    std::istringstream fields(item);
    char kind = 0;
    Action a;
    if (!(fields >> kind)) return false;
    switch (kind) {
      case 'd':
        a.kind = ActionKind::kDeliver;
        if (!(fields >> a.a >> a.b)) return false;
        break;
      case 'x':
        a.kind = ActionKind::kExit;
        if (!(fields >> a.a)) return false;
        break;
      case 'n':
        a.kind = ActionKind::kNotice;
        if (!(fields >> a.a >> a.b)) return false;
        break;
      case 'c':
        a.kind = ActionKind::kCrash;
        if (!(fields >> a.a)) return false;
        break;
      default:
        return false;
    }
    out.push_back(a);
  }
  return true;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

bool json_field_str(const std::string& text, const std::string& key,
                    std::string& out) {
  const std::string pat = "\"" + key + "\":";
  size_t p = text.find(pat);
  if (p == std::string::npos) return false;
  p += pat.size();
  while (p < text.size() && text[p] == ' ') ++p;
  if (p >= text.size() || text[p] != '"') return false;
  ++p;
  out.clear();
  while (p < text.size() && text[p] != '"') {
    if (text[p] == '\\' && p + 1 < text.size()) ++p;
    out += text[p++];
  }
  return p < text.size();
}

bool json_field_num(const std::string& text, const std::string& key,
                    long& out) {
  const std::string pat = "\"" + key + "\":";
  size_t p = text.find(pat);
  if (p == std::string::npos) return false;
  p += pat.size();
  while (p < text.size() && text[p] == ' ') ++p;
  std::istringstream num(text.substr(p, 24));
  return static_cast<bool>(num >> out);
}

void write_config_fields(std::ostream& os, const WorldConfig& cfg) {
  os << "\"algo\":";
  write_json_string(os, mutex::to_string(cfg.algo));
  os << ",\"n\":" << cfg.n;
  os << ",\"quorum\":";
  write_json_string(os, cfg.quorum);
  os << ",\"cs_per_site\":" << cfg.cs_per_site;
  os << ",\"fault_tolerant\":" << (cfg.fault_tolerant ? "true" : "false");
  std::string crash_sites;
  for (SiteId s : cfg.crash_sites) {
    if (!crash_sites.empty()) crash_sites += ' ';
    crash_sites += std::to_string(s);
  }
  os << ",\"crash_sites\":";
  write_json_string(os, crash_sites);
  os << ",\"max_crashes\":" << cfg.max_crashes;
  os << ",\"mutation\":";
  write_json_string(os, to_string(cfg.mutation));
  // Written only when non-default, so pre-lock-table schedule files (and
  // their byte-for-byte goldens) round-trip unchanged.
  if (cfg.num_locks != 1) os << ",\"num_locks\":" << cfg.num_locks;
}

bool read_config_fields(const std::string& text, WorldConfig& cfg,
                        std::string* error) {
  const auto fail = [&](const char* what) {
    if (error) *error = what;
    return false;
  };
  std::string s;
  long num = 0;
  if (!json_field_str(text, "algo", s)) return fail("missing algo");
  cfg.algo = mutex::algo_from_string(s);
  if (!json_field_num(text, "n", num)) return fail("missing n");
  cfg.n = static_cast<int>(num);
  if (!json_field_str(text, "quorum", cfg.quorum))
    return fail("missing quorum");
  if (!json_field_num(text, "cs_per_site", num))
    return fail("missing cs_per_site");
  cfg.cs_per_site = static_cast<int>(num);
  cfg.fault_tolerant =
      text.find("\"fault_tolerant\":true") != std::string::npos;
  cfg.crash_sites.clear();
  if (json_field_str(text, "crash_sites", s)) {
    std::istringstream sites(s);
    SiteId site = kNoSite;
    while (sites >> site) cfg.crash_sites.push_back(site);
  }
  cfg.max_crashes = 0;
  if (json_field_num(text, "max_crashes", num))
    cfg.max_crashes = static_cast<int>(num);
  cfg.mutation = Mutation::kNone;
  if (json_field_str(text, "mutation", s))
    cfg.mutation = mutation_from_string(s);
  cfg.num_locks = 1;
  if (json_field_num(text, "num_locks", num))
    cfg.num_locks = static_cast<LockId>(num);
  return true;
}

void write_schedule(std::ostream& os, const WorldConfig& cfg,
                    const std::vector<Action>& actions,
                    const std::vector<std::string>& reports) {
  os << "{\"dqme_schedule\":1,";
  write_config_fields(os, cfg);
  os << ",\n\"actions\":";
  write_json_string(os, encode_actions(actions));
  os << ",\n\"reports\":[";
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) os << ",\n  ";
    write_json_string(os, reports[i]);
  }
  os << "]}\n";
}

bool read_schedule(std::istream& is, WorldConfig& cfg,
                   std::vector<Action>& actions, std::string* error) {
  const auto fail = [&](const char* what) {
    if (error) *error = what;
    return false;
  };
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  long marker = 0;
  if (!json_field_num(text, "dqme_schedule", marker) || marker != 1)
    return fail("not a dqme_schedule file");
  if (!read_config_fields(text, cfg, error)) return false;
  std::string s;
  if (!json_field_str(text, "actions", s)) return fail("missing actions");
  if (!decode_actions(s, actions)) return fail("malformed actions");
  return true;
}

}  // namespace dqme::verify
