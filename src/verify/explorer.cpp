#include "verify/explorer.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dqme::verify {

std::unique_ptr<World> replay_schedule(const WorldConfig& cfg,
                                       const std::vector<Action>& actions,
                                       bool capture) {
  auto world = std::make_unique<World>(cfg, capture);
  for (const Action& a : actions) {
    if (world->violations() > 0) break;  // the explorer stopped here too
    world->apply(a);
  }
  if (world->violations() == 0 && world->quiescent()) world->seal();
  return world;
}

std::string violation_category(const std::vector<std::string>& reports) {
  if (reports.empty()) return {};
  const std::string& first = reports.front();
  return first.substr(0, first.find(':'));
}

void minimize_violation(const WorldConfig& cfg, Violation& v,
                        ExploreResult& counters) {
  // Greedy shrink: drop any action whose removal still replays to the
  // same violation category. Inapplicable leftovers no-op on replay, so
  // every intermediate candidate stays well-defined.
  const std::string category = violation_category(v.reports);
  size_t i = 0;
  while (i < v.schedule.size()) {
    std::vector<Action> candidate = v.schedule;
    candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
    auto world = replay_schedule(cfg, candidate);
    ++counters.replays;
    counters.replay_steps += candidate.size();
    if (world->violations() > 0 &&
        violation_category(world->reports()) == category) {
      v.schedule = std::move(candidate);
      v.reports = world->reports();
    } else {
      ++i;
    }
  }
}

void merge_counters(ExploreResult& into, const ExploreResult& from) {
  into.schedules += from.schedules;
  into.truncated += from.truncated;
  into.nodes += from.nodes;
  into.replays += from.replays;
  into.replay_steps += from.replay_steps;
  into.sleep_skips += from.sleep_skips;
  into.budget_exhausted = into.budget_exhausted || from.budget_exhausted;
}

Explorer::Explorer(ExplorerConfig cfg) : cfg_(std::move(cfg)) {}

void Explorer::seed(Task task) {
  DQME_CHECK_MSG(!ran_ && stack_.empty(), "seed() on a used Explorer");
  prefix_ = std::move(task.prefix);
  base_path_ = std::move(task.path);
  seed_depth_ = prefix_.size();
  stack_.push_back(std::move(task.frame));
  if (stack_.back().sealed.size() != stack_.back().actions.size())
    stack_.back().sealed.assign(stack_.back().actions.size(), 0);
  seeded_ = true;
}

void Explorer::rebuild_world(ExploreResult& result) {
  world_ = std::make_unique<World>(cfg_.world);
  for (const Action& a : prefix_) world_->apply(a);
  world_matches_ = true;
  ++result.replays;
  result.replay_steps += prefix_.size();
}

bool Explorer::over_budget(const ExploreResult& result) const {
  // Under a SharedControl the budgets are global across all workers.
  const uint64_t schedules =
      cfg_.shared ? cfg_.shared->schedules.load(std::memory_order_relaxed)
                  : result.schedules;
  const uint64_t nodes =
      cfg_.shared ? cfg_.shared->nodes.load(std::memory_order_relaxed)
                  : result.nodes;
  if (cfg_.max_schedules > 0 && schedules >= cfg_.max_schedules) return true;
  return cfg_.max_nodes > 0 && nodes >= cfg_.max_nodes;
}

std::vector<uint32_t> Explorer::current_path() const {
  std::vector<uint32_t> path = base_path_;
  path.reserve(base_path_.size() + stack_.size());
  for (const Frame& f : stack_) {
    DQME_CHECK(f.next > 0);
    path.push_back(static_cast<uint32_t>(f.next - 1));
  }
  return path;
}

bool Explorer::try_donate() {
  // Claim one pending request before scanning, so concurrent donors do not
  // flood the queue for a single idle worker.
  if (cfg_.shared->spill_requests.fetch_sub(1, std::memory_order_acq_rel) <=
      0) {
    cfg_.shared->spill_requests.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Donate the shallowest open ancestor frame: the biggest subtrees sit at
  // the top of the stack, and the leaf is the donor's own in-flight work.
  for (size_t f = 0; f + 1 < stack_.size(); ++f) {
    Frame& frame = stack_[f];
    bool has_work = false;
    for (size_t j = frame.next; j < frame.actions.size(); ++j)
      if (!frame.sleep[j]) {
        has_work = true;
        break;
      }
    if (!has_work) continue;
    Task task;
    task.prefix.assign(prefix_.begin(),
                       prefix_.begin() +
                           static_cast<ptrdiff_t>(seed_depth_ + f));
    task.path = base_path_;
    for (size_t i = 0; i < f; ++i)
      task.path.push_back(static_cast<uint32_t>(stack_[i].next - 1));
    task.frame = frame;                  // remaining siblings move away
    frame.next = frame.actions.size();   // ... and are consumed locally
    cfg_.spill_sink(std::move(task));
    return true;
  }
  cfg_.shared->spill_requests.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Explorer::record_violation(std::vector<Action> schedule,
                                std::vector<std::string> reports,
                                std::vector<uint32_t> path,
                                ExploreResult& result) {
  Violation v{std::move(schedule), std::move(reports), std::move(path)};
  if (cfg_.minimize) minimize_violation(cfg_.world, v, result);
  result.violations.push_back(std::move(v));
}

ExploreResult Explorer::run() {
  DQME_CHECK_MSG(!ran_, "Explorer::run() is single-shot");
  ran_ = true;
  ExploreResult result = std::move(carried_);
  carried_ = {};

  if (stack_.empty()) {  // fresh start (vs. a loaded frontier / seed)
    DQME_CHECK(prefix_.empty());
    rebuild_world(result);
    std::vector<Action> actions;
    world_->enabled(actions);
    if (world_->quiescent()) {  // degenerate: nothing ever happens
      world_->seal();
      ++result.schedules;
      if (cfg_.shared)
        cfg_.shared->schedules.fetch_add(1, std::memory_order_relaxed);
      if (world_->violations() > 0)
        record_violation({}, world_->reports(), base_path_, result);
      result.complete = result.violations.empty();
      return result;
    }
    Frame root;
    root.sleep.assign(actions.size(), 0);
    root.sealed.assign(actions.size(), 0);
    root.actions = std::move(actions);
    stack_.push_back(std::move(root));
  }

  while (!stack_.empty()) {
    // Loop-top invariant: stack_[k] is the node reached by prefix_[0..
    // seed_depth_+k-1], so stack_.size() + seed_depth_ == prefix_.size()
    // + 1. Frontier save/load and task donation rely on it.
    if (cfg_.shared != nullptr) {
      if (cfg_.shared->stop.load(std::memory_order_relaxed) ||
          over_budget(result)) {
        cfg_.shared->stop.store(true, std::memory_order_relaxed);
        result.budget_exhausted = true;
        carried_ = result;  // counters for save_frontier
        return result;
      }
      if (cfg_.should_abort) {
        const uint64_t epoch =
            cfg_.shared->abort_epoch.load(std::memory_order_acquire);
        if (epoch != seen_epoch_) {
          seen_epoch_ = epoch;
          if (cfg_.should_abort()) {
            result.aborted = true;
            return result;
          }
        }
      }
      if (cfg_.spill_sink &&
          cfg_.shared->spill_requests.load(std::memory_order_relaxed) > 0)
        try_donate();
    } else if (over_budget(result)) {
      result.budget_exhausted = true;
      carried_ = result;  // counters for save_frontier
      return result;
    }
    Frame& frame = stack_.back();
    while (frame.next < frame.actions.size() && frame.sleep[frame.next]) {
      ++frame.next;
      ++result.sleep_skips;
    }
    if (frame.next >= frame.actions.size()) {  // all siblings done
      stack_.pop_back();
      if (prefix_.size() > seed_depth_) {
        prefix_.pop_back();
        world_matches_ = false;
      }
      continue;
    }
    const size_t chosen = frame.next++;
    const Action action = frame.actions[chosen];

    if (!world_matches_) rebuild_world(result);
    world_->apply(action);
    prefix_.push_back(action);
    ++result.nodes;
    if (cfg_.shared)
      cfg_.shared->nodes.fetch_add(1, std::memory_order_relaxed);

    if (world_->violations() > 0) {
      // Safety already broken: every extension of this prefix violates
      // too, so the path ends here (and gets minimized by replay).
      ++result.schedules;
      if (cfg_.shared)
        cfg_.shared->schedules.fetch_add(1, std::memory_order_relaxed);
      frame.sealed[chosen] = 1;
      record_violation(prefix_, world_->reports(), current_path(), result);
      world_matches_ = false;
      prefix_.pop_back();
      if (cfg_.stop_on_violation) return result;
      continue;
    }
    if (cfg_.max_depth > 0 &&
        prefix_.size() >= static_cast<size_t>(cfg_.max_depth)) {
      ++result.truncated;
      frame.sealed[chosen] = 1;
      world_matches_ = false;
      prefix_.pop_back();
      continue;
    }

    std::vector<Action> child_actions;
    world_->enabled(child_actions);
    if (world_->quiescent()) {  // complete schedule
      world_->seal();
      ++result.schedules;
      if (cfg_.shared)
        cfg_.shared->schedules.fetch_add(1, std::memory_order_relaxed);
      frame.sealed[chosen] = 1;
      world_matches_ = false;  // a sealed world takes no further actions
      if (world_->violations() > 0) {
        record_violation(prefix_, world_->reports(), current_path(),
                         result);
        if (cfg_.stop_on_violation) {
          prefix_.pop_back();
          return result;
        }
      }
      prefix_.pop_back();
      continue;
    }

    std::vector<char> child_sleep(child_actions.size(), 0);
    if (cfg_.por) {
      // Sleep sets: a sibling that is already explored (or itself asleep)
      // and independent of the chosen action would reach a state whose
      // exploration the sibling's own subtree already covers — put it to
      // sleep in the child. Under Dpor::kSource an explored sibling whose
      // application immediately ended the schedule (sealed/violating/
      // truncated) is exempt: its "subtree" had no extensions, so it must
      // stay awake here to keep every reordering represented (this is what
      // makes the refined crash relation sound against the crash-at-
      // quiescence enabledness gate).
      for (size_t j = 0; j < frame.actions.size(); ++j) {
        if (j == chosen) continue;
        const bool asleep = frame.sleep[j] != 0;
        const bool explored = j < chosen && !asleep;
        if (!asleep && !explored) continue;
        if (explored && cfg_.dpor == Dpor::kSource && frame.sealed[j])
          continue;
        if (!independent(frame.actions[j], action, cfg_.dpor)) continue;
        for (size_t k = 0; k < child_actions.size(); ++k)
          if (child_actions[k] == frame.actions[j]) child_sleep[k] = 1;
      }
    }
    Frame child;
    child.sleep = std::move(child_sleep);
    child.sealed.assign(child_actions.size(), 0);
    child.actions = std::move(child_actions);
    if (cfg_.spill_depth > 0 && prefix_.size() >= cfg_.spill_depth &&
        cfg_.spill_sink) {
      // Split phase: package this node as a Task instead of exploring it.
      cfg_.spill_sink(Task{prefix_, current_path(), std::move(child)});
      world_matches_ = false;
      prefix_.pop_back();
      continue;
    }
    stack_.push_back(std::move(child));
  }

  result.complete = result.truncated == 0;
  return result;
}

std::vector<Task> Explorer::suspended_tasks() const {
  std::vector<Task> tasks;
  std::vector<uint32_t> path = base_path_;
  for (size_t i = 0; i < stack_.size(); ++i) {
    const Frame& f = stack_[i];
    const bool leaf = i + 1 == stack_.size();
    // An ancestor keeps its unexplored siblings (its chosen child is the
    // deeper tasks' business); the leaf continues the in-flight descent.
    if (f.next < f.actions.size() || leaf) {
      Task t;
      t.prefix.assign(prefix_.begin(),
                      prefix_.begin() +
                          static_cast<ptrdiff_t>(seed_depth_ + i));
      t.path = path;
      t.frame = f;
      tasks.push_back(std::move(t));
    }
    if (!leaf) path.push_back(static_cast<uint32_t>(f.next - 1));
  }
  return tasks;
}

namespace {

std::string bits_to_string(const std::vector<char>& bits) {
  std::string out(bits.size(), '0');
  for (size_t j = 0; j < bits.size(); ++j)
    if (bits[j]) out[j] = '1';
  return out;
}

bool bits_from_string(const std::string& s, size_t expect,
                      std::vector<char>& out) {
  if (s.size() != expect) return false;
  out.assign(s.size(), 0);
  for (size_t j = 0; j < s.size(); ++j) {
    if (s[j] == '1')
      out[j] = 1;
    else if (s[j] != '0')
      return false;
  }
  return true;
}

}  // namespace

void Explorer::save_frontier(std::ostream& os) const {
  os << "{\"dqme_frontier\":1,";
  write_config_fields(os, cfg_.world);
  os << ",\"dpor\":\"" << to_string(cfg_.dpor) << "\"";
  os << ",\"schedules\":" << carried_.schedules
     << ",\"truncated\":" << carried_.truncated
     << ",\"nodes\":" << carried_.nodes
     << ",\"replays\":" << carried_.replays
     << ",\"replay_steps\":" << carried_.replay_steps
     << ",\"sleep_skips\":" << carried_.sleep_skips << "}\n";
  for (size_t i = 0; i < stack_.size(); ++i) {
    const Frame& f = stack_[i];
    os << "{\"frame\":" << i << ",\"actions\":\""
       << encode_actions(f.actions) << "\",\"sleep\":\""
       << bits_to_string(f.sleep) << "\",\"sealed\":\""
       << bits_to_string(f.sealed) << "\",\"next\":" << f.next << "}\n";
  }
}

bool Explorer::load_frontier(std::istream& is, std::string* error) {
  const auto fail = [&](const char* what) {
    if (error) *error = what;
    return false;
  };
  DQME_CHECK_MSG(!ran_, "load_frontier after run()");
  std::string line;
  if (!std::getline(is, line)) return fail("empty frontier file");
  long marker = 0;
  if (!json_field_num(line, "dqme_frontier", marker) || marker != 1)
    return fail("not a dqme_frontier file");
  if (!read_config_fields(line, cfg_.world, error)) return false;
  std::string dpor;
  if (json_field_str(line, "dpor", dpor)) cfg_.dpor = dpor_from_string(dpor);
  long num = 0;
  const auto counter = [&](const char* key, uint64_t& slot) {
    if (json_field_num(line, key, num)) slot = static_cast<uint64_t>(num);
  };
  carried_ = {};
  counter("schedules", carried_.schedules);
  counter("truncated", carried_.truncated);
  counter("nodes", carried_.nodes);
  counter("replays", carried_.replays);
  counter("replay_steps", carried_.replay_steps);
  counter("sleep_skips", carried_.sleep_skips);

  stack_.clear();
  prefix_.clear();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Frame frame;
    std::string actions;
    std::string bits;
    if (!json_field_str(line, "actions", actions) ||
        !decode_actions(actions, frame.actions))
      return fail("malformed frontier frame actions");
    if (!json_field_str(line, "sleep", bits) ||
        !bits_from_string(bits, frame.actions.size(), frame.sleep))
      return fail("malformed frontier frame sleep set");
    if (json_field_str(line, "sealed", bits)) {
      if (!bits_from_string(bits, frame.actions.size(), frame.sealed))
        return fail("malformed frontier frame sealed set");
    } else {
      frame.sealed.assign(frame.actions.size(), 0);  // pre-sealed files
    }
    if (!json_field_num(line, "next", num) || num < 0 ||
        static_cast<size_t>(num) > frame.actions.size())
      return fail("malformed frontier frame cursor");
    frame.next = static_cast<size_t>(num);
    stack_.push_back(std::move(frame));
  }
  if (stack_.empty()) return fail("frontier has no frames");
  // The prefix is implicit: each non-leaf frame's last-chosen action.
  for (size_t k = 0; k + 1 < stack_.size(); ++k) {
    if (stack_[k].next == 0) return fail("frontier frame never descended");
    prefix_.push_back(stack_[k].actions[stack_[k].next - 1]);
  }
  world_matches_ = false;
  return true;
}

}  // namespace dqme::verify
