#include "verify/explorer.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dqme::verify {

std::unique_ptr<World> replay_schedule(const WorldConfig& cfg,
                                       const std::vector<Action>& actions,
                                       bool capture) {
  auto world = std::make_unique<World>(cfg, capture);
  for (const Action& a : actions) {
    if (world->violations() > 0) break;  // the explorer stopped here too
    world->apply(a);
  }
  if (world->violations() == 0 && world->quiescent()) world->seal();
  return world;
}

std::string violation_category(const std::vector<std::string>& reports) {
  if (reports.empty()) return {};
  const std::string& first = reports.front();
  return first.substr(0, first.find(':'));
}

Explorer::Explorer(ExplorerConfig cfg) : cfg_(std::move(cfg)) {}

void Explorer::rebuild_world(ExploreResult& result) {
  world_ = std::make_unique<World>(cfg_.world);
  for (const Action& a : prefix_) world_->apply(a);
  world_matches_ = true;
  ++result.replays;
  result.replay_steps += prefix_.size();
}

bool Explorer::over_budget(const ExploreResult& result) const {
  if (cfg_.max_schedules > 0 && result.schedules >= cfg_.max_schedules)
    return true;
  return cfg_.max_nodes > 0 && result.nodes >= cfg_.max_nodes;
}

void Explorer::record_violation(std::vector<Action> schedule,
                                std::vector<std::string> reports,
                                ExploreResult& result) {
  if (cfg_.minimize) {
    // Greedy shrink: drop any action whose removal still replays to the
    // same violation category. Inapplicable leftovers no-op on replay, so
    // every intermediate candidate stays well-defined.
    const std::string category = violation_category(reports);
    size_t i = 0;
    while (i < schedule.size()) {
      std::vector<Action> candidate = schedule;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      auto world = replay_schedule(cfg_.world, candidate);
      ++result.replays;
      result.replay_steps += candidate.size();
      if (world->violations() > 0 &&
          violation_category(world->reports()) == category) {
        schedule = std::move(candidate);
        reports = world->reports();
      } else {
        ++i;
      }
    }
  }
  result.violations.push_back(
      Violation{std::move(schedule), std::move(reports)});
}

ExploreResult Explorer::run() {
  DQME_CHECK_MSG(!ran_, "Explorer::run() is single-shot");
  ran_ = true;
  ExploreResult result = std::move(carried_);
  carried_ = {};

  if (stack_.empty()) {  // fresh start (vs. a loaded frontier)
    DQME_CHECK(prefix_.empty());
    rebuild_world(result);
    std::vector<Action> actions;
    world_->enabled(actions);
    if (world_->quiescent()) {  // degenerate: nothing ever happens
      world_->seal();
      ++result.schedules;
      if (world_->violations() > 0)
        record_violation({}, world_->reports(), result);
      result.complete = result.violations.empty();
      return result;
    }
    stack_.push_back(
        Frame{std::move(actions), std::vector<char>{}, 0});
    stack_.back().sleep.assign(stack_.back().actions.size(), 0);
  }

  while (!stack_.empty()) {
    // Loop-top invariant: stack_[k] is the node reached by prefix_[0..k-1],
    // so stack_.size() == prefix_.size() + 1. Frontier save/load rely on it.
    if (over_budget(result)) {
      result.budget_exhausted = true;
      carried_ = result;  // counters for save_frontier
      return result;
    }
    Frame& frame = stack_.back();
    while (frame.next < frame.actions.size() && frame.sleep[frame.next]) {
      ++frame.next;
      ++result.sleep_skips;
    }
    if (frame.next >= frame.actions.size()) {  // all siblings done
      stack_.pop_back();
      if (!prefix_.empty()) {
        prefix_.pop_back();
        world_matches_ = false;
      }
      continue;
    }
    const size_t chosen = frame.next++;
    const Action action = frame.actions[chosen];

    if (!world_matches_) rebuild_world(result);
    world_->apply(action);
    prefix_.push_back(action);
    ++result.nodes;

    if (world_->violations() > 0) {
      // Safety already broken: every extension of this prefix violates
      // too, so the path ends here (and gets minimized by replay).
      ++result.schedules;
      record_violation(prefix_, world_->reports(), result);
      world_matches_ = false;
      prefix_.pop_back();
      if (cfg_.stop_on_violation) return result;
      continue;
    }
    if (cfg_.max_depth > 0 &&
        prefix_.size() >= static_cast<size_t>(cfg_.max_depth)) {
      ++result.truncated;
      world_matches_ = false;
      prefix_.pop_back();
      continue;
    }

    std::vector<Action> child_actions;
    world_->enabled(child_actions);
    if (world_->quiescent()) {  // complete schedule
      world_->seal();
      ++result.schedules;
      world_matches_ = false;  // a sealed world takes no further actions
      if (world_->violations() > 0) {
        record_violation(prefix_, world_->reports(), result);
        if (cfg_.stop_on_violation) {
          prefix_.pop_back();
          return result;
        }
      }
      prefix_.pop_back();
      continue;
    }

    std::vector<char> child_sleep(child_actions.size(), 0);
    if (cfg_.por) {
      // Sleep sets: a sibling that is already explored (or itself asleep)
      // and independent of the chosen action would reach a state whose
      // exploration the sibling's own subtree already covers — put it to
      // sleep in the child.
      for (size_t j = 0; j < frame.actions.size(); ++j) {
        if (j == chosen) continue;
        const bool asleep = frame.sleep[j] != 0;
        const bool explored = j < chosen && !asleep;
        if (!asleep && !explored) continue;
        if (!independent(frame.actions[j], action)) continue;
        for (size_t k = 0; k < child_actions.size(); ++k)
          if (child_actions[k] == frame.actions[j]) child_sleep[k] = 1;
      }
    }
    stack_.push_back(
        Frame{std::move(child_actions), std::move(child_sleep), 0});
  }

  result.complete = result.truncated == 0;
  return result;
}

void Explorer::save_frontier(std::ostream& os) const {
  os << "{\"dqme_frontier\":1,";
  write_config_fields(os, cfg_.world);
  os << ",\"schedules\":" << carried_.schedules
     << ",\"truncated\":" << carried_.truncated
     << ",\"nodes\":" << carried_.nodes
     << ",\"replays\":" << carried_.replays
     << ",\"replay_steps\":" << carried_.replay_steps
     << ",\"sleep_skips\":" << carried_.sleep_skips << "}\n";
  for (size_t i = 0; i < stack_.size(); ++i) {
    const Frame& f = stack_[i];
    std::string sleep(f.sleep.size(), '0');
    for (size_t j = 0; j < f.sleep.size(); ++j)
      if (f.sleep[j]) sleep[j] = '1';
    os << "{\"frame\":" << i << ",\"actions\":\""
       << encode_actions(f.actions) << "\",\"sleep\":\"" << sleep
       << "\",\"next\":" << f.next << "}\n";
  }
}

bool Explorer::load_frontier(std::istream& is, std::string* error) {
  const auto fail = [&](const char* what) {
    if (error) *error = what;
    return false;
  };
  DQME_CHECK_MSG(!ran_, "load_frontier after run()");
  std::string line;
  if (!std::getline(is, line)) return fail("empty frontier file");
  long marker = 0;
  if (!json_field_num(line, "dqme_frontier", marker) || marker != 1)
    return fail("not a dqme_frontier file");
  if (!read_config_fields(line, cfg_.world, error)) return false;
  long num = 0;
  const auto counter = [&](const char* key, uint64_t& slot) {
    if (json_field_num(line, key, num)) slot = static_cast<uint64_t>(num);
  };
  carried_ = {};
  counter("schedules", carried_.schedules);
  counter("truncated", carried_.truncated);
  counter("nodes", carried_.nodes);
  counter("replays", carried_.replays);
  counter("replay_steps", carried_.replay_steps);
  counter("sleep_skips", carried_.sleep_skips);

  stack_.clear();
  prefix_.clear();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Frame frame;
    std::string actions;
    std::string sleep;
    if (!json_field_str(line, "actions", actions) ||
        !decode_actions(actions, frame.actions))
      return fail("malformed frontier frame actions");
    if (!json_field_str(line, "sleep", sleep) ||
        sleep.size() != frame.actions.size())
      return fail("malformed frontier frame sleep set");
    frame.sleep.assign(sleep.size(), 0);
    for (size_t j = 0; j < sleep.size(); ++j)
      if (sleep[j] == '1') frame.sleep[j] = 1;
    if (!json_field_num(line, "next", num) || num < 0 ||
        static_cast<size_t>(num) > frame.actions.size())
      return fail("malformed frontier frame cursor");
    frame.next = static_cast<size_t>(num);
    stack_.push_back(std::move(frame));
  }
  if (stack_.empty()) return fail("frontier has no frames");
  // The prefix is implicit: each non-leaf frame's last-chosen action.
  for (size_t k = 0; k + 1 < stack_.size(); ++k) {
    if (stack_[k].next == 0) return fail("frontier frame never descended");
    prefix_.push_back(stack_[k].actions[stack_[k].next - 1]);
  }
  world_matches_ = false;
  return true;
}

}  // namespace dqme::verify
