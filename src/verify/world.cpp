#include "verify/world.h"

#include <algorithm>

#include "common/check.h"
#include "net/delay_model.h"
#include "quorum/factory.h"

namespace dqme::verify {

void World::SiteTap::on_message(const net::Message& m, LockId lock) {
  net::Message local = m;
  if (!world_.filter(local)) return;
  site_.on_message(local, lock);
}

bool World::filter(net::Message& m) {
  switch (cfg_.mutation) {
    case Mutation::kNone:
    case Mutation::kFifoInversion:  // seeded in apply(), not here
      return true;
    case Mutation::kDoubleGrant:
      // The first time an arbiter's direct grant lands anywhere, the same
      // arbiter "grants" a second, still-waiting requester too — a forged
      // reply carrying the victim's own request id, sent on the real wire.
      // It parks like any flight, so the explorer decides when it lands;
      // in every order where the first holder has not yet released, the
      // checker's permission ledger sees one arbiter with two live grants.
      if (!grant_rewritten_ && m.type == net::MsgType::kReply &&
          m.arbiter != kNoSite && m.src == m.arbiter && quorums_ != nullptr) {
        for (SiteId t = 0; t < cfg_.n; ++t) {
          if (t == m.dst || !net_.alive(t)) continue;
          mutex::MutexSite& victim = *sites_[static_cast<size_t>(t)];
          if (!victim.requesting() || victim.active_span() == kNoSpan)
            continue;
          const quorum::Quorum q = quorums_->quorum_for(t);
          if (std::find(q.begin(), q.end(), m.arbiter) == q.end()) continue;
          grant_rewritten_ = true;
          const ReqId req{span_seq(victim.active_span()),
                          span_site(victim.active_span())};
          net_.send(m.arbiter, t, net::make_reply(m.arbiter, req));
          break;
        }
      }
      return true;
    case Mutation::kLostTransfer:
      // Phase 1: the first transfer vanishes before its holder sees it, so
      // the proxy handoff never happens. Phase 2: that holder's next
      // release to the same arbiter vanishes too — otherwise the arbiter
      // would simply re-grant at release and the run self-heals. The
      // arbiter's lock is now stuck with a departed holder; whoever waits
      // on it starves, which seal() reports as a stalled request.
      if (!transfer_lost_ && m.type == net::MsgType::kTransfer) {
        transfer_lost_ = true;
        lost_arbiter_ = m.src;
        lost_holder_ = m.dst;
        return false;
      }
      if (transfer_lost_ && !release_lost_ &&
          m.type == net::MsgType::kRelease && m.src == lost_holder_ &&
          m.dst == lost_arbiter_) {
        release_lost_ = true;
        return false;
      }
      return true;
    case Mutation::kDeadlockOrdering:
      // Every inquire vanishes: the §4 deadlock-avoidance handshake
      // (inquire -> yield -> re-grant by priority) is severed, so the
      // crossed-grant orderings it exists to break — each arbiter locked
      // by a different requester, nobody completing a quorum — become a
      // reachable circular wait. The explorer's job is to find that
      // request-ordering shape; seal() then reports the stalled requests.
      return m.type != net::MsgType::kInquire;
  }
  return true;
}

World::World(const WorldConfig& cfg, bool capture)
    : cfg_(cfg),
      net_(sim_, cfg.n, std::make_unique<net::ConstantDelay>(1),
           /*seed=*/1) {
  DQME_CHECK(cfg.n >= 2);
  DQME_CHECK(cfg.cs_per_site >= 1);
  net_.set_controlled(true);

  mutex::AlgoOptions opts;
  opts.fault_tolerant = cfg.fault_tolerant;
  opts.num_locks = cfg.num_locks;
  if (mutex::algo_uses_quorum(cfg.algo))
    quorums_ = quorum::make_quorum_system(cfg.quorum, cfg.n);
  for (SiteId i = 0; i < cfg.n; ++i) {
    sites_.push_back(mutex::make_site(cfg.algo, i, net_, quorums_.get(), opts));
    taps_.push_back(std::make_unique<SiteTap>(*this, *sites_.back()));
    net_.attach(i, taps_.back().get());
  }

  // Recorders first, checker last: InvariantChecker::attach keeps whatever
  // span observer is already installed as its downstream, so the capture
  // recorders must be in place before the checker claims the slot.
  if (capture) {
    trace_rec_ = std::make_unique<net::TraceRecorder>(net_);
    span_rec_ = std::make_unique<obs::SpanRecorder>(net_);
    span_rec_->attach_all(sites_);
    flightrec_ = std::make_unique<obs::FlightRecorder>(4096);
  }
  obs::InvariantOptions iopts;
  iopts.liveness_bound = 0;  // quiescence-time liveness is seal()'s job
  iopts.quorum_arbitration = mutex::algo_uses_quorum(cfg.algo);
  checker_ = std::make_unique<obs::InvariantChecker>(net_, iopts);
  checker_->attach_all(sites_);
  if (flightrec_) {
    flightrec_->set_label("dqme_explore replay " +
                          std::string(mutex::to_string(cfg.algo)) + " n=" +
                          std::to_string(cfg.n));
    checker_->set_flight_recorder(flightrec_.get());
  }

  remaining_.assign(static_cast<size_t>(cfg.n), cfg.cs_per_site);
  aborted_.assign(static_cast<size_t>(cfg.n), 0);
  for (SiteId i = 0; i < cfg.n; ++i) {
    mutex::MutexSite& site = *sites_[static_cast<size_t>(i)];
    site.on_enter = [this](SiteId s, LockId) {
      --remaining_[static_cast<size_t>(s)];
    };
    site.on_abort = [this](SiteId s, LockId) {
      // §6: no quorum can be formed around the crash; the site gives up.
      remaining_[static_cast<size_t>(s)] = 0;
      aborted_[static_cast<size_t>(s)] = 1;
    };
  }
  // Saturation regime: every site wants the CS from t=0. (The explorer
  // varies delivery order, not issue times — the adversarial power the
  // paper's safety claims must survive is in the network, and a late
  // issue is indistinguishable from its request messages being delayed.)
  // The explorer's demand is lock 0 only (see WorldConfig::num_locks).
  for (SiteId i = 0; i < cfg.n; ++i) sites_[static_cast<size_t>(i)]
      ->request_cs(kLock0);
  sim_.run_until(step_);  // drain local self-deliveries of the issue burst
}

void World::issue_if_hungry(SiteId site) {
  const auto s = static_cast<size_t>(site);
  if (remaining_[s] > 0 && net_.alive(site) && sites_[s]->idle())
    sites_[s]->request_cs(kLock0);
}

bool World::apply(const Action& action) {
  DQME_CHECK_MSG(!sealed_, "apply() on a sealed world");
  ++step_;
  sim_.run_until(step_);
  bool applied = false;
  switch (action.kind) {
    case ActionKind::kDeliver: {
      if (action.a < 0 || action.a >= cfg_.n || action.b < 0 ||
          action.b >= cfg_.n)
        break;  // malformed (hand-edited) schedules must not abort replay
      if (cfg_.mutation == Mutation::kFifoInversion && !fifo_inverted_ &&
          net_.parked_count(action.a, action.b) >= 2 &&
          net_.parked_sent_at(action.a, action.b, 1) !=
              net_.parked_sent_at(action.a, action.b, 0)) {
        // The seeded inversion: the first time a channel holds two flights
        // staged at different instants, the younger one jumps the queue.
        fifo_inverted_ = true;
        applied = net_.deliver_parked(action.a, action.b, 1);
      } else {
        applied = net_.deliver_next(action.a, action.b);
      }
      break;
    }
    case ActionKind::kExit: {
      const auto s = static_cast<size_t>(action.a);
      if (action.a >= 0 && action.a < cfg_.n && sites_[s]->in_cs()) {
        sites_[s]->release_cs(kLock0);
        issue_if_hungry(action.a);
        applied = true;
      }
      break;
    }
    case ActionKind::kNotice: {
      const auto it = std::find(notices_.begin(), notices_.end(),
                                std::make_pair(action.a, action.b));
      if (it != notices_.end() && net_.alive(action.b)) {
        notices_.erase(it);
        // Mirrors core::FailureDetector: notices are injected straight
        // into the receiver, not sent on the wire.
        taps_[static_cast<size_t>(action.b)]->on_message(
            net::make_failure_notice(action.a), kLock0);
        applied = true;
      }
      break;
    }
    case ActionKind::kCrash: {
      if (action.a >= 0 && action.a < cfg_.n && net_.alive(action.a)) {
        ++crashes_done_;
        net_.crash(action.a);  // drops parked flights, tells the checker
        remaining_[static_cast<size_t>(action.a)] = 0;
        // Pending notices to the dead site will never be delivered.
        std::erase_if(notices_, [&](const std::pair<SiteId, SiteId>& p) {
          return p.second == action.a;
        });
        for (SiteId r = 0; r < cfg_.n; ++r)
          if (r != action.a && net_.alive(r))
            notices_.emplace_back(action.a, r);
        applied = true;
      }
      break;
    }
  }
  sim_.run_until(step_);  // drain local self-deliveries the action caused
  return applied;
}

void World::enabled(std::vector<Action>& out) const {
  out.clear();
  std::vector<net::Network::Channel> chans;
  net_.parked_channels(chans);
  for (const auto& c : chans)
    out.push_back(Action{ActionKind::kDeliver, c.src, c.dst});
  for (SiteId i = 0; i < cfg_.n; ++i)
    if (net_.alive(i) && sites_[static_cast<size_t>(i)]->in_cs())
      out.push_back(Action{ActionKind::kExit, i, kNoSite});
  for (const auto& [victim, receiver] : notices_)
    out.push_back(Action{ActionKind::kNotice, victim, receiver});
  if (crashes_done_ < cfg_.max_crashes && !quiescent())
    for (SiteId v : cfg_.crash_sites)
      if (v >= 0 && v < cfg_.n && net_.alive(v))
        out.push_back(Action{ActionKind::kCrash, v, kNoSite});
}

bool World::quiescent() const {
  if (net_.parked_flights() > 0 || !notices_.empty()) return false;
  for (SiteId i = 0; i < cfg_.n; ++i)
    if (net_.alive(i) && sites_[static_cast<size_t>(i)]->in_cs())
      return false;
  return true;
}

void World::seal() {
  DQME_CHECK_MSG(!sealed_, "seal() called twice");
  sealed_ = true;
  checker_->finish(sim_.now());
  for (SiteId i = 0; i < cfg_.n; ++i) {
    const auto s = static_cast<size_t>(i);
    if (!net_.alive(i) || aborted_[s]) continue;  // crash/§6 write-offs
    if (sites_[s]->requesting()) {
      seal_reports_.push_back("stalled request at quiescence: site " +
                              std::to_string(i) +
                              " still waiting with nothing in flight");
    } else if (remaining_[s] > 0 && !sites_[s]->in_cs()) {
      seal_reports_.push_back("starved site at quiescence: site " +
                              std::to_string(i) + " idle with " +
                              std::to_string(remaining_[s]) +
                              " entries outstanding");
    }
  }
}

uint64_t World::violations() const {
  return checker_->violations() + seal_reports_.size();
}

std::vector<std::string> World::reports() const {
  std::vector<std::string> out = checker_->reports();
  out.insert(out.end(), seal_reports_.begin(), seal_reports_.end());
  return out;
}

}  // namespace dqme::verify
