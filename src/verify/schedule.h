// Schedule vocabulary of the model checker (src/verify).
//
// A schedule is a sequence of Actions, each one choice the explorer made at
// a choice point: deliver the head flight of one (src,dst) channel, let a
// site leave the CS, deliver one failure notice, or crash a site. Replaying
// the same action sequence on a fresh World reconstructs the exact same
// state — the simulator is deterministic and the controlled Network never
// samples its delay model — which is what makes the checker stateless and
// every counterexample a small replayable artifact.
//
// The text encoding ("d 0 2;x 1;c 2;n 2 0") and the one-object JSON file
// format are deliberately trivial: tools/dqme_sim re-reads them with the
// same line-based field scanner used elsewhere in tools/, no JSON library
// involved.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "mutex/factory.h"

namespace dqme::verify {

enum class ActionKind : uint8_t {
  kDeliver,  // deliver the head flight of channel (a -> b)
  kExit,     // site `a` leaves the CS (and reissues if it wants more)
  kNotice,   // deliver the failure notice about `a` to site `b`
  kCrash,    // site `a` fails silently
};

struct Action {
  ActionKind kind = ActionKind::kDeliver;
  SiteId a = kNoSite;
  SiteId b = kNoSite;

  friend bool operator==(const Action& x, const Action& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b;
  }
};

std::string to_string(const Action& a);

// Which partial-order reduction the explorer runs.
//
// kSleep is the original conservative relation: every action except kCrash
// touches exactly one site, and kCrash is dependent with *everything* —
// sound, but every crash choice point multiplies the whole remaining space.
//
// kSource refines the relation to the actual dependencies ("source sets",
// docs/VERIFICATION.md §source-set-DPOR): a crash of site v conflicts only
// with actions on v's locality — deliveries on a channel into or out of v
// (crash sweeps those parked flights), v's own CS exit, failure notices
// about v or addressed to v, and other crashes (they share the per-schedule
// crash budget). Everything else commutes with the crash, so the crash
// point slides freely across unrelated deliveries instead of forking the
// space at every depth. Deliveries/exits/notices keep the same-site
// relation: two actions running the same site's handler never commute.
enum class Dpor : uint8_t {
  kSleep,   // touched-site relation, crash dependent with all
  kSource,  // refined per-kind relation (crash only on its locality)
};

std::string_view to_string(Dpor d);
Dpor dpor_from_string(const std::string& name);

// The dependence relation the reduction is built on. Every action except
// kCrash affects exactly one site's protocol state: a delivery runs the
// destination's handler, an exit/notice runs its own site's. Two actions
// on different sites commute — neither can see the other's effect before a
// later (dependent) action links them — so schedules differing only in
// their order reach the same state. kCrash reshapes the enabled set of the
// victim's channels; under kSleep it is treated as dependent with
// everything, under kSource only with actions touching the victim.
// docs/VERIFICATION.md states the argument.
SiteId touched_site(const Action& a);
bool independent(const Action& x, const Action& y);  // kSleep relation
bool independent(const Action& x, const Action& y, Dpor mode);

// Seeded faults for the negative tests: each one breaks a different
// invariant, and the explorer must find a schedule exposing it.
enum class Mutation : uint8_t {
  kNone,
  kDoubleGrant,    // an arbiter wire-grants a second site without unlocking
  kLostTransfer,   // first transfer vanishes, then its holder's release too
  kFifoInversion,  // one delivery jumps its channel's queue
  // Naimi–Thiaré-style deadlock seeding: every inquire vanishes, so the
  // §4 deadlock-avoidance dance never runs. The explorer must then find
  // the crossed-grant request ordering (each arbiter locked by a different
  // requester, no site completing its quorum) that the inquire/yield
  // machinery exists to break — a circular wait, reported as stalled
  // requests at quiescence.
  kDeadlockOrdering,
};

std::string_view to_string(Mutation m);
Mutation mutation_from_string(const std::string& name);

// Everything needed to rebuild a World from scratch; serialized into every
// schedule file so a counterexample replays without the original command
// line.
struct WorldConfig {
  mutex::Algo algo = mutex::Algo::kCaoSinghal;
  int n = 3;
  std::string quorum = "grid";
  int cs_per_site = 2;
  bool fault_tolerant = false;
  std::vector<SiteId> crash_sites;  // candidate victims for kCrash branching
  int max_crashes = 0;              // crash actions allowed per schedule
  Mutation mutation = Mutation::kNone;
  // Lock-table size for the sites (mutex::AlgoOptions::num_locks). The
  // explorer only drives lock 0 — extra locks sit idle, which is exactly
  // what the lock-table isolation test asserts: schedules over lock 0 are
  // unchanged by the table's existence.
  LockId num_locks = 1;
};

// "d 0 2;x 1" <-> actions. decode returns false on malformed input.
std::string encode_actions(const std::vector<Action>& actions);
bool decode_actions(const std::string& text, std::vector<Action>& out);

// Field scanners over this module's own writer output (same line-based
// discipline as tools/dqme_check): keys unique, values escape-free.
bool json_field_str(const std::string& text, const std::string& key,
                    std::string& out);
bool json_field_num(const std::string& text, const std::string& key,
                    long& out);

// The WorldConfig <-> JSON fragment used by both the schedule files and
// the explorer's frontier files: `"algo":"cao-singhal","n":3,...` (compact,
// no surrounding braces).
void write_config_fields(std::ostream& os, const WorldConfig& cfg);
bool read_config_fields(const std::string& text, WorldConfig& cfg,
                        std::string* error);

// One-object JSON: {"dqme_schedule":1, config fields, "actions":"...",
// "reports":[...]}. Reports are carried for humans; replay recomputes them.
void write_schedule(std::ostream& os, const WorldConfig& cfg,
                    const std::vector<Action>& actions,
                    const std::vector<std::string>& reports);
bool read_schedule(std::istream& is, WorldConfig& cfg,
                   std::vector<Action>& actions, std::string* error);

}  // namespace dqme::verify
