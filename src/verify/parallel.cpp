#include "verify/parallel.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/check.h"

namespace dqme::verify {

namespace {

// DFS preorder over index paths: lexicographic, with a proper prefix
// ordering before its extensions (the parent before its subtree).
bool path_less(const std::vector<uint32_t>& a,
               const std::vector<uint32_t>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                      b.end());
}

std::string path_to_string(const std::vector<uint32_t>& path) {
  std::string out;
  for (uint32_t p : path) {
    if (!out.empty()) out += ' ';
    out += std::to_string(p);
  }
  return out;
}

bool path_from_string(const std::string& s, std::vector<uint32_t>& out) {
  out.clear();
  std::istringstream is(s);
  long v = 0;
  while (is >> v) {
    if (v < 0) return false;
    out.push_back(static_cast<uint32_t>(v));
  }
  return is.eof();
}

std::string bits_to_string(const std::vector<char>& bits) {
  std::string out(bits.size(), '0');
  for (size_t j = 0; j < bits.size(); ++j)
    if (bits[j]) out[j] = '1';
  return out;
}

bool bits_from_string(const std::string& s, size_t expect,
                      std::vector<char>& out) {
  if (s.size() != expect) return false;
  out.assign(s.size(), 0);
  for (size_t j = 0; j < s.size(); ++j) {
    if (s[j] == '1')
      out[j] = 1;
    else if (s[j] != '0')
      return false;
  }
  return true;
}

// Everything the worker threads share. Queue discipline: FIFO in split
// order (DFS preorder), so the early intervals — the ones a violation can
// never discard — start first.
struct Pool {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Task> queue;
  size_t active = 0;  // workers currently running a task
  bool stop_dequeue = false;

  SharedControl ctl;

  // Per finished task: where it was rooted and what it counted. The merge
  // happens after join, ordered by root.
  struct Done {
    std::vector<uint32_t> root;
    ExploreResult result;
  };
  std::vector<Done> done;
  std::vector<Task> suspended;  // re-packaged stacks of budgeted tasks

  // Best (DFS-first) violation so far; guarded by mu.
  bool have_best = false;
  std::vector<uint32_t> best;

  std::exception_ptr error;  // first worker exception, rethrown by run()
};

void note_violations(Pool& pool, const ExploreResult& result,
                     bool stop_on_violation) {
  if (result.violations.empty() || !stop_on_violation) return;
  std::lock_guard<std::mutex> lock(pool.mu);
  for (const Violation& v : result.violations) {
    if (!pool.have_best || path_less(v.path, pool.best)) {
      pool.have_best = true;
      pool.best = v.path;
      pool.ctl.abort_epoch.fetch_add(1, std::memory_order_release);
    }
  }
}

void worker_main(Pool& pool, const ExplorerConfig& base) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(pool.mu);
      bool requested = false;
      while (pool.queue.empty()) {
        if (pool.stop_dequeue || pool.active == 0) {
          if (requested)
            pool.ctl.spill_requests.fetch_sub(1,
                                              std::memory_order_relaxed);
          pool.cv.notify_all();  // fellow waiters re-check and exit too
          return;
        }
        if (!requested) {
          requested = true;
          pool.ctl.spill_requests.fetch_add(1, std::memory_order_relaxed);
        }
        // Timed wait: donors have no handle on the cv while exploring, so
        // poll; 5ms is invisible next to any real subtree.
        pool.cv.wait_for(lock, std::chrono::milliseconds(5));
      }
      if (requested) {
        // Best effort: withdraw the request if no donor claimed it. A
        // donor racing us just queues one extra task — harmless.
        int cur = pool.ctl.spill_requests.load(std::memory_order_relaxed);
        while (cur > 0 && !pool.ctl.spill_requests.compare_exchange_weak(
                              cur, cur - 1, std::memory_order_relaxed)) {
        }
      }
      if (pool.stop_dequeue) return;
      task = std::move(pool.queue.front());
      pool.queue.pop_front();
      ++pool.active;
    }

    try {
      ExplorerConfig cfg = base;
      cfg.minimize = false;  // the driver minimizes the chosen one
      cfg.shared = &pool.ctl;
      cfg.spill_depth = 0;
      cfg.spill_sink = [&pool](Task&& donated) {
        std::lock_guard<std::mutex> lock(pool.mu);
        pool.queue.push_back(std::move(donated));
        pool.cv.notify_one();
      };
      const std::vector<uint32_t> root = task.path;
      if (cfg.stop_on_violation) {
        cfg.should_abort = [&pool, root]() {
          std::lock_guard<std::mutex> lock(pool.mu);
          return pool.have_best && path_less(pool.best, root);
        };
      }
      Explorer explorer(cfg);
      explorer.seed(std::move(task));
      ExploreResult result = explorer.run();
      note_violations(pool, result, cfg.stop_on_violation);
      {
        std::lock_guard<std::mutex> lock(pool.mu);
        if (result.budget_exhausted) {
          auto rest = explorer.suspended_tasks();
          pool.suspended.insert(pool.suspended.end(),
                                std::make_move_iterator(rest.begin()),
                                std::make_move_iterator(rest.end()));
          pool.stop_dequeue = true;
        }
        pool.done.push_back({root, std::move(result)});
        --pool.active;
        pool.cv.notify_all();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(pool.mu);
      if (!pool.error) pool.error = std::current_exception();
      pool.stop_dequeue = true;
      pool.ctl.stop.store(true, std::memory_order_relaxed);
      --pool.active;
      pool.cv.notify_all();
      return;
    }
  }
}

}  // namespace

ParallelExplorer::ParallelExplorer(ParallelConfig cfg)
    : cfg_(std::move(cfg)) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.split_depth == 0) cfg_.split_depth = kDefaultSplitDepth;
}

ParallelResult ParallelExplorer::run() {
  DQME_CHECK_MSG(!ran_, "ParallelExplorer::run() is single-shot");
  ran_ = true;
  ParallelResult out;
  Pool pool;
  pool.ctl.schedules.store(carried_.schedules, std::memory_order_relaxed);
  pool.ctl.nodes.store(carried_.nodes, std::memory_order_relaxed);

  ExploreResult split_result = {};
  if (!loaded_) {
    // Split phase: sequential and worker-count independent, so the task
    // partition (and with it every merged structural counter) is too. Its
    // spilled nodes seed the queue in DFS preorder.
    ExplorerConfig split_cfg = cfg_.base;
    split_cfg.minimize = false;
    split_cfg.shared = &pool.ctl;
    split_cfg.spill_depth = cfg_.split_depth;
    split_cfg.spill_sink = [&pool](Task&& t) {
      pool.queue.push_back(std::move(t));
    };
    Explorer split(split_cfg);
    split_result = split.run();
    note_violations(pool, split_result, cfg_.base.stop_on_violation);
    if (split_result.budget_exhausted) {
      for (Task& t : split.suspended_tasks())
        pool.suspended.push_back(std::move(t));
      pool.stop_dequeue = true;
    }
  } else {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Task& a, const Task& b) {
                       return path_less(a.path, b.path);
                     });
    for (Task& t : pending_) pool.queue.push_back(std::move(t));
    pending_.clear();
  }
  const uint64_t initial_tasks = pool.queue.size();

  if (!pool.queue.empty() && !pool.stop_dequeue) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(cfg_.workers));
    for (int w = 0; w < cfg_.workers; ++w)
      threads.emplace_back(worker_main, std::ref(pool),
                           std::cref(cfg_.base));
    for (std::thread& t : threads) t.join();
  }
  if (pool.error) std::rethrow_exception(pool.error);

  // ---- Deterministic merge ----
  ExploreResult merged = {};
  merge_counters(merged, carried_);
  merge_counters(merged, split_result);

  std::stable_sort(pool.done.begin(), pool.done.end(),
                   [](const Pool::Done& a, const Pool::Done& b) {
                     return path_less(a.root, b.root);
                   });
  out.tasks_run = pool.done.size();
  out.tasks_donated =
      pool.done.size() + pool.queue.size() > initial_tasks
          ? pool.done.size() + pool.queue.size() - initial_tasks
          : 0;

  std::vector<Violation> violations = std::move(split_result.violations);
  for (Pool::Done& d : pool.done)
    for (Violation& v : d.result.violations)
      violations.push_back(std::move(v));
  std::stable_sort(violations.begin(), violations.end(),
                   [](const Violation& a, const Violation& b) {
                     return path_less(a.path, b.path);
                   });

  if (cfg_.base.stop_on_violation && !violations.empty()) {
    // Counters: split phase + every task rooted at-or-before the chosen
    // violation; the violating task's own interval contains it, so
    // "at-or-before" keeps its stopped-short partial. Intervals after it
    // are the work single-threaded DFS would never have started.
    const std::vector<uint32_t>& best = violations.front().path;
    for (const Pool::Done& d : pool.done) {
      if (path_less(best, d.root)) {
        ++out.tasks_discarded;
        continue;
      }
      merge_counters(merged, d.result);
    }
    Violation chosen = std::move(violations.front());
    if (cfg_.base.minimize)
      minimize_violation(cfg_.base.world, chosen, merged);
    merged.violations.push_back(std::move(chosen));
    merged.complete = false;
  } else {
    for (const Pool::Done& d : pool.done) merge_counters(merged, d.result);
    for (Violation& v : violations) {
      if (cfg_.base.minimize)
        minimize_violation(cfg_.base.world, v, merged);
      merged.violations.push_back(std::move(v));
    }
    merged.complete = !merged.budget_exhausted && merged.truncated == 0;
  }

  // Remaining work for save_frontier: tasks nobody started plus the
  // suspended stacks, in DFS order.
  leftover_ = std::move(pool.suspended);
  for (Task& t : pool.queue) leftover_.push_back(std::move(t));
  std::stable_sort(leftover_.begin(), leftover_.end(),
                   [](const Task& a, const Task& b) {
                     return path_less(a.path, b.path);
                   });
  carried_ = {};
  carried_.schedules = merged.schedules;
  carried_.truncated = merged.truncated;
  carried_.nodes = merged.nodes;
  carried_.replays = merged.replays;
  carried_.replay_steps = merged.replay_steps;
  carried_.sleep_skips = merged.sleep_skips;
  out.merged = std::move(merged);
  return out;
}

void ParallelExplorer::save_frontier(std::ostream& os) const {
  os << "{\"dqme_frontier\":2,";
  write_config_fields(os, cfg_.base.world);
  os << ",\"dpor\":\"" << to_string(cfg_.base.dpor) << "\"";
  os << ",\"schedules\":" << carried_.schedules
     << ",\"truncated\":" << carried_.truncated
     << ",\"nodes\":" << carried_.nodes
     << ",\"replays\":" << carried_.replays
     << ",\"replay_steps\":" << carried_.replay_steps
     << ",\"sleep_skips\":" << carried_.sleep_skips
     << ",\"tasks\":" << leftover_.size() << "}\n";
  for (size_t i = 0; i < leftover_.size(); ++i) {
    const Task& t = leftover_[i];
    os << "{\"task\":" << i << ",\"prefix\":\"" << encode_actions(t.prefix)
       << "\",\"path\":\"" << path_to_string(t.path) << "\",\"actions\":\""
       << encode_actions(t.frame.actions) << "\",\"sleep\":\""
       << bits_to_string(t.frame.sleep) << "\",\"sealed\":\""
       << bits_to_string(t.frame.sealed) << "\",\"next\":" << t.frame.next
       << "}\n";
  }
}

bool ParallelExplorer::load_frontier(std::istream& is, std::string* error) {
  const auto fail = [&](const char* what) {
    if (error) *error = what;
    return false;
  };
  DQME_CHECK_MSG(!ran_, "load_frontier after run()");
  std::string header;
  if (!std::getline(is, header)) return fail("empty frontier file");
  long marker = 0;
  if (!json_field_num(header, "dqme_frontier", marker))
    return fail("not a dqme_frontier file");
  long num = 0;
  const auto counter = [&](const char* key, uint64_t& slot) {
    if (json_field_num(header, key, num)) slot = static_cast<uint64_t>(num);
  };

  if (marker == 1) {
    // Sequential v1 single-stack format: let the Explorer parse it, then
    // re-package the stack as tasks — the same partition a suspension
    // would have produced.
    std::stringstream whole;
    whole << header << "\n" << is.rdbuf();
    Explorer probe{ExplorerConfig{cfg_.base}};
    if (!probe.load_frontier(whole, error)) return false;
    cfg_.base.world = probe.config().world;
    cfg_.base.dpor = probe.config().dpor;
    pending_ = probe.suspended_tasks();
    if (pending_.empty()) return fail("frontier has no frames");
  } else if (marker == 2) {
    if (!read_config_fields(header, cfg_.base.world, error)) return false;
    std::string s;
    if (json_field_str(header, "dpor", s))
      cfg_.base.dpor = dpor_from_string(s);
    pending_.clear();
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      Task t;
      std::string field;
      if (!json_field_str(line, "prefix", field) ||
          !decode_actions(field, t.prefix))
        return fail("malformed frontier task prefix");
      if (!json_field_str(line, "path", field) ||
          !path_from_string(field, t.path))
        return fail("malformed frontier task path");
      if (!json_field_str(line, "actions", field) ||
          !decode_actions(field, t.frame.actions))
        return fail("malformed frontier task actions");
      if (!json_field_str(line, "sleep", field) ||
          !bits_from_string(field, t.frame.actions.size(), t.frame.sleep))
        return fail("malformed frontier task sleep set");
      if (json_field_str(line, "sealed", field)) {
        if (!bits_from_string(field, t.frame.actions.size(),
                              t.frame.sealed))
          return fail("malformed frontier task sealed set");
      } else {
        t.frame.sealed.assign(t.frame.actions.size(), 0);
      }
      if (!json_field_num(line, "next", num) || num < 0 ||
          static_cast<size_t>(num) > t.frame.actions.size())
        return fail("malformed frontier task cursor");
      t.frame.next = static_cast<size_t>(num);
      pending_.push_back(std::move(t));
    }
    if (pending_.empty()) return fail("frontier has no tasks");
  } else {
    return fail("unknown dqme_frontier version");
  }

  carried_ = {};
  counter("schedules", carried_.schedules);
  counter("truncated", carried_.truncated);
  counter("nodes", carried_.nodes);
  counter("replays", carried_.replays);
  counter("replay_steps", carried_.replay_steps);
  counter("sleep_skips", carried_.sleep_skips);
  loaded_ = true;
  return true;
}

}  // namespace dqme::verify
