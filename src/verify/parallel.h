// Work-stealing parallel schedule exploration (the driver over explorer.h).
//
// The reduced schedule space is a tree; a Task (explorer.h) names one
// subtree by its action prefix and DFS index path. ParallelExplorer covers
// the tree in three moves:
//
//   1. Split: one sequential Explorer runs with spill_depth set, handing
//      every node at that depth to the task queue instead of exploring it.
//      The split is deterministic and identical for every worker count —
//      that is what makes the merged counters worker-count invariant.
//   2. Workers: N threads each own a replay World (their private seeded
//      Explorer) and drain the queue. An idle worker posts a request on
//      SharedControl::spill_requests; a running Explorer answers by
//      donating the shallowest open frame of its stack as a fresh Task
//      ("work stealing" with donor cooperation — no locked deques, the
//      stacks stay thread-private).
//   3. Merge: tasks partition the tree into disjoint DFS intervals, so the
//      structural counters (schedules, nodes, truncated, sleep_skips) are
//      plain sums, identical no matter how the intervals were assigned or
//      donated. replays/replay_steps are execution cost, not structure —
//      they vary with the partition and are reported but never compared.
//
// Violation determinism under stop_on_violation: every violation carries
// its DFS index path; the merged "first" violation is the lexicographic
// minimum (== what single-threaded DFS would hit first). A task aborts
// only when its root path already orders after the current best — so every
// interval before the final best is fully explored, which is exactly why
// the minimum is stable. Merged counters include the split phase, every
// task rooted at-or-before the best violation (the violating task
// contributes its stopped-short partial), and nothing after it.
// Minimization runs once, on the chosen violation, after the merge.
//
// Budgets suspend the whole fleet: the first Explorer over budget sets
// SharedControl::stop, everyone parks at the next loop top, and the
// remaining work — queued tasks plus each suspended stack re-packaged by
// Explorer::suspended_tasks() — serializes as a multi-task frontier file
// (format v2). A v2 frontier saved at one worker count resumes at any
// other; v1 single-stack files load too (they convert to tasks).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "verify/explorer.h"

namespace dqme::verify {

struct ParallelConfig {
  // Budgets, DPOR mode, world, stop/minimize policy. The parallel-driver
  // hooks (shared, spill_*, should_abort) are owned by the driver and
  // overwritten per task.
  ExplorerConfig base;
  int workers = 1;
  // Absolute prefix depth of the split phase: every node the split
  // Explorer reaches at this depth becomes an initial Task. Must not
  // depend on `workers` (counter determinism). 0 picks the default.
  size_t split_depth = 0;
};

constexpr size_t kDefaultSplitDepth = 2;

struct ParallelResult {
  ExploreResult merged;
  uint64_t tasks_run = 0;      // initial split tasks + donated tasks
  uint64_t tasks_donated = 0;  // of which arrived by work stealing
  uint64_t tasks_discarded = 0;  // ordered after the best violation
};

class ParallelExplorer {
 public:
  explicit ParallelExplorer(ParallelConfig cfg);

  // Covers the space (or resumes a loaded frontier). Single-shot.
  ParallelResult run();

  // Multi-task frontier (v2). save is only meaningful after a run that
  // ended budget_exhausted; load must precede run() and also accepts the
  // sequential explorer's v1 single-stack format.
  void save_frontier(std::ostream& os) const;
  bool load_frontier(std::istream& is, std::string* error);

  const ParallelConfig& config() const { return cfg_; }

 private:
  ParallelConfig cfg_;
  ExploreResult carried_;       // counters restored by load_frontier
  std::vector<Task> pending_;   // loaded frontier tasks (skip the split)
  std::vector<Task> leftover_;  // unexplored tasks after a suspension
  bool loaded_ = false;
  bool ran_ = false;
};

}  // namespace dqme::verify
