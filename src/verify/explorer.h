// Stateless schedule-space explorer (the model checker's DFS core).
//
// Depth-first search over every (reduced) sequence of Actions a World can
// take from its initial state: which parked flight to deliver next, when a
// site leaves the CS, when each failure notice lands, and — within a
// bounded crash budget — which site to crash at which choice point. Each
// complete schedule ends sealed: the full PR-3 invariant set plus the
// driver-level starvation check run against it.
//
// State reconstruction is replay-based ("stateless" model checking in the
// VeriSoft sense): the World is rebuilt from scratch and the prefix
// re-applied whenever the search backtracks, trading CPU for zero snapshot
// machinery — the simulator is deterministic, so replay is exact.
//
// Reduction: per-node source sets maintained with sleep-set bookkeeping
// over the dependence relation selected by ExplorerConfig::dpor
// (schedule.h). A child's sleep set carries every already-explored (or
// sleeping) sibling that is independent of the chosen action, so the
// permutations of pairwise-commuting actions are explored once instead of
// factorially often. Dpor::kSource refines the relation (a crash conflicts
// only with its victim's locality) and adds the sealed-sibling guard: a
// sibling whose application immediately ended the schedule is never put to
// sleep, because the state it reached had no extensions to cover the
// reordered schedules with (the crash enabled-set is gated on liveness of
// the run — docs/VERIFICATION.md states the full argument). `por = false`
// turns reduction off for the naive-DFS comparison.
//
// Violating prefixes stop immediately (every extension violates too), are
// greedily minimized by replay, and come back as replayable schedules.
// Budgets (schedule/node caps) suspend the search with the DFS stack
// serialized — a frontier file — from which a later run resumes exactly.
//
// Parallel use (parallel.h): an Explorer can be seeded with a Task — a
// subtree root described by its action prefix, its DFS index path from the
// true root, and one open Frame — and then explores exactly that subtree.
// SharedControl carries the cross-worker budget/stop/donation channels; a
// running Explorer donates the shallowest open frame of its stack as a new
// Task when a sibling worker asks.
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "verify/world.h"

namespace dqme::verify {

// One node of the DFS: the enabled set in a fixed deterministic order plus
// the reduction's per-sibling bookkeeping.
struct Frame {
  std::vector<Action> actions;  // enabled set at this node, fixed order
  std::vector<char> sleep;      // sleep-set membership per action
  std::vector<char> sealed;     // explored sibling produced no child node
  size_t next = 0;              // next sibling index to consider
};

// A unit of parallel work: the subtree rooted at the node reached by
// `prefix`, whose siblings-to-explore are `frame`, at DFS position `path`
// (the sibling index chosen at each ancestor, root first). Paths order
// tasks and violations exactly as a single-threaded DFS would encounter
// them: lexicographic comparison of index paths == depth-first preorder.
struct Task {
  std::vector<Action> prefix;
  std::vector<uint32_t> path;
  Frame frame;
};

// Cross-worker state for parallel exploration. All counters are advisory
// (budget enforcement may overshoot by in-flight nodes); determinism of
// the merged structural counters comes from the tree partition, not from
// when workers observe these.
struct SharedControl {
  std::atomic<uint64_t> schedules{0};
  std::atomic<uint64_t> nodes{0};
  std::atomic<bool> stop{false};
  // Idle workers asking for work; a running Explorer that still has an
  // open frame donates it through ExplorerConfig::spill_sink.
  std::atomic<int> spill_requests{0};
  // Bumped whenever the best (lexicographically smallest) violation path
  // improves; workers re-evaluate their abort predicate when it changes.
  std::atomic<uint64_t> abort_epoch{0};
};

struct ExplorerConfig {
  WorldConfig world;
  int max_depth = 0;           // 0 = unbounded (finite anyway: see docs)
  uint64_t max_schedules = 0;  // 0 = unbounded
  uint64_t max_nodes = 0;      // 0 = unbounded
  bool por = true;             // source-set/sleep-set reduction on
  Dpor dpor = Dpor::kSleep;    // which dependence relation drives it
  bool stop_on_violation = true;
  bool minimize = true;        // shrink counterexamples by replay

  // Parallel-driver hooks; all unset for standalone use.
  SharedControl* shared = nullptr;
  // Hand every node at this absolute prefix length to spill_sink as a Task
  // instead of exploring it (the ParallelExplorer split phase). 0 = off.
  size_t spill_depth = 0;
  std::function<void(Task&&)> spill_sink;
  // Re-checked when shared->abort_epoch changes: true = discard this
  // subtree, a violation that precedes it in DFS order was found.
  std::function<bool()> should_abort;
};

struct Violation {
  std::vector<Action> schedule;       // minimal replayable counterexample
  std::vector<std::string> reports;   // what the checker/seal flagged
  std::vector<uint32_t> path;         // DFS index path (see Task::path)
};

struct ExploreResult {
  uint64_t schedules = 0;    // complete (sealed or violating) schedules
  uint64_t truncated = 0;    // paths cut by max_depth, not sealed
  uint64_t nodes = 0;        // actions applied while exploring (not replays)
  uint64_t replays = 0;      // world rebuilds
  uint64_t replay_steps = 0; // actions re-applied during rebuilds
  uint64_t sleep_skips = 0;  // branches pruned by the reduction
  bool budget_exhausted = false;
  bool complete = false;     // the whole (reduced) space was covered
  bool aborted = false;      // discarded by the parallel abort rule
  std::vector<Violation> violations;
};

// Folds the tree-structural and execution counters of `from` into `into`
// (sums; flags OR where that is the right merge). Violations are not
// merged here — the parallel driver orders those by path itself.
void merge_counters(ExploreResult& into, const ExploreResult& from);

// Replays a schedule on a fresh World: applies every action (inapplicable
// ones no-op), then seals if the run quiesced violation-free. The caller
// inspects violations()/reports() — and, with capture, exports a trace.
std::unique_ptr<World> replay_schedule(const WorldConfig& cfg,
                                       const std::vector<Action>& actions,
                                       bool capture = false);

// Category of a violation = its first report up to the first ':' — stable
// across replays of the same bug, which is what minimization preserves.
std::string violation_category(const std::vector<std::string>& reports);

// Greedy shrink by replay: drop any action whose removal still replays to
// the same violation category. Replay costs are added to `counters`.
void minimize_violation(const WorldConfig& cfg, Violation& v,
                        ExploreResult& counters);

class Explorer {
 public:
  explicit Explorer(ExplorerConfig cfg);

  // Start from a parallel Task instead of the World's initial state. Must
  // be called before run(); the search then covers exactly the subtree the
  // task describes and returns when it is exhausted.
  void seed(Task task);

  // Runs until the space is covered, a violation stops the search, or a
  // budget suspends it. Callable once per Explorer.
  ExploreResult run();

  // Remaining work after a budget/stop suspension, as a partition into
  // tasks: one per open frame of the suspended stack (the leaf continues
  // the in-flight descent; each ancestor keeps its unexplored siblings).
  std::vector<Task> suspended_tasks() const;

  // Serializes the suspended DFS stack (budget_exhausted results only);
  // load restores it — including the WorldConfig — so `run()` continues
  // where the budgeted run stopped. (Single-stack v1 format; the parallel
  // driver's multi-task frontier lives in parallel.h.)
  void save_frontier(std::ostream& os) const;
  bool load_frontier(std::istream& is, std::string* error);

  const ExplorerConfig& config() const { return cfg_; }

 private:
  void rebuild_world(ExploreResult& result);
  void record_violation(std::vector<Action> schedule,
                        std::vector<std::string> reports,
                        std::vector<uint32_t> path, ExploreResult& result);
  bool over_budget(const ExploreResult& result) const;
  std::vector<uint32_t> current_path() const;
  bool try_donate();

  ExplorerConfig cfg_;
  std::vector<Frame> stack_;
  std::vector<Action> prefix_;
  std::vector<uint32_t> base_path_;  // DFS path of the seeded task root
  size_t seed_depth_ = 0;            // prefix length of the seeded task
  std::unique_ptr<World> world_;
  bool world_matches_ = false;  // world_ state == replay of prefix_
  ExploreResult carried_;       // counters restored by load_frontier
  uint64_t seen_epoch_ = 0;     // last observed shared->abort_epoch
  bool ran_ = false;
  bool seeded_ = false;
};

}  // namespace dqme::verify
