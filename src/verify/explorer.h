// Stateless schedule-space explorer (the PR's tentpole).
//
// Depth-first search over every (reduced) sequence of Actions a World can
// take from its initial state: which parked flight to deliver next, when a
// site leaves the CS, when each failure notice lands, and — within a
// bounded crash budget — which site to crash at which choice point. Each
// complete schedule ends sealed: the full PR-3 invariant set plus the
// driver-level starvation check run against it.
//
// State reconstruction is replay-based ("stateless" model checking in the
// VeriSoft sense): the World is rebuilt from scratch and the prefix
// re-applied whenever the search backtracks, trading CPU for zero snapshot
// machinery — the simulator is deterministic, so replay is exact.
//
// Reduction: sleep sets over the commutativity relation in schedule.h (two
// actions touching different sites commute). A child's sleep set carries
// every already-explored (or sleeping) sibling that is independent of the
// chosen action, so the permutations of pairwise-commuting actions are
// explored once instead of factorially often. `por = false` turns this off
// for the naive-DFS comparison the acceptance gate requires.
//
// Violating prefixes stop immediately (every extension violates too), are
// greedily minimized by replay, and come back as replayable schedules.
// Budgets (schedule/node caps) suspend the search with the DFS stack
// serialized — a frontier file — from which a later run resumes exactly.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "verify/world.h"

namespace dqme::verify {

struct ExplorerConfig {
  WorldConfig world;
  int max_depth = 0;           // 0 = unbounded (finite anyway: see docs)
  uint64_t max_schedules = 0;  // 0 = unbounded
  uint64_t max_nodes = 0;      // 0 = unbounded
  bool por = true;             // sleep-set reduction on
  bool stop_on_violation = true;
  bool minimize = true;        // shrink counterexamples by replay
};

struct Violation {
  std::vector<Action> schedule;       // minimal replayable counterexample
  std::vector<std::string> reports;   // what the checker/seal flagged
};

struct ExploreResult {
  uint64_t schedules = 0;    // complete (sealed or violating) schedules
  uint64_t truncated = 0;    // paths cut by max_depth, not sealed
  uint64_t nodes = 0;        // actions applied while exploring (not replays)
  uint64_t replays = 0;      // world rebuilds
  uint64_t replay_steps = 0; // actions re-applied during rebuilds
  uint64_t sleep_skips = 0;  // branches pruned by the reduction
  bool budget_exhausted = false;
  bool complete = false;     // the whole (reduced) space was covered
  std::vector<Violation> violations;
};

// Replays a schedule on a fresh World: applies every action (inapplicable
// ones no-op), then seals if the run quiesced violation-free. The caller
// inspects violations()/reports() — and, with capture, exports a trace.
std::unique_ptr<World> replay_schedule(const WorldConfig& cfg,
                                       const std::vector<Action>& actions,
                                       bool capture = false);

// Category of a violation = its first report up to the first ':' — stable
// across replays of the same bug, which is what minimization preserves.
std::string violation_category(const std::vector<std::string>& reports);

class Explorer {
 public:
  explicit Explorer(ExplorerConfig cfg);

  // Runs until the space is covered, a violation stops the search, or a
  // budget suspends it. Callable once per Explorer.
  ExploreResult run();

  // Serializes the suspended DFS stack (budget_exhausted results only);
  // load restores it — including the WorldConfig — so `run()` continues
  // where the budgeted run stopped.
  void save_frontier(std::ostream& os) const;
  bool load_frontier(std::istream& is, std::string* error);

  const ExplorerConfig& config() const { return cfg_; }

 private:
  struct Frame {
    std::vector<Action> actions;  // enabled set at this node, fixed order
    std::vector<char> sleep;      // sleep-set membership per action
    size_t next = 0;              // next sibling index to consider
  };

  void rebuild_world(ExploreResult& result);
  void record_violation(std::vector<Action> schedule,
                        std::vector<std::string> reports,
                        ExploreResult& result);
  bool over_budget(const ExploreResult& result) const;

  ExplorerConfig cfg_;
  std::vector<Frame> stack_;
  std::vector<Action> prefix_;
  std::unique_ptr<World> world_;
  bool world_matches_ = false;  // world_ state == replay of prefix_
  ExploreResult carried_;       // counters restored by load_frontier
  bool ran_ = false;
};

}  // namespace dqme::verify
