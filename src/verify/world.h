// One explorable protocol universe (src/verify).
//
// A World wires the existing pieces — deterministic simulator, Network in
// controlled-delivery mode, protocol sites from mutex::make_site, the PR-3
// obs::InvariantChecker — into a state machine the explorer drives one
// Action at a time. It replaces harness::Workload with its own request
// driver so that *leaving* the CS is an explorable action too: crashing a
// site while it sits in the CS, or re-ordering deliveries around an exit,
// are exactly the schedules the clock-driven harness can never produce.
//
// Every apply() advances the virtual clock by one tick before performing
// the action and drains local (src==dst) deliveries after it, so each
// choice point stamps messages with a distinct sent_at — the invariant
// checker's per-channel FIFO monotonicity check stays meaningful under
// explorer-chosen orders.
//
// Worlds are cheap to build and never copied: the explorer reconstructs a
// prefix by replaying its actions on a fresh World ("stateless" model
// checking). Determinism holds because the controlled Network never samples
// its delay model and the protocols schedule no timers of their own.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mutex/factory.h"
#include "net/trace.h"
#include "obs/flight_recorder.h"
#include "obs/invariants.h"
#include "obs/span.h"
#include "quorum/quorum_system.h"
#include "verify/schedule.h"

namespace dqme::verify {

class World {
 public:
  // `capture` additionally attaches a TraceRecorder + SpanRecorder so a
  // replayed counterexample can be exported as a Chrome trace. Exploration
  // runs without it.
  explicit World(const WorldConfig& cfg, bool capture = false);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // Performs one action. Returns false (and changes nothing but the clock)
  // when the action is not applicable — an empty channel, an exit of a
  // site not in the CS — which keeps minimized/edited schedules replayable.
  bool apply(const Action& action);

  // All currently enabled actions, in a deterministic order: deliveries
  // (ascending channel), exits, failure notices, then — only while the
  // crash budget lasts — crashes of still-alive candidate victims.
  void enabled(std::vector<Action>& out) const;

  // True when no deliver/exit/notice action is enabled: the schedule is
  // complete. (Pending crash actions do not keep a schedule alive; crashing
  // after full quiescence exercises nothing.)
  bool quiescent() const;

  // Seals the run: invariant-checker finish (message conservation, open
  // transfer obligations) plus the driver-level liveness check — a live,
  // never-crashed, non-aborted site still waiting for the CS at quiescence
  // has been starved by the protocol. Call once, at a quiescent state.
  void seal();
  bool sealed() const { return sealed_; }

  uint64_t violations() const;
  std::vector<std::string> reports() const;

  int crashes_done() const { return crashes_done_; }
  Time now() const { return sim_.now(); }
  const WorldConfig& config() const { return cfg_; }
  const net::Network& network() const { return net_; }

  // Capture output (null unless constructed with capture = true).
  const net::TraceRecorder* trace_recorder() const { return trace_rec_.get(); }
  const obs::SpanRecorder* span_recorder() const { return span_rec_.get(); }
  // Checker-fed black box (capture mode only): after a counterexample
  // replay its ring holds the tail of deliveries/edges ending in the
  // violation — dump_to() exports it as a Chrome trace.
  obs::FlightRecorder* flight_recorder() const { return flightrec_.get(); }

 private:
  // Sits between the Network and the real protocol site; the seeded
  // mutations (negative tests) drop or rewrite messages here — after the
  // invariant checker saw the original on Network::on_deliver, which is
  // what makes each mutation visible as a checker/driver violation.
  class SiteTap final : public net::NetSite {
   public:
    SiteTap(World& world, mutex::MutexSite& site)
        : world_(world), site_(site) {}
    void on_message(const net::Message& m, LockId lock) override;

   private:
    World& world_;
    mutex::MutexSite& site_;
  };

  // Mutation filter: true = deliver `m` (possibly rewritten), false = drop.
  bool filter(net::Message& m);
  void issue_if_hungry(SiteId site);

  WorldConfig cfg_;
  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<quorum::QuorumSystem> quorums_;
  std::vector<std::unique_ptr<mutex::MutexSite>> sites_;
  std::vector<std::unique_ptr<SiteTap>> taps_;
  std::unique_ptr<net::TraceRecorder> trace_rec_;
  std::unique_ptr<obs::SpanRecorder> span_rec_;
  std::unique_ptr<obs::FlightRecorder> flightrec_;
  std::unique_ptr<obs::InvariantChecker> checker_;

  std::vector<int> remaining_;  // CS entries each site still wants
  std::vector<char> aborted_;   // gave up after §6 quorum loss
  // Undelivered failure notices, one per (victim, receiver) pair; delivery
  // order is a scheduling choice, so they are actions, not timers.
  std::vector<std::pair<SiteId, SiteId>> notices_;
  int crashes_done_ = 0;
  Time step_ = 0;
  bool sealed_ = false;
  std::vector<std::string> seal_reports_;

  // Mutation state (shared across taps; a mutation can span two sites).
  bool grant_rewritten_ = false;
  bool transfer_lost_ = false;
  bool release_lost_ = false;
  SiteId lost_arbiter_ = kNoSite;
  SiteId lost_holder_ = kNoSite;
  bool fifo_inverted_ = false;
};

}  // namespace dqme::verify
