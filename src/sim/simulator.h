// Deterministic discrete-event simulator.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order (a monotonically
// increasing tie-break id), so a run is a pure function of its inputs — the
// property every reproduction experiment in this repo relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "common/check.h"
#include "common/types.h"

namespace dqme::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `when` (>= now).
  EventId schedule_at(Time when, Callback fn);

  // Schedules `fn` to run `delay` ticks from now (delay >= 0).
  EventId schedule_after(Time delay, Callback fn) {
    DQME_CHECK(delay >= 0);
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already fired or was
  // already cancelled. O(1): the heap entry is tombstoned, not removed.
  bool cancel(EventId id);

  // Runs until the queue drains or stop() is called.
  // Returns the number of events executed.
  uint64_t run();

  // Runs events with time <= `until`; the clock then reads `until` unless
  // stop() fired earlier. Returns the number of events executed.
  uint64_t run_until(Time until);

  // Executes exactly one event if any is pending. Returns true if one ran.
  bool step();

  // Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  void clear_stop() { stopped_ = false; }

  // Number of live (non-cancelled) pending events.
  size_t pending() const { return callbacks_.size(); }
  bool idle() const { return pending() == 0; }

  uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Time when;
    EventId id;
    // Min-heap on (when, id): std::priority_queue is a max-heap, so invert.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  // Drops tombstoned (cancelled) entries off the heap top.
  void skim();

  Time now_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  uint64_t executed_ = 0;
  std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace dqme::sim
