// Deterministic discrete-event simulator.
//
// A Simulator owns a virtual clock and a pending-event store. Events
// scheduled for the same instant fire in scheduling order (a monotonically
// increasing tie-break sequence), so a run is a pure function of its
// inputs — the property every reproduction experiment in this repo relies
// on.
//
// Hot-path layout: events live in a slab of reusable slots (index-linked
// free list) addressed by a hand-rolled binary heap of (when, seq, slot)
// entries. Callbacks are stored inline in the slab through sim::Callback's
// small-buffer storage, so steady-state scheduling performs no heap
// allocation. cancel() tombstones the heap entry in O(1); when tombstones
// outnumber live entries the heap is compacted in place, so a cancel-heavy
// workload (timeouts that almost never fire) keeps bounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace dqme::sim {

// Move-only callable with inline storage for captures up to kInlineSize
// bytes; larger callables fall back to one heap allocation. Every lambda on
// the simulation hot path (network deliveries, workload timers) fits
// inline.
class Callback {
 public:
  static constexpr size_t kInlineSize = 48;

  Callback() = default;
  Callback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    DQME_CHECK(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs *from into *to, then destroys *from.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* from, void* to) {
        Fn** src = std::launder(reinterpret_cast<Fn**>(from));
        ::new (to) Fn*(*src);
      },
      [](void* self) { delete *std::launder(reinterpret_cast<Fn**>(self)); },
  };

  void move_from(Callback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.buf_, buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

class Simulator {
 public:
  using EventId = uint64_t;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `when` (>= now).
  EventId schedule_at(Time when, Callback fn);

  // Schedules `fn` to run `delay` ticks from now (delay >= 0).
  EventId schedule_after(Time delay, Callback fn) {
    DQME_CHECK(delay >= 0);
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already fired or was
  // already cancelled. O(1): the heap entry is tombstoned, not removed;
  // the slab slot (and its callback) is reclaimed immediately.
  bool cancel(EventId id);

  // Runs until the queue drains or stop() is called.
  // Returns the number of events executed.
  uint64_t run();

  // Runs events with time <= `until`; the clock then reads `until` unless
  // stop() fired earlier. Returns the number of events executed.
  uint64_t run_until(Time until);

  // Executes exactly one event if any is pending. Returns true if one ran.
  bool step();

  // Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  void clear_stop() { stopped_ = false; }

  // Number of live (non-cancelled) pending events.
  size_t pending() const { return live_; }
  bool idle() const { return pending() == 0; }

  uint64_t events_executed() const { return executed_; }

  // Introspection for memory-bound regression tests and diagnostics.
  size_t heap_size() const { return heap_.size(); }      // incl. tombstones
  size_t slab_capacity() const { return slots_.size(); }
  uint64_t compactions() const { return compactions_; }

  // Profiling counters for the observability layer (src/obs): lifetime
  // totals and high-water marks, maintained unconditionally — each is one
  // increment or compare on an already-memory-bound path.
  uint64_t scheduled_total() const { return next_seq_ - 1; }
  uint64_t cancelled_total() const { return cancelled_; }
  size_t peak_heap() const { return peak_heap_; }  // deepest heap, w/ tombstones
  // Fraction of scheduled events that were cancelled instead of fired —
  // the load the tombstone-compaction machinery exists to absorb.
  double tombstone_ratio() const {
    return scheduled_total() > 0 ? static_cast<double>(cancelled_) /
                                       static_cast<double>(scheduled_total())
                                 : 0;
  }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  // Below this many heap entries, compaction isn't worth the pass.
  static constexpr size_t kMinCompactSize = 64;

  struct Slot {
    Callback cb;
    Time when = 0;
    uint64_t seq = 0;        // global scheduling order; never reused
    uint32_t gen = 1;        // EventId validity guard across slot reuse
    uint32_t next_free = kNil;
    bool armed = false;      // slot holds a live pending event
  };

  struct HeapEntry {
    Time when;
    uint64_t seq;
    uint32_t slot;
    // Min-order on (when, seq): seq equality is impossible.
    bool before(const HeapEntry& o) const {
      if (when != o.when) return when < o.when;
      return seq < o.seq;
    }
  };

  static EventId make_id(uint32_t gen, uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  // True iff the heap entry still refers to a live (uncancelled) event.
  bool entry_live(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.armed && s.seq == e.seq;
  }

  uint32_t acquire_slot();
  void release_slot(uint32_t idx);

  void heap_push(HeapEntry e);
  void heap_sift_down(size_t i);
  // Pops heap entries until the top is live; drops tombstones.
  void skim();
  // Removes all tombstoned entries and re-heapifies (Floyd build).
  void compact();
  void maybe_compact() {
    if (heap_.size() >= kMinCompactSize && tombstones_ * 2 > heap_.size())
      compact();
  }

  Time now_ = 0;
  uint64_t next_seq_ = 1;
  bool stopped_ = false;
  uint64_t executed_ = 0;
  size_t live_ = 0;        // armed slots == non-tombstone heap entries
  size_t tombstones_ = 0;  // cancelled entries still sitting in the heap
  uint64_t compactions_ = 0;
  uint64_t cancelled_ = 0;
  size_t peak_heap_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNil;
};

}  // namespace dqme::sim
