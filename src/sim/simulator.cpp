#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace dqme::sim {

uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNil) {
    uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNil;
    return idx;
  }
  DQME_CHECK_MSG(slots_.size() < kNil, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(uint32_t idx) {
  Slot& s = slots_[idx];
  s.cb.reset();
  s.armed = false;
  s.gen += 1;  // invalidate outstanding EventIds for this slot
  s.next_free = free_head_;
  free_head_ = idx;
}

Simulator::EventId Simulator::schedule_at(Time when, Callback fn) {
  DQME_CHECK_MSG(when >= now_, "event scheduled in the past: " << when
                               << " < now " << now_);
  DQME_CHECK(fn);
  const uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(fn);
  s.when = when;
  s.seq = next_seq_++;
  s.armed = true;
  heap_push(HeapEntry{when, s.seq, idx});
  if (heap_.size() > peak_heap_) peak_heap_ = heap_.size();
  ++live_;
  return make_id(s.gen, idx);
}

bool Simulator::cancel(EventId id) {
  const uint32_t idx = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  if (!s.armed || s.gen != gen) return false;
  release_slot(idx);  // the heap entry stays behind as a tombstone
  --live_;
  ++tombstones_;
  ++cancelled_;
  maybe_compact();
  return true;
}

void Simulator::heap_push(HeapEntry e) {
  heap_.push_back(e);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!heap_[i].before(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::heap_sift_down(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    size_t best = i;
    const size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && heap_[l].before(heap_[best])) best = l;
    if (r < n && heap_[r].before(heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void Simulator::skim() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0);
    --tombstones_;
  }
}

void Simulator::compact() {
  auto dead = std::remove_if(
      heap_.begin(), heap_.end(),
      [this](const HeapEntry& e) { return !entry_live(e); });
  heap_.erase(dead, heap_.end());
  // Floyd heapify: O(n), cheaper than re-pushing every survivor.
  for (size_t i = heap_.size() / 2; i-- > 0;) heap_sift_down(i);
  tombstones_ = 0;
  ++compactions_;
  // A burst of cancellations can leave far more capacity than the steady
  // state needs; let it go so cancel-heavy runs keep bounded memory.
  if (heap_.capacity() > 4 * (heap_.size() + kMinCompactSize))
    heap_.shrink_to_fit();
}

bool Simulator::step() {
  skim();
  if (heap_.empty()) return false;
  const HeapEntry e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);

  Slot& s = slots_[e.slot];
  Callback fn = std::move(s.cb);
  release_slot(e.slot);
  --live_;
  now_ = e.when;
  ++executed_;
  fn();
  return true;
}

uint64_t Simulator::run() {
  uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

uint64_t Simulator::run_until(Time until) {
  DQME_CHECK(until >= now_);
  uint64_t n = 0;
  while (!stopped_) {
    skim();
    if (heap_.empty() || heap_.front().when > until) break;
    step();
    ++n;
  }
  if (!stopped_ && now_ < until) now_ = until;
  return n;
}

}  // namespace dqme::sim
