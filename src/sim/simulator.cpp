#include "sim/simulator.h"

#include <utility>

namespace dqme::sim {

Simulator::EventId Simulator::schedule_at(Time when, Callback fn) {
  DQME_CHECK_MSG(when >= now_, "event scheduled in the past: " << when
                               << " < now " << now_);
  DQME_CHECK(fn != nullptr);
  EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

void Simulator::skim() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) heap_.pop();
}

bool Simulator::step() {
  skim();
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.id);
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = e.when;
  ++executed_;
  fn();
  return true;
}

uint64_t Simulator::run() {
  uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

uint64_t Simulator::run_until(Time until) {
  DQME_CHECK(until >= now_);
  uint64_t n = 0;
  while (!stopped_) {
    skim();
    if (heap_.empty() || heap_.top().when > until) break;
    step();
    ++n;
  }
  if (!stopped_ && now_ < until) now_ = until;
  return n;
}

}  // namespace dqme::sim
