#include "harness/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace dqme::harness {

void Metrics::reset(Time now) {
  base_ = net_.stats();
  window_start_ = now;
  // CS intervals already underway belong to the previous window.
  for (auto& [key, entry] : open_) entry.counted = false;
  // Occupancy and violation state deliberately survive the reset (safety is
  // checked over the whole run); the aggregates start over.
  for (PerLock& L : per_lock_) L.have_exit = false;
  completed_ = 0;
  gap_sum_ = contended_gap_sum_ = 0;
  gap_count_ = contended_gap_count_ = 0;
  contended_proxied_ = contended_direct_ = 0;
  waiting_sum_ = waiting_max_ = queueing_sum_ = response_sum_ = 0;
  per_site_completed_.assign(static_cast<size_t>(net_.size()), 0);
  waiting_samples_.clear();
}

void Metrics::bind_registry(obs::Registry* reg, Time mean_delay) {
  if (reg == nullptr) {
    waiting_hist_ = nullptr;
    gap_hist_ = nullptr;
    completed_counter_ = nullptr;
    return;
  }
  // Waiting times and sync gaps are heavy-tailed under saturation: p50 sits
  // near one round-trip while the tail stretches to hundreds of T. Log2
  // buckets anchored at T/10 cover T/10 .. ~T*10^10 in 36 buckets, so the
  // serialized percentiles stay meaningful at every load (a linear spec put
  // >99% of `waiting` samples in overflow — see BENCH_micro_core.json
  // before PR 4).
  const double w = std::max<double>(1, static_cast<double>(mean_delay) / 10);
  waiting_hist_ = &reg->log_histogram("waiting", w, 36);
  gap_hist_ = &reg->log_histogram("sync_gap", w, 36);
  completed_counter_ = &reg->counter("cs.completed");
}

void Metrics::bind_timeline(obs::Timeline* tl, Time mean_delay) {
  if (tl == nullptr || !tl->enabled()) {
    tl_completed_ = nullptr;
    tl_waiting_ = nullptr;
    return;
  }
  const double w = std::max<double>(1, static_cast<double>(mean_delay) / 10);
  tl_completed_ = &tl->counter("cs.completed");
  tl_waiting_ = &tl->sketch("waiting", w, 36);
}

void Metrics::on_enter(SiteId site, LockId lock, Time now, Time demanded,
                       Time requested, int hops) {
  DQME_CHECK(demanded <= requested && requested <= now);
  PerLock& L = per_lock_[static_cast<size_t>(lock)];
  if (L.inside > 0) ++violations_;  // Theorem 1 would be broken
  ++L.inside;

  if (L.have_exit && L.inside == 1 && now >= window_start_) {
    const Time gap = now - L.last_exit;
    if (gap >= 0) {
      gap_sum_ += static_cast<double>(gap);
      ++gap_count_;
      if (requested <= L.last_exit) {
        contended_gap_sum_ += static_cast<double>(gap);
        ++contended_gap_count_;
        // Classify the same gaps the contended delay averages, so the
        // mixed-model prediction and the measurement share a population.
        if (hops == 1)
          ++contended_proxied_;
        else if (hops == 2)
          ++contended_direct_;
        if (gap_hist_ != nullptr) gap_hist_->record(static_cast<double>(gap));
      }
    }
  }
  open_.push_back({OpenKey{site, lock},
                   OpenEntry{demanded, requested, now,
                             now >= window_start_}});
}

void Metrics::on_exit(SiteId site, LockId lock, Time now) {
  auto it = std::find_if(open_.begin(), open_.end(), [&](const auto& e) {
    return e.first.site == site && e.first.lock == lock;
  });
  DQME_CHECK_MSG(it != open_.end(), "exit without enter at site " << site);
  const OpenEntry e = it->second;
  open_.erase(it);
  PerLock& L = per_lock_[static_cast<size_t>(lock)];
  --L.inside;
  L.have_exit = true;
  L.last_exit = now;

  if (!e.counted) return;  // entered during warmup
  ++completed_;
  ++per_site_completed_[static_cast<size_t>(site)];
  const double wait = static_cast<double>(e.entered - e.requested);
  if (waiting_hist_ != nullptr) waiting_hist_->record(wait);
  if (completed_counter_ != nullptr) ++*completed_counter_;
  if (tl_completed_ != nullptr) tl_completed_->record(now);
  if (tl_waiting_ != nullptr) tl_waiting_->record(now, wait);
  if (lock_stats_ != nullptr) lock_stats_->record(lock, wait);
  waiting_sum_ += wait;
  waiting_max_ = std::max(waiting_max_, wait);
  if (waiting_samples_.size() < 100'000) waiting_samples_.push_back(wait);
  queueing_sum_ += static_cast<double>(e.entered - e.demanded);
  response_sum_ += static_cast<double>(now - e.demanded);
}

void Metrics::on_crash(SiteId site) {
  // Discard every CS interval the site had open (one per lock at most).
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->first.site != site) {
      ++it;
      continue;
    }
    PerLock& L = per_lock_[static_cast<size_t>(it->first.lock)];
    --L.inside;
    // The CS ended abnormally; do not measure a synchronization gap off it.
    L.have_exit = false;
    it = open_.erase(it);
  }
}

Summary Metrics::summarize(Time now) const {
  Summary s;
  s.window = now - window_start_;
  s.completed = completed_;
  s.violations = violations_;
  if (completed_ > 0) {
    const auto& cur = net_.stats();
    const double n = static_cast<double>(completed_);
    s.wire_msgs_per_cs =
        static_cast<double>(cur.wire_messages - base_.wire_messages) / n;
    s.ctrl_msgs_per_cs =
        static_cast<double>(cur.control_messages - base_.control_messages) /
        n;
    for (int t = 0; t < net::kNumMsgTypes; ++t)
      s.per_type_per_cs[static_cast<size_t>(t)] =
          static_cast<double>(cur.by_type[static_cast<size_t>(t)] -
                              base_.by_type[static_cast<size_t>(t)]) /
          n;
    s.waiting_mean = waiting_sum_ / n;
    s.waiting_max = waiting_max_;
    s.queueing_mean = queueing_sum_ / n;
    s.response_mean = response_sum_ / n;
  }
  if (gap_count_ > 0)
    s.sync_delay_mean = gap_sum_ / static_cast<double>(gap_count_);
  if (contended_gap_count_ > 0)
    s.sync_delay_contended =
        contended_gap_sum_ / static_cast<double>(contended_gap_count_);
  s.contended_gaps = contended_gap_count_;
  s.contended_proxied = contended_proxied_;
  s.contended_direct = contended_direct_;
  if (s.window > 0)
    s.throughput = static_cast<double>(completed_) /
                   static_cast<double>(s.window);
  if (!waiting_samples_.empty()) {
    std::vector<double> sorted = waiting_samples_;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&](double p) {
      const size_t idx = static_cast<size_t>(
          p * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[idx];
    };
    s.waiting_p50 = pct(0.50);
    s.waiting_p95 = pct(0.95);
    s.waiting_p99 = pct(0.99);
    s.waiting_p999 = pct(0.999);
  }
  if (completed_ > 0) {
    double sum = 0, sum_sq = 0;
    for (uint64_t c : per_site_completed_) {
      sum += static_cast<double>(c);
      sum_sq += static_cast<double>(c) * static_cast<double>(c);
    }
    s.fairness_jain =
        sum * sum / (static_cast<double>(per_site_completed_.size()) * sum_sq);
  }
  return s;
}

}  // namespace dqme::harness
