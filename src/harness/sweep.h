// Parallel experiment engine.
//
// A SweepRunner executes a grid of ExperimentConfigs (configs × seeds) on a
// fixed-size worker pool. Each job owns a fully isolated Simulator/Network/
// site stack — run_experiment() shares no mutable state between calls — so
// a run is a pure function of (config, seed) and results are bit-identical
// regardless of the worker count. Workers claim jobs through an atomic
// cursor and write results into the job's own slot, so aggregation order
// never depends on scheduling.
#pragma once

#include <span>
#include <vector>

#include "harness/experiment.h"

namespace dqme::harness {

struct SweepOptions {
  // Worker threads. 0 = std::thread::hardware_concurrency(); always
  // clamped to the job count. 1 runs inline on the calling thread.
  int jobs = 1;
  // Check Theorems 1-3 on every run: a mutual-exclusion violation or an
  // unclean drain in ANY job throws (after all workers finish).
  bool check_integrity = true;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  // Runs every config; results[i] corresponds to configs[i]. Throws the
  // lowest-indexed failure (deterministically) if any job failed.
  std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& configs) const;

  // Same pool and determinism guarantees for arbitrary jobs — benches whose
  // runs are not a plain run_experiment(cfg) (quorum combinatorics, the
  // replica layer) produce an ExperimentResult themselves. No integrity
  // check is applied; each job validates its own result.
  std::vector<ExperimentResult> run_jobs(
      const std::vector<std::function<ExperimentResult()>>& jobs) const;

 private:
  SweepOptions opts_;
};

// The seed axis of a grid: `seeds` copies of `cfg` with seeds cfg.seed,
// cfg.seed+1, ... (the replication convention every bench reports).
std::vector<ExperimentConfig> expand_seeds(const ExperimentConfig& cfg,
                                           int seeds);

// Folds every run's metrics registry into one view, in result-index order
// (counters sum, gauges max, histogram buckets sum) — deterministic for
// any worker count.
obs::Registry merge_registries(std::span<const ExperimentResult> results);

// Mean and sample standard deviation of `metric` over already-computed
// results. One parallel sweep feeds any number of metrics without
// re-running; summation is in index order, so the aggregate is bit-stable.
Replicated aggregate(std::span<const ExperimentResult> results,
                     const std::function<double(const ExperimentResult&)>&
                         metric);

}  // namespace dqme::harness
