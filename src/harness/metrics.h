// Measurement layer for reproduction experiments.
//
// Tracks, over a measurement window:
//   * CS completions, waiting / response times,
//   * the paper's two headline metrics — wire messages per CS execution and
//     synchronization delay (time from one site's CS exit to the next
//     site's CS entry, reported in ticks; divide by T for the paper's
//     units),
//   * mutual exclusion violations (Theorem 1 checked at runtime: any
//     overlapping CS intervals are counted, never silently tolerated).
//
// "Contended" synchronization delay counts only gaps where the entering
// site had already requested before the previous exit — at light load raw
// gaps are inter-arrival time, which §5.1 calls meaningless.
//
// Sharded lock table: locks are independent critical sections, so CS
// occupancy, violations, and exit→enter gaps are judged per lock; the
// reported aggregates (completions, waiting times, gaps) then fold every
// lock together. With num_locks == 1 the accounting reduces exactly to the
// historical single-lock behaviour.
#pragma once

#include <array>

#include "net/network.h"
#include "obs/lock_stats.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace dqme::harness {

struct Summary {
  Time window = 0;
  uint64_t completed = 0;
  uint64_t violations = 0;

  double wire_msgs_per_cs = 0;
  double ctrl_msgs_per_cs = 0;
  std::array<double, net::kNumMsgTypes> per_type_per_cs{};

  double sync_delay_mean = 0;       // all gaps
  double sync_delay_contended = 0;  // gaps with a waiting next entrant
  uint64_t contended_gaps = 0;
  // Contended entries split by grant path (MutexSite::last_entry_hops):
  // 1-hop proxy handoffs vs 2-hop arbiter relays. Feeds the analytic-model
  // gate (obs::mixed_sync_delay); both 0 for protocols that don't classify.
  uint64_t contended_proxied = 0;
  uint64_t contended_direct = 0;

  double waiting_mean = 0;   // request issued -> CS entered
  double waiting_max = 0;
  double waiting_p50 = 0;    // percentiles over up to 100k samples
  double waiting_p95 = 0;
  double waiting_p99 = 0;
  double waiting_p999 = 0;
  double queueing_mean = 0;  // demand arrival -> CS entered (open loop)
  double response_mean = 0;  // demand arrival -> CS exited

  // CS executions per tick; multiply by T for the per-T throughput the
  // paper's "doubled rate" claim is about.
  double throughput = 0;

  // Jain's fairness index over per-site completions in the window:
  // (sum x)^2 / (n * sum x^2); 1.0 = perfectly even service. Meaningful
  // when every site generates equal demand (closed loop) — Theorem 3 made
  // quantitative.
  double fairness_jain = 0;
};

class Metrics {
 public:
  explicit Metrics(net::Network& net, LockId num_locks = 1)
      : net_(net),
        per_lock_(static_cast<size_t>(num_locks)) {
    DQME_CHECK(num_locks >= 1);
    reset(0);
  }

  // Starts a fresh measurement window (discards warmup data).
  void reset(Time now);

  // Streams per-CS observations into `reg` (nullptr detaches): histograms
  // "waiting" and "sync_gap" bucketed at T/10 over [0, 10T), counter
  // "cs.completed". References are resolved here, once — the per-event cost
  // is a pointer test plus one Histogram::record.
  void bind_registry(obs::Registry* reg, Time mean_delay);

  // Streams the same per-CS observations as windowed series into `tl`
  // (nullptr detaches): counter "cs.completed" and sketch "waiting" (log2,
  // same spec as the registry histogram). Handles resolve here, once.
  void bind_timeline(obs::Timeline* tl, Time mean_delay);

  // Streams per-lock completions/waiting into `ls` (nullptr detaches).
  void bind_lock_stats(obs::LockStats* ls) { lock_stats_ = ls; }

  // `demanded` is when the application wanted the CS; `requested` when
  // request_cs() was issued (they differ under open-loop local queueing).
  // `hops` classifies the grant that completed the entry (1 = proxied,
  // 2 = arbiter relay, 0 = unclassified — see MutexSite::last_entry_hops).
  void on_enter(SiteId site, LockId lock, Time now, Time demanded,
                Time requested, int hops = 0);
  void on_exit(SiteId site, LockId lock, Time now);
  // The site crashed; any CS intervals it had open (on any lock) are
  // discarded (a crashed holder never exits, and the next entry is not a
  // violation).
  void on_crash(SiteId site);

  Summary summarize(Time now) const;

  uint64_t violations() const { return violations_; }
  // Sites currently inside a CS, summed over all locks.
  int currently_inside() const {
    int n = 0;
    for (const PerLock& L : per_lock_) n += L.inside;
    return n;
  }

 private:
  struct OpenEntry {
    Time demanded, requested, entered;
    bool counted;  // entered inside the window
  };
  struct OpenKey {
    SiteId site;
    LockId lock;
  };
  // Occupancy and handoff-gap state, independent per lock.
  struct PerLock {
    int inside = 0;
    bool have_exit = false;
    Time last_exit = 0;
  };

  net::Network& net_;
  net::NetworkStats base_;
  Time window_start_ = 0;

  uint64_t violations_ = 0;
  std::vector<PerLock> per_lock_;
  std::vector<std::pair<OpenKey, OpenEntry>> open_;  // (site,lock) now in CS

  uint64_t completed_ = 0;
  double gap_sum_ = 0;
  uint64_t gap_count_ = 0;
  double contended_gap_sum_ = 0;
  uint64_t contended_gap_count_ = 0;
  uint64_t contended_proxied_ = 0;
  uint64_t contended_direct_ = 0;
  double waiting_sum_ = 0;
  double waiting_max_ = 0;
  double queueing_sum_ = 0;
  double response_sum_ = 0;
  std::vector<uint64_t> per_site_completed_;
  std::vector<double> waiting_samples_;  // capped; percentile estimation

  // Optional registry streams (bind_registry); null when detached.
  obs::Histogram* waiting_hist_ = nullptr;
  obs::Histogram* gap_hist_ = nullptr;
  uint64_t* completed_counter_ = nullptr;
  // Optional timeline streams (bind_timeline); null when detached.
  obs::Timeline::Counter* tl_completed_ = nullptr;
  obs::Timeline::Sketch* tl_waiting_ = nullptr;
  // Optional per-lock hot-set tracker (bind_lock_stats); null when detached.
  obs::LockStats* lock_stats_ = nullptr;
};

}  // namespace dqme::harness
