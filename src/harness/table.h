// Fixed-width ASCII tables for benches and examples — the reproduction
// binaries print rows shaped like the paper's Table 1.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dqme::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  // Formatting helpers for cells.
  static std::string num(double v, int precision = 2);
  static std::string integer(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dqme::harness
