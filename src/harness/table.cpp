#include "harness/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace dqme::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DQME_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DQME_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << std::left << cells[c];
    os << " |\n";
  };
  auto rule = [&] {
    for (size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-");
      os << std::string(width[c], '-');
    }
    os << "-+\n";
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(uint64_t v) { return std::to_string(v); }

}  // namespace dqme::harness
