#include "harness/sweep.h"

#include <atomic>
#include <cmath>
#include <exception>
#include <thread>

namespace dqme::harness {

namespace {

void check_run(const ExperimentResult& res, const ExperimentConfig& cfg) {
  DQME_CHECK_MSG(res.summary.violations == 0,
                 "mutual exclusion violated at seed " << cfg.seed);
  DQME_CHECK_MSG(res.drained_clean,
                 "requests left outstanding at seed " << cfg.seed);
  DQME_CHECK_MSG(res.invariant_violations == 0,
                 "invariant checker flagged seed "
                     << cfg.seed << ": "
                     << (res.invariant_reports.empty()
                             ? "(no report)"
                             : res.invariant_reports.front()));
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {
  DQME_CHECK(opts_.jobs >= 0);
}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<ExperimentConfig>& configs) const {
  if (configs.size() > 1)
    for (const ExperimentConfig& cfg : configs)
      DQME_CHECK_MSG(cfg.capture == nullptr,
                     "RunCapture is single-run: workers would race on a "
                     "capture shared across a sweep");

  std::vector<std::function<ExperimentResult()>> jobs;
  jobs.reserve(configs.size());
  for (const ExperimentConfig& cfg : configs)
    jobs.push_back([this, &cfg] {
      ExperimentResult res = run_experiment(cfg);
      if (opts_.check_integrity) check_run(res, cfg);
      return res;
    });
  return run_jobs(jobs);
}

std::vector<ExperimentResult> SweepRunner::run_jobs(
    const std::vector<std::function<ExperimentResult()>>& jobs) const {
  std::vector<ExperimentResult> results(jobs.size());
  if (jobs.empty()) return results;

  std::vector<std::exception_ptr> errors(jobs.size());
  std::atomic<size_t> cursor{0};
  auto worker = [&] {
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = jobs[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  int workers = opts_.jobs;
  if (workers == 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  if (static_cast<size_t>(workers) > jobs.size())
    workers = static_cast<int>(jobs.size());

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Report the lowest-indexed failure so the error seen does not depend on
  // worker scheduling.
  for (auto& err : errors)
    if (err) std::rethrow_exception(err);
  return results;
}

std::vector<ExperimentConfig> expand_seeds(const ExperimentConfig& cfg,
                                           int seeds) {
  DQME_CHECK(seeds >= 1);
  std::vector<ExperimentConfig> grid;
  grid.reserve(static_cast<size_t>(seeds));
  for (int r = 0; r < seeds; ++r) {
    grid.push_back(cfg);
    grid.back().seed = cfg.seed + static_cast<uint64_t>(r);
  }
  return grid;
}

obs::Registry merge_registries(std::span<const ExperimentResult> results) {
  obs::Registry merged;
  // Index order == config order: the merge is bit-identical for any --jobs.
  for (const ExperimentResult& r : results) merged.merge(r.registry);
  return merged;
}

Replicated aggregate(std::span<const ExperimentResult> results,
                     const std::function<double(const ExperimentResult&)>&
                         metric) {
  DQME_CHECK(!results.empty());
  Replicated out;
  for (const ExperimentResult& r : results) out.mean += metric(r);
  out.mean /= static_cast<double>(results.size());
  if (results.size() > 1) {
    double ss = 0;
    for (const ExperimentResult& r : results) {
      const double d = metric(r) - out.mean;
      ss += d * d;
    }
    out.sd = std::sqrt(ss / static_cast<double>(results.size() - 1));
  }
  return out;
}

}  // namespace dqme::harness
