#include "harness/permission_auditor.h"

#include <sstream>

namespace dqme::harness {

using net::Message;
using net::MsgType;

PermissionAuditor::PermissionAuditor(net::Network& net) {
  auto previous = std::move(net.on_deliver);
  net.on_deliver = [this, previous = std::move(previous)](const Message& m,
                                                          LockId lock) {
    observe(m, lock);
    if (previous) previous(m, lock);
  };
}

void PermissionAuditor::flag(const Message& m, LockId lock,
                             const std::string& why) {
  ++violations_;
  if (reports_.size() < 16) {
    std::ostringstream os;
    os << why << " at delivery of " << m;
    if (lock != kLock0) os << " [lock " << lock << "]";
    reports_.push_back(os.str());
  }
}

void PermissionAuditor::observe(const Message& m, LockId lock) {
  switch (m.type) {
    case MsgType::kReply: {
      // Grant of arbiter m.arbiter's permission to the requester m.req.
      ArbiterView& a = arbiters_[{lock, m.arbiter}];
      ++grants_audited_;
      const SiteId grantee = m.req.site;
      if (m.src == m.arbiter) {
        // Direct grant: the permission must be free.
        if (a.holder != kNoSite && a.holder != grantee)
          flag(m, lock,
               "direct grant while permission held by site " +
                   std::to_string(a.holder));
        a.holder = grantee;
      } else {
        // Forwarded grant: only the current holder may forward — unless
        // the matching release(holder, grantee) reached the arbiter first
        // and already moved our view of the permission.
        if (a.holder == m.src) {
          a.holder = grantee;
        } else if (a.holder == grantee) {
          // release overtook the forwarded reply; already accounted.
        } else {
          flag(m, lock,
               "forwarded grant from non-holder (holder is site " +
                   std::to_string(a.holder) + ")");
        }
      }
      break;
    }
    case MsgType::kYield: {
      // The yielder returns m.arbiter's permission.
      ArbiterView& a = arbiters_[{lock, m.arbiter}];
      if (a.holder == m.req.site) a.holder = kNoSite;
      // else: stale yield, which the protocol drops — ignore.
      break;
    }
    case MsgType::kRelease: {
      // Releaser m.req.site tells arbiter m.dst what became of its
      // permission: moved to m.target's site, or returned (max).
      ArbiterView& a = arbiters_[{lock, m.dst}];
      if (a.holder == m.req.site)
        a.holder = m.target.valid() ? m.target.site : kNoSite;
      // else: stale release (already superseded) — the protocol ignores
      // it, and so do we.
      break;
    }
    default:
      break;  // requests/fails/inquires/transfers don't move permissions
  }
}

}  // namespace dqme::harness
