#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "harness/permission_auditor.h"
#include "harness/sweep.h"
#include "obs/flight_recorder.h"
#include "obs/invariants.h"
#include "obs/model.h"
#include "quorum/factory.h"

namespace dqme::harness {

namespace {

std::unique_ptr<net::DelayModel> make_delay(const ExperimentConfig& cfg) {
  const Time t = cfg.mean_delay;
  switch (cfg.delay_kind) {
    case ExperimentConfig::DelayKind::kConstant:
      return std::make_unique<net::ConstantDelay>(t);
    case ExperimentConfig::DelayKind::kUniform:
      return std::make_unique<net::UniformDelay>(t / 2, t + t / 2);
    case ExperimentConfig::DelayKind::kExponential:
      return std::make_unique<net::ShiftedExponentialDelay>(
          std::max<Time>(1, t / 10), t, 10 * t);
    case ExperimentConfig::DelayKind::kClustered: {
      std::vector<int> cluster_of(static_cast<size_t>(cfg.n));
      for (int s = 0; s < cfg.n; ++s)
        cluster_of[static_cast<size_t>(s)] = s % std::max(1, cfg.clusters);
      return std::make_unique<net::ClusteredDelay>(
          std::move(cluster_of), std::max<Time>(1, t / 5), t);
    }
  }
  DQME_CHECK(false);
  return nullptr;
}

// Watchdog bound when the config leaves it to us: the longest legal wait is
// about N saturated CS cycles (starvation freedom serves everyone once per
// round), so take a ~8x margin on that plus slack for the drain tail and
// crash-detection window. Generous by design — the watchdog exists to catch
// genuine stalls, not to time the tail of a legal queue.
Time auto_liveness_bound(const ExperimentConfig& cfg) {
  const Time cycle = 2 * cfg.mean_delay + cfg.workload.cs_duration;
  return 8 * static_cast<Time>(cfg.n) * cycle + 400 * cfg.mean_delay +
         10 * (cfg.detection_latency + cfg.detection_jitter);
}

// Window-boundary sampler for the timeline's network-side series. Runs as a
// self-rescheduling sim event once per window — the message hot path itself
// is never hooked, so an enabled timeline costs O(windows) events, not
// O(messages). Each sample attributes the just-ended window's deltas to it
// (recording at boundary-1 keeps the half-open window arithmetic exact) and
// emits a "recovery xK" marker when any Cao-Singhal site completed §6 quorum
// reconstructions since the previous boundary.
struct TimelineSampler {
  net::Network& net;
  const std::vector<mutex::MutexSite*>& sites;
  obs::Timeline& tl;
  obs::Timeline::Counter& wire;
  obs::Timeline::Counter& ctrl;
  obs::Timeline::Counter& piggy;
  obs::Timeline::Gauge& mpf;
  Time end = 0;

  uint64_t prev_wire = 0, prev_ctrl = 0, prev_piggy = 0;
  uint64_t prev_recoveries = 0;

  TimelineSampler(net::Network& n, const std::vector<mutex::MutexSite*>& s,
                  obs::Timeline& t, Time end_at)
      : net(n),
        sites(s),
        tl(t),
        wire(t.counter("net.wire_msgs")),
        ctrl(t.counter("net.ctrl_msgs")),
        piggy(t.counter("net.piggybacked_msgs")),
        mpf(t.gauge("net.msgs_per_flight")),
        end(end_at) {}

  uint64_t recoveries_total() const {
    uint64_t r = 0;
    for (const auto* s : sites)
      if (const auto* cs = dynamic_cast<const core::CaoSinghalSite*>(s))
        r += cs->protocol_stats().recoveries;
    return r;
  }

  void sample(Time now) {
    const Time in_window = now > 0 ? now - 1 : 0;
    const auto& ns = net.stats();
    wire.record(in_window, ns.wire_messages - prev_wire);
    ctrl.record(in_window, ns.control_messages - prev_ctrl);
    piggy.record(in_window, ns.piggybacked_messages - prev_piggy);
    const uint64_t d_wire = ns.wire_messages - prev_wire;
    const uint64_t d_ctrl = ns.control_messages - prev_ctrl;
    mpf.record(in_window, d_wire > 0 ? static_cast<double>(d_ctrl) /
                                           static_cast<double>(d_wire)
                                     : 1.0);
    prev_wire = ns.wire_messages;
    prev_ctrl = ns.control_messages;
    prev_piggy = ns.piggybacked_messages;

    const uint64_t rec = recoveries_total();
    if (rec > prev_recoveries) {
      tl.mark("recovery x" + std::to_string(rec - prev_recoveries),
              in_window);
      prev_recoveries = rec;
    }

    if (now < end) {
      const Time next = std::min(now + tl.window(), end);
      net.simulator().schedule_at(next, [this, next] { sample(next); });
    }
  }

  void start() {
    const Time first = std::min(tl.window(), end);
    net.simulator().schedule_at(first, [this, first] { sample(first); });
  }
};

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();
  sim::Simulator sim;
  net::Network network(sim, cfg.n, make_delay(cfg), cfg.seed * 7919 + 13);
  if (cfg.lock_piggyback_window >= 0)
    network.set_lock_piggyback(cfg.lock_piggyback_window);

  // Observability capture (opt-in): both recorders chain on_deliver, so
  // they coexist with the auditor and each other.
  std::unique_ptr<net::TraceRecorder> msg_rec;
  std::unique_ptr<obs::SpanRecorder> span_rec;
  if (cfg.capture != nullptr)
    msg_rec =
        std::make_unique<net::TraceRecorder>(network, cfg.capture->capacity);
  // One span recorder serves both consumers (full capture and critical-path
  // attribution) — sized for whichever needs more.
  if (cfg.capture != nullptr || cfg.critpath) {
    size_t cap = cfg.critpath ? cfg.critpath_capacity : 0;
    if (cfg.capture != nullptr && cfg.capture->capacity > cap)
      cap = cfg.capture->capacity;
    span_rec = std::make_unique<obs::SpanRecorder>(network, cap);
  }

  std::unique_ptr<PermissionAuditor> auditor;
  if (cfg.audit_permissions) {
    DQME_CHECK_MSG(cfg.crashes.empty(),
                   "the permission auditor is not crash-aware");
    DQME_CHECK_MSG(mutex::algo_uses_quorum(cfg.algo),
                   "permission auditing is for quorum algorithms");
    auditor = std::make_unique<PermissionAuditor>(network);
  }

  std::unique_ptr<quorum::QuorumSystem> quorums;
  if (mutex::algo_uses_quorum(cfg.algo))
    quorums = quorum::make_quorum_system(cfg.quorum, cfg.n);

  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  sites.reserve(static_cast<size_t>(cfg.n));
  for (SiteId id = 0; id < cfg.n; ++id) {
    sites.push_back(
        mutex::make_site(cfg.algo, id, network, quorums.get(), cfg.options));
    network.attach(id, sites.back().get());
    raw.push_back(sites.back().get());
  }

  if (span_rec) span_rec->attach_all(sites);

  // Invariant checker last, so it chains in front of the recorders and sees
  // every delivery, and keeps an attached SpanRecorder as its downstream.
  std::unique_ptr<obs::InvariantChecker> checker;
  if (cfg.check_invariants) {
    obs::InvariantOptions iopts;
    iopts.liveness_bound =
        cfg.liveness_bound > 0 ? cfg.liveness_bound : auto_liveness_bound(cfg);
    iopts.quorum_arbitration = mutex::algo_uses_quorum(cfg.algo);
    checker = std::make_unique<obs::InvariantChecker>(network, iopts);
    checker->attach_all(sites);
  }

  ExperimentResult res;
  if (cfg.timeline_window > 0)
    res.timeline = obs::Timeline(0, cfg.timeline_window);
  if (cfg.lock_stats_k > 0)
    res.lock_stats = obs::LockStats(static_cast<size_t>(cfg.lock_stats_k));

  // Black box: fed through the checker so wire traffic, span edges, crashes
  // and the violation itself land in one ring, and the first violation
  // triggers the dump.
  std::unique_ptr<obs::FlightRecorder> flightrec;
  if (!cfg.flight_recorder_dump.empty()) {
    DQME_CHECK_MSG(checker != nullptr,
                   "flight_recorder_dump requires check_invariants");
    flightrec =
        std::make_unique<obs::FlightRecorder>(cfg.flight_recorder_capacity);
    flightrec->set_dump_path(cfg.flight_recorder_dump);
    flightrec->set_label(std::string(mutex::to_string(cfg.algo)) +
                         " n=" + std::to_string(cfg.n) +
                         " seed=" + std::to_string(cfg.seed));
    checker->set_flight_recorder(flightrec.get());
  }

  Metrics metrics(network, cfg.options.num_locks);
  Workload::Config wl = cfg.workload;
  wl.seed = cfg.seed * 104729 + 7;
  // The lock table is sized once, in AlgoOptions; the workload follows it.
  wl.num_locks = cfg.options.num_locks;
  Workload workload(sim, raw, wl, &metrics);

  core::FailureDetector detector(network, cfg.detection_latency,
                                 cfg.detection_jitter, cfg.seed * 31 + 5);
  for (SiteId id = 0; id < cfg.n; ++id) detector.attach(id, raw[static_cast<size_t>(id)]);
  for (const auto& crash : cfg.crashes) {
    DQME_CHECK(0 <= crash.victim && crash.victim < cfg.n);
    sim.schedule_at(crash.at, [&detector, &workload, victim = crash.victim] {
      workload.halt_site(victim);
      detector.crash(victim);
    });
  }

  // Timeline sampler + crash markers: the network-side series sample at
  // window boundaries (covering warmup too — the §6 trajectory needs the
  // pre-crash baseline); the CS-side series bind with the registry below.
  std::unique_ptr<TimelineSampler> sampler;
  if (res.timeline.enabled()) {
    for (const auto& crash : cfg.crashes)
      res.timeline.mark("crash site=" + std::to_string(crash.victim),
                        crash.at);
    sampler = std::make_unique<TimelineSampler>(network, raw, res.timeline,
                                                cfg.warmup + cfg.measure);
    sampler->start();
  }

  workload.start();
  sim.run_until(cfg.warmup);
  metrics.reset(sim.now());
  // Bind after the warmup reset so the registry histograms cover exactly
  // the measurement window, like every Summary aggregate.
  metrics.bind_registry(&res.registry, cfg.mean_delay);
  metrics.bind_timeline(&res.timeline, cfg.mean_delay);
  if (res.lock_stats.enabled()) metrics.bind_lock_stats(&res.lock_stats);
  sim.run_until(cfg.warmup + cfg.measure);

  res.summary = metrics.summarize(sim.now());
  metrics.bind_registry(nullptr, 0);  // drain-phase CSs stay out of the window
  metrics.bind_timeline(nullptr, 0);
  metrics.bind_lock_stats(nullptr);

  // Drain: stop new demand, let in-flight requests finish, verify nothing
  // is stuck. A protocol deadlock would leave outstanding demands (and,
  // almost always, a non-empty request with an empty event queue).
  workload.drain();
  const Time drain_deadline =
      sim.now() + 1000 * cfg.mean_delay + 100 * cfg.workload.cs_duration;
  sim.run_until(drain_deadline);
  res.drained_clean = workload.demands_outstanding() == 0;

  res.demands_issued = workload.demands_issued();
  res.demands_completed = workload.demands_completed();
  res.demands_aborted = workload.demands_aborted();
  if (quorums) res.mean_quorum_size = quorums->mean_quorum_size();
  for (const auto& s : sites) {
    res.stale_drops += s->stale_drops();
    if (const auto* cs = dynamic_cast<const core::CaoSinghalSite*>(s.get())) {
      const auto& c = cs->case_stats();
      res.case_stats.grant_free += c.grant_free;
      res.case_stats.c1_empty_higher += c.c1_empty_higher;
      res.case_stats.c2_empty_lower += c.c2_empty_lower;
      res.case_stats.c3_fail_newcomer += c.c3_fail_newcomer;
      res.case_stats.c4_displace_head += c.c4_displace_head;
      res.case_stats.c5_beats_lock += c.c5_beats_lock;
      res.case_stats.c6_between += c.c6_between;
      const auto& p = cs->protocol_stats();
      res.protocol_stats.yields_sent += p.yields_sent;
      res.protocol_stats.inquires_deferred += p.inquires_deferred;
      res.protocol_stats.transfers_accepted += p.transfers_accepted;
      res.protocol_stats.transfers_ignored += p.transfers_ignored;
      res.protocol_stats.replies_forwarded += p.replies_forwarded;
      res.protocol_stats.replies_direct += p.replies_direct;
      res.protocol_stats.recoveries += p.recoveries;
    }
  }
  res.sync_delay_in_t = res.summary.sync_delay_contended /
                        static_cast<double>(cfg.mean_delay);
  if (auditor) {
    res.permission_violations = auditor->violations();
    res.permission_grants_audited = auditor->grants_audited();
  }
  if (checker) {
    checker->finish(sim.now());
    res.invariant_violations = checker->violations();
    res.invariant_checks = checker->checks();
    res.invariant_reports = checker->reports();
  }
  res.sim_events = sim.events_executed();
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();

  // Critical-path attribution: extracted after the drain (so every chain
  // the window started is complete), filtered to entries inside the
  // measurement window — the same population as the waiting histogram.
  if (cfg.critpath) {
    res.critpath = obs::CritStats(cfg.mean_delay);
    const Time win_lo = cfg.warmup;
    const Time win_hi = cfg.warmup + cfg.measure;
    for (const obs::CritPath& p :
         obs::extract_critical_paths(span_rec->events()))
      if (p.entered >= win_lo && p.entered < win_hi) res.critpath.record(p);
  }

  // Engine accounting into the registry: whole-run totals (they have no
  // warmup/measure distinction) plus high-water gauges.
  {
    obs::Registry& reg = res.registry;
    reg.counter("sim.events") = sim.events_executed();
    reg.counter("sim.scheduled") = sim.scheduled_total();
    reg.counter("sim.cancelled") = sim.cancelled_total();
    reg.counter("sim.compactions") = sim.compactions();
    reg.gauge("sim.peak_heap") = static_cast<double>(sim.peak_heap());
    reg.gauge("sim.slab_capacity") = static_cast<double>(sim.slab_capacity());
    reg.gauge("sim.tombstone_ratio") = sim.tombstone_ratio();
    const auto& ns = network.stats();
    reg.counter("net.wire_msgs") = ns.wire_messages;
    reg.counter("net.ctrl_msgs") = ns.control_messages;
    reg.counter("net.flights.acquired") = ns.flights_acquired;
    reg.gauge("net.flights.pool") = static_cast<double>(network.flight_pool_size());
    reg.counter("mutex.stale_drops") = res.stale_drops;
    // Lock-table metrics only when the run uses the feature: single-lock,
    // no-piggyback registries stay byte-identical to committed goldens.
    if (cfg.options.num_locks > 1 || cfg.lock_piggyback_window >= 0) {
      reg.counter("net.piggybacked_msgs") = ns.piggybacked_messages;
      reg.gauge("net.msgs_per_flight") =
          ns.wire_messages > 0
              ? static_cast<double>(ns.control_messages) /
                    static_cast<double>(ns.wire_messages)
              : 1.0;
    }
    if (checker) {
      reg.counter("invariant.checks") = res.invariant_checks;
      reg.counter("invariant.violations") = res.invariant_violations;
    }
    // Delay-budget keys only when the run asked for attribution: plain
    // runs keep their registries byte-identical to committed goldens.
    if (cfg.critpath) {
      reg.counter("critpath.paths") = res.critpath.paths();
      reg.counter("critpath.contended") = res.critpath.contended();
      reg.counter("critpath.residual_ticks") = res.critpath.residual_ticks();
      for (size_t b = 0; b < obs::kNumCritBuckets; ++b)
        reg.counter(std::string("critpath.ticks.") +
                    std::string(obs::to_string(
                        static_cast<obs::CritBucket>(b)))) =
            res.critpath.ticks(static_cast<obs::CritBucket>(b));
      reg.gauge("critpath.tail_delay_t") = res.critpath.mean_tail_in_t();
    }

    // Analytic-model conformance (Table 1), emitted for every run so each
    // bench --json carries its divergence from the paper's closed forms.
    const obs::ModelPrediction pred =
        obs::predict(cfg.algo, cfg.n, res.mean_quorum_size);
    if (pred.has_delay) {
      // Refine the delay form by the observed relay mix: a proxied handoff
      // costs 1T, a degraded arbiter relay 2T (see obs/model.h). Protocols
      // that don't classify entries fall back to the bare Table 1 value.
      const double pred_t = obs::mixed_sync_delay(
          res.summary.contended_proxied, res.summary.contended_direct,
          pred.sync_delay_t);
      reg.gauge("model.sync_delay_pred_t") = pred_t;
      reg.gauge("model_divergence_sync_delay") =
          res.summary.contended_gaps == 0
              ? 0
              : obs::divergence_point(res.sync_delay_in_t, pred_t);
      // Attribution-vs-model reconciliation: the mean critical-path tail
      // (ticks after the last holder exit, in T) against the same refined
      // Table 1 form the aggregate gauge uses.
      if (cfg.critpath)
        reg.gauge("critpath.divergence_tail_vs_model") =
            res.critpath.contended() == 0
                ? 0
                : obs::divergence_point(res.critpath.mean_tail_in_t(),
                                        pred_t);
    }
    if (pred.has_msgs) {
      reg.gauge("model.msgs_lo") = pred.msgs_lo;
      reg.gauge("model.msgs_hi") = pred.msgs_hi;
      reg.gauge("model_divergence_msgs") =
          res.summary.completed == 0
              ? 0
              : obs::divergence_band(res.summary.wire_msgs_per_cs,
                                     pred.msgs_lo, pred.msgs_hi);
    }
  }

  if (cfg.capture != nullptr) {
    cfg.capture->n_sites = cfg.n;
    cfg.capture->label = std::string(mutex::to_string(cfg.algo)) +
                         " n=" + std::to_string(cfg.n) +
                         " T=" + std::to_string(cfg.mean_delay) +
                         " seed=" + std::to_string(cfg.seed);
    cfg.capture->messages = msg_rec->events();
    cfg.capture->messages_dropped = msg_rec->dropped();
    cfg.capture->span_events = span_rec->events();
    cfg.capture->span_events_dropped = span_rec->dropped();
  }
  return res;
}

std::vector<ExperimentResult> replicate(const ExperimentConfig& cfg,
                                        int replications, int jobs) {
  DQME_CHECK(replications >= 1);
  SweepOptions opts;
  opts.jobs = jobs;
  return SweepRunner(opts).run(expand_seeds(cfg, replications));
}

Replicated replicate(const ExperimentConfig& cfg, int replications,
                     const std::function<double(const ExperimentResult&)>&
                         metric) {
  return aggregate(replicate(cfg, replications), metric);
}

}  // namespace dqme::harness
