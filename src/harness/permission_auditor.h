// Independent safety auditor for quorum-permission protocols.
//
// The Metrics layer checks the END property (one site in the CS at a
// time). This auditor checks the MECHANISM: for every arbiter j, at most
// one request holds j's permission at any instant, reconstructed purely
// from the delivered-message trace:
//
//   * a reply(arb=j) delivered to X grants j's permission to X — directly
//     (src == j, legal only while j's permission is free) or forwarded
//     (src == previous holder, legal only from that holder);
//   * a yield(X) or release(X, max) delivered at j returns it;
//   * a release(X, target) delivered at j records the forward (the grant
//     itself is audited at the forwarded reply's delivery).
//
// A protocol bug that double-grants a permission is caught here even on
// runs where quorum intersection happens to mask it from the CS-level
// check. Not crash-aware: audit runs without fault injection.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/network.h"

namespace dqme::harness {

class PermissionAuditor {
 public:
  // Attaches to the network's delivery hook (chaining any existing hook).
  explicit PermissionAuditor(net::Network& net);

  uint64_t violations() const { return violations_; }
  // First few violation descriptions, for diagnostics.
  const std::vector<std::string>& reports() const { return reports_; }

  // Grants audited (direct + forwarded) — proves the auditor saw traffic.
  uint64_t grants_audited() const { return grants_audited_; }

 private:
  void observe(const net::Message& m, LockId lock);
  void flag(const net::Message& m, LockId lock, const std::string& why);

  struct ArbiterView {
    // Site currently holding this arbiter's permission, kNoSite if free.
    SiteId holder = kNoSite;
  };

  // An arbiter holds one independent permission per lock it arbitrates, so
  // the audited unit is the (lock, arbiter) pair.
  std::map<std::pair<LockId, SiteId>, ArbiterView> arbiters_;
  uint64_t violations_ = 0;
  uint64_t grants_audited_ = 0;
  std::vector<std::string> reports_;
};

}  // namespace dqme::harness
