// Drives protocol sites with synthetic CS demand (paper §5's two regimes).
//
//   * Closed loop ("heavy load"): every site wants the CS again as soon as
//     it leaves it (plus optional think time). With think_time = 0 this is
//     §5.2's saturation: "a site that is waiting ... has enough time to
//     obtain all reply messages except the reply from the site in the CS".
//   * Open loop ("light load" and the λ sweeps): per-site Poisson arrivals
//     with the given rate; demands queue locally because "a site executes
//     its CS requests sequentially one by one" (§2).
//
// The workload is also the bookkeeper: it stamps demand/request/enter/exit
// times into Metrics and knows how many demands are still in flight, which
// is what the deadlock/starvation checks (Theorems 2/3) assert on.
#pragma once

#include <deque>

#include "common/rng.h"
#include "harness/metrics.h"
#include "mutex/mutex_site.h"

namespace dqme::harness {

class Workload {
 public:
  struct Config {
    enum class Mode { kClosed, kOpen };
    Mode mode = Mode::kClosed;
    Time cs_duration = 10;       // E
    bool exponential_cs = false; // E ~ Exp(cs_duration) instead of constant
    Time think_time = 0;         // closed loop: pause between CSs
    double arrival_rate = 1e-4;  // open loop: demands per tick per site
    // Optional per-site demand multipliers (open loop). Empty = uniform.
    // E.g. {8,1,1,...} makes site 0 a hotspot with 8x the demand.
    std::vector<double> site_weights;
    uint64_t seed = 7;
    // Closed loop: cap on CS executions per site (0 = unlimited). Used by
    // tests that want bounded runs.
    uint64_t max_cs_per_site = 0;
  };

  Workload(sim::Simulator& sim, std::vector<mutex::MutexSite*> sites,
           Config config, Metrics* metrics);

  // Begins issuing demand. Closed-loop start times are staggered uniformly
  // over one mean message delay to avoid lock-step artifacts.
  void start();

  // Stops creating demand; already-issued demands run to completion.
  void drain();

  // Stops driving a site (crash experiments). Its in-flight demand is
  // written off.
  void halt_site(SiteId id);

  uint64_t demands_issued() const { return demands_issued_; }
  uint64_t demands_completed() const { return demands_completed_; }
  uint64_t demands_aborted() const { return demands_aborted_; }
  // Demands issued but neither completed nor written off.
  uint64_t demands_outstanding() const {
    return demands_issued_ - demands_completed_ - demands_aborted_;
  }

 private:
  struct SiteState {
    mutex::MutexSite* site = nullptr;
    bool halted = false;
    bool busy = false;           // a demand is requesting or in CS
    Time demanded = 0;           // current demand's arrival time
    Time requested = 0;
    std::deque<Time> backlog;    // open loop: queued demand arrival times
    uint64_t completed = 0;
  };

  void arrival(SiteId id);           // open loop Poisson process
  void issue(SiteId id, Time demanded);
  void entered(SiteId id);
  void exited(SiteId id);
  void aborted(SiteId id);
  void next_demand(SiteId id);       // after a completion
  Time sample_cs_duration();

  sim::Simulator& sim_;
  Config cfg_;
  Rng rng_;
  Metrics* metrics_;
  std::vector<SiteState> sites_;
  bool draining_ = false;
  uint64_t demands_issued_ = 0;
  uint64_t demands_completed_ = 0;
  uint64_t demands_aborted_ = 0;
};

}  // namespace dqme::harness
