// Drives protocol sites with synthetic CS demand (paper §5's two regimes).
//
//   * Closed loop ("heavy load"): every site wants the CS again as soon as
//     it leaves it (plus optional think time). With think_time = 0 this is
//     §5.2's saturation: "a site that is waiting ... has enough time to
//     obtain all reply messages except the reply from the site in the CS".
//   * Open loop ("light load" and the λ sweeps): per-site Poisson arrivals
//     with the given rate; demands queue locally because "a site executes
//     its CS requests sequentially one by one" (§2).
//
// Sharded lock table: with num_locks > 1 every demand targets one lock.
// Closed loop drives every (site, lock) pair as its own saturation loop;
// open loop keeps one Poisson arrival process per site and samples the
// target lock per demand from a Zipf distribution over LockIds (skew 0 =
// uniform, lock 0 always the most popular). Demands queue per (site, lock)
// — a site executes each lock's requests sequentially, but distinct locks
// proceed concurrently.
//
// The workload is also the bookkeeper: it stamps demand/request/enter/exit
// times into Metrics and knows how many demands are still in flight, which
// is what the deadlock/starvation checks (Theorems 2/3) assert on.
#pragma once

#include <deque>

#include "common/rng.h"
#include "harness/metrics.h"
#include "mutex/mutex_site.h"

namespace dqme::harness {

class Workload {
 public:
  struct Config {
    enum class Mode { kClosed, kOpen };
    Mode mode = Mode::kClosed;
    Time cs_duration = 10;       // E
    bool exponential_cs = false; // E ~ Exp(cs_duration) instead of constant
    Time think_time = 0;         // closed loop: pause between CSs
    double arrival_rate = 1e-4;  // open loop: demands per tick per site
    // Optional per-site demand multipliers (open loop). Empty = uniform.
    // E.g. {8,1,1,...} makes site 0 a hotspot with 8x the demand.
    std::vector<double> site_weights;
    uint64_t seed = 7;
    // Closed loop: cap on CS executions per (site, lock) slot (0 =
    // unlimited). Used by tests that want bounded runs.
    uint64_t max_cs_per_site = 0;
    // Lock-table size; must match the sites' MutexSite::num_locks().
    LockId num_locks = 1;
    // Open loop, num_locks > 1: lock-popularity skew. Demand for lock k is
    // proportional to 1/(k+1)^zipf_skew; 0 = uniform.
    double zipf_skew = 0.0;
  };

  Workload(sim::Simulator& sim, std::vector<mutex::MutexSite*> sites,
           Config config, Metrics* metrics);

  // Begins issuing demand. Closed-loop start times are staggered uniformly
  // over one mean message delay to avoid lock-step artifacts.
  void start();

  // Stops creating demand; already-issued demands run to completion.
  void drain();

  // Stops driving a site (crash experiments). Its in-flight demand is
  // written off.
  void halt_site(SiteId id);

  uint64_t demands_issued() const { return demands_issued_; }
  uint64_t demands_completed() const { return demands_completed_; }
  uint64_t demands_aborted() const { return demands_aborted_; }
  // Demands issued but neither completed nor written off.
  uint64_t demands_outstanding() const {
    return demands_issued_ - demands_completed_ - demands_aborted_;
  }

 private:
  // One (site, lock) demand slot: at most one request open at a time.
  struct Slot {
    bool busy = false;           // a demand is requesting or in CS
    Time demanded = 0;           // current demand's arrival time
    Time requested = 0;
    std::deque<Time> backlog;    // open loop: queued demand arrival times
    uint64_t completed = 0;
  };
  struct SiteState {
    mutex::MutexSite* site = nullptr;
    bool halted = false;   // no further demand (crash or stall)
    bool crashed = false;  // halt_site: a held CS is never released
    std::vector<Slot> slots;  // indexed by LockId
  };

  Slot& slot(SiteId id, LockId lock) {
    return sites_[static_cast<size_t>(id)].slots[static_cast<size_t>(lock)];
  }

  void arrival(SiteId id);           // open loop Poisson process
  LockId pick_lock();                // Zipf draw (num_locks > 1 only)
  void issue(SiteId id, LockId lock, Time demanded);
  void entered(SiteId id, LockId lock);
  void exited(SiteId id, LockId lock);
  void aborted(SiteId id, LockId lock);
  void next_demand(SiteId id, LockId lock);  // after a completion
  Time sample_cs_duration();

  sim::Simulator& sim_;
  Config cfg_;
  Rng rng_;
  Metrics* metrics_;
  std::vector<SiteState> sites_;
  std::vector<double> lock_cdf_;  // Zipf CDF over LockIds (num_locks > 1)
  bool draining_ = false;
  uint64_t demands_issued_ = 0;
  uint64_t demands_completed_ = 0;
  uint64_t demands_aborted_ = 0;
};

}  // namespace dqme::harness
