// One-call experiment runner: builds simulator + network + quorum system +
// protocol sites + workload, runs warmup and a measurement window, then
// drains and checks liveness (every issued demand completed — Theorems 2/3
// checked empirically on every run).
#pragma once

#include <memory>
#include <string>

#include "core/cao_singhal.h"
#include "core/failure_detector.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "mutex/factory.h"
#include "obs/capture.h"
#include "obs/critpath.h"
#include "quorum/quorum_system.h"

namespace dqme::harness {

struct ExperimentConfig {
  mutex::Algo algo = mutex::Algo::kCaoSinghal;
  int n = 25;
  std::string quorum = "grid";

  // kClustered: sites split into `clusters` groups; intra-cluster delay is
  // mean_delay/5, cross-cluster is mean_delay (two-tier LAN/WAN).
  enum class DelayKind { kConstant, kUniform, kExponential, kClustered };
  DelayKind delay_kind = DelayKind::kConstant;
  Time mean_delay = 1000;  // the paper's T, in ticks
  int clusters = 4;        // for kClustered

  Workload::Config workload;

  Time warmup = 200'000;
  Time measure = 2'000'000;
  uint64_t seed = 1;

  mutex::AlgoOptions options;

  // Lock piggybacking window in ticks (net::Network::set_lock_piggyback):
  // staged messages for different locks to the same destination within the
  // window share one wire flight. Negative (default) leaves piggybacking
  // off, which keeps single-lock runs byte-identical to their goldens.
  Time lock_piggyback_window = -1;

  // Fault injection (§6 / E7): sites crashed at given instants. Detection
  // notices reach every live site detection_latency (+ jitter) later.
  struct Crash {
    Time at;
    SiteId victim;
  };
  std::vector<Crash> crashes;
  Time detection_latency = 2000;
  Time detection_jitter = 500;

  // Attach the independent per-arbiter permission auditor (quorum
  // algorithms, crash-free runs only — the auditor is not crash-aware).
  bool audit_permissions = false;

  // Attach the online invariant checker (obs::InvariantChecker): safety,
  // transfer-obligation conservation, FIFO, and the liveness watchdog run
  // alongside the protocol; violations land in invariant_* below and fail
  // SweepRunner integrity checks. Crash-aware, so it composes with
  // `crashes` where audit_permissions does not.
  bool check_invariants = false;
  // Watchdog bound in ticks; 0 picks one from the run's scale (generous
  // enough that the longest legal saturated wait stays quiet).
  Time liveness_bound = 0;

  // Observability capture (src/obs): when set, the run records every
  // control message and span edge into *capture. Single-run only —
  // SweepRunner rejects a shared capture across multiple configs. Null
  // (the default) installs no hooks.
  obs::RunCapture* capture = nullptr;

  // Time-resolved telemetry (obs::Timeline): window width in ticks; <= 0
  // (the default) disables it — no hooks, no sampler events, zero hot-path
  // cost. When enabled the result carries per-window series (throughput,
  // waiting-time quantiles, wire/control traffic, piggyback pack ratio)
  // plus crash/recovery markers, with windows anchored at tick 0 so crash
  // instants line up across runs.
  Time timeline_window = 0;

  // Per-lock hot-set tracking (obs::LockStats): capacity of the SpaceSaving
  // tracker (exact per-lock table while distinct locks <= k). 0 (default)
  // disables it.
  int lock_stats_k = 0;

  // Causal critical-path attribution (src/obs/critpath): attaches a
  // SpanRecorder, reconstructs each measurement-window request's critical
  // path after the run, and aggregates the delay budget into
  // result.critpath (plus critpath.* registry keys). Off (default) = no
  // hooks installed, zero hot-path cost.
  bool critpath = false;
  size_t critpath_capacity = 1'000'000;

  // Black-box flight recorder (obs::FlightRecorder): when non-empty, the
  // run keeps a ring of the last flight_recorder_capacity protocol events
  // and auto-dumps them to this path (Chrome-trace JSON) on the first
  // invariant violation. Requires check_invariants — the recorder is fed
  // through the checker so scripted and wire traffic look the same.
  std::string flight_recorder_dump;
  size_t flight_recorder_capacity = 4096;
};

struct ExperimentResult {
  Summary summary;
  double mean_quorum_size = 1;  // the paper's K (1 for non-quorum algos)
  // Liveness: after draining, did every issued demand complete (or get
  // written off by a crash)?
  bool drained_clean = false;
  uint64_t demands_issued = 0;
  uint64_t demands_completed = 0;
  uint64_t demands_aborted = 0;
  uint64_t stale_drops = 0;  // across all sites
  core::CaoSinghalSite::CaseStats case_stats;          // Cao-Singhal only
  core::CaoSinghalSite::ProtocolStats protocol_stats;  // Cao-Singhal only

  // Convenience: synchronization delay in units of T.
  double sync_delay_in_t = 0;

  // Permission-auditor results (when ExperimentConfig::audit_permissions).
  uint64_t permission_violations = 0;
  uint64_t permission_grants_audited = 0;

  // Invariant-checker results (when ExperimentConfig::check_invariants).
  // reports holds up to 16 human-readable violation descriptions.
  uint64_t invariant_violations = 0;
  uint64_t invariant_checks = 0;
  std::vector<std::string> invariant_reports;

  // Engine accounting (not a paper metric): simulator events executed and
  // host wall-clock spent by this run — the denominators of the perf
  // trajectory tracked by bench/micro_core and the BENCH_*.json files.
  uint64_t sim_events = 0;
  double wall_ms = 0;

  // Per-run metrics registry: measurement-window histograms ("waiting",
  // "sync_gap"), cs.completed, and end-of-run engine counters (sim.*,
  // net.*). Fold replications together with harness::merge_registries().
  obs::Registry registry;

  // Windowed series (cfg.timeline_window > 0; disabled and empty
  // otherwise). Fold replications with Timeline::merge in result-index
  // order — same determinism contract as the registry.
  obs::Timeline timeline;

  // Per-lock hot-set tracker (cfg.lock_stats_k > 0; disabled otherwise).
  obs::LockStats lock_stats;

  // Critical-path delay budget (cfg.critpath; disabled otherwise). Fold
  // replications with CritStats::merge in result-index order.
  obs::CritStats critpath;
};

ExperimentResult run_experiment(const ExperimentConfig& cfg);

// Mean and sample standard deviation of a metric across replications.
struct Replicated {
  double mean = 0;
  double sd = 0;
};

// Runs `cfg` under `replications` different seeds (cfg.seed, cfg.seed+1,
// ...) on `jobs` worker threads (see harness/sweep.h) and returns every
// run's full ExperimentResult, in seed order regardless of `jobs` — feed
// the vector to aggregate() once per metric instead of re-running. Every
// run is still checked: a safety violation or unclean drain in ANY
// replication throws.
std::vector<ExperimentResult> replicate(const ExperimentConfig& cfg,
                                        int replications, int jobs = 1);

// Deprecated shim (pre-SweepRunner API): one metric, aggregated. Equivalent
// to aggregate(replicate(cfg, replications), metric); new code should call
// those directly so one sweep can feed many metrics.
Replicated replicate(const ExperimentConfig& cfg, int replications,
                     const std::function<double(const ExperimentResult&)>&
                         metric);

}  // namespace dqme::harness
