#include "harness/workload.h"

#include <algorithm>
#include <cmath>

namespace dqme::harness {

Workload::Workload(sim::Simulator& sim, std::vector<mutex::MutexSite*> sites,
                   Config config, Metrics* metrics)
    : sim_(sim), cfg_(config), rng_(config.seed), metrics_(metrics) {
  DQME_CHECK(!sites.empty());
  DQME_CHECK(cfg_.num_locks >= 1);
  sites_.resize(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    SiteState& st = sites_[i];
    st.site = sites[i];
    DQME_CHECK(st.site->id() == static_cast<SiteId>(i));
    DQME_CHECK_MSG(st.site->num_locks() == cfg_.num_locks,
                   "workload num_locks " << cfg_.num_locks
                                         << " != site lock table "
                                         << st.site->num_locks());
    st.slots.resize(static_cast<size_t>(cfg_.num_locks));
    st.site->on_enter = [this](SiteId id, LockId lock) { entered(id, lock); };
    st.site->on_abort = [this](SiteId id, LockId lock) { aborted(id, lock); };
  }
  if (cfg_.num_locks > 1) {
    // Zipf CDF over LockIds: weight(k) = 1/(k+1)^s, precomputed once so a
    // draw is one uniform real plus a binary search.
    lock_cdf_.resize(static_cast<size_t>(cfg_.num_locks));
    double acc = 0;
    for (LockId k = 0; k < cfg_.num_locks; ++k) {
      acc += std::pow(static_cast<double>(k + 1), -cfg_.zipf_skew);
      lock_cdf_[static_cast<size_t>(k)] = acc;
    }
    for (double& c : lock_cdf_) c /= acc;
  }
}

Time Workload::sample_cs_duration() {
  if (cfg_.cs_duration <= 0) return 0;
  return cfg_.exponential_cs ? rng_.exponential_time(cfg_.cs_duration)
                             : cfg_.cs_duration;
}

LockId Workload::pick_lock() {
  if (cfg_.num_locks == 1) return kLock0;
  const double u = rng_.uniform_real(0.0, 1.0);
  const auto it = std::upper_bound(lock_cdf_.begin(), lock_cdf_.end(), u);
  const auto idx = std::min<size_t>(
      static_cast<size_t>(it - lock_cdf_.begin()),
      lock_cdf_.size() - 1);
  return static_cast<LockId>(idx);
}

void Workload::start() {
  for (size_t i = 0; i < sites_.size(); ++i) {
    const SiteId id = static_cast<SiteId>(i);
    if (cfg_.mode == Config::Mode::kClosed) {
      // Site-major, lock-minor stagger draws: with num_locks == 1 the draw
      // sequence (one per site) is exactly the single-lock workload's.
      for (LockId lock = 0; lock < cfg_.num_locks; ++lock) {
        const Time stagger = rng_.uniform_int(0, 100);
        sim_.schedule_after(stagger, [this, id, lock] {
          if (!draining_ && !sites_[static_cast<size_t>(id)].halted)
            issue(id, lock, sim_.now());
        });
      }
    } else {
      arrival(id);
    }
  }
}

void Workload::drain() { draining_ = true; }

void Workload::halt_site(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  if (st.halted) return;
  st.halted = true;
  st.crashed = true;
  if (metrics_ != nullptr) metrics_->on_crash(id);
  // The in-flight demands and the backlogs will never complete; write them
  // off so liveness accounting stays exact.
  for (Slot& sl : st.slots) {
    if (sl.busy) {
      ++demands_aborted_;
      sl.busy = false;
    }
    demands_aborted_ += sl.backlog.size();
    sl.backlog.clear();
  }
}

void Workload::arrival(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  if (st.halted || draining_) return;
  double rate = cfg_.arrival_rate;
  if (!cfg_.site_weights.empty()) {
    DQME_CHECK(cfg_.site_weights.size() == sites_.size());
    rate *= cfg_.site_weights[static_cast<size_t>(id)];
    if (rate <= 0) return;  // weight 0: this site never demands the CS
  }
  const Time gap = rng_.exponential_time(static_cast<Time>(1.0 / rate));
  sim_.schedule_after(gap, [this, id] {
    SiteState& s = sites_[static_cast<size_t>(id)];
    if (s.halted || draining_) return;
    // The lock draw happens only with a real lock table (num_locks > 1),
    // so single-lock runs consume the exact historical rng_ sequence.
    const LockId lock = pick_lock();
    Slot& sl = slot(id, lock);
    if (sl.busy)
      sl.backlog.push_back(sim_.now());
    else
      issue(id, lock, sim_.now());
    arrival(id);
  });
}

void Workload::issue(SiteId id, LockId lock, Time demanded) {
  Slot& sl = slot(id, lock);
  DQME_CHECK(!sl.busy);
  sl.busy = true;
  sl.demanded = demanded;
  sl.requested = sim_.now();
  ++demands_issued_;
  sites_[static_cast<size_t>(id)].site->request_cs(lock);
}

void Workload::entered(SiteId id, LockId lock) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  Slot& sl = slot(id, lock);
  if (metrics_ != nullptr)
    metrics_->on_enter(id, lock, sim_.now(), sl.demanded, sl.requested,
                       st.site->last_entry_hops(lock));
  const Time hold = sample_cs_duration();
  sim_.schedule_after(hold, [this, id, lock] {
    SiteState& s = sites_[static_cast<size_t>(id)];
    if (s.crashed) return;  // crashed while in CS: the release never happens
    if (metrics_ != nullptr) metrics_->on_exit(id, lock, sim_.now());
    s.site->release_cs(lock);
    exited(id, lock);
  });
}

void Workload::exited(SiteId id, LockId lock) {
  Slot& sl = slot(id, lock);
  sl.busy = false;
  ++demands_completed_;
  ++sl.completed;
  next_demand(id, lock);
}

void Workload::aborted(SiteId id, LockId lock) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  Slot& sl = slot(id, lock);
  DQME_CHECK(sl.busy);
  sl.busy = false;
  ++demands_aborted_;
  // A stalled site (no quorum available) gets no further demand, on any
  // lock — §6 liveness is a property of the site's peer set. Locks whose
  // requests are still viable finish (exited() tolerates halted); locks
  // that stalled too deliver their own abort. Backlogged demands will
  // never be issued: write them off now.
  st.halted = true;
  for (Slot& other : st.slots) {
    demands_aborted_ += other.backlog.size();
    other.backlog.clear();
  }
}

void Workload::next_demand(SiteId id, LockId lock) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  if (st.halted) return;
  if (cfg_.mode == Config::Mode::kClosed) {
    if (draining_) return;
    if (cfg_.max_cs_per_site > 0 &&
        slot(id, lock).completed >= cfg_.max_cs_per_site)
      return;
    if (cfg_.think_time > 0) {
      sim_.schedule_after(cfg_.think_time, [this, id, lock] {
        SiteState& s = sites_[static_cast<size_t>(id)];
        if (!draining_ && !s.halted && !slot(id, lock).busy)
          issue(id, lock, sim_.now());
      });
    } else {
      // Re-request from a fresh event, not from inside release_cs().
      sim_.schedule_after(0, [this, id, lock] {
        SiteState& s = sites_[static_cast<size_t>(id)];
        if (!draining_ && !s.halted && !slot(id, lock).busy)
          issue(id, lock, sim_.now());
      });
    }
  } else if (!slot(id, lock).backlog.empty()) {
    Slot& sl = slot(id, lock);
    const Time demanded = sl.backlog.front();
    sl.backlog.pop_front();
    sim_.schedule_after(0, [this, id, lock, demanded] {
      SiteState& s = sites_[static_cast<size_t>(id)];
      if (!s.halted && !slot(id, lock).busy) issue(id, lock, demanded);
    });
  }
}

}  // namespace dqme::harness
