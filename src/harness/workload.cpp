#include "harness/workload.h"

namespace dqme::harness {

Workload::Workload(sim::Simulator& sim, std::vector<mutex::MutexSite*> sites,
                   Config config, Metrics* metrics)
    : sim_(sim), cfg_(config), rng_(config.seed), metrics_(metrics) {
  DQME_CHECK(!sites.empty());
  sites_.resize(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    SiteState& st = sites_[i];
    st.site = sites[i];
    DQME_CHECK(st.site->id() == static_cast<SiteId>(i));
    st.site->on_enter = [this](SiteId id) { entered(id); };
    st.site->on_abort = [this](SiteId id) { aborted(id); };
  }
}

Time Workload::sample_cs_duration() {
  if (cfg_.cs_duration <= 0) return 0;
  return cfg_.exponential_cs ? rng_.exponential_time(cfg_.cs_duration)
                             : cfg_.cs_duration;
}

void Workload::start() {
  for (size_t i = 0; i < sites_.size(); ++i) {
    const SiteId id = static_cast<SiteId>(i);
    if (cfg_.mode == Config::Mode::kClosed) {
      const Time stagger = rng_.uniform_int(0, 100);
      sim_.schedule_after(stagger, [this, id] {
        if (!draining_ && !sites_[static_cast<size_t>(id)].halted)
          issue(id, sim_.now());
      });
    } else {
      arrival(id);
    }
  }
}

void Workload::drain() { draining_ = true; }

void Workload::halt_site(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  if (st.halted) return;
  st.halted = true;
  if (metrics_ != nullptr && st.site->in_cs()) metrics_->on_crash(id);
  // The in-flight demand and the backlog will never complete; write them
  // off so liveness accounting stays exact.
  if (st.busy) {
    ++demands_aborted_;
    st.busy = false;
  }
  demands_aborted_ += st.backlog.size();
  st.backlog.clear();
}

void Workload::arrival(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  if (st.halted || draining_) return;
  double rate = cfg_.arrival_rate;
  if (!cfg_.site_weights.empty()) {
    DQME_CHECK(cfg_.site_weights.size() == sites_.size());
    rate *= cfg_.site_weights[static_cast<size_t>(id)];
    if (rate <= 0) return;  // weight 0: this site never demands the CS
  }
  const Time gap = rng_.exponential_time(static_cast<Time>(1.0 / rate));
  sim_.schedule_after(gap, [this, id] {
    SiteState& s = sites_[static_cast<size_t>(id)];
    if (s.halted || draining_) return;
    if (s.busy)
      s.backlog.push_back(sim_.now());
    else
      issue(id, sim_.now());
    arrival(id);
  });
}

void Workload::issue(SiteId id, Time demanded) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  DQME_CHECK(!st.busy);
  st.busy = true;
  st.demanded = demanded;
  st.requested = sim_.now();
  ++demands_issued_;
  st.site->request_cs();
}

void Workload::entered(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  if (metrics_ != nullptr)
    metrics_->on_enter(id, sim_.now(), st.demanded, st.requested,
                       st.site->last_entry_hops());
  const Time hold = sample_cs_duration();
  sim_.schedule_after(hold, [this, id] {
    SiteState& s = sites_[static_cast<size_t>(id)];
    if (s.halted) return;  // crashed while in CS: the release never happens
    if (metrics_ != nullptr) metrics_->on_exit(id, sim_.now());
    s.site->release_cs();
    exited(id);
  });
}

void Workload::exited(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  st.busy = false;
  ++demands_completed_;
  ++st.completed;
  next_demand(id);
}

void Workload::aborted(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  DQME_CHECK(st.busy);
  st.busy = false;
  ++demands_aborted_;
  // A stalled site (no quorum available) gets no further demand.
  st.halted = true;
  demands_aborted_ += st.backlog.size();
  st.backlog.clear();
}

void Workload::next_demand(SiteId id) {
  SiteState& st = sites_[static_cast<size_t>(id)];
  if (st.halted) return;
  if (cfg_.mode == Config::Mode::kClosed) {
    if (draining_) return;
    if (cfg_.max_cs_per_site > 0 && st.completed >= cfg_.max_cs_per_site)
      return;
    if (cfg_.think_time > 0) {
      sim_.schedule_after(cfg_.think_time, [this, id] {
        SiteState& s = sites_[static_cast<size_t>(id)];
        if (!draining_ && !s.halted && !s.busy) issue(id, sim_.now());
      });
    } else {
      // Re-request from a fresh event, not from inside release_cs().
      sim_.schedule_after(0, [this, id] {
        SiteState& s = sites_[static_cast<size_t>(id)];
        if (!draining_ && !s.halted && !s.busy) issue(id, sim_.now());
      });
    }
  } else if (!st.backlog.empty()) {
    const Time demanded = st.backlog.front();
    st.backlog.pop_front();
    sim_.schedule_after(0, [this, id, demanded] {
      SiteState& s = sites_[static_cast<size_t>(id)];
      if (!s.halted && !s.busy) issue(id, demanded);
    });
  }
}

}  // namespace dqme::harness
