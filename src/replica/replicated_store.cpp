#include "replica/replicated_store.h"

#include <algorithm>

namespace dqme::replica {

using net::Message;
using net::MsgType;

ReplicaNode::ReplicaNode(SiteId id, net::Network& net,
                         const quorum::QuorumSystem& quorums,
                         core::CaoSinghalSite::Options mutex_options)
    : id_(id),
      net_(net),
      quorums_(quorums),
      mutex_(id, net, quorums, mutex_options),
      fault_tolerant_(mutex_options.fault_tolerant),
      alive_(static_cast<size_t>(net.size()), true) {
  mutex_.on_enter = [this](SiteId, LockId) {
    DQME_CHECK(phase_ == Phase::kAcquiring);
    begin_read_phase();
  };
  mutex_.on_abort = [this](SiteId, LockId) {
    // No quorum can be formed: fail the op (version -1) and stop.
    DQME_CHECK(!queue_.empty());
    Op op = std::move(queue_.front());
    queue_.pop_front();
    phase_ = Phase::kIdle;
    if (op.is_write && op.write_done) op.write_done(-1);
    if (!op.is_write && op.read_done) op.read_done(Versioned{0, -1});
  };
}

std::optional<Versioned> ReplicaNode::local_get(int64_t key) const {
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

void ReplicaNode::write(int64_t key, int64_t value, WriteCallback done) {
  Op op;
  op.is_write = true;
  op.key = key;
  op.value = value;
  op.write_done = std::move(done);
  queue_.push_back(std::move(op));
  if (phase_ == Phase::kIdle) start_next_op();
}

void ReplicaNode::update(int64_t key, Updater fn, WriteCallback done) {
  DQME_CHECK(fn != nullptr);
  Op op;
  op.is_write = true;
  op.key = key;
  op.updater = std::move(fn);
  op.write_done = std::move(done);
  queue_.push_back(std::move(op));
  if (phase_ == Phase::kIdle) start_next_op();
}

void ReplicaNode::read(int64_t key, ReadCallback done) {
  Op op;
  op.key = key;
  op.read_done = std::move(done);
  queue_.push_back(std::move(op));
  if (phase_ == Phase::kIdle) start_next_op();
}

void ReplicaNode::start_next_op() {
  DQME_CHECK(phase_ == Phase::kIdle);
  if (queue_.empty()) return;
  if (queue_.front().is_write) {
    // Writers serialize through the paper's mutual exclusion algorithm.
    phase_ = Phase::kAcquiring;
    mutex_.request_cs(kLock0);
  } else {
    begin_read_phase();
  }
}

void ReplicaNode::begin_read_phase() {
  const Op& op = queue_.front();
  auto q = fault_tolerant_ ? quorums_.quorum_for_alive(id_, alive_)
                           : std::optional<quorum::Quorum>(
                                 quorums_.quorum_for(id_));
  if (!q) {
    // Mirror the §6 "inaccessible" outcome for data quorums.
    if (mutex_.in_cs()) mutex_.release_cs(kLock0);
    Op failed = std::move(queue_.front());
    queue_.pop_front();
    phase_ = Phase::kIdle;
    if (failed.is_write && failed.write_done) failed.write_done(-1);
    if (!failed.is_write && failed.read_done)
      failed.read_done(Versioned{0, -1});
    start_next_op();
    return;
  }
  phase_ = Phase::kReading;
  op_quorum_ = *q;
  op_replies_.clear();
  op_best_ = Versioned{};
  ++op_id_;
  for (SiteId s : op_quorum_) {
    Message m;
    m.type = MsgType::kRead;
    m.seq = op_id_;
    net_.attach_kv(m).key = op.key;
    net_.send(id_, s, m);
  }
}

void ReplicaNode::serve_read(const Message& m) {
  // Copy the request's kv out first: attach_kv below may grow the payload
  // slab and would invalidate a reference into it.
  const net::KvFields req = net_.read_kv(m);
  Message reply;
  reply.type = MsgType::kReadReply;
  reply.seq = m.seq;
  net::KvFields& kv = net_.attach_kv(reply);
  kv.key = req.key;
  if (auto v = local_get(req.key)) {
    kv.value = v->value;
    kv.version = v->version;
  }
  net_.send(id_, m.src, reply);
}

void ReplicaNode::serve_write(const Message& m) {
  const net::KvFields req = net_.read_kv(m);
  Versioned& slot = store_[req.key];
  // Last-writer-wins on version; equal versions denote idempotent
  // retransmits of the same CS-serialized write.
  if (req.version > slot.version) slot = Versioned{req.value, req.version};
  Message ack;
  ack.type = MsgType::kWriteAck;
  ack.seq = m.seq;
  net::KvFields& kv = net_.attach_kv(ack);
  kv.key = req.key;
  kv.version = req.version;
  net_.send(id_, m.src, ack);
}

void ReplicaNode::on_read_reply(const Message& m) {
  if (phase_ != Phase::kReading || m.seq != op_id_) {
    ++stats_.stale_replies;
    return;
  }
  const net::KvFields kv = net_.read_kv(m);
  op_replies_.emplace(m.src, Versioned{kv.value, kv.version});
  if (kv.version > op_best_.version)
    op_best_ = Versioned{kv.value, kv.version};
  if (op_replies_.size() < op_quorum_.size()) return;

  Op& op = queue_.front();
  if (!op.is_write) {
    finish_op();
    return;
  }
  // WRITE phase: install value with the next version at the quorum.
  if (op.updater) op.value = op.updater(op_best_.version > 0 ? op_best_.value : 0);
  phase_ = Phase::kWriting;
  op_replies_.clear();
  ++op_id_;
  for (SiteId s : op_quorum_) {
    Message m2;
    m2.type = MsgType::kWrite;
    m2.seq = op_id_;
    net::KvFields& kv = net_.attach_kv(m2);
    kv.key = op.key;
    kv.value = op.value;
    kv.version = op_best_.version + 1;
    net_.send(id_, s, m2);
  }
}

void ReplicaNode::on_write_ack(const Message& m) {
  if (phase_ != Phase::kWriting || m.seq != op_id_) {
    ++stats_.stale_replies;
    return;
  }
  op_replies_.emplace(m.src, Versioned{});
  if (op_replies_.size() < op_quorum_.size()) return;
  finish_op();
}

void ReplicaNode::finish_op() {
  Op op = std::move(queue_.front());
  queue_.pop_front();
  phase_ = Phase::kIdle;
  if (op.is_write) {
    DQME_CHECK(mutex_.in_cs());
    mutex_.release_cs(kLock0);
    ++stats_.writes_completed;
    const int64_t committed = op_best_.version + 1;
    if (op.write_done) op.write_done(committed);
  } else {
    ++stats_.reads_completed;
    if (op.read_done) op.read_done(op_best_);
  }
  start_next_op();
}

void ReplicaNode::handle_crash(SiteId victim) {
  if (!alive_[static_cast<size_t>(victim)]) return;
  alive_[static_cast<size_t>(victim)] = false;
  if (!fault_tolerant_) return;
  // Restart an in-flight quorum phase if it was waiting on the victim.
  const bool awaiting =
      (phase_ == Phase::kReading || phase_ == Phase::kWriting) &&
      std::find(op_quorum_.begin(), op_quorum_.end(), victim) !=
          op_quorum_.end() &&
      !op_replies_.contains(victim);
  if (awaiting) {
    ++stats_.op_restarts;
    // Re-run from the READ phase: versions may have moved and the quorum
    // must be re-formed from live sites. Idempotent for writes (the
    // version comparison in serve_write absorbs retransmits).
    begin_read_phase();
  }
}

void ReplicaNode::on_message(const Message& m, LockId lock) {
  switch (m.type) {
    case MsgType::kRead:      serve_read(m);     return;
    case MsgType::kWrite:     serve_write(m);    return;
    case MsgType::kReadReply: on_read_reply(m);  return;
    case MsgType::kWriteAck:  on_write_ack(m);   return;
    case MsgType::kFailureNotice:
      handle_crash(m.arbiter);
      mutex_.on_message(m, lock);  // the mutex layer scrubs its own state
      return;
    default:
      mutex_.on_message(m, lock);
      return;
  }
}

}  // namespace dqme::replica
