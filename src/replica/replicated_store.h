// Quorum-based replica control on top of the delay-optimal mutual
// exclusion algorithm — the paper's §7 extension: "the proposed idea can
// be used in replicated data management, as long as the quorum being used
// supports replica control."
//
// Every site holds a full replica of a keyed, versioned store. Protocols
// (Gifford-style, with the mutex serializing writers):
//
//   write(k, v): acquire the distributed CS  (writers are totally ordered)
//                -> READ phase: collect versions of k from a quorum
//                -> WRITE phase: install (v, max_version+1) at a quorum
//                -> release the CS, complete.
//   read(k):     collect (value, version) of k from a quorum, return the
//                highest-versioned copy. No CS needed: any quorum
//                intersects every write quorum (paper §2), so a read that
//                does not race a write returns the latest committed value
//                (regular-register semantics).
//
// With AlgoOptions::fault_tolerant and a failure-adaptive construction
// (tree/majority/grid-set/RST), in-flight operations re-form their quorum
// when a member crashes — same views-intersect argument as §6.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "quorum/quorum_system.h"

namespace dqme::replica {

// One committed copy of a key.
struct Versioned {
  int64_t value = 0;
  int64_t version = 0;  // 0 = never written

  friend bool operator==(const Versioned&, const Versioned&) = default;
};

struct StoreStats {
  uint64_t writes_completed = 0;
  uint64_t reads_completed = 0;
  uint64_t op_restarts = 0;  // quorum re-formed after a member crashed
  uint64_t stale_replies = 0;
};

class ReplicaNode final : public net::NetSite {
 public:
  using WriteCallback = std::function<void(int64_t version)>;
  using ReadCallback = std::function<void(Versioned)>;

  ReplicaNode(SiteId id, net::Network& net,
              const quorum::QuorumSystem& quorums,
              core::CaoSinghalSite::Options mutex_options = {});

  SiteId id() const { return id_; }

  // Asynchronous API. Operations issued while another is in flight queue
  // locally and run in order. Callbacks fire from simulator events.
  void write(int64_t key, int64_t value, WriteCallback done);
  void read(int64_t key, ReadCallback done);

  // Atomic read-modify-write: `fn` maps the latest committed value (0 if
  // unwritten) to the new value, evaluated inside the CS between the read
  // and write phases — so concurrent updates never lose increments.
  using Updater = std::function<int64_t(int64_t)>;
  void update(int64_t key, Updater fn, WriteCallback done);

  // Direct access to this replica's local copy (tests, debugging).
  std::optional<Versioned> local_get(int64_t key) const;

  const StoreStats& stats() const { return stats_; }
  bool stalled() const { return mutex_.stalled(); }

  void on_message(const net::Message& m, LockId lock) override;

 private:
  enum class Phase { kIdle, kAcquiring, kReading, kWriting };
  struct Op {
    bool is_write = false;
    int64_t key = 0;
    int64_t value = 0;
    Updater updater;  // non-null: value is computed from the read phase
    WriteCallback write_done;
    ReadCallback read_done;
  };

  // Server side: answer quorum-phase messages against the local store.
  void serve_read(const net::Message& m);
  void serve_write(const net::Message& m);

  // Client side: the currently executing operation's state machine.
  void start_next_op();
  void begin_read_phase();
  void on_read_reply(const net::Message& m);
  void on_write_ack(const net::Message& m);
  void finish_op();
  void handle_crash(SiteId victim);

  SiteId id_;
  net::Network& net_;
  const quorum::QuorumSystem& quorums_;
  core::CaoSinghalSite mutex_;
  bool fault_tolerant_;

  std::map<int64_t, Versioned> store_;
  std::vector<bool> alive_;

  std::deque<Op> queue_;
  Phase phase_ = Phase::kIdle;
  SeqNum op_id_ = 0;             // tags quorum-phase messages
  std::vector<SiteId> op_quorum_;
  std::map<SiteId, Versioned> op_replies_;
  Versioned op_best_;            // highest version seen in the read phase

  StoreStats stats_;
};

}  // namespace dqme::replica
