// Time-resolved telemetry: fixed-window series keyed off sim ticks.
//
// A Timeline is the time-resolved sibling of Registry: where the registry
// reports one aggregate per run, the timeline buckets the same observations
// into fixed-width windows of simulated time, so transients — the §6
// recovery trajectory after an arbiter crash, a hot-lock convoy forming
// under Zipf load — are visible instead of averaged away.
//
// Three series kinds, mirroring the registry's merge contract so a sweep's
// timelines fold together deterministically in result-index order
// (byte-identical JSON for any --jobs value):
//
//   * counter series — per-window uint64 sums; merge adds window-wise,
//   * gauge series   — one double per window (last write wins within a
//     run); merge keeps the window-wise maximum,
//   * sketch series  — one fixed-spec obs::Histogram per window (the
//     registry's log2 bucketing), so waiting-time percentiles exist *per
//     window*; merge is bucket-wise per window, same-spec only.
//
// Markers annotate instants (crashes, recoveries): merge is set-union,
// serialized sorted by (at, label).
//
// Cost model, same as Registry: series handles resolve once at bind time
// (a map lookup), after which record() is an index computation plus one
// add. A run that does not bind a timeline executes no timeline code at
// all — ExperimentConfig::timeline_window <= 0 leaves every hook null.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "obs/registry.h"

namespace dqme::obs {

class Timeline {
 public:
  // Counter series: per-window sums. Windows materialize densely on first
  // touch, so the vector index IS the window index.
  class Counter {
   public:
    void record(Time at, uint64_t delta = 1) {
      const size_t w = owner_->window_index(at);
      if (w >= sums_.size()) sums_.resize(w + 1, 0);
      sums_[w] += delta;
    }
    const std::vector<uint64_t>& windows() const { return sums_; }

   private:
    friend class Timeline;
    Timeline* owner_ = nullptr;
    std::vector<uint64_t> sums_;
  };

  // Gauge series: one double per window; within a run the last write to a
  // window wins (samplers write each window once), across runs merge keeps
  // the maximum — the Registry gauge contract, windowed.
  class Gauge {
   public:
    void record(Time at, double v) {
      const size_t w = owner_->window_index(at);
      if (w >= vals_.size()) vals_.resize(w + 1, 0.0);
      vals_[w] = v;
    }
    const std::vector<double>& windows() const { return vals_; }

   private:
    friend class Timeline;
    Timeline* owner_ = nullptr;
    std::vector<double> vals_;
  };

  // Sketch series: a fixed-spec log2 Histogram per window, so heavy-tailed
  // quantities (waiting time across a crash) keep per-window percentiles.
  class Sketch {
   public:
    void record(Time at, double v) {
      const size_t w = owner_->window_index(at);
      if (w >= hists_.size()) hists_.resize(w + 1, Histogram::log2(lo_, buckets_));
      hists_[w].record(v);
    }
    const std::vector<Histogram>& windows() const { return hists_; }
    double lo() const { return lo_; }
    size_t buckets() const { return buckets_; }

   private:
    friend class Timeline;
    Timeline* owner_ = nullptr;
    double lo_ = 1;
    size_t buckets_ = 36;
    std::vector<Histogram> hists_;
  };

  struct Marker {
    Time at = 0;
    std::string label;
    bool operator<(const Marker& o) const {
      return at != o.at ? at < o.at : label < o.label;
    }
    bool operator==(const Marker& o) const {
      return at == o.at && label == o.label;
    }
  };

  // Default-constructed timelines are disabled: every accessor below is a
  // CHECK failure, enabled() is false, merge() treats them as empty.
  Timeline() = default;
  Timeline(Time origin, Time window) : origin_(origin), window_(window) {
    DQME_CHECK_MSG(window > 0, "timeline window must be positive");
  }

  bool enabled() const { return window_ > 0; }
  Time origin() const { return origin_; }
  Time window() const { return window_; }

  // Find-or-create, Registry-style: resolve once, record forever. The
  // returned reference stays valid for the Timeline's lifetime (node-based
  // map storage) — but NOT across merge() into another timeline.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // Sketch spec (log2 histogram: lo, bucket count) is part of the series
  // identity; re-declaring with another spec is a CHECK failure.
  Sketch& sketch(std::string_view name, double lo, size_t buckets);

  // Lookup without creation; nullptr when absent (Registry's find_* idiom).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Sketch* find_sketch(std::string_view name) const;

  void mark(std::string_view label, Time at);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && sketches_.empty() &&
           markers_.empty();
  }
  // Largest window index touched by any series, plus one (0 when empty).
  size_t num_windows() const;
  const std::vector<Marker>& markers() const { return markers_; }

  // Deterministic fold: same (origin, window) spec required; counters add
  // window-wise, gauges keep the window-wise max, sketches merge bucket-
  // wise, markers union. Merging an enabled timeline into a disabled one
  // adopts the spec; merging a disabled one is a no-op.
  void merge(const Timeline& other);

  // One JSON object, one line per series (so line-oriented consumers —
  // dqme_trace --timeline — need no JSON library):
  //   {"origin": O, "window": W, "windows": K,
  //    "counters": {name: [..K sums..], ...},
  //    "gauges": {name: [..K values..], ...},
  //    "sketches": {name: {"lo": .., "buckets": .., "count": [..],
  //                        "p50": [..], "p95": [..], "p99": [..],
  //                        "p999": [..]}, ...},
  //    "markers": [{"at": T, "label": "..."}, ...]}
  // Every array is padded to the common `windows` length; keys iterate in
  // sorted order — deterministic output.
  void write_json(std::ostream& os) const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Sketch;

  // Windows are half-open [origin + k*W, origin + (k+1)*W); observations
  // before the origin clamp into window 0 (crash markers scheduled before
  // the measurement origin stay visible instead of trapping).
  size_t window_index(Time at) const {
    DQME_CHECK(enabled());
    if (at <= origin_) return 0;
    return static_cast<size_t>((at - origin_) / window_);
  }

  Time origin_ = 0;
  Time window_ = 0;  // <= 0: disabled
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Sketch, std::less<>> sketches_;
  std::vector<Marker> markers_;
};

}  // namespace dqme::obs
