#include "obs/critpath.h"

#include <algorithm>
#include <cstdio>

namespace dqme::obs {

namespace {

// A reconstruction that walks more than this many cause links is cut and
// the remainder attributed to kOther. Cause indices strictly decrease
// along a chain (an event's cause was recorded before it), so cycles are
// impossible; this only bounds pathological hop counts.
constexpr int kMaxChainSteps = 128;

struct Key {  // (lock, span) — span ids alone collide across locks
  LockId lock;
  SpanId span;
  bool operator<(const Key& o) const {
    return lock != o.lock ? lock < o.lock : span < o.span;
  }
};

bool is_wire(SpanEdge e) {
  switch (e) {
    case SpanEdge::kRequest:
    case SpanEdge::kGrant:
    case SpanEdge::kProxyGrant:
    case SpanEdge::kFail:
    case SpanEdge::kInquire:
    case SpanEdge::kYield:
    case SpanEdge::kTransfer:
    case SpanEdge::kRelease:
    case SpanEdge::kTokenReq:
    case SpanEdge::kToken:
      return true;
    default:
      return false;
  }
}

std::string in_t(Time ticks, Time mean_delay) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f",
                static_cast<double>(ticks) / static_cast<double>(mean_delay));
  return buf;
}

}  // namespace

std::string_view to_string(CritBucket b) {
  switch (b) {
    case CritBucket::kWire:   return "wire";
    case CritBucket::kQueue:  return "queue";
    case CritBucket::kHolder: return "holder";
    case CritBucket::kProxy:  return "proxy";
    case CritBucket::kOther:  return "other";
  }
  return "unknown";
}

Time CritPath::in_bucket(CritBucket b) const {
  Time t = 0;
  for (const CritSegment& s : segments)
    if (s.bucket == b) t += s.duration();
  return t;
}

namespace {

// Walks the cause chain backwards from one kEnter event, consuming
// [issued, entered] from the top down. `consume` clips monotonically, so
// the emitted segments always tile the interval exactly — conservation is
// structural, not a property the chain has to earn.
CritPath build_path(const std::vector<SpanEvent>& ev, int32_t enter_idx,
                    Time issued, const std::map<Key, Time>& last_enter,
                    const std::map<Key, std::vector<int32_t>>& requests) {
  const SpanEvent& enter = ev[static_cast<size_t>(enter_idx)];
  CritPath p;
  p.span = enter.span;
  p.lock = enter.lock;
  p.site = enter.from;
  p.issued = issued;
  p.entered = enter.at;

  std::vector<CritSegment> segs;  // built latest-first, reversed at the end
  Time hi = p.entered;
  auto consume = [&](Time lo, CritBucket bucket, SpanEdge via, SiteId site,
                     SiteId peer, int32_t event) {
    if (lo < p.issued) lo = p.issued;
    if (lo >= hi) return;
    segs.push_back(CritSegment{lo, hi, bucket, via, site, peer, event});
    hi = lo;
  };

  // Below the kHolder segment sits our own request's journey: wire
  // transit to the granting site plus the queue wait there. Prefer the
  // request delivered to the arbiter the granting message names (quorum
  // algorithms); token holders name no arbiter, so fall back to the
  // granting message's sender, then to the last request on record.
  auto fill_request = [&](SiteId arbiter, SiteId sender) {
    auto it = requests.find(Key{p.lock, p.span});
    int32_t pick = -1;
    if (it != requests.end()) {
      for (int32_t idx : it->second)
        if (arbiter != kNoSite && ev[static_cast<size_t>(idx)].to == arbiter)
          pick = idx;
      if (pick < 0)
        for (int32_t idx : it->second)
          if (sender != kNoSite && ev[static_cast<size_t>(idx)].to == sender)
            pick = idx;
      if (pick < 0 && !it->second.empty()) pick = it->second.back();
    }
    if (pick >= 0) {
      const SpanEvent& r = ev[static_cast<size_t>(pick)];
      consume(r.at, CritBucket::kQueue, r.edge, r.to, kNoSite, -1);
      consume(r.sent_at, CritBucket::kWire, r.edge, r.to, r.from, pick);
    }
  };

  SiteId grant_arbiter = kNoSite;
  SiteId grant_sender = kNoSite;
  bool saw_wire = false;
  int32_t cur = enter.cause;
  for (int steps = 0;
       hi > p.issued && cur >= 0 && cur < enter_idx && steps < kMaxChainSteps;
       ++steps) {
    const SpanEvent& c = ev[static_cast<size_t>(cur)];
    if (is_wire(c.edge)) {
      if (!saw_wire) {  // the granting message is the first hop walked
        saw_wire = true;
        grant_arbiter = c.arbiter;
        grant_sender = c.from;
      }
      // Gap between this delivery and the next chain send: handler /
      // queue time at the receiver.
      consume(c.at, CritBucket::kQueue, c.edge, c.to, kNoSite, -1);
      const bool proxy = c.edge == SpanEdge::kProxyGrant;
      consume(c.sent_at, proxy ? CritBucket::kProxy : CritBucket::kWire,
              c.edge, c.to, c.from, cur);
      cur = c.cause;
      continue;
    }
    if (c.edge == SpanEdge::kExit) {
      // Predecessor CS occupancy: the chain was enabled by this holder
      // leaving. Tenure = the holder span's own enter..exit.
      consume(c.at, CritBucket::kQueue, c.edge, c.from, kNoSite, -1);
      auto he = last_enter.find(Key{c.lock, c.span});
      const Time henter = he != last_enter.end() ? he->second : c.at;
      consume(henter, CritBucket::kHolder, c.edge, c.from, kNoSite, cur);
      fill_request(grant_arbiter, grant_sender);
      break;
    }
    if (c.edge == SpanEdge::kIssue && c.span == p.span && c.lock == p.lock)
      break;  // reached our own root: everything below is already tiled
    // Unexpected site edge on the chain (enter/abort/foreign issue):
    // attribute the gap above it honestly and keep following.
    consume(c.at, CritBucket::kOther, c.edge, c.from, kNoSite, -1);
    cur = c.cause;
  }
  // Whatever the chain could not reach (predecessors recorded before the
  // window, cut chains) is unattributable — never silently dropped.
  consume(p.issued, CritBucket::kOther, SpanEdge::kIssue, p.site, kNoSite, -1);

  std::reverse(segs.begin(), segs.end());
  p.segments = std::move(segs);

  int last_holder = -1;
  for (size_t i = 0; i < p.segments.size(); ++i)
    if (p.segments[i].bucket == CritBucket::kHolder)
      last_holder = static_cast<int>(i);
  if (last_holder >= 0) {
    p.contended = true;
    p.tail_delay =
        p.entered - p.segments[static_cast<size_t>(last_holder)].end;
    for (size_t i = static_cast<size_t>(last_holder) + 1;
         i < p.segments.size(); ++i)
      if (p.segments[i].bucket == CritBucket::kWire ||
          p.segments[i].bucket == CritBucket::kProxy)
        ++p.tail_hops;
  }
  return p;
}

}  // namespace

std::vector<CritPath> extract_critical_paths(
    const std::vector<SpanEvent>& events) {
  std::map<Key, Time> last_issue;
  std::map<Key, Time> last_enter;  // kept past exit: holder tenure lookups
  std::map<Key, std::vector<int32_t>> requests;
  std::vector<CritPath> out;
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    switch (e.edge) {
      case SpanEdge::kIssue:
        last_issue[Key{e.lock, e.span}] = e.at;
        requests[Key{e.lock, e.span}].clear();
        break;
      case SpanEdge::kRequest:
      case SpanEdge::kTokenReq:
        if (e.span != kNoSpan)
          requests[Key{e.lock, e.span}].push_back(static_cast<int32_t>(i));
        break;
      case SpanEdge::kEnter: {
        last_enter[Key{e.lock, e.span}] = e.at;
        auto it = last_issue.find(Key{e.lock, e.span});
        if (it == last_issue.end()) break;  // issued before the window
        out.push_back(build_path(events, static_cast<int32_t>(i), it->second,
                                 last_enter, requests));
        break;
      }
      case SpanEdge::kExit:
      case SpanEdge::kAbort:
        last_issue.erase(Key{e.lock, e.span});
        requests.erase(Key{e.lock, e.span});
        break;
      default:
        break;
    }
  }
  return out;
}

void render_crit_path(std::ostream& os, const CritPath& p, Time mean_delay) {
  os << "span " << format_span(p.span) << "  lock " << p.lock << "  site "
     << p.site << "  waiting " << p.waiting() << " ticks";
  if (mean_delay > 0) os << " (" << in_t(p.waiting(), mean_delay) << " T)";
  if (p.contended) {
    os << "  contended, tail " << p.tail_hops
       << (p.tail_hops == 1 ? " hop" : " hops");
    if (mean_delay > 0) os << " = " << in_t(p.tail_delay, mean_delay) << " T";
  }
  os << "\n";
  for (const CritSegment& s : p.segments) {
    char head[64];
    std::snprintf(head, sizeof head, "  +%-8lld %-6s %-12s",
                  static_cast<long long>(s.begin - p.issued),
                  std::string(to_string(s.bucket)).c_str(),
                  std::string(to_string(s.via)).c_str());
    os << head;
    if (s.peer != kNoSite)
      os << s.peer << " -> " << s.site;
    else if (s.site != kNoSite)
      os << "@" << s.site;
    os << "  " << s.duration() << " ticks";
    if (mean_delay > 0) os << " (" << in_t(s.duration(), mean_delay) << " T)";
    os << "\n";
  }
}

CritStats::CritStats(Time mean_delay)
    : mean_delay_(mean_delay), tail_delay_t_(Histogram::log2(0.25, 16)) {
  DQME_CHECK(mean_delay > 0);
}

CritStats::PerLock& CritStats::lock_row(LockId lock) {
  auto it = per_lock_.find(lock);
  if (it != per_lock_.end()) return it->second;
  if (per_lock_.size() < kMaxLockRows)
    return per_lock_.emplace(lock, PerLock{}).first->second;
  overflow_used_ = true;
  return overflow_;
}

void CritStats::record(const CritPath& p) {
  if (!enabled()) return;
  ++paths_;
  waiting_ticks_ += static_cast<uint64_t>(p.waiting());
  PerLock& row = lock_row(p.lock);
  ++row.paths;
  Time tiled = 0;
  for (const CritSegment& s : p.segments) {
    const auto b = static_cast<size_t>(s.bucket);
    ticks_[b] += static_cast<uint64_t>(s.duration());
    row.ticks[b] += static_cast<uint64_t>(s.duration());
    ++edges_[b];
    tiled += s.duration();
  }
  // Structurally zero (segments tile [issued, entered]); counted honestly
  // so tests and validate_critpath.py can assert it instead of trusting.
  residual_ticks_ += static_cast<uint64_t>(
      p.waiting() > tiled ? p.waiting() - tiled : tiled - p.waiting());
  if (p.contended) {
    ++contended_;
    ++row.contended;
    tail_ticks_ += static_cast<uint64_t>(p.tail_delay);
    ++tail_hops_[static_cast<size_t>(std::min(p.tail_hops, 4))];
    tail_delay_t_.record(static_cast<double>(p.tail_delay) /
                         static_cast<double>(mean_delay_));
  }
}

void CritStats::merge(const CritStats& other) {
  if (!other.enabled()) return;
  if (!enabled()) {
    *this = other;
    return;
  }
  DQME_CHECK_MSG(mean_delay_ == other.mean_delay_,
                 "merging critpath stats with different T: "
                     << mean_delay_ << " vs " << other.mean_delay_);
  paths_ += other.paths_;
  contended_ += other.contended_;
  waiting_ticks_ += other.waiting_ticks_;
  residual_ticks_ += other.residual_ticks_;
  tail_ticks_ += other.tail_ticks_;
  for (size_t b = 0; b < kNumCritBuckets; ++b) {
    ticks_[b] += other.ticks_[b];
    edges_[b] += other.edges_[b];
  }
  for (size_t i = 0; i < tail_hops_.size(); ++i)
    tail_hops_[i] += other.tail_hops_[i];
  tail_delay_t_.merge(other.tail_delay_t_);
  for (const auto& [lock, row] : other.per_lock_) {
    PerLock& mine = lock_row(lock);
    mine.paths += row.paths;
    mine.contended += row.contended;
    for (size_t b = 0; b < kNumCritBuckets; ++b)
      mine.ticks[b] += row.ticks[b];
  }
  if (other.overflow_used_) {
    overflow_used_ = true;
    overflow_.paths += other.overflow_.paths;
    overflow_.contended += other.overflow_.contended;
    for (size_t b = 0; b < kNumCritBuckets; ++b)
      overflow_.ticks[b] += other.overflow_.ticks[b];
  }
}

double CritStats::mean_tail_in_t() const {
  if (contended_ == 0 || mean_delay_ == 0) return 0;
  return static_cast<double>(tail_ticks_) /
         (static_cast<double>(contended_) * static_cast<double>(mean_delay_));
}

namespace {

void write_lock_row(std::ostream& os, const std::string& lock_label,
                    uint64_t paths, uint64_t contended,
                    const std::array<uint64_t, kNumCritBuckets>& ticks) {
  os << "{\"lock\": " << lock_label << ", \"paths\": " << paths
     << ", \"contended\": " << contended << ", \"ticks\": {";
  for (size_t b = 0; b < kNumCritBuckets; ++b)
    os << (b ? ", " : "") << '"' << to_string(static_cast<CritBucket>(b))
       << "\": " << ticks[b];
  os << "}}";
}

}  // namespace

void CritStats::write_json(std::ostream& os) const {
  if (!enabled()) {
    os << "{}";
    return;
  }
  os << "{\"mean_delay\": " << mean_delay_ << ", \"paths\": " << paths_
     << ", \"contended\": " << contended_
     << ", \"waiting_ticks\": " << waiting_ticks_
     << ", \"residual_ticks\": " << residual_ticks_
     << ", \"tail_ticks\": " << tail_ticks_ << ", \"buckets\": {";
  for (size_t b = 0; b < kNumCritBuckets; ++b)
    os << (b ? ", " : "") << '"' << to_string(static_cast<CritBucket>(b))
       << "\": {\"ticks\": " << ticks_[b] << ", \"edges\": " << edges_[b]
       << "}";
  os << "}, \"tail_hops\": [";
  for (size_t i = 0; i < tail_hops_.size(); ++i)
    os << (i ? ", " : "") << tail_hops_[i];
  os << "], \"mean_tail_in_t\": " << mean_tail_in_t()
     << ", \"tail_delay_t\": {\"lo\": " << tail_delay_t_.lo()
     << ", \"count\": " << tail_delay_t_.count()
     << ", \"sum\": " << tail_delay_t_.sum()
     << ", \"p50\": " << tail_delay_t_.p50()
     << ", \"p95\": " << tail_delay_t_.p95()
     << ", \"p99\": " << tail_delay_t_.p99()
     << ", \"underflow\": " << tail_delay_t_.underflow()
     << ", \"overflow\": " << tail_delay_t_.overflow() << ", \"buckets\": [";
  for (size_t b = 0; b < tail_delay_t_.buckets().size(); ++b)
    os << (b ? ", " : "") << tail_delay_t_.buckets()[b];
  os << "]}, \"locks\": [";
  bool first = true;
  for (const auto& [lock, row] : per_lock_) {
    if (!first) os << ", ";
    first = false;
    write_lock_row(os, std::to_string(lock), row.paths, row.contended,
                   row.ticks);
  }
  if (overflow_used_) {
    if (!first) os << ", ";
    write_lock_row(os, "-1", overflow_.paths, overflow_.contended,
                   overflow_.ticks);
  }
  os << "]}";
}

}  // namespace dqme::obs
