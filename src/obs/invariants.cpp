#include "obs/invariants.h"

#include <sstream>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace dqme::obs {

InvariantChecker::InvariantChecker(net::Network& net, InvariantOptions opts)
    : net_(net), opts_(opts) {
  auto previous = std::move(net.on_deliver);
  net.on_deliver = [this, &net, previous = std::move(previous)](
                       const net::Message& m, LockId lock) {
    observe(m, lock, net.simulator().now());
    if (previous) previous(m, lock);
  };
  auto prev_crash = std::move(net.on_crash);
  net.on_crash = [this, prev_crash = std::move(prev_crash)](SiteId site) {
    on_crash(site);
    if (prev_crash) prev_crash(site);
  };
}

void InvariantChecker::attach(mutex::MutexSite& site) {
  mutex::SpanObserver* prev = site.span_observer();
  if (prev != nullptr && prev != this) downstream_ = prev;
  site.attach_span_observer(this);
}

void InvariantChecker::flag(const std::string& what) {
  ++violations_;
  if (reports_.size() < opts_.max_reports) reports_.push_back(what);
  if (flightrec_)
    flightrec_->record_violation(what, net_.simulator().now());
}

InvariantChecker::Ledger& InvariantChecker::ledger(LockId lock) {
  return ledgers_[lock];
}

std::string InvariantChecker::lock_tag(LockId lock) {
  if (lock == kLock0) return {};
  return " [lock " + std::to_string(lock) + "]";
}

bool InvariantChecker::is_active(const Ledger& led, const ReqId& req) {
  auto it = led.active_span.find(req.site);
  return it != led.active_span.end() && it->second == span_of(req);
}

void InvariantChecker::discharge(Ledger& led, SiteId arbiter, SiteId holder) {
  auto it = led.transfers.find({arbiter, holder});
  if (it == led.transfers.end()) return;
  ++checks_;  // an obligation resolved the way Lemma 3's argument expects
  led.transfers.erase(it);
}

void InvariantChecker::progress(Ledger& led, SpanId span, Time at) {
  if (span == kNoSpan) return;
  auto owner = led.span_owner.find(span);
  if (owner == led.span_owner.end()) return;
  auto watch = led.open_requests.find(owner->second);
  if (watch != led.open_requests.end() && watch->second.span == span)
    watch->second.last_progress = at;
}

void InvariantChecker::arm_watchdog() {
  if (watchdog_armed_ || opts_.liveness_bound <= 0 || finished_) return;
  watchdog_armed_ = true;
  // Sweep at a quarter of the bound: a stall is flagged at most 1.25x the
  // bound after its last progress edge, and the sweep count stays O(run /
  // bound) — negligible next to message traffic.
  net_.simulator().schedule_after(opts_.liveness_bound / 4,
                                  [this] { watchdog_sweep(); });
}

void InvariantChecker::watchdog_sweep() {
  watchdog_armed_ = false;
  if (finished_) return;
  const Time now = net_.simulator().now();
  bool any_open = false;
  for (auto& [lock, led] : ledgers_) {
    for (auto& [site, watch] : led.open_requests) {
      any_open = true;
      ++checks_;
      if (watch.flagged || now - watch.last_progress <= opts_.liveness_bound)
        continue;
      watch.flagged = true;
      std::ostringstream os;
      os << "liveness: request " << format_span(watch.span) << " at site "
         << site << " has made no progress for "
         << (now - watch.last_progress) << " ticks (bound "
         << opts_.liveness_bound << ")" << lock_tag(lock);
      flag(os.str());
    }
  }
  // Keep sweeping only while requests are open; re-armed by the next issue
  // otherwise, so a drained run's event queue empties.
  if (any_open) arm_watchdog();
}

void InvariantChecker::observe(const net::Message& m, LockId lock, Time at) {
  using net::MsgType;

  // Black box first: if this very delivery trips a check below, the dump's
  // tail reads "...delivery, violation" in causal order.
  if (flightrec_) flightrec_->record_message(m, lock, at);

  // FIFO: delivery on a channel must never present a message sent after
  // one still undelivered — Network keeps a per-channel delivery floor, and
  // the protocols' stale-message hardening (DESIGN.md D1) assumes it. The
  // floor is lock-agnostic: every lock's traffic shares the channel.
  ++checks_;
  Time& floor = fifo_floor_[{m.src, m.dst}];
  if (m.sent_at < floor) {
    std::ostringstream os;
    os << "fifo: channel " << m.src << "->" << m.dst << " delivered "
       << net::to_string(m.type) << " sent at " << m.sent_at
       << " after a message sent at " << floor;
    flag(os.str());
  } else {
    floor = m.sent_at;
  }

  Ledger& led = ledger(lock);
  progress(led, m.span, at);
  if (!opts_.quorum_arbitration) return;

  switch (m.type) {
    case MsgType::kReply: {
      if (m.arbiter == kNoSite) break;
      ++checks_;
      const SiteId grantee = m.req.site;
      Held& holder = led.holder[m.arbiter];
      if (m.src != m.arbiter) discharge(led, m.arbiter, m.src);  // proxy C.1
      if (!is_active(led, m.req)) {
        // Stale grant: the grantee has moved on (exited, aborted, or §6
        // re-requested on a new span) and will drop this reply (D1). The
        // arbitration it belonged to was already settled by the grantee's
        // release, so it must not update — or be judged against — holder.
        break;
      }
      if (m.src == m.arbiter) {
        // Direct grant: the arbiter believes its permission is free.
        if (holder.site != kNoSite && holder.site != grantee) {
          std::ostringstream os;
          os << "permission: arbiter " << m.arbiter << " granted to "
             << grantee << " at " << at << " while site " << holder.site
             << " still holds its permission" << lock_tag(lock);
          flag(os.str());
        }
        holder = Held{grantee, span_of(m.req)};
      } else {
        // Proxy-forwarded grant (§3 Step C): legal only from the current
        // holder — or, when the release overtook the forwarded reply on a
        // faster channel, the arbiter already points at the grantee.
        if (holder.site == m.src) {
          holder = Held{grantee, span_of(m.req)};
        } else if (holder.site != grantee) {
          std::ostringstream os;
          os << "permission: site " << m.src << " forwarded arbiter "
             << m.arbiter << "'s reply to " << grantee << " at " << at
             << " without holding it (holder: " << holder.site << ")"
             << lock_tag(lock);
          flag(os.str());
        }
      }
      break;
    }
    case MsgType::kYield: {
      // Holder returns the arbiter's permission (delivered at the arbiter).
      // Matched on the full request, like the arbiter's lock_ == m.req.
      Held& holder = led.holder[m.arbiter];
      if (holder.site == m.req.site && holder.span == span_of(m.req))
        holder = Held{};
      discharge(led, m.arbiter, m.req.site);
      break;
    }
    case MsgType::kRelease: {
      // release(i, j|max) delivered at arbiter m.dst: frees the permission
      // or moves it to the request the releaser forwarded it to — unless
      // that request is no longer live (crashed or abandoned), in which
      // case the arbiter drops the stale forward and grants on (A.4 tail).
      Held& holder = led.holder[m.dst];
      if (holder.site == m.req.site && holder.span == span_of(m.req))
        holder = m.target.valid() && is_active(led, m.target)
                     ? Held{m.target.site, span_of(m.target)}
                     : Held{};
      discharge(led, m.dst, m.req.site);
      break;
    }
    case MsgType::kTransfer: {
      // Arbiter asks its lock holder to forward the permission (§3 Step B).
      // Open an obligation only when the holder will accept it (A.5): the
      // delivered m.req names the holder's live request and the arbiter's
      // permission is indeed held there. An early transfer — reply still in
      // flight, so the holder ignores it — is re-sent or subsumed by the
      // holder's own parameterized release, which discharges the same key.
      ++checks_;
      auto span = led.active_span.find(m.dst);
      const bool accepted = span != led.active_span.end() &&
                            span->second == span_of(m.req) &&
                            led.holder[m.arbiter].site == m.dst;
      if (accepted)
        led.transfers[{m.arbiter, m.dst}] = Obligation{m.target, at};
      break;
    }
    default:
      break;  // requests/fails/inquires and non-mutex traffic: progress only
  }
}

void InvariantChecker::on_crash(SiteId site) {
  if (flightrec_) flightrec_->record_crash(site, net_.simulator().now());
  // Fail-silent crash (§6): nothing sent by `site` is delivered from now
  // on, so write off everything only it could have discharged — on every
  // lock; a crash takes the site's whole endpoint down. The arbiters
  // re-grant after the failure notice, which must not read as a violation.
  for (auto& [lock, led] : ledgers_) {
    (void)lock;
    led.cs_occupants.erase(site);
    led.active_span.erase(site);
    auto watch = led.open_requests.find(site);
    if (watch != led.open_requests.end()) {
      led.span_owner.erase(watch->second.span);
      led.open_requests.erase(watch);
    }
    for (auto& [arbiter, holder] : led.holder)
      if (holder.site == site) holder = Held{};
    for (auto it = led.transfers.begin(); it != led.transfers.end();) {
      if (it->first.first == site || it->first.second == site) {
        ++checks_;
        it = led.transfers.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void InvariantChecker::on_span_issue(SiteId site, LockId lock, SpanId span,
                                     Time at) {
  if (flightrec_)
    flightrec_->record_span(FlightRecorder::Kind::kSpanIssue, site, lock,
                            span, at);
  if (span != kNoSpan) {
    Ledger& led = ledger(lock);
    // A fresh issue from a site with an open request is the §6 recovery
    // path abandoning the old quorum: the old watch moves to the new span.
    auto prev = led.open_requests.find(site);
    if (prev != led.open_requests.end())
      led.span_owner.erase(prev->second.span);
    led.active_span[site] = span;
    led.open_requests[site] = Watch{span, at, false};
    led.span_owner[span] = site;
    arm_watchdog();
  }
  if (downstream_) downstream_->on_span_issue(site, lock, span, at);
}

void InvariantChecker::on_span_enter(SiteId site, LockId lock, SpanId span,
                                     Time at) {
  if (flightrec_)
    flightrec_->record_span(FlightRecorder::Kind::kSpanEnter, site, lock,
                            span, at);
  Ledger& led = ledger(lock);
  ++checks_;
  if (!led.cs_occupants.empty()) {
    std::ostringstream os;
    os << "safety: site " << site << " entered the CS at " << at << " (span "
       << format_span(span) << ") while occupied by";
    for (const auto& [other, other_span] : led.cs_occupants)
      os << " site " << other << " (span " << format_span(other_span) << ")";
    os << lock_tag(lock);
    flag(os.str());
  }
  led.cs_occupants[site] = span;
  auto watch = led.open_requests.find(site);
  if (watch != led.open_requests.end()) {
    led.span_owner.erase(watch->second.span);
    led.open_requests.erase(watch);
  }
  if (downstream_) downstream_->on_span_enter(site, lock, span, at);
}

void InvariantChecker::on_span_exit(SiteId site, LockId lock, SpanId span,
                                    Time at) {
  if (flightrec_)
    flightrec_->record_span(FlightRecorder::Kind::kSpanExit, site, lock,
                            span, at);
  Ledger& led = ledger(lock);
  led.cs_occupants.erase(site);
  led.active_span.erase(site);
  if (downstream_) downstream_->on_span_exit(site, lock, span, at);
}

void InvariantChecker::on_span_abort(SiteId site, LockId lock, SpanId span,
                                     Time at) {
  if (flightrec_)
    flightrec_->record_span(FlightRecorder::Kind::kSpanAbort, site, lock,
                            span, at);
  Ledger& led = ledger(lock);
  led.active_span.erase(site);
  auto watch = led.open_requests.find(site);
  if (watch != led.open_requests.end()) {
    led.span_owner.erase(watch->second.span);
    led.open_requests.erase(watch);
  }
  if (downstream_) downstream_->on_span_abort(site, lock, span, at);
}

void InvariantChecker::finish(Time now) {
  if (finished_) return;
  finished_ = true;

  ++checks_;
  const auto& stats = net_.stats();
  if (stats.in_flight() != 0) {
    std::ostringstream os;
    os << "conservation: " << stats.in_flight()
       << " staged message(s) neither delivered nor dropped at quiescence";
    flag(os.str());
  }

  for (const auto& [lock, led] : ledgers_) {
    for (const auto& [key, ob] : led.transfers) {
      ++checks_;
      std::ostringstream os;
      os << "conservation: transfer from arbiter " << key.first
         << " to holder " << key.second << " (target "
         << format_span(span_of(ob.target)) << ", sent at " << ob.opened_at
         << ") never discharged by a proxied reply or release"
         << lock_tag(lock);
      flag(os.str());
    }

    if (opts_.liveness_bound > 0) {
      for (const auto& [site, watch] : led.open_requests) {
        ++checks_;
        if (watch.flagged ||
            now - watch.last_progress <= opts_.liveness_bound)
          continue;
        std::ostringstream os;
        os << "liveness: request " << format_span(watch.span) << " at site "
           << site << " still open at the end of the run, no progress for "
           << (now - watch.last_progress) << " ticks" << lock_tag(lock);
        flag(os.str());
      }
    }
  }
}

}  // namespace dqme::obs
