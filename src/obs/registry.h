// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// One Registry per experiment run (a "per-worker instance" in the parallel
// sweep engine): run_experiment() fills it and hands it back inside
// ExperimentResult, and harness::merge_registries() folds any number of
// per-run registries together deterministically — counters and histogram
// buckets sum, gauges keep their maximum — in result-index order, so the
// merged view is bit-identical for any --jobs value.
//
// Cost model: lookups by name happen once, at attach/reset time; hot paths
// hold the returned reference (a plain uint64_t& / Histogram&) and pay one
// increment per observation. Nothing in this header is touched by a run
// that does not bind a registry.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace dqme::obs {

// Fixed-bucket histogram in one of two bucketing modes, chosen at
// construction (the spec — mode included — is part of the identity:
// merging histograms with different specs is a CHECK failure):
//
//   * linear — `buckets` equal-width bins starting at `lo`. Right for
//     quantities with a known, narrow dynamic range (sync_gap: a handful
//     of T).
//   * log2   — bucket b covers [lo*2^b, lo*2^(b+1)). A few dozen buckets
//     span many decades, so heavy-tailed quantities (waiting time under
//     saturation: T/10 .. thousands of T) keep meaningful percentiles
//     instead of collapsing into `overflow`.
//
// In both modes samples below `lo` land in underflow and samples past the
// last bucket in overflow; percentile() resolves that out-of-range mass to
// the histogram edges.
class Histogram {
 public:
  Histogram() = default;
  Histogram(double lo, double width, size_t buckets)
      : lo_(lo), width_(width), counts_(buckets, 0) {
    DQME_CHECK(width > 0 && buckets > 0);
  }

  // Log-bucketed spec; `lo` must be positive (it sets the first bucket's
  // base and the resolution floor — everything below is underflow).
  static Histogram log2(double lo, size_t buckets) {
    DQME_CHECK(lo > 0 && buckets > 0);
    Histogram h(lo, lo, buckets);
    h.log_ = true;
    return h;
  }

  void record(double v) {
    ++count_;
    sum_ += v;
    if (v < lo_) {
      ++underflow_;
      return;
    }
    const size_t b = log_ ? log_bucket(v)
                          : static_cast<size_t>((v - lo_) / width_);
    if (b >= counts_.size()) {
      ++overflow_;
      return;
    }
    ++counts_[b];
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
  }
  double lo() const { return lo_; }
  double width() const { return width_; }
  bool is_log() const { return log_; }
  // Bucket b's half-open value range [lower, upper).
  double bucket_lower(size_t b) const;
  double bucket_upper(size_t b) const { return bucket_lower(b + 1); }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  const std::vector<uint64_t>& buckets() const { return counts_; }

  // Bucket-midpoint estimate of the p-quantile (p in [0,1]); out-of-range
  // mass resolves to the histogram edges.
  double percentile(double p) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }
  double p999() const { return percentile(0.999); }

  void merge(const Histogram& other);

 private:
  size_t log_bucket(double v) const;

  double lo_ = 0;
  double width_ = 1;
  bool log_ = false;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0;
};

class Registry {
 public:
  // Finds or creates. References stay valid for the Registry's lifetime
  // (node-based storage) — resolve once, bump forever.
  uint64_t& counter(std::string_view name);
  double& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, double lo, double width,
                       size_t buckets);
  Histogram& log_histogram(std::string_view name, double lo, size_t buckets);

  // Lookup without creation; nullptr when absent.
  const uint64_t* find_counter(std::string_view name) const;
  const double* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Counters +=, gauges max, histograms bucket-wise (same-spec only).
  void merge(const Registry& other);

  // One flat JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {kind, lo, width, count, sum, p50, p95, p99,
  // p999, underflow, overflow, buckets: [...]}}}. Keys iterate in sorted
  // order — deterministic output.
  void write_json(std::ostream& os) const;

  const std::map<std::string, uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace dqme::obs
