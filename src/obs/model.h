// Analytic predictor for the paper's Table 1 closed forms.
//
// For each algorithm the paper states a per-CS message-count band and a
// synchronization delay in units of the mean message delay T. predict()
// restates those forms for a concrete (N, K); run_experiment() compares
// them against every run's measured numbers and emits the result as
// model_divergence_* gauges — the empirical-vs-analytic cross-check the
// simulation-methodology literature asks reproduction studies to keep
// always-on.
//
// The bare Table 1 delay for the proposed algorithm is 1·T — the proxied
// handoff. A real run mixes that with the degraded 2·T relay: a handoff
// rides the proxy only when the arbiter's `transfer` reaches the holder
// before it exits (docs/OBSERVABILITY.md: with E << T a direction can
// degrade). mixed_sync_delay() refines the prediction from the observed
// relay mix (1-hop vs 2-hop contended entries, counted by the harness), so
// the conformance gate checks the *closed form applied to the observed case
// split* — tight (<5%) under constant delay — instead of gating on an
// assumption about the workload's case frequencies.
#pragma once

#include "mutex/factory.h"

namespace dqme::obs {

struct ModelPrediction {
  // Messages per CS execution: [msgs_lo, msgs_hi] band (paper's "3(K-1) to
  // 6(K-1)" style statements). has_msgs false = no closed form (Raymond).
  bool has_msgs = false;
  double msgs_lo = 0;
  double msgs_hi = 0;

  // Synchronization delay in units of T. has_delay false = no constant
  // closed form (Raymond's O(log N)).
  bool has_delay = false;
  double sync_delay_t = 0;
};

// Table 1 for a concrete configuration. `k` is the mean quorum size (the
// paper's K); ignored by the O(N) and token baselines.
ModelPrediction predict(mutex::Algo algo, int n, double k);

// Expected contended handoff delay when `proxied` entries completed on the
// 1-hop proxy path and `direct` on the 2-hop release->arbiter->reply relay.
// Falls back to `fallback_t` when no contended entries were classified.
double mixed_sync_delay(uint64_t proxied, uint64_t direct, double fallback_t);

// |measured - predicted| / predicted; 0 when predicted is 0.
double divergence_point(double measured, double predicted);

// 0 inside [lo, hi]; otherwise the relative distance to the nearest bound
// (denominator = that bound, or hi when the bound is 0).
double divergence_band(double measured, double lo, double hi);

}  // namespace dqme::obs
