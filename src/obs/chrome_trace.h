// Chrome trace-event (chrome://tracing / Perfetto) JSON exporter.
//
// Renders a recorded run as one lane per site (tid = site id, pid = 0):
//   * CS intervals as matched B/E slice pairs named "CS", tagged with the
//     request's span,
//   * per-request acquisition phases as async b/e pairs (id = span) from
//     issue to entry — the visible "waiting" bar,
//   * every wire message as a pair of thin X slices (send on the sender's
//     lane, delivery on the receiver's) joined by an s/f flow arrow. A
//     proxy-forwarded reply — the paper's 1T handoff mechanism — is
//     exported with cat "proxy" so it stands out (and is assertable).
//
// Ticks are microseconds (common/types.h), which is exactly the trace
// format's ts unit: timestamps pass through untouched.
#pragma once

#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "net/trace.h"
#include "obs/span.h"

namespace dqme::obs {

struct ChromeTraceData {
  int n_sites = 0;
  std::string label;  // e.g. "cao-singhal N=9 grid T=1000"
  std::deque<net::TraceEvent> messages;  // from net::TraceRecorder
  std::vector<SpanEvent> span_events;    // from SpanRecorder
  // Export only events of this span (kNoSpan = all). Message slices keep
  // every flow arrow attached to the filtered span.
  SpanId only_span = kNoSpan;
  // Export only events of this lock (kNoLock = all): slices a multi-lock
  // run — 4096 lanes of interleaved traffic — down to one lock's story.
  LockId only_lock = kNoLock;
  // Critical-path highlight: indices into span_events of the wire/proxy
  // hops of ONE extracted CritPath (CritSegment::event of its kWire/kProxy
  // segments). The matching message slices and flow arrows are exported
  // with an extra args entry "crit": 1, so the path that determined the
  // entry instant pops out of the flow-arrow thicket in the viewer — and
  // scripts/validate_trace.py can assert the tagged arrows form a single
  // time-ordered chain.
  std::vector<int32_t> crit_events;
};

// Writes the JSON object format: {"traceEvents": [...], ...}. The output
// is self-contained and loads directly in ui.perfetto.dev.
void write_chrome_trace(std::ostream& os, const ChromeTraceData& data);

}  // namespace dqme::obs
