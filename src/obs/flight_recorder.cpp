#include "obs/flight_recorder.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "obs/span.h"

namespace dqme::obs {

namespace {

// Dedicated lane for checker violations, far above any plausible SiteId.
constexpr SiteId kCheckerLane = 1'000'000;

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

std::string_view kind_name(FlightRecorder::Kind k) {
  switch (k) {
    case FlightRecorder::Kind::kDeliver:
      return "deliver";
    case FlightRecorder::Kind::kCrash:
      return "crash";
    case FlightRecorder::Kind::kSpanIssue:
      return "issue";
    case FlightRecorder::Kind::kSpanEnter:
      return "enter";
    case FlightRecorder::Kind::kSpanExit:
      return "exit";
    case FlightRecorder::Kind::kSpanAbort:
      return "abort";
    case FlightRecorder::Kind::kViolation:
      return "violation";
  }
  return "?";
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity) {
  DQME_CHECK_MSG(capacity > 0, "flight recorder needs a positive capacity");
  ring_.reserve(capacity);
}

void FlightRecorder::attach(net::Network& net) {
  net_ = &net;
  auto previous = std::move(net.on_deliver);
  net.on_deliver = [this, &net, previous = std::move(previous)](
                       const net::Message& m, LockId lock) {
    record_message(m, lock, net.simulator().now());
    if (previous) previous(m, lock);
  };
  auto prev_crash = std::move(net.on_crash);
  net.on_crash = [this, &net, prev_crash = std::move(prev_crash)](SiteId s) {
    record_crash(s, net.simulator().now());
    if (prev_crash) prev_crash(s);
  };
}

void FlightRecorder::push(Event e) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
}

void FlightRecorder::record_message(const net::Message& m, LockId lock,
                                    Time at) {
  Event e;
  e.at = at;
  e.kind = Kind::kDeliver;
  e.msg = m;
  // Sever the side-payload handle: the pool recycles the slot as soon as
  // the delivery handler returns, same hazard net::TraceRecorder guards.
  e.msg.payload = net::kNoPayload;
  e.lock = lock;
  e.site = m.dst;
  e.span = m.span;
  push(std::move(e));
}

void FlightRecorder::record_crash(SiteId site, Time at) {
  Event e;
  e.at = at;
  e.kind = Kind::kCrash;
  e.site = site;
  push(std::move(e));
  if (dump_on_crash_) maybe_dump();
}

void FlightRecorder::record_span(Kind kind, SiteId site, LockId lock,
                                 SpanId span, Time at) {
  Event e;
  e.at = at;
  e.kind = kind;
  e.lock = lock;
  e.site = site;
  e.span = span;
  push(std::move(e));
}

void FlightRecorder::record_violation(const std::string& what, Time at) {
  Event e;
  e.at = at;
  e.kind = Kind::kViolation;
  e.note = what;
  push(std::move(e));
  maybe_dump();
}

void FlightRecorder::maybe_dump() {
  if (dumped_ || dump_path_.empty()) return;
  dumped_ = true;  // first trigger only, even if the dump itself fails
  dump_to(dump_path_);
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // Ring layout: [next_, end) is the older half once wrapped.
  for (size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  return out;
}

void FlightRecorder::dump(std::ostream& os) const {
  const std::vector<Event> evs = events();

  // Lane metadata first: the validator requires a thread_name for every tid
  // that carries events.
  std::set<SiteId> lanes;
  for (const Event& e : evs)
    lanes.insert(e.kind == Kind::kViolation ? kCheckerLane : e.site);

  os << "{\"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&](std::string_view name, std::string_view cat, char ph,
                        Time ts, SiteId tid, std::string_view extra,
                        std::string_view args_json) {
    os << (first ? "  " : ",\n  ") << "{\"name\": ";
    write_json_string(os, name);
    os << ", \"cat\": ";
    write_json_string(os, cat);
    os << ", \"ph\": \"" << ph << "\", \"ts\": " << ts
       << ", \"pid\": 0, \"tid\": " << tid;
    if (!extra.empty()) os << ", " << extra;
    if (!args_json.empty()) os << ", \"args\": " << args_json;
    os << "}";
    first = false;
  };

  for (SiteId lane : lanes) {
    const std::string name =
        lane == kCheckerLane ? "checker" : "site " + std::to_string(lane);
    emit("thread_name", "__metadata", 'M', 0, lane, {},
         "{\"name\": \"" + name + "\"}");
  }

  for (const Event& e : evs) {
    switch (e.kind) {
      case Kind::kDeliver: {
        const net::Message& m = e.msg;
        std::string args = "{\"src\": " + std::to_string(m.src) +
                           ", \"dst\": " + std::to_string(m.dst) +
                           ", \"sent_at\": " + std::to_string(m.sent_at) +
                           ", \"lock\": " + std::to_string(e.lock) +
                           ", \"span\": \"" + format_span(m.span) + "\"}";
        emit(net::to_string(m.type), "flightrec", 'X', e.at, e.site,
             "\"dur\": 1", args);
        break;
      }
      case Kind::kCrash:
        emit("crash", "flightrec", 'X', e.at, e.site, "\"dur\": 1",
             "{\"site\": " + std::to_string(e.site) + "}");
        break;
      case Kind::kViolation: {
        std::string args = "{\"report\": ";
        {
          std::ostringstream tmp;
          write_json_string(tmp, e.note);
          args += tmp.str();
        }
        args += "}";
        emit("violation", "flightrec", 'X', e.at, kCheckerLane, "\"dur\": 1",
             args);
        break;
      }
      default:  // span edges
        emit(kind_name(e.kind), "flightrec", 'X', e.at, e.site, "\"dur\": 1",
             "{\"lock\": " + std::to_string(e.lock) + ", \"span\": \"" +
                 format_span(e.span) + "\"}");
        break;
    }
  }

  os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"label\": ";
  write_json_string(os, label_);
  os << ", \"recorded\": " << recorded_ << ", \"capacity\": " << capacity_
     << "}}\n";
}

bool FlightRecorder::dump_to(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  dump(f);
  return f.good();
}

}  // namespace dqme::obs
