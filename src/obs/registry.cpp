#include "obs/registry.h"

#include <algorithm>
#include <cmath>

namespace dqme::obs {

// Exact doubling walk rather than std::log2: boundary samples (v == lo*2^b)
// must land in bucket b on every libm, and B is a few dozen at most.
size_t Histogram::log_bucket(double v) const {
  size_t b = 0;
  double upper = lo_ * 2;
  while (b < counts_.size() && v >= upper) {
    upper *= 2;
    ++b;
  }
  return b;
}

double Histogram::bucket_lower(size_t b) const {
  if (log_) return std::ldexp(lo_, static_cast<int>(b));
  return lo_ + static_cast<double>(b) * width_;
}

double Histogram::percentile(double p) const {
  DQME_CHECK(0 <= p && p <= 1);
  if (count_ == 0) return 0;
  const auto rank = static_cast<uint64_t>(p * static_cast<double>(count_ - 1));
  uint64_t seen = underflow_;
  if (rank < seen) return lo_;
  for (size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (rank < seen) return (bucket_lower(b) + bucket_upper(b)) / 2;
  }
  return bucket_lower(counts_.size());
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 && counts_.empty()) {
    *this = other;
    return;
  }
  DQME_CHECK_MSG(lo_ == other.lo_ && width_ == other.width_ &&
                     log_ == other.log_ &&
                     counts_.size() == other.counts_.size(),
                 "merging histograms with different bucket specs");
  for (size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), 0).first;
  return it->second;
}

double& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(std::string(name), 0.0).first;
  return it->second;
}

Histogram& Registry::histogram(std::string_view name, double lo, double width,
                               size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram(lo, width, buckets))
             .first;
  DQME_CHECK_MSG(it->second.lo() == lo && it->second.width() == width &&
                     !it->second.is_log() &&
                     it->second.buckets().size() == buckets,
                 "histogram '" << name << "' re-declared with another spec");
  return it->second;
}

Histogram& Registry::log_histogram(std::string_view name, double lo,
                                   size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram::log2(lo, buckets))
             .first;
  DQME_CHECK_MSG(it->second.lo() == lo && it->second.is_log() &&
                     it->second.buckets().size() == buckets,
                 "histogram '" << name << "' re-declared with another spec");
  return it->second;
}

const uint64_t* Registry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const double* Registry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, v] : other.counters_) counter(name) += v;
  for (const auto& [name, v] : other.gauges_) {
    double& g = gauge(name);
    g = std::max(g, v);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, h);
    else
      it->second.merge(h);
  }
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "" : ", ");
    write_json_string(os, name);
    os << ": " << v;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    os << (first ? "" : ", ");
    write_json_string(os, name);
    os << ": " << v;
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ", ");
    write_json_string(os, name);
    os << ": {\"kind\": \"" << (h.is_log() ? "log2" : "linear")
       << "\", \"lo\": " << h.lo() << ", \"width\": " << h.width()
       << ", \"count\": " << h.count() << ", \"sum\": " << h.sum()
       << ", \"p50\": " << h.p50() << ", \"p95\": " << h.p95()
       << ", \"p99\": " << h.p99() << ", \"p999\": " << h.p999()
       << ", \"underflow\": " << h.underflow()
       << ", \"overflow\": " << h.overflow() << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets().size(); ++b)
      os << (b ? ", " : "") << h.buckets()[b];
    os << "]}";
    first = false;
  }
  os << "}}";
}

}  // namespace dqme::obs
