// Opt-in observability capture for harness::run_experiment.
//
// Point ExperimentConfig::capture at one of these and the run attaches a
// net::TraceRecorder + obs::SpanRecorder for its whole duration, then moves
// the recorded data out here before returning. Null capture (the default)
// costs nothing — no hooks are installed and the hot path is untouched.
//
// Capture is single-run by design: SweepRunner rejects a shared capture
// across multiple configs (workers would race on it). Record one config at
// a time, or give each config its own RunCapture.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "net/trace.h"
#include "obs/span.h"

namespace dqme::obs {

struct RunCapture {
  // In: bound on retained events (per recorder).
  size_t capacity = 1'000'000;

  // Out, filled by run_experiment().
  int n_sites = 0;
  std::string label;
  std::deque<net::TraceEvent> messages;
  size_t messages_dropped = 0;
  std::vector<SpanEvent> span_events;
  size_t span_events_dropped = 0;
};

}  // namespace dqme::obs
