// Causal critical-path attribution: the per-request delay-budget engine.
//
// A SpanRecorder stream now carries a causal predecessor index on every
// event (SpanEvent::cause, threaded through net::Network's send/delivery
// context). This module walks those links backwards from every kEnter to
// reconstruct the critical path of the request — the single causal chain
// that *determined* when the CS was entered — and buckets every tick of
// [issued, entered] as one of:
//
//   kWire    wire transit of a chain message (request, grant, release, ...)
//   kQueue   waiting at a site: the arbiter held the request behind the
//            current lock holder, or a handler sat between delivery and
//            its next send
//   kHolder  predecessor CS occupancy (the holder's enter..exit tenure)
//   kProxy   wire transit of a §3 proxy-forwarded reply specifically —
//            split from kWire so Table 1's 1·T mechanism is its own row
//   kOther   residue the chain could not attribute (predecessor outside
//            the recorded window, chains cut by the capacity cap)
//
// Segments tile [issued, entered] exactly — conservation (bucket sums ==
// the span's measured waiting time, to the tick) holds by construction and
// is asserted by tests and scripts/validate_critpath.py.
//
// The Table-1 conformance gate reads the *tail* of a contended path: the
// wire hops after the last kHolder segment. Cao–Singhal's proxy handoff
// makes that exactly one hop (exit -> proxy reply -> enter, 1·T); Maekawa
// relays through the arbiter (exit -> release -> arbiter -> reply, 2·T).
//
// CritStats aggregates paths into integer tick/edge counters plus a log2
// tail-delay histogram in units of T; merge() is element-wise summation in
// result-index order, so bench JSON embeddings are byte-identical for any
// --jobs split.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/span.h"

namespace dqme::obs {

enum class CritBucket : uint8_t {
  kWire,
  kQueue,
  kHolder,
  kProxy,
  kOther,
};
inline constexpr size_t kNumCritBuckets = 5;

std::string_view to_string(CritBucket b);

// One attributed stretch of a request's waiting time. Segments are
// half-open [begin, end) and consecutive: segments[i].end ==
// segments[i+1].begin, segments.front().begin == issued,
// segments.back().end == entered.
struct CritSegment {
  Time begin = 0;
  Time end = 0;
  CritBucket bucket = CritBucket::kOther;
  SpanEdge via = SpanEdge::kIssue;  // the edge that produced the segment
  SiteId site = kNoSite;  // where the time was spent (receiver / holder)
  SiteId peer = kNoSite;  // wire segments: the sender
  // Index into the source SpanEvent vector for wire/proxy/holder segments
  // (lets dqme_trace tag exactly these flow arrows); -1 for fillers.
  int32_t event = -1;

  Time duration() const { return end - begin; }
};

struct CritPath {
  SpanId span = kNoSpan;
  LockId lock = kLock0;
  SiteId site = kNoSite;  // the requester
  Time issued = 0;
  Time entered = 0;
  bool contended = false;  // path crosses a predecessor's CS tenure
  // Tail of a contended path: everything after the last kHolder segment.
  // tail_hops counts its kWire/kProxy segments (Table 1: Cao–Singhal 1,
  // Maekawa 2); tail_delay is entered - the holder's exit (the measured
  // synchronization delay of this handoff).
  int tail_hops = 0;
  Time tail_delay = 0;
  std::vector<CritSegment> segments;

  Time waiting() const { return entered - issued; }
  Time in_bucket(CritBucket b) const;
};

// Reconstructs every completed request's critical path from a recorded
// event stream (SpanRecorder::events() or RunCapture::span_events).
// Requests whose issue fell outside the recorded window are skipped —
// their [issued, entered] interval cannot be tiled honestly.
std::vector<CritPath> extract_critical_paths(
    const std::vector<SpanEvent>& events);

// ASCII render of one path, one line per segment, durations also in units
// of T (mean_delay; pass 0 to omit the T column).
void render_crit_path(std::ostream& os, const CritPath& p, Time mean_delay);

// Mergeable delay-budget aggregate. All state is integer tick/edge
// counters (plus a fixed-spec log2 histogram of tail delay in T units, so
// bucket boundaries are independent of T) — merge() is element-wise
// summation, making the JSON embedding deterministic for any --jobs.
class CritStats {
 public:
  CritStats() = default;                 // disabled: record/merge are no-ops
  explicit CritStats(Time mean_delay);   // enabled; mean_delay = the run's T

  bool enabled() const { return mean_delay_ > 0; }
  Time mean_delay() const { return mean_delay_; }

  void record(const CritPath& p);
  void merge(const CritStats& other);
  void write_json(std::ostream& os) const;

  uint64_t paths() const { return paths_; }
  uint64_t contended() const { return contended_; }
  uint64_t waiting_ticks() const { return waiting_ticks_; }
  // Ticks the extractor failed to tile (always 0: segments tile the
  // interval by construction; kept as an honest cross-check counter).
  uint64_t residual_ticks() const { return residual_ticks_; }
  uint64_t tail_ticks() const { return tail_ticks_; }
  uint64_t ticks(CritBucket b) const {
    return ticks_[static_cast<size_t>(b)];
  }
  uint64_t edges(CritBucket b) const {
    return edges_[static_cast<size_t>(b)];
  }
  // Contended paths by tail hop count; index 4 is "4 or more".
  const std::array<uint64_t, 5>& tail_hops() const { return tail_hops_; }
  // Mean tail delay over contended paths, in units of T — the number the
  // Table-1 gate compares against obs::predict()'s sync delay.
  double mean_tail_in_t() const;
  const Histogram& tail_delay_t() const { return tail_delay_t_; }

 private:
  struct PerLock {
    uint64_t paths = 0;
    uint64_t contended = 0;
    std::array<uint64_t, kNumCritBuckets> ticks{};
  };
  static constexpr size_t kMaxLockRows = 16;

  PerLock& lock_row(LockId lock);

  Time mean_delay_ = 0;  // 0 = disabled
  uint64_t paths_ = 0;
  uint64_t contended_ = 0;
  uint64_t waiting_ticks_ = 0;
  uint64_t residual_ticks_ = 0;
  uint64_t tail_ticks_ = 0;
  std::array<uint64_t, kNumCritBuckets> ticks_{};
  std::array<uint64_t, kNumCritBuckets> edges_{};
  std::array<uint64_t, 5> tail_hops_{};
  Histogram tail_delay_t_;  // log2, lo = 0.25 T
  std::map<LockId, PerLock> per_lock_;  // capped at kMaxLockRows
  PerLock overflow_;                    // everything past the cap
  bool overflow_used_ = false;
};

}  // namespace dqme::obs
