// Online invariant checker (the correctness tentpole).
//
// Subscribes to the same attach-time hooks as the recorders in span.h —
// mutex::SpanObserver for site edges, Network::on_deliver for wire edges,
// plus the Network::on_crash hook — and validates, as the run executes:
//
//   (a) safety      — at most one site inside the CS (Theorem 1, checked
//                     from span edges independently of harness::Metrics),
//                     and each arbiter's lock granted to at most one
//                     requester at a time (the §3 mechanism, a crash-aware
//                     generalisation of harness::PermissionAuditor);
//   (b) conservation— every `transfer` an arbiter sends its lock holder is
//                     eventually discharged: by the proxy-forwarded `reply`,
//                     a parameterized `release`, a `yield`, or a crash of
//                     either party. Plus message conservation (everything
//                     staged is delivered or dropped by quiescence) and
//                     per-(src,dst) FIFO delivery order;
//   (c) liveness    — a watchdog flags any open request with no progress
//                     edge for `liveness_bound` ticks (deadlock/starvation
//                     detection). Crash-aware: a crashed owner's request is
//                     written off, and legal §6 recovery — which reissues
//                     the request on a fresh quorum — reads as progress.
//
// Everything is reconstructed from delivered messages and span edges; the
// checker holds no pointer into protocol internals, so a protocol bug
// cannot hide by corrupting the state it is checked against. Like the
// recorders, the checker is opt-in: a run that attaches none executes the
// exact same instruction stream as before.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mutex/mutex_site.h"
#include "net/network.h"

namespace dqme::obs {

class FlightRecorder;

struct InvariantOptions {
  // Flag any open request span with no progress edge for this many ticks.
  // 0 disables the watchdog. Must exceed the longest *legal* wait (about
  // N starvation-free CS cycles under saturation) or recovery window.
  Time liveness_bound = 0;
  // Apply the arbiter-permission and transfer-ledger rules (b)/(a'). Only
  // meaningful for quorum-arbitrated protocols (Maekawa, Cao-Singhal);
  // broadcast baselines like Lamport grant every request concurrently and
  // have no per-arbiter lock to audit.
  bool quorum_arbitration = true;
  // Cap on retained violation descriptions.
  size_t max_reports = 16;
};

class InvariantChecker final : public mutex::SpanObserver {
 public:
  // Hooks Network::on_deliver and Network::on_crash (chaining any hooks
  // already installed). Site edges additionally require attach(); when a
  // SpanRecorder is already attached, attach() keeps it as a downstream
  // observer so both see every edge.
  explicit InvariantChecker(net::Network& net, InvariantOptions opts = {});

  void attach(mutex::MutexSite& site);
  template <typename Sites>
  void attach_all(Sites&& sites) {
    for (auto& s : sites) attach(*s);
  }

  // Seals the run: message conservation, undischarged transfer obligations,
  // and stale open spans become violations. Call once, after the drain.
  void finish(Time now);

  // Black-box wiring: the checker forwards every wire edge, span edge, and
  // crash it sees to `fr`, and feeds it each violation (triggering the
  // recorder's first-violation auto-dump). Feeding through the checker —
  // not through Network hooks — is what makes scripted selftest traffic
  // (observe() called directly) show up in the black box too. nullptr
  // detaches.
  void set_flight_recorder(FlightRecorder* fr) { flightrec_ = fr; }

  uint64_t checks() const { return checks_; }
  uint64_t violations() const { return violations_; }
  const std::vector<std::string>& reports() const { return reports_; }

  // Wire-edge entry point, invoked by the delivery hook. Public so negative
  // tests and `dqme_check --selftest` can script deliveries (including
  // illegal ones no live Network would produce) without a protocol stack.
  // The two-argument form scripts single-lock traffic (lock 0).
  void observe(const net::Message& m, LockId lock, Time at);
  void observe(const net::Message& m, Time at) { observe(m, kLock0, at); }

  // Crash entry point (chained onto Network::on_crash).
  void on_crash(SiteId site);

  // mutex::SpanObserver
  void on_span_issue(SiteId site, LockId lock, SpanId span, Time at) override;
  void on_span_enter(SiteId site, LockId lock, SpanId span, Time at) override;
  void on_span_exit(SiteId site, LockId lock, SpanId span, Time at) override;
  void on_span_abort(SiteId site, LockId lock, SpanId span, Time at) override;

 private:
  struct Obligation {
    ReqId target;
    Time opened_at = 0;
  };
  // Mirror of an arbiter's lock_: who holds the permission and under which
  // request span. Tracking the span (not just the site) lets the checker
  // match the protocols' full-ReqId comparisons — a stale yield or release
  // from a site's *previous* request must not free its current grant.
  struct Held {
    SiteId site = kNoSite;
    SpanId span = kNoSpan;
  };
  struct Watch {
    SpanId span = kNoSpan;
    Time last_progress = 0;
    bool flagged = false;
  };

  // Per-lock permission ledger. Locks are independent critical sections:
  // occupancy, arbiter permissions, transfer obligations, and open-request
  // watches are all judged within one lock. Only the FIFO floor stays
  // channel-global — delivery order is a property of the wire, which every
  // lock's traffic (and any piggybacked flight) shares.
  struct Ledger {
    // (a) CS occupancy, from span edges: site -> span it entered with.
    std::map<SiteId, SpanId> cs_occupants;
    // (a') per-arbiter permission holder, from the wire (kNoSite = free).
    std::map<SiteId, Held> holder;
    // (b) transfer ledger: (arbiter, holder) -> pending obligation. Keyed
    // so a newer transfer from the same arbiter supersedes the older one,
    // the way the holder's tran_stack honours only the latest (§3.1).
    std::map<std::pair<SiteId, SiteId>, Obligation> transfers;
    // (c) open request per site, plus the site's in-flight request span
    // (mirrors MutexSite per-lock active_span; needed to validate
    // transfers).
    std::map<SiteId, Watch> open_requests;
    std::map<SpanId, SiteId> span_owner;
    std::map<SiteId, SpanId> active_span;
  };

  void flag(const std::string& what);
  Ledger& ledger(LockId lock);
  // Violation-text suffix naming the lock; empty for lock 0 so single-lock
  // reports keep their historical wording.
  static std::string lock_tag(LockId lock);
  // True when `req` is the site's currently open request (its active span):
  // the condition under which a receiver honours rather than stale-drops a
  // message about it (DESIGN.md D1).
  static bool is_active(const Ledger& led, const ReqId& req);
  void discharge(Ledger& led, SiteId arbiter, SiteId holder);
  void progress(Ledger& led, SpanId span, Time at);
  void arm_watchdog();
  void watchdog_sweep();

  net::Network& net_;
  InvariantOptions opts_;
  mutex::SpanObserver* downstream_ = nullptr;
  FlightRecorder* flightrec_ = nullptr;

  std::map<LockId, Ledger> ledgers_;

  // (b) FIFO floor observed per (src, dst) channel (lock-agnostic).
  std::map<std::pair<SiteId, SiteId>, Time> fifo_floor_;

  bool watchdog_armed_ = false;
  bool finished_ = false;

  uint64_t checks_ = 0;
  uint64_t violations_ = 0;
  std::vector<std::string> reports_;
};

}  // namespace dqme::obs
