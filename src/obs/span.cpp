#include "obs/span.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace dqme::obs {

std::string_view to_string(SpanEdge e) {
  switch (e) {
    case SpanEdge::kIssue:      return "issue";
    case SpanEdge::kEnter:      return "enter";
    case SpanEdge::kExit:       return "exit";
    case SpanEdge::kAbort:      return "abort";
    case SpanEdge::kRequest:    return "request";
    case SpanEdge::kGrant:      return "grant";
    case SpanEdge::kProxyGrant: return "proxy_grant";
    case SpanEdge::kFail:       return "fail";
    case SpanEdge::kInquire:    return "inquire";
    case SpanEdge::kYield:      return "yield";
    case SpanEdge::kTransfer:   return "transfer";
    case SpanEdge::kRelease:    return "release";
    case SpanEdge::kTokenReq:   return "token_req";
    case SpanEdge::kToken:      return "token";
  }
  return "unknown";
}

SpanRecorder::SpanRecorder(net::Network& net, size_t capacity)
    : net_(net), capacity_(capacity) {
  DQME_CHECK(capacity > 0);
  auto previous = std::move(net.on_deliver);
  net.on_deliver = [this, &net, previous = std::move(previous)](
                       const net::Message& m, LockId lock) {
    on_message(m, lock, net.simulator().now());
    if (previous) previous(m, lock);
  };
}

void SpanRecorder::record(SpanEvent e) {
  if (events_.size() == capacity_) {
    ++dropped_;  // bounded memory: newest events are dropped past capacity
    return;
  }
  events_.push_back(e);
  // Anything sent from the current handler (or site call) is caused by the
  // edge just recorded: the network stamps this index onto outgoing
  // messages until the next record() or end of delivery overwrites it.
  net_.set_send_cause(static_cast<net::CauseId>(events_.size() - 1));
}

void SpanRecorder::on_message(const net::Message& m, LockId lock, Time at) {
  using net::MsgType;
  SpanEdge edge;
  switch (m.type) {
    case MsgType::kRequest:  edge = SpanEdge::kRequest; break;
    case MsgType::kReply:
      edge = m.src == m.arbiter ? SpanEdge::kGrant : SpanEdge::kProxyGrant;
      break;
    case MsgType::kFail:     edge = SpanEdge::kFail; break;
    case MsgType::kInquire:  edge = SpanEdge::kInquire; break;
    case MsgType::kYield:    edge = SpanEdge::kYield; break;
    case MsgType::kTransfer: edge = SpanEdge::kTransfer; break;
    case MsgType::kRelease:  edge = SpanEdge::kRelease; break;
    case MsgType::kTokenReq: edge = SpanEdge::kTokenReq; break;
    case MsgType::kToken:    edge = SpanEdge::kToken; break;
    default:
      return;  // replica / failure traffic carries no request span
  }
  // A wire edge's cause is whatever the *sender* was handling when the
  // message left: the network carried that index alongside the message.
  record(SpanEvent{at, m.sent_at, edge, m.span, m.src, m.dst, m.arbiter,
                   lock, net_.delivering_cause()});
}

void SpanRecorder::on_span_issue(SiteId site, LockId lock, SpanId span,
                                 Time at) {
  // Roots: a request is born of the workload, not of protocol traffic.
  record(SpanEvent{at, at, SpanEdge::kIssue, span, site, site, kNoSite, lock,
                   net::kNoCause});
}
void SpanRecorder::on_span_enter(SiteId site, LockId lock, SpanId span,
                                 Time at) {
  // Entry fires inside the handler of the delivery that completed the
  // quorum (or granted the token): send_cause() still holds the index of
  // the wire edge record() just logged for it. A direct (local, no-wire)
  // entry fires straight from request_cs and links back to its own issue.
  record(SpanEvent{at, at, SpanEdge::kEnter, span, site, site, kNoSite, lock,
                   net_.send_cause()});
}
void SpanRecorder::on_span_exit(SiteId site, LockId lock, SpanId span,
                                Time at) {
  // Roots: exit timing is the application's CS duration, not protocol
  // delay. (Messages sent by the release path chain FROM this edge.)
  record(SpanEvent{at, at, SpanEdge::kExit, span, site, site, kNoSite, lock,
                   net::kNoCause});
}
void SpanRecorder::on_span_abort(SiteId site, LockId lock, SpanId span,
                                 Time at) {
  record(SpanEvent{at, at, SpanEdge::kAbort, span, site, site, kNoSite, lock,
                   net_.send_cause()});
}

std::vector<SpanEvent> SpanRecorder::span(SpanId id) const {
  std::vector<SpanEvent> out;
  for (const SpanEvent& e : events_)
    if (e.span == id) out.push_back(e);
  return out;
}

std::vector<Handoff> SpanRecorder::contended_handoffs() const {
  // Events are already in causal (recording) order: walk once per lock,
  // tracking each request's issue time, the lock's last exit, and proxy
  // grants delivered at the entering instant. Locks are independent
  // critical sections, so all of this state is keyed by lock — an exit on
  // lock A never makes an entry on lock B look contended.
  struct Key {  // (lock, span) — span ids alone collide across locks
    LockId lock;
    SpanId span;
    bool operator<(const Key& o) const {
      return lock != o.lock ? lock < o.lock : span < o.span;
    }
  };
  struct LastExit {
    Time at = 0;
    SiteId site = kNoSite;
  };
  std::map<Key, Time> issued;
  std::map<Key, Time> proxy_granted;  // (lock, span) -> latest proxy grant
  std::map<LockId, LastExit> last_exit;
  std::vector<Handoff> out;
  for (const SpanEvent& e : events_) {
    switch (e.edge) {
      case SpanEdge::kIssue:
        issued[Key{e.lock, e.span}] = e.at;
        break;
      case SpanEdge::kProxyGrant:
        proxy_granted[Key{e.lock, e.span}] = e.at;
        break;
      case SpanEdge::kExit:
        last_exit[e.lock] = LastExit{e.at, e.from};
        break;
      case SpanEdge::kEnter: {
        auto ex = last_exit.find(e.lock);
        if (ex == last_exit.end()) break;  // first tenure on this lock
        auto it = issued.find(Key{e.lock, e.span});
        if (it == issued.end() || it->second > ex->second.at)
          break;  // uncontended
        auto pg = proxy_granted.find(Key{e.lock, e.span});
        const bool proxied = pg != proxy_granted.end() &&
                             pg->second > ex->second.at && pg->second <= e.at;
        out.push_back(Handoff{ex->second.at, e.at, ex->second.site, e.from,
                              e.span, proxied, e.lock});
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::string format_span(SpanId s) {
  if (s == kNoSpan) return "-";
  return std::to_string(span_site(s)) + ":" + std::to_string(span_seq(s));
}

SpanId parse_span(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    char* end = nullptr;
    const SpanId raw = std::strtoull(text.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && end != text.c_str() ? raw
                                                                 : kNoSpan;
  }
  const std::string site_s = text.substr(0, colon);
  const std::string seq_s = text.substr(colon + 1);
  if (site_s.empty() || seq_s.empty()) return kNoSpan;
  char* end = nullptr;
  const long site = std::strtol(site_s.c_str(), &end, 10);
  if (*end != '\0' || site < 0) return kNoSpan;
  const SeqNum seq = std::strtoull(seq_s.c_str(), &end, 10);
  if (*end != '\0') return kNoSpan;
  return span_of(ReqId{seq, static_cast<SiteId>(site)});
}

}  // namespace dqme::obs
