#include "obs/lock_stats.h"

#include <algorithm>

namespace dqme::obs {

void LockStats::record(LockId lock, double wait) {
  if (!enabled()) return;
  ++total_;
  auto it = entries_.find(lock);
  if (it != entries_.end()) {
    ++it->second.count;
    it->second.wait_sum += wait;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(lock, Entry{lock, 1, 0, wait});
    return;
  }
  // SpaceSaving eviction: replace the minimum-count entry (ties toward the
  // smallest LockId — the map's first match) and inherit its count as the
  // newcomer's overcount bound.
  auto victim = entries_.begin();
  for (auto jt = entries_.begin(); jt != entries_.end(); ++jt)
    if (jt->second.count < victim->second.count) victim = jt;
  const uint64_t floor = victim->second.count;
  entries_.erase(victim);
  entries_.emplace(lock, Entry{lock, floor + 1, floor, wait});
  ++evictions_;
}

std::vector<LockStats::Entry> LockStats::top(size_t k) const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [lock, e] : entries_) out.push_back(e);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count != b.count ? a.count > b.count : a.lock < b.lock;
  });
  if (k > 0 && out.size() > k) out.resize(k);
  return out;
}

void LockStats::merge(const LockStats& other) {
  if (!other.enabled()) return;
  if (!enabled()) {
    *this = other;
    return;
  }
  capacity_ = std::max(capacity_, other.capacity_);
  evictions_ += other.evictions_;
  total_ += other.total_;
  for (const auto& [lock, e] : other.entries_) {
    Entry& mine = entries_[lock];
    mine.lock = lock;
    mine.count += e.count;
    mine.overcount += e.overcount;
    mine.wait_sum += e.wait_sum;
  }
  // Evict back down to capacity: drop the smallest counts, ties toward the
  // LARGEST LockId (the smaller id survives, mirroring record()'s
  // preference), counting each drop as an eviction since information about
  // those locks is lost.
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto jt = entries_.begin(); jt != entries_.end(); ++jt) {
      if (jt->second.count < victim->second.count ||
          (jt->second.count == victim->second.count &&
           jt->first > victim->first))
        victim = jt;
    }
    entries_.erase(victim);
    ++evictions_;
  }
}

void LockStats::write_json(std::ostream& os) const {
  os << "{\"capacity\": " << capacity_ << ", \"tracked\": " << entries_.size()
     << ", \"total\": " << total_ << ", \"evictions\": " << evictions_
     << ", \"top\": [";
  const std::vector<Entry> sorted = top(0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    const Entry& e = sorted[i];
    os << (i ? ", " : "") << "{\"lock\": " << e.lock
       << ", \"count\": " << e.count << ", \"overcount\": " << e.overcount
       << ", \"wait_sum\": " << e.wait_sum << "}";
  }
  os << "]}";
}

}  // namespace dqme::obs
