// Causal request spans (the observability tentpole).
//
// Every CS request attempt is a span, named by span_of(its ReqId) and
// piggybacked on every control message that works toward that request's CS
// entry (net::Message::span). A SpanRecorder collects the span's causal
// edges from two attach-time hooks:
//
//   * site edges  — issue / enter / exit / abort, reported by MutexSite
//     through the mutex::SpanObserver interface,
//   * wire edges  — request / grant / proxy-grant / fail / inquire /
//     transfer / yield / release, observed at delivery time through
//     Network::on_deliver (each carries both send and delivery instants).
//
// The edge list makes the paper's Table 1 delay claim *causally* checkable:
// contended_handoffs() pairs every CS exit with the next contended entry,
// and flags whether the entry was produced by a proxy-forwarded reply (the
// §3 mechanism, exit→enter = 1·T) or by a release→reply relay through the
// arbiter (Maekawa, 2·T). Recording is opt-in; nothing here runs when no
// recorder is attached.
#pragma once

#include <string>
#include <vector>

#include "mutex/mutex_site.h"
#include "net/network.h"

namespace dqme::obs {

enum class SpanEdge : uint8_t {
  // Site-side edges (from mutex::SpanObserver). from == to == the site.
  kIssue,
  kEnter,
  kExit,
  kAbort,
  // Wire edges, recorded at delivery. from/to = src/dst sites.
  kRequest,
  kGrant,       // reply delivered by the arbiter itself
  kProxyGrant,  // reply delivered on the arbiter's behalf by the CS holder
  kFail,
  kInquire,
  kYield,
  kTransfer,
  kRelease,
  // Token traffic (Raymond / Suzuki–Kasami). Tokens serve whole queues,
  // not one span, so these usually carry span == kNoSpan — the critical-
  // path extractor follows their `cause` links instead of span matching.
  kTokenReq,
  kToken,
};

std::string_view to_string(SpanEdge e);

struct SpanEvent {
  Time at = 0;       // site edges: the instant; wire edges: delivery time
  Time sent_at = 0;  // wire edges: when the message left `from`
  SpanEdge edge = SpanEdge::kIssue;
  SpanId span = kNoSpan;
  SiteId from = kNoSite;
  SiteId to = kNoSite;
  SiteId arbiter = kNoSite;  // wire edges about a permission: whose
  // Span ids are derived from (site, seq) and can collide across locks;
  // (lock, span) is the unique request key in a multi-lock run.
  LockId lock = kLock0;
  // Causal predecessor: index of the earlier SpanEvent in the same
  // recorder's stream that *enabled* this one (the edge whose handler sent
  // this message, or — for site edges — the delivery that triggered the
  // state change). net::kNoCause marks a root (issue, exit, or an edge
  // whose predecessor fell outside the recorder's view).
  net::CauseId cause = net::kNoCause;
};

// One observed CS handoff under contention: `to` had already issued its
// request when `from` exited, and entered enter_at - exit_at later.
struct Handoff {
  Time exit_at = 0;
  Time enter_at = 0;
  SiteId from = kNoSite;
  SiteId to = kNoSite;
  SpanId span = kNoSpan;  // the entering request's span
  bool proxied = false;   // entry completed by a proxy-forwarded reply
  LockId lock = kLock0;   // handoffs pair exits/entries of the same lock
};

class SpanRecorder final : public mutex::SpanObserver {
 public:
  // Hooks Network::on_deliver (chaining any hook already installed).
  // Site edges additionally require attach() / attach_all() — MutexSite
  // reports to at most one observer.
  explicit SpanRecorder(net::Network& net, size_t capacity = 1'000'000);

  void attach(mutex::MutexSite& site) { site.attach_span_observer(this); }
  template <typename Sites>
  void attach_all(Sites&& sites) {
    for (auto& s : sites) attach(*s);
  }

  const std::vector<SpanEvent>& events() const { return events_; }
  size_t dropped() const { return dropped_; }

  // All edges of one span, in recording (= causal) order. Matches on the
  // span id alone (single-lock tooling); multi-lock consumers filter on
  // the event's (lock, span) pair.
  std::vector<SpanEvent> span(SpanId id) const;

  // Every contended exit→enter pair, time-ordered (see Handoff). Exits
  // and entries pair up within a lock: concurrent CS tenures on distinct
  // locks are legal and must not read as contention.
  std::vector<Handoff> contended_handoffs() const;

  // mutex::SpanObserver
  void on_span_issue(SiteId site, LockId lock, SpanId span, Time at) override;
  void on_span_enter(SiteId site, LockId lock, SpanId span, Time at) override;
  void on_span_exit(SiteId site, LockId lock, SpanId span, Time at) override;
  void on_span_abort(SiteId site, LockId lock, SpanId span, Time at) override;

 private:
  void record(SpanEvent e);
  void on_message(const net::Message& m, LockId lock, Time at);

  net::Network& net_;  // cause plumbing: set_send_cause / delivering_cause
  size_t capacity_;
  size_t dropped_ = 0;
  std::vector<SpanEvent> events_;
};

// Spans print and parse as "site:seq" (e.g. "3:17"), friendlier than the
// packed 64-bit value. parse accepts both spellings; returns kNoSpan on
// malformed input.
std::string format_span(SpanId s);
SpanId parse_span(const std::string& text);

}  // namespace dqme::obs
