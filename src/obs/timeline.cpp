#include "obs/timeline.h"

#include <algorithm>

namespace dqme::obs {

Timeline::Counter& Timeline::counter(std::string_view name) {
  DQME_CHECK_MSG(enabled(), "series on a disabled timeline");
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Counter()).first;
  it->second.owner_ = this;
  return it->second;
}

Timeline::Gauge& Timeline::gauge(std::string_view name) {
  DQME_CHECK_MSG(enabled(), "series on a disabled timeline");
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), Gauge()).first;
  it->second.owner_ = this;
  return it->second;
}

Timeline::Sketch& Timeline::sketch(std::string_view name, double lo,
                                   size_t buckets) {
  DQME_CHECK_MSG(enabled(), "series on a disabled timeline");
  DQME_CHECK(lo > 0 && buckets > 0);
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(std::string(name), Sketch()).first;
    it->second.lo_ = lo;
    it->second.buckets_ = buckets;
  }
  DQME_CHECK_MSG(it->second.lo_ == lo && it->second.buckets_ == buckets,
                 "sketch '" << name << "' re-declared with another spec");
  it->second.owner_ = this;
  return it->second;
}

const Timeline::Counter* Timeline::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Timeline::Gauge* Timeline::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Timeline::Sketch* Timeline::find_sketch(std::string_view name) const {
  auto it = sketches_.find(name);
  return it == sketches_.end() ? nullptr : &it->second;
}

void Timeline::mark(std::string_view label, Time at) {
  DQME_CHECK_MSG(enabled(), "marker on a disabled timeline");
  markers_.push_back({at, std::string(label)});
}

size_t Timeline::num_windows() const {
  size_t n = 0;
  for (const auto& [name, s] : counters_)
    n = std::max(n, s.sums_.size());
  for (const auto& [name, s] : gauges_) n = std::max(n, s.vals_.size());
  for (const auto& [name, s] : sketches_)
    n = std::max(n, s.hists_.size());
  return n;
}

void Timeline::merge(const Timeline& other) {
  if (!other.enabled()) return;
  if (!enabled()) {
    *this = other;
    // Re-home the series owners: *this was copied wholesale, but each
    // series still points at `other`.
    for (auto& [name, s] : counters_) s.owner_ = this;
    for (auto& [name, s] : gauges_) s.owner_ = this;
    for (auto& [name, s] : sketches_) s.owner_ = this;
    return;
  }
  DQME_CHECK_MSG(origin_ == other.origin_ && window_ == other.window_,
                 "merging timelines with different window specs");
  for (const auto& [name, s] : other.counters_) {
    Counter& mine = counter(name);
    if (mine.sums_.size() < s.sums_.size())
      mine.sums_.resize(s.sums_.size(), 0);
    for (size_t w = 0; w < s.sums_.size(); ++w) mine.sums_[w] += s.sums_[w];
  }
  for (const auto& [name, s] : other.gauges_) {
    Gauge& mine = gauge(name);
    if (mine.vals_.size() < s.vals_.size())
      mine.vals_.resize(s.vals_.size(), 0.0);
    for (size_t w = 0; w < s.vals_.size(); ++w)
      mine.vals_[w] = std::max(mine.vals_[w], s.vals_[w]);
  }
  for (const auto& [name, s] : other.sketches_) {
    Sketch& mine = sketch(name, s.lo_, s.buckets_);
    if (mine.hists_.size() < s.hists_.size())
      mine.hists_.resize(s.hists_.size(), Histogram::log2(s.lo_, s.buckets_));
    for (size_t w = 0; w < s.hists_.size(); ++w)
      mine.hists_[w].merge(s.hists_[w]);
  }
  // Marker union: concatenate, sort, dedupe — independent of merge order.
  markers_.insert(markers_.end(), other.markers_.begin(),
                  other.markers_.end());
  std::sort(markers_.begin(), markers_.end());
  markers_.erase(std::unique(markers_.begin(), markers_.end()),
                 markers_.end());
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Timeline::write_json(std::ostream& os) const {
  const size_t k = num_windows();
  os << "{\"origin\": " << origin_ << ", \"window\": " << window_
     << ", \"windows\": " << k << ",\n\"counters\": {";
  bool first = true;
  for (const auto& [name, s] : counters_) {
    os << (first ? "" : ",") << "\n  ";
    write_json_string(os, name);
    os << ": [";
    for (size_t w = 0; w < k; ++w)
      os << (w ? ", " : "") << (w < s.sums_.size() ? s.sums_[w] : 0);
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n") << "},\n\"gauges\": {";
  first = true;
  for (const auto& [name, s] : gauges_) {
    os << (first ? "" : ",") << "\n  ";
    write_json_string(os, name);
    os << ": [";
    for (size_t w = 0; w < k; ++w)
      os << (w ? ", " : "") << (w < s.vals_.size() ? s.vals_[w] : 0.0);
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n") << "},\n\"sketches\": {";
  first = true;
  for (const auto& [name, s] : sketches_) {
    os << (first ? "" : ",") << "\n  ";
    write_json_string(os, name);
    os << ": {\"lo\": " << s.lo_ << ", \"buckets\": " << s.buckets_;
    const Histogram empty = Histogram::log2(s.lo_, s.buckets_);
    auto h = [&](size_t w) -> const Histogram& {
      return w < s.hists_.size() ? s.hists_[w] : empty;
    };
    os << ",\n    \"count\": [";
    for (size_t w = 0; w < k; ++w) os << (w ? ", " : "") << h(w).count();
    os << "],\n    \"p50\": [";
    for (size_t w = 0; w < k; ++w) os << (w ? ", " : "") << h(w).p50();
    os << "],\n    \"p95\": [";
    for (size_t w = 0; w < k; ++w) os << (w ? ", " : "") << h(w).p95();
    os << "],\n    \"p99\": [";
    for (size_t w = 0; w < k; ++w) os << (w ? ", " : "") << h(w).p99();
    os << "],\n    \"p999\": [";
    for (size_t w = 0; w < k; ++w) os << (w ? ", " : "") << h(w).p999();
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n") << "},\n\"markers\": [";
  for (size_t i = 0; i < markers_.size(); ++i) {
    os << (i ? ", " : "") << "{\"at\": " << markers_[i].at << ", \"label\": ";
    write_json_string(os, markers_[i].label);
    os << "}";
  }
  os << "]}";
}

}  // namespace dqme::obs
