#include "obs/model.h"

#include <cmath>

namespace dqme::obs {

ModelPrediction predict(mutex::Algo algo, int n, double k) {
  ModelPrediction p;
  const double nn = static_cast<double>(n);
  switch (algo) {
    case mutex::Algo::kLamport:
      p = {true, 3 * (nn - 1), 3 * (nn - 1), true, 1};
      break;
    case mutex::Algo::kRicartAgrawala:
      p = {true, 2 * (nn - 1), 2 * (nn - 1), true, 1};
      break;
    case mutex::Algo::kRoucairolCarvalho:
      // 0..2(N-1) depending on how permissions are cached; delay stays T.
      p = {true, 0, 2 * (nn - 1), true, 1};
      break;
    case mutex::Algo::kMaekawa:
      p = {true, 3 * (k - 1), 5 * (k - 1), true, 2};
      break;
    case mutex::Algo::kSuzukiKasami:
      // N broadcast + 1 token when the token must move; 0 when held.
      p = {true, 0, nn, true, 1};
      break;
    case mutex::Algo::kRaymond:
      // O(log N) messages and delay: no constant closed form to gate on.
      break;
    case mutex::Algo::kCaoSinghal:
      p = {true, 3 * (k - 1), 6 * (k - 1), true, 1};
      break;
    case mutex::Algo::kCaoSinghalNoProxy:
      // The ablation reverts to the release->arbiter->reply relay: Maekawa's
      // delay at the proposed algorithm's message budget.
      p = {true, 3 * (k - 1), 6 * (k - 1), true, 2};
      break;
  }
  return p;
}

double mixed_sync_delay(uint64_t proxied, uint64_t direct, double fallback_t) {
  const uint64_t total = proxied + direct;
  if (total == 0) return fallback_t;
  return (static_cast<double>(proxied) + 2.0 * static_cast<double>(direct)) /
         static_cast<double>(total);
}

double divergence_point(double measured, double predicted) {
  if (predicted == 0) return 0;
  return std::abs(measured - predicted) / predicted;
}

double divergence_band(double measured, double lo, double hi) {
  if (measured >= lo && measured <= hi) return 0;
  const double bound = measured < lo ? lo : hi;
  const double denom = bound != 0 ? bound : (hi != 0 ? hi : 1);
  return std::abs(measured - bound) / denom;
}

}  // namespace dqme::obs
