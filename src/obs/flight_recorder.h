// Black-box flight recorder: a bounded ring of recent protocol/net events.
//
// The aggregate layers (Registry, Timeline) tell you THAT something went
// wrong; the flight recorder tells you what the system was doing in the
// ticks right before. It keeps the last `capacity` events — message
// deliveries, span edges (issue/enter/exit/abort), crashes, and checker
// violations — in a fixed ring, and dumps them as a Chrome-trace-compatible
// file the moment the InvariantChecker flags its first violation (or,
// opt-in, on any crash). Every violation ships its own black box: the dump's
// tail is the violating event itself, preceded by the traffic that led there.
//
// Feeding: two modes, composable.
//   * Through the checker — InvariantChecker::set_flight_recorder forwards
//     every wire edge, span edge, crash, and violation it sees. This is the
//     canonical wiring: it also covers scripted traffic (`dqme_check
//     --selftest` calls checker.observe() directly, bypassing the Network).
//   * Directly — attach(net) chains Network::on_deliver / on_crash for
//     checker-less runs.
//
// Cost model: one ring-slot assignment per event when attached; a run that
// never constructs a recorder executes no flight-recorder code at all (the
// hooks stay null — same detach contract as the tracer and the checker).
//
// Dump format: trace-event JSON ("X" instants, dur 1, one lane per site
// plus a "checker" lane for violations) accepted by ui.perfetto.dev and
// scripts/validate_trace.py. Events are written oldest-first, so the file's
// tail is the most recent history — the violation last.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/network.h"

namespace dqme::obs {

class FlightRecorder {
 public:
  enum class Kind : uint8_t {
    kDeliver,
    kCrash,
    kSpanIssue,
    kSpanEnter,
    kSpanExit,
    kSpanAbort,
    kViolation,
  };

  struct Event {
    Time at = 0;
    Kind kind = Kind::kDeliver;
    net::Message msg{};     // kDeliver only
    LockId lock = kNoLock;  // deliveries and span edges
    SiteId site = kNoSite;  // crash / span-edge subject
    SpanId span = kNoSpan;  // span edges
    std::string note;       // violation report text
  };

  explicit FlightRecorder(size_t capacity = 4096);

  // Chains Network::on_deliver / on_crash (keeping prior hooks) for runs
  // without an InvariantChecker. With a checker, prefer
  // checker.set_flight_recorder(&fr) — checker wiring also sees violations
  // and scripted (selftest) traffic.
  void attach(net::Network& net);

  void record_message(const net::Message& m, LockId lock, Time at);
  void record_crash(SiteId site, Time at);
  void record_span(Kind kind, SiteId site, LockId lock, SpanId span, Time at);
  // Records the violation, then — first violation only — auto-dumps to the
  // configured path, so the dump's tail IS the violating event.
  void record_violation(const std::string& what, Time at);

  // Auto-dump destination; empty (default) disables auto-dumping.
  void set_dump_path(const std::string& path) { dump_path_ = path; }
  const std::string& dump_path() const { return dump_path_; }
  // Also auto-dump on the first crash (off by default: §6 runs crash on
  // purpose and a crash is not a failure).
  void set_dump_on_crash(bool on) { dump_on_crash_ = on; }
  void set_label(const std::string& label) { label_ = label; }

  size_t capacity() const { return capacity_; }
  // Events currently held (<= capacity).
  size_t size() const { return ring_.size(); }
  // Events ever recorded; recorded() - size() have been overwritten.
  uint64_t recorded() const { return recorded_; }
  bool dumped() const { return dumped_; }

  // Held events, oldest first; events_.back() is the most recent.
  std::vector<Event> events() const;

  // Chrome-trace dump of events(), oldest first. dump_to returns false when
  // the file cannot be opened (the run must not die on a bad dump path).
  void dump(std::ostream& os) const;
  bool dump_to(const std::string& path) const;

 private:
  void push(Event e);
  void maybe_dump();

  size_t capacity_;
  std::string dump_path_;
  std::string label_ = "flight recorder";
  bool dump_on_crash_ = false;
  bool dumped_ = false;

  net::Network* net_ = nullptr;  // set by attach(); for hook timestamps

  std::vector<Event> ring_;  // grows to capacity_, then wraps at next_
  size_t next_ = 0;
  uint64_t recorded_ = 0;
};

}  // namespace dqme::obs
