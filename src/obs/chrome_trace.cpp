#include "obs/chrome_trace.h"

#include <map>
#include <string_view>
#include <tuple>

namespace dqme::obs {

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

// Emits one trace event object. `args_json` is pre-rendered ("{...}") or
// empty. Keeps every record on one line so the file greps well.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  void begin() { os_ << "{\"traceEvents\": [\n"; }

  void event(std::string_view name, std::string_view cat, char ph, Time ts,
             SiteId tid, std::string_view extra = {},
             std::string_view args_json = {}) {
    os_ << (first_ ? "  " : ",\n  ") << "{\"name\": ";
    write_json_string(os_, name);
    os_ << ", \"cat\": ";
    write_json_string(os_, cat);
    os_ << ", \"ph\": \"" << ph << "\", \"ts\": " << ts
        << ", \"pid\": 0, \"tid\": " << tid;
    if (!extra.empty()) os_ << ", " << extra;
    if (!args_json.empty()) os_ << ", \"args\": " << args_json;
    os_ << "}";
    first_ = false;
  }

  void end(std::string_view label) {
    os_ << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"label\": ";
    write_json_string(os_, label);
    os_ << "}}\n";
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string span_args(SpanId s) {
  return "{\"span\": \"" + format_span(s) + "\"}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const ChromeTraceData& data) {
  EventWriter w(os);
  w.begin();

  // Lane metadata: one "thread" per site, ordered by site id.
  for (SiteId s = 0; s < data.n_sites; ++s) {
    const std::string lane = "site " + std::to_string(s);
    w.event("thread_name", "__metadata", 'M', 0, s, {},
            "{\"name\": \"" + lane + "\"}");
    w.event("thread_sort_index", "__metadata", 'M', 0, s, {},
            "{\"sort_index\": " + std::to_string(s) + "}");
  }

  const auto keep = [&](SpanId span, LockId lock) {
    return (data.only_span == kNoSpan || span == data.only_span) &&
           (data.only_lock == kNoLock || lock == data.only_lock);
  };

  // CS intervals as matched B/E pairs, and request lifetimes as async b/e
  // pairs (issue -> enter/abort). Single forward walk; opens with no close
  // by end-of-trace are dropped so every emitted B has its E.
  std::map<SiteId, SpanEvent> open_cs;        // site  -> its kEnter
  std::map<SpanId, SpanEvent> open_acquire;   // span  -> its kIssue
  for (const SpanEvent& e : data.span_events) {
    if (!keep(e.span, e.lock)) continue;
    switch (e.edge) {
      case SpanEdge::kIssue:
        open_acquire[e.span] = e;
        break;
      case SpanEdge::kEnter: {
        open_cs[e.from] = e;
        auto it = open_acquire.find(e.span);
        if (it != open_acquire.end()) {
          const std::string id = "\"id\": " + std::to_string(e.span);
          w.event("acquire", "request", 'b', it->second.at, e.from, id,
                  span_args(e.span));
          w.event("acquire", "request", 'e', e.at, e.from, id);
          open_acquire.erase(it);
        }
        break;
      }
      case SpanEdge::kExit: {
        auto it = open_cs.find(e.from);
        if (it != open_cs.end()) {
          w.event("CS", "cs", 'B', it->second.at, e.from, {},
                  span_args(e.span));
          w.event("CS", "cs", 'E', e.at, e.from);
          open_cs.erase(it);
        }
        break;
      }
      case SpanEdge::kAbort: {
        auto it = open_acquire.find(e.span);
        if (it != open_acquire.end()) {
          const std::string id = "\"id\": " + std::to_string(e.span);
          w.event("acquire (aborted)", "request", 'b', it->second.at, e.from,
                  id, span_args(e.span));
          w.event("acquire (aborted)", "request", 'e', e.at, e.from, id);
          open_acquire.erase(it);
        }
        break;
      }
      default:
        break;  // wire edges render from data.messages below
    }
  }

  // Critical-path hops, keyed by the wire coordinates a TraceEvent can
  // reproduce. Counted (not a set): identical duplicate messages tag one
  // arrow each, so the tagged arrows stay exactly one chain.
  std::map<std::tuple<Time, Time, SiteId, SiteId, LockId>, int> crit;
  for (int32_t idx : data.crit_events) {
    if (idx < 0 || static_cast<size_t>(idx) >= data.span_events.size())
      continue;
    const SpanEvent& e = data.span_events[static_cast<size_t>(idx)];
    ++crit[{e.sent_at, e.at, e.from, e.to, e.lock}];
  }

  // Messages: a thin slice on each endpoint's lane plus an s/f flow arrow
  // joining them. Proxy-forwarded replies — the paper's 1T handoff — get
  // cat "proxy" and an explicit name; hops of the highlighted critical
  // path carry "crit": 1 in args (slices and both arrow endpoints).
  uint64_t flow_id = 0;
  for (const net::TraceEvent& t : data.messages) {
    const net::Message& m = t.msg;
    if (!keep(m.span, t.lock)) continue;
    const bool proxy =
        m.type == net::MsgType::kReply && m.arbiter != kNoSite &&
        m.src != m.arbiter;
    const std::string name =
        proxy ? "reply (proxy)" : std::string(net::to_string(m.type));
    const std::string_view cat = proxy ? "proxy" : "msg";
    bool on_path = false;
    if (!crit.empty()) {
      auto it = crit.find({m.sent_at, t.at, m.src, m.dst, t.lock});
      if (it != crit.end() && it->second > 0) {
        --it->second;
        on_path = true;
      }
    }
    std::string args = span_args(m.span);
    if (on_path) args.insert(args.size() - 1, ", \"crit\": 1");
    const std::string id = "\"id\": " + std::to_string(++flow_id);
    // Zero-duration sends collapse in the viewer; give slices 1 tick.
    w.event(name, cat, 'X', m.sent_at, m.src, "\"dur\": 1", args);
    w.event(name, cat, 'X', t.at, m.dst, "\"dur\": 1", args);
    w.event(name, cat, 's', m.sent_at, m.src, id,
            on_path ? "{\"crit\": 1}" : "");
    w.event(name, cat, 'f', t.at, m.dst, id + ", \"bp\": \"e\"",
            on_path ? "{\"crit\": 1}" : "");
  }

  w.end(data.label);
}

}  // namespace dqme::obs
