// Per-lock dimensional stats with a space-bounded hot-K tracker.
//
// At small lock counts (M <= capacity) this is an exact per-lock table: CS
// completions and summed waiting time keyed by LockId. At x3's 4096-lock
// Zipf workloads it degrades gracefully into a SpaceSaving heavy-hitter
// sketch (Metwally et al.): the tracker keeps `capacity` entries, and a
// record() for an untracked lock evicts the minimum-count entry, inheriting
// its count as the new entry's `overcount` upper bound. The classic
// SpaceSaving guarantees hold: every lock with true count greater than the
// minimum tracked count is present, and for each entry
//   true_count ∈ [count - overcount, count].
// While evictions() == 0 the table is exact and overcount is 0 everywhere.
//
// Determinism: eviction picks the minimum count with ties broken toward the
// smallest LockId; merge() is a union-sum followed by the same deterministic
// eviction, so sweep results fold in result-index order to byte-identical
// JSON for any --jobs value (same contract as Registry / Timeline).
//
// Cost model: record() is one hash-map probe plus two adds while exact; the
// O(capacity) eviction scan only runs when distinct locks exceed capacity.
// A run with lock_stats_k == 0 never constructs one — zero hot-path cost.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "common/types.h"

namespace dqme::obs {

class LockStats {
 public:
  struct Entry {
    LockId lock = kNoLock;
    uint64_t count = 0;      // upper bound on true CS completions
    uint64_t overcount = 0;  // count - overcount lower-bounds the truth
    double wait_sum = 0;     // summed waiting time attributed to this entry
  };

  // Default-constructed trackers are disabled (capacity 0): record() is a
  // no-op, enabled() is false, merge() treats them as empty.
  LockStats() = default;
  explicit LockStats(size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }
  // Exact while nothing has been evicted: every tracked count is the truth.
  uint64_t evictions() const { return evictions_; }
  bool exact() const { return evictions_ == 0; }
  size_t tracked() const { return entries_.size(); }
  uint64_t total() const { return total_; }

  void record(LockId lock, double wait);

  // The k hottest entries, count-descending, ties toward the smaller
  // LockId. k == 0 (or k > tracked) returns everything tracked.
  std::vector<Entry> top(size_t k) const;

  // Deterministic fold: union-sums counts/overcounts/wait_sums, then evicts
  // back down to capacity (largest capacity of the two operands wins).
  // Merging into a disabled tracker adopts; merging a disabled one is a
  // no-op.
  void merge(const LockStats& other);

  // {"capacity": C, "tracked": T, "total": N, "evictions": E,
  //  "top": [{"lock": L, "count": C, "overcount": O, "wait_sum": W}, ...]}
  // — top is the full tracked set, sorted as top() sorts. Deterministic.
  void write_json(std::ostream& os) const;

 private:
  size_t capacity_ = 0;
  uint64_t evictions_ = 0;
  uint64_t total_ = 0;
  // Keyed storage: ordered map keeps iteration deterministic and makes the
  // tie-break-by-smallest-LockId eviction a natural first-match scan.
  std::map<LockId, Entry> entries_;
};

}  // namespace dqme::obs
