#include "core/cao_singhal.h"

#include <algorithm>

namespace dqme::core {

using net::Message;
using net::MsgType;

CaoSinghalSite::CaoSinghalSite(SiteId id, net::Network& net,
                               const quorum::QuorumSystem& quorums,
                               Options options)
    : MutexSite(id, net),
      opt_(options),
      quorums_(quorums),
      alive_(static_cast<size_t>(net.size()), true) {
  DQME_CHECK(quorums.num_sites() == net.size());
}

void CaoSinghalSite::send_to(SiteId dst, const Message* msgs, size_t n) {
  DQME_CHECK(n > 0);
  if (opt_.piggyback) {
    net().send_bundle(id(), dst, msgs, n);
  } else {
    for (size_t i = 0; i < n; ++i) net().send(id(), dst, msgs[i]);
  }
}

// ------------------------------------------------------------- requesting

void CaoSinghalSite::do_request() {
  DQME_CHECK_MSG(!stalled_, "site " << id() << " is stalled (no quorum)");
  if (opt_.fault_tolerant) {
    auto q = quorums_.quorum_for_alive(id(), alive_);
    if (!q) {
      stalled_ = true;
      abort_request();
      return;
    }
    req_set_ = *q;
  } else if (req_set_.empty()) {
    req_set_ = quorums_.quorum_for(id());
  }
  begin_request();
}

// A.1: reset per-request state and ask every arbiter in req_set.
void CaoSinghalSite::begin_request() {
  my_req_ = ReqId{tick(), id()};
  open_span(span_of(my_req_));
  failed_ = false;
  tran_stack_.clear();
  inq_queue_.clear();
  voted_.assign(req_set_);
  for (SiteId j : req_set_) net().send(id(), j, net::make_request(my_req_));
}

// Step B: enter once every arbiter's permission is held.
void CaoSinghalSite::try_enter() {
  if (!requesting()) return;
  if (!voted_.all()) return;
  // Deferred inquires die here: the release at exit answers them (D2).
  inq_queue_.clear();
  enter_cs();
}

// A.6: a reply — direct from the arbiter, or forwarded by a proxy.
void CaoSinghalSite::handle_reply(const Message& m) {
  if (!requesting() || m.req != my_req_) {
    note_stale_drop(MsgType::kReply);
    return;
  }
  const int pos = voted_.find(m.arbiter);
  DQME_CHECK_MSG(pos >= 0,
                 "reply for arbiter " << m.arbiter << " not in req_set of "
                                      << id());
  const auto p = static_cast<size_t>(pos);
  if (voted_.test(p)) {  // duplicate grant would be a protocol error upstream
    note_stale_drop(MsgType::kReply);
    return;
  }
  voted_.grant(p);
  // "first check if there is any inquire that came from the same sender as
  // that of the reply. If so, process this inquire."
  auto q = std::find(inq_queue_.begin(), inq_queue_.end(), m.arbiter);
  if (q != inq_queue_.end()) {
    inq_queue_.erase(q);
    process_inquire(m.arbiter);
  }
  // If this reply completes the quorum, the entry rode the proxy handoff
  // (1 hop, Table 1's 1T case) when the holder forwarded it, the arbiter
  // relay (2 hops) otherwise.
  set_entry_hops(m.src != m.arbiter ? 1 : 2);
  try_enter();
}

// A.3 entry point.
void CaoSinghalSite::handle_inquire(const Message& m) {
  if (m.req != my_req_ || idle()) {
    // Also covers "inquire arrives after we sent release": ignore (§3).
    note_stale_drop(MsgType::kInquire);
    return;
  }
  if (in_cs()) {
    // D2: never yield from inside the CS; the release at exit answers it.
    note_stale_drop(MsgType::kInquire);
    return;
  }
  process_inquire(m.src);
}

// A.3 body, also re-run when the matching reply or a fail arrives.
void CaoSinghalSite::process_inquire(SiteId arbiter) {
  DQME_CHECK(requesting());
  const int pos = voted_.find(arbiter);
  DQME_CHECK_MSG(pos >= 0,
                 "inquire from non-arbiter " << arbiter << " at " << id());
  if (voted_.test(static_cast<size_t>(pos)) && failed_) {
    // Give the permission back and cancel any forwarding duty we accepted
    // on this arbiter's behalf.
    voted_.revoke(static_cast<size_t>(pos));
    ++stats_.yields_sent;
    std::erase_if(tran_stack_, [&](const TranEntry& e) {
      return e.arbiter == arbiter;
    });
    net().send(id(), arbiter, net::make_yield(arbiter, my_req_));
    return;
  }
  // Not resolvable yet: either the reply has not arrived (proxy channels —
  // the case FIFO alone cannot order), or we are still hopeful (failed_ ==
  // 0) and will answer when a fail arrives or at release.
  if (std::find(inq_queue_.begin(), inq_queue_.end(), arbiter) ==
      inq_queue_.end()) {
    inq_queue_.push_back(arbiter);
    ++stats_.inquires_deferred;
  }
}

// A.7.
void CaoSinghalSite::handle_fail(const Message& m) {
  if (!requesting() || m.req != my_req_) {
    note_stale_drop(MsgType::kFail);
    return;
  }
  failed_ = true;
  drain_inquire_queue();
}

void CaoSinghalSite::drain_inquire_queue() {
  auto pending = std::move(inq_queue_);
  inq_queue_.clear();
  for (SiteId arbiter : pending) process_inquire(arbiter);
}

// A.5.
void CaoSinghalSite::handle_transfer(const Message& m) {
  if (idle() || m.req != my_req_) {
    note_stale_drop(MsgType::kTransfer);
    return;
  }
  const int pos = voted_.find(m.arbiter);
  DQME_CHECK(pos >= 0);
  if (!voted_.test(static_cast<size_t>(pos))) {
    // Outdated (we yielded this permission) or early (the forwarded reply
    // has not reached us). Both are discarded per A.5; in the early case
    // the arbiter recovers through the release(i, max) path.
    ++stats_.transfers_ignored;
    return;
  }
  tran_stack_.push_back(TranEntry{m.target, m.arbiter});
  ++stats_.transfers_accepted;
}

// Step C: exit protocol — forward replies as proxy, then notify arbiters.
// The grouping the node-based maps used to produce — destinations visited
// in ascending order, each bundle holding that destination's forwarded
// replies (arbiter-ascending) followed by its release — is reproduced here
// with three scratch vectors whose capacity survives across tenures, so a
// CS exit allocates nothing in steady state.
void CaoSinghalSite::do_release() {
  const ReqId done = my_req_;
  // C.1: honour the newest transfer per arbiter (stack order), discarding
  // superseded ones from the same sender.
  fwd_scratch_.clear();
  for (auto it = tran_stack_.rbegin(); it != tran_stack_.rend(); ++it) {
    bool superseded = false;
    for (const TranEntry& e : fwd_scratch_)
      if (e.arbiter == it->arbiter) {
        superseded = true;
        break;
      }
    if (!superseded) fwd_scratch_.push_back(*it);
  }
  tran_stack_.clear();
  std::sort(
      fwd_scratch_.begin(), fwd_scratch_.end(),
      [](const TranEntry& a, const TranEntry& b) { return a.arbiter < b.arbiter; });

  // Group everything exit-bound by destination so replies forwarded on
  // behalf of several arbiters to the same next entrant ride together.
  dst_scratch_.clear();
  for (const TranEntry& e : fwd_scratch_) dst_scratch_.push_back(e.target.site);
  dst_scratch_.insert(dst_scratch_.end(), req_set_.begin(), req_set_.end());
  std::sort(dst_scratch_.begin(), dst_scratch_.end());
  dst_scratch_.erase(std::unique(dst_scratch_.begin(), dst_scratch_.end()),
                     dst_scratch_.end());

  for (SiteId dst : dst_scratch_) {
    out_scratch_.clear();
    for (const TranEntry& e : fwd_scratch_) {
      if (e.target.site != dst) continue;
      out_scratch_.push_back(net::make_reply(e.arbiter, e.target));
      ++stats_.replies_forwarded;
    }
    if (std::find(req_set_.begin(), req_set_.end(), dst) != req_set_.end()) {
      // C.2: release(i, j) tells the arbiter a reply went to S_j on its
      // behalf; release(i, max) tells it nothing was forwarded.
      ReqId fwd;
      for (const TranEntry& e : fwd_scratch_)
        if (e.arbiter == dst) {
          fwd = e.target;
          break;
        }
      out_scratch_.push_back(net::make_release(done, fwd));
    }
    send_to(dst, out_scratch_.data(), out_scratch_.size());
  }

  my_req_ = ReqId{};
  voted_.clear();
  inq_queue_.clear();
}

// --------------------------------------------------------------- arbiter

// A.2. The printed pseudocode garbles the fail rule; §5.2's per-case
// message accounting (every contended case ships a fail) pins it down:
// exactly one request per tenure is the arbiter's *favourite* — it beats
// the lock holder and every waiter, and an inquire is outstanding for it.
// Every other contended arrival is told it failed; a displaced favourite
// (case 4) is told so the moment it is displaced. Without those fails a
// holder can defer an inquire forever and the 2-cycle of §4's Theorem 2
// proof deadlocks (see tests/cao_singhal_protocol_test.cpp).
void CaoSinghalSite::handle_request(const Message& m) {
  const ReqId r = m.req;
  // A site issues requests one at a time, so an older queued request from
  // the same site has been abandoned (§6 recovery) — supersede it.
  req_queue_.erase_if([&](const ReqId& q) { return q.site == r.site; });

  if (!lock_.valid()) {
    DQME_CHECK_MSG(req_queue_.empty(),
                   "arbiter " << id() << " free but queue non-empty");
    lock_ = r;
    inquired_this_tenure_ = false;
    ++case_stats_.grant_free;
    ++stats_.replies_direct;
    net().send(id(), r.site, net::make_reply(id(), r));
    return;
  }

  const bool have_head = !req_queue_.empty();
  const ReqId head = have_head ? req_queue_.front() : ReqId{};

  if (r < lock_ && (!have_head || r < head)) {
    // Cases 1 (queue empty), 5 (r < lock < head), 4 (r < head < lock):
    // r is the new favourite. Ask the holder to yield (once per tenure)
    // and re-point the proxy at r.
    if (!have_head) {
      ++case_stats_.c1_empty_higher;
    } else if (head < lock_) {
      // Case 4: the old favourite is displaced and learns it failed.
      ++case_stats_.c4_displace_head;
      net().send(id(), head.site, net::make_fail(id(), head));
    } else {
      ++case_stats_.c5_beats_lock;
    }
    Message bundle[2];
    size_t nb = 0;
    if (!inquired_this_tenure_) {
      inquired_this_tenure_ = true;
      bundle[nb++] = net::make_inquire(id(), lock_);
    }
    if (opt_.proxy_transfer) bundle[nb++] = net::make_transfer(r, id(), lock_);
    if (nb > 0) send_to(lock_.site, bundle, nb);
  } else if (!have_head || r < head) {
    // Cases 2 (queue empty) and 6 (lock < r < head): r is the best waiter
    // but the holder outranks it. r fails — so it will yield elsewhere if
    // inquired — yet the holder will still hand over to it directly at
    // exit, which is where the delay-T handoff comes from.
    if (!have_head)
      ++case_stats_.c2_empty_lower;
    else
      ++case_stats_.c6_between;
    net().send(id(), r.site, net::make_fail(id(), r));
    if (opt_.proxy_transfer)
      net().send(id(), lock_.site, net::make_transfer(r, id(), lock_));
  } else {
    // Case 3: r is not even the best waiter.
    ++case_stats_.c3_fail_newcomer;
    net().send(id(), r.site, net::make_fail(id(), r));
  }
  req_queue_.insert(r);
}

// Shared by A.4, release(i, max), and §6 unlock paths.
void CaoSinghalSite::grant_next_from_queue() {
  inquired_this_tenure_ = false;
  if (req_queue_.empty()) {
    lock_ = ReqId{};
    return;
  }
  const ReqId head = req_queue_.front();
  req_queue_.pop_front();
  lock_ = head;
  Message bundle[2];
  size_t nb = 0;
  bundle[nb++] = net::make_reply(id(), head);
  ++stats_.replies_direct;
  if (opt_.proxy_transfer && !req_queue_.empty())
    bundle[nb++] = net::make_transfer(req_queue_.front(), id(), head);
  send_to(head.site, bundle, nb);
}

void CaoSinghalSite::send_proxy_update() {
  if (!lock_.valid() || req_queue_.empty()) return;
  const ReqId head = req_queue_.front();
  Message bundle[2];
  size_t nb = 0;
  // D6: a stale forward can install a lock holder that the queue head
  // already outranks, with the in-flight superseding transfer lost. Restore
  // the invariant that such a holder has an inquire outstanding, or the
  // head could wait forever behind a blocked holder.
  if (head < lock_ && !inquired_this_tenure_) {
    inquired_this_tenure_ = true;
    bundle[nb++] = net::make_inquire(id(), lock_);
  }
  if (opt_.proxy_transfer) bundle[nb++] = net::make_transfer(head, id(), lock_);
  if (nb > 0) send_to(lock_.site, bundle, nb);
}

// A.4.
void CaoSinghalSite::handle_yield(const Message& m) {
  if (!lock_.valid() || lock_ != m.req) {
    note_stale_drop(MsgType::kYield);
    return;
  }
  req_queue_.insert(lock_);  // the yielder still wants the CS
  grant_next_from_queue();
}

// C at the arbiter (prose in §3.2; formal fragment in §6 case 3).
void CaoSinghalSite::handle_release(const Message& m) {
  if (!lock_.valid() || lock_ != m.req) {
    // Not from our lock holder. A §6 recovery release for a queued (never
    // granted) request scrubs the queue; anything else is stale.
    auto it = req_queue_.find(m.req);
    if (it == req_queue_.end()) {
      note_stale_drop(MsgType::kRelease);
      return;
    }
    const bool was_head = it == req_queue_.begin();
    req_queue_.erase(it);
    if (was_head) send_proxy_update();  // re-point the proxy
    return;
  }
  if (m.target.valid()) {
    // The holder forwarded our reply to m.target on our behalf.
    auto it = req_queue_.find(m.target);
    if (it != req_queue_.end()) {
      req_queue_.erase(it);
      lock_ = m.target;
      inquired_this_tenure_ = false;
      send_proxy_update();
      return;
    }
    // The forwarded-to request is gone (crashed site scrubbed by §6, or it
    // abandoned the request). The forwarded reply will be dropped as stale
    // at its receiver; grant the next waiter ourselves.
  }
  grant_next_from_queue();
}

// ------------------------------------------------------ §6 fault tolerance

void CaoSinghalSite::handle_failure_notice(const Message& m) {
  if (!opt_.fault_tolerant) return;
  const SiteId f = m.arbiter;
  DQME_CHECK(0 <= f && f < net().size());
  if (!alive_[static_cast<size_t>(f)]) return;  // duplicate notice
  alive_[static_cast<size_t>(f)] = false;

  // Arbiter side. Case 1: drop f's queued request, re-pointing the proxy
  // if it was the favourite. Case 3: if f held our permission, grant on.
  const auto it = std::find_if(req_queue_.begin(), req_queue_.end(),
                               [&](const ReqId& q) { return q.site == f; });
  if (it != req_queue_.end()) {
    const bool was_head = it == req_queue_.begin();
    req_queue_.erase(it);
    if (was_head && lock_.valid()) send_proxy_update();
  }
  if (lock_.valid() && lock_.site == f) grant_next_from_queue();

  // Requester side. Case 2: forwarding duties toward f are void.
  std::erase_if(tran_stack_,
                [&](const TranEntry& e) { return e.target.site == f; });

  // If f arbitrates for us, the current attempt cannot complete: release
  // every claim this request holds and start over on a reconstructed
  // quorum (the paper's "releases all the resources it has gotten, and
  // executes the quorum construction algorithm to select another quorum").
  if (requesting() &&
      std::find(req_set_.begin(), req_set_.end(), f) != req_set_.end()) {
    ++stats_.recoveries;
    for (SiteId j : req_set_) {
      if (j == f || !alive_[static_cast<size_t>(j)]) continue;
      net().send(id(), j, net::make_release(my_req_, ReqId{}));
    }
    voted_.clear();
    inq_queue_.clear();
    tran_stack_.clear();
    auto q = quorums_.quorum_for_alive(id(), alive_);
    if (!q) {
      stalled_ = true;
      my_req_ = ReqId{};
      abort_request();
      return;
    }
    req_set_ = *q;
    begin_request();
  }
}

// ------------------------------------------------------------- dispatcher

void CaoSinghalSite::on_message(const Message& m) {
  observe(m.req.seq);
  switch (m.type) {
    case MsgType::kRequest:       handle_request(m);        break;
    case MsgType::kReply:         handle_reply(m);          break;
    case MsgType::kRelease:       handle_release(m);        break;
    case MsgType::kInquire:       handle_inquire(m);        break;
    case MsgType::kFail:          handle_fail(m);           break;
    case MsgType::kYield:         handle_yield(m);          break;
    case MsgType::kTransfer:      handle_transfer(m);       break;
    case MsgType::kFailureNotice: handle_failure_notice(m); break;
    default:
      DQME_CHECK_MSG(false, "cao-singhal: unexpected " << m);
  }
}

void CaoSinghalSite::debug_dump(std::ostream& os) const {
  os << "site " << id() << " state="
     << (idle() ? "idle" : requesting() ? "requesting" : "in_cs")
     << " my_req=" << my_req_ << " failed=" << failed_;
  os << " voted={";
  for (size_t i = 0; i < voted_.size(); ++i)
    os << voted_.member(i) << ':' << voted_.test(i) << ' ';
  os << "} inq_q={";
  for (SiteId a : inq_queue_) os << a << ' ';
  os << "} tran_stack={";
  for (const auto& e : tran_stack_) os << e.target << "@" << e.arbiter << ' ';
  os << "} | arbiter lock=" << lock_ << " queue={";
  for (const auto& r : req_queue_) os << r << ' ';
  os << "} inquired=" << inquired_this_tenure_ << '\n';
}

}  // namespace dqme::core
