#include "core/cao_singhal.h"

#include <algorithm>
#include <utility>

namespace dqme::core {

using net::Message;
using net::MsgType;

CaoSinghalSite::CaoSinghalSite(SiteId id, net::Executor& net,
                               const quorum::QuorumSystem& quorums,
                               Options options)
    : MutexSite(id, net, options.num_locks),
      opt_(std::move(options)),
      quorums_(quorums),
      lk_(static_cast<size_t>(opt_.num_locks)),
      alive_(static_cast<size_t>(net.size()), true) {
  DQME_CHECK(quorums.num_sites() == net.size());
}

const quorum::QuorumSystem& CaoSinghalSite::qs(LockId lock) const {
  if (opt_.quorum_for_lock) {
    const quorum::QuorumSystem* q = opt_.quorum_for_lock(lock);
    if (q != nullptr) {
      DQME_CHECK(q->num_sites() == quorums_.num_sites());
      return *q;
    }
  }
  return quorums_;
}

void CaoSinghalSite::send_to(SiteId dst, const Message* msgs, size_t n,
                             LockId lock) {
  DQME_CHECK(n > 0);
  if (opt_.piggyback) {
    net().send_bundle(id(), dst, msgs, n, lock);
  } else {
    for (size_t i = 0; i < n; ++i) net().send(id(), dst, msgs[i], lock);
  }
}

// ------------------------------------------------------------- requesting

void CaoSinghalSite::do_request(LockId lock) {
  DQME_CHECK_MSG(!stalled_, "site " << id() << " is stalled (no quorum)");
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (opt_.fault_tolerant) {
    auto q = qs(lock).quorum_for_alive(id(), alive_);
    if (!q) {
      stalled_ = true;
      abort_request(lock);
      return;
    }
    L.req_set = *q;
  } else if (L.req_set.empty()) {
    L.req_set = qs(lock).quorum_for(id());
  }
  begin_request(lock);
}

// A.1: reset per-request state and ask every arbiter in req_set.
void CaoSinghalSite::begin_request(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.my_req = ReqId{tick(lock), id()};
  open_span(lock, span_of(L.my_req));
  L.failed = false;
  L.tran_stack.clear();
  L.inq_queue.clear();
  L.voted.assign(L.req_set);
  for (SiteId j : L.req_set)
    net().send(id(), j, net::make_request(L.my_req), lock);
}

// Step B: enter once every arbiter's permission is held.
void CaoSinghalSite::try_enter(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock)) return;
  if (!L.voted.all()) return;
  // Deferred inquires die here: the release at exit answers them (D2).
  L.inq_queue.clear();
  enter_cs(lock);
}

// A.6: a reply — direct from the arbiter, or forwarded by a proxy.
void CaoSinghalSite::handle_reply(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock) || m.req != L.my_req) {
    note_stale_drop(MsgType::kReply);
    return;
  }
  const int pos = L.voted.find(m.arbiter);
  DQME_CHECK_MSG(pos >= 0,
                 "reply for arbiter " << m.arbiter << " not in req_set of "
                                      << id());
  const auto p = static_cast<size_t>(pos);
  if (L.voted.test(p)) {  // duplicate grant: protocol error upstream
    note_stale_drop(MsgType::kReply);
    return;
  }
  L.voted.grant(p);
  // "first check if there is any inquire that came from the same sender as
  // that of the reply. If so, process this inquire."
  auto q = std::find(L.inq_queue.begin(), L.inq_queue.end(), m.arbiter);
  if (q != L.inq_queue.end()) {
    L.inq_queue.erase(q);
    process_inquire(lock, m.arbiter);
  }
  // If this reply completes the quorum, the entry rode the proxy handoff
  // (1 hop, Table 1's 1T case) when the holder forwarded it, the arbiter
  // relay (2 hops) otherwise.
  set_entry_hops(lock, m.src != m.arbiter ? 1 : 2);
  try_enter(lock);
}

// A.3 entry point.
void CaoSinghalSite::handle_inquire(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (m.req != L.my_req || idle(lock)) {
    // Also covers "inquire arrives after we sent release": ignore (§3).
    note_stale_drop(MsgType::kInquire);
    return;
  }
  if (in_cs(lock)) {
    // D2: never yield from inside the CS; the release at exit answers it.
    note_stale_drop(MsgType::kInquire);
    return;
  }
  process_inquire(lock, m.src);
}

// A.3 body, also re-run when the matching reply or a fail arrives.
void CaoSinghalSite::process_inquire(LockId lock, SiteId arbiter) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  DQME_CHECK(requesting(lock));
  const int pos = L.voted.find(arbiter);
  DQME_CHECK_MSG(pos >= 0,
                 "inquire from non-arbiter " << arbiter << " at " << id());
  if (L.voted.test(static_cast<size_t>(pos)) && L.failed) {
    // Give the permission back and cancel any forwarding duty we accepted
    // on this arbiter's behalf.
    L.voted.revoke(static_cast<size_t>(pos));
    ++stats_.yields_sent;
    std::erase_if(L.tran_stack, [&](const TranEntry& e) {
      return e.arbiter == arbiter;
    });
    net().send(id(), arbiter, net::make_yield(arbiter, L.my_req), lock);
    return;
  }
  // Not resolvable yet: either the reply has not arrived (proxy channels —
  // the case FIFO alone cannot order), or we are still hopeful (failed ==
  // 0) and will answer when a fail arrives or at release.
  if (std::find(L.inq_queue.begin(), L.inq_queue.end(), arbiter) ==
      L.inq_queue.end()) {
    L.inq_queue.push_back(arbiter);
    ++stats_.inquires_deferred;
  }
}

// A.7.
void CaoSinghalSite::handle_fail(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!requesting(lock) || m.req != L.my_req) {
    note_stale_drop(MsgType::kFail);
    return;
  }
  L.failed = true;
  drain_inquire_queue(lock);
}

void CaoSinghalSite::drain_inquire_queue(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  auto pending = std::move(L.inq_queue);
  L.inq_queue.clear();
  for (SiteId arbiter : pending) process_inquire(lock, arbiter);
}

// A.5.
void CaoSinghalSite::handle_transfer(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (idle(lock) || m.req != L.my_req) {
    note_stale_drop(MsgType::kTransfer);
    return;
  }
  const int pos = L.voted.find(m.arbiter);
  DQME_CHECK(pos >= 0);
  if (!L.voted.test(static_cast<size_t>(pos))) {
    // Outdated (we yielded this permission) or early (the forwarded reply
    // has not reached us). Both are discarded per A.5; in the early case
    // the arbiter recovers through the release(i, max) path.
    ++stats_.transfers_ignored;
    return;
  }
  L.tran_stack.push_back(TranEntry{m.target, m.arbiter});
  ++stats_.transfers_accepted;
}

// Step C: exit protocol — forward replies as proxy, then notify arbiters.
// The grouping the node-based maps used to produce — destinations visited
// in ascending order, each bundle holding that destination's forwarded
// replies (arbiter-ascending) followed by its release — is reproduced here
// with three scratch vectors whose capacity survives across tenures, so a
// CS exit allocates nothing in steady state.
void CaoSinghalSite::do_release(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  const ReqId done = L.my_req;
  // C.1: honour the newest transfer per arbiter (stack order), discarding
  // superseded ones from the same sender.
  fwd_scratch_.clear();
  for (auto it = L.tran_stack.rbegin(); it != L.tran_stack.rend(); ++it) {
    bool superseded = false;
    for (const TranEntry& e : fwd_scratch_)
      if (e.arbiter == it->arbiter) {
        superseded = true;
        break;
      }
    if (!superseded) fwd_scratch_.push_back(*it);
  }
  L.tran_stack.clear();
  std::sort(
      fwd_scratch_.begin(), fwd_scratch_.end(),
      [](const TranEntry& a, const TranEntry& b) { return a.arbiter < b.arbiter; });

  // Group everything exit-bound by destination so replies forwarded on
  // behalf of several arbiters to the same next entrant ride together.
  dst_scratch_.clear();
  for (const TranEntry& e : fwd_scratch_) dst_scratch_.push_back(e.target.site);
  dst_scratch_.insert(dst_scratch_.end(), L.req_set.begin(), L.req_set.end());
  std::sort(dst_scratch_.begin(), dst_scratch_.end());
  dst_scratch_.erase(std::unique(dst_scratch_.begin(), dst_scratch_.end()),
                     dst_scratch_.end());

  for (SiteId dst : dst_scratch_) {
    out_scratch_.clear();
    for (const TranEntry& e : fwd_scratch_) {
      if (e.target.site != dst) continue;
      out_scratch_.push_back(net::make_reply(e.arbiter, e.target));
      ++stats_.replies_forwarded;
    }
    if (std::find(L.req_set.begin(), L.req_set.end(), dst) !=
        L.req_set.end()) {
      // C.2: release(i, j) tells the arbiter a reply went to S_j on its
      // behalf; release(i, max) tells it nothing was forwarded.
      ReqId fwd;
      for (const TranEntry& e : fwd_scratch_)
        if (e.arbiter == dst) {
          fwd = e.target;
          break;
        }
      out_scratch_.push_back(net::make_release(done, fwd));
    }
    send_to(dst, out_scratch_.data(), out_scratch_.size(), lock);
  }

  L.my_req = ReqId{};
  L.voted.clear();
  L.inq_queue.clear();
}

// --------------------------------------------------------------- arbiter

// A.2. The printed pseudocode garbles the fail rule; §5.2's per-case
// message accounting (every contended case ships a fail) pins it down:
// exactly one request per tenure is the arbiter's *favourite* — it beats
// the lock holder and every waiter, and an inquire is outstanding for it.
// Every other contended arrival is told it failed; a displaced favourite
// (case 4) is told so the moment it is displaced. Without those fails a
// holder can defer an inquire forever and the 2-cycle of §4's Theorem 2
// proof deadlocks (see tests/cao_singhal_protocol_test.cpp).
void CaoSinghalSite::handle_request(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  const ReqId r = m.req;
  // A site issues requests one at a time (per lock), so an older queued
  // request from the same site has been abandoned (§6 recovery) —
  // supersede it.
  L.req_queue.erase_if([&](const ReqId& q) { return q.site == r.site; });

  if (!L.lock.valid()) {
    DQME_CHECK_MSG(L.req_queue.empty(),
                   "arbiter " << id() << " free but queue non-empty");
    L.lock = r;
    L.inquired_this_tenure = false;
    ++case_stats_.grant_free;
    ++stats_.replies_direct;
    net().send(id(), r.site, net::make_reply(id(), r), lock);
    return;
  }

  const bool have_head = !L.req_queue.empty();
  const ReqId head = have_head ? L.req_queue.front() : ReqId{};

  if (r < L.lock && (!have_head || r < head)) {
    // Cases 1 (queue empty), 5 (r < lock < head), 4 (r < head < lock):
    // r is the new favourite. Ask the holder to yield (once per tenure)
    // and re-point the proxy at r.
    if (!have_head) {
      ++case_stats_.c1_empty_higher;
    } else if (head < L.lock) {
      // Case 4: the old favourite is displaced and learns it failed.
      ++case_stats_.c4_displace_head;
      net().send(id(), head.site, net::make_fail(id(), head), lock);
    } else {
      ++case_stats_.c5_beats_lock;
    }
    Message bundle[2];
    size_t nb = 0;
    if (!L.inquired_this_tenure) {
      L.inquired_this_tenure = true;
      bundle[nb++] = net::make_inquire(id(), L.lock);
    }
    if (opt_.proxy_transfer)
      bundle[nb++] = net::make_transfer(r, id(), L.lock);
    if (nb > 0) send_to(L.lock.site, bundle, nb, lock);
  } else if (!have_head || r < head) {
    // Cases 2 (queue empty) and 6 (lock < r < head): r is the best waiter
    // but the holder outranks it. r fails — so it will yield elsewhere if
    // inquired — yet the holder will still hand over to it directly at
    // exit, which is where the delay-T handoff comes from.
    if (!have_head)
      ++case_stats_.c2_empty_lower;
    else
      ++case_stats_.c6_between;
    net().send(id(), r.site, net::make_fail(id(), r), lock);
    if (opt_.proxy_transfer)
      net().send(id(), L.lock.site, net::make_transfer(r, id(), L.lock),
                 lock);
  } else {
    // Case 3: r is not even the best waiter.
    ++case_stats_.c3_fail_newcomer;
    net().send(id(), r.site, net::make_fail(id(), r), lock);
  }
  L.req_queue.insert(r);
}

// Shared by A.4, release(i, max), and §6 unlock paths.
void CaoSinghalSite::grant_next_from_queue(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  L.inquired_this_tenure = false;
  if (L.req_queue.empty()) {
    L.lock = ReqId{};
    return;
  }
  const ReqId head = L.req_queue.front();
  L.req_queue.pop_front();
  L.lock = head;
  Message bundle[2];
  size_t nb = 0;
  bundle[nb++] = net::make_reply(id(), head);
  ++stats_.replies_direct;
  if (opt_.proxy_transfer && !L.req_queue.empty())
    bundle[nb++] = net::make_transfer(L.req_queue.front(), id(), head);
  send_to(head.site, bundle, nb, lock);
}

void CaoSinghalSite::send_proxy_update(LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!L.lock.valid() || L.req_queue.empty()) return;
  const ReqId head = L.req_queue.front();
  Message bundle[2];
  size_t nb = 0;
  // D6: a stale forward can install a lock holder that the queue head
  // already outranks, with the in-flight superseding transfer lost. Restore
  // the invariant that such a holder has an inquire outstanding, or the
  // head could wait forever behind a blocked holder.
  if (head < L.lock && !L.inquired_this_tenure) {
    L.inquired_this_tenure = true;
    bundle[nb++] = net::make_inquire(id(), L.lock);
  }
  if (opt_.proxy_transfer)
    bundle[nb++] = net::make_transfer(head, id(), L.lock);
  if (nb > 0) send_to(L.lock.site, bundle, nb, lock);
}

// A.4.
void CaoSinghalSite::handle_yield(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!L.lock.valid() || L.lock != m.req) {
    note_stale_drop(MsgType::kYield);
    return;
  }
  L.req_queue.insert(L.lock);  // the yielder still wants the CS
  grant_next_from_queue(lock);
}

// C at the arbiter (prose in §3.2; formal fragment in §6 case 3).
void CaoSinghalSite::handle_release(const Message& m, LockId lock) {
  Lk& L = lk_[static_cast<size_t>(lock)];
  if (!L.lock.valid() || L.lock != m.req) {
    // Not from our lock holder. A §6 recovery release for a queued (never
    // granted) request scrubs the queue; anything else is stale.
    auto it = L.req_queue.find(m.req);
    if (it == L.req_queue.end()) {
      note_stale_drop(MsgType::kRelease);
      return;
    }
    const bool was_head = it == L.req_queue.begin();
    L.req_queue.erase(it);
    if (was_head) send_proxy_update(lock);  // re-point the proxy
    return;
  }
  if (m.target.valid()) {
    // The holder forwarded our reply to m.target on our behalf.
    auto it = L.req_queue.find(m.target);
    if (it != L.req_queue.end()) {
      L.req_queue.erase(it);
      L.lock = m.target;
      L.inquired_this_tenure = false;
      send_proxy_update(lock);
      return;
    }
    // The forwarded-to request is gone (crashed site scrubbed by §6, or it
    // abandoned the request). The forwarded reply will be dropped as stale
    // at its receiver; grant the next waiter ourselves.
  }
  grant_next_from_queue(lock);
}

// ------------------------------------------------------ §6 fault tolerance

void CaoSinghalSite::handle_failure_notice(const Message& m) {
  if (!opt_.fault_tolerant) return;
  const SiteId f = m.arbiter;
  DQME_CHECK(0 <= f && f < net().size());
  if (!alive_[static_cast<size_t>(f)]) return;  // duplicate notice
  alive_[static_cast<size_t>(f)] = false;
  // One notice, every lock: the crash severs f's role in each lock's
  // arbitration independently.
  for (LockId l = 0; l < num_locks(); ++l) recover_lock(l, f);
}

void CaoSinghalSite::recover_lock(LockId lock, SiteId f) {
  Lk& L = lk_[static_cast<size_t>(lock)];

  // Arbiter side. Case 1: drop f's queued request, re-pointing the proxy
  // if it was the favourite. Case 3: if f held our permission, grant on.
  const auto it = std::find_if(L.req_queue.begin(), L.req_queue.end(),
                               [&](const ReqId& q) { return q.site == f; });
  if (it != L.req_queue.end()) {
    const bool was_head = it == L.req_queue.begin();
    L.req_queue.erase(it);
    if (was_head && L.lock.valid()) send_proxy_update(lock);
  }
  if (L.lock.valid() && L.lock.site == f) grant_next_from_queue(lock);

  // Requester side. Case 2: forwarding duties toward f are void.
  std::erase_if(L.tran_stack,
                [&](const TranEntry& e) { return e.target.site == f; });

  // If f arbitrates for us, the current attempt cannot complete: release
  // every claim this request holds and start over on a reconstructed
  // quorum (the paper's "releases all the resources it has gotten, and
  // executes the quorum construction algorithm to select another quorum").
  if (requesting(lock) &&
      std::find(L.req_set.begin(), L.req_set.end(), f) != L.req_set.end()) {
    ++stats_.recoveries;
    for (SiteId j : L.req_set) {
      if (j == f || !alive_[static_cast<size_t>(j)]) continue;
      net().send(id(), j, net::make_release(L.my_req, ReqId{}), lock);
    }
    L.voted.clear();
    L.inq_queue.clear();
    L.tran_stack.clear();
    auto q = qs(lock).quorum_for_alive(id(), alive_);
    if (!q) {
      stalled_ = true;
      L.my_req = ReqId{};
      abort_request(lock);
      return;
    }
    L.req_set = *q;
    begin_request(lock);
  }
}

// ------------------------------------------------------------- dispatcher

void CaoSinghalSite::on_message(const Message& m, LockId lock) {
  observe(lock, m.req.seq);
  switch (m.type) {
    case MsgType::kRequest:       handle_request(m, lock);  break;
    case MsgType::kReply:         handle_reply(m, lock);    break;
    case MsgType::kRelease:       handle_release(m, lock);  break;
    case MsgType::kInquire:       handle_inquire(m, lock);  break;
    case MsgType::kFail:          handle_fail(m, lock);     break;
    case MsgType::kYield:         handle_yield(m, lock);    break;
    case MsgType::kTransfer:      handle_transfer(m, lock); break;
    case MsgType::kFailureNotice: handle_failure_notice(m); break;
    default:
      DQME_CHECK_MSG(false, "cao-singhal: unexpected " << m);
  }
}

void CaoSinghalSite::debug_dump(std::ostream& os, LockId lock) const {
  const Lk& L = lk_[static_cast<size_t>(lock)];
  os << "site " << id() << " state="
     << (idle(lock) ? "idle" : requesting(lock) ? "requesting" : "in_cs")
     << " my_req=" << L.my_req << " failed=" << L.failed;
  os << " voted={";
  for (size_t i = 0; i < L.voted.size(); ++i)
    os << L.voted.member(i) << ':' << L.voted.test(i) << ' ';
  os << "} inq_q={";
  for (SiteId a : L.inq_queue) os << a << ' ';
  os << "} tran_stack={";
  for (const auto& e : L.tran_stack) os << e.target << "@" << e.arbiter << ' ';
  os << "} | arbiter lock=" << L.lock << " queue={";
  for (const auto& r : L.req_queue) os << r << ' ';
  os << "} inquired=" << L.inquired_this_tenure << '\n';
}

}  // namespace dqme::core
