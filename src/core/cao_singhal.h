// The paper's contribution (§3): delay-optimal quorum-based mutual
// exclusion.
//
// Where Maekawa's exiting site releases its arbiters (one hop) which then
// reply to the next entrant (second hop — 2T), here each arbiter that sees
// a waiting request sends the current permission holder a `transfer`. The
// holder, on exiting the CS, forwards the arbiter's `reply` DIRECTLY to the
// next entrant (one hop — T) and tells the arbiter what it did through a
// parameterized `release(i, j | max)`.
//
// Message vocabulary and data structures follow §3.1 exactly:
//   lock        — the request currently holding this arbiter's permission
//   req_queue   — waiting requests, priority-ordered (Lamport timestamps)
//   replied[]   — per-arbiter "I hold its permission" flags (voted here)
//   failed      — set by a fail received or a yield sent
//   inq_queue   — inquires that arrived before the matching reply (replies
//                 may come through a proxy channel, so FIFO alone cannot
//                 order them — the situation §3 calls out)
//   tran_stack  — transfer obligations; only the latest per arbiter is
//                 honoured at exit ("deletes the following entries ... from
//                 the same sender")
//
// Sharded lock service: every one of those structures lives in a per-lock
// table (dense LockId index), so one site arbitrates num_locks independent
// critical sections over a shared network endpoint; only liveness of the
// peer set (§6 alive_) and the stats are site-level.
//
// Reconstruction deviations from the (OCR-garbled) pseudocode are D1-D7 in
// DESIGN.md. The §6 fault-tolerance layer is enabled with
// AlgoOptions::fault_tolerant and a failure-adaptive quorum construction.
#pragma once

#include "mutex/factory.h"
#include "mutex/flat_state.h"
#include "mutex/mutex_site.h"
#include "quorum/quorum_system.h"

namespace dqme::core {

struct CaoSinghalOptions {
  bool proxy_transfer = true;   // false: E9 ablation — behaves Maekawa-like
  bool piggyback = true;        // false: E9 ablation — bundles sent singly
  bool fault_tolerant = false;  // §6 recovery layer
  LockId num_locks = 1;         // lock-table size (dense LockIds 0..M-1)
  // Per-lock quorum construction (must outlive the site); locks it returns
  // nullptr for — and all locks when unset — use the constructor's
  // `quorums` argument.
  std::function<const quorum::QuorumSystem*(LockId)> quorum_for_lock;
};

class CaoSinghalSite final : public mutex::MutexSite {
 public:
  using Options = CaoSinghalOptions;

  // Arbiter-side classification of §5.2's heavy-load cases, for E8.
  struct CaseStats {
    uint64_t grant_free = 0;  // lock was (max,max): immediate reply
    uint64_t c1_empty_higher = 0;    // queue empty, r beats lock
    uint64_t c2_empty_lower = 0;     // queue empty, lock beats r
    uint64_t c3_fail_newcomer = 0;   // r worse than head
    uint64_t c4_displace_head = 0;   // r < head < lock
    uint64_t c5_beats_lock = 0;      // r < lock < head
    uint64_t c6_between = 0;         // lock < r < head
    uint64_t total() const {
      return grant_free + c1_empty_higher + c2_empty_lower +
             c3_fail_newcomer + c4_displace_head + c5_beats_lock + c6_between;
    }
  };

  struct ProtocolStats {
    uint64_t yields_sent = 0;
    uint64_t inquires_deferred = 0;  // inquire queued awaiting its reply
    uint64_t transfers_accepted = 0; // pushed onto tran_stack
    uint64_t transfers_ignored = 0;  // outdated transfer discarded (A.5)
    uint64_t replies_forwarded = 0;  // replies sent on behalf of arbiters
    uint64_t replies_direct = 0;     // replies sent as ourselves (arbiter)
    uint64_t recoveries = 0;         // §6 quorum reconstructions
  };

  CaoSinghalSite(SiteId id, net::Executor& net,
                 const quorum::QuorumSystem& quorums,
                 Options options = Options());

  void on_message(const net::Message& m, LockId lock) override;

  const std::vector<SiteId>& req_set(LockId lock = kLock0) const {
    return lk_[static_cast<size_t>(lock)].req_set;
  }
  const CaseStats& case_stats() const { return case_stats_; }
  const ProtocolStats& protocol_stats() const { return stats_; }
  bool stalled() const { return stalled_; }
  bool failed_flag(LockId lock = kLock0) const {
    return lk_[static_cast<size_t>(lock)].failed;
  }

  // One-line state dump for debugging and tests.
  void debug_dump(std::ostream& os, LockId lock = kLock0) const;

 private:
  struct TranEntry {
    ReqId target;
    SiteId arbiter;
  };

  // Per-lock protocol state (§3.1's variables), indexed by dense LockId.
  struct Lk {
    // Requester state (per current request).
    ReqId my_req;
    std::vector<SiteId> req_set;
    mutex::VoteMap voted;  // replied[arbiter], dense over req_set
    bool failed = false;
    std::vector<SiteId> inq_queue;
    std::vector<TranEntry> tran_stack;  // back() is the top of the stack

    // Arbiter state.
    ReqId lock;
    mutex::ReqQueue req_queue;
    // Whether an inquire was sent to the current lock holder during this
    // tenure. One suffices: the holder's answer (yield or release) always
    // serves the *best* waiter at that moment.
    bool inquired_this_tenure = false;
  };

  void do_request(LockId lock) override;
  void do_release(LockId lock) override;
  void begin_request(LockId lock);

  // --- Requester-side handlers (A.3, A.5, A.6, A.7) ---
  void handle_reply(const net::Message& m, LockId lock);
  void handle_inquire(const net::Message& m, LockId lock);
  void handle_fail(const net::Message& m, LockId lock);
  void handle_transfer(const net::Message& m, LockId lock);
  void process_inquire(LockId lock, SiteId arbiter);  // the body of A.3
  void drain_inquire_queue(LockId lock);   // A.6/A.7 re-processing
  void try_enter(LockId lock);             // step B

  // --- Arbiter-side handlers (A.2, A.4, C at the arbiter) ---
  void handle_request(const net::Message& m, LockId lock);
  void handle_yield(const net::Message& m, LockId lock);
  void handle_release(const net::Message& m, LockId lock);
  // Grants the queue head (reply piggybacked with a transfer for the next
  // head, per A.4 / §6 case 3); clears the lock if the queue is empty.
  void grant_next_from_queue(LockId lock);
  // Re-points the proxy at the new queue head after the head changed, and
  // (D6) restores the "head outranks lock => inquire outstanding" liveness
  // invariant if a stale forward broke it.
  void send_proxy_update(LockId lock);

  // --- §6 fault tolerance ---
  void handle_failure_notice(const net::Message& m);
  void recover_lock(LockId lock, SiteId failed_site);

  // Quorum system arbitrating `lock`.
  const quorum::QuorumSystem& qs(LockId lock) const;

  // Sends `msgs` to `dst` as one wire message (or singly when the
  // piggybacking ablation is on). Callers keep small bundles in stack
  // buffers; nothing on this path touches the heap.
  void send_to(SiteId dst, const net::Message* msgs, size_t n, LockId lock);

  Options opt_;
  const quorum::QuorumSystem& quorums_;

  std::vector<Lk> lk_;

  // Exit-protocol scratch (do_release): capacity survives across CS
  // tenures (and is shared by every lock — exits are serial within one
  // simulator event) so the exit fan-out allocates nothing in steady state.
  std::vector<TranEntry> fwd_scratch_;     // newest transfer per arbiter
  std::vector<SiteId> dst_scratch_;        // exit-bound destinations
  std::vector<net::Message> out_scratch_;  // one destination's bundle

  // Fault tolerance (site-level: a crash affects every lock).
  std::vector<bool> alive_;
  bool stalled_ = false;

  CaseStats case_stats_;
  ProtocolStats stats_;
};

}  // namespace dqme::core
