// Simulated failure detection for the §6 fault-tolerance layer.
//
// The paper assumes "when a site finds out that a site S_i has failed, it
// broadcasts a failure(i) message". We model the end result: a perfect
// (eventually-accurate, no false positives) detector that delivers a
// failure notice to every live site some detection latency after the crash
// — with per-site jitter, so sites act on inconsistent views for a while,
// which is exactly the window the recovery protocol must survive.
//
// Notices are injected directly into the protocol sites rather than sent as
// wire messages; detection cost is not part of the paper's message-count
// model (E7 measures progress and recovery behaviour, not message counts).
#pragma once

#include <vector>

#include "common/rng.h"
#include "net/network.h"

namespace dqme::core {

class FailureDetector {
 public:
  // `jitter` spreads per-site notice delivery uniformly over
  // [latency, latency + jitter].
  FailureDetector(net::Network& net, Time latency, Time jitter, uint64_t seed)
      : net_(net), latency_(latency), jitter_(jitter), rng_(seed) {
    DQME_CHECK(latency >= 0 && jitter >= 0);
  }

  // Registers the receiver for notices addressed to site `id` (normally the
  // protocol site itself).
  void attach(SiteId id, net::NetSite* site);

  // Crashes `victim` now: the network drops its traffic immediately and
  // every other live site learns about it after the detection latency.
  void crash(SiteId victim);

 private:
  net::Network& net_;
  Time latency_;
  Time jitter_;
  Rng rng_;
  std::vector<net::NetSite*> sites_{
      std::vector<net::NetSite*>(static_cast<size_t>(net_.size()), nullptr)};
};

}  // namespace dqme::core
