#include "core/failure_detector.h"

#include "net/message.h"

namespace dqme::core {

void FailureDetector::attach(SiteId id, net::NetSite* site) {
  DQME_CHECK(0 <= id && id < net_.size());
  DQME_CHECK(site != nullptr);
  sites_[static_cast<size_t>(id)] = site;
}

void FailureDetector::crash(SiteId victim) {
  DQME_CHECK(0 <= victim && victim < net_.size());
  DQME_CHECK_MSG(net_.alive(victim), "site " << victim << " already crashed");
  net_.crash(victim);
  for (SiteId s = 0; s < net_.size(); ++s) {
    if (s == victim || !net_.alive(s)) continue;
    net::NetSite* receiver = sites_[static_cast<size_t>(s)];
    if (receiver == nullptr) continue;
    const Time when =
        latency_ + (jitter_ > 0 ? rng_.uniform_int(0, jitter_) : 0);
    net_.simulator().schedule_after(when, [receiver, victim, this, s] {
      // The receiver itself may have crashed in the meantime.
      if (net_.alive(s))
        receiver->on_message(net::make_failure_notice(victim), kLock0);
    });
  }
}

}  // namespace dqme::core
