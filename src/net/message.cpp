#include "net/message.h"

namespace dqme::net {

std::string_view to_string(MsgType t) {
  switch (t) {
    case MsgType::kRequest:       return "request";
    case MsgType::kReply:         return "reply";
    case MsgType::kRelease:       return "release";
    case MsgType::kInquire:       return "inquire";
    case MsgType::kFail:          return "fail";
    case MsgType::kYield:         return "yield";
    case MsgType::kTransfer:      return "transfer";
    case MsgType::kTokenReq:      return "token_req";
    case MsgType::kToken:         return "token";
    case MsgType::kFailureNotice: return "failure";
    case MsgType::kRead:          return "read";
    case MsgType::kReadReply:     return "read_reply";
    case MsgType::kWrite:         return "write";
    case MsgType::kWriteAck:      return "write_ack";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, const Message& m) {
  os << to_string(m.type) << '[' << m.src << "->" << m.dst << " req=" << m.req;
  if (m.arbiter != kNoSite) os << " arb=" << m.arbiter;
  if (m.target.valid()) os << " tgt=" << m.target;
  return os << ']';
}

Message make_request(ReqId req) {
  Message m;
  m.type = MsgType::kRequest;
  m.req = req;
  m.span = span_of(req);
  return m;
}

Message make_reply(SiteId arbiter, ReqId granted_req) {
  Message m;
  m.type = MsgType::kReply;
  m.arbiter = arbiter;
  m.req = granted_req;
  m.span = span_of(granted_req);
  return m;
}

Message make_release(ReqId releaser_req, ReqId forwarded_to) {
  Message m;
  m.type = MsgType::kRelease;
  m.req = releaser_req;
  m.target = forwarded_to;
  m.span = span_of(releaser_req);
  return m;
}

Message make_inquire(SiteId arbiter, ReqId inquired_req) {
  Message m;
  m.type = MsgType::kInquire;
  m.arbiter = arbiter;
  m.req = inquired_req;
  m.span = span_of(inquired_req);
  return m;
}

Message make_fail(SiteId arbiter, ReqId failed_req) {
  Message m;
  m.type = MsgType::kFail;
  m.arbiter = arbiter;
  m.req = failed_req;
  m.span = span_of(failed_req);
  return m;
}

Message make_yield(SiteId arbiter, ReqId yielder_req) {
  Message m;
  m.type = MsgType::kYield;
  m.arbiter = arbiter;
  m.req = yielder_req;
  m.span = span_of(yielder_req);
  return m;
}

Message make_transfer(ReqId target_req, SiteId arbiter, ReqId holder_req) {
  Message m;
  m.type = MsgType::kTransfer;
  m.target = target_req;
  m.arbiter = arbiter;
  m.req = holder_req;
  // The causal edge a transfer advances is the *target*'s future entry.
  m.span = span_of(target_req);
  return m;
}

Message make_failure_notice(SiteId failed_site) {
  Message m;
  m.type = MsgType::kFailureNotice;
  m.arbiter = failed_site;
  return m;
}

}  // namespace dqme::net
