// Simulated fully-connected message-passing network (paper §2).
//
// Guarantees, matching the paper's system model:
//   * reliable delivery between live sites,
//   * per-(src,dst) FIFO: messages are delivered in the order sent,
//   * unpredictable but bounded delay, drawn from a DelayModel.
//
// Accounting, matching the paper's cost model (§5): a *bundle* of control
// messages sent together (piggybacked) occupies one wire message — "a
// control message piggybacked with another message is counted as one
// message". Messages a site addresses to itself are delivered immediately
// and are not counted: the paper's complexity figures (e.g. 3(K-1)) exclude
// the requester's own quorum slot.
//
// Hot-path allocation: in-flight bundles live in a pooled slab of Flight
// slots (index-linked free list) whose message vectors keep their capacity
// across reuse, and the delivery callback captures only (this, slot index),
// which fits sim::Callback's inline storage — so steady-state send/deliver
// performs no heap allocation.
//
// Fault injection (§6): crash(site) makes a site fail silently — everything
// addressed to it (or sent by it) from that instant on is dropped.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/delay_model.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace dqme::net {

// Anything that can receive messages from the network.
class NetSite {
 public:
  virtual ~NetSite() = default;
  virtual void on_message(const Message& m) = 0;
};

struct NetworkStats {
  uint64_t wire_messages = 0;     // bundles put on the wire (paper's count)
  uint64_t control_messages = 0;  // control messages incl. piggybacked ones
  std::array<uint64_t, kNumMsgTypes> by_type{};
  uint64_t dropped_at_crashed = 0;  // deliveries suppressed by a crash
  uint64_t local_deliveries = 0;    // src == dst short-circuits (uncounted)
  uint64_t delivered_messages = 0;  // handed to a receiver (local + wire)
  uint64_t flights_acquired = 0;    // flight-slot checkouts (pool traffic)

  uint64_t count(MsgType t) const {
    return by_type[static_cast<size_t>(t)];
  }

  // Messages staged but not yet resolved to a delivery or a crash drop.
  // Conservation identity (obs::InvariantChecker): every staged message is
  // eventually delivered or dropped, so this is 0 once a run quiesces.
  uint64_t in_flight() const {
    return control_messages + local_deliveries - delivered_messages -
           dropped_at_crashed;
  }
};

class Network {
 public:
  Network(sim::Simulator& sim, int n, std::unique_ptr<DelayModel> delay,
          uint64_t seed);

  int size() const { return static_cast<int>(sites_.size()); }
  sim::Simulator& simulator() { return sim_; }
  Time mean_delay() const { return delay_->mean(); }

  // Registers the receiver for site `id`. Must happen before any delivery
  // to `id`; re-attaching replaces the receiver (used by wrappers).
  void attach(SiteId id, NetSite* site);

  // Sends one control message as one wire message.
  void send(SiteId src, SiteId dst, Message m);

  // Sends several control messages piggybacked as one wire message. They
  // are delivered back-to-back, in order, at the same instant.
  void send_bundle(SiteId src, SiteId dst, std::vector<Message> bundle);

  // Crashes a site: fail-silent from now on. Messages already in flight
  // toward it are dropped on arrival.
  void crash(SiteId id);
  bool alive(SiteId id) const { return alive_[static_cast<size_t>(id)]; }
  int alive_count() const;

  const NetworkStats& stats() const { return stats_; }

  // Flight pool high-water mark: distinct slots ever allocated. With
  // stats().flights_acquired this yields the pool recycling rate —
  // 1 - pool/acquired — tracked by the profiling layer (src/obs).
  size_t flight_pool_size() const { return flights_.size(); }

  // Trace hook: invoked for every control message at delivery time, before
  // the receiving site sees it. Used by tests and the metrics layer.
  std::function<void(const Message&)> on_deliver;

  // Crash hook: invoked when crash(id) flips a site to fail-silent, before
  // the call returns. Chain like on_deliver; the invariant checker uses it
  // to write off obligations a dead site can no longer discharge.
  std::function<void(SiteId)> on_crash;

 private:
  static constexpr uint32_t kNilFlight = 0xffffffffu;

  // One in-flight wire bundle. Pooled: the vector's capacity survives
  // reuse, so a steady-state send costs no allocation.
  struct Flight {
    std::vector<Message> msgs;
    uint32_t next_free = kNilFlight;
  };

  uint32_t acquire_flight();
  void deliver_flight(uint32_t idx);
  void deliver(const Message& m);

  // Stamps src/dst, counts wire stats, and schedules delivery (or drops
  // the bundle for a crashed sender).
  void stage(SiteId src, SiteId dst, uint32_t flight);

  sim::Simulator& sim_;
  std::unique_ptr<DelayModel> delay_;
  Rng rng_;
  std::vector<NetSite*> sites_;
  std::vector<bool> alive_;
  std::vector<Time> last_delivery_;  // FIFO floor per (src,dst)
  NetworkStats stats_;
  std::vector<Flight> flights_;
  uint32_t flight_free_ = kNilFlight;
};

}  // namespace dqme::net
