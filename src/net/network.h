// Simulated fully-connected message-passing network (paper §2).
//
// Guarantees, matching the paper's system model:
//   * reliable delivery between live sites,
//   * per-(src,dst) FIFO: messages are delivered in the order sent,
//   * unpredictable but bounded delay, drawn from a DelayModel.
//
// Accounting, matching the paper's cost model (§5): a *bundle* of control
// messages sent together (piggybacked) occupies one wire message — "a
// control message piggybacked with another message is counted as one
// message". Messages a site addresses to itself are delivered immediately
// and are not counted: the paper's complexity figures (e.g. 3(K-1)) exclude
// the requester's own quorum slot.
//
// Hot-path allocation: in-flight bundles live in a pooled slab of Flight
// slots (index-linked free list). A flight stores its first two messages
// inline — the dominant shapes are a single message and a reply+transfer
// piggyback — and spills only larger bundles to a pooled vector; the
// delivery callback captures only (this, slot index), which fits
// sim::Callback's inline storage — so steady-state send/deliver performs
// no heap allocation and no per-message indirection.
//
// Multi-lock addressing: the 80-byte Message struct has no room for a
// LockId field (and single-lock runs must not pay for one), so the lock a
// message belongs to rides in the *flight*, not the message: each flight
// carries a lock tag per message (inline array + spill vector, parallel to
// the message storage), stamped by send()/send_bundle() and handed to the
// receiver as a separate on_message parameter. A protocol bundle is always
// single-lock; only window piggybacking (below) mixes locks in one flight.
//
// Lock piggybacking: with set_lock_piggyback(window >= 0), a send whose
// channel already has an undelivered flight staged within the last `window`
// ticks is appended to that open flight instead of occupying a new wire
// message — the sharded-lock-service batching that makes per-lock request
// fan-outs to a shared quorum cheap. Appending never changes the open
// flight's delivery instant, so with window = 0 (same-instant coalescing
// only) delivery times and per-message order are exactly what separate
// flights would have produced — the property lock_table_test leans on.
//
// Side payloads: Message is a flat 80-byte struct; the rare big fields
// (Suzuki-Kasami token state, replica kv) live in a per-network payload
// slab addressed by Message::payload. Senders bind one with attach_kv /
// attach_token; receivers read it with read_kv / take_token from inside
// on_message. The network recycles the slot as soon as the handler returns
// (or the message is dropped by crash semantics), so payload handles in
// retained Message copies are dead — by design, nothing reads them later.
//
// Fault injection (§6): crash(site) makes a site fail silently — everything
// addressed to it (or sent by it) from that instant on is dropped.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/delay_model.h"
#include "net/executor.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace dqme::net {

// Causal-predecessor handle threaded through the network (src/obs/critpath).
// A CauseId names the observability event that *enabled* a send — the index
// an attached obs::SpanRecorder assigned to the delivery / CS-exit / issue
// edge it recorded just before the send happened. The network itself never
// interprets the value: it copies the current cause into every staged
// message (parallel to the lock tags) and surfaces the stamped cause again
// at delivery time, so a recorder can link each wire edge to the edge that
// produced it without growing the 80-byte Message. kNoCause (the resting
// value with no recorder attached) means "root event / cause unknown".
using CauseId = int32_t;
inline constexpr CauseId kNoCause = -1;

struct NetworkStats {
  uint64_t wire_messages = 0;     // bundles put on the wire (paper's count)
  uint64_t control_messages = 0;  // control messages incl. piggybacked ones
  std::array<uint64_t, kNumMsgTypes> by_type{};
  uint64_t dropped_at_crashed = 0;  // deliveries suppressed by a crash
  uint64_t local_deliveries = 0;    // src == dst short-circuits (uncounted)
  uint64_t delivered_messages = 0;  // handed to a receiver (local + wire)
  uint64_t flights_acquired = 0;    // flight-slot checkouts (pool traffic)
  uint64_t payloads_acquired = 0;   // side-payload checkouts (token/kv)
  uint64_t piggybacked_messages = 0;  // appended to an open flight (no wire)

  uint64_t count(MsgType t) const {
    return by_type[static_cast<size_t>(t)];
  }

  // Messages staged but not yet resolved to a delivery or a crash drop.
  // Conservation identity (obs::InvariantChecker): every staged message is
  // eventually delivered or dropped, so this is 0 once a run quiesces.
  uint64_t in_flight() const {
    return control_messages + local_deliveries - delivered_messages -
           dropped_at_crashed;
  }
};

class Network final : public Executor {
 public:
  Network(sim::Simulator& sim, int n, std::unique_ptr<DelayModel> delay,
          uint64_t seed);

  int size() const override { return static_cast<int>(sites_.size()); }
  Time now() const override { return sim_.now(); }
  sim::Simulator& simulator() { return sim_; }
  Time mean_delay() const { return delay_->mean(); }

  // Registers the receiver for site `id`. Must happen before any delivery
  // to `id`; re-attaching replaces the receiver (used by wrappers).
  void attach(SiteId id, NetSite* site) override;

  // Sends one control message as one wire message, tagged with the lock it
  // arbitrates.
  void send(SiteId src, SiteId dst, const Message& m,
            LockId lock = kLock0) override;

  // Sends several control messages piggybacked as one wire message. They
  // are delivered back-to-back, in order, at the same instant, and all
  // share one lock tag (protocol bundles are single-lock). The pointer
  // form is the hot path: protocol code keeps ≤2-message bundles in a stack
  // buffer and never touches the heap; the vector form (inherited from
  // Executor) is convenience for tests and cold paths.
  using Executor::send_bundle;
  void send_bundle(SiteId src, SiteId dst, const Message* msgs, size_t n,
                   LockId lock = kLock0) override;

  // Executor timeout seam: exact virtual time via the simulator's event
  // heap; the site argument is irrelevant under one global event loop.
  uint64_t schedule_timeout(SiteId /*site*/, Time delay,
                            sim::Callback fn) override {
    return sim_.schedule_after(delay, std::move(fn));
  }

  // --- Lock piggybacking (sharded lock service) ------------------------
  // window < 0 (default): disabled. window >= 0: a send may append to the
  // channel's most recent still-undelivered flight when that flight was
  // staged at most `window` ticks ago. The appended messages keep the open
  // flight's delivery instant (which respects the FIFO floor by
  // construction), count as control messages but not as a new wire
  // message, and are tallied in stats().piggybacked_messages. window = 0
  // coalesces only sends from the same simulation instant — exactly
  // timing- and order-preserving vs. separate flights. Not available in
  // controlled (explorer) mode, where one flight = one schedule action.
  void set_lock_piggyback(Time window);
  Time lock_piggyback() const { return pb_window_; }

  // --- Side payloads -------------------------------------------------
  // attach_* acquires a pool slot, binds it to `m`, and returns the field
  // to fill. The reference is into the pool slab: write it before the next
  // attach_* call (which may grow the slab). read_kv copies the fields out
  // (handlers send messages, which can also grow the slab); take_token
  // moves the token state out of its slot — ownership transfers to the
  // caller, matching "exactly one site holds the token".
  KvFields& attach_kv(Message& m) override;
  TokenPayload& attach_token(Message& m) override;
  KvFields read_kv(const Message& m) const override;
  TokenPayload take_token(const Message& m) override;
  size_t payload_pool_size() const { return payloads_.size(); }

  // --- Controlled delivery (src/verify's schedule explorer) -----------
  // When enabled, wire flights between live sites are parked in
  // per-channel FIFO queues instead of being scheduled through the delay
  // model, and an external strategy delivers them one at a time with
  // deliver_next(). Local (src == dst) deliveries keep their
  // immediate-event semantics — a site still never re-enters its own
  // handler — and crash() drops every parked flight touching the dead
  // site exactly as clock-driven delivery would on arrival, so payload
  // slots recycle and the conservation identity (in_flight() == 0 at
  // quiescence) keeps holding under explorer-chosen orders. Per-channel
  // FIFO is the one constraint a strategy cannot escape: only the head
  // flight of a channel is deliverable (deliver_parked's index seam
  // exists solely for the explorer's seeded FIFO-inversion mutation).
  void set_controlled(bool on);
  bool controlled() const { return controlled_; }
  struct Channel {
    SiteId src;
    SiteId dst;
  };
  // Channels with at least one parked flight, ascending (src, dst).
  void parked_channels(std::vector<Channel>& out) const;
  size_t parked_flights() const { return parked_total_; }
  size_t parked_count(SiteId src, SiteId dst) const;
  // Send instant of the index-th parked flight on a channel.
  Time parked_sent_at(SiteId src, SiteId dst, size_t index) const;
  // Delivers a channel's head flight at the current simulator instant.
  // Returns false when the channel has no parked flight.
  bool deliver_next(SiteId src, SiteId dst) {
    return deliver_parked(src, dst, 0);
  }
  // Mutation seam for seeded-negative tests: delivers the index-th parked
  // flight, deliberately violating FIFO when index > 0.
  bool deliver_parked(SiteId src, SiteId dst, size_t index);

  // Crashes a site: fail-silent from now on. Messages already in flight
  // toward it are dropped on arrival (immediately when controlled).
  void crash(SiteId id);
  bool alive(SiteId id) const { return alive_[static_cast<size_t>(id)]; }
  int alive_count() const;

  // --- Causal threading (src/obs/critpath) ----------------------------
  // The current cause is whatever protocol-relevant event last happened on
  // this logical thread of control: an attached SpanRecorder sets it after
  // recording each edge, and every send() staged while it is set carries it
  // (per message, in the flight's parallel cause array). At delivery the
  // stamped cause of the message being handed over is readable through
  // delivering_cause() for the duration of the receiver's handler, and the
  // current cause resets to kNoCause once the handler returns so traffic
  // from unobserved contexts (failure notices, replica ops) stays a root
  // rather than inheriting a stale predecessor. Detached runs only ever
  // copy kNoCause around — no branches, no behavioural change.
  void set_send_cause(CauseId c) { send_cause_ = c; }
  CauseId send_cause() const { return send_cause_; }
  CauseId delivering_cause() const { return delivering_cause_; }

  const NetworkStats& stats() const { return stats_; }

  // Flight pool high-water mark: distinct slots ever allocated. With
  // stats().flights_acquired this yields the pool recycling rate —
  // 1 - pool/acquired — tracked by the profiling layer (src/obs).
  size_t flight_pool_size() const { return flights_.size(); }

  // Trace hook: invoked for every control message at delivery time, before
  // the receiving site sees it. Used by tests and the metrics layer.
  std::function<void(const Message&, LockId)> on_deliver;

  // Crash hook: invoked when crash(id) flips a site to fail-silent, before
  // the call returns. Chain like on_deliver; the invariant checker uses it
  // to write off obligations a dead site can no longer discharge.
  std::function<void(SiteId)> on_crash;

 private:
  static constexpr uint32_t kNilFlight = 0xffffffffu;

  // One in-flight wire bundle. Pooled; the first two messages are stored
  // inline (trivially-copyable Message makes the copy a memcpy) and only
  // bundles of 3+ touch the spill vector, whose capacity survives reuse —
  // so a steady-state send costs no allocation. Lock tags are parallel to
  // the message storage; `gen` bumps on every recycle so a stale
  // OpenFlight record (lock piggybacking) can never append into a slot
  // that has been reused.
  struct Flight {
    std::array<Message, 2> inline_msgs;
    std::array<LockId, 2> inline_locks{kLock0, kLock0};
    // Send-time cause per message (see set_send_cause), parallel to the
    // message storage like the lock tags.
    std::array<CauseId, 2> inline_causes{kNoCause, kNoCause};
    std::vector<Message> spill;  // messages beyond the first two
    std::vector<LockId> spill_locks;
    std::vector<CauseId> spill_causes;
    uint32_t inline_count = 0;
    uint32_t next_free = kNilFlight;
    uint64_t gen = 0;
  };

  // The channel's most recent scheduled-but-undelivered flight, eligible
  // for lock-piggyback appends. Valid only while the slot's gen matches.
  struct OpenFlight {
    uint32_t flight = kNilFlight;
    uint64_t gen = 0;
    Time created = 0;
    Time deliver = 0;
  };

  // One pooled side payload; acquire_payload() hands slots back zeroed
  // with container capacity retained.
  struct SidePayload {
    TokenPayload token;
    KvFields kv;
    uint32_t next_free = kNilFlight;
  };

  uint32_t acquire_flight();
  // Clears a flight's storage (capacity retained), bumps its gen, and
  // pushes it on the free list. Every recycle path funnels through here.
  void release_flight(uint32_t idx);
  PayloadId acquire_payload();
  void release_payload(PayloadId id);
  // Drops a staged-but-undelivered flight: releases its payload slots,
  // counts its messages as crash drops, and recycles the slot.
  void drop_flight(uint32_t idx);
  void deliver_flight(uint32_t idx);
  // Delivers one message; the hook branch is resolved per *flight* in
  // deliver_flight, so the detached path never tests the std::function per
  // message.
  template <bool kHooked>
  void deliver_one(const Message& m, LockId lock, CauseId cause);

  // Stamps src/dst, counts wire stats, and schedules delivery (or drops
  // the bundle for a crashed sender, or appends it to the channel's open
  // flight under lock piggybacking).
  void stage(SiteId src, SiteId dst, uint32_t flight);

  sim::Simulator& sim_;
  std::unique_ptr<DelayModel> delay_;
  Rng rng_;
  std::vector<NetSite*> sites_;
  std::vector<bool> alive_;
  std::vector<Time> last_delivery_;  // FIFO floor per (src,dst)
  NetworkStats stats_;
  std::vector<Flight> flights_;
  uint32_t flight_free_ = kNilFlight;
  std::vector<SidePayload> payloads_;
  uint32_t payload_free_ = kNilFlight;
  // Lock-piggyback state: open-flight record per (src,dst) channel.
  Time pb_window_ = -1;  // < 0: disabled
  std::vector<OpenFlight> open_;
  // Causal threading (set_send_cause / delivering_cause).
  CauseId send_cause_ = kNoCause;
  CauseId delivering_cause_ = kNoCause;
  // Controlled-delivery state: parked flight queue per (src,dst) channel.
  bool controlled_ = false;
  size_t parked_total_ = 0;
  std::vector<std::deque<uint32_t>> parked_;
};

}  // namespace dqme::net
