// Message propagation delay models (paper §2: "unpredictable, but it has an
// upper bound"). The mean one-way delay is the paper's T; synchronization
// delays are reported in multiples of it.
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/types.h"

namespace dqme::net {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  // One-way propagation delay for a message src -> dst, in ticks (>= 1).
  virtual Time sample(Rng& rng, SiteId src, SiteId dst) = 0;
  // The mean delay T this model was configured with.
  virtual Time mean() const = 0;
};

// Every message takes exactly T. The cleanest setting for measuring the
// paper's "delay = T vs 2T" claims.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(Time t) : t_(t) { DQME_CHECK(t >= 1); }
  Time sample(Rng&, SiteId, SiteId) override { return t_; }
  Time mean() const override { return t_; }

 private:
  Time t_;
};

// Uniform in [lo, hi] — bounded jitter around T = (lo+hi)/2.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(hi) {
    DQME_CHECK(1 <= lo && lo <= hi);
  }
  Time sample(Rng& rng, SiteId, SiteId) override {
    return rng.uniform_int(lo_, hi_);
  }
  Time mean() const override { return (lo_ + hi_) / 2; }

 private:
  Time lo_, hi_;
};

// min + Exp(mean - min), truncated at `cap` to honour the paper's
// bounded-delay assumption. mean() reports the (approximate) overall mean.
class ShiftedExponentialDelay final : public DelayModel {
 public:
  ShiftedExponentialDelay(Time min, Time mean, Time cap)
      : min_(min), mean_(mean), cap_(cap) {
    DQME_CHECK(1 <= min && min < mean && mean < cap);
  }
  Time sample(Rng& rng, SiteId, SiteId) override {
    Time d = min_ + rng.exponential_time(mean_ - min_);
    return d > cap_ ? cap_ : d;
  }
  Time mean() const override { return mean_; }

 private:
  Time min_, mean_, cap_;
};

// Two-tier topology: sites grouped into clusters; intra-cluster messages
// are fast (LAN), cross-cluster slow (WAN). Both tiers get +/-25% uniform
// jitter. Exercises the per-(src,dst) delay interface; the paper's model
// only requires bounded delays, not uniform ones.
class ClusteredDelay final : public DelayModel {
 public:
  // cluster_of[s] = cluster index of site s.
  ClusteredDelay(std::vector<int> cluster_of, Time intra, Time inter)
      : cluster_of_(std::move(cluster_of)), intra_(intra), inter_(inter) {
    DQME_CHECK(1 <= intra && intra <= inter);
    DQME_CHECK(!cluster_of_.empty());
  }

  Time sample(Rng& rng, SiteId src, SiteId dst) override {
    const Time base = cluster_of_[static_cast<size_t>(src)] ==
                              cluster_of_[static_cast<size_t>(dst)]
                          ? intra_
                          : inter_;
    const Time jitter = base / 4;
    return jitter > 0 ? rng.uniform_int(base - jitter, base + jitter) : base;
  }
  // A loose summary figure; per-pair means differ by design.
  Time mean() const override { return (intra_ + inter_) / 2; }

 private:
  std::vector<int> cluster_of_;
  Time intra_, inter_;
};

}  // namespace dqme::net
