// Control messages exchanged by the mutual exclusion protocols.
//
// One tagged struct covers every protocol in the repo (paper §3.1 plus the
// baselines). Fields are reused across types; the table below documents
// which fields are meaningful for which type. Unused fields stay at their
// defaults and are ignored by receivers.
//
//   type       | fields used
//   -----------+-------------------------------------------------------------
//   kRequest   | req (the requesting site's timestamp)
//   kReply     | arbiter (whose permission is granted), req (request granted)
//   kRelease   | req (releaser's request), target (request the releaser
//              |   forwarded this arbiter's reply to; !valid() == "max",
//              |   i.e. nothing was forwarded — paper's release(i,max))
//   kInquire   | arbiter, req (request being inquired)
//   kFail      | arbiter, req (request that failed)
//   kYield     | arbiter (whose permission is returned), req (yielder's req)
//   kTransfer  | arbiter, target (request to forward to), req (holder's
//              |   request — validity guard, DESIGN.md D1/D3)
//   kTokenReq  | req.site (requester), seq (request number) — token algos
//   kToken     | token payload (Suzuki-Kasami) / no fields (Raymond)
//   kFailureNotice | arbiter (= the site that failed) — §6 failure(i)
//   kRead      | kv.key, seq (op id) — replica layer (§7 extension)
//   kReadReply | kv (key/value/version), seq (op id)
//   kWrite     | kv (key/value/version), seq (op id)
//   kWriteAck  | kv.key, kv.version, seq (op id)
//
// Stale-message hardening (DESIGN.md D1): control messages carry the ReqId
// of the request they pertain to, so receivers drop messages about finished
// or superseded requests instead of relying solely on channel FIFO order.
#pragma once

#include <deque>
#include <memory>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"

namespace dqme::net {

enum class MsgType : uint8_t {
  kRequest,
  kReply,
  kRelease,
  kInquire,
  kFail,
  kYield,
  kTransfer,
  kTokenReq,
  kToken,
  kFailureNotice,
  // Replica-control layer (§7 extension).
  kRead,
  kReadReply,
  kWrite,
  kWriteAck,
};

inline constexpr int kNumMsgTypes = 14;

std::string_view to_string(MsgType t);

// Token state shipped by token-based baselines (Suzuki-Kasami). Exactly one
// site holds the token at a time; ownership moves with the message.
struct TokenPayload {
  std::vector<SeqNum> ln;    // LN[j]: seq number of j's last served request
  std::deque<SiteId> queue;  // sites waiting for the token
};

// Replicated-data fields (§7 extension layer).
struct KvFields {
  int64_t key = 0;
  int64_t value = 0;
  int64_t version = 0;
};

struct Message {
  MsgType type = MsgType::kRequest;
  SiteId src = kNoSite;  // filled by Network::send
  SiteId dst = kNoSite;  // filled by Network::send
  ReqId req;             // request this message pertains to (see table)
  SiteId arbiter = kNoSite;
  ReqId target;
  SeqNum seq = 0;
  KvFields kv;
  std::shared_ptr<TokenPayload> token;

  // Observability piggyback (src/obs): the causal span this message
  // advances — span_of() of the request whose CS entry the message works
  // toward (for a transfer, the *target*'s request, not the holder's).
  // Stamped by the make_* constructors; kNoSpan for non-request traffic.
  SpanId span = kNoSpan;
  // When the message left its sender; filled by Network::stage so trace
  // consumers can draw send->deliver arrows without a second hook.
  Time sent_at = 0;

  friend std::ostream& operator<<(std::ostream& os, const Message& m);
};

// Constructors for the Cao-Singhal / Maekawa message vocabulary. They keep
// protocol code close to the paper's notation: e.g. `transfer(k, j)` in the
// paper is `make_transfer(target_req, arbiter, holder_req)` here.
Message make_request(ReqId req);
Message make_reply(SiteId arbiter, ReqId granted_req);
Message make_release(ReqId releaser_req, ReqId forwarded_to);
Message make_inquire(SiteId arbiter, ReqId inquired_req);
Message make_fail(SiteId arbiter, ReqId failed_req);
Message make_yield(SiteId arbiter, ReqId yielder_req);
Message make_transfer(ReqId target_req, SiteId arbiter, ReqId holder_req);
Message make_failure_notice(SiteId failed_site);

}  // namespace dqme::net
