// Control messages exchanged by the mutual exclusion protocols.
//
// One tagged struct covers every protocol in the repo (paper §3.1 plus the
// baselines). Fields are reused across types; the table below documents
// which fields are meaningful for which type. Unused fields stay at their
// defaults and are ignored by receivers.
//
//   type       | fields used
//   -----------+-------------------------------------------------------------
//   kRequest   | req (the requesting site's timestamp)
//   kReply     | arbiter (whose permission is granted), req (request granted)
//   kRelease   | req (releaser's request), target (request the releaser
//              |   forwarded this arbiter's reply to; !valid() == "max",
//              |   i.e. nothing was forwarded — paper's release(i,max))
//   kInquire   | arbiter, req (request being inquired)
//   kFail      | arbiter, req (request that failed)
//   kYield     | arbiter (whose permission is returned), req (yielder's req)
//   kTransfer  | arbiter, target (request to forward to), req (holder's
//              |   request — validity guard, DESIGN.md D1/D3)
//   kTokenReq  | req.site (requester), seq (request number) — token algos
//   kToken     | payload: token state (Suzuki-Kasami) / none (Raymond)
//   kFailureNotice | arbiter (= the site that failed) — §6 failure(i)
//   kRead      | payload: kv.key; seq (op id) — replica layer (§7 ext.)
//   kReadReply | payload: kv (key/value/version); seq (op id)
//   kWrite     | payload: kv (key/value/version); seq (op id)
//   kWriteAck  | payload: kv.key, kv.version; seq (op id)
//
// Stale-message hardening (DESIGN.md D1): control messages carry the ReqId
// of the request they pertain to, so receivers drop messages about finished
// or superseded requests instead of relying solely on channel FIFO order.
#pragma once

#include <deque>
#include <ostream>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"

namespace dqme::net {

enum class MsgType : uint8_t {
  kRequest,
  kReply,
  kRelease,
  kInquire,
  kFail,
  kYield,
  kTransfer,
  kTokenReq,
  kToken,
  kFailureNotice,
  // Replica-control layer (§7 extension).
  kRead,
  kReadReply,
  kWrite,
  kWriteAck,
};

inline constexpr int kNumMsgTypes = 14;

std::string_view to_string(MsgType t);

// Token state shipped by token-based baselines (Suzuki-Kasami). Exactly one
// site holds the token at a time; ownership moves with the message.
struct TokenPayload {
  std::vector<SeqNum> ln;    // LN[j]: seq number of j's last served request
  std::deque<SiteId> queue;  // sites waiting for the token
};

// Replicated-data fields (§7 extension layer).
struct KvFields {
  int64_t key = 0;
  int64_t value = 0;
  int64_t version = 0;
};

// Handle to a side payload (token state / kv fields) pooled by the Network.
// Only kToken and the replica-layer messages carry one; every other control
// message ships the sentinel. The Network owns the slot for the message's
// whole flight and recycles it once the receiver's handler returns (or the
// message is dropped by crash semantics) — a Message copy retained past
// delivery must therefore sever the handle (net::TraceRecorder does, at
// capture time), because the recycled slot may back an unrelated flight by
// the time anyone looks.
using PayloadId = uint32_t;
inline constexpr PayloadId kNoPayload = 0xffffffffu;

struct Message {
  ReqId req;      // request this message pertains to (see table)
  ReqId target;
  SeqNum seq = 0;

  // Observability piggyback (src/obs): the causal span this message
  // advances — span_of() of the request whose CS entry the message works
  // toward (for a transfer, the *target*'s request, not the holder's).
  // Stamped by the make_* constructors; kNoSpan for non-request traffic.
  SpanId span = kNoSpan;
  // When the message left its sender; filled by Network::stage so trace
  // consumers can draw send->deliver arrows without a second hook.
  Time sent_at = 0;

  SiteId src = kNoSite;  // filled by Network::send
  SiteId dst = kNoSite;  // filled by Network::send
  SiteId arbiter = kNoSite;
  PayloadId payload = kNoPayload;  // Network::attach_kv / attach_token
  MsgType type = MsgType::kRequest;

  friend std::ostream& operator<<(std::ostream& os, const Message& m);
};

// The whole point of the side-payload split: a control message is a flat
// 80-byte struct the flight pool can copy with memcpy — no shared_ptr
// refcount traffic, no destructor walk, on the hot path. Growing Message
// is a hot-path regression; think twice and re-measure (bench/micro_core).
static_assert(std::is_trivially_copyable_v<Message>);
static_assert(sizeof(Message) <= 80);

// Constructors for the Cao-Singhal / Maekawa message vocabulary. They keep
// protocol code close to the paper's notation: e.g. `transfer(k, j)` in the
// paper is `make_transfer(target_req, arbiter, holder_req)` here.
Message make_request(ReqId req);
Message make_reply(SiteId arbiter, ReqId granted_req);
Message make_release(ReqId releaser_req, ReqId forwarded_to);
Message make_inquire(SiteId arbiter, ReqId inquired_req);
Message make_fail(SiteId arbiter, ReqId failed_req);
Message make_yield(SiteId arbiter, ReqId yielder_req);
Message make_transfer(ReqId target_req, SiteId arbiter, ReqId holder_req);
Message make_failure_notice(SiteId failed_site);

}  // namespace dqme::net
