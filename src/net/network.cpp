#include "net/network.h"

#include <utility>

namespace dqme::net {

Network::Network(sim::Simulator& sim, int n, std::unique_ptr<DelayModel> delay,
                 uint64_t seed)
    : sim_(sim),
      delay_(std::move(delay)),
      rng_(seed),
      sites_(static_cast<size_t>(n), nullptr),
      alive_(static_cast<size_t>(n), true),
      last_delivery_(static_cast<size_t>(n) * static_cast<size_t>(n), 0) {
  DQME_CHECK(n > 0);
  DQME_CHECK(delay_ != nullptr);
}

void Network::attach(SiteId id, NetSite* site) {
  DQME_CHECK(0 <= id && id < size());
  DQME_CHECK(site != nullptr);
  sites_[static_cast<size_t>(id)] = site;
}

uint32_t Network::acquire_flight() {
  ++stats_.flights_acquired;
  if (flight_free_ != kNilFlight) {
    uint32_t idx = flight_free_;
    flight_free_ = flights_[idx].next_free;
    flights_[idx].next_free = kNilFlight;
    return idx;
  }
  flights_.emplace_back();
  return static_cast<uint32_t>(flights_.size() - 1);
}

void Network::send(SiteId src, SiteId dst, Message m) {
  const uint32_t idx = acquire_flight();
  flights_[idx].msgs.push_back(std::move(m));
  stage(src, dst, idx);
}

void Network::send_bundle(SiteId src, SiteId dst,
                          std::vector<Message> bundle) {
  DQME_CHECK(!bundle.empty());
  const uint32_t idx = acquire_flight();
  // Move elements into the pooled vector (keeping its capacity) rather
  // than adopting the caller's allocation, which would defeat the pool.
  auto& msgs = flights_[idx].msgs;
  msgs.insert(msgs.end(), std::make_move_iterator(bundle.begin()),
              std::make_move_iterator(bundle.end()));
  stage(src, dst, idx);
}

void Network::stage(SiteId src, SiteId dst, uint32_t flight) {
  DQME_CHECK(0 <= src && src < size());
  DQME_CHECK(0 <= dst && dst < size());
  auto& msgs = flights_[flight].msgs;
  for (Message& m : msgs) {
    m.src = src;
    m.dst = dst;
    m.sent_at = sim_.now();
  }

  if (!alive_[static_cast<size_t>(src)]) {  // crashed sites are silent
    msgs.clear();
    flights_[flight].next_free = flight_free_;
    flight_free_ = flight;
    return;
  }

  if (src == dst) {
    // Local short-circuit: delivered as a fresh event (never inline, so a
    // site's handler is never re-entered), with no wire cost.
    stats_.local_deliveries += msgs.size();
    sim_.schedule_after(0, [this, flight] { deliver_flight(flight); });
    return;
  }

  stats_.wire_messages += 1;
  stats_.control_messages += msgs.size();
  for (const Message& m : msgs)
    stats_.by_type[static_cast<size_t>(m.type)] += 1;

  const size_t chan = static_cast<size_t>(src) * static_cast<size_t>(size()) +
                      static_cast<size_t>(dst);
  Time at = sim_.now() + delay_->sample(rng_, src, dst);
  // FIFO floor: never deliver before anything previously sent on the
  // channel. Equal instants are fine — the simulator breaks ties in
  // scheduling order, which equals sending order.
  if (at < last_delivery_[chan]) at = last_delivery_[chan];
  last_delivery_[chan] = at;

  sim_.schedule_at(at, [this, flight] { deliver_flight(flight); });
}

void Network::deliver_flight(uint32_t idx) {
  // Receivers send messages from inside on_message, which can grow
  // flights_ and invalidate references — index on every access.
  for (size_t i = 0; i < flights_[idx].msgs.size(); ++i) {
    Message m = std::move(flights_[idx].msgs[i]);
    deliver(m);
  }
  flights_[idx].msgs.clear();
  flights_[idx].next_free = flight_free_;
  flight_free_ = idx;
}

void Network::deliver(const Message& m) {
  if (!alive_[static_cast<size_t>(m.dst)] ||
      !alive_[static_cast<size_t>(m.src)]) {
    // Fail-silent crash semantics: a message from/to a crashed site
    // evaporates. (Messages a site sent *before* crashing are still
    // delivered in reality; we drop those too, which is the conservative
    // choice for the §6 recovery protocol — it must not depend on them.)
    stats_.dropped_at_crashed += 1;
    return;
  }
  stats_.delivered_messages += 1;
  if (on_deliver) on_deliver(m);
  NetSite* site = sites_[static_cast<size_t>(m.dst)];
  DQME_CHECK_MSG(site != nullptr, "no receiver attached for site " << m.dst);
  site->on_message(m);
}

void Network::crash(SiteId id) {
  DQME_CHECK(0 <= id && id < size());
  alive_[static_cast<size_t>(id)] = false;
  if (on_crash) on_crash(id);
}

int Network::alive_count() const {
  int n = 0;
  for (bool a : alive_)
    if (a) ++n;
  return n;
}

}  // namespace dqme::net
