#include "net/network.h"

#include <utility>

namespace dqme::net {

Network::Network(sim::Simulator& sim, int n, std::unique_ptr<DelayModel> delay,
                 uint64_t seed)
    : sim_(sim),
      delay_(std::move(delay)),
      rng_(seed),
      sites_(static_cast<size_t>(n), nullptr),
      alive_(static_cast<size_t>(n), true),
      last_delivery_(static_cast<size_t>(n) * static_cast<size_t>(n), 0) {
  DQME_CHECK(n > 0);
  DQME_CHECK(delay_ != nullptr);
}

void Network::attach(SiteId id, NetSite* site) {
  DQME_CHECK(0 <= id && id < size());
  DQME_CHECK(site != nullptr);
  sites_[static_cast<size_t>(id)] = site;
}

void Network::send(SiteId src, SiteId dst, Message m) {
  std::vector<Message> bundle;
  bundle.push_back(std::move(m));
  send_bundle(src, dst, std::move(bundle));
}

void Network::send_bundle(SiteId src, SiteId dst, std::vector<Message> bundle) {
  DQME_CHECK(0 <= src && src < size());
  DQME_CHECK(0 <= dst && dst < size());
  DQME_CHECK(!bundle.empty());
  for (Message& m : bundle) {
    m.src = src;
    m.dst = dst;
  }

  if (!alive_[static_cast<size_t>(src)]) return;  // crashed sites are silent

  if (src == dst) {
    // Local short-circuit: delivered as a fresh event (never inline, so a
    // site's handler is never re-entered), with no wire cost.
    stats_.local_deliveries += bundle.size();
    sim_.schedule_after(0, [this, bundle = std::move(bundle)]() {
      for (const Message& m : bundle) deliver(m);
    });
    return;
  }

  stats_.wire_messages += 1;
  stats_.control_messages += bundle.size();
  for (const Message& m : bundle)
    stats_.by_type[static_cast<size_t>(m.type)] += 1;

  const size_t chan = static_cast<size_t>(src) * static_cast<size_t>(size()) +
                      static_cast<size_t>(dst);
  Time at = sim_.now() + delay_->sample(rng_, src, dst);
  // FIFO floor: never deliver before anything previously sent on the
  // channel. Equal instants are fine — the simulator breaks ties in
  // scheduling order, which equals sending order.
  if (at < last_delivery_[chan]) at = last_delivery_[chan];
  last_delivery_[chan] = at;

  sim_.schedule_at(at, [this, bundle = std::move(bundle)]() {
    for (const Message& m : bundle) deliver(m);
  });
}

void Network::deliver(const Message& m) {
  if (!alive_[static_cast<size_t>(m.dst)] ||
      !alive_[static_cast<size_t>(m.src)]) {
    // Fail-silent crash semantics: a message from/to a crashed site
    // evaporates. (Messages a site sent *before* crashing are still
    // delivered in reality; we drop those too, which is the conservative
    // choice for the §6 recovery protocol — it must not depend on them.)
    stats_.dropped_at_crashed += 1;
    return;
  }
  if (on_deliver) on_deliver(m);
  NetSite* site = sites_[static_cast<size_t>(m.dst)];
  DQME_CHECK_MSG(site != nullptr, "no receiver attached for site " << m.dst);
  site->on_message(m);
}

void Network::crash(SiteId id) {
  DQME_CHECK(0 <= id && id < size());
  alive_[static_cast<size_t>(id)] = false;
}

int Network::alive_count() const {
  int n = 0;
  for (bool a : alive_)
    if (a) ++n;
  return n;
}

}  // namespace dqme::net
