#include "net/network.h"

#include <utility>

namespace dqme::net {

Network::Network(sim::Simulator& sim, int n, std::unique_ptr<DelayModel> delay,
                 uint64_t seed)
    : sim_(sim),
      delay_(std::move(delay)),
      rng_(seed),
      sites_(static_cast<size_t>(n), nullptr),
      alive_(static_cast<size_t>(n), true),
      last_delivery_(static_cast<size_t>(n) * static_cast<size_t>(n), 0) {
  DQME_CHECK(n > 0);
  DQME_CHECK(delay_ != nullptr);
}

void Network::attach(SiteId id, NetSite* site) {
  DQME_CHECK(0 <= id && id < size());
  DQME_CHECK(site != nullptr);
  sites_[static_cast<size_t>(id)] = site;
}

uint32_t Network::acquire_flight() {
  ++stats_.flights_acquired;
  if (flight_free_ != kNilFlight) {
    uint32_t idx = flight_free_;
    flight_free_ = flights_[idx].next_free;
    flights_[idx].next_free = kNilFlight;
    return idx;
  }
  flights_.emplace_back();
  return static_cast<uint32_t>(flights_.size() - 1);
}

void Network::release_flight(uint32_t idx) {
  Flight& f = flights_[idx];
  f.inline_count = 0;
  f.spill.clear();
  f.spill_locks.clear();
  f.spill_causes.clear();
  ++f.gen;  // invalidates any OpenFlight record pointing at this slot
  f.next_free = flight_free_;
  flight_free_ = idx;
}

PayloadId Network::acquire_payload() {
  ++stats_.payloads_acquired;
  if (payload_free_ != kNilFlight) {
    const PayloadId idx = payload_free_;
    SidePayload& p = payloads_[idx];
    payload_free_ = p.next_free;
    p.next_free = kNilFlight;
    p.kv = KvFields{};
    p.token.ln.clear();  // capacity survives for the next token hop
    p.token.queue.clear();
    return idx;
  }
  payloads_.emplace_back();
  return static_cast<PayloadId>(payloads_.size() - 1);
}

void Network::release_payload(PayloadId id) {
  payloads_[id].next_free = payload_free_;
  payload_free_ = id;
}

KvFields& Network::attach_kv(Message& m) {
  if (m.payload == kNoPayload) m.payload = acquire_payload();
  return payloads_[m.payload].kv;
}

TokenPayload& Network::attach_token(Message& m) {
  if (m.payload == kNoPayload) m.payload = acquire_payload();
  return payloads_[m.payload].token;
}

KvFields Network::read_kv(const Message& m) const {
  DQME_CHECK_MSG(m.payload != kNoPayload, "message carries no kv payload");
  return payloads_[m.payload].kv;
}

TokenPayload Network::take_token(const Message& m) {
  DQME_CHECK_MSG(m.payload != kNoPayload, "message carries no token payload");
  return std::move(payloads_[m.payload].token);
}

void Network::send(SiteId src, SiteId dst, const Message& m, LockId lock) {
  const uint32_t idx = acquire_flight();
  Flight& f = flights_[idx];
  f.inline_msgs[0] = m;
  f.inline_locks[0] = lock;
  f.inline_causes[0] = send_cause_;
  f.inline_count = 1;
  stage(src, dst, idx);
}

void Network::send_bundle(SiteId src, SiteId dst, const Message* msgs,
                          size_t n, LockId lock) {
  DQME_CHECK(n > 0);
  const uint32_t idx = acquire_flight();
  Flight& f = flights_[idx];
  const size_t inl = n < 2 ? n : 2;
  for (size_t i = 0; i < inl; ++i) {
    f.inline_msgs[i] = msgs[i];
    f.inline_locks[i] = lock;
    f.inline_causes[i] = send_cause_;
  }
  f.inline_count = static_cast<uint32_t>(inl);
  if (n > 2) {
    f.spill.assign(msgs + 2, msgs + n);
    f.spill_locks.assign(n - 2, lock);
    f.spill_causes.assign(n - 2, send_cause_);
  }
  stage(src, dst, idx);
}

void Network::set_lock_piggyback(Time window) {
  pb_window_ = window;
  if (window >= 0) {
    if (open_.empty())
      open_.assign(static_cast<size_t>(size()) * static_cast<size_t>(size()),
                   OpenFlight{});
  } else {
    open_.clear();
    open_.shrink_to_fit();
  }
}

void Network::stage(SiteId src, SiteId dst, uint32_t flight) {
  DQME_CHECK(0 <= src && src < size());
  DQME_CHECK(0 <= dst && dst < size());
  Flight& f = flights_[flight];
  const Time now = sim_.now();
  const auto stamp = [&](Message& m) {
    m.src = src;
    m.dst = dst;
    m.sent_at = now;
  };
  for (uint32_t i = 0; i < f.inline_count; ++i) stamp(f.inline_msgs[i]);
  for (Message& m : f.spill) stamp(m);

  if (!alive_[static_cast<size_t>(src)]) {  // crashed sites are silent
    // Never-delivered payloads would leak their slots otherwise.
    for (uint32_t i = 0; i < f.inline_count; ++i)
      if (f.inline_msgs[i].payload != kNoPayload)
        release_payload(f.inline_msgs[i].payload);
    for (const Message& m : f.spill)
      if (m.payload != kNoPayload) release_payload(m.payload);
    release_flight(flight);
    return;
  }

  const size_t count = f.inline_count + f.spill.size();
  if (src == dst) {
    // Local short-circuit: delivered as a fresh event (never inline, so a
    // site's handler is never re-entered), with no wire cost.
    stats_.local_deliveries += count;
    sim_.schedule_after(0, [this, flight] { deliver_flight(flight); });
    return;
  }

  stats_.control_messages += count;
  for (uint32_t i = 0; i < f.inline_count; ++i)
    stats_.by_type[static_cast<size_t>(f.inline_msgs[i].type)] += 1;
  for (const Message& m : f.spill)
    stats_.by_type[static_cast<size_t>(m.type)] += 1;

  const size_t chan = static_cast<size_t>(src) * static_cast<size_t>(size()) +
                      static_cast<size_t>(dst);
  if (controlled_) {
    // A wire message to a dead receiver evaporates now rather than sitting
    // in a parked queue no strategy should ever have to drain: the clock
    // path would drop it at arrival anyway, and dropping here keeps the
    // enabled-action set (non-empty channels) meaningful. One flight is
    // one schedule action, so lock piggybacking is off in this mode.
    stats_.wire_messages += 1;
    if (!alive_[static_cast<size_t>(dst)]) {
      drop_flight(flight);
      return;
    }
    parked_[chan].push_back(flight);
    ++parked_total_;
    return;
  }

  if (pb_window_ >= 0) {
    // Lock piggybacking: ride the channel's open flight when it is still
    // undelivered (strictly — at now == deliver the delivery event may
    // already have fired this instant) and young enough. Appending keeps
    // the open flight's delivery instant, so FIFO and the delivery floor
    // are untouched; the appended messages cost no new wire message.
    OpenFlight& rec = open_[chan];
    if (rec.flight != kNilFlight && flights_[rec.flight].gen == rec.gen &&
        now < rec.deliver && now - rec.created <= pb_window_) {
      Flight& open = flights_[rec.flight];
      for (uint32_t i = 0; i < f.inline_count; ++i) {
        if (open.inline_count < 2) {
          open.inline_msgs[open.inline_count] = f.inline_msgs[i];
          open.inline_locks[open.inline_count] = f.inline_locks[i];
          open.inline_causes[open.inline_count] = f.inline_causes[i];
          ++open.inline_count;
        } else {
          open.spill.push_back(f.inline_msgs[i]);
          open.spill_locks.push_back(f.inline_locks[i]);
          open.spill_causes.push_back(f.inline_causes[i]);
        }
      }
      for (size_t i = 0; i < f.spill.size(); ++i) {
        open.spill.push_back(f.spill[i]);
        open.spill_locks.push_back(f.spill_locks[i]);
        open.spill_causes.push_back(f.spill_causes[i]);
      }
      stats_.piggybacked_messages += count;
      release_flight(flight);
      return;
    }
  }

  stats_.wire_messages += 1;
  Time at = sim_.now() + delay_->sample(rng_, src, dst);
  // FIFO floor: never deliver before anything previously sent on the
  // channel. Equal instants are fine — the simulator breaks ties in
  // scheduling order, which equals sending order.
  if (at < last_delivery_[chan]) at = last_delivery_[chan];
  last_delivery_[chan] = at;

  if (pb_window_ >= 0)
    open_[chan] = OpenFlight{flight, f.gen, now, at};

  sim_.schedule_at(at, [this, flight] { deliver_flight(flight); });
}

void Network::deliver_flight(uint32_t idx) {
  // Receivers send messages from inside on_message, which can grow
  // flights_ and invalidate references — copy the inline messages out (a
  // memcpy) before touching any handler. The hook branch resolves once per
  // flight: a detached run never tests the std::function per message.
  const bool hooked = static_cast<bool>(on_deliver);
  const uint32_t n = flights_[idx].inline_count;
  const std::array<Message, 2> local = flights_[idx].inline_msgs;
  const std::array<LockId, 2> local_locks = flights_[idx].inline_locks;
  const std::array<CauseId, 2> local_causes = flights_[idx].inline_causes;
  if (flights_[idx].spill.empty()) {
    // Fast path: 1-2 messages, the dominant shapes.
    if (hooked) {
      for (uint32_t i = 0; i < n; ++i)
        deliver_one<true>(local[i], local_locks[i], local_causes[i]);
    } else {
      for (uint32_t i = 0; i < n; ++i)
        deliver_one<false>(local[i], local_locks[i], local_causes[i]);
    }
    release_flight(idx);
    return;
  }

  for (uint32_t i = 0; i < n; ++i) {
    if (hooked)
      deliver_one<true>(local[i], local_locks[i], local_causes[i]);
    else
      deliver_one<false>(local[i], local_locks[i], local_causes[i]);
  }
  // The spill vector must survive the handlers — index on every access.
  for (size_t i = 0; i < flights_[idx].spill.size(); ++i) {
    const Message m = flights_[idx].spill[i];
    const LockId lock = flights_[idx].spill_locks[i];
    const CauseId cause = flights_[idx].spill_causes[i];
    if (hooked)
      deliver_one<true>(m, lock, cause);
    else
      deliver_one<false>(m, lock, cause);
  }
  release_flight(idx);
}

template <bool kHooked>
void Network::deliver_one(const Message& m, LockId lock, CauseId cause) {
  if (!alive_[static_cast<size_t>(m.dst)] ||
      !alive_[static_cast<size_t>(m.src)]) {
    // Fail-silent crash semantics: a message from/to a crashed site
    // evaporates. (Messages a site sent *before* crashing are still
    // delivered in reality; we drop those too, which is the conservative
    // choice for the §6 recovery protocol — it must not depend on them.)
    stats_.dropped_at_crashed += 1;
    if (m.payload != kNoPayload) release_payload(m.payload);
    return;
  }
  stats_.delivered_messages += 1;
  // Causal context for the handler: an attached recorder reads
  // delivering_cause() inside on_deliver, and anything the handler sends is
  // stamped with send_cause_ — which the recorder overwrites per recorded
  // edge, so only observed runs ever see a non-kNoCause value here.
  delivering_cause_ = cause;
  if constexpr (kHooked) on_deliver(m, lock);
  NetSite* site = sites_[static_cast<size_t>(m.dst)];
  DQME_CHECK_MSG(site != nullptr, "no receiver attached for site " << m.dst);
  site->on_message(m, lock);
  delivering_cause_ = kNoCause;
  send_cause_ = kNoCause;
  // The payload's lifetime is the flight: the handler has returned (and
  // taken what it wanted), so the slot recycles.
  if (m.payload != kNoPayload) release_payload(m.payload);
}

void Network::drop_flight(uint32_t idx) {
  Flight& f = flights_[idx];
  stats_.dropped_at_crashed += f.inline_count + f.spill.size();
  for (uint32_t i = 0; i < f.inline_count; ++i)
    if (f.inline_msgs[i].payload != kNoPayload)
      release_payload(f.inline_msgs[i].payload);
  for (const Message& m : f.spill)
    if (m.payload != kNoPayload) release_payload(m.payload);
  release_flight(idx);
}

void Network::set_controlled(bool on) {
  if (on == controlled_) return;
  if (on) {
    parked_.assign(static_cast<size_t>(size()) * static_cast<size_t>(size()),
                   {});
  } else {
    DQME_CHECK_MSG(parked_total_ == 0,
                   "disabling controlled delivery with flights still parked");
    parked_.clear();
    parked_.shrink_to_fit();
  }
  controlled_ = on;
}

void Network::parked_channels(std::vector<Channel>& out) const {
  out.clear();
  if (parked_total_ == 0) return;
  const size_t n = static_cast<size_t>(size());
  for (size_t chan = 0; chan < parked_.size(); ++chan) {
    if (parked_[chan].empty()) continue;
    out.push_back(Channel{static_cast<SiteId>(chan / n),
                          static_cast<SiteId>(chan % n)});
  }
}

size_t Network::parked_count(SiteId src, SiteId dst) const {
  DQME_CHECK(0 <= src && src < size());
  DQME_CHECK(0 <= dst && dst < size());
  const size_t chan = static_cast<size_t>(src) * static_cast<size_t>(size()) +
                      static_cast<size_t>(dst);
  return parked_[chan].size();
}

Time Network::parked_sent_at(SiteId src, SiteId dst, size_t index) const {
  const size_t chan = static_cast<size_t>(src) * static_cast<size_t>(size()) +
                      static_cast<size_t>(dst);
  DQME_CHECK(index < parked_[chan].size());
  const Flight& f = flights_[parked_[chan][index]];
  DQME_CHECK(f.inline_count > 0);
  return f.inline_msgs[0].sent_at;
}

bool Network::deliver_parked(SiteId src, SiteId dst, size_t index) {
  DQME_CHECK_MSG(controlled_, "deliver_parked outside controlled mode");
  DQME_CHECK(0 <= src && src < size());
  DQME_CHECK(0 <= dst && dst < size());
  const size_t chan = static_cast<size_t>(src) * static_cast<size_t>(size()) +
                      static_cast<size_t>(dst);
  auto& q = parked_[chan];
  if (index >= q.size()) return false;
  const uint32_t flight = q[index];
  q.erase(q.begin() + static_cast<ptrdiff_t>(index));
  --parked_total_;
  deliver_flight(flight);
  return true;
}

void Network::crash(SiteId id) {
  DQME_CHECK(0 <= id && id < size());
  alive_[static_cast<size_t>(id)] = false;
  if (controlled_ && parked_total_ > 0) {
    // Parked flights touching the dead site would be dropped at delivery
    // anyway (deliver_one checks both endpoints); sweeping them now keeps
    // the enabled set honest and recycles their payload slots immediately.
    const size_t n = static_cast<size_t>(size());
    for (size_t chan = 0; chan < parked_.size(); ++chan) {
      const SiteId src = static_cast<SiteId>(chan / n);
      const SiteId dst = static_cast<SiteId>(chan % n);
      if (src != id && dst != id) continue;
      for (uint32_t flight : parked_[chan]) drop_flight(flight);
      parked_total_ -= parked_[chan].size();
      parked_[chan].clear();
    }
  }
  if (on_crash) on_crash(id);
}

int Network::alive_count() const {
  int n = 0;
  for (bool a : alive_)
    if (a) ++n;
  return n;
}

}  // namespace dqme::net
