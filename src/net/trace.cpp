#include "net/trace.h"

#include <iomanip>

namespace dqme::net {

TraceRecorder::TraceRecorder(Network& net, size_t capacity)
    : sim_(net.simulator()), capacity_(capacity) {
  DQME_CHECK(capacity > 0);
  auto previous = std::move(net.on_deliver);
  net.on_deliver = [this, previous = std::move(previous)](const Message& m,
                                                          LockId lock) {
    if (events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(TraceEvent{sim_.now(), m, lock});
    // A payload handle is only live while the delivery handler runs — the
    // network recycles the slot the moment on_message returns, and under
    // explorer-chosen (out-of-order) delivery the slot's next tenant is
    // arbitrary. Sever the handle in the retained copy so nothing can
    // dereference a recycled slot later.
    events_.back().msg.payload = kNoPayload;
    if (previous) previous(m, lock);
  };
}

std::deque<TraceEvent> TraceRecorder::filter(
    const std::function<bool(const TraceEvent&)>& pred) const {
  std::deque<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (pred(e)) out.push_back(e);
  return out;
}

void TraceRecorder::print(std::ostream& os) const {
  if (dropped_ > 0)
    os << "... (" << dropped_ << " earlier events dropped)\n";
  for (const TraceEvent& e : events_) {
    os << std::setw(10) << e.at << "  " << e.msg;
    if (e.lock != kLock0) os << " [lock " << e.lock << "]";
    os << '\n';
  }
}

size_t TraceRecorder::count(MsgType t) const {
  size_t n = 0;
  for (const TraceEvent& e : events_) n += e.msg.type == t ? 1 : 0;
  return n;
}

}  // namespace dqme::net
