// The execution-backend seam (DESIGN.md §9).
//
// Every protocol state machine in src/mutex and src/core talks to the
// outside world exclusively through this interface: deliver (attach a
// receiver), send (route control messages), side payloads, the clock, and
// schedule-timeout. Two backends implement it:
//
//   * net::Network   — the deterministic discrete-event backend. Messages
//     flow through the simulator's event heap with sampled virtual delays;
//     a whole run is a pure function of its seed. This is the oracle.
//   * rt::Runtime    — the wall-clock backend (src/rt). Each site is a real
//     thread, each directed channel a bounded lock-free SPSC ring, and
//     "delay" is whatever the scheduler and cache hierarchy actually do.
//
// Because the interface is the ONLY coupling, the exact same MutexSite
// subclasses run under both backends with byte-identical protocol
// decisions given identical delivery orders — the property
// tests/rt_equivalence_test.cpp checks against the simulator oracle.
//
// Contract notes:
//   * Per-(src,dst) channel FIFO is the one ordering guarantee protocols
//     may assume (verified by PR 5's controlled-delivery exploration).
//   * on_message / send are single-threaded PER SITE: a backend only ever
//     invokes a site from one logical thread of control, and a site only
//     calls send(src=me, ...) from inside its own handlers. The simulator
//     satisfies this globally (one thread); the rt backend per site.
//   * now() is observational (span timestamps, traces): protocol decisions
//     must not depend on it. The simulator returns virtual ticks, the rt
//     backend wall-clock microseconds since runtime start.
//   * schedule_timeout fires `fn` on `site`'s thread of control after
//     `delay` ticks; it may only be called from that site's own context.
//     Timeouts are best-effort wall-clock in the rt backend and exact
//     virtual time under the simulator; there is deliberately no cancel in
//     the seam (protocols do not use one).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace dqme::net {

// Anything that can receive messages from an execution backend. `lock` is
// the lock object the message arbitrates (kLock0 for single-lock traffic).
class NetSite {
 public:
  virtual ~NetSite() = default;
  virtual void on_message(const Message& m, LockId lock) = 0;
};

class Executor {
 public:
  virtual ~Executor() = default;

  virtual int size() const = 0;
  virtual Time now() const = 0;

  // Registers the receiver for site `id`. Must happen before any delivery
  // to `id`; re-attaching replaces the receiver (used by wrappers).
  virtual void attach(SiteId id, NetSite* site) = 0;

  // Sends one control message, tagged with the lock it arbitrates.
  virtual void send(SiteId src, SiteId dst, const Message& m,
                    LockId lock = kLock0) = 0;

  // Sends several control messages piggybacked (one wire message under the
  // simulator; back-to-back ring slots under rt). They are delivered
  // back-to-back, in order, sharing one lock tag. The pointer form is the
  // hot path: protocol code keeps ≤2-message bundles in a stack buffer.
  virtual void send_bundle(SiteId src, SiteId dst, const Message* msgs,
                           size_t n, LockId lock = kLock0) = 0;
  void send_bundle(SiteId src, SiteId dst, const std::vector<Message>& bundle,
                   LockId lock = kLock0) {
    send_bundle(src, dst, bundle.data(), bundle.size(), lock);
  }

  // Side payloads (token state / kv fields): pooled by the backend; the
  // slot's lifetime is the message's flight. See net/network.h for the
  // full ownership contract — both backends honour it.
  virtual KvFields& attach_kv(Message& m) = 0;
  virtual TokenPayload& attach_token(Message& m) = 0;
  virtual KvFields read_kv(const Message& m) const = 0;
  virtual TokenPayload take_token(const Message& m) = 0;

  // Runs `fn` on `site`'s thread of control `delay` ticks from now.
  // Returns an opaque id (the simulator's EventId; a per-site sequence
  // number under rt). Call only from `site`'s own context.
  virtual uint64_t schedule_timeout(SiteId site, Time delay,
                                    sim::Callback fn) = 0;
};

}  // namespace dqme::net
