// Message trace capture.
//
// A TraceRecorder hooks Network::on_deliver and keeps a bounded record of
// every control message with its delivery time. Protocol tests replay or
// grep traces; tools/dqme_trace prints them as a timeline. Recording is
// opt-in and zero-cost when not attached.
#pragma once

#include <deque>
#include <functional>
#include <ostream>
#include <string>

#include "net/network.h"

namespace dqme::net {

// One retained delivery. `msg.payload` is always kNoPayload: the pool slot
// behind the original handle dies when the delivery handler returns, so the
// recorder severs it at capture time (see trace.cpp).
struct TraceEvent {
  Time at = 0;
  Message msg;
  LockId lock = kLock0;  // lock-table tag the flight carried for `msg`
};

class TraceRecorder {
 public:
  // Attaches to `net`, chaining any hook already installed. `capacity`
  // bounds memory: older events are dropped first.
  TraceRecorder(Network& net, size_t capacity = 100'000);

  const std::deque<TraceEvent>& events() const { return events_; }
  size_t dropped() const { return dropped_; }
  // Starts a fresh measurement window: both the retained events and the
  // drop count reset, so a reused recorder never reports stale drops.
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Events matching a predicate (e.g. one message type, one site).
  std::deque<TraceEvent> filter(
      const std::function<bool(const TraceEvent&)>& pred) const;

  // Human-readable timeline: "     1234  transfer[3->0 ...]".
  void print(std::ostream& os) const;

  // Counts events of one type (convenience for assertions).
  size_t count(MsgType t) const;

 private:
  sim::Simulator& sim_;
  size_t capacity_;
  size_t dropped_ = 0;
  std::deque<TraceEvent> events_;
};

}  // namespace dqme::net
