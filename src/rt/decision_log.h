// Per-site decision log — the shared golden format of the rt-vs-sim
// equivalence check (DESIGN.md §9, tests/rt_equivalence_test.cpp).
//
// A DecisionLog wraps one protocol site as its network receiver and span
// observer, recording, in the site's own processing order:
//   * every control message the site RECEIVES (its inbound protocol view —
//     each peer decision manifests here as the bytes it put on the wire),
//   * every span edge the site emits (issue / enter / exit / abort — its
//     own CS decisions).
//
// Backend-dependent fields are masked: Message::sent_at (virtual ticks vs
// wall-clock microseconds), Message::payload (pool slot ids are allocation
// order, which differs across backends), and span-edge timestamps. What
// remains is exactly the protocol decision content: type, request
// identities, sequence numbers, arbiter, lock, span. Two backends given
// the same delivery order must produce byte-identical logs, or one of them
// made a different protocol decision.
//
// Token-state payloads are not hashed into the log; a divergent token
// (LN[] or queue) changes which request is served next, so it surfaces in
// the subsequent control traffic within a few hops.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "mutex/mutex_site.h"
#include "net/executor.h"
#include "net/message.h"

namespace dqme::rt {

class DecisionLog final : public net::NetSite, public mutex::SpanObserver {
 public:
  struct Record {
    enum Kind : uint8_t {
      kDeliver = 0,
      kIssue = 1,
      kEnter = 2,
      kExit = 3,
      kAbort = 4,
    };
    uint8_t kind = kDeliver;
    uint8_t type = 0;  // net::MsgType for kDeliver
    SiteId src = kNoSite;
    SiteId arbiter = kNoSite;
    LockId lock = kNoLock;
    SeqNum req_seq = 0;
    SiteId req_site = kNoSite;
    SeqNum tgt_seq = 0;
    SiteId tgt_site = kNoSite;
    SeqNum seq = 0;
    SpanId span = kNoSpan;

    friend bool operator==(const Record& a, const Record& b) {
      return a.kind == b.kind && a.type == b.type && a.src == b.src &&
             a.arbiter == b.arbiter && a.lock == b.lock &&
             a.req_seq == b.req_seq && a.req_site == b.req_site &&
             a.tgt_seq == b.tgt_seq && a.tgt_site == b.tgt_site &&
             a.seq == b.seq && a.span == b.span;
    }
    friend bool operator!=(const Record& a, const Record& b) {
      return !(a == b);
    }

    std::string str() const {
      static constexpr const char* kKinds[] = {"deliver", "issue", "enter",
                                               "exit", "abort"};
      std::ostringstream os;
      os << kKinds[kind];
      if (kind == kDeliver) {
        os << ' ' << net::to_string(static_cast<net::MsgType>(type))
           << " from=" << src << " arb=" << arbiter << " req=(" << req_seq
           << ',' << req_site << ") tgt=(" << tgt_seq << ',' << tgt_site
           << ") seq=" << seq;
      }
      os << " lock=" << lock << " span=" << span;
      return os.str();
    }
  };

  // Interposes this log between the backend and `site`: the log becomes
  // site `id`'s receiver on `exec` and the site's span observer (chaining
  // any observer already attached). Call after the site is constructed.
  void bind(net::Executor& exec, mutex::MutexSite& site) {
    site_ = &site;
    downstream_ = site.span_observer();
    site.attach_span_observer(this);
    exec.attach(site.id(), this);
  }

  // net::NetSite — record the masked inbound message, then forward.
  void on_message(const net::Message& m, LockId lock) override {
    Record r;
    r.kind = Record::kDeliver;
    r.type = static_cast<uint8_t>(m.type);
    r.src = m.src;
    r.arbiter = m.arbiter;
    r.lock = lock;
    r.req_seq = m.req.seq;
    r.req_site = m.req.site;
    r.tgt_seq = m.target.seq;
    r.tgt_site = m.target.site;
    r.seq = m.seq;
    r.span = m.span;
    records_.push_back(r);
    DQME_CHECK(site_ != nullptr);
    site_->on_message(m, lock);
  }

  // mutex::SpanObserver — record the edge (time masked), then forward.
  void on_span_issue(SiteId site, LockId lock, SpanId span,
                     Time at) override {
    push_span(Record::kIssue, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_issue(site, lock, span, at);
  }
  void on_span_enter(SiteId site, LockId lock, SpanId span,
                     Time at) override {
    push_span(Record::kEnter, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_enter(site, lock, span, at);
  }
  void on_span_exit(SiteId site, LockId lock, SpanId span, Time at) override {
    push_span(Record::kExit, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_exit(site, lock, span, at);
  }
  void on_span_abort(SiteId site, LockId lock, SpanId span,
                     Time at) override {
    push_span(Record::kAbort, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_abort(site, lock, span, at);
  }

  const std::vector<Record>& records() const { return records_; }
  mutex::MutexSite* site() const { return site_; }

 private:
  void push_span(uint8_t kind, LockId lock, SpanId span) {
    Record r;
    r.kind = kind;
    r.lock = lock;
    r.span = span;
    records_.push_back(r);
  }

  mutex::MutexSite* site_ = nullptr;
  mutex::SpanObserver* downstream_ = nullptr;
  std::vector<Record> records_;
};

// Human-readable diff of two per-site log sets: empty string when they are
// identical, otherwise the first divergence (site, index, both records).
inline std::string diff_decision_logs(
    const std::vector<std::vector<DecisionLog::Record>>& a,
    const std::vector<std::vector<DecisionLog::Record>>& b) {
  std::ostringstream os;
  if (a.size() != b.size()) {
    os << "site count differs: " << a.size() << " vs " << b.size();
    return os.str();
  }
  for (size_t s = 0; s < a.size(); ++s) {
    const auto& la = a[s];
    const auto& lb = b[s];
    const size_t n = la.size() < lb.size() ? la.size() : lb.size();
    for (size_t i = 0; i < n; ++i) {
      if (la[i] != lb[i]) {
        os << "site " << s << " record " << i << " differs:\n  sim: "
           << la[i].str() << "\n  rt:  " << lb[i].str();
        return os.str();
      }
    }
    if (la.size() != lb.size()) {
      os << "site " << s << " log length differs: sim=" << la.size()
         << " rt=" << lb.size() << "; first extra: "
         << (la.size() > lb.size() ? la[n].str() : lb[n].str());
      return os.str();
    }
  }
  return std::string();
}

}  // namespace dqme::rt
