#include "rt/driver.h"

#include <chrono>
#include <deque>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "obs/invariants.h"
#include "quorum/factory.h"
#include "sim/simulator.h"

namespace dqme::rt {

FreeRunResult run_free(const FreeRunConfig& cfg) {
  DQME_CHECK(cfg.n >= 2 && cfg.num_locks >= 1 && cfg.target_entries >= 1);
  FreeRunResult res;

  RuntimeOptions ropts;
  ropts.ring_capacity = cfg.ring_capacity;
  ropts.obs_feed = cfg.check;
  ropts.wire_delay_us = cfg.wire_delay_us;
  Runtime rtc(cfg.n, ropts);

  std::unique_ptr<quorum::QuorumSystem> quorums;
  if (mutex::algo_uses_quorum(cfg.algo))
    quorums = quorum::make_quorum_system(cfg.quorum, cfg.n);
  mutex::AlgoOptions aopts;
  aopts.fault_tolerant = cfg.fault_tolerant;
  aopts.num_locks = cfg.num_locks;

  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  std::vector<std::unique_ptr<ObsTap>> taps;
  for (SiteId id = 0; id < cfg.n; ++id) {
    sites.push_back(
        mutex::make_site(cfg.algo, id, rtc, quorums.get(), aopts));
    rtc.attach(id, sites.back().get());
    if (cfg.check) taps.push_back(std::make_unique<ObsTap>(rtc, *sites.back()));
  }

  SafetyProbe probe(cfg.num_locks);

  // Per-site driver state, touched only by the owning pump thread.
  struct SiteDrv {
    std::vector<LockId> rotation;  // per-site shuffled lock order
    size_t next = 0;
    std::deque<LockId> entered;  // locks entered, awaiting top-level release
    int in_service = 0;
  };
  std::vector<SiteDrv> drv(static_cast<size_t>(cfg.n));
  for (SiteId s = 0; s < cfg.n; ++s) {
    SiteDrv& d = drv[static_cast<size_t>(s)];
    d.rotation.resize(static_cast<size_t>(cfg.num_locks));
    for (LockId l = 0; l < cfg.num_locks; ++l)
      d.rotation[static_cast<size_t>(l)] = l;
    // Seeded per-site shuffle: sites sweep the lock table in different
    // orders, so contention spreads instead of convoying on lock 0.
    Rng rng(cfg.seed * 6364136223846793005ull + static_cast<uint64_t>(s));
    for (size_t i = d.rotation.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(i) - 1));
      std::swap(d.rotation[i - 1], d.rotation[j]);
    }
  }

  // on_enter fires on the entering site's own pump thread — possibly from
  // inside request_cs (an uncontended token holder). Only record it here;
  // release happens at the top of the next poll, never re-entrantly.
  for (SiteId s = 0; s < cfg.n; ++s) {
    sites[static_cast<size_t>(s)]->on_enter = [&, s](SiteId, LockId lock) {
      if (cfg.check) probe.enter(lock, s);
      drv[static_cast<size_t>(s)].entered.push_back(lock);
    };
  }

  std::atomic<uint64_t> entries{0};
  std::atomic<bool> stop_issuing{false};
  std::atomic<bool> timed_out{false};
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const int depth = cfg.num_locks == 1 ? 1 : cfg.outstanding;
  const auto poll = [&](SiteId s) -> bool {
    SiteDrv& d = drv[static_cast<size_t>(s)];
    mutex::MutexSite& site = *sites[static_cast<size_t>(s)];
    while (!d.entered.empty()) {
      const LockId lock = d.entered.front();
      d.entered.pop_front();
      if (cfg.check) probe.exit(lock, s);
      site.release_cs(lock);
      --d.in_service;
      if (entries.fetch_add(1, std::memory_order_acq_rel) + 1 >=
          cfg.target_entries)
        stop_issuing.store(true, std::memory_order_release);
    }
    if (!stop_issuing.load(std::memory_order_acquire)) {
      // Keep the pipeline full: scan the rotation for idle locks. One full
      // sweep max per poll, so a site saturated on every lock backs off.
      size_t scanned = 0;
      while (d.in_service < depth && scanned < d.rotation.size()) {
        const LockId lock = d.rotation[d.next];
        d.next = (d.next + 1) % d.rotation.size();
        ++scanned;
        if (!site.idle(lock)) continue;
        site.request_cs(lock);
        ++d.in_service;
      }
    }
    if (s == 0) {
      const double t = elapsed();
      if (t > cfg.max_seconds)
        stop_issuing.store(true, std::memory_order_release);
      if (t > 2 * cfg.max_seconds && !timed_out.load()) {
        // Hard abort: something wedged (this is a bug surface, not a
        // tuning knob). Pumps exit; the result reports the failure.
        timed_out.store(true, std::memory_order_release);
        rtc.request_stop();
      }
    }
    return stop_issuing.load(std::memory_order_acquire) &&
           d.in_service == 0 && d.entered.empty();
  };

  rtc.run(poll);
  res.wall_seconds = elapsed();

  res.cs_entries = 0;
  for (const auto& s : sites) res.cs_entries += s->cs_entries();
  res.stats = rtc.stats();
  res.handoffs_per_sec =
      res.wall_seconds > 0
          ? static_cast<double>(res.cs_entries) / res.wall_seconds
          : 0;
  res.wire_msgs_per_sec =
      res.wall_seconds > 0
          ? static_cast<double>(res.stats.wire_messages) / res.wall_seconds
          : 0;
  res.probe_violations = probe.violations();

  res.ok = !timed_out.load() && rtc.in_flight() == 0;
  if (timed_out.load()) res.error = "hard timeout: run did not quiesce";

  if (cfg.check) {
    // Post-hoc safety/conservation audit: merge the per-site shards by
    // global stamp and replay the run through the PR-3 invariant checker.
    // The dummy network only provides the checker's constructor seam; with
    // liveness_bound 0 nothing is scheduled on it, and its (empty) stats
    // make the sim-side conservation term trivially zero — the rt-side
    // conservation statement is in_flight() == 0, asserted above.
    sim::Simulator dummy_sim;
    net::Network dummy_net(dummy_sim, cfg.n,
                           std::make_unique<net::ConstantDelay>(1), 1);
    obs::InvariantOptions iopts;
    iopts.liveness_bound = 0;
    iopts.quorum_arbitration = mutex::algo_uses_quorum(cfg.algo);
    obs::InvariantChecker checker(dummy_net, iopts);
    rtc.replay_into(checker);
    res.violations = checker.violations();
    res.reports = checker.reports();
    if (res.violations > 0 || res.probe_violations > 0) res.ok = false;
  }
  return res;
}

}  // namespace dqme::rt
