#include "rt/oracle.h"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "quorum/factory.h"
#include "rt/runtime.h"
#include "sim/simulator.h"

namespace dqme::rt {

namespace {

// Shared construction so both backends wire byte-identical protocol stacks.
struct Stack {
  std::unique_ptr<quorum::QuorumSystem> quorums;
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  std::vector<std::unique_ptr<DecisionLog>> logs;

  void build(const EquivConfig& cfg, net::Executor& exec) {
    if (mutex::algo_uses_quorum(cfg.algo))
      quorums = quorum::make_quorum_system(cfg.quorum, cfg.n);
    mutex::AlgoOptions opts;
    opts.fault_tolerant = cfg.fault_tolerant;
    opts.num_locks = cfg.num_locks;
    for (SiteId id = 0; id < cfg.n; ++id) {
      sites.push_back(
          mutex::make_site(cfg.algo, id, exec, quorums.get(), opts));
      logs.push_back(std::make_unique<DecisionLog>());
      logs.back()->bind(exec, *sites.back());
    }
  }

  SiteLogs collect() const {
    SiteLogs out;
    out.reserve(logs.size());
    for (const auto& l : logs) out.push_back(l->records());
    return out;
  }
};

}  // namespace

OracleResult run_sim_oracle(const EquivConfig& cfg) {
  DQME_CHECK(cfg.n >= 2 && cfg.requests_per_site >= 1);
  OracleResult res;

  sim::Simulator sim;
  net::Network net(sim, cfg.n,
                   std::make_unique<net::UniformDelay>(
                       cfg.mean_delay / 2, cfg.mean_delay + cfg.mean_delay / 2),
                   cfg.seed * 7919 + 13);
  Stack stack;
  stack.build(cfg, net);

  // Every delivery the simulator performs becomes a kDeliver step — the
  // hook fires before the receiver's handler, i.e. exactly at the point the
  // rt replay will pop the channel.
  net.on_deliver = [&res](const net::Message& m, LockId lock) {
    res.steps.push_back({Step::kDeliver, m.dst, m.src, lock});
  };

  // Per-site driver script: `requests_per_site` CS cycles on seeded-random
  // locks with jittered hold/think times. All rng draws happen sim-side
  // only; the replay takes every decision from the recorded steps.
  struct Script {
    int remaining = 0;
    Rng rng{1};
  };
  std::vector<Script> script(static_cast<size_t>(cfg.n));
  for (SiteId s = 0; s < cfg.n; ++s) {
    script[static_cast<size_t>(s)].remaining = cfg.requests_per_site;
    script[static_cast<size_t>(s)].rng =
        Rng(cfg.seed * 1'000'003 + static_cast<uint64_t>(s) * 97 + 11);
  }

  // The issue/exit events reference each other recursively; keep the
  // lambdas alive in std::functions the events capture by reference.
  std::function<void(SiteId)> issue;
  std::function<void(SiteId, LockId)> next_or_done;

  issue = [&](SiteId s) {
    if (!net.alive(s)) return;  // crashed before its turn came
    Script& sc = script[static_cast<size_t>(s)];
    DQME_CHECK(sc.remaining > 0);
    const LockId lock =
        cfg.num_locks > 1
            ? static_cast<LockId>(sc.rng.uniform_int(0, cfg.num_locks - 1))
            : kLock0;
    res.steps.push_back({Step::kIssue, s, kNoSite, lock});
    stack.sites[static_cast<size_t>(s)]->request_cs(lock);
  };

  next_or_done = [&](SiteId s, LockId /*lock*/) {
    Script& sc = script[static_cast<size_t>(s)];
    --sc.remaining;
    if (sc.remaining <= 0) return;
    const Time gap =
        1 + sc.rng.uniform_int(cfg.gap_ticks / 2, cfg.gap_ticks * 2);
    sim.schedule_after(gap, [&issue, s] { issue(s); });
  };

  for (SiteId s = 0; s < cfg.n; ++s) {
    mutex::MutexSite* raw = stack.sites[static_cast<size_t>(s)].get();
    raw->on_enter = [&, s](SiteId, LockId lock) {
      Script& sc = script[static_cast<size_t>(s)];
      const Time hold =
          1 + sc.rng.uniform_int(cfg.hold_ticks / 2, cfg.hold_ticks * 2);
      sim.schedule_after(hold, [&, s, lock] {
        if (!net.alive(s)) return;  // crashed while inside the CS
        res.steps.push_back({Step::kExit, s, kNoSite, lock});
        stack.sites[static_cast<size_t>(s)]->release_cs(lock);
        next_or_done(s, lock);
      });
    };
    // §6: the site abandoned this request (no quorum formable). The
    // attempt is consumed; think, then move on to the next one.
    raw->on_abort = [&, s](SiteId, LockId lock) { next_or_done(s, lock); };
    const Time start = 1 + script[static_cast<size_t>(s)].rng.uniform_int(
                               0, cfg.gap_ticks);
    sim.schedule_at(start, [&issue, s] { issue(s); });
  }

  // Crash script: fail the victim, then mirror core::FailureDetector —
  // per-site jittered notices injected directly into the receivers (the
  // wrappers, so the notice lands in both backends' decision logs).
  if (cfg.crash_victim != kNoSite) {
    DQME_CHECK(0 <= cfg.crash_victim && cfg.crash_victim < cfg.n);
    sim.schedule_at(cfg.crash_at, [&] {
      const SiteId victim = cfg.crash_victim;
      res.steps.push_back({Step::kCrash, victim, kNoSite, kLock0});
      net.crash(victim);
      Rng detect_rng(cfg.seed * 31 + 5);
      for (SiteId s = 0; s < cfg.n; ++s) {
        if (s == victim || !net.alive(s)) continue;
        const Time when =
            cfg.detection_latency +
            (cfg.detection_jitter > 0
                 ? detect_rng.uniform_int(0, cfg.detection_jitter)
                 : 0);
        sim.schedule_after(when, [&, s, victim] {
          if (!net.alive(s)) return;
          res.steps.push_back({Step::kNotice, s, victim, kLock0});
          stack.logs[static_cast<size_t>(s)]->on_message(
              net::make_failure_notice(victim), kLock0);
        });
      }
    });
  }

  sim.run();

  res.logs = stack.collect();
  for (const auto& site : stack.sites) res.cs_entries += site->cs_entries();
  res.ok = net.stats().in_flight() == 0;
  for (SiteId s = 0; s < cfg.n; ++s) {
    if (!net.alive(s)) continue;
    if (script[static_cast<size_t>(s)].remaining > 0) {
      res.ok = false;
      res.error = "site " + std::to_string(s) + " finished with " +
                  std::to_string(script[static_cast<size_t>(s)].remaining) +
                  " requests outstanding";
    }
  }
  return res;
}

SiteLogs run_rt_replay(const EquivConfig& cfg,
                       const std::vector<Step>& steps) {
  RuntimeOptions ropts;
  Runtime rtc(cfg.n, ropts);
  Stack stack;
  stack.build(cfg, rtc);

  // One global turn counter sequences the trace: step i runs on the owning
  // site's thread; the release-store publishing turn i+1 also publishes
  // every ring push step i performed, so a later kDeliver turn always finds
  // its message (or spins until the owning spill flush lands it).
  std::atomic<size_t> turn{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.n));
  for (SiteId me = 0; me < cfg.n; ++me) {
    threads.emplace_back([&, me] {
      size_t i;
      while ((i = turn.load(std::memory_order_acquire)) < steps.size()) {
        const Step& st = steps[i];
        if (st.site != me) {
          // Not my turn: keep my spilled messages flowing so a consumer
          // waiting on my channel can make progress, then back off.
          rtc.flush_spills(me);
          std::this_thread::yield();
          continue;
        }
        switch (st.kind) {
          case Step::kIssue:
            stack.sites[static_cast<size_t>(me)]->request_cs(st.lock);
            break;
          case Step::kExit:
            stack.sites[static_cast<size_t>(me)]->release_cs(st.lock);
            break;
          case Step::kDeliver:
            while (!rtc.try_deliver_one(st.aux, me)) {
              rtc.flush_spills(me);
              std::this_thread::yield();
            }
            break;
          case Step::kCrash:
            rtc.crash(me);
            break;
          case Step::kNotice:
            stack.logs[static_cast<size_t>(me)]->on_message(
                net::make_failure_notice(st.aux), kLock0);
            break;
          default:
            DQME_CHECK_MSG(false, "unknown step kind");
        }
        turn.store(i + 1, std::memory_order_release);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Crash-run residue: traffic the simulator dropped at the dead site
  // stays parked in its rings here. Discard it; drops are terminal per
  // channel, so it can never have blocked a replayed delivery.
  rtc.drain_residue();
  return stack.collect();
}

}  // namespace dqme::rt
