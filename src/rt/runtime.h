// Real-threads execution backend (DESIGN.md §9).
//
// rt::Runtime implements the net::Executor seam with actual concurrency:
// each site is pumped by one OS thread, each directed (src,dst) channel is
// one bounded lock-free SPSC ring (rt/spsc_ring.h), and "message delay" is
// whatever the scheduler and cache hierarchy actually do. The protocol
// state machines in src/mutex and src/core run unmodified — the simulator
// backend (net::Network) stays the oracle for their decisions
// (tests/rt_equivalence_test.cpp).
//
// Threading contract (mirrors the Executor seam notes):
//   * A site is only ever invoked from its own pump thread: deliveries,
//     timers, and the driver poll all run there. Protocol code therefore
//     needs no locks, exactly as under the single-threaded simulator.
//   * send(src, ...) may only be called from src's thread (protocols only
//     send from inside their own handlers, which satisfies this).
//   * Per-channel FIFO is preserved: one producer, one consumer, one ring.
//     When a ring fills, the producer spills to a producer-local overflow
//     queue and re-feeds it ahead of new traffic — senders never block, so
//     pump threads cannot deadlock on mutually full rings.
//   * Quiescence: in_flight() counts accepted-but-unresolved messages
//     (decremented only after the receiver's handler returns), so
//     "all drivers done && in_flight() == 0" is a stable stop condition.
//
// Fault injection matches the simulator's fail-silent model: after
// crash(id), messages from the dead site are dropped at send and messages
// toward it (or from it, already in flight) are dropped at delivery.
//
// Observability: with RuntimeOptions::obs_feed, every delivery and crash is
// recorded into the receiving site's shard, stamped by one global
// sequentially-consistent counter (span edges join the feed through
// record_span). After the run quiesces, replay_into() merges the shards by
// stamp — a total order consistent with real time and with every site's
// local order — and replays it through an obs::InvariantChecker, so the
// PR-3 invariants are checked against what the concurrent execution
// actually did.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "net/executor.h"
#include "net/message.h"
#include "rt/spsc_ring.h"

namespace dqme::obs {
class InvariantChecker;
}

namespace dqme::rt {

struct RuntimeOptions {
  // Slots per directed channel (power of two). Overflow never blocks or
  // drops — it spills to the producer-local queue — so this only sizes the
  // lock-free fast path.
  size_t ring_capacity = 1024;
  // Record the sharded observability feed for replay_into().
  bool obs_feed = false;
  // Emulated wire latency: a message becomes deliverable only this many
  // microseconds after send (0 = as fast as the rings go). This is the
  // paper's T on real threads — with it, contended throughput is bound by
  // how many protocol pipelines the backend keeps in flight concurrently,
  // not by raw CPU, which is what a distributed deployment looks like.
  // Self-addressed (src == dst) messages are exempt, matching the
  // simulator's immediate self-delivery (several invariants — e.g. the
  // arbiter's self-release racing its next grant — assume it). The
  // consumer gates on the timestamp; nothing sleeps, so per-channel FIFO
  // and the quiescence protocol are unchanged.
  uint64_t wire_delay_us = 0;
};

// Snapshot of the transport counters (same vocabulary as net::NetworkStats;
// "wire" counts bundles between distinct sites, matching the paper's
// piggyback accounting).
struct RuntimeStats {
  uint64_t wire_messages = 0;
  uint64_t control_messages = 0;
  uint64_t local_messages = 0;
  uint64_t delivered_messages = 0;
  uint64_t dropped_at_crashed = 0;
  uint64_t spilled_messages = 0;  // overflowed the ring into the spill queue
  uint64_t payloads_acquired = 0;
};

class Runtime final : public net::Executor {
 public:
  explicit Runtime(int n, RuntimeOptions opts = {});
  ~Runtime() override;

  // --- net::Executor --------------------------------------------------
  int size() const override { return n_; }
  // Wall-clock microseconds since construction (observational only).
  Time now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void attach(SiteId id, net::NetSite* site) override;
  void send(SiteId src, SiteId dst, const net::Message& m,
            LockId lock = kLock0) override;
  using net::Executor::send_bundle;
  void send_bundle(SiteId src, SiteId dst, const net::Message* msgs, size_t n,
                   LockId lock = kLock0) override;
  net::KvFields& attach_kv(net::Message& m) override;
  net::TokenPayload& attach_token(net::Message& m) override;
  net::KvFields read_kv(const net::Message& m) const override;
  net::TokenPayload take_token(const net::Message& m) override;
  // Best-effort wall-clock timer on `site`'s pump thread; `delay` is in
  // now()'s units (microseconds). Call only from that site's own context.
  uint64_t schedule_timeout(SiteId site, Time delay, sim::Callback fn) override;

  // --- fault injection (fail-silent, §6) ------------------------------
  void crash(SiteId id);
  bool alive(SiteId id) const {
    return alive_[static_cast<size_t>(id)].load(std::memory_order_acquire);
  }

  // --- pump primitives (owning thread only) ---------------------------
  // Pops and dispatches the head message of channel (src,dst). Returns
  // true when a message was DELIVERED to the attached receiver; crash
  // drops are resolved internally and the scan continues to the next slot.
  bool try_deliver_one(SiteId src, SiteId dst);
  // Round-robin drains up to `max` messages addressed to `dst` across all
  // source channels. Returns the number delivered.
  size_t drain(SiteId dst, size_t max);
  // Re-feeds `src`'s producer-local overflow queues into their rings.
  void flush_spills(SiteId src);
  // Fires every timer of `site` whose deadline has passed.
  void run_due_timers(SiteId site);

  // --- free-run pump mode ---------------------------------------------
  // Spawns one pump thread per site and blocks until quiescence. Each
  // iteration of a site's pump: flush spills, drain a delivery batch, fire
  // due timers, then call poll(site) — the driver's workload step, running
  // on the site's thread (so it may call request_cs/release_cs directly).
  // poll returns true once the site's workload is complete; threads exit
  // when every site is done and in_flight() == 0. A site stays in its pump
  // after reporting done — it still serves arbiter duties for others.
  void run(const std::function<bool(SiteId)>& poll);
  // Aborts run(): pump threads exit at their next iteration.
  void request_stop() { stop_.store(true, std::memory_order_release); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  // Accepted-but-unresolved messages (rings + spills + in-handler).
  uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }
  RuntimeStats stats() const;

  // --- sharded observability feed -------------------------------------
  bool obs_feed_enabled() const { return opts_.obs_feed; }
  // Span-edge entry point for rt::ObsTap (kind: 0 issue, 1 enter, 2 exit,
  // 3 abort). Must be called from `site`'s own thread.
  void record_span(SiteId site, uint8_t kind, LockId lock, SpanId span);
  // Merges the per-site shards by global stamp and replays the run through
  // `chk` (observe / on_span_* / on_crash), then finish(). Call after the
  // pump threads have exited.
  void replay_into(obs::InvariantChecker& chk);

  // Discards every undelivered message (crash-run residue: traffic toward
  // a site that died stays parked in its rings). Single-threaded teardown
  // only. Returns the number discarded; in_flight() is 0 afterwards.
  uint64_t drain_residue();

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct WireSlot {
    net::Message m;
    LockId lock = kLock0;
  };

  // Per-channel state beyond the ring itself. `spill` is producer-local
  // (only src's thread touches it): the overflow queue for when the
  // lock-free ring is momentarily full. `staged`/`has_staged` are
  // consumer-local (only dst's thread): the popped-but-not-yet-due head
  // message while the emulated wire delay gates its delivery.
  struct Channel {
    std::unique_ptr<SpscRing<WireSlot>> ring;
    std::deque<WireSlot> spill;
    WireSlot staged;
    bool has_staged = false;
  };

  struct PayloadSlot {
    net::TokenPayload token;
    net::KvFields kv;
    uint32_t next_free = kNil;
  };

  struct Timer {
    Time deadline = 0;
    uint64_t seq = 0;
    sim::Callback fn;
  };
  // Heap order for the per-site timer heaps: earliest deadline at the
  // front (std::push_heap builds a max-heap, so the order is reversed).
  static bool timer_later(const Timer& a, const Timer& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.seq > b.seq;
  }

  struct ObsEvent {
    enum Kind : uint8_t {
      kSpanIssue = 0,
      kSpanEnter = 1,
      kSpanExit = 2,
      kSpanAbort = 3,
      kDeliver = 4,
      kCrash = 5,
    };
    uint64_t stamp = 0;
    net::Message m;
    SpanId span = kNoSpan;
    Time at = 0;
    SiteId site = kNoSite;
    LockId lock = kLock0;
    uint8_t kind = kDeliver;
  };

  Channel& chan(SiteId src, SiteId dst) {
    return channels_[static_cast<size_t>(src) * static_cast<size_t>(n_) +
                     static_cast<size_t>(dst)];
  }
  void enqueue(SiteId src, SiteId dst, const WireSlot& slot);
  // Resolves one popped slot on dst's thread: crash-drop or deliver.
  // Returns true when it was delivered.
  bool dispatch(SiteId dst, const WireSlot& slot);
  void release_payload(net::PayloadId id);
  void record_deliver(SiteId dst, const net::Message& m, LockId lock);
  uint64_t next_stamp() {
    // seq_cst: the stamp order must be consistent with real time across
    // threads — this is what makes the merged replay a faithful
    // linearization of what actually happened.
    return obs_stamp_.fetch_add(1, std::memory_order_seq_cst);
  }

  const int n_;
  const RuntimeOptions opts_;
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();

  std::vector<Channel> channels_;  // n*n, index src*n + dst
  std::vector<net::NetSite*> sites_;
  std::vector<std::atomic<bool>> alive_;
  std::vector<std::vector<Timer>> timers_;  // per-site heap (owner thread)
  std::vector<uint64_t> timer_seq_;

  mutable std::mutex payload_mu_;
  std::deque<PayloadSlot> payloads_;
  uint32_t payload_free_ = kNil;

  std::atomic<uint64_t> in_flight_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> done_sites_{0};

  // Relaxed transport counters (aggregated into RuntimeStats on demand).
  std::atomic<uint64_t> wire_messages_{0};
  std::atomic<uint64_t> control_messages_{0};
  std::atomic<uint64_t> local_messages_{0};
  std::atomic<uint64_t> delivered_messages_{0};
  std::atomic<uint64_t> dropped_at_crashed_{0};
  std::atomic<uint64_t> spilled_messages_{0};
  std::atomic<uint64_t> payloads_acquired_{0};

  // Observability feed: per-site shards written only by the owning thread;
  // crash events (which may come from any thread) go to the mutex-guarded
  // extra shard. Merged by stamp in replay_into().
  std::atomic<uint64_t> obs_stamp_{0};
  std::vector<std::vector<ObsEvent>> obs_shards_;
  std::mutex obs_extra_mu_;
  std::vector<ObsEvent> obs_extra_;
};

}  // namespace dqme::rt
