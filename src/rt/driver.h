// Free-run closed-loop driver for the real-threads backend: the rt
// counterpart of harness::run_experiment's heavy-load workload, used by
// bench/rt_core and `dqme_sim --backend=rt`.
//
// Each site's pump thread runs the workload in-line (Runtime::run's poll
// hook): release every lock it has entered, then keep up to `outstanding`
// requests in service across its lock rotation. With one lock the protocol
// precondition caps a site at one outstanding request (the paper's heavy
// load); with a sharded lock table the pipeline keeps many independent
// grants in flight per site, which is what lets an oversubscribed host
// amortize each scheduling slice over a deep batch of deliveries.
//
// Online safety: a per-lock atomic owner word (SafetyProbe) is CAS'd on
// every enter/exit — a genuinely concurrent mutual-exclusion violation
// trips it at the instant it happens, independent of the (post-hoc) merged
// invariant-checker replay enabled by `check`.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mutex/factory.h"
#include "mutex/mutex_site.h"
#include "rt/runtime.h"

namespace dqme::rt {

// Span observer that streams a site's span edges into the Runtime's
// sharded observability feed (record_span) and forwards downstream.
class ObsTap final : public mutex::SpanObserver {
 public:
  ObsTap(Runtime& rtc, mutex::MutexSite& site) : rtc_(rtc) {
    downstream_ = site.span_observer();
    site.attach_span_observer(this);
  }
  void on_span_issue(SiteId site, LockId lock, SpanId span,
                     Time at) override {
    rtc_.record_span(site, 0, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_issue(site, lock, span, at);
  }
  void on_span_enter(SiteId site, LockId lock, SpanId span,
                     Time at) override {
    rtc_.record_span(site, 1, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_enter(site, lock, span, at);
  }
  void on_span_exit(SiteId site, LockId lock, SpanId span, Time at) override {
    rtc_.record_span(site, 2, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_exit(site, lock, span, at);
  }
  void on_span_abort(SiteId site, LockId lock, SpanId span,
                     Time at) override {
    rtc_.record_span(site, 3, lock, span);
    if (downstream_ != nullptr) downstream_->on_span_abort(site, lock, span, at);
  }

 private:
  Runtime& rtc_;
  mutex::SpanObserver* downstream_ = nullptr;
};

// Cheap real-time mutual-exclusion probe: one atomic owner word per lock.
class SafetyProbe {
 public:
  explicit SafetyProbe(LockId num_locks)
      : owners_(static_cast<size_t>(num_locks)) {
    for (auto& o : owners_) o.store(kNoSite, std::memory_order_relaxed);
  }
  void enter(LockId lock, SiteId site) {
    SiteId expect = kNoSite;
    if (!owners_[static_cast<size_t>(lock)].compare_exchange_strong(
            expect, site, std::memory_order_acq_rel))
      violations_.fetch_add(1, std::memory_order_relaxed);
  }
  void exit(LockId lock, SiteId site) {
    SiteId expect = site;
    if (!owners_[static_cast<size_t>(lock)].compare_exchange_strong(
            expect, kNoSite, std::memory_order_acq_rel))
      violations_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<SiteId>> owners_;
  std::atomic<uint64_t> violations_{0};
};

struct FreeRunConfig {
  mutex::Algo algo = mutex::Algo::kCaoSinghal;
  int n = 4;  // sites == pump threads
  std::string quorum = "majority";
  LockId num_locks = 1;
  bool fault_tolerant = false;
  uint64_t target_entries = 1000;  // aggregate CS entries before stopping
  double max_seconds = 30.0;       // soft stop; 2x = hard abort
  int outstanding = 8;             // per-site pipeline depth (multi-lock)
  uint64_t seed = 1;
  bool check = false;  // SafetyProbe + merged invariant-checker replay
  size_t ring_capacity = 1024;
  // Emulated wire latency in microseconds — the paper's T on real threads
  // (see RuntimeOptions::wire_delay_us). 0 = raw ring speed.
  uint64_t wire_delay_us = 0;
};

struct FreeRunResult {
  bool ok = false;
  std::string error;
  uint64_t cs_entries = 0;
  double wall_seconds = 0;
  double handoffs_per_sec = 0;
  double wire_msgs_per_sec = 0;
  uint64_t violations = 0;        // merged checker replay (check only)
  uint64_t probe_violations = 0;  // real-time SafetyProbe (check only)
  std::vector<std::string> reports;
  RuntimeStats stats;
};

FreeRunResult run_free(const FreeRunConfig& cfg);

}  // namespace dqme::rt
